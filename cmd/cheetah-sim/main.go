// Command cheetah-sim sweeps one pruning algorithm's rate over a
// synthetic stream — the quick single-panel counterpart of
// cheetah-bench fig10.
//
// Usage:
//
//	cheetah-sim -alg distinct -m 1000000 -d 4096 -w 2
//	cheetah-sim -alg topn -m 1000000 -d 4096 -w 8 -n 250
//	cheetah-sim -alg skyline -m 300000 -w 10 -heuristic aph
package main

import (
	"flag"
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/workload"
)

func main() {
	alg := flag.String("alg", "distinct", "distinct|topn-det|topn|groupby|skyline|having")
	m := flag.Int("m", 1_000_000, "stream length")
	d := flag.Int("d", 4096, "matrix rows / sketch counters")
	w := flag.Int("w", 2, "matrix columns / stored points / thresholds")
	n := flag.Int("n", 250, "TOP N result size")
	distinct := flag.Int("distinct", 15000, "distinct values in the stream")
	heuristic := flag.String("heuristic", "aph", "skyline heuristic: sum|aph|baseline")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	var p cheetah.Pruner
	var stream [][]uint64
	var err error
	switch *alg {
	case "distinct":
		p, err = cheetah.NewDistinct(cheetah.DistinctConfig{Rows: *d, Cols: *w, Policy: cheetah.LRU, Seed: *seed})
		for _, v := range workload.DistinctStream(*m, *distinct, *seed) {
			stream = append(stream, []uint64{v})
		}
	case "topn-det":
		p, err = cheetah.NewDetTopN(cheetah.DetTopNConfig{N: *n, Thresholds: *w})
		for _, v := range workload.UniformStream(*m, *seed) {
			stream = append(stream, []uint64{uint64(v)})
		}
	case "topn":
		p, err = cheetah.NewRandTopN(cheetah.RandTopNConfig{N: *n, Rows: *d, Cols: *w, Seed: *seed})
		for _, v := range workload.UniformStream(*m, *seed) {
			stream = append(stream, []uint64{uint64(v)})
		}
	case "groupby":
		p, err = cheetah.NewGroupBy(cheetah.GroupByConfig{Rows: *d, Cols: *w, Seed: *seed})
		keys := workload.ZipfKeys(*m, 1.2, 10_000, *seed)
		vals := workload.ZipfKeys(*m, 1.1, 1_000, *seed+7)
		for i := range keys {
			stream = append(stream, []uint64{keys[i], vals[i]})
		}
	case "skyline":
		h := cheetah.SkylineAPH
		switch *heuristic {
		case "sum":
			h = cheetah.SkylineSum
		case "baseline":
			h = cheetah.SkylineBaseline
		}
		p, err = cheetah.NewSkyline(cheetah.SkylineConfig{Dims: 2, Points: *w, Heuristic: h})
		stream = workload.CorrelatedPoints2D(*m, 256, 49152, 16384, *seed)
	case "having":
		keys := workload.ZipfKeys(*m, 1.3, 100, *seed)
		revs := workload.ZipfKeys(*m, 1.1, 10_000, *seed+3)
		var total uint64
		for i := range keys {
			stream = append(stream, []uint64{keys[i], revs[i]})
			total += revs[i]
		}
		p, err = cheetah.NewHaving(cheetah.HavingConfig{
			Agg: prune.HavingSum, Threshold: int64(total / 50),
			Rows: 3, CountersPerRow: *d, Seed: *seed,
		})
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}
	if err != nil {
		log.Fatal(err)
	}

	forwarded := 0
	for _, vals := range stream {
		if p.Process(vals) == switchsim.Forward {
			forwarded++
		}
	}
	st := p.Stats()
	fmt.Printf("algorithm:  %s (%s guarantee)\n", p.Name(), p.Guarantee())
	fmt.Printf("profile:    %s\n", p.Profile())
	fmt.Printf("stream:     %d entries\n", st.Processed)
	fmt.Printf("pruned:     %d (%.4f%%)\n", st.Pruned, 100*st.PruneRate())
	fmt.Printf("unpruned:   %d (fraction %.6g)\n", st.Forwarded(), st.UnprunedRate())
	// The planner's admission query, against both hardware generations.
	for _, m := range []cheetah.SwitchModel{cheetah.Tofino(), cheetah.Tofino2()} {
		if err := m.Admits(p.Profile()); err != nil {
			fmt.Printf("admission:  DOES NOT FIT %s: %v\n", m.Name, err)
		} else {
			fmt.Printf("admission:  fits the %s model\n", m.Name)
		}
	}
}
