// Command cheetah-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cheetah-bench [-scale N] [-seeds K] [-switches W] [-chaos] [-trace] [table2|table3|fig5|fig6|fig7|fig8|fig9|fig10|fig11|baseline|serve|stream|net|skip|all]
//
// Scale divides the paper's dataset sizes (scale=1 reproduces paper
// scale and takes minutes; the default 50 finishes in seconds). Output
// is aligned text, one block per table/figure.
//
// With -cpuprofile or -memprofile, the whole run is profiled with
// runtime/pprof and the profile written on exit — point `go tool pprof`
// at the output to see where a target spends its time or memory.
//
// The baseline target measures the ExecCheetah micro-benchmarks (fused,
// batch and scalar paths) and writes machine-readable JSON to -baseline-out,
// giving future changes a perf trajectory to compare against. The diff
// target re-measures the same benchmarks and compares entries/s against
// the committed reference (-baseline-ref), exiting non-zero when any
// benchmark regresses more than -regress-threshold; when the
// GITHUB_STEP_SUMMARY environment variable points at a writable file
// (GitHub Actions sets it), the comparison is also appended there as a
// markdown table. The serve target drives the multi-tenant mixed
// workload through the concurrent serving layer and prints a scaling
// table over fabric widths (1/2/4 switches, capped by -switches) ×
// client counts (1/8/64), reporting aggregate entries/s and p50/p99
// latency per row; with -chaos a switch is killed and restored every
// ~50 submissions and the failover/shed columns show the absorbed
// fault-tolerance work (results stay exact either way — the run errors
// out otherwise). The stream target drives concurrent appenders
// (1/8/64) into a streaming session with standing continuous queries,
// reporting ingest rows/s and result-freshness p50/p99. The skip
// target sweeps a clustered-column filter across selectivities
// (0.1/1/10/50%) and reports the exact block-skip rate plus entries/s
// with skipping on vs a full scan. None of these is part of "all".
//
// -trace prints measured ExplainAnalyze span trees — every query kind
// run once per execution path (single-switch, sharded, exact direct),
// each with its lifecycle trace (plan, skip, encode, prune, per-switch
// passes, merge) — then exits unless explicit targets follow.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"cheetah/internal/bench"
)

// appendFile appends content to path, creating it if needed.
func appendFile(path, content string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() { os.Exit(run()) }

// run holds main's whole body so the profile-writing defers fire before
// the process exits with the target's status code.
func run() int {
	scale := flag.Int("scale", 50, "divide paper dataset sizes by this factor (1 = paper scale)")
	seeds := flag.Int("seeds", 5, "runs per randomized algorithm (95% CIs)")
	seed := flag.Uint64("seed", 0xc0ffee, "base RNG seed")
	switches := flag.Int("switches", 4, "fabric width for the serve target (scaling table measures 1, 2, 4, ... up to this)")
	chaos := flag.Bool("chaos", false, "serve target only: kill/restore a switch every ~50 queries (fault-tolerance soak; results stay exact)")
	trace := flag.Bool("trace", false, "print ExplainAnalyze span trees for every query kind across execution paths (standalone unless targets are also given)")
	addr := flag.String("addr", "", "net target: drive an external cheetahd at this address (empty = in-process loopback server)")
	conns := flag.Int("conns", 1000, "net target: simulated connection count for the churn loop")
	baselineOut := flag.String("baseline-out", "BENCH_baseline.json", "output file for the baseline target")
	baselineRows := flag.Int("baseline-rows", 100_000, "benchmark table rows for the baseline target (diff follows the reference's recorded rows)")
	baselineRef := flag.String("baseline-ref", "BENCH_baseline.json", "reference file for the diff target")
	regressThreshold := flag.Float64("regress-threshold", 0.15, "entries/s regression fraction that fails the diff target")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at run end to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	o := bench.Options{Scale: *scale, Seeds: *seeds, BaseSeed: *seed}
	selected := flag.Args()
	if *trace {
		if err := bench.Trace(os.Stdout, o, *switches); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		// `cheetah-bench -trace` alone prints traces and exits; with
		// explicit targets the traces print first, then the targets run.
		if len(selected) == 0 {
			return 0
		}
	}
	if len(selected) == 0 {
		selected = []string{"all"}
	}
	targets := map[string]func() error{
		"table2": func() error { return bench.Table2(os.Stdout) },
		"table3": func() error { return bench.Table3(os.Stdout) },
		"fig5":   func() error { _, err := bench.Fig5(os.Stdout, o); return err },
		"fig6":   func() error { _, _, err := bench.Fig6(os.Stdout, o); return err },
		"fig7":   func() error { _, err := bench.Fig7(os.Stdout, o); return err },
		"fig8":   func() error { _, err := bench.Fig8(os.Stdout, o); return err },
		"fig9":   func() error { _, err := bench.Fig9(os.Stdout, o); return err },
		"fig10":  func() error { _, err := bench.Fig10(os.Stdout, o); return err },
		"fig11":  func() error { _, err := bench.Fig11(os.Stdout, o); return err },
		"serve":  func() error { return bench.Serve(os.Stdout, o, *switches, *chaos) },
		"stream": func() error { return bench.Stream(os.Stdout, o, *switches) },
		"net":    func() error { return bench.Net(os.Stdout, o, *addr, *conns) },
		"skip":   func() error { return bench.Skip(os.Stdout, o) },
		"baseline": func() error {
			// Measure first, write after: a failed run must not clobber
			// an existing baseline file.
			var buf bytes.Buffer
			if err := bench.Baseline(&buf, *baselineRows); err != nil {
				return err
			}
			if err := os.WriteFile(*baselineOut, buf.Bytes(), 0o644); err != nil {
				return err
			}
			fmt.Printf("baseline written to %s\n", *baselineOut)
			return nil
		},
		"diff": func() error {
			ref, err := bench.LoadBaseline(*baselineRef)
			if err != nil {
				return err
			}
			// Measure at the reference's recorded row count — entries/s
			// is only comparable at matching table scale.
			rows := ref.Rows
			if rows <= 0 {
				rows = *baselineRows
			}
			var buf bytes.Buffer
			if err := bench.Baseline(&buf, rows); err != nil {
				return err
			}
			var cur bench.BaselineReport
			if err := json.Unmarshal(buf.Bytes(), &cur); err != nil {
				return err
			}
			if summary := os.Getenv("GITHUB_STEP_SUMMARY"); summary != "" {
				md, _ := bench.DiffMarkdown(ref, cur, *regressThreshold)
				if err := appendFile(summary, md); err != nil {
					fmt.Fprintf(os.Stderr, "warning: step summary %s: %v\n", summary, err)
				} else {
					fmt.Println("bench diff appended to step summary")
				}
			}
			if regressed := bench.Diff(os.Stdout, ref, cur, *regressThreshold); len(regressed) > 0 {
				return fmt.Errorf("%d benchmark(s) regressed >%.0f%% vs %s: %v",
					len(regressed), 100**regressThreshold, *baselineRef, regressed)
			}
			fmt.Printf("no regressions >%.0f%% vs %s\n", 100**regressThreshold, *baselineRef)
			return nil
		},
	}
	order := []string{"table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
	for _, t := range selected {
		if t == "all" {
			for _, name := range order {
				fmt.Printf("\n===== %s =====\n", name)
				if err := targets[name](); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
					return 1
				}
			}
			continue
		}
		f, ok := targets[t]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q (want one of %v, baseline, serve, stream, net, skip, or diff)\n", t, order)
			return 2
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t, err)
			return 1
		}
	}
	return 0
}
