// Command cheetahd serves a Cheetah fabric over TCP: external clients
// submit one-shot queries, stream appends, and hold standing
// subscriptions against the multi-switch fabric through the
// internal/wire frame protocol (see internal/netserve for the client).
//
// Usage:
//
//	cheetahd [-listen addr] [-rows N] [-rank-rows N] [-scale N]
//	         [-switches W] [-workers K] [-seed S]
//	         [-queue-limit N] [-tenant-quota N]
//	         [-backlog N] [-shed]
//	         [-metrics addr] [-pprof] [-slow-query D]
//	         [-source spec]... [-pipe kind=KIND,sink=SPEC]...
//
// The served catalog is the benchmark mix ("visits" + "rankings", the
// same tables `cheetah-bench net -scale N` queries); -rows/-rank-rows
// override the sizes directly. Streaming over "visits" is always on:
// -backlog/-shed set the ingestor's backpressure policy.
//
// Connector topology comes from repeatable flags: each -source spec
// (e.g. "gen:rows=100000,batch=256,rate=5000") pumps rows into the
// served table through the connector runtime, and each -pipe
// (e.g. "kind=topn,sink=log:path=-") holds a server-side continuous
// query whose standing-result refreshes fan into the named sink.
//
// -metrics starts a second HTTP listener serving GET /metrics
// (Prometheus text exposition of the fabric's shared registry:
// admission counters, queue-depth and lease gauges, per-kind query
// latency histograms with p50/p99) and GET /healthz (200 while the
// fabric can place queries, 503 once draining or every switch is
// down). -pprof additionally mounts net/http/pprof under
// /debug/pprof/ on that listener. -slow-query logs any query whose
// wall clock exceeds the threshold and counts it in slow_queries.
//
// On SIGTERM/SIGINT the server drains: new work is refused with a
// retryable error, in-flight queries finish, subscriptions close after
// a final update, connector pumps stop, and the process exits 0 — the
// contract the CI e2e job asserts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cheetah/internal/connector"
	"cheetah/internal/engine"
	"cheetah/internal/netserve"
	"cheetah/internal/plan"
	"cheetah/internal/table"
	"cheetah/internal/workload/multitenant"
)

// stringList is a repeatable flag.
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, "; ") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

// paper-scale mix sizes, mirrored from internal/bench so -scale means
// the same thing to cheetahd and cheetah-bench.
const (
	paperVisitRows = 31_700_000
	paperRankRows  = 18_000_000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cheetahd:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:4780", "TCP listen address")
	scale := flag.Int("scale", 200, "divide paper dataset sizes by this factor (matches cheetah-bench -scale)")
	rows := flag.Int("rows", 0, "visits table rows (0 = paper rows / scale)")
	rankRows := flag.Int("rank-rows", 0, "rankings table rows (0 = paper rows / scale)")
	switches := flag.Int("switches", 2, "fabric width (switch pipelines)")
	workers := flag.Int("workers", 1, "CWorkers per query")
	seed := flag.Uint64("seed", 0xc0ffee, "RNG seed for tables and pruners")
	queueLimit := flag.Int("queue-limit", 0, "per-switch admission queue cap (0 = unbounded)")
	tenantQuota := flag.Int("tenant-quota", 0, "per-tenant concurrent lease cap per switch (0 = unlimited)")
	backlog := flag.Int("backlog", 0, "ingest backlog cap in rows ahead of the slowest subscription (0 = unbounded)")
	shed := flag.Bool("shed", false, "shed over-backlog appends instead of blocking")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	metricsAddr := flag.String("metrics", "", "HTTP address serving /metrics (Prometheus text) and /healthz (empty = disabled)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ on the -metrics server")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this wall-clock threshold (0 = disabled)")
	var sources, pipes stringList
	flag.Var(&sources, "source", "connector source spec feeding the served table (repeatable), e.g. gen:rows=100000,batch=256")
	flag.Var(&pipes, "pipe", "server-side continuous query piped to a sink (repeatable), e.g. kind=topn,sink=log:path=-")
	flag.Parse()

	uvRows := *rows
	if uvRows <= 0 {
		uvRows = max(paperVisitRows / *scale, 2000)
	}
	rkRows := *rankRows
	if rkRows <= 0 {
		rkRows = max(paperRankRows / *scale, 1000)
	}
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: uvRows, RankRows: rkRows, Seed: *seed})
	if err != nil {
		return err
	}

	srv, err := netserve.Listen(*listen, netserve.Options{
		Tables:  map[string]*table.Table{"visits": mix.Visits, "rankings": mix.Rankings},
		Primary: "visits",
		Plan:    plan.Options{Switches: *switches, Workers: *workers, Seed: *seed},
		Serve:   plan.ServeOptions{QueueLimit: *queueLimit, TenantQuota: *tenantQuota},
		Stream:  &plan.StreamOptions{Backlog: *backlog, Shed: *shed, QueueLimit: *queueLimit},

		SlowQueryThreshold: *slowQuery,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cheetahd: listening on %s (visits=%d rows, rankings=%d rows, %d switches)\n",
		srv.Addr(), uvRows, rkRows, *switches)

	// Observability sidecar: a plain HTTP listener serving the shared
	// metrics registry as Prometheus text plus a fabric-backed health
	// probe; pprof mounts only when asked for.
	var obsSrv *http.Server
	if *metricsAddr != "" {
		obsSrv, err = serveObs(srv, *metricsAddr, *pprofOn)
		if err != nil {
			return err
		}
	}

	// Connector topology: sources pump into the served table, pipes
	// hold continuous queries fanning into sinks.
	reg := connector.DefaultRegistry()
	rt, err := connector.NewRuntime(srv.Streaming())
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, spec := range sources {
		src, err := reg.OpenSource(spec)
		if err != nil {
			return err
		}
		if err := rt.Feed(ctx, src); err != nil {
			return err
		}
		fmt.Printf("cheetahd: source %q feeding visits\n", spec)
	}
	for _, spec := range pipes {
		q, sink, err := buildPipe(reg, mix, spec)
		if err != nil {
			return err
		}
		if _, err := rt.Pipe(ctx, q, sink); err != nil {
			return err
		}
		fmt.Printf("cheetahd: pipe %q standing\n", spec)
	}

	// SIGTERM/SIGINT → graceful drain: in-flight work finishes, every
	// client gets a result, a retryable error, or a Goodbye.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	fmt.Printf("cheetahd: %v, draining\n", sig)
	if obsSrv != nil {
		// The probe endpoint goes down with the drain: /healthz flips to
		// 503 the moment Shutdown marks the server draining, and the
		// listener itself closes once in-flight scrapes finish.
		defer obsSrv.Close()
	}
	rt.Close()
	dctx, cancel := context.WithTimeout(ctx, *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	stats := srv.Stats()
	fmt.Printf("cheetahd: drained clean (admitted %d, shed %d, failed over %d, active leases %d)\n",
		stats.Admitted, stats.Shed, stats.FailedOver, stats.Active)
	if stats.Active != 0 {
		return fmt.Errorf("drain left %d active leases", stats.Active)
	}
	return nil
}

// serveObs starts the observability HTTP listener: GET /metrics dumps
// the server's shared registry in Prometheus text exposition format,
// GET /healthz answers 200 while the fabric can place queries (503
// once draining or every switch is down), and -pprof mounts the
// standard net/http/pprof handlers under /debug/pprof/.
func serveObs(srv *netserve.Server, addr string, withPprof bool) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = srv.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if srv.Healthy() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "unavailable")
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	hs := &http.Server{Handler: mux}
	go func() { _ = hs.Serve(ln) }()
	fmt.Printf("cheetahd: metrics on http://%s/metrics (healthz%s)\n",
		ln.Addr(), map[bool]string{true: ", pprof", false: ""}[withPprof])
	return hs, nil
}

// buildPipe parses a "kind=KIND,sink=SPEC" pipe flag into a continuous
// query over the mix's visits table plus its sink. KIND is one of the
// eight mix kinds by name; the query shape is the mix's canonical one
// for that kind.
func buildPipe(reg *connector.Registry, mix *multitenant.Mix, spec string) (*engine.Query, connector.Sink, error) {
	kinds := map[string]int{
		"filter": 0, "distinct": 1, "topn": 2, "groupbymax": 3,
		"groupbysum": 4, "having": 5, "join": 6, "skyline": 7,
	}
	// The sink spec may itself contain commas (its own args), so split
	// on "sink=" first: everything after it belongs to the sink.
	var kind, sinkSpec string
	head := spec
	if idx := strings.Index(spec, "sink="); idx >= 0 {
		sinkSpec = spec[idx+len("sink="):]
		head = strings.TrimSuffix(spec[:idx], ",")
	}
	for _, kv := range strings.Split(head, ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, nil, fmt.Errorf("malformed -pipe argument %q in %q", kv, spec)
		}
		if k != "kind" {
			return nil, nil, fmt.Errorf("unknown -pipe key %q in %q", k, spec)
		}
		kind = v
	}
	ki, ok := kinds[kind]
	if !ok {
		return nil, nil, fmt.Errorf("-pipe needs kind= one of filter|distinct|topn|groupbymax|groupbysum|having|join|skyline, got %q", kind)
	}
	if sinkSpec == "" {
		return nil, nil, fmt.Errorf("-pipe needs sink=, got %q", spec)
	}
	sink, err := reg.OpenSink(sinkSpec)
	if err != nil {
		return nil, nil, err
	}
	return mix.Query(ki), sink, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
