package wire

import (
	"bytes"
	"testing"
)

// FuzzPacketDecodeFrom throws arbitrary bytes at the dataplane packet
// decoder. The invariants: never panic, and anything that decodes must
// re-encode to exactly the input bytes (DecodeFrom accepts only
// canonical framings).
func FuzzPacketDecodeFrom(f *testing.F) {
	// Seed with a round-trip corpus covering every message type and the
	// value-count edges.
	seeds := []Packet{
		NewData(1, 0, nil),
		NewData(7, 42, []uint64{1, 2, 3}),
		NewData(0xffffffff, 1<<63, make([]uint64, MaxValues)),
		NewAck(3, 9),
		NewFin(3, 100),
		NewFinAck(3, 100),
	}
	for i := range seeds {
		buf, err := seeds[i].AppendTo(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// Known-hostile shapes: truncations, bad type, count/length skew.
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xcc})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		var p Packet
		if err := p.DecodeFrom(b); err != nil {
			return
		}
		out, err := p.AppendTo(nil)
		if err != nil {
			t.Fatalf("decoded packet fails to encode: %v", err)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("round trip not canonical:\n in %x\nout %x", b, out)
		}
	})
}

// FuzzFrameDecode throws arbitrary frame bodies at every stream-frame
// decoder. The invariant is no panics and no over-allocation: hostile
// counts must be rejected by the remaining-bytes guards before any
// large make().
func FuzzFrameDecode(f *testing.F) {
	spec := QuerySpec{
		Kind:       1,
		Table:      "t",
		Predicates: []PredSpec{{Col: "c", Op: 2, Const: 5}},
		Formula:    []byte{0, 0},
	}
	f.Add(uint8(FrameHello), (&Hello{Version: ProtoVersion, Tenant: "x"}).EncodeBody(nil))
	f.Add(uint8(FrameWelcome), (&Welcome{Version: 1, Switches: 2, Stream: "t"}).EncodeBody(nil))
	f.Add(uint8(FrameQuery), (&QueryReq{ID: 1, Spec: spec}).EncodeBody(nil))
	f.Add(uint8(FrameResult), (&ResultMsg{ID: 1, Columns: []string{"a"}, Rows: [][]string{{"1"}}}).EncodeBody(nil))
	f.Add(uint8(FrameError), (&ErrorMsg{ID: 1, Code: CodeRetryable, Msg: "m"}).EncodeBody(nil))
	f.Add(uint8(FramePing), (&PingMsg{Nonce: 3}).EncodeBody(nil))
	f.Add(uint8(FrameAppend), (&AppendReq{ID: 1, Rows: 1, Cols: []ColData{{Type: 0, Ints: []int64{4}}}}).EncodeBody(nil))
	f.Add(uint8(FrameAppended), (&AppendedMsg{ID: 1, Version: 2}).EncodeBody(nil))
	f.Add(uint8(FrameSubscribe), (&SubscribeReq{ID: 1, Credits: 2, Spec: spec}).EncodeBody(nil))
	f.Add(uint8(FrameSubscribed), (&SubscribedMsg{ID: 1}).EncodeBody(nil))
	f.Add(uint8(FrameUpdate), (&UpdateMsg{ID: 1, Version: 9, Columns: []string{"a"}, Rows: [][]string{{"1"}}}).EncodeBody(nil))
	f.Add(uint8(FrameCredit), (&CreditMsg{ID: 1, N: 1}).EncodeBody(nil))
	f.Add(uint8(FrameUnsubscribe), (&UnsubscribeMsg{ID: 1}).EncodeBody(nil))
	f.Add(uint8(FrameGoodbye), (&GoodbyeMsg{Reason: "r"}).EncodeBody(nil))
	// Hostile: huge declared counts with tiny bodies.
	f.Add(uint8(FrameResult), []byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, ft uint8, body []byte) {
		var m frameMsg
		switch FrameType(ft) {
		case FrameHello:
			m = &Hello{}
		case FrameWelcome:
			m = &Welcome{}
		case FrameQuery:
			m = &QueryReq{}
		case FrameResult:
			m = &ResultMsg{}
		case FrameError:
			m = &ErrorMsg{}
		case FramePing, FramePong:
			m = &PingMsg{}
		case FrameAppend:
			m = &AppendReq{}
		case FrameAppended:
			m = &AppendedMsg{}
		case FrameSubscribe:
			m = &SubscribeReq{}
		case FrameSubscribed:
			m = &SubscribedMsg{}
		case FrameUpdate:
			m = &UpdateMsg{}
		case FrameCredit:
			m = &CreditMsg{}
		case FrameUnsubscribe:
			m = &UnsubscribeMsg{}
		case FrameGoodbye:
			m = &GoodbyeMsg{}
		default:
			return
		}
		if err := m.DecodeBody(body); err != nil {
			return
		}
		// Successful decodes re-encode to the same bytes: the body
		// grammar is canonical.
		out := m.EncodeBody(nil)
		if !bytes.Equal(out, body) {
			t.Fatalf("frame %d round trip not canonical:\n in %x\nout %x", ft, body, out)
		}
	})
}
