package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// frameMsg is the shared encode/decode surface every frame body has.
type frameMsg interface {
	EncodeBody(b []byte) []byte
	DecodeBody(b []byte) error
}

// sampleSpec is a fully-populated query spec exercising every field.
func sampleSpec() QuerySpec {
	f, err := EncodeFormula(boolexpr.Or{
		boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}},
		boolexpr.Const(false),
		boolexpr.Leaf{V: 2},
	})
	if err != nil {
		panic(err)
	}
	return QuerySpec{
		Kind:  uint8(engine.KindFilter),
		Table: "visits",
		Right: "rankings",
		Predicates: []PredSpec{
			{Col: "duration", Op: uint8(prune.OpGT), Const: -42},
			{Col: "adRevenue", Op: uint8(prune.OpLE), Const: 9000},
			{Col: "userAgent", Like: "Mozilla%"},
		},
		Formula:      f,
		CountOnly:    true,
		DistinctCols: []string{"a", "b"},
		OrderCol:     "adRevenue",
		N:            250,
		KeyCol:       "country",
		AggCol:       "revenue",
		Threshold:    1 << 40,
		LeftKey:      "destURL",
		RightKey:     "pageURL",
		SkylineCols:  []string{"x", "y"},
	}
}

// TestFrameRoundTrips pins encode→decode equality for every frame
// body.
func TestFrameRoundTrips(t *testing.T) {
	msgs := []struct {
		name    string
		in, out frameMsg
	}{
		{"hello", &Hello{Version: ProtoVersion, Tenant: "tenant-3"}, &Hello{}},
		{"welcome", &Welcome{
			Version:  ProtoVersion,
			Switches: 4,
			Tables: []TableDef{
				{Name: "visits", Schema: table.Schema{
					{Name: "duration", Type: table.Int64},
					{Name: "userAgent", Type: table.String},
				}},
				{Name: "rankings", Schema: table.Schema{{Name: "pageURL", Type: table.String}}},
			},
			Stream: "visits",
		}, &Welcome{}},
		{"error", &ErrorMsg{ID: 7, Code: CodeRetryable, Msg: "draining"}, &ErrorMsg{}},
		{"ping", &PingMsg{Nonce: 0xdeadbeef}, &PingMsg{}},
		{"goodbye", &GoodbyeMsg{Reason: "shutdown"}, &GoodbyeMsg{}},
		{"query", &QueryReq{ID: 99, Priority: -2, DeadlineMicros: 1_500_000, Spec: sampleSpec()}, &QueryReq{}},
		{"result", &ResultMsg{
			ID: 99, Mode: 1, EntriesSent: 100_000, Forwarded: 1234, FailedOver: 2,
			Columns: []string{"k", "v"},
			Rows:    [][]string{{"a", "1"}, {"b", "2"}, {"", ""}},
		}, &ResultMsg{}},
		{"result-empty", &ResultMsg{ID: 1, Columns: []string{"count"}}, &ResultMsg{}},
		{"result-traced", &ResultMsg{
			ID: 12, Mode: 2, EntriesSent: 640, Forwarded: 64,
			Columns:   []string{"k"},
			Rows:      [][]string{{"a"}},
			WallNanos: 1_250_000,
			Trace: []TraceStage{
				{Stage: 0, Nanos: 12_000, Entries: 0, Forwarded: 0},
				{Stage: 6, Nanos: 900_000, Entries: 640, Forwarded: 64},
			},
		}, &ResultMsg{}},
		{"appended", &AppendedMsg{ID: 3, Version: 77}, &AppendedMsg{}},
		{"subscribe", &SubscribeReq{ID: 5, Window: 100, Slide: 50, Credits: 4, Spec: sampleSpec()}, &SubscribeReq{}},
		{"subscribed", &SubscribedMsg{ID: 5, Direct: true}, &SubscribedMsg{}},
		{"update", &UpdateMsg{ID: 5, Version: 640, Columns: []string{"c"}, Rows: [][]string{{"x"}}}, &UpdateMsg{}},
		{"credit", &CreditMsg{ID: 5, N: 3}, &CreditMsg{}},
		{"unsubscribe", &UnsubscribeMsg{ID: 5}, &UnsubscribeMsg{}},
	}
	for _, m := range msgs {
		t.Run(m.name, func(t *testing.T) {
			body := m.in.EncodeBody(nil)
			if err := m.out.DecodeBody(body); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(m.in, m.out) {
				t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m.in, m.out)
			}
			// Trailing garbage must be rejected, truncations must error
			// (not panic).
			if err := m.out.DecodeBody(append(append([]byte(nil), body...), 0)); err == nil {
				t.Fatalf("trailing byte accepted")
			}
			for cut := 0; cut < len(body); cut++ {
				_ = m.out.DecodeBody(body[:cut]) // must not panic; errors allowed per prefix
			}
		})
	}
}

// TestAppendReqRoundTrip pins batch → request → batch equality.
func TestAppendReqRoundTrip(t *testing.T) {
	schema := table.Schema{
		{Name: "id", Type: table.Int64},
		{Name: "name", Type: table.String},
	}
	src := table.MustNew(schema)
	for i := 0; i < 10; i++ {
		if err := src.AppendRow(int64(i*3-5), string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	req := AppendBatchOf(42, src)
	body := req.EncodeBody(nil)
	var got AppendReq
	if err := got.DecodeBody(body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(req, &got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", req, got)
	}
	back, err := got.Batch(schema)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if back.NumRows() != src.NumRows() {
		t.Fatalf("rows %d != %d", back.NumRows(), src.NumRows())
	}
	for r := 0; r < src.NumRows(); r++ {
		for c := 0; c < src.NumCols(); c++ {
			if back.ValueAt(c, r) != src.ValueAt(c, r) {
				t.Fatalf("cell (%d,%d) %v != %v", c, r, back.ValueAt(c, r), src.ValueAt(c, r))
			}
		}
	}
	// A schema mismatch is a decode-time validation error, not a panic.
	if _, err := got.Batch(table.Schema{{Name: "id", Type: table.Int64}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := got.Batch(table.Schema{
		{Name: "id", Type: table.String},
		{Name: "name", Type: table.String},
	}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

// TestSpecBindEquivalence pins SpecOf → Bind as the identity on every
// query kind the multitenant mix generates (modulo table pointers).
func TestSpecBindEquivalence(t *testing.T) {
	visits := table.MustNew(table.Schema{
		{Name: "duration", Type: table.Int64},
		{Name: "adRevenue", Type: table.Int64},
		{Name: "userAgent", Type: table.String},
	})
	rankings := table.MustNew(table.Schema{
		{Name: "pageURL", Type: table.String},
		{Name: "rank", Type: table.Int64},
	})
	for i := 0; i < 4; i++ {
		if err := visits.AppendRow(int64(i), int64(i*i), "ua"); err != nil {
			t.Fatal(err)
		}
		if err := rankings.AppendRow("u", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tables := map[string]*table.Table{"visits": visits, "rankings": rankings}
	queries := []*engine.Query{
		{Kind: engine.KindFilter, Table: visits,
			Predicates: []engine.FilterPred{{Col: "duration", Op: prune.OpGT, Const: 1}},
			Formula:    boolexpr.Leaf{V: 0}},
		{Kind: engine.KindDistinct, Table: visits, DistinctCols: []string{"userAgent"}},
		{Kind: engine.KindTopN, Table: visits, OrderCol: "adRevenue", N: 2},
		{Kind: engine.KindGroupByMax, Table: visits, KeyCol: "userAgent", AggCol: "adRevenue"},
		{Kind: engine.KindGroupBySum, Table: visits, KeyCol: "userAgent", AggCol: "duration"},
		{Kind: engine.KindHaving, Table: visits, KeyCol: "userAgent", AggCol: "duration", Threshold: 2},
		{Kind: engine.KindJoin, Table: visits, Right: rankings, LeftKey: "userAgent", RightKey: "pageURL"},
		{Kind: engine.KindSkyline, Table: visits, SkylineCols: []string{"duration", "adRevenue"}},
	}
	for _, q := range queries {
		right := ""
		if q.Right != nil {
			right = "rankings"
		}
		spec, err := SpecOf(q, "visits", right)
		if err != nil {
			t.Fatalf("%v: SpecOf: %v", q.Kind, err)
		}
		// Through the wire and back.
		body := appendSpec(nil, spec)
		d := decoder{b: body}
		dec := d.spec()
		if err := d.done(); err != nil {
			t.Fatalf("%v: spec decode: %v", q.Kind, err)
		}
		got, err := dec.Bind(tables)
		if err != nil {
			t.Fatalf("%v: Bind: %v", q.Kind, err)
		}
		if got.Table != visits || (right != "" && got.Right != rankings) {
			t.Fatalf("%v: tables bound wrong", q.Kind)
		}
		// Execution equivalence is the real contract: the re-bound query
		// answers identically.
		want, err := engine.ExecDirect(q)
		if err != nil {
			t.Fatalf("%v: direct(orig): %v", q.Kind, err)
		}
		have, err := engine.ExecDirect(got)
		if err != nil {
			t.Fatalf("%v: direct(bound): %v", q.Kind, err)
		}
		want.Sort()
		have.Sort()
		if !want.Equal(have) {
			t.Fatalf("%v: bound query diverges:\nwant %v\nhave %v", q.Kind, want, have)
		}
	}
	// Unknown tables fail descriptively.
	spec, _ := SpecOf(queries[0], "nope", "")
	if _, err := spec.Bind(tables); err == nil {
		t.Fatal("unknown table accepted")
	}
}

// TestReadWriteFrame pins the stream framing: sequential frames,
// oversized rejection, clean EOF vs truncation.
func TestReadWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePing, (&PingMsg{Nonce: 1}).EncodeBody(nil)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameGoodbye, (&GoodbyeMsg{Reason: "bye"}).EncodeBody(nil)); err != nil {
		t.Fatal(err)
	}
	ft, body, err := ReadFrame(&buf)
	if err != nil || ft != FramePing {
		t.Fatalf("first frame: %v %v", ft, err)
	}
	var p PingMsg
	if err := p.DecodeBody(body); err != nil || p.Nonce != 1 {
		t.Fatalf("ping body: %+v %v", p, err)
	}
	if ft, _, err = ReadFrame(&buf); err != nil || ft != FrameGoodbye {
		t.Fatalf("second frame: %v %v", ft, err)
	}
	if _, _, err = ReadFrame(&buf); err != io.EOF {
		t.Fatalf("clean EOF, got %v", err)
	}

	// Oversized length prefix is rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
	// Truncated body is ErrUnexpectedEOF, not EOF.
	trunc := []byte{0, 0, 0, 10, byte(FramePing), 1, 2}
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated: %v", err)
	}
	// Zero-length frames are malformed (no type byte).
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero-length: %v", err)
	}
}

// TestDecodeFormulaBudget pins the node-count bound against deep
// hostile formulas.
func TestDecodeFormulaBudget(t *testing.T) {
	// A nest of single-child ANDs deeper than the budget.
	var b []byte
	for i := 0; i < maxFormulaNodes+10; i++ {
		b = append(b, 2, 1) // AND with 1 child
	}
	b = append(b, 1, 1) // innermost: Const(true)
	if _, err := DecodeFormula(b); err == nil {
		t.Fatal("over-budget formula accepted")
	}
	// A legal small formula still decodes.
	enc, err := EncodeFormula(boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := DecodeFormula(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(p0 AND p1)" {
		t.Fatalf("decoded %s", e)
	}
}

// TestControlPacketStrictLength pins the tightened DecodeFrom bounds:
// fixed-size control messages reject trailing bytes.
func TestControlPacketStrictLength(t *testing.T) {
	ack := NewAck(7, 9)
	buf, err := ack.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := p.DecodeFrom(buf); err != nil {
		t.Fatalf("exact ACK: %v", err)
	}
	if err := p.DecodeFrom(append(buf, 0xcc)); !errors.Is(err, ErrBadCount) {
		t.Fatalf("trailing byte on ACK: %v", err)
	}
}
