package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDataRoundTrip(t *testing.T) {
	p := NewData(7, 42, []uint64{1, 2, 3})
	buf, err := p.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.EncodedLen() {
		t.Fatalf("EncodedLen %d != actual %d", p.EncodedLen(), len(buf))
	}
	var q Packet
	if err := q.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if q.Type != MsgData || q.FlowID != 7 || q.Seq != 42 || len(q.Values) != 3 {
		t.Fatalf("decoded %+v", q)
	}
	for i, v := range []uint64{1, 2, 3} {
		if q.Values[i] != v {
			t.Fatalf("value %d = %d", i, q.Values[i])
		}
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, mk := range []func(uint32, uint64) Packet{NewAck, NewFin, NewFinAck} {
		p := mk(3, 99)
		buf, err := p.AppendTo(nil)
		if err != nil {
			t.Fatal(err)
		}
		var q Packet
		q.Values = []uint64{1, 2, 3} // must be cleared by decode
		if err := q.DecodeFrom(buf); err != nil {
			t.Fatal(err)
		}
		if q.Type != p.Type || q.FlowID != 3 || q.Seq != 99 || len(q.Values) != 0 {
			t.Fatalf("decoded %+v want %+v", q, p)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(fid uint32, seq uint64, raw []uint64) bool {
		if len(raw) > MaxValues {
			raw = raw[:MaxValues]
		}
		p := NewData(fid, seq, raw)
		buf, err := p.AppendTo(nil)
		if err != nil {
			return false
		}
		var q Packet
		if err := q.DecodeFrom(buf); err != nil {
			return false
		}
		if q.FlowID != fid || q.Seq != seq || len(q.Values) != len(raw) {
			return false
		}
		for i := range raw {
			if q.Values[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeReusesBuffer(t *testing.T) {
	var q Packet
	big := NewData(1, 1, make([]uint64, 16))
	buf, _ := big.AppendTo(nil)
	if err := q.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	backing := &q.Values[0]
	small := NewData(1, 2, []uint64{9})
	buf2, _ := small.AppendTo(nil)
	if err := q.DecodeFrom(buf2); err != nil {
		t.Fatal(err)
	}
	if &q.Values[0] != backing {
		t.Fatal("DecodeFrom reallocated despite sufficient capacity")
	}
}

func TestDecodeErrors(t *testing.T) {
	var q Packet
	if err := q.DecodeFrom([]byte{1, 2}); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	// Unknown type.
	bad := make([]byte, ackLen)
	bad[0] = 200
	if err := q.DecodeFrom(bad); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Data with count mismatch.
	p := NewData(1, 1, []uint64{1, 2})
	buf, _ := p.AppendTo(nil)
	buf[13] = 3 // claim 3 values
	if err := q.DecodeFrom(buf); err != ErrBadCount {
		t.Fatalf("count mismatch: %v", err)
	}
	// Data header truncated between ackLen and headerLen.
	if err := q.DecodeFrom(buf[:13]); err != ErrTruncated {
		t.Fatalf("truncated data: %v", err)
	}
	// Encode unknown type.
	bp := Packet{Type: MsgType(77)}
	if _, err := bp.AppendTo(nil); err == nil {
		t.Fatal("unknown type encoded")
	}
	// Oversized vector.
	huge := NewData(1, 1, make([]uint64, MaxValues+1))
	if _, err := huge.AppendTo(nil); err == nil {
		t.Fatal("oversized vector encoded")
	}
}

func TestAppendToAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	p := NewAck(1, 2)
	buf, err := p.AppendTo(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("AppendTo overwrote the prefix")
	}
	var q Packet
	if err := q.DecodeFrom(buf[2:]); err != nil {
		t.Fatal(err)
	}
	if q.Type != MsgAck {
		t.Fatal("decode after prefix")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgData.String() != "DATA" || MsgAck.String() != "ACK" ||
		MsgFin.String() != "FIN" || MsgFinAck.String() != "FINACK" {
		t.Fatal("type strings")
	}
	if MsgType(9).String() == "" {
		t.Fatal("unknown type string")
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	p := NewData(1, 0, []uint64{1, 2})
	buf := make([]byte, 0, 64)
	var q Packet
	q.Values = make([]uint64, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seq = uint64(i)
		var err error
		buf, err = p.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := q.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}
