// Package wire implements the Cheetah communication formats of Figure 4:
// data packets carrying one entry's flow id, sequence/entry id and a
// variable-length vector of 64-bit column values (or fingerprints), and
// the ACK/FIN control messages of the reliability protocol (§7.2).
//
// Encoding follows the gopacket idiom for hot paths: DecodeFrom parses
// into a preallocated struct reusing its value slice (zero allocations at
// steady state), and AppendTo serializes by appending to a caller-owned
// buffer. The Cheetah channel runs on its own UDP port with its own
// header, decoupled from ordinary Spark traffic; the fid field lets one
// switch serve multiple datasets/queries concurrently.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType discriminates Cheetah messages.
type MsgType uint8

const (
	// MsgData carries one entry from a CWorker toward the CMaster.
	MsgData MsgType = 1
	// MsgAck acknowledges a sequence number (sent by the switch for
	// pruned packets and by the master for delivered ones).
	MsgAck MsgType = 2
	// MsgFin signals that a worker finished transmitting a flow.
	MsgFin MsgType = 3
	// MsgFinAck acknowledges a FIN.
	MsgFinAck MsgType = 4
)

// String renders the message type.
func (t MsgType) String() string {
	switch t {
	case MsgData:
		return "DATA"
	case MsgAck:
		return "ACK"
	case MsgFin:
		return "FIN"
	case MsgFinAck:
		return "FINACK"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// MaxValues bounds the per-entry value vector; the count travels in an
// 8-bit field (Fig. 4: "The number of values is specified in an 8-bits
// field (n)").
const MaxValues = 255

// headerLen is the fixed part of a data packet:
// type(1) + fid(4) + seq(8) + n(1).
const headerLen = 1 + 4 + 8 + 1

// ackLen is the fixed ACK/FIN/FINACK length: type(1) + fid(4) + seq(8).
const ackLen = 1 + 4 + 8

// Packet is one Cheetah message. For MsgData, Values holds the entry's
// column values/fingerprints; for control messages Values is empty and
// Seq is the acknowledged (or final) sequence number.
type Packet struct {
	Type   MsgType
	FlowID uint32
	Seq    uint64
	Values []uint64
}

// Errors returned by DecodeFrom.
var (
	ErrTruncated = errors.New("wire: truncated packet")
	ErrBadType   = errors.New("wire: unknown message type")
	ErrBadCount  = errors.New("wire: value count disagrees with length")
)

// AppendTo serializes p, appending to buf and returning the extended
// slice. It never fails for MaxValues-bounded data; longer vectors are
// rejected.
func (p *Packet) AppendTo(buf []byte) ([]byte, error) {
	if len(p.Values) > MaxValues {
		return buf, fmt.Errorf("wire: %d values exceed the 8-bit count field", len(p.Values))
	}
	switch p.Type {
	case MsgData:
		buf = append(buf, byte(p.Type))
		buf = binary.BigEndian.AppendUint32(buf, p.FlowID)
		buf = binary.BigEndian.AppendUint64(buf, p.Seq)
		buf = append(buf, byte(len(p.Values)))
		for _, v := range p.Values {
			buf = binary.BigEndian.AppendUint64(buf, v)
		}
		return buf, nil
	case MsgAck, MsgFin, MsgFinAck:
		buf = append(buf, byte(p.Type))
		buf = binary.BigEndian.AppendUint32(buf, p.FlowID)
		buf = binary.BigEndian.AppendUint64(buf, p.Seq)
		return buf, nil
	default:
		return buf, fmt.Errorf("%w: %d", ErrBadType, p.Type)
	}
}

// EncodedLen returns the wire size of p.
func (p *Packet) EncodedLen() int {
	if p.Type == MsgData {
		return headerLen + 8*len(p.Values)
	}
	return ackLen
}

// DecodeFrom parses b into p, reusing p.Values' backing array when
// possible. The parsed Values slice aliases p's internal storage — it is
// valid until the next DecodeFrom on the same Packet.
func (p *Packet) DecodeFrom(b []byte) error {
	if len(b) < ackLen {
		return ErrTruncated
	}
	t := MsgType(b[0])
	switch t {
	case MsgAck, MsgFin, MsgFinAck:
		// Control messages are fixed-size: trailing bytes mean the
		// buffer was framed wrong, and accepting them would break the
		// decode→encode round-trip (the fuzz target's invariant).
		if len(b) != ackLen {
			return ErrBadCount
		}
		p.Type = t
		p.FlowID = binary.BigEndian.Uint32(b[1:5])
		p.Seq = binary.BigEndian.Uint64(b[5:13])
		p.Values = p.Values[:0]
		return nil
	case MsgData:
		if len(b) < headerLen {
			return ErrTruncated
		}
		n := int(b[13])
		if len(b) != headerLen+8*n {
			return ErrBadCount
		}
		p.Type = t
		p.FlowID = binary.BigEndian.Uint32(b[1:5])
		p.Seq = binary.BigEndian.Uint64(b[5:13])
		if cap(p.Values) < n {
			p.Values = make([]uint64, n)
		} else {
			p.Values = p.Values[:n]
		}
		off := headerLen
		for i := 0; i < n; i++ {
			p.Values[i] = binary.BigEndian.Uint64(b[off : off+8])
			off += 8
		}
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadType, t)
	}
}

// NewData builds a data packet.
func NewData(flowID uint32, seq uint64, values []uint64) Packet {
	return Packet{Type: MsgData, FlowID: flowID, Seq: seq, Values: values}
}

// NewAck builds an ACK for (flowID, seq).
func NewAck(flowID uint32, seq uint64) Packet {
	return Packet{Type: MsgAck, FlowID: flowID, Seq: seq}
}

// NewFin builds a FIN carrying the flow's final sequence number.
func NewFin(flowID uint32, lastSeq uint64) Packet {
	return Packet{Type: MsgFin, FlowID: flowID, Seq: lastSeq}
}

// NewFinAck builds a FIN acknowledgement.
func NewFinAck(flowID uint32, lastSeq uint64) Packet {
	return Packet{Type: MsgFinAck, FlowID: flowID, Seq: lastSeq}
}
