package wire

// This file is the network front door's framing layer: the
// length-prefixed message protocol `cheetahd` speaks with external
// clients (internal/netserve). It is deliberately separate from the
// Figure-4 dataplane packet above — Packet is what CWorkers and the
// switch exchange per entry; frames are the client↔server control
// channel carrying whole queries, results and stream batches over TCP.
//
// Every frame is `length(u32) | type(u8) | body`, where length counts
// the type byte plus the body and is capped by MaxFrameLen so a
// hostile peer cannot make the reader allocate unboundedly. Bodies are
// hand-rolled binary like the rest of this package: big-endian fixed
// ints, uvarints for counts, and uvarint-length-prefixed strings.
// Every DecodeBody validates counts against the remaining bytes before
// allocating, and rejects trailing garbage — properties the fuzz
// targets in fuzz_test.go pin.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// ProtoVersion is the wire protocol version carried in the handshake.
// A server refuses a Hello whose version it does not speak.
const ProtoVersion uint16 = 1

// MaxFrameLen caps one frame's encoded size (type byte + body). The
// limit bounds reader allocation against hostile length prefixes; 16
// MiB comfortably fits the result sets and append batches the
// benchmarks move.
const MaxFrameLen = 16 << 20

// FrameType discriminates protocol frames.
type FrameType uint8

const (
	// FrameHello opens a connection (client → server): protocol
	// version and tenant identity.
	FrameHello FrameType = 0x01
	// FrameWelcome accepts a Hello (server → client): negotiated
	// version plus the served tables' schemas.
	FrameWelcome FrameType = 0x02
	// FrameQuery submits one one-shot query (client → server).
	FrameQuery FrameType = 0x03
	// FrameResult answers a Query (server → client).
	FrameResult FrameType = 0x04
	// FrameError answers any request with a failure, or reports a
	// connection-level fault when ID is 0 (server → client).
	FrameError FrameType = 0x05
	// FramePing is a liveness probe (either direction).
	FramePing FrameType = 0x06
	// FramePong answers a Ping, echoing its nonce.
	FramePong FrameType = 0x07
	// FrameAppend streams a row batch into the server's ingestor
	// (client → server).
	FrameAppend FrameType = 0x08
	// FrameAppended acknowledges an Append with the committed version
	// (server → client).
	FrameAppended FrameType = 0x09
	// FrameSubscribe registers a continuous query (client → server).
	FrameSubscribe FrameType = 0x0a
	// FrameSubscribed acknowledges a Subscribe (server → client).
	FrameSubscribed FrameType = 0x0b
	// FrameUpdate pushes a standing-result refresh to a subscriber
	// (server → client); each consumes one send-window credit.
	FrameUpdate FrameType = 0x0c
	// FrameCredit replenishes a subscription's send window
	// (client → server).
	FrameCredit FrameType = 0x0d
	// FrameUnsubscribe deregisters a continuous query (client → server).
	FrameUnsubscribe FrameType = 0x0e
	// FrameGoodbye announces an orderly close (either direction).
	FrameGoodbye FrameType = 0x0f
)

// String renders the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameWelcome:
		return "WELCOME"
	case FrameQuery:
		return "QUERY"
	case FrameResult:
		return "RESULT"
	case FrameError:
		return "ERROR"
	case FramePing:
		return "PING"
	case FramePong:
		return "PONG"
	case FrameAppend:
		return "APPEND"
	case FrameAppended:
		return "APPENDED"
	case FrameSubscribe:
		return "SUBSCRIBE"
	case FrameSubscribed:
		return "SUBSCRIBED"
	case FrameUpdate:
		return "UPDATE"
	case FrameCredit:
		return "CREDIT"
	case FrameUnsubscribe:
		return "UNSUBSCRIBE"
	case FrameGoodbye:
		return "GOODBYE"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// Framing errors.
var (
	// ErrFrameTooLarge rejects a length prefix beyond MaxFrameLen.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadFrame rejects a malformed frame body (truncated fields,
	// counts disagreeing with the remaining bytes, trailing garbage).
	ErrBadFrame = errors.New("wire: malformed frame body")
)

// WriteFrame writes one `length | type | body` frame.
func WriteFrame(w io.Writer, t FrameType, body []byte) error {
	if 1+len(body) > MaxFrameLen {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame, allocating at most MaxFrameLen for the
// body. io.EOF surfaces unchanged on a clean close before the length
// prefix; a partial frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, ErrBadFrame
	}
	if n > MaxFrameLen {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return FrameType(buf[0]), buf[1:], nil
}

// ErrCode classifies a FrameError for the client's retry decision.
type ErrCode uint8

const (
	// CodeRetryable marks a transient server condition — draining for
	// shutdown, backlog shed — the client may retry later or elsewhere.
	CodeRetryable ErrCode = 1
	// CodeInvalid marks a malformed or unservable request; retrying the
	// same request cannot succeed.
	CodeInvalid ErrCode = 2
	// CodeInternal marks an execution failure inside the server.
	CodeInternal ErrCode = 3
)

// String renders the error code.
func (c ErrCode) String() string {
	switch c {
	case CodeRetryable:
		return "retryable"
	case CodeInvalid:
		return "invalid"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// ---- body codec helpers ----

// decoder walks a frame body; the first decode error sticks and every
// later read returns zero values, so message decoders can read all
// fields and check err once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrBadFrame
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// boolean rejects byte values other than 0/1 so that every accepted
// body re-encodes to exactly the bytes received (canonical grammar).
func (d *decoder) boolean() bool {
	v := d.u8()
	if v > 1 {
		d.fail()
	}
	return v == 1
}

func (d *decoder) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	// Reject non-minimal encodings (a multi-byte varint whose last
	// group is zero, e.g. 0xf5 0x00 for 0x75): the grammar is
	// canonical, so each value has exactly one accepted spelling.
	if n <= 0 || (n > 1 && d.b[n-1] == 0) {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	v := d.uvarint()
	// Inline zig-zag decode, mirroring binary.Varint.
	x := int64(v >> 1)
	if v&1 != 0 {
		x = ^x
	}
	return x
}

// count reads a uvarint element count and bounds it by the bytes that
// remain, assuming each element costs at least min bytes — the guard
// that keeps a hostile count from driving a huge allocation.
func (d *decoder) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(d.b)/min)+1 && n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// done rejects trailing bytes: a valid body is consumed exactly.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return ErrBadFrame
	}
	return nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func (d *decoder) strs() []string {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

// ---- handshake ----

// Hello is the client's opening frame.
type Hello struct {
	// Version is the client's protocol version.
	Version uint16
	// Tenant is the connection's tenant identity; every query submitted
	// on the connection is admitted under it (quotas, metrics).
	Tenant string
}

// EncodeBody serializes the Hello body.
func (h *Hello) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.Version)
	return appendString(b, h.Tenant)
}

// DecodeBody parses a Hello body.
func (h *Hello) DecodeBody(b []byte) error {
	d := decoder{b: b}
	h.Version = d.u16()
	h.Tenant = d.str()
	return d.done()
}

// TableDef names one served table and its schema, so clients can build
// queries and append batches without out-of-band schema knowledge.
type TableDef struct {
	Name   string
	Schema table.Schema
}

// Welcome is the server's handshake acceptance.
type Welcome struct {
	// Version is the protocol version the connection will speak.
	Version uint16
	// Switches is the serving fabric's width (informational).
	Switches uint32
	// Tables lists the tables queries may bind by name.
	Tables []TableDef
	// Stream names the appendable table (Append frames and
	// subscriptions target it); empty when streaming is disabled.
	Stream string
}

// EncodeBody serializes the Welcome body.
func (w *Welcome) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, w.Version)
	b = binary.BigEndian.AppendUint32(b, w.Switches)
	b = binary.AppendUvarint(b, uint64(len(w.Tables)))
	for _, t := range w.Tables {
		b = appendString(b, t.Name)
		b = binary.AppendUvarint(b, uint64(len(t.Schema)))
		for _, c := range t.Schema {
			b = appendString(b, c.Name)
			b = append(b, byte(c.Type))
		}
	}
	return appendString(b, w.Stream)
}

// DecodeBody parses a Welcome body.
func (w *Welcome) DecodeBody(b []byte) error {
	d := decoder{b: b}
	w.Version = d.u16()
	if d.err == nil && len(d.b) >= 4 {
		w.Switches = binary.BigEndian.Uint32(d.b)
		d.b = d.b[4:]
	} else {
		d.fail()
	}
	nt := d.count(2)
	w.Tables = nil
	for i := 0; i < nt && d.err == nil; i++ {
		var td TableDef
		td.Name = d.str()
		nc := d.count(2)
		for j := 0; j < nc && d.err == nil; j++ {
			name := d.str()
			typ := table.Type(d.u8())
			if typ != table.Int64 && typ != table.String {
				d.fail()
				break
			}
			td.Schema = append(td.Schema, table.ColumnDef{Name: name, Type: typ})
		}
		w.Tables = append(w.Tables, td)
	}
	w.Stream = d.str()
	return d.done()
}

// ---- errors / liveness ----

// ErrorMsg reports a failed request (ID echoes the request) or a
// connection-level fault (ID 0).
type ErrorMsg struct {
	ID   uint64
	Code ErrCode
	Msg  string
}

// EncodeBody serializes the error body.
func (e *ErrorMsg) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, e.ID)
	b = append(b, byte(e.Code))
	return appendString(b, e.Msg)
}

// DecodeBody parses an error body.
func (e *ErrorMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	e.ID = d.u64()
	e.Code = ErrCode(d.u8())
	e.Msg = d.str()
	return d.done()
}

// PingMsg is a liveness probe; Pong echoes the nonce.
type PingMsg struct{ Nonce uint64 }

// EncodeBody serializes the ping body.
func (p *PingMsg) EncodeBody(b []byte) []byte {
	return binary.BigEndian.AppendUint64(b, p.Nonce)
}

// DecodeBody parses a ping body.
func (p *PingMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	p.Nonce = d.u64()
	return d.done()
}

// GoodbyeMsg announces an orderly close.
type GoodbyeMsg struct{ Reason string }

// EncodeBody serializes the goodbye body.
func (g *GoodbyeMsg) EncodeBody(b []byte) []byte { return appendString(b, g.Reason) }

// DecodeBody parses a goodbye body.
func (g *GoodbyeMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	g.Reason = d.str()
	return d.done()
}

// ---- query specs ----

// maxFormulaNodes bounds a decoded predicate formula; combined with
// boolexpr.MaxTruthTableVars it keeps a hostile Subscribe/Query frame
// from building an arbitrarily deep expression tree.
const maxFormulaNodes = 1024

// PredSpec is one WHERE predicate on the wire.
type PredSpec struct {
	Col   string
	Op    uint8 // prune.CmpOp
	Const int64
	Like  string
}

// QuerySpec is a declarative query spec detached from table pointers:
// tables travel as names and are re-bound against the server's
// catalog. It covers exactly the eight offloadable kinds.
type QuerySpec struct {
	Kind  uint8 // engine.QueryKind
	Table string
	Right string // join probe side

	Predicates []PredSpec
	Formula    []byte // prefix-encoded boolexpr (empty = AND of all predicates)
	CountOnly  bool

	DistinctCols []string

	OrderCol string
	N        int64

	KeyCol    string
	AggCol    string
	Threshold int64

	LeftKey, RightKey string

	SkylineCols []string
}

// EncodeFormula prefix-encodes a monotone predicate formula: node type
// (0 leaf, 1 const, 2 and, 3 or), then the leaf's variable, the
// constant's truth byte, or the child count followed by the children.
func EncodeFormula(e boolexpr.Expr) ([]byte, error) {
	return appendFormula(nil, e)
}

func appendFormula(b []byte, e boolexpr.Expr) ([]byte, error) {
	switch x := e.(type) {
	case boolexpr.Leaf:
		b = append(b, 0)
		return binary.AppendUvarint(b, uint64(x.V)), nil
	case boolexpr.Const:
		b = append(b, 1)
		if x {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case boolexpr.And:
		b = append(b, 2)
		b = binary.AppendUvarint(b, uint64(len(x)))
		var err error
		for _, k := range x {
			if b, err = appendFormula(b, k); err != nil {
				return nil, err
			}
		}
		return b, nil
	case boolexpr.Or:
		b = append(b, 3)
		b = binary.AppendUvarint(b, uint64(len(x)))
		var err error
		for _, k := range x {
			if b, err = appendFormula(b, k); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("wire: formula node %T is not encodable", e)
	}
}

// DecodeFormula parses a prefix-encoded formula, bounding total node
// count.
func DecodeFormula(b []byte) (boolexpr.Expr, error) {
	d := decoder{b: b}
	budget := maxFormulaNodes
	e := decodeFormulaNode(&d, &budget)
	if err := d.done(); err != nil {
		return nil, err
	}
	return e, nil
}

func decodeFormulaNode(d *decoder, budget *int) boolexpr.Expr {
	if *budget <= 0 {
		d.fail()
		return boolexpr.Const(false)
	}
	*budget--
	switch d.u8() {
	case 0:
		v := d.uvarint()
		if v > math.MaxInt32 {
			d.fail()
			return boolexpr.Const(false)
		}
		return boolexpr.Leaf{V: int(v)}
	case 1:
		return boolexpr.Const(d.u8() != 0)
	case 2:
		n := d.count(2)
		kids := make(boolexpr.And, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			kids = append(kids, decodeFormulaNode(d, budget))
		}
		return kids
	case 3:
		n := d.count(2)
		kids := make(boolexpr.Or, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			kids = append(kids, decodeFormulaNode(d, budget))
		}
		return kids
	default:
		d.fail()
		return boolexpr.Const(false)
	}
}

// SpecOf detaches q into a wire spec, naming its table(s) for
// server-side re-binding.
func SpecOf(q *engine.Query, tableName, rightName string) (*QuerySpec, error) {
	s := &QuerySpec{
		Kind:         uint8(q.Kind),
		Table:        tableName,
		Right:        rightName,
		CountOnly:    q.CountOnly,
		DistinctCols: append([]string(nil), q.DistinctCols...),
		OrderCol:     q.OrderCol,
		N:            int64(q.N),
		KeyCol:       q.KeyCol,
		AggCol:       q.AggCol,
		Threshold:    q.Threshold,
		LeftKey:      q.LeftKey,
		RightKey:     q.RightKey,
		SkylineCols:  append([]string(nil), q.SkylineCols...),
	}
	for _, p := range q.Predicates {
		s.Predicates = append(s.Predicates, PredSpec{Col: p.Col, Op: uint8(p.Op), Const: p.Const, Like: p.Like})
	}
	if q.Formula != nil {
		f, err := EncodeFormula(q.Formula)
		if err != nil {
			return nil, err
		}
		s.Formula = f
	}
	return s, nil
}

// Bind re-attaches the spec to concrete tables from the server's
// catalog and returns a validated engine query.
func (s *QuerySpec) Bind(tables map[string]*table.Table) (*engine.Query, error) {
	t, ok := tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("wire: unknown table %q", s.Table)
	}
	q := &engine.Query{
		Kind:         engine.QueryKind(s.Kind),
		Table:        t,
		CountOnly:    s.CountOnly,
		DistinctCols: s.DistinctCols,
		OrderCol:     s.OrderCol,
		N:            int(s.N),
		KeyCol:       s.KeyCol,
		AggCol:       s.AggCol,
		Threshold:    s.Threshold,
		LeftKey:      s.LeftKey,
		RightKey:     s.RightKey,
		SkylineCols:  s.SkylineCols,
	}
	if s.Right != "" {
		r, ok := tables[s.Right]
		if !ok {
			return nil, fmt.Errorf("wire: unknown right table %q", s.Right)
		}
		q.Right = r
	}
	for _, p := range s.Predicates {
		q.Predicates = append(q.Predicates, engine.FilterPred{
			Col: p.Col, Op: prune.CmpOp(p.Op), Const: p.Const, Like: p.Like,
		})
	}
	if len(s.Formula) > 0 {
		f, err := DecodeFormula(s.Formula)
		if err != nil {
			return nil, err
		}
		q.Formula = f
	} else if q.Kind == engine.KindFilter {
		and := make(boolexpr.And, len(q.Predicates))
		for i := range and {
			and[i] = boolexpr.Leaf{V: i}
		}
		q.Formula = boolexpr.Simplify(and)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func appendSpec(b []byte, s *QuerySpec) []byte {
	b = append(b, s.Kind)
	b = appendString(b, s.Table)
	b = appendString(b, s.Right)
	b = binary.AppendUvarint(b, uint64(len(s.Predicates)))
	for _, p := range s.Predicates {
		b = appendString(b, p.Col)
		b = append(b, p.Op)
		b = binary.AppendVarint(b, p.Const)
		b = appendString(b, p.Like)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Formula)))
	b = append(b, s.Formula...)
	if s.CountOnly {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendStrings(b, s.DistinctCols)
	b = appendString(b, s.OrderCol)
	b = binary.AppendVarint(b, s.N)
	b = appendString(b, s.KeyCol)
	b = appendString(b, s.AggCol)
	b = binary.AppendVarint(b, s.Threshold)
	b = appendString(b, s.LeftKey)
	b = appendString(b, s.RightKey)
	return appendStrings(b, s.SkylineCols)
}

func (d *decoder) spec() QuerySpec {
	var s QuerySpec
	s.Kind = d.u8()
	s.Table = d.str()
	s.Right = d.str()
	np := d.count(3)
	for i := 0; i < np && d.err == nil; i++ {
		var p PredSpec
		p.Col = d.str()
		p.Op = d.u8()
		p.Const = d.varint()
		p.Like = d.str()
		s.Predicates = append(s.Predicates, p)
	}
	nf := d.uvarint()
	if d.err == nil && nf <= uint64(len(d.b)) {
		if nf > 0 {
			s.Formula = append([]byte(nil), d.b[:nf]...)
			d.b = d.b[nf:]
		}
	} else {
		d.fail()
	}
	s.CountOnly = d.boolean()
	s.DistinctCols = d.strs()
	s.OrderCol = d.str()
	s.N = d.varint()
	s.KeyCol = d.str()
	s.AggCol = d.str()
	s.Threshold = d.varint()
	s.LeftKey = d.str()
	s.RightKey = d.str()
	s.SkylineCols = d.strs()
	return s
}

// ---- query / result ----

// QueryReq submits one one-shot query.
type QueryReq struct {
	// ID correlates the response; client-chosen, unique per connection.
	ID uint64
	// Priority is the admission priority (serve.QoS.Priority).
	Priority int32
	// DeadlineMicros, when non-zero, is a relative admission deadline in
	// microseconds from server receipt (travels as a duration — absolute
	// instants don't survive clock skew).
	DeadlineMicros uint64
	// Spec is the detached query.
	Spec QuerySpec
}

// EncodeBody serializes the query body.
func (q *QueryReq) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, q.ID)
	b = binary.AppendVarint(b, int64(q.Priority))
	b = binary.AppendUvarint(b, q.DeadlineMicros)
	return appendSpec(b, &q.Spec)
}

// DecodeBody parses a query body.
func (q *QueryReq) DecodeBody(b []byte) error {
	d := decoder{b: b}
	q.ID = d.u64()
	p := d.varint()
	if p < math.MinInt32 || p > math.MaxInt32 {
		d.fail()
	}
	q.Priority = int32(p)
	q.DeadlineMicros = d.uvarint()
	q.Spec = d.spec()
	return d.done()
}

// TraceStage is one aggregated lifecycle stage of the server-side
// execution — obs.Trace.Summary compacted for the wire, so clients see
// where server time went without shipping the whole span list. Stage is
// the obs.Stage number (stable by contract).
type TraceStage struct {
	Stage     uint8
	Nanos     uint64
	Entries   uint64
	Forwarded uint64
}

// ResultMsg answers a QueryReq with the canonical sorted result plus a
// small execution summary.
type ResultMsg struct {
	ID uint64
	// Mode is the plan mode that ran (plan.Mode's uint8 value).
	Mode uint8
	// EntriesSent / Forwarded summarize the dataplane traffic.
	EntriesSent, Forwarded uint64
	// FailedOver counts §7.2 failovers the execution absorbed.
	FailedOver uint32
	Columns    []string
	Rows       [][]string
	// WallNanos is the server-side wall clock of the whole execution
	// (admission waits and failover attempts included).
	WallNanos uint64
	// Trace is the compact per-stage timing summary; empty when the
	// server runs with tracing disabled.
	Trace []TraceStage
}

// EncodeBody serializes the result body.
func (r *ResultMsg) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, r.ID)
	b = append(b, r.Mode)
	b = binary.AppendUvarint(b, r.EntriesSent)
	b = binary.AppendUvarint(b, r.Forwarded)
	b = binary.AppendUvarint(b, uint64(r.FailedOver))
	b = appendResult(b, r.Columns, r.Rows)
	b = binary.AppendUvarint(b, r.WallNanos)
	b = binary.AppendUvarint(b, uint64(len(r.Trace)))
	for _, t := range r.Trace {
		b = append(b, t.Stage)
		b = binary.AppendUvarint(b, t.Nanos)
		b = binary.AppendUvarint(b, t.Entries)
		b = binary.AppendUvarint(b, t.Forwarded)
	}
	return b
}

// DecodeBody parses a result body.
func (r *ResultMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	r.ID = d.u64()
	r.Mode = d.u8()
	r.EntriesSent = d.uvarint()
	r.Forwarded = d.uvarint()
	fo := d.uvarint()
	if fo > math.MaxUint32 {
		d.fail()
	}
	r.FailedOver = uint32(fo)
	r.Columns, r.Rows = d.result()
	r.WallNanos = d.uvarint()
	n := d.count(4) // stage byte + three at-least-one-byte uvarints
	if d.err != nil {
		return d.done()
	}
	if n > 0 {
		r.Trace = make([]TraceStage, n)
		for i := range r.Trace {
			r.Trace[i].Stage = d.u8()
			r.Trace[i].Nanos = d.uvarint()
			r.Trace[i].Entries = d.uvarint()
			r.Trace[i].Forwarded = d.uvarint()
		}
	}
	return d.done()
}

// appendResult serializes a canonical result: columns, then rows of
// exactly len(columns) cells each.
func appendResult(b []byte, cols []string, rows [][]string) []byte {
	b = appendStrings(b, cols)
	b = binary.AppendUvarint(b, uint64(len(rows)))
	for _, row := range rows {
		for _, cell := range row {
			b = appendString(b, cell)
		}
	}
	return b
}

func (d *decoder) result() ([]string, [][]string) {
	cols := d.strs()
	n := d.count(1)
	if d.err != nil {
		return cols, nil
	}
	if len(cols) == 0 {
		if n != 0 {
			d.fail()
		}
		return cols, nil
	}
	if n == 0 {
		return cols, nil
	}
	if uint64(n)*uint64(len(cols)) > uint64(len(d.b))+1 {
		d.fail()
		return cols, nil
	}
	rows := make([][]string, n)
	for i := range rows {
		row := make([]string, len(cols))
		for j := range row {
			row[j] = d.str()
		}
		rows[i] = row
	}
	return cols, rows
}

// ---- streaming ----

// ColData is one append-batch column in schema order.
type ColData struct {
	Type table.Type
	Ints []int64
	Strs []string
}

// AppendReq streams one batch of rows into the server's primary table.
// Columns are self-describing (type + values); the server validates
// them against the stream table's schema before committing.
type AppendReq struct {
	ID   uint64
	Rows int
	Cols []ColData
}

// AppendBatchOf detaches src into an append request (all rows).
func AppendBatchOf(id uint64, src *table.Table) *AppendReq {
	r := &AppendReq{ID: id, Rows: src.NumRows()}
	for c := 0; c < src.NumCols(); c++ {
		cd := ColData{Type: src.ColumnType(c)}
		switch cd.Type {
		case table.Int64:
			cd.Ints = append(cd.Ints, src.Int64Col(c)...)
		case table.String:
			for r2 := 0; r2 < src.NumRows(); r2++ {
				cd.Strs = append(cd.Strs, src.StringAt(c, r2))
			}
		}
		r.Cols = append(r.Cols, cd)
	}
	return r
}

// Batch materializes the request as a table with the given schema,
// validating arity and types.
func (a *AppendReq) Batch(schema table.Schema) (*table.Table, error) {
	if len(a.Cols) != len(schema) {
		return nil, fmt.Errorf("wire: append batch has %d columns, schema has %d", len(a.Cols), len(schema))
	}
	t, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	for i, cd := range a.Cols {
		if cd.Type != schema[i].Type {
			return nil, fmt.Errorf("wire: append column %q is %v, schema wants %v", schema[i].Name, cd.Type, schema[i].Type)
		}
		n := len(cd.Ints)
		if cd.Type == table.String {
			n = len(cd.Strs)
		}
		if n != a.Rows {
			return nil, fmt.Errorf("wire: append column %q has %d values for %d rows", schema[i].Name, n, a.Rows)
		}
	}
	t.Grow(a.Rows)
	row := make([]any, len(schema))
	for r := 0; r < a.Rows; r++ {
		for c, cd := range a.Cols {
			if cd.Type == table.Int64 {
				row[c] = cd.Ints[r]
			} else {
				row[c] = cd.Strs[r]
			}
		}
		if err := t.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// EncodeBody serializes the append body.
func (a *AppendReq) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, a.ID)
	b = binary.AppendUvarint(b, uint64(a.Rows))
	b = binary.AppendUvarint(b, uint64(len(a.Cols)))
	for _, cd := range a.Cols {
		b = append(b, byte(cd.Type))
		switch cd.Type {
		case table.Int64:
			for _, v := range cd.Ints {
				b = binary.AppendVarint(b, v)
			}
		case table.String:
			for _, s := range cd.Strs {
				b = appendString(b, s)
			}
		}
	}
	return b
}

// DecodeBody parses an append body.
func (a *AppendReq) DecodeBody(b []byte) error {
	d := decoder{b: b}
	a.ID = d.u64()
	rows := d.uvarint()
	nc := d.count(1)
	if d.err == nil && rows > uint64(len(d.b))+1 {
		// Each row needs ≥ 1 byte per column; one column minimum.
		d.fail()
	}
	a.Rows = int(rows)
	a.Cols = nil
	for c := 0; c < nc && d.err == nil; c++ {
		cd := ColData{Type: table.Type(d.u8())}
		switch cd.Type {
		case table.Int64:
			cd.Ints = make([]int64, 0, a.Rows)
			for r := 0; r < a.Rows && d.err == nil; r++ {
				cd.Ints = append(cd.Ints, d.varint())
			}
		case table.String:
			cd.Strs = make([]string, 0, a.Rows)
			for r := 0; r < a.Rows && d.err == nil; r++ {
				cd.Strs = append(cd.Strs, d.str())
			}
		default:
			d.fail()
		}
		a.Cols = append(a.Cols, cd)
	}
	return d.done()
}

// AppendedMsg acknowledges an Append with the committed stream version.
type AppendedMsg struct {
	ID      uint64
	Version uint64
}

// EncodeBody serializes the ack body.
func (a *AppendedMsg) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, a.ID)
	return binary.BigEndian.AppendUint64(b, a.Version)
}

// DecodeBody parses the ack body.
func (a *AppendedMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	a.ID = d.u64()
	a.Version = d.u64()
	return d.done()
}

// SubscribeReq registers a continuous query. ID doubles as the
// subscription id for every later Update/Credit/Unsubscribe frame.
type SubscribeReq struct {
	ID uint64
	// Window/Slide select the windowed variants (0/0 = unwindowed).
	Window, Slide uint32
	// Credits is the initial send window: how many Update frames the
	// server may push before waiting for a Credit. 0 defaults to 1.
	Credits uint32
	Spec    QuerySpec
}

// EncodeBody serializes the subscribe body.
func (s *SubscribeReq) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, s.ID)
	b = binary.AppendUvarint(b, uint64(s.Window))
	b = binary.AppendUvarint(b, uint64(s.Slide))
	b = binary.AppendUvarint(b, uint64(s.Credits))
	return appendSpec(b, &s.Spec)
}

// DecodeBody parses a subscribe body.
func (s *SubscribeReq) DecodeBody(b []byte) error {
	d := decoder{b: b}
	s.ID = d.u64()
	w, sl, cr := d.uvarint(), d.uvarint(), d.uvarint()
	if w > math.MaxUint32 || sl > math.MaxUint32 || cr > math.MaxUint32 {
		d.fail()
	}
	s.Window, s.Slide, s.Credits = uint32(w), uint32(sl), uint32(cr)
	s.Spec = d.spec()
	return d.done()
}

// SubscribedMsg acknowledges a Subscribe.
type SubscribedMsg struct {
	ID uint64
	// Direct reports that the standing program could not be hosted on a
	// switch and deltas run exact and unpruned (informational).
	Direct bool
}

// EncodeBody serializes the ack body.
func (s *SubscribedMsg) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, s.ID)
	if s.Direct {
		return append(b, 1)
	}
	return append(b, 0)
}

// DecodeBody parses the ack body.
func (s *SubscribedMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	s.ID = d.u64()
	s.Direct = d.boolean()
	return d.done()
}

// UpdateMsg pushes a subscription's refreshed standing result. Updates
// coalesce server-side (latest wins) while the client's send window is
// exhausted.
type UpdateMsg struct {
	ID uint64
	// Version is the committed row prefix the result covers.
	Version uint64
	Columns []string
	Rows    [][]string
}

// EncodeBody serializes the update body.
func (u *UpdateMsg) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, u.ID)
	b = binary.BigEndian.AppendUint64(b, u.Version)
	return appendResult(b, u.Columns, u.Rows)
}

// DecodeBody parses an update body.
func (u *UpdateMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	u.ID = d.u64()
	u.Version = d.u64()
	u.Columns, u.Rows = d.result()
	return d.done()
}

// CreditMsg replenishes a subscription's send window by N updates.
type CreditMsg struct {
	ID uint64
	N  uint32
}

// EncodeBody serializes the credit body.
func (c *CreditMsg) EncodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, c.ID)
	return binary.AppendUvarint(b, uint64(c.N))
}

// DecodeBody parses a credit body.
func (c *CreditMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	c.ID = d.u64()
	n := d.uvarint()
	if n > math.MaxUint32 {
		d.fail()
	}
	c.N = uint32(n)
	return d.done()
}

// UnsubscribeMsg deregisters a continuous query.
type UnsubscribeMsg struct{ ID uint64 }

// EncodeBody serializes the unsubscribe body.
func (u *UnsubscribeMsg) EncodeBody(b []byte) []byte {
	return binary.BigEndian.AppendUint64(b, u.ID)
}

// DecodeBody parses an unsubscribe body.
func (u *UnsubscribeMsg) DecodeBody(b []byte) error {
	d := decoder{b: b}
	u.ID = d.u64()
	return d.done()
}
