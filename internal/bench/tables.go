package bench

import (
	"fmt"
	"io"

	"cheetah/internal/cache"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
)

// Table2 regenerates the paper's Table 2 — per-algorithm switch resource
// consumption at the paper's default parameters — from the pruners' own
// resource profiles, and verifies each admits onto the Tofino model.
func Table2(w io.Writer) error {
	type row struct {
		defaults string
		pruner   prune.Pruner
	}
	mk := func(p prune.Pruner, err error) prune.Pruner {
		if err != nil {
			panic(err) // static defaults; cannot fail
		}
		return p
	}
	rows := []row{
		{"w=2,d=4096", mk(prune.NewDistinct(prune.DistinctConfig{Rows: 4096, Cols: 2, Policy: cache.FIFO}))},
		{"w=2,d=4096", mk(prune.NewDistinct(prune.DistinctConfig{Rows: 4096, Cols: 2, Policy: cache.LRU}))},
		{"D=2,w=10", mk(prune.NewSkyline(prune.SkylineConfig{Dims: 2, Points: 10, Heuristic: prune.SkylineSum}))},
		{"D=2,w=10", mk(prune.NewSkyline(prune.SkylineConfig{Dims: 2, Points: 10, Heuristic: prune.SkylineAPH}))},
		{"N=250,w=4", mk(prune.NewDetTopN(prune.DetTopNConfig{N: 250, Thresholds: 4}))},
		{"N=250,w=4,d=4096", mk(prune.NewRandTopN(prune.RandTopNConfig{N: 250, Rows: 4096, Cols: 4}))},
		{"w=8,d=4096", mk(prune.NewGroupBy(prune.GroupByConfig{Rows: 4096, Cols: 8}))},
		{"M=4MB,H=3", mk(prune.NewJoin(prune.JoinConfig{FilterBits: 4 << 23, Hashes: 3, Kind: prune.BloomFilter}))},
		{"M=4MB,H=3", mk(prune.NewJoin(prune.JoinConfig{FilterBits: 4 << 23, Hashes: 3, Kind: prune.RegisterBloomFilter}))},
		{"w=1024,d=3", mk(prune.NewHaving(prune.HavingConfig{Agg: prune.HavingSum, Threshold: 1, Rows: 3, CountersPerRow: 1024}))},
	}
	fmt.Fprintf(w, "# table2 — per-algorithm switch resources (regenerated from resource profiles)\n")
	fmt.Fprintf(w, "%-16s %-18s %8s %6s %12s %8s %6s\n",
		"algorithm", "defaults", "stages", "ALUs", "SRAM", "TCAM", "fits")
	for _, r := range rows {
		prof := r.pruner.Profile()
		pl, err := switchsim.NewPipeline(switchsim.Tofino())
		fits := "yes"
		if err == nil {
			if err := pl.Install(1, r.pruner); err != nil {
				fits = "no"
			}
		}
		fmt.Fprintf(w, "%-16s %-18s %8d %6d %12s %8d %6s\n",
			prof.Name, r.defaults, prof.Stages, prof.ALUs,
			switchsim.FormatBits(prof.SRAMBits), prof.TCAMEntries, fits)
	}
	return nil
}

// Table3 reproduces the hardware-comparison table (literature values
// quoted by the paper; no measurement involved).
func Table3(w io.Writer) error {
	fmt.Fprintf(w, "# table3 — hardware choices (literature values per the paper)\n")
	fmt.Fprintf(w, "%-14s %-16s %-12s\n", "system", "throughput", "latency")
	rows := [][3]string{
		{"Server", "10-100 Gbps", "10-100 us"},
		{"GPU", "40-120 Gbps", "8-25 us"},
		{"FPGA", "10-100 Gbps", "10 us"},
		{"SmartNIC", "10-100 Gbps", "5-10 us"},
		{"Tofino V2", "12.8 Tbps", "<1 us"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-16s %-12s\n", r[0], r[1], r[2])
	}
	return nil
}
