package bench

// The net target measures the network front door end to end: a closed
// loop of simulated client connections churns against a cheetahd server
// — dial, handshake, a few mixed-kind queries, disconnect — reporting
// connection setup throughput (conn/s) and query round-trip latency
// percentiles over real TCP. With -addr it drives an external cheetahd
// (the CI e2e job builds one, drives it, then SIGTERMs it and asserts a
// clean drain); without, it spins an in-process server on a loopback
// port, which is also how the baseline's informational net snapshot is
// measured.
//
// The churn loop bounds concurrently-open connections (min(256, conns))
// so thousand-connection runs stay inside default fd limits — and
// connection *setup* rate, not steady-state socket count, is the metric
// that stresses the per-connection fabric plumbing.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"cheetah/internal/netserve"
	"cheetah/internal/plan"
	"cheetah/internal/stats"
	"cheetah/internal/table"
	"cheetah/internal/wire"
	"cheetah/internal/workload/multitenant"
)

// netQueriesPerConn is how many mixed-kind queries each simulated
// connection runs before disconnecting.
const netQueriesPerConn = 4

// netWindow bounds concurrently-open connections during the churn.
const netWindow = 256

// NetResult is one churn run's measurement.
type NetResult struct {
	// Conns is the connection count completed.
	Conns int
	// Wall is the makespan of the churn.
	Wall time.Duration
	// RTTMS holds one entry per query round-trip, in completion order.
	RTTMS []float64
	// Queries counts completed query round-trips.
	Queries int
	// Retried counts retryable server errors absorbed (drain shedding,
	// backlog pushback) — nonzero only when the server is under drain
	// or overload.
	Retried int
}

// ConnsPerSec is the connection setup rate over the wall clock.
func (r *NetResult) ConnsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Conns) / r.Wall.Seconds()
}

// netSpecs precomputes the wire specs the simulated clients submit, one
// per mix index over two full kind cycles.
func netSpecs(mix *multitenant.Mix) ([]wire.QuerySpec, error) {
	specs := make([]wire.QuerySpec, 2*multitenant.NumKinds)
	for i := range specs {
		q := mix.Query(i)
		right := ""
		if q.Right != nil {
			right = "rankings"
		}
		s, err := wire.SpecOf(q, "visits", right)
		if err != nil {
			return nil, err
		}
		specs[i] = *s
	}
	return specs, nil
}

// runNetLevel churns conns simulated connections against the server at
// addr: each dials, handshakes as its mix tenant, runs
// netQueriesPerConn queries, and disconnects. The closed loop keeps at
// most netWindow connections open at once.
func runNetLevel(ctx context.Context, addr string, mix *multitenant.Mix, conns int) (*NetResult, error) {
	specs, err := netSpecs(mix)
	if err != nil {
		return nil, err
	}
	window := netWindow
	if conns < window {
		window = conns
	}
	var (
		mu  sync.Mutex
		res NetResult
	)
	work := make(chan int)
	errc := make(chan error, window)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < window; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for connID := range work {
				rtts, retried, err := runNetConn(ctx, addr, mix, specs, connID)
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				mu.Lock()
				res.Conns++
				res.Queries += len(rtts)
				res.Retried += retried
				res.RTTMS = append(res.RTTMS, rtts...)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < conns; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	res.Wall = time.Since(start)
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	return &res, nil
}

// runNetConn is one simulated connection's life: dial, query, close.
func runNetConn(ctx context.Context, addr string, mix *multitenant.Mix, specs []wire.QuerySpec, connID int) (rtts []float64, retried int, err error) {
	cl, err := netserve.Dial(addr, mix.Tenant(connID))
	if err != nil {
		return nil, 0, fmt.Errorf("bench: dial conn %d: %w", connID, err)
	}
	defer cl.Close()
	for j := 0; j < netQueriesPerConn; j++ {
		i := (connID*netQueriesPerConn + j) % len(specs)
		t0 := time.Now()
		_, err := cl.Query(ctx, specs[i], netserve.QueryOptions{Priority: mix.Priority(i)})
		if err != nil {
			var se *netserve.ServerError
			if errors.As(err, &se) && se.Retryable() {
				retried++
				continue
			}
			return nil, retried, fmt.Errorf("bench: conn %d query %d: %w", connID, j, err)
		}
		rtts = append(rtts, float64(time.Since(t0).Microseconds())/1000)
	}
	return rtts, retried, nil
}

// netMix builds the mix the net target serves and queries.
func netMix(o Options) (*multitenant.Mix, error) {
	uvRows := userVisitsRows / o.Scale
	if uvRows < 2000 {
		uvRows = 2000
	}
	rankRows := rankingsRows / o.Scale
	if rankRows < 1000 {
		rankRows = 1000
	}
	return multitenant.NewMix(multitenant.MixConfig{
		VisitRows: uvRows, RankRows: rankRows, Seed: o.BaseSeed,
	})
}

// Net runs the connection-churn benchmark. With addr it drives an
// external cheetahd serving the same mix (same -scale and -seed on
// both sides); with addr == "" it spins an in-process server on a
// loopback port.
func Net(w io.Writer, o Options, addr string, conns int) error {
	o = o.withDefaults()
	if conns <= 0 {
		conns = 1000
	}
	mix, err := netMix(o)
	if err != nil {
		return err
	}
	if addr == "" {
		srv, err := netserve.Listen("127.0.0.1:0", netserve.Options{
			Tables:  map[string]*table.Table{"visits": mix.Visits, "rankings": mix.Rankings},
			Primary: "visits",
			Plan:    plan.Options{Workers: 1, Seed: o.BaseSeed, Switches: 2},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		addr = srv.Addr().String()
	}
	window := netWindow
	if conns < window {
		window = conns
	}
	fmt.Fprintf(w, "net: %d connections × %d queries, window %d, visits=%d rows, server %s\n",
		conns, netQueriesPerConn, window, mix.Visits.NumRows(), addr)
	res, err := runNetLevel(context.Background(), addr, mix, conns)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %10s %10s %12s %10s %10s %8s\n",
		"conns", "conn/s", "queries", "rtt p50 ms", "p99 ms", "wall s", "retried")
	fmt.Fprintf(w, "%-8d %10.1f %10d %12.2f %10.2f %10.2f %8d\n",
		res.Conns, res.ConnsPerSec(), res.Queries,
		stats.Percentile(res.RTTMS, 50), stats.Percentile(res.RTTMS, 99),
		res.Wall.Seconds(), res.Retried)
	return nil
}
