package bench

import (
	"bytes"
	"strings"
	"testing"
)

// smallOpts keeps test runs fast.
func smallOpts() Options {
	return Options{Scale: 400, Seeds: 2, BaseSeed: 7}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"distinct-FIFO", "distinct-LRU", "skyline-Sum", "skyline-APH",
		"topn-det", "topn-rand", "groupby-max", "join-BF", "join-RBF", "having-SUM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2 missing row %q:\n%s", want, out)
		}
	}
	// Every default configuration must fit the Tofino model.
	if strings.Contains(out, " no\n") {
		t.Fatalf("a Table 2 default does not fit the switch:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Tofino V2") {
		t.Fatal("Table3 missing Tofino row")
	}
}

func TestFig5Shapes(t *testing.T) {
	chart, err := Fig5(nil, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]BarGroup{}
	for _, g := range chart.Groups {
		byLabel[g.Label] = g
	}
	if len(byLabel) != 9 {
		t.Fatalf("expected 9 workloads, got %d", len(byLabel))
	}
	// Headline claims: Cheetah beats warm Spark on the aggregation
	// workloads by 40–200%+ and loses only on BigData A (cheap filter).
	for _, label := range []string{"BigData B", "BigData A+B", "TPC-H Q3", "Distinct",
		"GroupBy (Max)", "Skyline", "Top-N", "Join"} {
		g := byLabel[label]
		if g.Bars["Cheetah"] >= g.Bars["Spark"] {
			t.Errorf("%s: Cheetah %.2fs not faster than Spark %.2fs",
				label, g.Bars["Cheetah"], g.Bars["Spark"])
		}
		if g.Bars["Spark (1st run)"] <= g.Bars["Spark"] {
			t.Errorf("%s: first run not slower than subsequent", label)
		}
	}
	a := byLabel["BigData A"]
	if a.Bars["Cheetah"] < a.Bars["Spark"] {
		t.Errorf("BigData A: Cheetah %.2fs should NOT beat warm Spark %.2fs (serialization overhead)",
			a.Bars["Cheetah"], a.Bars["Spark"])
	}
	// A+B pipelining: Cheetah's A+B is cheaper than A + B separately.
	sum := byLabel["BigData A"].Bars["Cheetah"] + byLabel["BigData B"].Bars["Cheetah"]
	if byLabel["BigData A+B"].Bars["Cheetah"] >= sum {
		t.Errorf("A+B %.2fs not cheaper than A+B run separately %.2fs",
			byLabel["BigData A+B"].Bars["Cheetah"], sum)
	}
}

func TestFig6Shapes(t *testing.T) {
	figA, figB, err := Fig6(nil, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 6a: Cheetah below Spark at every worker count.
	var cheetah, spark Series
	for _, s := range figA.Series {
		if s.Name == "Cheetah" {
			cheetah = s
		} else {
			spark = s
		}
	}
	for i := range cheetah.X {
		if cheetah.Y[i] >= spark.Y[i] {
			t.Errorf("fig6a workers=%v: Cheetah %.2f not below Spark %.2f", cheetah.X[i], cheetah.Y[i], spark.Y[i])
		}
	}
	// 6b: both grow with scale; the gap widens.
	for _, s := range figB.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("fig6b %s does not grow with data scale", s.Name)
		}
	}
	var c6b, s6b Series
	for _, s := range figB.Series {
		if s.Name == "Cheetah" {
			c6b = s
		} else {
			s6b = s
		}
	}
	gapSmall := s6b.Y[0] - c6b.Y[0]
	gapLarge := s6b.Y[len(s6b.Y)-1] - c6b.Y[len(c6b.Y)-1]
	if gapLarge <= gapSmall {
		t.Errorf("fig6b gap does not widen: %.2f then %.2f", gapSmall, gapLarge)
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(nil, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var che, na Series
	for _, s := range fig.Series {
		if s.Name == "Cheetah" {
			che = s
		} else {
			na = s
		}
	}
	for i := range che.X {
		if che.Y[i] >= na.Y[i] {
			t.Errorf("fig7 at %v%%: Cheetah %.3f not below NetAccel %.3f", che.X[i], che.Y[i], na.Y[i])
		}
	}
	// NetAccel grows linearly with result size.
	if na.Y[len(na.Y)-1] <= na.Y[0]*2 {
		t.Error("NetAccel drain barely grows")
	}
}

func TestFig8Shapes(t *testing.T) {
	chart, err := Fig8(nil, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]BarGroup{}
	for _, g := range chart.Groups {
		groups[g.Label] = g
	}
	for _, q := range []string{"Distinct", "Group-By"} {
		sp := groups[q+" / Spark"]
		c10 := groups[q+" / Cheetah 10G"]
		c20 := groups[q+" / Cheetah 20G"]
		// Spark compute-bound; Cheetah network-bound; 20G ≈ 2x better.
		if sp.Bars["Computation"] <= sp.Bars["Network"] {
			t.Errorf("%s: Spark should be compute-bound", q)
		}
		if c10.Bars["Network"] <= c10.Bars["Computation"] {
			t.Errorf("%s: Cheetah should be network-bound at 10G", q)
		}
		improve := c10.Bars["Total"] / c20.Bars["Total"]
		if improve < 1.4 {
			t.Errorf("%s: 20G improvement %.2fx too small", q, improve)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(nil, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		// Monotone increasing and superlinear.
		n := len(s.Y)
		if s.Y[n-1] <= s.Y[0] {
			t.Errorf("%s latency not increasing", s.Name)
		}
		early := s.Y[1] - s.Y[0]
		late := s.Y[n-1] - s.Y[n-2]
		if late < early {
			t.Errorf("%s latency not superlinear", s.Name)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	o := smallOpts()
	t.Run("a", func(t *testing.T) {
		fig, err := Fig10a(o)
		if err != nil {
			t.Fatal(err)
		}
		// Larger d prunes more (unpruned decreases), and OPT is below all.
		for _, s := range fig.Series {
			if s.Name == "OPT" {
				continue
			}
			if s.Y[len(s.Y)-1] > s.Y[0] {
				t.Errorf("%s: unpruned grows with d", s.Name)
			}
		}
		opt := seriesByName(fig, "OPT")
		lru := seriesByName(fig, "LRU")
		for i := range lru.Y {
			if opt.Y[i] > lru.Y[i]+1e-9 {
				t.Errorf("OPT above LRU at d=%v", lru.X[i])
			}
		}
	})
	t.Run("b", func(t *testing.T) {
		fig, err := Fig10b(o)
		if err != nil {
			t.Fatal(err)
		}
		aph := seriesByName(fig, "APH")
		sum := seriesByName(fig, "Sum")
		base := seriesByName(fig, "Baseline")
		last := len(aph.Y) - 1
		if aph.Y[last] > sum.Y[last]*1.05+1e-9 {
			t.Error("APH materially worse than Sum at w=20")
		}
		// At small w the learned heuristics dominate arbitrary points by
		// a wide margin (the paper's headline gap). The w=20 crossover is
		// not asserted: at test scale the heuristics' replacement churn
		// (w·ln(m/w)/m, negligible at paper scale) exceeds Baseline's
		// residual — see Fig10b's doc comment.
		for _, wx := range []float64{1, 2, 4} {
			bi, si := -1, -1
			for i, x := range base.X {
				if x == wx {
					bi = i
				}
			}
			for i, x := range sum.X {
				if x == wx {
					si = i
				}
			}
			if bi >= 0 && si >= 0 && base.Y[bi] < 5*sum.Y[si] {
				t.Errorf("Baseline at w=%v (%.5f) not ≫ Sum (%.5f)", wx, base.Y[bi], sum.Y[si])
			}
		}
		// Paper: the heuristics prune >99% with w ≤ 7, while Baseline is
		// far from that with few points.
		idx := func(s Series, want float64) int {
			for i, x := range s.X {
				if x == want {
					return i
				}
			}
			return -1
		}
		if i := idx(sum, 7); i >= 0 && sum.Y[i] > 0.01 {
			t.Errorf("Sum at w=7 prunes only %.3f%%, paper says >99%%", 100*(1-sum.Y[i]))
		}
		if i := idx(base, 2); i >= 0 && base.Y[i] <= 0.01 {
			t.Error("Baseline at w=2 should be far from 99% pruning")
		}
	})
	t.Run("c", func(t *testing.T) {
		fig, err := Fig10c(o)
		if err != nil {
			t.Fatal(err)
		}
		det := seriesByName(fig, "Det")
		rnd := seriesByName(fig, "Rand")
		last := len(det.Y) - 1
		if rnd.Y[last] >= det.Y[last] {
			t.Error("randomized not better than deterministic at w=12")
		}
	})
	t.Run("d", func(t *testing.T) {
		fig, err := Fig10d(o)
		if err != nil {
			t.Fatal(err)
		}
		gb := seriesByName(fig, "GroupBy")
		if gb.Y[len(gb.Y)-1] >= gb.Y[0] {
			t.Error("group-by pruning does not improve with w")
		}
	})
	t.Run("e", func(t *testing.T) {
		fig, err := Fig10e(o)
		if err != nil {
			t.Fatal(err)
		}
		bf := seriesByName(fig, "BF")
		if bf.Y[len(bf.Y)-1] >= bf.Y[0] {
			t.Error("join pruning does not improve with filter size")
		}
		opt := seriesByName(fig, "OPT")
		for i := range bf.Y {
			if opt.Y[i] > bf.Y[i]+1e-9 {
				t.Errorf("OPT above BF at %vKB", bf.X[i])
			}
		}
	})
	t.Run("f", func(t *testing.T) {
		fig, err := Fig10f(o)
		if err != nil {
			t.Fatal(err)
		}
		hv := seriesByName(fig, "Having")
		if hv.Y[len(hv.Y)-1] >= hv.Y[0] {
			t.Error("having pruning does not improve with counters")
		}
	})
}

func TestFig11Shapes(t *testing.T) {
	o := smallOpts()
	// (a) DISTINCT improves with scale (unpruned falls).
	fig, err := Fig11a(o)
	if err != nil {
		t.Fatal(err)
	}
	big := seriesByName(fig, "d=16384")
	if big.Y[len(big.Y)-1] >= big.Y[0] {
		t.Error("fig11a: DISTINCT does not improve with scale")
	}
	// (c) TOP N improves with scale.
	fig, err = Fig11c(o)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesByName(fig, "w=8")
	if s.Y[len(s.Y)-1] >= s.Y[0] {
		t.Error("fig11c: TOP N does not improve with scale")
	}
	// (e) JOIN degrades with scale for the small filter.
	fig, err = Fig11e(o)
	if err != nil {
		t.Fatal(err)
	}
	small := seriesByName(fig, "0.25MB")
	if small.Y[len(small.Y)-1] <= small.Y[0] {
		t.Error("fig11e: small-filter JOIN does not degrade with scale")
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &Figure{
		ID: "t", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}, CI: []float64{0.01, 0.02}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{0.1, 0.2}},
		},
	}
	var buf bytes.Buffer
	if _, err := fig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "±95%") || !strings.Contains(out, "-") {
		t.Fatalf("rendering missing CI column or gap marker:\n%s", out)
	}
	chart := &BarChart{ID: "c", Order: []string{"x"}, Groups: []BarGroup{{Label: "g", Bars: map[string]float64{"x": 1}}}}
	buf.Reset()
	if _, err := chart.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "g") {
		t.Fatal("bar chart rendering")
	}
}

func seriesByName(f *Figure, name string) Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return Series{}
}
