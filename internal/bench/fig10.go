package bench

import (
	"fmt"
	"io"

	"cheetah/internal/cache"
	"cheetah/internal/prune"
	"cheetah/internal/stats"
	"cheetah/internal/switchsim"
	"cheetah/internal/workload"
)

// unprunedOf runs a pruner over a prepared value stream and returns the
// unpruned fraction.
func unprunedOf(p prune.Pruner, stream [][]uint64) float64 {
	for _, vals := range stream {
		p.Process(vals)
	}
	st := p.Stats()
	if d, ok := p.(prune.Drainer); ok {
		// Drained state reaches the master too; count it as unpruned.
		extra := len(d.Drain())
		return (float64(st.Forwarded()) + float64(extra)) / float64(st.Processed)
	}
	return st.UnprunedRate()
}

// ciSeries runs builder over `seeds` seeds per x and aggregates a series
// with 95% CIs, the §8.3 methodology.
func ciSeries(name string, xs []float64, seeds int, base uint64,
	measure func(x float64, seed uint64) (float64, error)) (Series, error) {
	s := Series{Name: name}
	for _, x := range xs {
		vals := make([]float64, 0, seeds)
		for r := 0; r < seeds; r++ {
			y, err := measure(x, base+uint64(r)*101)
			if err != nil {
				return Series{}, err
			}
			vals = append(vals, y)
		}
		mean, hw := stats.ConfidenceInterval95(vals)
		s.X = append(s.X, x)
		s.Y = append(s.Y, mean)
		s.CI = append(s.CI, hw)
	}
	return s, nil
}

// wrap1 lifts a scalar stream to entry vectors.
func wrap1(vals []uint64) [][]uint64 {
	out := make([][]uint64, len(vals))
	for i, v := range vals {
		out[i] = []uint64{v}
	}
	return out
}

// Fig10a: DISTINCT unpruned fraction vs d (w=2), FIFO vs LRU vs OPT.
func Fig10a(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 6_000_000 / o.Scale
	distinct := 15_000
	if distinct > m/4 {
		distinct = m / 4
	}
	stream := wrap1(workload.DistinctStream(m, distinct, o.BaseSeed))
	fig := &Figure{ID: "fig10a", Title: "DISTINCT (w=2)", XLabel: "rows d", YLabel: "unpruned fraction"}
	ds := []float64{64, 256, 1024, 4096, 16384}
	for _, policy := range []cache.Policy{cache.FIFO, cache.LRU} {
		policy := policy
		s, err := ciSeries(policy.String(), ds, o.Seeds, o.BaseSeed,
			func(x float64, seed uint64) (float64, error) {
				p, err := prune.NewDistinct(prune.DistinctConfig{
					Rows: int(x), Cols: 2, Policy: policy, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				return unprunedOf(p, stream), nil
			})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	opt := unprunedOf(prune.NewOptDistinct(), stream)
	fig.Series = append(fig.Series, Series{Name: "OPT", X: ds, Y: repeat(opt, len(ds))})
	return fig, nil
}

// Fig10b: SKYLINE unpruned fraction vs stored points w: APH, Sum,
// Baseline, OPT. Dimension ranges deliberately unbalanced (0..255 vs
// 0..65535, the §4.4 motivation).
func Fig10b(o Options) (*Figure, error) {
	o = o.withDefaults()
	// Replacement churn (a displaced point is forwarded without
	// re-checking dominance against earlier stages, as on hardware)
	// costs w·ln(m/w) forwards — logarithmic and invisible at paper
	// scale but dominant on tiny streams, so this panel floors m.
	m := 3_000_000 / o.Scale
	if m < 100_000 {
		m = 100_000
	}
	// Correlated dimensions with unbalanced ranges, mirroring the
	// benchmark's (pageRank, avgDuration) skyline inputs: learned prune
	// points (the band's far end) dominate nearly everything, while the
	// first w arbitrary points do not (Fig. 10b's Baseline gap).
	pts := workload.CorrelatedPoints2D(m, 256, 49152, 16384, o.BaseSeed)
	fig := &Figure{ID: "fig10b", Title: "SKYLINE", XLabel: "stored points w", YLabel: "unpruned fraction"}
	ws := []float64{1, 2, 4, 7, 10, 14, 20}
	for _, h := range []prune.SkylineHeuristic{prune.SkylineAPH, prune.SkylineBaseline, prune.SkylineSum} {
		h := h
		seeds := 1 // the score heuristics are deterministic
		if h == prune.SkylineBaseline {
			seeds = o.Seeds // average the arbitrary-sample luck (§8.3)
		}
		s, err := ciSeries(h.String(), ws, seeds, o.BaseSeed,
			func(x float64, seed uint64) (float64, error) {
				p, err := prune.NewSkyline(prune.SkylineConfig{Dims: 2, Points: int(x), Heuristic: h, Seed: seed})
				if err != nil {
					return 0, err
				}
				return unprunedOf(p, pts), nil
			})
		if err != nil {
			return nil, err
		}
		s.CI = nil
		fig.Series = append(fig.Series, s)
	}
	opt := unprunedOf(prune.NewOptSkyline(2), pts)
	fig.Series = append(fig.Series, Series{Name: "OPT", X: ws, Y: repeat(opt, len(ws))})
	return fig, nil
}

// Fig10c: TOP N unpruned fraction vs matrix width w (d=4096):
// deterministic thresholds vs randomized matrix vs OPT.
func Fig10c(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 5_000_000 / o.Scale
	const n = 250
	// The paper's d=4096 presumes multi-million-entry streams; at reduced
	// Scale the matrix must shrink with the stream or it never fills and
	// nothing is pruned. Full scale keeps the paper's d.
	d := 4096
	if m < d*320 {
		d = m / 320
		if d < 64 {
			d = 64
		}
	}
	stream := workload.UniformStream(m, o.BaseSeed)
	u64 := make([][]uint64, len(stream))
	for i, v := range stream {
		u64[i] = []uint64{uint64(v)}
	}
	fig := &Figure{ID: "fig10c", Title: fmt.Sprintf("TOP N (d=%d)", d), XLabel: "matrix width w", YLabel: "unpruned fraction"}
	ws := []float64{2, 4, 6, 8, 10, 12}
	det, err := ciSeries("Det", ws, 1, o.BaseSeed, func(x float64, seed uint64) (float64, error) {
		p, err := prune.NewDetTopN(prune.DetTopNConfig{N: n, Thresholds: int(x)})
		if err != nil {
			return 0, err
		}
		return unprunedOf(p, u64), nil
	})
	if err != nil {
		return nil, err
	}
	det.CI = nil
	rand, err := ciSeries("Rand", ws, o.Seeds, o.BaseSeed, func(x float64, seed uint64) (float64, error) {
		p, err := prune.NewRandTopN(prune.RandTopNConfig{N: n, Rows: d, Cols: int(x), Seed: seed})
		if err != nil {
			return 0, err
		}
		return unprunedOf(p, u64), nil
	})
	if err != nil {
		return nil, err
	}
	opt := unprunedOf(prune.NewOptTopN(n), u64)
	fig.Series = []Series{det, rand, {Name: "OPT", X: ws, Y: repeat(opt, len(ws))}}
	return fig, nil
}

// Fig10d: GROUP BY unpruned fraction vs matrix width w (d=4096).
func Fig10d(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 5_000_000 / o.Scale
	keys := workload.ZipfKeys(m, 1.2, 10_000, o.BaseSeed)
	vals := workload.ZipfKeys(m, 1.1, 1_000, o.BaseSeed+7)
	stream := make([][]uint64, m)
	for i := range stream {
		stream[i] = []uint64{keys[i], vals[i]}
	}
	fig := &Figure{ID: "fig10d", Title: "GROUP BY (max)", XLabel: "matrix width w", YLabel: "unpruned fraction"}
	ws := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	gb, err := ciSeries("GroupBy", ws, o.Seeds, o.BaseSeed, func(x float64, seed uint64) (float64, error) {
		p, err := prune.NewGroupBy(prune.GroupByConfig{Rows: 4096, Cols: int(x), Seed: seed})
		if err != nil {
			return 0, err
		}
		return unprunedOf(p, stream), nil
	})
	if err != nil {
		return nil, err
	}
	opt := unprunedOf(prune.NewOptGroupBy(), stream)
	fig.Series = []Series{gb, {Name: "OPT", X: ws, Y: repeat(opt, len(ws))}}
	return fig, nil
}

// Fig10e: JOIN unpruned fraction (probe pass) vs Bloom filter size:
// BF vs register BF vs OPT.
func Fig10e(o Options) (*Figure, error) {
	o = o.withDefaults()
	scaleKeys := 4_000_000 / o.Scale
	overlap := scaleKeys / 10
	a, b := workload.JoinKeyStreams(overlap, scaleKeys/2, scaleKeys/2, o.BaseSeed)
	fig := &Figure{ID: "fig10e", Title: "JOIN", XLabel: "filter size KB", YLabel: "unpruned fraction"}
	// The x-axis is the paper-scale filter size; actual bits scale with
	// the key population so the load factor matches the paper's.
	sizesKB := []float64{64, 256, 1024, 4096, 16384}
	probeUnpruned := func(p *prune.Join) float64 {
		for _, k := range a {
			p.Process([]uint64{uint64(prune.SideA), k})
		}
		for _, k := range b {
			p.Process([]uint64{uint64(prune.SideB), k})
		}
		p.StartProbe()
		forwarded, total := 0, 0
		for _, k := range a {
			total++
			if p.Process([]uint64{uint64(prune.SideA), k}) == switchsim.Forward {
				forwarded++
			}
		}
		for _, k := range b {
			total++
			if p.Process([]uint64{uint64(prune.SideB), k}) == switchsim.Forward {
				forwarded++
			}
		}
		return float64(forwarded) / float64(total)
	}
	for _, kind := range []prune.JoinFilterKind{prune.BloomFilter, prune.RegisterBloomFilter} {
		kind := kind
		s, err := ciSeries(kind.String(), sizesKB, o.Seeds, o.BaseSeed,
			func(x float64, seed uint64) (float64, error) {
				bits := int(x) * 8 * 1024 / o.Scale
				if bits < 1024 {
					bits = 1024
				}
				p, err := prune.NewJoin(prune.JoinConfig{
					FilterBits: bits, Hashes: 3, Kind: kind, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				return probeUnpruned(p), nil
			})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	// OPT: exact key-set oracle.
	opt := prune.NewOptJoin()
	for _, k := range a {
		opt.Process([]uint64{uint64(prune.SideA), k})
	}
	for _, k := range b {
		opt.Process([]uint64{uint64(prune.SideB), k})
	}
	opt.StartProbe()
	fwd, tot := 0, 0
	for _, k := range a {
		tot++
		if opt.Process([]uint64{uint64(prune.SideA), k}) == switchsim.Forward {
			fwd++
		}
	}
	for _, k := range b {
		tot++
		if opt.Process([]uint64{uint64(prune.SideB), k}) == switchsim.Forward {
			fwd++
		}
	}
	fig.Series = append(fig.Series, Series{
		Name: "OPT", X: sizesKB, Y: repeat(float64(fwd)/float64(tot), len(sizesKB)),
	})
	return fig, nil
}

// Fig10f: HAVING unpruned fraction vs counters per row (3 Count-Min
// rows) — "the codes for languages whose sum-of-ad-revenue is larger
// than $1M".
func Fig10f(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 5_000_000 / o.Scale
	keys := workload.ZipfKeys(m, 1.3, 100, o.BaseSeed)
	revs := workload.ZipfKeys(m, 1.1, 10_000, o.BaseSeed+3)
	stream := make([][]uint64, m)
	var totalRev uint64
	for i := range stream {
		stream[i] = []uint64{keys[i], revs[i]}
		totalRev += revs[i]
	}
	// Threshold at ~2% of total revenue so the output is small but
	// non-empty at every scale.
	threshold := int64(totalRev / 50)
	fig := &Figure{ID: "fig10f", Title: "HAVING (3 Count-Min rows)", XLabel: "counters per row", YLabel: "unpruned fraction"}
	widths := []float64{32, 64, 128, 256, 512, 1024}
	hv, err := ciSeries("Having", widths, o.Seeds, o.BaseSeed, func(x float64, seed uint64) (float64, error) {
		p, err := prune.NewHaving(prune.HavingConfig{
			Agg: prune.HavingSum, Threshold: threshold,
			Rows: 3, CountersPerRow: int(x), Seed: seed,
		})
		if err != nil {
			return 0, err
		}
		return unprunedOf(p, stream), nil
	})
	if err != nil {
		return nil, err
	}
	opt := unprunedOf(prune.NewOptHaving(threshold), stream)
	fig.Series = []Series{hv, {Name: "OPT", X: widths, Y: repeat(opt, len(widths))}}
	return fig, nil
}

// Fig10 runs all six panels.
func Fig10(w io.Writer, o Options) ([]*Figure, error) {
	panels := []func(Options) (*Figure, error){Fig10a, Fig10b, Fig10c, Fig10d, Fig10e, Fig10f}
	var out []*Figure
	for _, f := range panels {
		fig, err := f(o)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
		if w != nil {
			if _, err := fig.WriteTo(w); err != nil {
				return nil, err
			}
			fmt.Fprintln(w)
		}
	}
	return out, nil
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
