package bench

// The skip target measures block skipping on the storage-side metadata
// path: a clustered Int64 column (the ingest-order layout zone maps are
// built for) is filtered at a sweep of selectivities, and each row
// reports the exact skip rate the zone maps achieved plus entries/s for
// the skipping and full-scan executors side by side. Results are
// asserted bit-identical between the two paths — the bench doubles as a
// correctness smoke.

import (
	"fmt"
	"io"
	"strconv"
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/hashutil"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// skipSelectivities is the sweep: 0.1%, 1%, 10%, 50% of rows selected.
var skipSelectivities = []float64{0.001, 0.01, 0.1, 0.5}

// SkipLevel is one measured (selectivity) row of the skip benchmark.
type SkipLevel struct {
	Selectivity float64
	Rows        int
	Stats       engine.SkipStats
	SkipPerSec  float64 // table entries/s through ExecDirectSkip
	ScanPerSec  float64 // table entries/s through ExecDirect
	MatchedRows int
}

// SkipBaselineEntry is one skip-sweep measurement for the baseline
// file. Informational context like the serve/stream/net rows: the skip
// rate is deterministic but entries/s is wall-clock; the diff target
// compares only Benchmarks.
type SkipBaselineEntry struct {
	Selectivity   float64 `json:"selectivity"`
	BlocksSeen    int     `json:"blocks_seen"`
	BlocksSkipped int     `json:"blocks_skipped"`
	RowsSkipped   int     `json:"rows_skipped"`
	SkipRate      float64 `json:"skip_rate"`
	EntriesPerSec float64 `json:"entries_per_sec"`
	ScanPerSec    float64 `json:"scan_entries_per_sec"`
}

// skipTable builds the benchmark table: "ts" is clustered (row index,
// the append-order layout of an ingest log), "val" is random noise so
// the scan path has real column work. The skip index is built at the
// default block size.
func skipTable(rows int, seed uint64) (*table.Table, error) {
	tb, err := table.New(table.Schema{
		{Name: "ts", Type: table.Int64},
		{Name: "val", Type: table.Int64},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		v := int64(hashutil.SplitMix64(seed^uint64(i)) % 1_000_000)
		if err := tb.AppendRow(int64(i), v); err != nil {
			return nil, err
		}
	}
	if err := tb.BuildSkipIndex(0); err != nil {
		return nil, err
	}
	return tb, nil
}

// runSkipLevel measures one selectivity: skip stats from a single
// verified run, then entries/s for the skipping and scanning executors.
func runSkipLevel(tb *table.Table, sel float64) (*SkipLevel, error) {
	rows := tb.NumRows()
	q := &engine.Query{
		Kind:  engine.KindFilter,
		Table: tb,
		Predicates: []engine.FilterPred{
			{Col: "ts", Op: prune.OpLT, Const: int64(sel * float64(rows))},
		},
		Formula:   boolexpr.Leaf{V: 0},
		CountOnly: true,
	}
	want, err := engine.ExecDirect(q)
	if err != nil {
		return nil, err
	}
	got, st, err := engine.ExecDirectSkip(q)
	if err != nil {
		return nil, err
	}
	if !want.Equal(got) {
		return nil, fmt.Errorf("bench: skip result diverges from scan at selectivity %g", sel)
	}
	matched, err := strconv.Atoi(want.Rows[0][0]) // CountOnly: single count row
	if err != nil {
		return nil, err
	}
	lv := &SkipLevel{Selectivity: sel, Rows: rows, Stats: st, MatchedRows: matched}
	for _, path := range []struct {
		name string
		f    func() error
	}{
		{"skip", func() error { _, _, err := engine.ExecDirectSkip(q); return err }},
		{"scan", func() error { _, err := engine.ExecDirect(q); return err }},
	} {
		var benchErr error
		f := path.f
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("bench: skip/%s: %w", path.name, benchErr)
		}
		perSec := float64(rows) / (float64(r.T.Nanoseconds()) / float64(r.N) / 1e9)
		if path.name == "skip" {
			lv.SkipPerSec = perSec
		} else {
			lv.ScanPerSec = perSec
		}
	}
	return lv, nil
}

// Skip runs the block-skipping micro-benchmark and renders one row per
// selectivity: exact skip rate, rows never read, and entries/s with
// skipping on vs a full scan.
func Skip(w io.Writer, o Options) error {
	o = o.withDefaults()
	rows := userVisitsRows / o.Scale
	if min := 8 * table.DefaultBlockRows; rows < min {
		rows = min // below ~8 blocks a skip rate is not meaningful
	}
	tb, err := skipTable(rows, o.BaseSeed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "block skipping: %d rows, clustered Int64 filter, %d-row blocks (zone maps + blooms)\n",
		rows, table.DefaultBlockRows)
	fmt.Fprintf(w, "%-12s %-10s %14s %14s %14s %14s %8s\n",
		"selectivity", "matched", "blocks skipped", "rows skipped", "skip entr/s", "scan entr/s", "speedup")
	for _, sel := range skipSelectivities {
		lv, err := runSkipLevel(tb, sel)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %-10d %8d/%-5d %14d %14.3g %14.3g %7.1fx\n",
			fmt.Sprintf("%g%%", sel*100), lv.MatchedRows,
			lv.Stats.BlocksSkipped, lv.Stats.BlocksSeen, lv.Stats.RowsSkipped,
			lv.SkipPerSec, lv.ScanPerSec, lv.SkipPerSec/lv.ScanPerSec)
	}
	return nil
}
