package bench

// The stream target measures the streaming subsystem end to end: N
// appender goroutines drive row batches open-loop into one Streaming
// handle while a set of standing queries (one per pruner family that
// matters for freshness: FILTER count, TOP N, DISTINCT, HAVING) stays
// subscribed. Each row reports aggregate ingest throughput (rows/s
// over the wall clock) and result freshness — the delay from a batch's
// commit until the observed subscription's standing result covers it —
// as p50/p99, plus the fabric occupancy the standing programs hold.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"cheetah/internal/plan"
	"cheetah/internal/stats"
	"cheetah/internal/table"
	"cheetah/internal/workload/multitenant"
)

// streamAppenderLevels are the concurrency levels measured.
var streamAppenderLevels = []int{1, 8, 64}

// streamBatchRows is the rows per appended batch.
const streamBatchRows = 256

// StreamLevel is one measured (appenders) row of the stream benchmark.
type StreamLevel struct {
	Appenders  int
	Rows       int
	RowsPerSec float64
	P50MS      float64
	P99MS      float64
	// ActiveLeases is the fabric occupancy held by the standing
	// programs while the level ran (summed across switches).
	ActiveLeases int
}

// runStreamLevel ingests totalRows from the mix's visits table with the
// given appender count and returns the level measurement.
func runStreamLevel(mix *multitenant.Mix, switches, appenders, totalRows int, seed uint64) (*StreamLevel, error) {
	target, err := table.New(mix.Visits.Schema())
	if err != nil {
		return nil, err
	}
	db, err := plan.Open(target, plan.Options{Workers: 1, Seed: seed, Switches: switches})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	ctx := context.Background()
	st, err := db.Stream(ctx, plan.StreamOptions{})
	if err != nil {
		return nil, err
	}
	// Standing queries: kinds 0 (FILTER count), 1 (DISTINCT), 2 (TOP N),
	// 5 (HAVING) of the mix, rebased onto the streaming table.
	var subs []*plan.Subscription
	for _, kind := range []int{0, 1, 2, 5} {
		q := *mix.Query(kind)
		q.Table = target
		sub, err := st.Subscribe(ctx, &q)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	observed := subs[2] // TOP N: cheap merge, representative freshness

	// Pre-slice the source into batches and deal them to appenders.
	var batches []*table.Table
	for lo := 0; lo+streamBatchRows <= totalRows && lo+streamBatchRows <= mix.Visits.NumRows(); lo += streamBatchRows {
		v, err := mix.Visits.View(lo, lo+streamBatchRows)
		if err != nil {
			return nil, err
		}
		batches = append(batches, v)
	}
	type commit struct {
		version uint64
		at      time.Time
	}
	var mu sync.Mutex
	var commits []commit

	start := time.Now()
	jobs := make(chan *table.Table, len(batches))
	for _, b := range batches {
		jobs <- b
	}
	close(jobs)
	var wg sync.WaitGroup
	wg.Add(appenders)
	errs := make([]error, appenders)
	for a := 0; a < appenders; a++ {
		go func(a int) {
			defer wg.Done()
			for b := range jobs {
				if err := st.AppendBatch(b); err != nil {
					errs[a] = err
					return
				}
				// The commit's version is at least the batch's rows; the
				// freshness observer matches the next update covering it.
				mu.Lock()
				commits = append(commits, commit{version: st.Version(), at: time.Now()})
				mu.Unlock()
			}
		}(a)
	}

	// Freshness observer: every update of the observed subscription
	// covers all commits at or below its version.
	var freshness []float64
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		for u := range observed.Updates() {
			now := time.Now()
			mu.Lock()
			kept := commits[:0]
			for _, c := range commits {
				if c.version <= u.Version {
					freshness = append(freshness, float64(now.Sub(c.at))/float64(time.Millisecond))
				} else {
					kept = append(kept, c)
				}
			}
			commits = append([]commit(nil), kept...)
			mu.Unlock()
		}
	}()

	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rows := len(batches) * streamBatchRows
	for _, sub := range subs {
		if err := sub.Flush(ctx); err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)
	active := 0
	for _, c := range st.Stats() {
		active += c.Active
	}
	st.Close()
	<-obsDone
	lv := &StreamLevel{
		Appenders:    appenders,
		Rows:         rows,
		RowsPerSec:   float64(rows) / wall.Seconds(),
		P50MS:        stats.Percentile(freshness, 50),
		P99MS:        stats.Percentile(freshness, 99),
		ActiveLeases: active,
	}
	// The standing results must reflect every committed row — a cheap
	// end-to-end sanity check that the bench measured real work.
	if _, ver := observed.Results(); ver != uint64(rows) {
		return nil, fmt.Errorf("bench: standing result covers %d of %d rows", ver, rows)
	}
	return lv, nil
}

// Stream runs the streaming ingest benchmark and renders one row per
// appender level: ingest rows/s, freshness p50/p99, and the fabric
// occupancy of the standing programs.
func Stream(w io.Writer, o Options, switches int) error {
	o = o.withDefaults()
	if switches < 1 {
		switches = 1
	}
	totalRows := userVisitsRows / (4 * o.Scale) // streams re-execute per delta; keep levels quick
	if totalRows < 4*streamBatchRows {
		totalRows = 4 * streamBatchRows
	}
	mix, err := multitenant.NewMix(multitenant.MixConfig{
		VisitRows: totalRows, RankRows: totalRows / 2, Seed: o.BaseSeed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "streaming: %d-row ingest in %d-row batches, 4 standing queries (filter/distinct/topn/having), %d switch(es)\n",
		totalRows, streamBatchRows, switches)
	fmt.Fprintf(w, "%-10s %-10s %14s %12s %12s %8s\n",
		"appenders", "rows", "ingest rows/s", "fresh p50", "fresh p99", "leases")
	for _, appenders := range streamAppenderLevels {
		lv, err := runStreamLevel(mix, switches, appenders, totalRows, o.BaseSeed+uint64(appenders))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %-10d %14.3g %10.2fms %10.2fms %8d\n",
			lv.Appenders, lv.Rows, lv.RowsPerSec, lv.P50MS, lv.P99MS, lv.ActiveLeases)
	}
	return nil
}
