package bench

import (
	"fmt"
	"io"

	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/workload"
)

// cumulativeSeries streams entries through a pruner, sampling the
// cumulative unpruned fraction at the checkpoints — Fig. 11's measurement
// ("each data point refers to the first entries in the relevant data
// set").
func cumulativeSeries(name string, p prune.Pruner, stream [][]uint64, checkpoints []int) Series {
	s := Series{Name: name}
	next := 0
	for i, vals := range stream {
		p.Process(vals)
		if next < len(checkpoints) && i+1 == checkpoints[next] {
			st := p.Stats()
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, st.UnprunedRate())
			next++
		}
	}
	return s
}

// checkpointsFor spreads eight sample points over m entries.
func checkpointsFor(m int) []int {
	var cps []int
	for i := 1; i <= 8; i++ {
		cps = append(cps, m*i/8)
	}
	return cps
}

// Fig11a: DISTINCT (w=2) unpruned fraction vs data scale for several d.
func Fig11a(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 14_000_000 / o.Scale
	distinct := m / 40
	if distinct < 100 {
		distinct = 100
	}
	stream := wrap1(workload.DistinctStream(m, distinct, o.BaseSeed))
	cps := checkpointsFor(m)
	fig := &Figure{ID: "fig11a", Title: "DISTINCT (w=2) vs data scale", XLabel: "entries", YLabel: "unpruned fraction"}
	for _, d := range []int{64, 256, 1024, 4096, 16384} {
		p, err := prune.NewDistinct(prune.DistinctConfig{Rows: d, Cols: 2, Seed: o.BaseSeed})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, cumulativeSeries(fmt.Sprintf("d=%d", d), p, stream, cps))
	}
	fig.Series = append(fig.Series, cumulativeSeries("OPT", prune.NewOptDistinct(), stream, cps))
	return fig, nil
}

// Fig11b: SKYLINE (APH) vs data scale for several w.
func Fig11b(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 9_000_000 / o.Scale
	pts := workload.CorrelatedPoints2D(m, 256, 49152, 16384, o.BaseSeed)
	cps := checkpointsFor(m)
	fig := &Figure{ID: "fig11b", Title: "SKYLINE (APH) vs data scale", XLabel: "entries", YLabel: "unpruned fraction"}
	for _, w := range []int{2, 4, 8, 16} {
		p, err := prune.NewSkyline(prune.SkylineConfig{Dims: 2, Points: w, Heuristic: prune.SkylineAPH})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, cumulativeSeries(fmt.Sprintf("w=%d", w), p, pts, cps))
	}
	fig.Series = append(fig.Series, cumulativeSeries("OPT", prune.NewOptSkyline(2), pts, cps))
	return fig, nil
}

// Fig11c: randomized TOP N vs data scale for several w (d=4096).
func Fig11c(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 14_000_000 / o.Scale
	d := 4096
	if m < d*320 {
		d = m / 320
		if d < 64 {
			d = 64
		}
	}
	vals := workload.UniformStream(m, o.BaseSeed)
	stream := make([][]uint64, m)
	for i, v := range vals {
		stream[i] = []uint64{uint64(v)}
	}
	cps := checkpointsFor(m)
	fig := &Figure{ID: "fig11c", Title: fmt.Sprintf("TOP N (rand, d=%d) vs data scale", d), XLabel: "entries", YLabel: "unpruned fraction"}
	for _, w := range []int{4, 6, 8, 12} {
		p, err := prune.NewRandTopN(prune.RandTopNConfig{N: 250, Rows: d, Cols: w, Seed: o.BaseSeed})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, cumulativeSeries(fmt.Sprintf("w=%d", w), p, stream, cps))
	}
	fig.Series = append(fig.Series, cumulativeSeries("OPT", prune.NewOptTopN(250), stream, cps))
	return fig, nil
}

// Fig11d: GROUP BY vs data scale for several w.
func Fig11d(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 14_000_000 / o.Scale
	keys := workload.ZipfKeys(m, 1.2, 10_000, o.BaseSeed)
	vals := workload.ZipfKeys(m, 1.1, 1_000, o.BaseSeed+7)
	stream := make([][]uint64, m)
	for i := range stream {
		stream[i] = []uint64{keys[i], vals[i]}
	}
	cps := checkpointsFor(m)
	fig := &Figure{ID: "fig11d", Title: "GROUP BY vs data scale", XLabel: "entries", YLabel: "unpruned fraction"}
	for _, w := range []int{2, 4, 6, 8, 10} {
		p, err := prune.NewGroupBy(prune.GroupByConfig{Rows: 4096, Cols: w, Seed: o.BaseSeed})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, cumulativeSeries(fmt.Sprintf("w=%d", w), p, stream, cps))
	}
	fig.Series = append(fig.Series, cumulativeSeries("OPT", prune.NewOptGroupBy(), stream, cps))
	return fig, nil
}

// Fig11e: JOIN vs data scale for several filter sizes. Each checkpoint
// runs a fresh two-pass join over the prefix (false positives grow with
// the key population, so pruning degrades with scale — the paper's
// observation).
func Fig11e(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 6_000_000 / o.Scale
	a, b := workload.JoinKeyStreams(m/10, m/2, m/2, o.BaseSeed)
	fig := &Figure{ID: "fig11e", Title: "JOIN vs data scale", XLabel: "entries", YLabel: "unpruned fraction"}
	// Labels are paper-scale sizes; bits scale with the key population.
	sizes := []struct {
		label string
		bits  int
	}{
		{"0.25MB", (2 << 20) / o.Scale}, {"1MB", (8 << 20) / o.Scale},
		{"4MB", (32 << 20) / o.Scale}, {"16MB", (128 << 20) / o.Scale},
	}
	cps := checkpointsFor(min(len(a), len(b)))
	for _, sz := range sizes {
		s := Series{Name: sz.label}
		for _, cp := range cps {
			bits := sz.bits
			if bits < 1024 {
				bits = 1024
			}
			p, err := prune.NewJoin(prune.JoinConfig{FilterBits: bits, Hashes: 3, Seed: o.BaseSeed})
			if err != nil {
				return nil, err
			}
			for _, k := range a[:cp] {
				p.Process([]uint64{uint64(prune.SideA), k})
			}
			for _, k := range b[:cp] {
				p.Process([]uint64{uint64(prune.SideB), k})
			}
			p.StartProbe()
			fwd, tot := 0, 0
			for _, k := range a[:cp] {
				tot++
				if p.Process([]uint64{uint64(prune.SideA), k}) == switchsim.Forward {
					fwd++
				}
			}
			for _, k := range b[:cp] {
				tot++
				if p.Process([]uint64{uint64(prune.SideB), k}) == switchsim.Forward {
					fwd++
				}
			}
			s.X = append(s.X, float64(2*cp))
			s.Y = append(s.Y, float64(fwd)/float64(tot))
		}
		fig.Series = append(fig.Series, s)
	}
	// OPT at the full scale for reference.
	opt := prune.NewOptJoin()
	for _, k := range a {
		opt.Process([]uint64{uint64(prune.SideA), k})
	}
	for _, k := range b {
		opt.Process([]uint64{uint64(prune.SideB), k})
	}
	opt.StartProbe()
	fwd, tot := 0, 0
	for _, k := range a {
		tot++
		if opt.Process([]uint64{uint64(prune.SideA), k}) == switchsim.Forward {
			fwd++
		}
	}
	for _, k := range b {
		tot++
		if opt.Process([]uint64{uint64(prune.SideB), k}) == switchsim.Forward {
			fwd++
		}
	}
	xs := fig.Series[0].X
	fig.Series = append(fig.Series, Series{Name: "OPT", X: xs, Y: repeat(float64(fwd)/float64(tot), len(xs))})
	return fig, nil
}

// Fig11f: HAVING vs data scale for several counter widths (3 CM rows).
func Fig11f(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := 14_000_000 / o.Scale
	keys := workload.ZipfKeys(m, 1.3, 100, o.BaseSeed)
	revs := workload.ZipfKeys(m, 1.1, 10_000, o.BaseSeed+3)
	stream := make([][]uint64, m)
	var total uint64
	for i := range stream {
		stream[i] = []uint64{keys[i], revs[i]}
		total += revs[i]
	}
	threshold := int64(total / 50)
	cps := checkpointsFor(m)
	fig := &Figure{ID: "fig11f", Title: "HAVING vs data scale (3 CM rows)", XLabel: "entries", YLabel: "unpruned fraction"}
	for _, w := range []int{32, 64, 128, 256, 512} {
		p, err := prune.NewHaving(prune.HavingConfig{
			Agg: prune.HavingSum, Threshold: threshold,
			Rows: 3, CountersPerRow: w, Seed: o.BaseSeed,
		})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, cumulativeSeries(fmt.Sprintf("w=%d", w), p, stream, cps))
	}
	fig.Series = append(fig.Series, cumulativeSeries("OPT", prune.NewOptHaving(threshold), stream, cps))
	return fig, nil
}

// Fig11 runs all six panels.
func Fig11(w io.Writer, o Options) ([]*Figure, error) {
	panels := []func(Options) (*Figure, error){Fig11a, Fig11b, Fig11c, Fig11d, Fig11e, Fig11f}
	var out []*Figure
	for _, f := range panels {
		fig, err := f(o)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
		if w != nil {
			if _, err := fig.WriteTo(w); err != nil {
				return nil, err
			}
			fmt.Fprintln(w)
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
