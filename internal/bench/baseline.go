package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/netserve"
	"cheetah/internal/plan"
	"cheetah/internal/prune"
	"cheetah/internal/stats"
	"cheetah/internal/table"
	"cheetah/internal/workload"
	"cheetah/internal/workload/multitenant"
)

// BaselineEntry is one benchmark's machine-readable measurement.
type BaselineEntry struct {
	Name          string  `json:"name"`
	Path          string  `json:"path"` // "fused", "batch" or "scalar"
	Rows          int     `json:"rows"`
	NsPerOp       float64 `json:"ns_per_op"`
	EntriesPerSec float64 `json:"entries_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// ServeBaselineEntry is one serving-fabric measurement: the mixed
// workload at a fabric width and client count. These rows are
// informational context (wall-clock serving throughput is too
// scheduler-dependent to gate CI on); the diff target compares only
// Benchmarks.
type ServeBaselineEntry struct {
	Switches      int     `json:"switches"`
	Clients       int     `json:"clients"`
	EntriesPerSec float64 `json:"entries_per_sec"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	// QoS/failover counters summed across the fabric at run end —
	// informational fields like the rest of the serve rows (zero on a
	// healthy non-chaos run except Admitted).
	Admitted       uint64 `json:"admitted"`
	Shed           uint64 `json:"shed"`
	FailedOver     uint64 `json:"failed_over"`
	Replaced       uint64 `json:"replaced"`
	DeadlineMissed uint64 `json:"deadline_missed"`
}

// StreamBaselineEntry is one streaming-ingest measurement: appender
// concurrency against ingest throughput and result freshness. Like the
// serve rows these are informational context only (wall-clock
// scheduling noise); the diff target compares only Benchmarks.
type StreamBaselineEntry struct {
	Appenders  int     `json:"appenders"`
	RowsPerSec float64 `json:"rows_per_sec"`
	FreshP50MS float64 `json:"fresh_p50_ms"`
	FreshP99MS float64 `json:"fresh_p99_ms"`
}

// NetBaselineEntry is one network-serving measurement: the connection
// churn against an in-process cheetahd over TCP loopback.
// Informational only, like the serve/stream rows (wall-clock network
// throughput is too host-dependent to gate CI on).
type NetBaselineEntry struct {
	Conns       int     `json:"conns"`
	ConnsPerSec float64 `json:"conns_per_sec"`
	RTTP50MS    float64 `json:"rtt_p50_ms"`
	RTTP99MS    float64 `json:"rtt_p99_ms"`
	Queries     int     `json:"queries"`
}

// BaselineReport is the file format of BENCH_baseline.json: enough
// context to compare runs across commits plus the per-benchmark entries.
type BaselineReport struct {
	GoVersion  string          `json:"go_version"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	Rows       int             `json:"rows"`
	Benchmarks []BaselineEntry `json:"benchmarks"`
	// Serve is the fabric scaling snapshot (switches × clients).
	Serve []ServeBaselineEntry `json:"serve,omitempty"`
	// Stream is the streaming ingest snapshot (appenders × freshness).
	Stream []StreamBaselineEntry `json:"stream,omitempty"`
	// Net is the network serving snapshot (connection churn over TCP
	// loopback).
	Net []NetBaselineEntry `json:"net,omitempty"`
	// Skip is the block-skipping snapshot (selectivity sweep over a
	// clustered column).
	Skip []SkipBaselineEntry `json:"skip,omitempty"`
}

// Baseline measures the ExecCheetah micro-benchmarks — the default
// fused path, the chunked batch path and the legacy scalar path — with
// testing.Benchmark and writes the results as JSON, giving future
// changes a perf trajectory to compare against. rows sizes the
// benchmark table (the tracked benchmarks use 100k).
func Baseline(w io.Writer, rows int) error {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(rows, 1))
	if err != nil {
		return err
	}
	queries := []struct {
		name string
		q    *engine.Query
	}{
		{"ExecCheetahDistinct", &engine.Query{Kind: engine.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}},
		{"ExecCheetahTopN", &engine.Query{Kind: engine.KindTopN, Table: uv, OrderCol: "adRevenue", N: 250}},
		{"ExecCheetahFilter", &engine.Query{
			Kind:  engine.KindFilter,
			Table: uv,
			Predicates: []engine.FilterPred{
				{Col: "adRevenue", Op: prune.OpGT, Const: 500_000},
				{Col: "duration", Op: prune.OpLE, Const: 120},
			},
			Formula:   boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}},
			CountOnly: true,
		}},
	}
	report := BaselineReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
	for _, qc := range queries {
		for _, path := range []struct {
			name   string
			noFuse bool
			scalar bool
		}{{name: "fused"}, {name: "batch", noFuse: true}, {name: "scalar", scalar: true}} {
			q, noFuse, scalar := qc.q, path.noFuse, path.scalar
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := engine.ExecCheetah(q, engine.CheetahOptions{Workers: 5, Seed: uint64(i), NoFuse: noFuse, Scalar: scalar}); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return fmt.Errorf("bench: %s/%s: %w", qc.name, path.name, benchErr)
			}
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			report.Benchmarks = append(report.Benchmarks, BaselineEntry{
				Name:          qc.name,
				Path:          path.name,
				Rows:          rows,
				NsPerOp:       nsPerOp,
				EntriesPerSec: float64(rows) / (nsPerOp / 1e9),
				AllocsPerOp:   r.AllocsPerOp(),
				BytesPerOp:    r.AllocedBytesPerOp(),
			})
		}
	}
	// Fabric serving snapshot: the mixed workload at 8 clients across
	// fabric widths, on a small mix so the baseline stays quick.
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 10_000, RankRows: 5_000, Seed: 1})
	if err != nil {
		return err
	}
	for _, switches := range []int{1, 2, 4} {
		lv, sc, err := runServeLevel(mix, switches, 8, 1, false)
		if err != nil {
			return err
		}
		report.Serve = append(report.Serve, ServeBaselineEntry{
			Switches:       switches,
			Clients:        8,
			EntriesPerSec:  lv.EntriesPerSec(),
			P50MS:          stats.Percentile(lv.LatencyMS, 50),
			P99MS:          stats.Percentile(lv.LatencyMS, 99),
			Admitted:       sc.Admitted,
			Shed:           sc.Shed,
			FailedOver:     sc.FailedOver,
			Replaced:       sc.Replaced,
			DeadlineMissed: sc.DeadlineMissed,
		})
	}
	// Streaming ingest snapshot: the appender levels on a small mix.
	for _, appenders := range streamAppenderLevels {
		lv, err := runStreamLevel(mix, 1, appenders, 8_192, 1)
		if err != nil {
			return err
		}
		report.Stream = append(report.Stream, StreamBaselineEntry{
			Appenders:  appenders,
			RowsPerSec: lv.RowsPerSec,
			FreshP50MS: lv.P50MS,
			FreshP99MS: lv.P99MS,
		})
	}
	// Network serving snapshot: a small connection churn against an
	// in-process server on TCP loopback.
	netSrv, err := netserve.Listen("127.0.0.1:0", netserve.Options{
		Tables:  map[string]*table.Table{"visits": mix.Visits, "rankings": mix.Rankings},
		Primary: "visits",
		Plan:    plan.Options{Workers: 1, Seed: 1, Switches: 2},
	})
	if err != nil {
		return err
	}
	defer netSrv.Close()
	nv, err := runNetLevel(context.Background(), netSrv.Addr().String(), mix, 200)
	if err != nil {
		return err
	}
	report.Net = append(report.Net, NetBaselineEntry{
		Conns:       nv.Conns,
		ConnsPerSec: nv.ConnsPerSec(),
		RTTP50MS:    stats.Percentile(nv.RTTMS, 50),
		RTTP99MS:    stats.Percentile(nv.RTTMS, 99),
		Queries:     nv.Queries,
	})
	// Block-skipping snapshot: the selectivity sweep on a clustered
	// table sized to a handful of blocks so the baseline stays quick.
	skipTB, err := skipTable(16*table.DefaultBlockRows, 1)
	if err != nil {
		return err
	}
	for _, sel := range skipSelectivities {
		lv, err := runSkipLevel(skipTB, sel)
		if err != nil {
			return err
		}
		rate := 0.0
		if lv.Stats.BlocksSeen > 0 {
			rate = float64(lv.Stats.BlocksSkipped) / float64(lv.Stats.BlocksSeen)
		}
		report.Skip = append(report.Skip, SkipBaselineEntry{
			Selectivity:   sel,
			BlocksSeen:    lv.Stats.BlocksSeen,
			BlocksSkipped: lv.Stats.BlocksSkipped,
			RowsSkipped:   lv.Stats.RowsSkipped,
			SkipRate:      rate,
			EntriesPerSec: lv.SkipPerSec,
			ScanPerSec:    lv.ScanPerSec,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
