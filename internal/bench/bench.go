// Package bench regenerates every table and figure of the paper's
// evaluation (§8): completion-time comparisons (Fig. 5, 6, 8), the
// NetAccel drain overhead (Fig. 7), the blocking-master latency (Fig. 9),
// the pruning-rate-vs-resources sweeps (Fig. 10a–f), the pruning-vs-scale
// sweeps (Fig. 11a–f), and the resource (Table 2) and hardware (Table 3)
// summaries. Runners execute the real pruners over generated workloads
// and print the same rows/series the paper reports.
//
// Scale: runners accept a Scale divisor so the full battery runs in
// seconds for tests and in minutes at paper scale; traffic counts are
// extrapolated linearly where the paper's absolute row counts matter
// (the pruning *fractions* are measured, never extrapolated).
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// CI holds optional 95% confidence half-widths (randomized
	// algorithms are run five times, §8.3).
	CI []float64
}

// Figure is a reproducible plot: metadata plus its series.
type Figure struct {
	ID     string // e.g. "fig10a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteTo renders the figure as aligned text columns (x then one column
// per series), consumable by humans and by plotting scripts alike.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
		if s.CI != nil {
			fmt.Fprintf(&b, " %12s", "±95%")
		}
	}
	b.WriteByte('\n')
	// Series may have different x grids; render the union.
	xs := unionX(f.Series)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.6g", x)
		for _, s := range f.Series {
			if y, ok := lookupY(s, x); ok {
				fmt.Fprintf(&b, " %16.8g", y)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
			if s.CI != nil {
				if ci, ok := lookupCI(s, x); ok {
					fmt.Fprintf(&b, " %12.4g", ci)
				} else {
					fmt.Fprintf(&b, " %12s", "-")
				}
			}
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func unionX(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	// Insertion sort; grids are small.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

func lookupY(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func lookupCI(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x && i < len(s.CI) {
			return s.CI[i], true
		}
	}
	return 0, false
}

// BarGroup is one cluster of bars (Fig. 5/8 style).
type BarGroup struct {
	Label string
	Bars  map[string]float64
}

// BarChart is a grouped bar chart rendered as a table.
type BarChart struct {
	ID     string
	Title  string
	YLabel string
	Order  []string // bar ordering within each group
	Groups []BarGroup
}

// WriteTo renders the chart.
func (c *BarChart) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (%s)\n", c.ID, c.Title, c.YLabel)
	fmt.Fprintf(&b, "%-22s", "workload")
	for _, name := range c.Order {
		fmt.Fprintf(&b, " %16s", name)
	}
	b.WriteByte('\n')
	for _, g := range c.Groups {
		fmt.Fprintf(&b, "%-22s", g.Label)
		for _, name := range c.Order {
			if v, ok := g.Bars[name]; ok {
				fmt.Fprintf(&b, " %16.3f", v)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Options configures a bench run.
type Options struct {
	// Scale divides the paper's dataset sizes (1 = paper scale). The
	// default used by tests is 100.
	Scale int
	// Seeds is the number of runs for randomized algorithms (default 5,
	// matching §8.3).
	Seeds int
	// BaseSeed offsets all RNG seeds.
	BaseSeed uint64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 100
	}
	if o.Seeds <= 0 {
		o.Seeds = 5
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 0xc0ffee
	}
	return o
}
