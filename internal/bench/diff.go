package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// LoadBaseline reads a BENCH_baseline.json produced by Baseline.
func LoadBaseline(path string) (BaselineReport, error) {
	var r BaselineReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return r, nil
}

// Diff compares the current measurements against a reference baseline
// and writes a per-benchmark table. A benchmark regresses when its
// entries/s falls more than threshold (a fraction, e.g. 0.15) below the
// reference; the returned slice names every regressed benchmark. Missing
// counterparts are reported but never count as regressions (baselines
// predate newly added benchmarks).
func Diff(w io.Writer, ref, cur BaselineReport, threshold float64) []string {
	key := func(e BaselineEntry) string { return e.Name + "/" + e.Path }
	refBy := make(map[string]BaselineEntry, len(ref.Benchmarks))
	for _, e := range ref.Benchmarks {
		refBy[key(e)] = e
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "benchmark", "ref entries/s", "cur entries/s", "delta")
	var regressed []string
	for _, e := range cur.Benchmarks {
		r, ok := refBy[key(e)]
		if !ok {
			fmt.Fprintf(w, "%-28s %14s %14.0f %8s\n", key(e), "-", e.EntriesPerSec, "new")
			continue
		}
		delta := 0.0
		if r.EntriesPerSec > 0 {
			delta = e.EntriesPerSec/r.EntriesPerSec - 1
		}
		mark := ""
		if delta < -threshold {
			mark = "  REGRESSED"
			regressed = append(regressed, key(e))
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%%%s\n",
			key(e), r.EntriesPerSec, e.EntriesPerSec, 100*delta, mark)
		delete(refBy, key(e))
	}
	for k := range refBy {
		fmt.Fprintf(w, "%-28s %14.0f %14s %8s\n", k, refBy[k].EntriesPerSec, "-", "missing")
	}
	return regressed
}
