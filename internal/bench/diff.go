package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// LoadBaseline reads a BENCH_baseline.json produced by Baseline.
func LoadBaseline(path string) (BaselineReport, error) {
	var r BaselineReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return r, nil
}

// diffRow is one benchmark's comparison against the reference baseline.
type diffRow struct {
	key      string
	ref, cur float64 // entries/s; < 0 when the side has no measurement
	delta    float64 // cur/ref - 1
	status   string  // "", "REGRESSED", "new", "missing"
}

// diffRows compares cur against ref. A benchmark regresses when its
// entries/s falls more than threshold (a fraction, e.g. 0.15) below the
// reference. Missing counterparts are reported but never count as
// regressions (baselines predate newly added benchmarks).
func diffRows(ref, cur BaselineReport, threshold float64) []diffRow {
	key := func(e BaselineEntry) string { return e.Name + "/" + e.Path }
	refBy := make(map[string]BaselineEntry, len(ref.Benchmarks))
	for _, e := range ref.Benchmarks {
		refBy[key(e)] = e
	}
	var rows []diffRow
	for _, e := range cur.Benchmarks {
		r, ok := refBy[key(e)]
		if !ok {
			rows = append(rows, diffRow{key: key(e), ref: -1, cur: e.EntriesPerSec, status: "new"})
			continue
		}
		delta := 0.0
		if r.EntriesPerSec > 0 {
			delta = e.EntriesPerSec/r.EntriesPerSec - 1
		}
		row := diffRow{key: key(e), ref: r.EntriesPerSec, cur: e.EntriesPerSec, delta: delta}
		if delta < -threshold {
			row.status = "REGRESSED"
		}
		rows = append(rows, row)
		delete(refBy, key(e))
	}
	onlyRef := make([]string, 0, len(refBy))
	for k := range refBy {
		onlyRef = append(onlyRef, k)
	}
	sort.Strings(onlyRef)
	for _, k := range onlyRef {
		rows = append(rows, diffRow{key: k, ref: refBy[k].EntriesPerSec, cur: -1, status: "missing"})
	}
	return rows
}

// regressions filters the regressed benchmark names out of rows.
func regressions(rows []diffRow) []string {
	var out []string
	for _, r := range rows {
		if r.status == "REGRESSED" {
			out = append(out, r.key)
		}
	}
	return out
}

// Diff compares the current measurements against a reference baseline
// and writes a per-benchmark text table; the returned slice names every
// regressed benchmark.
func Diff(w io.Writer, ref, cur BaselineReport, threshold float64) []string {
	rows := diffRows(ref, cur, threshold)
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "benchmark", "ref entries/s", "cur entries/s", "delta")
	for _, r := range rows {
		switch r.status {
		case "new":
			fmt.Fprintf(w, "%-28s %14s %14.0f %8s\n", r.key, "-", r.cur, "new")
		case "missing":
			fmt.Fprintf(w, "%-28s %14.0f %14s %8s\n", r.key, r.ref, "-", "missing")
		default:
			mark := ""
			if r.status == "REGRESSED" {
				mark = "  REGRESSED"
			}
			fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%%%s\n",
				r.key, r.ref, r.cur, 100*r.delta, mark)
		}
	}
	return regressions(rows)
}

// DiffMarkdown renders the same comparison as Diff as a GitHub-flavored
// markdown table — the shape CI writes to the step summary — and returns
// the regressed benchmark names.
func DiffMarkdown(ref, cur BaselineReport, threshold float64) (string, []string) {
	rows := diffRows(ref, cur, threshold)
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench diff vs committed baseline (threshold %.0f%%)\n\n", 100*threshold)
	b.WriteString("| benchmark | ref entries/s | cur entries/s | delta | status |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		refCell, curCell, deltaCell, status := "–", "–", "–", "ok"
		if r.ref >= 0 {
			refCell = fmt.Sprintf("%.0f", r.ref)
		}
		if r.cur >= 0 {
			curCell = fmt.Sprintf("%.0f", r.cur)
		}
		if r.ref >= 0 && r.cur >= 0 {
			deltaCell = fmt.Sprintf("%+.1f%%", 100*r.delta)
		}
		switch r.status {
		case "REGRESSED":
			status = "⚠️ regressed"
		case "new", "missing":
			status = r.status
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", r.key, refCell, curCell, deltaCell, status)
	}
	reg := regressions(rows)
	if len(reg) == 0 {
		fmt.Fprintf(&b, "\nNo regressions beyond %.0f%%.\n", 100*threshold)
	} else {
		fmt.Fprintf(&b, "\n**%d benchmark(s) regressed beyond %.0f%%.** CI hardware differs from the"+
			" baseline machine; re-measure locally before treating this as real.\n", len(reg), 100*threshold)
	}
	return b.String(), reg
}
