package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func entry(name, path string, eps float64) BaselineEntry {
	return BaselineEntry{Name: name, Path: path, Rows: 1000, EntriesPerSec: eps}
}

func TestDiffFlagsRegressions(t *testing.T) {
	ref := BaselineReport{Benchmarks: []BaselineEntry{
		entry("A", "batch", 1000),
		entry("A", "scalar", 500),
		entry("Gone", "batch", 100),
	}}
	cur := BaselineReport{Benchmarks: []BaselineEntry{
		entry("A", "batch", 800),  // -20%: beyond the 15% budget
		entry("A", "scalar", 460), // -8%: within budget
		entry("New", "batch", 50), // no reference: never a regression
	}}
	var out strings.Builder
	regressed := Diff(&out, ref, cur, 0.15)
	if len(regressed) != 1 || regressed[0] != "A/batch" {
		t.Fatalf("regressed = %v, want [A/batch]", regressed)
	}
	text := out.String()
	for _, want := range []string{"REGRESSED", "new", "missing"} {
		if !strings.Contains(text, want) {
			t.Errorf("diff output missing %q:\n%s", want, text)
		}
	}
}

func TestDiffNoRegressions(t *testing.T) {
	ref := BaselineReport{Benchmarks: []BaselineEntry{entry("A", "batch", 1000)}}
	cur := BaselineReport{Benchmarks: []BaselineEntry{entry("A", "batch", 980)}}
	var out strings.Builder
	if regressed := Diff(&out, ref, cur, 0.15); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none", regressed)
	}
}

func TestLoadBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte(`{"rows": 7, "benchmarks": [{"name":"A","path":"batch","entries_per_sec":12}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 7 || len(r.Benchmarks) != 1 || r.Benchmarks[0].EntriesPerSec != 12 {
		t.Fatalf("loaded %+v", r)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadBaseline(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
}

// TestCommittedBaselineParses guards the repo's committed baseline file:
// the diff step in CI depends on it staying loadable.
func TestCommittedBaselineParses(t *testing.T) {
	r, err := LoadBaseline("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) == 0 {
		t.Fatal("committed baseline has no benchmarks")
	}
}
