package bench

// The trace target (cheetah-bench -trace) prints measured execution
// span trees: each of the eight mix kinds runs once per execution path
// — the planner's single-switch choice (fused or batched), sharded
// across the fabric, and forced exact direct — and each execution's
// ExplainAnalyze is printed: the plan banner plus the lifecycle trace
// (plan, skip, encode, prune, per-switch passes, merge) with wall-clock
// durations and entry counts. This is the human entry point to the
// internal/obs tracing the serving stack records on every query.

import (
	"context"
	"fmt"
	"io"

	"cheetah/internal/plan"
	"cheetah/internal/workload/multitenant"
)

// Trace renders ExplainAnalyze span trees for the whole kind × path
// matrix.
func Trace(w io.Writer, o Options, switches int) error {
	o = o.withDefaults()
	uvRows := userVisitsRows / o.Scale
	if uvRows < 2000 {
		uvRows = 2000
	}
	rankRows := rankingsRows / o.Scale
	if rankRows < 1000 {
		rankRows = 1000
	}
	mix, err := multitenant.NewMix(multitenant.MixConfig{
		VisitRows: uvRows, RankRows: rankRows, Seed: o.BaseSeed,
	})
	if err != nil {
		return err
	}
	if switches < 2 {
		switches = 2
	}
	single, err := plan.Open(mix.Visits, plan.Options{Workers: 1, Seed: o.BaseSeed})
	if err != nil {
		return err
	}
	sharded, err := plan.Open(mix.Visits, plan.Options{Workers: 1, Seed: o.BaseSeed, Switches: switches})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "execution traces: %d kinds × 3 paths, visits=%d rows, rankings=%d rows\n",
		multitenant.NumKinds, uvRows, rankRows)
	ctx := context.Background()
	for i := 0; i < multitenant.NumKinds; i++ {
		q := mix.Query(i)
		fmt.Fprintf(w, "\n===== %v =====\n", q.Kind)
		paths := []struct {
			name string
			run  func() (*plan.Execution, error)
		}{
			{"single-switch (planner's choice)", func() (*plan.Execution, error) {
				return single.Exec(ctx, q)
			}},
			{fmt.Sprintf("sharded ×%d", switches), func() (*plan.Execution, error) {
				return sharded.Exec(ctx, q)
			}},
			{"forced direct (exact reference)", func() (*plan.Execution, error) {
				return single.ExecPlan(ctx, &plan.Plan{
					Query:    q,
					Mode:     plan.ModeDirect,
					Model:    single.Model(),
					Workers:  1,
					Switches: 1,
					Reason:   "trace target: forced exact direct execution",
				})
			}},
		}
		for _, p := range paths {
			ex, err := p.run()
			if err != nil {
				return fmt.Errorf("%v %s: %w", q.Kind, p.name, err)
			}
			fmt.Fprintf(w, "\n--- %s ---\n%s", p.name, ex.ExplainAnalyze())
		}
	}
	return nil
}
