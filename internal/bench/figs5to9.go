package bench

import (
	"fmt"
	"io"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

// paper-scale dataset sizes (§8.1–8.2).
const (
	userVisitsRows = 31_700_000
	rankingsRows   = 18_000_000
	tpchOrders     = 1_500_000
)

// fig5Workload bundles one bar group's query and its measured traffic.
type fig5Workload struct {
	label   string
	kind    engine.QueryKind
	workers int
	run     func(o Options) (*engine.CheetahRun, int, error) // run → (traffic, paper-scale rows)
}

// buildTables constructs the scaled benchmark tables once per invocation.
func buildTables(o Options) (uv, rank *engine.Query, orders, lineitem *engine.Query, err error) {
	uvRows := userVisitsRows / o.Scale
	if uvRows < 1000 {
		uvRows = 1000
	}
	uvT, err := workload.UserVisits(workload.DefaultUserVisits(uvRows, o.BaseSeed))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rankRows := rankingsRows / o.Scale
	if rankRows < 1000 {
		rankRows = 1000
	}
	rankT := workload.Rankings(rankRows, o.BaseSeed+1)
	// "As the data is nearly sorted on the filtered column, we run the
	// query on a random permutation of the table."
	if err := rankT.Shuffle(o.BaseSeed + 2); err != nil {
		return nil, nil, nil, nil, err
	}
	oRows := tpchOrders / o.Scale
	if oRows < 500 {
		oRows = 500
	}
	oT, lT, err := workload.TPCHQ3(oRows, o.BaseSeed+3)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return &engine.Query{Table: uvT}, &engine.Query{Table: rankT},
		&engine.Query{Table: oT}, &engine.Query{Table: lT}, nil
}

// Fig5 regenerates the completion-time comparison: Spark (1st run),
// Spark (subsequent) and Cheetah across the benchmark workloads.
func Fig5(w io.Writer, o Options) (*BarChart, error) {
	o = o.withDefaults()
	uvQ, rankQ, oQ, lQ, err := buildTables(o)
	if err != nil {
		return nil, err
	}
	uv, rank, ordersT, lineitemT := uvQ.Table, rankQ.Table, oQ.Table, lQ.Table
	cm := engine.DefaultCostModel()

	type spec struct {
		label   string
		q       *engine.Query
		workers int
		result  int // representative result entries for the Spark transfer
	}
	specs := []spec{
		{"BigData A", &engine.Query{
			Kind: engine.KindFilter, Table: rank,
			Predicates: []engine.FilterPred{{Col: "avgDuration", Op: prune.OpLT, Const: 10}},
			Formula:    boolexpr.Leaf{V: 0}, CountOnly: true,
		}, 5, 1},
		{"BigData B", &engine.Query{
			Kind: engine.KindGroupBySum, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue",
		}, 5, 100},
		{"TPC-H Q3", &engine.Query{
			Kind: engine.KindJoin, Table: ordersT, Right: lineitemT,
			LeftKey: "o_orderkey", RightKey: "l_orderkey",
		}, 1, tpchOrders / o.Scale},
		{"Distinct", &engine.Query{
			Kind: engine.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"},
		}, 5, 8192},
		{"GroupBy (Max)", &engine.Query{
			Kind: engine.KindGroupByMax, Table: uv, KeyCol: "userAgent", AggCol: "adRevenue",
		}, 5, 8192},
		{"Skyline", &engine.Query{
			Kind: engine.KindSkyline, Table: rank, SkylineCols: []string{"pageRank", "avgDuration"},
		}, 5, 50},
		{"Top-N", &engine.Query{
			Kind: engine.KindTopN, Table: uv, OrderCol: "adRevenue", N: 250,
		}, 5, 250},
		{"Join", &engine.Query{
			Kind: engine.KindJoin, Table: uv, Right: rank,
			LeftKey: "destURL", RightKey: "pageURL",
		}, 5, uv.NumRows() / 10},
	}

	chart := &BarChart{
		ID:     "fig5",
		Title:  "completion time, Big Data benchmark + per-algorithm queries",
		YLabel: "seconds",
		Order:  []string{"Spark (1st run)", "Spark", "Cheetah"},
	}
	var aPlusB *BarGroup
	for _, s := range specs {
		run, err := engine.ExecCheetah(s.q, engine.CheetahOptions{Workers: s.workers, Seed: o.BaseSeed})
		if err != nil {
			return nil, err
		}
		// Extrapolate traffic counts to paper scale; pruning fractions
		// stay as measured.
		tr := run.Traffic
		tr.EntriesSent *= o.Scale
		tr.Forwarded *= o.Scale
		tr.SecondPassSent *= o.Scale
		tr.MasterProcessed *= o.Scale
		perWorker := make([]int, s.workers)
		taskRows := s.q.Table.NumRows()
		if s.q.Kind == engine.KindJoin {
			taskRows += s.q.Right.NumRows()
		}
		for i := range perWorker {
			perWorker[i] = taskRows * o.Scale / s.workers
		}
		group := BarGroup{Label: s.label, Bars: map[string]float64{
			"Spark (1st run)": cm.SparkTime(s.q.Kind, perWorker, s.result*o.Scale, true, 10).Total(),
			"Spark":           cm.SparkTime(s.q.Kind, perWorker, s.result*o.Scale, false, 10).Total(),
			"Cheetah":         cm.CheetahTime(s.q.Kind, tr, 10).Total(),
		}}
		chart.Groups = append(chart.Groups, group)
		if s.label == "BigData B" {
			// A+B shares the serialization pass (§8.2.1): the combined
			// query streams the table once with the filter packed beside
			// the group-by (§6), so Cheetah's A+B ≈ B plus the master's A
			// work; Spark runs the two queries back to back.
			a := chart.Groups[0]
			combined := BarGroup{Label: "BigData A+B", Bars: map[string]float64{}}
			for _, k := range chart.Order {
				if k == "Cheetah" {
					combined.Bars[k] = group.Bars[k] + 0.15*a.Bars[k]
				} else {
					combined.Bars[k] = a.Bars[k] + group.Bars[k] - cm.JobOverheadSeconds
				}
			}
			aPlusB = &combined
		}
	}
	if aPlusB != nil {
		// Insert A+B after BigData B.
		groups := make([]BarGroup, 0, len(chart.Groups)+1)
		for _, g := range chart.Groups {
			groups = append(groups, g)
			if g.Label == "BigData B" {
				groups = append(groups, *aPlusB)
			}
		}
		chart.Groups = groups
	}
	if w != nil {
		if _, err := chart.WriteTo(w); err != nil {
			return nil, err
		}
	}
	return chart, nil
}

// Fig6 regenerates the data-scale and worker-count sweeps on DISTINCT.
func Fig6(w io.Writer, o Options) (*Figure, *Figure, error) {
	o = o.withDefaults()
	cm := engine.DefaultCostModel()

	// (a) fixed total entries, 1..5 workers.
	const totalA = 30_000_000
	rowsA := totalA / o.Scale
	uvA, err := workload.UserVisits(workload.DefaultUserVisits(rowsA, o.BaseSeed+10))
	if err != nil {
		return nil, nil, err
	}
	qA := &engine.Query{Kind: engine.KindDistinct, Table: uvA, DistinctCols: []string{"userAgent"}}
	figA := &Figure{ID: "fig6a", Title: "DISTINCT, fixed 30M entries", XLabel: "workers", YLabel: "seconds"}
	var sparkA, cheetahA Series
	sparkA.Name, cheetahA.Name = "Spark", "Cheetah"
	for workers := 1; workers <= 5; workers++ {
		run, err := engine.ExecCheetah(qA, engine.CheetahOptions{Workers: workers, Seed: o.BaseSeed})
		if err != nil {
			return nil, nil, err
		}
		tr := run.Traffic
		tr.EntriesSent *= o.Scale
		tr.Forwarded *= o.Scale
		tr.MasterProcessed *= o.Scale
		perWorker := make([]int, workers)
		for i := range perWorker {
			perWorker[i] = totalA / workers
		}
		x := float64(workers)
		sparkA.X = append(sparkA.X, x)
		sparkA.Y = append(sparkA.Y, cm.SparkTime(engine.KindDistinct, perWorker, 8192, false, 10).Total())
		cheetahA.X = append(cheetahA.X, x)
		cheetahA.Y = append(cheetahA.Y, cm.CheetahTime(engine.KindDistinct, tr, 10).Total())
	}
	figA.Series = []Series{cheetahA, sparkA}

	// (b) 5 workers, 10/20/30M entries.
	figB := &Figure{ID: "fig6b", Title: "DISTINCT, 5 workers", XLabel: "entries", YLabel: "seconds"}
	var sparkB, cheetahB Series
	sparkB.Name, cheetahB.Name = "Spark", "Cheetah"
	for _, total := range []int{10_000_000, 20_000_000, 30_000_000} {
		rows := total / o.Scale
		uv, err := workload.UserVisits(workload.DefaultUserVisits(rows, o.BaseSeed+20))
		if err != nil {
			return nil, nil, err
		}
		q := &engine.Query{Kind: engine.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}
		run, err := engine.ExecCheetah(q, engine.CheetahOptions{Workers: 5, Seed: o.BaseSeed})
		if err != nil {
			return nil, nil, err
		}
		tr := run.Traffic
		tr.EntriesSent *= o.Scale
		tr.Forwarded *= o.Scale
		tr.MasterProcessed *= o.Scale
		perWorker := []int{total / 5, total / 5, total / 5, total / 5, total / 5}
		x := float64(total)
		sparkB.X = append(sparkB.X, x)
		sparkB.Y = append(sparkB.Y, cm.SparkTime(engine.KindDistinct, perWorker, 8192, false, 10).Total())
		cheetahB.X = append(cheetahB.X, x)
		cheetahB.Y = append(cheetahB.Y, cm.CheetahTime(engine.KindDistinct, tr, 10).Total())
	}
	figB.Series = []Series{cheetahB, sparkB}

	if w != nil {
		if _, err := figA.WriteTo(w); err != nil {
			return nil, nil, err
		}
		fmt.Fprintln(w)
		if _, err := figB.WriteTo(w); err != nil {
			return nil, nil, err
		}
	}
	return figA, figB, nil
}

// Fig7 regenerates the NetAccel drain-overhead comparison on TPC-H Q3's
// order-key join: result sizes from 1% to 40% of the input.
func Fig7(w io.Writer, o Options) (*Figure, error) {
	o = o.withDefaults()
	cm := engine.DefaultCostModel()
	input := tpchOrders
	fig := &Figure{
		ID: "fig7", Title: "overhead of moving results off the switch (TPC-H Q3 order-key join)",
		XLabel: "result size (% input)", YLabel: "seconds",
	}
	var cheetah, netaccel Series
	cheetah.Name, netaccel.Name = "Cheetah", "NetAccel lower bound"
	for pct := 1; pct <= 40; pct += 3 {
		result := input * pct / 100
		cheetah.X = append(cheetah.X, float64(pct))
		cheetah.Y = append(cheetah.Y, cm.CheetahResultMoveTime(result, 10))
		netaccel.X = append(netaccel.X, float64(pct))
		netaccel.Y = append(netaccel.Y, cm.NetAccelDrainTime(result))
	}
	fig.Series = []Series{cheetah, netaccel}
	if w != nil {
		if _, err := fig.WriteTo(w); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// Fig8 regenerates the delay breakdown (computation / network / other)
// for Spark, Cheetah at 10G and Cheetah at 20G on Distinct and Group-By.
func Fig8(w io.Writer, o Options) (*BarChart, error) {
	o = o.withDefaults()
	cm := engine.DefaultCostModel()
	rows := userVisitsRows / o.Scale
	if rows < 1000 {
		rows = 1000
	}
	uv, err := workload.UserVisits(workload.DefaultUserVisits(rows, o.BaseSeed+30))
	if err != nil {
		return nil, err
	}
	chart := &BarChart{
		ID: "fig8", Title: "delay breakdown by network rate",
		YLabel: "seconds",
		Order:  []string{"Computation", "Network", "Other", "Total"},
	}
	queries := []struct {
		label string
		q     *engine.Query
	}{
		{"Distinct", &engine.Query{Kind: engine.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}},
		{"Group-By", &engine.Query{Kind: engine.KindGroupByMax, Table: uv, KeyCol: "userAgent", AggCol: "adRevenue"}},
	}
	for _, spec := range queries {
		run, err := engine.ExecCheetah(spec.q, engine.CheetahOptions{Workers: 5, Seed: o.BaseSeed})
		if err != nil {
			return nil, err
		}
		tr := run.Traffic
		tr.EntriesSent *= o.Scale
		tr.Forwarded *= o.Scale
		tr.MasterProcessed *= o.Scale
		perWorker := []int{rows * o.Scale / 5, rows * o.Scale / 5, rows * o.Scale / 5, rows * o.Scale / 5, rows * o.Scale / 5}
		sp := cm.SparkTime(spec.q.Kind, perWorker, 8192, false, 10)
		c10 := cm.CheetahTime(spec.q.Kind, tr, 10)
		c20 := cm.CheetahTime(spec.q.Kind, tr, 20)
		add := func(label string, b engine.Breakdown) {
			chart.Groups = append(chart.Groups, BarGroup{
				Label: spec.label + " / " + label,
				Bars: map[string]float64{
					"Computation": b.Computation,
					"Network":     b.Network,
					"Other":       b.Other,
					"Total":       b.Total(),
				},
			})
		}
		add("Spark", sp)
		add("Cheetah 10G", c10)
		add("Cheetah 20G", c20)
	}
	if w != nil {
		if _, err := chart.WriteTo(w); err != nil {
			return nil, err
		}
	}
	return chart, nil
}

// Fig9 regenerates the blocking-master-latency curves for TOP N,
// DISTINCT and max-GROUP BY as a function of the unpruned fraction.
func Fig9(w io.Writer, o Options) (*Figure, error) {
	o = o.withDefaults()
	cm := engine.DefaultCostModel()
	fig := &Figure{
		ID: "fig9", Title: "blocking master latency vs unpruned fraction",
		XLabel: "unpruned fraction", YLabel: "seconds",
	}
	kinds := []struct {
		name string
		kind engine.QueryKind
	}{
		{"Top N", engine.KindTopN},
		{"Distinct", engine.KindDistinct},
		{"Max Group-By", engine.KindGroupByMax},
	}
	for _, k := range kinds {
		s := Series{Name: k.name}
		for u := 0.05; u <= 0.501; u += 0.05 {
			s.X = append(s.X, u)
			s.Y = append(s.Y, cm.MasterBlockingLatency(k.kind, userVisitsRows, u, 10))
		}
		fig.Series = append(fig.Series, s)
	}
	if w != nil {
		if _, err := fig.WriteTo(w); err != nil {
			return nil, err
		}
	}
	return fig, nil
}
