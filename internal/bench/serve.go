package bench

// The serve target measures the serving layer end to end across fabric
// widths: a fixed multi-tenant workload (the internal/workload mix
// cycling over all eight query kinds) is driven open-loop — Poisson
// arrivals — into a Serving handle, for every combination of switch
// count (1/2/4, capped by -switches) and client count (1/8/64). Each
// row reports aggregate pruning throughput (entries/s over the wall
// clock) and per-query p50/p99 latency including admission queueing.
// The speedup column compares each row against the single-switch row at
// the same client count — the fabric's scaling claim: with enough
// concurrent clients, aggregate throughput grows with switch count on
// multi-core hosts (switches serve disjoint queries in parallel).

import (
	"context"
	"fmt"
	"io"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/plan"
	"cheetah/internal/serve"
	"cheetah/internal/stats"
	"cheetah/internal/workload/multitenant"
)

// serveQueries is the mixed-workload length per measurement: eight full
// cycles over the eight query kinds.
const serveQueries = 8 * multitenant.NumKinds

// serveLambda is the open-loop arrival rate (queries/s). It is chosen
// high enough that arrivals never starve the clients at bench scale —
// the measurement is queueing + service, not the arrival process.
const serveLambda = 400.0

// serveClientLevels are the concurrency levels measured per fabric
// width.
var serveClientLevels = []int{1, 8, 64}

// serveSwitchLevels returns the fabric widths to measure: doubling from
// 1 up to maxSwitches (the -switches flag), always including
// maxSwitches itself.
func serveSwitchLevels(maxSwitches int) []int {
	if maxSwitches < 1 {
		maxSwitches = 1
	}
	var out []int
	for s := 1; s < maxSwitches; s *= 2 {
		out = append(out, s)
	}
	return append(out, maxSwitches)
}

// chaosEvery is the chaos cadence: one switch is killed (and the
// previous victim restored) every chaosEvery submissions.
const chaosEvery = 50

// chaosMonkey kills and restores switches on a submission cadence: on
// every chaosEvery-th query it restores the previous victim and fails
// the next switch round-robin — so exactly one switch is down at any
// time and every switch takes a turn dying mid-workload.
type chaosMonkey struct {
	fab interface {
		Fail(int)
		Restore(int) error
		Size() int
	}
	mu     sync.Mutex
	n      int
	victim int // current dead switch, -1 when none
}

func (c *chaosMonkey) tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if c.n%chaosEvery != 0 {
		return
	}
	if c.victim >= 0 {
		_ = c.fab.Restore(c.victim)
	}
	c.victim = (c.victim + 1) % c.fab.Size()
	c.fab.Fail(c.victim)
}

// runServeLevel drives the mixed workload through one Serving handle at
// the given fabric width and client count, each query submitted under
// its tenant's QoS. With chaos, switches are killed and restored on a
// fixed cadence mid-workload; results stay exact (§7.2), so the run
// only shows up as failovers and shed load in the counters.
func runServeLevel(mix *multitenant.Mix, switches, clients int, seed uint64, chaos bool) (*multitenant.DriveResult, serve.Counters, error) {
	// One worker per session: cross-query concurrency, not intra-query
	// encode parallelism, is what this benchmark isolates.
	db, err := plan.Open(mix.Visits, plan.Options{Workers: 1, Seed: seed, Switches: switches})
	if err != nil {
		return nil, serve.Counters{}, err
	}
	sv, err := db.Serve(context.Background(), plan.ServeOptions{})
	if err != nil {
		return nil, serve.Counters{}, err
	}
	defer sv.Close()
	var monkey *chaosMonkey
	if chaos {
		monkey = &chaosMonkey{fab: sv.Fabric(), victim: -1}
	}
	res, err := mix.Drive(context.Background(), multitenant.DriveConfig{
		Clients: clients, Queries: serveQueries, Lambda: serveLambda, Seed: seed,
	}, func(ctx context.Context, i int, q *engine.Query) (int, bool, error) {
		if monkey != nil {
			monkey.tick()
		}
		ex, err := sv.SubmitQoS(ctx, q, serve.QoS{
			Tenant: mix.Tenant(i), Priority: mix.Priority(i),
		})
		if err != nil {
			return 0, false, err
		}
		return ex.Traffic.EntriesSent, ex.Plan.Mode == plan.ModeDirect, nil
	})
	if err != nil {
		return nil, serve.Counters{}, err
	}
	return res, sv.Stats(), nil
}

// Serve runs the multi-tenant serving benchmark and renders the scaling
// table: one row per (switches, clients) combination, with speedup
// relative to the single-switch row at the same client count. With
// chaos enabled, a chaosMonkey kills and restores a switch every ~50
// queries and the failover/shed columns show the fault-tolerance work
// the run absorbed.
func Serve(w io.Writer, o Options, maxSwitches int, chaos bool) error {
	o = o.withDefaults()
	uvRows := userVisitsRows / o.Scale
	if uvRows < 2000 {
		uvRows = 2000
	}
	rankRows := rankingsRows / o.Scale
	if rankRows < 1000 {
		rankRows = 1000
	}
	mix, err := multitenant.NewMix(multitenant.MixConfig{
		VisitRows: uvRows, RankRows: rankRows, Seed: o.BaseSeed,
	})
	if err != nil {
		return err
	}

	switchLevels := serveSwitchLevels(maxSwitches)
	fmt.Fprintf(w, "serving: %d-query mixed workload (%d kinds, %d tenants) per row, visits=%d rows, rankings=%d rows\n",
		serveQueries, multitenant.NumKinds, multitenant.NumTenants, uvRows, rankRows)
	fmt.Fprintf(w, "scaling table: %v switches × %v clients (speedup vs 1 switch at the same client count)\n",
		switchLevels, serveClientLevels)
	if chaos {
		fmt.Fprintf(w, "chaos: one switch killed/restored every %d queries (results stay exact; failovers/shed absorb the faults)\n", chaosEvery)
	}
	fmt.Fprintf(w, "%-9s %-8s %-8s %16s %10s %10s %9s %10s %9s %6s\n",
		"switches", "clients", "queries", "agg entries/s", "p50 ms", "p99 ms", "speedup", "fallbacks", "failover", "shed")

	base := map[int]float64{} // client count → 1-switch entries/s
	for _, switches := range switchLevels {
		for _, clients := range serveClientLevels {
			lv, sc, err := runServeLevel(mix, switches, clients, o.BaseSeed+uint64(64*switches+clients), chaos)
			if err != nil {
				return err
			}
			eps := lv.EntriesPerSec()
			if switches == 1 {
				base[clients] = eps
			}
			speedup := 0.0
			if b := base[clients]; b > 0 {
				speedup = eps / b
			}
			fmt.Fprintf(w, "%-9d %-8d %-8d %16.3g %10.2f %10.2f %8.2fx %10d %9d %6d\n",
				switches, clients, len(lv.LatencyMS), eps,
				stats.Percentile(lv.LatencyMS, 50), stats.Percentile(lv.LatencyMS, 99),
				speedup, lv.Fallbacks, sc.FailedOver, sc.Shed)
		}
	}
	return nil
}
