package bench

// The serve target measures the serving layer end to end: a fixed
// multi-tenant workload (the internal/workload mix cycling over all
// eight query kinds) is driven open-loop — Poisson arrivals — into a
// shared Serving handle at 1, 8 and 64 concurrent clients, and each
// level reports aggregate pruning throughput (entries/s over the wall
// clock) and per-query p50/p99 latency including admission queueing.
// The speedup column compares each level against the 1-client row, i.e.
// the same mixed workload run as sequential single-query executions —
// the serving layer's reason to exist.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"cheetah/internal/plan"
	"cheetah/internal/stats"
	"cheetah/internal/workload/multitenant"
)

// serveQueries is the mixed-workload length per concurrency level:
// eight full cycles over the eight query kinds.
const serveQueries = 8 * multitenant.NumKinds

// serveLambda is the open-loop arrival rate (queries/s). It is chosen
// high enough that arrivals never starve the clients at bench scale —
// the measurement is queueing + service, not the arrival process.
const serveLambda = 400.0

// serveLevel is one concurrency level's measurement.
type serveLevel struct {
	clients   int
	wall      time.Duration
	entries   int       // total worker→switch entries across all queries
	latencies []float64 // per-query ms, admission wait included
	fallbacks int       // queries that ran direct (shed or unservable)
}

// runServeLevel drives the mixed workload through one Serving handle at
// the given client count.
func runServeLevel(db *plan.Session, mix *multitenant.Mix, clients int, seed uint64) (*serveLevel, error) {
	sv, err := db.Serve(context.Background(), plan.ServeOptions{})
	if err != nil {
		return nil, err
	}
	defer sv.Close()

	arrivals := multitenant.PoissonArrivals(serveQueries, serveLambda, seed)
	jobs := make(chan int, serveQueries)
	start := time.Now()
	go func() {
		for i := 0; i < serveQueries; i++ {
			if d := time.Until(start.Add(arrivals[i])); d > 0 {
				time.Sleep(d)
			}
			jobs <- i
		}
		close(jobs)
	}()

	lv := &serveLevel{clients: clients, latencies: make([]float64, 0, serveQueries)}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := mix.Query(i)
				t0 := time.Now()
				ex, err := sv.Submit(context.Background(), q)
				lat := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("query %d (%s): %w", i, q.Kind, err)
					}
				} else {
					lv.latencies = append(lv.latencies, lat)
					lv.entries += ex.Traffic.EntriesSent
					if ex.Plan.Mode == plan.ModeDirect {
						lv.fallbacks++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	lv.wall = time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	return lv, nil
}

// entriesPerSec is the level's aggregate pruning throughput.
func (lv *serveLevel) entriesPerSec() float64 {
	if lv.wall <= 0 {
		return 0
	}
	return float64(lv.entries) / lv.wall.Seconds()
}

// Serve runs the multi-tenant serving benchmark and renders one row per
// concurrency level.
func Serve(w io.Writer, o Options) error {
	o = o.withDefaults()
	uvRows := userVisitsRows / o.Scale
	if uvRows < 2000 {
		uvRows = 2000
	}
	rankRows := rankingsRows / o.Scale
	if rankRows < 1000 {
		rankRows = 1000
	}
	mix, err := multitenant.NewMix(multitenant.MixConfig{
		VisitRows: uvRows, RankRows: rankRows, Seed: o.BaseSeed,
	})
	if err != nil {
		return err
	}
	// One worker per session: cross-query concurrency, not intra-query
	// encode parallelism, is what this benchmark isolates.
	db, err := plan.Open(mix.Visits, plan.Options{Workers: 1, Seed: o.BaseSeed})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "serving: %d-query mixed workload (%d kinds), visits=%d rows, rankings=%d rows, switch=%s\n",
		serveQueries, multitenant.NumKinds, uvRows, rankRows, db.Model().Name)
	fmt.Fprintf(w, "%-8s %-8s %16s %10s %10s %9s %10s\n",
		"clients", "queries", "agg entries/s", "p50 ms", "p99 ms", "speedup", "fallbacks")

	var base float64
	for _, clients := range []int{1, 8, 64} {
		lv, err := runServeLevel(db, mix, clients, o.BaseSeed+uint64(clients))
		if err != nil {
			return err
		}
		eps := lv.entriesPerSec()
		if clients == 1 {
			base = eps
		}
		speedup := 0.0
		if base > 0 {
			speedup = eps / base
		}
		fmt.Fprintf(w, "%-8d %-8d %16.3g %10.2f %10.2f %8.2fx %10d\n",
			clients, len(lv.latencies), eps,
			stats.Percentile(lv.latencies, 50), stats.Percentile(lv.latencies, 99),
			speedup, lv.fallbacks)
	}
	return nil
}
