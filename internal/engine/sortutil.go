package engine

import (
	"sort"
	"strings"
)

// compareStrings is strings.Compare under a local name so lexRows reads
// naturally; the standard implementation is intrinsified to a single
// byte-wise compare.
func compareStrings(a, b string) int { return strings.Compare(a, b) }

// radixSortStrings sorts cells byte-wise lexicographically — the exact
// order of sort.Strings and Result.Sort for single-column rows — using
// MSD radix bucketing. Result sets routinely share long prefixes
// (generated keys, formatted integers), where comparison sorts pay
// O(prefix) per comparison; the radix pass walks each prefix byte once
// per level instead.
func radixSortStrings(cells []string) {
	if len(cells) < radixMinSize {
		sort.Strings(cells)
		return
	}
	scratch := make([]string, len(cells))
	radixSortRange(cells, scratch, 0)
}

// radixMinSize is the bucket size below which comparison sort wins.
const radixMinSize = 48

type radixFrame struct {
	lo, hi, depth int
}

// insertionSortSuffix sorts a small segment whose strings agree on the
// first depth bytes, comparing only the suffixes so the shared prefix is
// not re-scanned on every compare. Allocation-free.
func insertionSortSuffix(seg []string, depth int) {
	for i := 1; i < len(seg); i++ {
		s := seg[i]
		suf := s[depth:]
		j := i - 1
		for j >= 0 && seg[j][depth:] > suf {
			seg[j+1] = seg[j]
			j--
		}
		seg[j+1] = s
	}
}

func radixSortRange(cells, scratch []string, depth int) {
	stack := []radixFrame{{0, len(cells), depth}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seg := cells[f.lo:f.hi]
		if len(seg) < radixMinSize {
			insertionSortSuffix(seg, f.depth)
			continue
		}
		// Bucket 0 holds strings that end at this depth; bucket b+1
		// holds byte value b.
		var counts [257]int
		for _, s := range seg {
			if len(s) <= f.depth {
				counts[0]++
			} else {
				counts[int(s[f.depth])+1]++
			}
		}
		if counts[0] == len(seg) {
			continue // all strings end here: segment is all-equal
		}
		// Single-bucket level (a shared prefix byte): descend one byte
		// without scattering.
		single := -1
		for b, c := range counts {
			if c == 0 {
				continue
			}
			if c == len(seg) {
				single = b
			}
			break
		}
		if single > 0 {
			stack = append(stack, radixFrame{f.lo, f.hi, f.depth + 1})
			continue
		}
		var offsets [257]int
		sum := 0
		for b := 0; b < 257; b++ {
			offsets[b] = sum
			sum += counts[b]
		}
		sub := scratch[:len(seg)]
		for _, s := range seg {
			b := 0
			if len(s) > f.depth {
				b = int(s[f.depth]) + 1
			}
			sub[offsets[b]] = s
			offsets[b]++
		}
		copy(seg, sub)
		// Recurse into buckets with ≥ 2 strings (bucket 0 is all-equal).
		pos := f.lo + counts[0]
		for b := 1; b < 257; b++ {
			if counts[b] > 1 {
				stack = append(stack, radixFrame{pos, pos + counts[b], f.depth + 1})
			}
			pos += counts[b]
		}
	}
}
