package engine

import (
	"testing"
)

func TestDefaultCostModelShapes(t *testing.T) {
	cm := DefaultCostModel()
	// Fig. 5 shape: on an aggregation-heavy query (DISTINCT at BigData
	// scale) Cheetah beats Spark's subsequent runs; on a cheap filter it
	// does not beat them.
	const rows = 31_700_000
	perWorker := []int{rows / 5, rows / 5, rows / 5, rows / 5, rows / 5}

	sparkDistinct := cm.SparkTime(KindDistinct, perWorker, 8192, false, 10).Total()
	sparkDistinct1st := cm.SparkTime(KindDistinct, perWorker, 8192, true, 10).Total()
	cheetahDistinct := cm.CheetahTime(KindDistinct, Traffic{
		EntriesSent: rows, Forwarded: 20_000, MasterProcessed: 20_000,
	}, 10).Total()
	if cheetahDistinct >= sparkDistinct {
		t.Fatalf("DISTINCT: Cheetah %.2fs not faster than Spark %.2fs", cheetahDistinct, sparkDistinct)
	}
	if sparkDistinct1st <= sparkDistinct {
		t.Fatal("first run must be slower than subsequent runs")
	}
	// Paper: 40-200% improvement → ratio 1.4–3.0 vs subsequent runs.
	ratio := sparkDistinct / cheetahDistinct
	if ratio < 1.2 || ratio > 5 {
		t.Fatalf("DISTINCT speedup ratio %.2f outside plausible band", ratio)
	}

	// Filter: Cheetah roughly matches Spark's 1st run but loses to
	// subsequent runs (§8.2.1).
	const frows = 18_000_000
	fPerWorker := []int{frows / 5, frows / 5, frows / 5, frows / 5, frows / 5}
	sparkFilter := cm.SparkTime(KindFilter, fPerWorker, 100, false, 10).Total()
	sparkFilter1st := cm.SparkTime(KindFilter, fPerWorker, 100, true, 10).Total()
	cheetahFilter := cm.CheetahTime(KindFilter, Traffic{
		EntriesSent: frows, Forwarded: frows / 100, MasterProcessed: frows / 100,
	}, 10).Total()
	if cheetahFilter <= sparkFilter {
		t.Fatalf("filter: Cheetah %.2fs should NOT beat warm Spark %.2fs", cheetahFilter, sparkFilter)
	}
	if cheetahFilter > sparkFilter1st*1.6 {
		t.Fatalf("filter: Cheetah %.2fs should be comparable to Spark 1st %.2fs", cheetahFilter, sparkFilter1st)
	}
}

func TestCheetahTimeNetworkBound(t *testing.T) {
	// §8.2.3: doubling the NIC to 20G nearly halves Cheetah's completion
	// time — the network is the bottleneck.
	cm := DefaultCostModel()
	tr := Traffic{EntriesSent: 31_700_000, Forwarded: 10_000, MasterProcessed: 10_000}
	t10 := cm.CheetahTime(KindDistinct, tr, 10)
	t20 := cm.CheetahTime(KindDistinct, tr, 20)
	improve := t10.Total() / t20.Total()
	if improve < 1.6 || improve > 2.2 {
		t.Fatalf("20G improvement = %.2fx, want ≈2x", improve)
	}
	if t10.Network < t10.Computation {
		t.Fatal("Cheetah must be network-dominated at 10G (Fig. 8)")
	}
}

func TestSparkTimeNotNetworkBound(t *testing.T) {
	// Fig. 8: Spark does not improve with a faster NIC.
	cm := DefaultCostModel()
	perWorker := []int{6_340_000, 6_340_000, 6_340_000, 6_340_000, 6_340_000}
	s10 := cm.SparkTime(KindDistinct, perWorker, 8192, false, 10)
	s20 := cm.SparkTime(KindDistinct, perWorker, 8192, false, 20)
	if s10.Total()/s20.Total() > 1.05 {
		t.Fatalf("Spark improved %.2fx with faster NIC; should be compute-bound",
			s10.Total()/s20.Total())
	}
	if s10.Computation < s10.Network {
		t.Fatal("Spark must be compute-dominated")
	}
}

func TestMasterBlockingLatencySuperlinear(t *testing.T) {
	// Fig. 9: latency grows super-linearly in the unpruned fraction and
	// TOP N stays far below DISTINCT.
	cm := DefaultCostModel()
	const total = 31_700_000
	lat := func(q QueryKind, u float64) float64 {
		return cm.MasterBlockingLatency(q, total, u, 10)
	}
	// Super-linearity: slope on [0.4, 0.5] exceeds slope on [0.1, 0.2].
	lo := lat(KindDistinct, 0.2) - lat(KindDistinct, 0.1)
	hi := lat(KindDistinct, 0.5) - lat(KindDistinct, 0.4)
	if hi <= lo {
		t.Fatalf("latency not superlinear: early slope %.3f, late slope %.3f", lo, hi)
	}
	if lat(KindTopN, 0.5) >= lat(KindDistinct, 0.5) {
		t.Fatal("TOP N (heap) must stay below DISTINCT")
	}
	// Magnitudes in the paper's range: DISTINCT at 0.5 is O(10s).
	if l := lat(KindDistinct, 0.5); l < 2 || l > 30 {
		t.Fatalf("DISTINCT latency at 0.5 = %.1fs, outside Fig. 9's range", l)
	}
	if lat(KindDistinct, 0) != 0 {
		t.Fatal("zero unpruned must cost zero")
	}
}

func TestNetAccelDrainGrowsWithResult(t *testing.T) {
	// Fig. 7: the NetAccel lower bound grows linearly with result size
	// and dominates Cheetah's streaming result movement.
	cm := DefaultCostModel()
	small := cm.NetAccelDrainTime(10_000)
	large := cm.NetAccelDrainTime(600_000)
	if large <= small {
		t.Fatal("drain time must grow")
	}
	if large < 0.5 || large > 0.7 {
		t.Fatalf("drain of 600k entries = %.3fs, Fig. 7 tops out ≈0.6s", large)
	}
	if che := cm.CheetahResultMoveTime(600_000, 10); che >= large {
		t.Fatalf("Cheetah result move %.3fs must undercut NetAccel drain %.3fs", che, large)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Computation: 1, Network: 2, Other: 0.5}
	if b.Total() != 3.5 {
		t.Fatal("Total")
	}
}

func TestCheetahTimeDefaultNIC(t *testing.T) {
	cm := DefaultCostModel()
	tr := Traffic{EntriesSent: 1000, Forwarded: 10, MasterProcessed: 10}
	if cm.CheetahTime(KindTopN, tr, 0).Total() <= 0 {
		t.Fatal("zero NIC speed must fall back to 10G")
	}
	if cm.MasterBlockingLatency(KindTopN, 1000, 0.5, 0) < 0 {
		t.Fatal("latency must be non-negative")
	}
	if cm.SparkTime(KindTopN, []int{100}, 10, false, 0).Total() <= 0 {
		t.Fatal("Spark zero NIC fallback")
	}
}

func TestSparkAPlusBPipelining(t *testing.T) {
	// §8.2.1: Cheetah executes A+B faster than the sum of A and B because
	// serialization is shared. The model exposes this as: one combined
	// pass sends the table once, not twice.
	cm := DefaultCostModel()
	const rows = 10_000_000
	single := cm.CheetahTime(KindFilter, Traffic{EntriesSent: rows, Forwarded: rows / 10, MasterProcessed: rows / 10}, 10).Total() +
		cm.CheetahTime(KindGroupBySum, Traffic{EntriesSent: rows, Forwarded: 1000, MasterProcessed: 1000}, 10).Total()
	combined := cm.CheetahTime(KindGroupBySum, Traffic{EntriesSent: rows, Forwarded: rows / 10, MasterProcessed: rows / 10}, 10).Total()
	if combined >= single {
		t.Fatalf("combined A+B %.2fs not faster than sequential %.2fs", combined, single)
	}
}
