package engine

import (
	"testing"

	"cheetah/internal/obs"
	"cheetah/internal/switchsim"
)

// stagesOf indexes a trace's spans by stage.
func stagesOf(tr *obs.Trace) map[obs.Stage][]obs.Span {
	out := make(map[obs.Stage][]obs.Span)
	for _, s := range tr.Spans() {
		out[s.Stage] = append(out[s.Stage], s)
	}
	return out
}

// TestWallUnifiedAcrossPaths pins the timing-capture fix: every
// execution path stamps Wall exactly once, around the whole call, via
// the engine's shared Stopwatch — no path leaves it zero.
func TestWallUnifiedAcrossPaths(t *testing.T) {
	tb := equivTable(t, 3000, 0x5eed)
	rt := equivTable(t, 900, 0x0dd)
	for name, q := range equivQueries(tb, rt) {
		paths := map[string]func() (interface{ wall() int64 }, error){
			"scalar": func() (interface{ wall() int64 }, error) {
				r, err := ExecCheetah(q, CheetahOptions{Workers: 2, Seed: 7, Scalar: true})
				return cheetahWall{r}, err
			},
			"batched": func() (interface{ wall() int64 }, error) {
				r, err := ExecCheetah(q, CheetahOptions{Workers: 2, Seed: 7, NoFuse: true})
				return cheetahWall{r}, err
			},
			"fused": func() (interface{ wall() int64 }, error) {
				r, err := ExecCheetah(q, CheetahOptions{Workers: 2, Seed: 7})
				return cheetahWall{r}, err
			},
			"sharded": func() (interface{ wall() int64 }, error) {
				r, err := ExecSharded(q, ShardedOptions{Shards: 3, Workers: 2, Seed: 7})
				return shardedWall{r}, err
			},
		}
		for path, run := range paths {
			r, err := run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, path, err)
			}
			if r.wall() <= 0 {
				t.Fatalf("%s/%s: Wall not captured", name, path)
			}
		}
	}
}

type cheetahWall struct{ r *CheetahRun }

func (w cheetahWall) wall() int64 { return int64(w.r.Wall) }

type shardedWall struct{ r *ShardedRun }

func (w shardedWall) wall() int64 { return int64(w.r.Wall) }

// TestWallCoversFailoverRetries pins that a shard redone after a
// mid-stream switch death reports one Wall covering all attempts — the
// failover span's burn is inside Wall, not reset by the retry.
func TestWallCoversFailoverRetries(t *testing.T) {
	defer func(n int) { chunkEntries = n }(chunkEntries)
	chunkEntries = 256
	tb := equivTable(t, 3000, 0x5eed)
	rt := equivTable(t, 900, 0x0dd)
	q := equivQueries(tb, rt)["filter"]
	h := newFailoverHarness(t, q, 3, 0xfeed, map[int]switchsim.FaultInjector{
		1: func(flow uint32, batch int) bool { return batch >= 1 },
	})
	tr := obs.New()
	defer tr.Release()
	run, err := ExecSharded(q, ShardedOptions{
		Shards: 3, Workers: 2, Seed: 0xfeed,
		Pruners: h.pruners, Flows: h.flows, Failover: h.failover,
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.FailedOver < 1 {
		t.Fatalf("FailedOver = %d, want ≥ 1", run.FailedOver)
	}
	st := stagesOf(tr)
	if len(st[obs.StageFailover]) < 1 {
		t.Fatalf("no failover span recorded; spans:\n%s", tr)
	}
	var attempts int64
	for _, s := range append(st[obs.StageShard], st[obs.StageFailover]...) {
		attempts += int64(s.Dur)
	}
	if int64(run.Wall) < attempts/2 {
		// Shards run concurrently, so Wall < sum is normal; but Wall must
		// at least cover the longest chain — a per-attempt reset would
		// leave it far below the recorded span time.
		var longest int64
		for _, s := range append(st[obs.StageShard], st[obs.StageFailover]...) {
			if d := int64(s.Start + s.Dur); d > longest {
				longest = d
			}
		}
		if int64(run.Wall) < longest {
			t.Fatalf("Wall %v below the last span end %v: per-attempt reset?", run.Wall, longest)
		}
	}
}

// TestTracingDoesNotPerturbExecution pins the invariant: with and
// without a trace attached, every kind produces bit-identical results,
// traffic and stats on both the batched and fused paths.
func TestTracingDoesNotPerturbExecution(t *testing.T) {
	tb := equivTable(t, 3000, 0xabc)
	rt := equivTable(t, 900, 0xdef)
	for name, q := range equivQueries(tb, rt) {
		for _, noFuse := range []bool{false, true} {
			plain, err := ExecCheetah(q, CheetahOptions{Workers: 2, Seed: 7, NoFuse: noFuse})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			tr := obs.New()
			traced, err := ExecCheetah(q, CheetahOptions{Workers: 2, Seed: 7, NoFuse: noFuse, Trace: tr})
			if err != nil {
				t.Fatalf("%s traced: %v", name, err)
			}
			if !traced.Result.Equal(plain.Result) {
				t.Fatalf("%s noFuse=%v: tracing changed the result", name, noFuse)
			}
			if traced.Traffic != plain.Traffic || traced.Stats != plain.Stats {
				t.Fatalf("%s noFuse=%v: tracing changed traffic/stats: %+v vs %+v",
					name, noFuse, traced.Traffic, plain.Traffic)
			}
			tr.Release()
		}
	}
}

// TestTraceSpansPerPath pins which stages each execution path records:
// encode/prune/merge on the batched path, one fused span on the fused
// path, per-shard + merge spans on the sharded path.
func TestTraceSpansPerPath(t *testing.T) {
	tb := equivTable(t, 3000, 0x111)
	rt := equivTable(t, 900, 0x222)
	for name, q := range equivQueries(tb, rt) {
		// Batched path: the stream splits into encode and prune, then the
		// master merge.
		tr := obs.New()
		run, err := ExecCheetah(q, CheetahOptions{Workers: 2, Seed: 7, NoFuse: true, Trace: tr})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := stagesOf(tr)
		for _, want := range []obs.Stage{obs.StageEncode, obs.StagePrune, obs.StageMerge} {
			if len(st[want]) == 0 {
				t.Fatalf("%s batched: missing %v span; got:\n%s", name, want, tr)
			}
		}
		if got := st[obs.StagePrune][0].Entries; got != int64(run.Traffic.EntriesSent) {
			t.Fatalf("%s: prune span entries %d != traffic %d", name, got, run.Traffic.EntriesSent)
		}
		tr.Release()

		// Fused path (default): one fused span carrying the traffic.
		tr = obs.New()
		run, err = ExecCheetah(q, CheetahOptions{Workers: 2, Seed: 7, Trace: tr})
		if err != nil {
			t.Fatalf("%s fused: %v", name, err)
		}
		st = stagesOf(tr)
		if len(st[obs.StageFused]) == 0 {
			t.Fatalf("%s: fused path recorded no fused span; got:\n%s", name, tr)
		}
		if got := st[obs.StageFused][0].Entries; got != int64(run.Traffic.EntriesSent) {
			t.Fatalf("%s: fused span entries %d != traffic %d", name, got, run.Traffic.EntriesSent)
		}
		tr.Release()

		// Sharded path: one span per shard plus the global merge.
		tr = obs.New()
		const shards = 3
		srun, err := ExecSharded(q, ShardedOptions{Shards: shards, Workers: 2, Seed: 7, Trace: tr})
		if err != nil {
			t.Fatalf("%s sharded: %v", name, err)
		}
		st = stagesOf(tr)
		if len(st[obs.StageShard]) < shards {
			t.Fatalf("%s: %d shard spans for %d shards; got:\n%s", name, len(st[obs.StageShard]), shards, tr)
		}
		seen := map[int]bool{}
		var sent int64
		for _, s := range st[obs.StageShard] {
			seen[s.Switch] = true
			sent += s.Entries
		}
		if len(seen) != shards {
			t.Fatalf("%s: shard spans not labeled per switch: %v", name, seen)
		}
		// HAVING's partial second pass streams outside se.run, so span
		// entries bound the traffic from below.
		if sent == 0 || sent > int64(srun.Traffic.EntriesSent) {
			t.Fatalf("%s: shard span entries %d outside (0, %d]", name, sent, srun.Traffic.EntriesSent)
		}
		if len(st[obs.StageMerge]) == 0 {
			t.Fatalf("%s sharded: missing merge span; got:\n%s", name, tr)
		}
		tr.Release()
	}
}
