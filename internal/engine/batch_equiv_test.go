package engine

import (
	"fmt"
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// newTestJoinPruner builds a join pruner with a small filter for the
// asymmetric equivalence test.
func newTestJoinPruner(asym bool, seed uint64) (*prune.Join, error) {
	return prune.NewJoin(prune.JoinConfig{FilterBits: 1 << 16, Hashes: 3, Asymmetric: asym, Seed: seed})
}

// equivTable builds a small mixed-type table with skewed keys, duplicate
// values and a nearly-sorted numeric column, so every pruner sees hits,
// misses, evictions and ties.
func equivTable(t *testing.T, rows int, seed uint64) *table.Table {
	t.Helper()
	tb := table.MustNew(table.Schema{
		{Name: "name", Type: table.String},
		{Name: "score", Type: table.Int64},
		{Name: "group", Type: table.String},
		{Name: "val", Type: table.Int64},
		{Name: "dim1", Type: table.Int64},
		{Name: "dim2", Type: table.Int64},
	})
	s := seed
	next := func(mod int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := int64(s >> 33)
		if v < 0 {
			v = -v
		}
		return v % mod
	}
	for i := 0; i < rows; i++ {
		name := fmt.Sprintf("user%04d", next(500))
		group := fmt.Sprintf("g%02d", next(37))
		if err := tb.AppendRow(name, next(100_000)+1, group, next(1000), next(5000)+1, next(5000)+1); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// equivQueries returns one query per kind over tb (joins use rt as the
// probe side).
func equivQueries(tb, rt *table.Table) map[string]*Query {
	return map[string]*Query{
		"filter": {
			Kind:  KindFilter,
			Table: tb,
			Predicates: []FilterPred{
				{Col: "score", Op: prune.OpGT, Const: 40_000},
				{Col: "val", Op: prune.OpLT, Const: 700},
				{Col: "name", Like: "user0%"},
			},
			Formula: boolexpr.Or{boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}}, boolexpr.Leaf{V: 2}},
		},
		"filter-count": {
			Kind:  KindFilter,
			Table: tb,
			Predicates: []FilterPred{
				{Col: "score", Op: prune.OpGT, Const: 60_000},
			},
			Formula:   boolexpr.Leaf{V: 0},
			CountOnly: true,
		},
		"distinct-string": {Kind: KindDistinct, Table: tb, DistinctCols: []string{"name"}},
		"distinct-multi":  {Kind: KindDistinct, Table: tb, DistinctCols: []string{"group", "val"}},
		"topn":            {Kind: KindTopN, Table: tb, OrderCol: "score", N: 50},
		"groupby-max":     {Kind: KindGroupByMax, Table: tb, KeyCol: "group", AggCol: "score"},
		"groupby-sum":     {Kind: KindGroupBySum, Table: tb, KeyCol: "group", AggCol: "val"},
		"having":          {Kind: KindHaving, Table: tb, KeyCol: "name", AggCol: "val", Threshold: 2000},
		"join":            {Kind: KindJoin, Table: tb, Right: rt, LeftKey: "name", RightKey: "name"},
		"skyline":         {Kind: KindSkyline, Table: tb, SkylineCols: []string{"dim1", "dim2"}},
	}
}

// TestBatchMatchesScalarExec is the batch-vs-scalar equivalence suite:
// for every query kind, worker count and seed, the batched pipeline must
// produce identical Result, Traffic and Stats to the legacy per-row
// path. Every batched leg in this file pins NoFuse — the chunked
// pipeline is the subject under test here; the fused compiler has its
// own equivalence suite (fuse_test.go).
func TestBatchMatchesScalarExec(t *testing.T) {
	tb := equivTable(t, 5000, 0x5eed)
	rt := equivTable(t, 1777, 0x0dd)
	queries := equivQueries(tb, rt)
	// Worker counts straddle the partition-size edge cases: 1 (no
	// interleave), even/odd splits, and more workers than divides
	// evenly (unequal partitions with a partial final cycle).
	for name, q := range queries {
		for _, workers := range []int{1, 2, 3, 5, 8} {
			for _, seed := range []uint64{1, 0xfeed} {
				scalar, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: seed, Scalar: true})
				if err != nil {
					t.Fatalf("%s w=%d seed=%d scalar: %v", name, workers, seed, err)
				}
				batch, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: seed, NoFuse: true})
				if err != nil {
					t.Fatalf("%s w=%d seed=%d batch: %v", name, workers, seed, err)
				}
				if batch.PrunerName != scalar.PrunerName {
					t.Fatalf("%s w=%d seed=%d: pruner name %q vs %q", name, workers, seed, batch.PrunerName, scalar.PrunerName)
				}
				if batch.Traffic != scalar.Traffic {
					t.Fatalf("%s w=%d seed=%d: traffic diverges\nscalar: %+v\nbatch:  %+v", name, workers, seed, scalar.Traffic, batch.Traffic)
				}
				if batch.Stats != scalar.Stats {
					t.Fatalf("%s w=%d seed=%d: stats diverge\nscalar: %+v\nbatch:  %+v", name, workers, seed, scalar.Stats, batch.Stats)
				}
				if !batch.Result.Equal(scalar.Result) {
					t.Fatalf("%s w=%d seed=%d: results diverge\nscalar:\n%s\nbatch:\n%s", name, workers, seed, scalar.Result, batch.Result)
				}
				// Row-for-row order must match too: both paths emit
				// Result.Sort order.
				for i := range scalar.Result.Rows {
					for j := range scalar.Result.Rows[i] {
						if scalar.Result.Rows[i][j] != batch.Result.Rows[i][j] {
							t.Fatalf("%s w=%d seed=%d: row %d cell %d: %q vs %q",
								name, workers, seed, i, j, scalar.Result.Rows[i][j], batch.Result.Rows[i][j])
						}
					}
				}
			}
		}
	}
}

// TestBatchTinyTables exercises the scatter's degenerate layouts: empty
// tables, fewer rows than workers, and single rows.
func TestBatchTinyTables(t *testing.T) {
	for _, rows := range []int{0, 1, 2, 3, 7} {
		tb := equivTable(t, rows, 0x11)
		q := &Query{Kind: KindDistinct, Table: tb, DistinctCols: []string{"name"}}
		for _, workers := range []int{1, 4, 16} {
			scalar, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 3, Scalar: true})
			if err != nil {
				t.Fatalf("rows=%d w=%d scalar: %v", rows, workers, err)
			}
			batch, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 3, NoFuse: true})
			if err != nil {
				t.Fatalf("rows=%d w=%d batch: %v", rows, workers, err)
			}
			if batch.Traffic != scalar.Traffic || !batch.Result.Equal(scalar.Result) {
				t.Fatalf("rows=%d w=%d: diverges (traffic %+v vs %+v)", rows, workers, scalar.Traffic, batch.Traffic)
			}
		}
	}
}

// TestBatchAsymmetricJoin covers the small-table optimization's
// unpruned build pass in the batched pipeline.
func TestBatchAsymmetricJoin(t *testing.T) {
	tb := equivTable(t, 900, 0x21)
	rt := equivTable(t, 4000, 0x22)
	q := &Query{Kind: KindJoin, Table: tb, Right: rt, LeftKey: "name", RightKey: "name"}
	for _, workers := range []int{1, 5} {
		mk := func() (a, b *CheetahRun, err error) {
			pa, err := newTestJoinPruner(true, 7)
			if err != nil {
				return nil, nil, err
			}
			pb, err := newTestJoinPruner(true, 7)
			if err != nil {
				return nil, nil, err
			}
			a, err = ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 7, Scalar: true, Pruner: pa})
			if err != nil {
				return nil, nil, err
			}
			b, err = ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 7, Pruner: pb, NoFuse: true})
			return a, b, err
		}
		scalar, batch, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if batch.Traffic != scalar.Traffic || batch.Stats != scalar.Stats || !batch.Result.Equal(scalar.Result) {
			t.Fatalf("asymmetric join w=%d diverges: traffic %+v vs %+v", workers, scalar.Traffic, batch.Traffic)
		}
	}
}

// TestBatchMultiChunk shrinks the chunk size so the 5000-row stream
// spans many chunks, checking state carry-over and the partial final
// cycle across chunk boundaries for every kind.
func TestBatchMultiChunk(t *testing.T) {
	old := chunkEntries
	chunkEntries = 256
	defer func() { chunkEntries = old }()
	tb := equivTable(t, 5000, 0x41)
	rt := equivTable(t, 1777, 0x42)
	for name, q := range equivQueries(tb, rt) {
		for _, workers := range []int{1, 5, 7} {
			scalar, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 11, Scalar: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			batch, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 11, NoFuse: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if batch.Traffic != scalar.Traffic || batch.Stats != scalar.Stats || !batch.Result.Equal(scalar.Result) {
				t.Fatalf("%s w=%d multi-chunk diverges\nscalar traffic %+v stats %+v\nbatch  traffic %+v stats %+v",
					name, workers, scalar.Traffic, scalar.Stats, batch.Traffic, batch.Stats)
			}
		}
	}
}

// TestBatchParallelEncode forces the concurrent per-worker encode
// branch (normally gated on chunk size and real CPU parallelism) and
// checks the scattered stream still reproduces interleave order for
// every kind.
func TestBatchParallelEncode(t *testing.T) {
	oldMin, oldGate := parallelEncodeMin, encodeInParallel
	parallelEncodeMin, encodeInParallel = 1, true
	defer func() { parallelEncodeMin, encodeInParallel = oldMin, oldGate }()
	tb := equivTable(t, 5003, 0x51)
	rt := equivTable(t, 1777, 0x52)
	for name, q := range equivQueries(tb, rt) {
		for _, workers := range []int{2, 5} {
			scalar, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 13, Scalar: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			batch, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 13, NoFuse: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if batch.Traffic != scalar.Traffic || batch.Stats != scalar.Stats || !batch.Result.Equal(scalar.Result) {
				t.Fatalf("%s w=%d parallel encode diverges: traffic %+v vs %+v", name, workers, scalar.Traffic, batch.Traffic)
			}
		}
	}
}

// TestBatchCustomPrunerFilterExactCompletion: a caller-supplied filter
// pruner may forward false positives; the batch path must fall back to
// the master's exact formula re-check, matching the scalar path.
func TestBatchCustomPrunerFilterExactCompletion(t *testing.T) {
	tb := equivTable(t, 3000, 0x61)
	for _, countOnly := range []bool{false, true} {
		q := &Query{
			Kind:  KindFilter,
			Table: tb,
			Predicates: []FilterPred{
				{Col: "score", Op: prune.OpGT, Const: 50_000},
				{Col: "val", Op: prune.OpLT, Const: 500},
			},
			Formula:   boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}},
			CountOnly: countOnly,
		}
		mk := func() prune.Pruner {
			// A weaker switch program: only the first predicate runs on
			// the switch, so it forwards rows failing the second one.
			f, err := prune.NewFilter(prune.FilterConfig{
				Predicates: []prune.Predicate{{ValIdx: 0, Op: prune.OpGT, Const: 50_000}},
				Formula:    boolexpr.Leaf{V: 0},
			})
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
		scalar, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: 5, Scalar: true, Pruner: mk()})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: 5, Pruner: mk(), NoFuse: true})
		if err != nil {
			t.Fatal(err)
		}
		if !batch.Result.Equal(scalar.Result) || batch.Traffic != scalar.Traffic {
			t.Fatalf("countOnly=%v: custom-pruner filter diverges\nscalar: %+v\n%s\nbatch: %+v\n%s",
				countOnly, scalar.Traffic, scalar.Result, batch.Traffic, batch.Result)
		}
		// The weak pruner must actually forward false positives for
		// this test to mean anything.
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatal(err)
		}
		if !batch.Result.Equal(direct) {
			t.Fatalf("countOnly=%v: batch result wrong vs direct", countOnly)
		}
		if batch.Traffic.Forwarded <= len(direct.Rows) && !countOnly {
			t.Fatalf("weak pruner forwarded %d ≤ %d true matches; test is vacuous", batch.Traffic.Forwarded, len(direct.Rows))
		}
	}
}

// TestBatchChunkBoundaryOrder uses prime row counts so every worker
// count leaves unequal partitions and a partial final cycle.
func TestBatchChunkBoundaryOrder(t *testing.T) {
	// 5003 is prime: every worker count > 1 yields unequal partitions.
	tb := equivTable(t, 5003, 0x31)
	q := &Query{Kind: KindTopN, Table: tb, OrderCol: "score", N: 25}
	for _, workers := range []int{2, 3, 5, 7, 11} {
		scalar, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 9, Scalar: true})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 9, NoFuse: true})
		if err != nil {
			t.Fatal(err)
		}
		if batch.Traffic != scalar.Traffic || batch.Stats != scalar.Stats {
			t.Fatalf("w=%d: traffic/stats diverge: %+v vs %+v", workers, scalar.Traffic, batch.Traffic)
		}
	}
}
