package engine

// This file is the engine side of storage-side data skipping: deciding,
// from a table's block skip metadata (table.SkipIndex), which blocks a
// pass can prove irrelevant and never encode. Skipping composes with
// switch pruning multiplicatively — the switch prunes entries in
// flight, the skip index keeps whole blocks from entering the stream at
// all — and it is exact by construction, never best-effort like the
// pruners:
//
//   - FILTER: the query formula is monotone (boolexpr has And/Or/Leaf/
//     Const and no negation), so evaluating it with every leaf replaced
//     by "can this predicate hold for ANY row of the block" (from the
//     zone map, plus the block Bloom for equality) yields an upper
//     bound: formula false ⇒ no row in the block can match.
//   - TOP N: the master heap only ever replaces its root when v > h[0]
//     (see execTopN), so once the heap holds N values, a block whose
//     max ≤ h[0] cannot change the final top-N multiset. The threshold
//     tightens as blocks stream, so later blocks skip more.
//   - JOIN: the build side's distinct keys (capped; skipping disables
//     beyond the cap) probe each probe-side block's key Bloom. Blooms
//     have no false negatives, so a block where every build key tests
//     negative contains no joinable row — and, symmetrically, any
//     probe-side block holding a key that exists on the build side can
//     never be skipped, which is what keeps the switch Bloom join's
//     training passes exact under skipping.
//
// DISTINCT, GROUP BY, HAVING and SKYLINE scan everything: every row can
// change their result, so there is no sound block-level bound. They
// report zero skip stats.
//
// Rows past the index's coverage (appended since the last refresh) and
// blocks whose metadata does not cover the whole span (a snapshot taken
// mid-tail-block sees the reverse: metadata over MORE rows than the
// view, which only weakens the bound) are scanned unconditionally —
// staleness costs skips, never correctness.

import (
	"container/heap"
	"sort"
	"strconv"
	"strings"

	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// SkipStats reports the block-skipping work of one execution. Zero when
// skipping was disabled, the table has no skip index, or the query kind
// admits no sound block bound.
type SkipStats struct {
	// BlocksSeen counts blocks whose metadata covered a scanned span
	// (the denominator of the skip rate).
	BlocksSeen int
	// BlocksSkipped counts blocks proven irrelevant and never encoded.
	BlocksSkipped int
	// RowsSkipped counts the rows inside skipped blocks.
	RowsSkipped int
}

// Add accumulates o into s (per-shard and per-delta roll-ups).
func (s *SkipStats) Add(o SkipStats) {
	s.BlocksSeen += o.BlocksSeen
	s.BlocksSkipped += o.BlocksSkipped
	s.RowsSkipped += o.RowsSkipped
}

// span is a contiguous row range [lo, hi) in a table's local (view)
// coordinates.
type span struct{ lo, hi int }

// fullSpans is the no-skipping span list: one span covering the table.
func fullSpans(t *table.Table) []span { return []span{{0, t.NumRows()}} }

// forEachBlockSpan cuts the view t into spans aligned to its root skip
// index's blocks and calls fn for each, with the block's metadata when
// it covers the whole span (meta == nil otherwise: no index, rows past
// the index's coverage — those spans must be scanned). Without an index
// fn is called once for the full table.
func forEachBlockSpan(t *table.Table, fn func(lo, hi int, meta *table.BlockMeta)) {
	n := t.NumRows()
	ix := t.SkipIndex()
	if ix == nil {
		if n > 0 {
			fn(0, n, nil)
		}
		return
	}
	off := t.RootOffset()
	bs := ix.BlockRows()
	for lo := 0; lo < n; {
		b := (off + lo) / bs
		hi := min(n, (b+1)*bs-off)
		var meta *table.BlockMeta
		if b < ix.NumBlocks() {
			if m := ix.Block(b); off+hi <= b*bs+m.Rows() {
				meta = m
			}
		}
		fn(lo, hi, meta)
		lo = hi
	}
}

// appendSpan appends [lo, hi), merging with the previous span when
// adjacent so an unskippable run streams as one batchPass.
func appendSpan(spans []span, lo, hi int) []span {
	if k := len(spans); k > 0 && spans[k-1].hi == lo {
		spans[k-1].hi = hi
		return spans
	}
	return append(spans, span{lo, hi})
}

// spanRows materializes the row-index list of a span set (the direct
// path's restricted scan).
func spanRows(spans []span) []int {
	n := 0
	for _, sp := range spans {
		n += sp.hi - sp.lo
	}
	rows := make([]int, 0, n)
	for _, sp := range spans {
		for r := sp.lo; r < sp.hi; r++ {
			rows = append(rows, r)
		}
	}
	return rows
}

// predMayMatch reports whether predicate p (over column col) may hold
// for some row of the block. False is exact: combined with the formula's
// monotonicity, it licenses skipping. The comparisons mirror
// FilterPred.Eval exactly, including the unknown-op case (Eval returns
// false for every row, so the block cannot match through that leaf).
func predMayMatch(p *FilterPred, col int, m *table.BlockMeta) bool {
	if p.Like != "" {
		// A wildcard pattern has no single probe value; only an exact
		// pattern can consult the Bloom.
		if strings.ContainsAny(p.Like, "%_") {
			return true
		}
		return m.MayContainString(col, p.Like)
	}
	lo, hi := m.Int64Range(col)
	switch p.Op {
	case prune.OpGT:
		return hi > p.Const
	case prune.OpGE:
		return hi >= p.Const
	case prune.OpLT:
		return lo < p.Const
	case prune.OpLE:
		return lo <= p.Const
	case prune.OpEQ:
		return m.MayContainInt64(col, p.Const)
	case prune.OpNE:
		return lo != p.Const || hi != p.Const
	default:
		return false
	}
}

// filterMayMatch evaluates the query formula with each leaf replaced by
// its block-level upper bound. False ⇒ no row of the block satisfies
// the formula (monotone formula, leafwise upper bounds).
func filterMayMatch(q *Query, cols []int, m *table.BlockMeta) bool {
	return q.Formula.Eval(func(v int) bool {
		return predMayMatch(&q.Predicates[v], cols[v], m)
	})
}

// filterSpans derives the scan spans of a FILTER over t: block-aligned
// spans whose metadata cannot rule the formula out, merged when
// adjacent. Without an index it returns the full table and zero stats.
func filterSpans(q *Query, t *table.Table, cols []int) ([]span, SkipStats) {
	var st SkipStats
	var spans []span
	forEachBlockSpan(t, func(lo, hi int, m *table.BlockMeta) {
		if m != nil {
			st.BlocksSeen++
			if !filterMayMatch(q, cols, m) {
				st.BlocksSkipped++
				st.RowsSkipped += hi - lo
				return
			}
		}
		spans = appendSpan(spans, lo, hi)
	})
	return spans, st
}

// joinSkipMaxKeys caps the build-side distinct-key collection; past it
// the per-block probe cost stops paying and skipping is disabled.
const joinSkipMaxKeys = 4096

// joinRightSpans derives the probe-side (right) scan spans of a JOIN:
// a right block is skipped when every distinct build-side (left) key
// tests negative in the block's key Bloom — no joinable row can be
// there. Returns the full table when the right table has no index, the
// key types differ, or the build side has too many distinct keys.
func joinRightSpans(left *table.Table, lc int, right *table.Table, rc int) ([]span, SkipStats) {
	if right.SkipIndex() == nil || left.ColumnType(lc) != right.ColumnType(rc) {
		return fullSpans(right), SkipStats{}
	}
	var intKeys []int64
	var strKeys []string
	if left.ColumnType(lc) == table.Int64 {
		seen := make(map[int64]struct{}, 1024)
		for _, v := range left.Int64Col(lc) {
			if _, ok := seen[v]; ok {
				continue
			}
			if len(seen) >= joinSkipMaxKeys {
				return fullSpans(right), SkipStats{}
			}
			seen[v] = struct{}{}
			intKeys = append(intKeys, v)
		}
	} else {
		seen := make(map[string]struct{}, 1024)
		for _, s := range left.StringCol(lc) {
			if _, ok := seen[s]; ok {
				continue
			}
			if len(seen) >= joinSkipMaxKeys {
				return fullSpans(right), SkipStats{}
			}
			seen[s] = struct{}{}
			strKeys = append(strKeys, s)
		}
	}
	var st SkipStats
	var spans []span
	forEachBlockSpan(right, func(lo, hi int, m *table.BlockMeta) {
		if m != nil {
			st.BlocksSeen++
			may := false
			for _, k := range intKeys {
				if m.MayContainInt64(rc, k) {
					may = true
					break
				}
			}
			if !may {
				for _, k := range strKeys {
					if m.MayContainString(rc, k) {
						may = true
						break
					}
				}
			}
			if !may {
				st.BlocksSkipped++
				st.RowsSkipped += hi - lo
				return
			}
		}
		spans = appendSpan(spans, lo, hi)
	})
	return spans, st
}

// offsetIDs wraps a segment view's encoder so the row ids it emits are
// in the parent table's coordinates (the master's late materialization
// and completeOnRows index the original q.Table).
func offsetIDs(enc partEncoder, base uint64) partEncoder {
	if base == 0 {
		return enc
	}
	return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
		enc(dst, ids, lo, hi, pos0, stride)
		if ids == nil {
			return
		}
		p := pos0
		for r := lo; r < hi; r++ {
			ids[p] += base
			p += stride
		}
	}
}

// spanPass streams each span of t through batchPass as its own segment
// (zero-copy views, ids rebased to t's coordinates). The single
// full-table span — the no-skipping case — takes the exact legacy path,
// byte for byte.
func spanPass(t *table.Table, spans []span, workers, width int, needIDs bool, buf *streamBuf,
	encFor func(*table.Table) partEncoder, dp BatchDataplane, sink batchSink) error {
	if len(spans) == 1 && spans[0].lo == 0 && spans[0].hi == t.NumRows() {
		batchPass(t.NumRows(), workers, width, needIDs, buf, encFor(t), dp, nil, sink)
		return nil
	}
	for _, sp := range spans {
		v, err := t.View(sp.lo, sp.hi)
		if err != nil {
			return err
		}
		enc := encFor(v)
		if needIDs {
			enc = offsetIDs(enc, uint64(sp.lo))
		}
		batchPass(v.NumRows(), workers, width, needIDs, buf, enc, dp, nil, sink)
	}
	return nil
}

// topNSpanScan drives a TOP N scan over t's blocks with the running
// heap threshold: each block is offered to skip (heap full and block
// max ≤ h[0]) before scan streams its span. The threshold tightens as
// spans stream, so later blocks skip more.
func topNSpanScan(t *table.Table, col, n int, h *int64Heap, st *SkipStats, scan func(lo, hi int)) {
	forEachBlockSpan(t, func(lo, hi int, m *table.BlockMeta) {
		if m != nil {
			st.BlocksSeen++
			if len(*h) == n {
				if _, mx := m.Int64Range(col); mx <= (*h)[0] {
					st.BlocksSkipped++
					st.RowsSkipped += hi - lo
					return
				}
			}
		}
		scan(lo, hi)
	})
}

// execTopNSkip is execTopN with the block threshold bound: bit-identical
// output (the heap's final multiset is order-independent, and a skipped
// block's values are all ≤ the running h[0], which execTopN's
// replace-on-strictly-greater rule ignores anyway).
func execTopNSkip(q *Query, t *table.Table) (*Result, SkipStats, error) {
	col := t.Schema().MustIndex(q.OrderCol)
	var st SkipStats
	h := &int64Heap{}
	heap.Init(h)
	topNSpanScan(t, col, q.N, h, &st, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			v := t.Int64At(col, r)
			if h.Len() < q.N {
				heap.Push(h, v)
			} else if v > (*h)[0] {
				(*h)[0] = v
				heap.Fix(h, 0)
			}
		}
	})
	vals := make([]int64, h.Len())
	copy(vals, *h)
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	res := &Result{Columns: []string{q.OrderCol}}
	for _, v := range vals {
		res.Rows = append(res.Rows, []string{strconv.FormatInt(v, 10)})
	}
	res.Sort()
	return res, st, nil
}

// ExecDirectSkip is ExecDirect with block skipping: bit-identical
// results, with the blocks the metadata proves irrelevant never read.
// Kinds without a sound block bound (DISTINCT, GROUP BY, HAVING,
// SKYLINE) delegate to ExecDirect and report zero stats.
func ExecDirectSkip(q *Query) (*Result, SkipStats, error) {
	if err := q.Validate(); err != nil {
		return nil, SkipStats{}, err
	}
	switch q.Kind {
	case KindFilter:
		cols := make([]int, len(q.Predicates))
		for i, p := range q.Predicates {
			cols[i] = q.Table.Schema().MustIndex(p.Col)
		}
		spans, st := filterSpans(q, q.Table, cols)
		res, err := execFilter(q, q.Table, spanRows(spans))
		return res, st, err
	case KindTopN:
		return execTopNSkip(q, q.Table)
	case KindJoin:
		lc := q.Table.Schema().MustIndex(q.LeftKey)
		rc := q.Right.Schema().MustIndex(q.RightKey)
		spans, st := joinRightSpans(q.Table, lc, q.Right, rc)
		res, err := execJoin(q, allRows(q.Table), spanRows(spans))
		return res, st, err
	default:
		res, err := ExecDirect(q)
		return res, SkipStats{}, err
	}
}
