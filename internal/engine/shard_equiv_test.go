package engine

import (
	"strings"
	"testing"

	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// TestShardedMatchesDirect is the scatter/gather equivalence suite: for
// every query kind, shard count and seed, the multi-switch execution
// must reproduce ExecDirect's result exactly — same rows, same order.
func TestShardedMatchesDirect(t *testing.T) {
	tb := equivTable(t, 5000, 0x5eed)
	rt := equivTable(t, 1777, 0x0dd)
	queries := equivQueries(tb, rt)
	for name, q := range queries {
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		for _, shards := range []int{1, 2, 4, 7} {
			for _, seed := range []uint64{1, 0xfeed, 0xc0ffee} {
				run, err := ExecSharded(q, ShardedOptions{Shards: shards, Workers: 3, Seed: seed})
				if err != nil {
					t.Fatalf("%s shards=%d seed=%d: %v", name, shards, seed, err)
				}
				assertShardedRun(t, name, shards, run, direct)
			}
		}
	}
}

// assertShardedRun checks result equality (including row order) and the
// per-switch traffic bookkeeping of one sharded run.
func assertShardedRun(t *testing.T, name string, shards int, run *ShardedRun, direct *Result) {
	t.Helper()
	if !run.Result.Equal(direct) {
		t.Fatalf("%s shards=%d: results diverge\ndirect:\n%s\nsharded:\n%s", name, shards, direct, run.Result)
	}
	for i := range direct.Rows {
		for j := range direct.Rows[i] {
			if run.Result.Rows[i][j] != direct.Rows[i][j] {
				t.Fatalf("%s shards=%d: row order diverges at %d", name, shards, i)
			}
		}
	}
	if len(run.PerSwitch) != shards {
		t.Fatalf("%s: %d per-switch reports for %d shards", name, len(run.PerSwitch), shards)
	}
	sent, fwd, second := 0, 0, 0
	for _, tr := range run.PerSwitch {
		sent += tr.EntriesSent
		fwd += tr.Forwarded
		second += tr.SecondPassSent
	}
	if sent != run.Traffic.EntriesSent || fwd != run.Traffic.Forwarded || second != run.Traffic.SecondPassSent {
		t.Fatalf("%s shards=%d: per-switch traffic does not sum to the aggregate: %+v vs %+v",
			name, shards, run.PerSwitch, run.Traffic)
	}
	if run.Stats.Processed == 0 && run.Traffic.EntriesSent > 0 {
		t.Fatalf("%s shards=%d: empty aggregate stats", name, shards)
	}
}

// TestShardedStrategies pins the hash and range strategies (Auto covers
// contiguous above) to the same exactness bar.
func TestShardedStrategies(t *testing.T) {
	tb := equivTable(t, 3000, 0xabc)
	rt := equivTable(t, 900, 0xdef)
	queries := equivQueries(tb, rt)
	for name, q := range queries {
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		for _, strat := range []ShardStrategy{ShardHash, ShardRange} {
			if q.Kind == KindJoin {
				continue // joins force hash-on-key; covered by the main suite
			}
			if strat == ShardRange {
				col, err := shardKeyCol(q)
				if err != nil || q.Table.Schema()[q.Table.Schema().Index(col)].Type != table.Int64 {
					continue // range sharding is Int64-only
				}
			}
			run, err := ExecSharded(q, ShardedOptions{Shards: 4, Workers: 2, Seed: 7, Strategy: strat})
			if err != nil {
				t.Fatalf("%s strategy=%v: %v", name, strat, err)
			}
			if !run.Result.Equal(direct) {
				t.Fatalf("%s strategy=%v: results diverge\ndirect:\n%s\nsharded:\n%s", name, strat, direct, run.Result)
			}
		}
	}
}

// TestShardedPlannerPruners exercises the caller-supplied per-switch
// programs path (the planner's sizing) for the kinds needing concrete
// pruner types.
func TestShardedPlannerPruners(t *testing.T) {
	tb := equivTable(t, 2000, 0x111)
	rt := equivTable(t, 600, 0x222)
	const shards = 4
	queries := equivQueries(tb, rt)
	build := map[string]func() (prune.Pruner, error){
		"having": func() (prune.Pruner, error) {
			return prune.NewHaving(prune.DefaultHavingConfig(queries["having"].Threshold/shards, 9))
		},
		"join": func() (prune.Pruner, error) {
			return prune.NewJoin(prune.JoinConfig{FilterBits: 1 << 16, Hashes: 3, Seed: 9})
		},
		"groupby-sum": func() (prune.Pruner, error) {
			return prune.NewGroupBySum(prune.DefaultGroupBySumConfig(9))
		},
	}
	for name, mk := range build {
		q := queries[name]
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatal(err)
		}
		pruners := make([]prune.Pruner, shards)
		for i := range pruners {
			if pruners[i], err = mk(); err != nil {
				t.Fatal(err)
			}
		}
		run, err := ExecSharded(q, ShardedOptions{Shards: shards, Workers: 2, Seed: 9, Pruners: pruners})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !run.Result.Equal(direct) {
			t.Fatalf("%s with planner pruners: results diverge\ndirect:\n%s\nsharded:\n%s", name, direct, run.Result)
		}
	}
}

// TestShardedOptionValidation pins the descriptive error paths.
func TestShardedOptionValidation(t *testing.T) {
	tb := equivTable(t, 100, 1)
	rt := equivTable(t, 50, 2)
	queries := equivQueries(tb, rt)

	q := queries["distinct-string"]
	if _, err := ExecSharded(q, ShardedOptions{Shards: 4, Pruners: make([]prune.Pruner, 2)}); err == nil {
		t.Fatal("pruner/shard count mismatch: want error")
	}
	if _, err := ExecSharded(q, ShardedOptions{Shards: 2, Flows: make([]BatchDataplane, 2)}); err == nil {
		t.Fatal("flows without pruners: want error")
	}
	if _, err := ExecSharded(queries["join"], ShardedOptions{Shards: 2, Strategy: ShardContiguous}); err == nil {
		t.Fatal("contiguous sharded join: want error")
	}
	if _, err := ExecSharded(queries["distinct-string"], ShardedOptions{Shards: 2, Strategy: ShardRange}); err == nil {
		t.Fatal("range sharding a string column: want error")
	}

	// Shards exceeding the row count still execute exactly.
	small := equivTable(t, 5, 3)
	qs := &Query{Kind: KindTopN, Table: small, OrderCol: "score", N: 3}
	direct, err := ExecDirect(qs)
	if err != nil {
		t.Fatal(err)
	}
	run, err := ExecSharded(qs, ShardedOptions{Shards: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Result.Equal(direct) {
		t.Fatalf("shards > rows: results diverge\ndirect:\n%s\nsharded:\n%s", direct, run.Result)
	}
}

// TestShardedNilPrunerRejected pins the descriptive error for a partial
// pruner slice (a nil element must not reach a shard's dataplane).
func TestShardedNilPrunerRejected(t *testing.T) {
	tb := equivTable(t, 50, 1)
	q := &Query{Kind: KindDistinct, Table: tb, DistinctCols: []string{"name"}}
	good, err := DefaultPruner(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ExecSharded(q, ShardedOptions{Shards: 2, Pruners: []prune.Pruner{good, nil}})
	if err == nil || !strings.Contains(err.Error(), "nil pruner") {
		t.Fatalf("nil pruner element: got %v", err)
	}
}
