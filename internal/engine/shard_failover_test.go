package engine

import (
	"errors"
	"sync"
	"testing"

	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

var errSwitchDead = errors.New("test: switch dead")

// pipeDP adapts one real pipeline flow to HealthDataplane, the shape
// serve.Lease has in production.
type pipeDP struct {
	pl     *switchsim.Pipeline
	flowID uint32
}

func (d pipeDP) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	d.pl.ProcessBatch(d.flowID, b, decisions)
}

func (d pipeDP) Err() error {
	if d.pl.Failed() {
		return errSwitchDead
	}
	return nil
}

// failoverHarness builds per-shard programs on real pipelines, arms a
// fault injector on the chosen victims, and supplies a Failover hook
// that re-places a dead shard on a fresh pipeline.
type failoverHarness struct {
	t        *testing.T
	q        *Query
	shards   int
	seed     uint64
	pruners  []prune.Pruner
	flows    []BatchDataplane
	mu       sync.Mutex
	replaced int
}

func newFailoverHarness(t *testing.T, q *Query, shards int, seed uint64, victim map[int]switchsim.FaultInjector) *failoverHarness {
	t.Helper()
	h := &failoverHarness{t: t, q: q, shards: shards, seed: seed}
	for s := 0; s < shards; s++ {
		p, dp := h.place(victim[s])
		h.pruners = append(h.pruners, p)
		h.flows = append(h.flows, dp)
	}
	return h
}

// place builds one fresh program on one fresh pipeline (optionally
// armed with an injector) and returns both.
func (h *failoverHarness) place(inj switchsim.FaultInjector) (prune.Pruner, BatchDataplane) {
	h.t.Helper()
	p, err := defaultShardPruner(h.q, h.shards, h.seed)
	if err != nil {
		h.t.Fatal(err)
	}
	pl, err := switchsim.NewPipeline(switchsim.Tofino())
	if err != nil {
		h.t.Fatal(err)
	}
	if err := pl.Install(1, p); err != nil {
		h.t.Fatal(err)
	}
	if inj != nil {
		pl.SetFaultInjector(inj)
	}
	return p, pipeDP{pl: pl, flowID: 1}
}

func (h *failoverHarness) failover(shard, attempt int) (prune.Pruner, BatchDataplane, error) {
	h.mu.Lock()
	h.replaced++
	h.mu.Unlock()
	p, dp := h.place(nil)
	return p, dp, nil
}

// TestShardedFailoverMatchesDirect kills one shard's switch mid-stream
// for every query kind: the failover path must redo the shard on a
// replacement switch and still reproduce ExecDirect bit-identically.
func TestShardedFailoverMatchesDirect(t *testing.T) {
	// Force multi-chunk shard streams so "between two batches" exists
	// for every kind at this table size.
	defer func(n int) { chunkEntries = n }(chunkEntries)
	chunkEntries = 256
	tb := equivTable(t, 3000, 0x5eed)
	rt := equivTable(t, 900, 0x0dd)
	const shards = 3
	for name, q := range equivQueries(tb, rt) {
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		// Shard 1's switch dies between its 1st and 2nd batch (streams
		// are one chunk per worker here, so later ordinals never fire).
		h := newFailoverHarness(t, q, shards, 0xfeed, map[int]switchsim.FaultInjector{
			1: func(flow uint32, batch int) bool { return batch >= 1 },
		})
		run, err := ExecSharded(q, ShardedOptions{
			Shards: shards, Workers: 2, Seed: 0xfeed,
			Pruners: h.pruners, Flows: h.flows, Failover: h.failover,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !run.Result.Equal(direct) {
			t.Fatalf("%s with mid-stream switch death: results diverge\ndirect:\n%s\nsharded:\n%s", name, direct, run.Result)
		}
		if run.FailedOver < 1 {
			t.Fatalf("%s: FailedOver = %d, want ≥ 1 (the victim shard was redone)", name, run.FailedOver)
		}
		if run.Degraded != 0 {
			t.Fatalf("%s: Degraded = %d, want 0 (replacement switch was healthy)", name, run.Degraded)
		}
	}
}

// TestShardedDegradesWithoutFailover kills every switch immediately
// with no Failover hook: each shard must fall back to master-side
// execution of its (reset) program — the §7.2 backstop — and results
// must stay exact.
func TestShardedDegradesWithoutFailover(t *testing.T) {
	tb := equivTable(t, 2000, 0x111)
	rt := equivTable(t, 600, 0x222)
	const shards = 2
	dieNow := func(flow uint32, batch int) bool { return true }
	for name, q := range equivQueries(tb, rt) {
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		h := newFailoverHarness(t, q, shards, 7, map[int]switchsim.FaultInjector{0: dieNow, 1: dieNow})
		run, err := ExecSharded(q, ShardedOptions{
			Shards: shards, Workers: 2, Seed: 7,
			Pruners: h.pruners, Flows: h.flows,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !run.Result.Equal(direct) {
			t.Fatalf("%s on a fully dead fabric: results diverge\ndirect:\n%s\nsharded:\n%s", name, direct, run.Result)
		}
		if run.Degraded != shards {
			t.Fatalf("%s: Degraded = %d, want %d (every shard fell back)", name, run.Degraded, shards)
		}
	}
}

// TestShardedFailoverExhaustionDegrades hands out replacements that die
// instantly: after maxFailoverAttempts the shard must stop retrying and
// degrade, still exact.
func TestShardedFailoverExhaustionDegrades(t *testing.T) {
	tb := equivTable(t, 1000, 0x333)
	q := &Query{Kind: KindDistinct, Table: tb, DistinctCols: []string{"name"}}
	direct, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	dieNow := func(flow uint32, batch int) bool { return true }
	h := newFailoverHarness(t, q, 2, 5, map[int]switchsim.FaultInjector{0: dieNow, 1: dieNow})
	attempts := 0
	var mu sync.Mutex
	run, err := ExecSharded(q, ShardedOptions{
		Shards: 2, Workers: 1, Seed: 5,
		Pruners: h.pruners, Flows: h.flows,
		Failover: func(shard, attempt int) (prune.Pruner, BatchDataplane, error) {
			mu.Lock()
			attempts++
			mu.Unlock()
			p, err := defaultShardPruner(q, 2, 5)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := switchsim.NewPipeline(switchsim.Tofino())
			if err != nil {
				t.Fatal(err)
			}
			if err := pl.Install(1, p); err != nil {
				t.Fatal(err)
			}
			pl.SetFaultInjector(dieNow)
			return p, pipeDP{pl: pl, flowID: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Result.Equal(direct) {
		t.Fatalf("results diverge\ndirect:\n%s\nsharded:\n%s", direct, run.Result)
	}
	if run.Degraded != 2 {
		t.Fatalf("Degraded = %d, want 2", run.Degraded)
	}
	if attempts != 2*maxFailoverAttempts {
		t.Fatalf("failover attempts = %d, want %d (cap per shard)", attempts, 2*maxFailoverAttempts)
	}
}

// TestWarmFingerprintMatchesRow pins the warm-rebuild hash to the live
// fingerprint: rendering a cell and re-hashing it must be bit-identical
// to fingerprintRow on the original column values.
func TestWarmFingerprintMatchesRow(t *testing.T) {
	tb := equivTable(t, 300, 0x77)
	cols := []int{tb.Schema().MustIndex("group"), tb.Schema().MustIndex("val")}
	types := []table.Type{table.String, table.Int64}
	for _, seed := range []uint64{1, 0xfeed} {
		for r := 0; r < tb.NumRows(); r++ {
			cells := []string{cellString(tb, cols[0], r), cellString(tb, cols[1], r)}
			got, err := warmFingerprint(types, cells, seed)
			if err != nil {
				t.Fatal(err)
			}
			if want := fingerprintRow(tb, cols, r, seed); got != want {
				t.Fatalf("row %d seed %#x: warm fingerprint %#x != live %#x", r, seed, got, want)
			}
		}
	}
}

// TestWarmPruner checks the warm rebuild per kind: supported kinds
// re-arm pruning for already-reported values, unsupported kinds refuse.
func TestWarmPruner(t *testing.T) {
	tb := equivTable(t, 2000, 0x99)
	rt := equivTable(t, 400, 0x88)
	const seed = 0xfeed

	// DISTINCT: after warming from the standing result, every row of the
	// table carries an already-seen fingerprint and must prune.
	q := &Query{Kind: KindDistinct, Table: tb, DistinctCols: []string{"name"}}
	standing, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DefaultPruner(q, seed)
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := WarmPruner(q, seed, standing, p)
	if err != nil || !warmed {
		t.Fatalf("distinct warm rebuild: warmed=%v err=%v", warmed, err)
	}
	// Every row's value is already reported, so a warmed program should
	// prune the bulk of them. Not all: the register matrix is lossy
	// (collision evictions), and forwarding a seen value is conservative
	// — the master's dedupe absorbs it — so the bar is re-armed pruning,
	// not perfection.
	nc := tb.Schema().MustIndex("name")
	pruned := 0
	for r := 0; r < tb.NumRows(); r++ {
		fp := fingerprintRow(tb, []int{nc}, r, seed)
		if p.Process([]uint64{fp}) == switchsim.Prune {
			pruned++
		}
	}
	if pruned < tb.NumRows()/2 {
		t.Fatalf("warmed distinct program pruned only %d of %d already-reported rows", pruned, tb.NumRows())
	}

	// Supported / refused kinds.
	for name, q := range equivQueries(tb, rt) {
		res, err := ExecDirect(q)
		if err != nil {
			t.Fatal(err)
		}
		p, err := defaultShardPruner(q, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		warmed, err := WarmPruner(q, seed, res, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := q.Kind == KindDistinct || q.Kind == KindGroupByMax || q.Kind == KindTopN
		if q.Kind == KindFilter {
			want = false
		}
		if warmed != want {
			t.Fatalf("%s: warmed=%v, want %v", name, warmed, want)
		}
	}
}
