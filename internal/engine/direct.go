package engine

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"

	"cheetah/internal/table"
)

// ExecDirect runs the query exactly on a single node — the ground truth
// both execution paths must reproduce, and the completion step the master
// applies to pruned data.
func ExecDirect(q *Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch q.Kind {
	case KindFilter:
		return execFilter(q, q.Table, allRows(q.Table))
	case KindDistinct:
		return execDistinct(q, q.Table, allRows(q.Table))
	case KindTopN:
		return execTopN(q, q.Table, allRows(q.Table))
	case KindGroupByMax:
		return execGroupByMax(q, q.Table, allRows(q.Table))
	case KindGroupBySum:
		return execGroupBySum(q, q.Table, allRows(q.Table))
	case KindHaving:
		return execHaving(q, q.Table, allRows(q.Table))
	case KindJoin:
		return execJoin(q, allRows(q.Table), allRows(q.Right))
	case KindSkyline:
		return execSkyline(q, q.Table, allRows(q.Table))
	default:
		return nil, fmt.Errorf("engine: unknown kind %v", q.Kind)
	}
}

// allRows returns the identity row-index list for t.
func allRows(t *table.Table) []int {
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// cellString renders one cell canonically.
func cellString(t *table.Table, col, row int) string {
	if t.Schema()[col].Type == table.Int64 {
		return strconv.FormatInt(t.Int64At(col, row), 10)
	}
	return t.StringAt(col, row)
}

// execFilter returns the rows of t (restricted to rows) matching the
// formula, projected to all columns — or the match count for CountOnly.
func execFilter(q *Query, t *table.Table, rows []int) (*Result, error) {
	cols := make([]int, len(q.Predicates))
	for i, p := range q.Predicates {
		cols[i] = t.Schema().MustIndex(p.Col)
	}
	count := 0
	var out [][]string
	for _, r := range rows {
		ok := q.Formula.Eval(func(v int) bool {
			return q.Predicates[v].Eval(t, cols[v], r)
		})
		if !ok {
			continue
		}
		count++
		if q.CountOnly {
			continue
		}
		row := make([]string, t.NumCols())
		for c := range row {
			row[c] = cellString(t, c, r)
		}
		out = append(out, row)
	}
	if q.CountOnly {
		return &Result{Columns: []string{"count"}, Rows: [][]string{{strconv.Itoa(count)}}}, nil
	}
	names := make([]string, t.NumCols())
	for i, d := range t.Schema() {
		names[i] = d.Name
	}
	res := &Result{Columns: names, Rows: out}
	res.Sort()
	return res, nil
}

// execDistinct returns the distinct value tuples of the requested columns.
func execDistinct(q *Query, t *table.Table, rows []int) (*Result, error) {
	cols := make([]int, len(q.DistinctCols))
	for i, c := range q.DistinctCols {
		cols[i] = t.Schema().MustIndex(c)
	}
	seen := map[string][]string{}
	for _, r := range rows {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = cellString(t, c, r)
		}
		seen[rowKeyOf(row)] = row
	}
	res := &Result{Columns: append([]string(nil), q.DistinctCols...)}
	for _, row := range seen {
		res.Rows = append(res.Rows, row)
	}
	res.Sort()
	return res, nil
}

func rowKeyOf(row []string) string {
	k := ""
	for _, c := range row {
		k += c + "\x00"
	}
	return k
}

// int64Heap is a min-heap used by execTopN.
type int64Heap []int64

func (h int64Heap) Len() int           { return len(h) }
func (h int64Heap) Less(i, j int) bool { return h[i] < h[j] }
func (h int64Heap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *int64Heap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *int64Heap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// execTopN returns the N largest ORDER BY values (the paper's TOP N is
// served by the master with an N-sized heap, §8.3).
func execTopN(q *Query, t *table.Table, rows []int) (*Result, error) {
	col := t.Schema().MustIndex(q.OrderCol)
	h := &int64Heap{}
	heap.Init(h)
	for _, r := range rows {
		v := t.Int64At(col, r)
		if h.Len() < q.N {
			heap.Push(h, v)
		} else if v > (*h)[0] {
			(*h)[0] = v
			heap.Fix(h, 0)
		}
	}
	vals := make([]int64, h.Len())
	copy(vals, *h)
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	res := &Result{Columns: []string{q.OrderCol}}
	for _, v := range vals {
		res.Rows = append(res.Rows, []string{strconv.FormatInt(v, 10)})
	}
	res.Sort()
	return res, nil
}

// execGroupByMax returns (key, MAX(val)) per key.
func execGroupByMax(q *Query, t *table.Table, rows []int) (*Result, error) {
	kc := t.Schema().MustIndex(q.KeyCol)
	vc := t.Schema().MustIndex(q.AggCol)
	best := map[string]int64{}
	for _, r := range rows {
		k := cellString(t, kc, r)
		v := t.Int64At(vc, r)
		if cur, ok := best[k]; !ok || v > cur {
			best[k] = v
		}
	}
	res := &Result{Columns: []string{q.KeyCol, "max(" + q.AggCol + ")"}}
	for k, v := range best {
		res.Rows = append(res.Rows, []string{k, strconv.FormatInt(v, 10)})
	}
	res.Sort()
	return res, nil
}

// execGroupBySum returns (key, SUM(val)) per key.
func execGroupBySum(q *Query, t *table.Table, rows []int) (*Result, error) {
	kc := t.Schema().MustIndex(q.KeyCol)
	vc := t.Schema().MustIndex(q.AggCol)
	sums := map[string]int64{}
	for _, r := range rows {
		sums[cellString(t, kc, r)] += t.Int64At(vc, r)
	}
	res := &Result{Columns: []string{q.KeyCol, "sum(" + q.AggCol + ")"}}
	for k, v := range sums {
		res.Rows = append(res.Rows, []string{k, strconv.FormatInt(v, 10)})
	}
	res.Sort()
	return res, nil
}

// execHaving returns the keys whose SUM(val) exceeds the threshold.
func execHaving(q *Query, t *table.Table, rows []int) (*Result, error) {
	kc := t.Schema().MustIndex(q.KeyCol)
	vc := t.Schema().MustIndex(q.AggCol)
	sums := map[string]int64{}
	for _, r := range rows {
		sums[cellString(t, kc, r)] += t.Int64At(vc, r)
	}
	res := &Result{Columns: []string{q.KeyCol}}
	for k, v := range sums {
		if v > q.Threshold {
			res.Rows = append(res.Rows, []string{k})
		}
	}
	res.Sort()
	return res, nil
}

// execJoin returns, per joined key, the key and the number of row pairs —
// a canonical summary of the inner-join output that stays comparable at
// benchmark scale.
func execJoin(q *Query, leftRows, rightRows []int) (*Result, error) {
	lc := q.Table.Schema().MustIndex(q.LeftKey)
	rc := q.Right.Schema().MustIndex(q.RightKey)
	leftCount := map[string]int{}
	for _, r := range leftRows {
		leftCount[cellString(q.Table, lc, r)]++
	}
	pairs := map[string]int{}
	for _, r := range rightRows {
		k := cellString(q.Right, rc, r)
		if n := leftCount[k]; n > 0 {
			pairs[k] += n
		}
	}
	res := &Result{Columns: []string{q.LeftKey, "pairs"}}
	for k, n := range pairs {
		res.Rows = append(res.Rows, []string{k, strconv.Itoa(n)})
	}
	res.Sort()
	return res, nil
}

// execSkyline returns the distinct coordinate tuples on the Pareto curve
// (all dimensions maximized).
func execSkyline(q *Query, t *table.Table, rows []int) (*Result, error) {
	cols := make([]int, len(q.SkylineCols))
	for i, c := range q.SkylineCols {
		cols[i] = t.Schema().MustIndex(c)
	}
	// Collect distinct points first: the skyline is a set of points.
	type pt struct {
		coords []int64
	}
	seen := map[string]pt{}
	for _, r := range rows {
		coords := make([]int64, len(cols))
		key := ""
		for i, c := range cols {
			coords[i] = t.Int64At(c, r)
			key += strconv.FormatInt(coords[i], 10) + "\x00"
		}
		seen[key] = pt{coords: coords}
	}
	points := make([]pt, 0, len(seen))
	for _, p := range seen {
		points = append(points, p)
	}
	// Sort by descending coordinate sum so dominators come early; then an
	// O(n·s) sweep against the accepted skyline keeps it near-linear for
	// realistic data.
	sort.Slice(points, func(i, j int) bool {
		si, sj := int64(0), int64(0)
		for _, v := range points[i].coords {
			si += v
		}
		for _, v := range points[j].coords {
			sj += v
		}
		return si > sj
	})
	var sky []pt
	for _, p := range points {
		dominated := false
		for _, s := range sky {
			if dominatesInt64(s.coords, p.coords) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	res := &Result{Columns: append([]string(nil), q.SkylineCols...)}
	for _, p := range sky {
		row := make([]string, len(p.coords))
		for i, v := range p.coords {
			row[i] = strconv.FormatInt(v, 10)
		}
		res.Rows = append(res.Rows, row)
	}
	res.Sort()
	return res, nil
}

// dominatesInt64 reports a ≥ b in every dimension with a ≠ b allowed —
// standard skyline dominance for maximization.
func dominatesInt64(a, b []int64) bool {
	for i := range a {
		if b[i] > a[i] {
			return false
		}
	}
	return true
}
