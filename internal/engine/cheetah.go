package engine

import (
	"fmt"
	"time"

	"cheetah/internal/hashutil"
	"cheetah/internal/obs"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// CheetahOptions configures the pruned execution path.
type CheetahOptions struct {
	// Workers is the number of CWorkers (data partitions). Paper testbed:
	// 5 for Big Data, 1 for TPC-H.
	Workers int
	// Pruner overrides the default pruner built for the query kind.
	// For KindJoin it must be a *prune.Join; for KindSkyline a
	// *prune.Skyline; etc.
	Pruner prune.Pruner
	// Seed drives fingerprinting and any randomized pruner defaults.
	Seed uint64
	// Scalar forces the legacy per-row execution path (one closure call
	// and one Program.Process per entry). The default is the batched
	// columnar pipeline (batch.go); the scalar path is kept frozen as
	// the equivalence-test reference and benchmark baseline.
	Scalar bool
	// Flow, when non-nil, processes batches through a shared switch
	// pipeline under the query's assigned QueryID instead of invoking
	// Pruner directly — the serving layer's multiplexed dataplane, where
	// the execution no longer owns the pipeline. Pruner must be the very
	// program installed for that flow: control-plane operations (probe
	// switchover, end-of-stream drains) still address it directly.
	// Batched path only; combining Flow with Scalar is an error.
	Flow BatchDataplane
	// Skip enables storage-side block skipping (skip.go) for kinds with
	// a sound block bound (FILTER, TOP N, JOIN) when the table carries a
	// skip index (table.BuildSkipIndex). Results stay bit-identical to
	// ExecDirect; skipped blocks are never encoded, so Traffic shrinks.
	// Batched path only; combining Skip with Scalar is an error — the
	// scalar path is the frozen equivalence oracle.
	Skip bool
	// NoFuse opts out of the fused execution loops (fuse.go) and keeps
	// the chunked batch pipeline. The fused path is the default when the
	// query's pruner is a shipped type the compiler knows; Results are
	// always bit-identical to ExecDirect either way. Traffic and Stats
	// are also identical for every kind except randomized TOP N, whose
	// fused RNG draws from a counter-indexed stream (prune decisions may
	// differ; final Results do not).
	NoFuse bool
	// Trace, when non-nil, collects per-stage spans (encode/prune/merge
	// on the batched path, one fused span on the fused path) into the
	// query's lifecycle trace. Tracing observes only: it never changes
	// results, traffic or stats. The scalar path — the frozen
	// equivalence oracle — is never traced.
	Trace *obs.Trace
	// TraceSwitch labels this execution's spans with the fabric switch
	// index the flow is placed on (0 for an unplaced local execution).
	TraceSwitch int

	// traceAcc, set only by the traced dispatch, makes dataplaneFor
	// wrap the resolved dataplane with ProcessBatch timing.
	traceAcc *traceAcc
}

// BatchDataplane processes one batch of entries for an already-admitted
// query flow. serve.Lease implements it by routing through the shared
// pipeline's per-flow program table; the engine's default implementation
// simply runs the execution's own pruner.
type BatchDataplane interface {
	ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision)
}

// HealthDataplane is the optional failure-aware extension of
// BatchDataplane: Err reports nil while the switch still holds the
// program and the revocation error once it died. A dead switch's
// dataplane stays safe to call — it forwards everything — but any pass
// that crossed the death may have lost program state the completion
// depends on (§7.2), so executions check Err after each pass and redo
// the work through a replacement. serve.Lease implements it.
type HealthDataplane interface {
	BatchDataplane
	Err() error
}

// progDataplane is the exclusive-ownership default: batches run straight
// on the query's program.
type progDataplane struct{ prog switchsim.Program }

func (d progDataplane) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	switchsim.ProcessBatchOf(d.prog, b, decisions)
}

// FusedProgram implements the fused-capability probe (fuse.go): on the
// exclusive path the execution owns the program outright, so direct
// access is always allowed.
func (d progDataplane) FusedProgram() switchsim.Program { return d.prog }

// dataplaneFor resolves the batch dataplane of one execution: the
// caller's flow-scoped handle when serving, the pruner itself otherwise.
func (o CheetahOptions) dataplaneFor(pruner prune.Pruner) BatchDataplane {
	var dp BatchDataplane
	if o.Flow != nil {
		dp = o.Flow
	} else {
		dp = progDataplane{prog: pruner}
	}
	if o.traceAcc != nil {
		return traceDataplane{inner: dp, acc: o.traceAcc}
	}
	return dp
}

// Traffic counts the data movement of one Cheetah execution; the cost
// model converts it to time.
type Traffic struct {
	// EntriesSent counts worker→switch data packets across all passes.
	EntriesSent int
	// Forwarded counts switch→master survivors (including emitted
	// aggregates and control-plane drains).
	Forwarded int
	// SecondPassSent counts the partial second pass of HAVING (entries
	// re-streamed for candidate keys) — included in EntriesSent too.
	SecondPassSent int
	// MasterProcessed counts entries the master touched to complete the
	// query.
	MasterProcessed int
}

// CheetahRun is the outcome of a pruned execution.
type CheetahRun struct {
	Result  *Result
	Traffic Traffic
	Stats   prune.Stats
	// PrunerName records which algorithm ran on the switch.
	PrunerName string
	// Skipped reports the block-skipping work (zero unless
	// CheetahOptions.Skip was set and the table carries a skip index).
	Skipped SkipStats
	// Wall is the execution's total wall time, captured once in
	// ExecCheetah around the whole run (see Stopwatch) — identical
	// semantics on the scalar, batched and fused paths.
	Wall time.Duration
}

// UnprunedFraction is Forwarded/EntriesSent, Figures 10–11's metric.
func (c *CheetahRun) UnprunedFraction() float64 {
	if c.Traffic.EntriesSent == 0 {
		return 0
	}
	return float64(c.Traffic.Forwarded) / float64(c.Traffic.EntriesSent)
}

// ExecCheetah runs the query along the Cheetah path: partition the table
// across CWorkers, stream the relevant columns through the (simulated)
// switch pruner, and complete the query at the master on the survivors
// via late materialization (row ids travel in the packets).
func ExecCheetah(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	clock := StartClock()
	run, err := execCheetah(q, opts)
	if run != nil {
		// The engine's single wall capture (satellite of the timing
		// unification): one stamp per call, covering every internal pass,
		// never reset by a retry.
		run.Wall = clock.Elapsed()
	}
	return run, err
}

func execCheetah(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if !opts.Scalar {
		return execCheetahBatch(q, opts)
	}
	if opts.Flow != nil {
		return nil, fmt.Errorf("engine: a flow-scoped dataplane requires the batched path, not Scalar")
	}
	if opts.Skip {
		return nil, fmt.Errorf("engine: block skipping requires the batched path, not Scalar")
	}
	switch q.Kind {
	case KindFilter:
		return cheetahFilter(q, opts)
	case KindDistinct:
		return cheetahDistinct(q, opts)
	case KindTopN:
		return cheetahTopN(q, opts)
	case KindGroupByMax:
		return cheetahGroupByMax(q, opts)
	case KindGroupBySum:
		return cheetahGroupBySum(q, opts)
	case KindHaving:
		return cheetahHaving(q, opts)
	case KindJoin:
		return cheetahJoin(q, opts)
	case KindSkyline:
		return cheetahSkyline(q, opts)
	default:
		return nil, fmt.Errorf("engine: unknown kind %v", q.Kind)
	}
}

// interleave yields global row indices of t in the order the switch sees
// them: partitions stream concurrently, so entries arrive round-robin
// across the workers' partitions (§3's rack-scale setup).
func interleave(t *table.Table, workers int, visit func(globalRow int)) {
	n := t.NumRows()
	// Partition boundaries identical to table.Partition.
	starts := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		starts[i] = i * n / workers
	}
	offsets := make([]int, workers)
	remaining := n
	for remaining > 0 {
		for w := 0; w < workers; w++ {
			r := starts[w] + offsets[w]
			if r < starts[w+1] {
				visit(r)
				offsets[w]++
				remaining--
			}
		}
	}
}

// fingerprintRow hashes the named columns of row r into one 64-bit
// fingerprint, the CWorker-side encoding for wide/multi-column keys.
func fingerprintRow(t *table.Table, cols []int, r int, seed uint64) uint64 {
	h := seed ^ 0xfeedface
	for _, c := range cols {
		var cell uint64
		if t.Schema()[c].Type == table.Int64 {
			cell = hashutil.HashUint64(uint64(t.Int64At(c, r)), seed)
		} else {
			cell = hashutil.HashString64(t.StringAt(c, r), seed)
		}
		h = hashutil.Mix64(h ^ cell)
	}
	return h
}

// completeOnRows runs the master-side completion: the direct executor
// restricted to the surviving rows.
func completeOnRows(q *Query, rows []int) (*Result, error) {
	switch q.Kind {
	case KindFilter:
		return execFilter(q, q.Table, rows)
	case KindDistinct:
		return execDistinct(q, q.Table, rows)
	case KindTopN:
		return execTopN(q, q.Table, rows)
	case KindGroupByMax:
		return execGroupByMax(q, q.Table, rows)
	case KindSkyline:
		return execSkyline(q, q.Table, rows)
	default:
		return nil, fmt.Errorf("engine: no row completion for %v", q.Kind)
	}
}

func cheetahFilter(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	// Build the switch program: supported predicates run on the switch;
	// LIKE predicates are precomputed by the CWorker and shipped as bits
	// (§4.1), so the full formula is evaluable in the dataplane.
	cols := make([]int, len(q.Predicates))
	sPreds := make([]prune.Predicate, len(q.Predicates))
	for i, p := range q.Predicates {
		cols[i] = q.Table.Schema().MustIndex(p.Col)
		if p.SwitchSupported() {
			sPreds[i] = prune.Predicate{ValIdx: i, Op: p.Op, Const: p.Const}
		} else {
			sPreds[i] = prune.Predicate{ValIdx: i, Precomputed: true}
		}
	}
	var pruner prune.Pruner
	if opts.Pruner != nil {
		pruner = opts.Pruner
	} else {
		f, err := prune.NewFilter(prune.FilterConfig{Predicates: sPreds, Formula: q.Formula})
		if err != nil {
			return nil, err
		}
		pruner = f
	}
	run := &CheetahRun{PrunerName: pruner.Name()}
	vals := make([]uint64, len(q.Predicates))
	var survivors []int
	interleave(q.Table, opts.Workers, func(r int) {
		for i := range q.Predicates {
			p := q.Predicates[i]
			if p.SwitchSupported() {
				vals[i] = uint64(q.Table.Int64At(cols[i], r))
			} else if p.Eval(q.Table, cols[i], r) {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		}
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			survivors = append(survivors, r)
		}
	})
	res, err := completeOnRows(q, survivors)
	if err != nil {
		return nil, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(survivors)
	run.Stats = pruner.Stats()
	return run, nil
}

func cheetahDistinct(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner prune.Pruner
	if opts.Pruner != nil {
		pruner = opts.Pruner
	} else {
		d, err := prune.NewDistinct(prune.DefaultDistinctConfig(opts.Seed))
		if err != nil {
			return nil, err
		}
		pruner = d
	}
	cols := make([]int, len(q.DistinctCols))
	for i, c := range q.DistinctCols {
		cols[i] = q.Table.Schema().MustIndex(c)
	}
	run := &CheetahRun{PrunerName: pruner.Name()}
	vals := make([]uint64, 1)
	var survivors []int
	interleave(q.Table, opts.Workers, func(r int) {
		vals[0] = fingerprintRow(q.Table, cols, r, opts.Seed)
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			survivors = append(survivors, r)
		}
	})
	res, err := completeOnRows(q, survivors)
	if err != nil {
		return nil, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(survivors)
	run.Stats = pruner.Stats()
	return run, nil
}

func cheetahTopN(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner prune.Pruner
	if opts.Pruner != nil {
		pruner = opts.Pruner
	} else {
		// Default: the randomized matrix with the theorem configuration
		// for δ = 1e-4 at d = 4096 rows.
		r, err := prune.NewRandTopN(prune.LegacyRandTopNConfig(q.N, 1e-4, opts.Seed))
		if err != nil {
			return nil, err
		}
		pruner = r
	}
	col := q.Table.Schema().MustIndex(q.OrderCol)
	run := &CheetahRun{PrunerName: pruner.Name()}
	vals := make([]uint64, 1)
	var survivors []int
	interleave(q.Table, opts.Workers, func(r int) {
		vals[0] = uint64(q.Table.Int64At(col, r))
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			survivors = append(survivors, r)
		}
	})
	res, err := completeOnRows(q, survivors)
	if err != nil {
		return nil, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(survivors)
	run.Stats = pruner.Stats()
	return run, nil
}

func cheetahGroupByMax(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner prune.Pruner
	if opts.Pruner != nil {
		pruner = opts.Pruner
	} else {
		g, err := prune.NewGroupBy(prune.DefaultGroupByConfig(opts.Seed))
		if err != nil {
			return nil, err
		}
		pruner = g
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	run := &CheetahRun{PrunerName: pruner.Name()}
	vals := make([]uint64, 2)
	var survivors []int
	interleave(q.Table, opts.Workers, func(r int) {
		vals[0] = fingerprintRow(q.Table, []int{kc}, r, opts.Seed)
		vals[1] = uint64(q.Table.Int64At(vc, r))
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			survivors = append(survivors, r)
		}
	})
	res, err := completeOnRows(q, survivors)
	if err != nil {
		return nil, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(survivors)
	run.Stats = pruner.Stats()
	return run, nil
}

func cheetahGroupBySum(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.GroupBySum
	if opts.Pruner != nil {
		gs, ok := opts.Pruner.(*prune.GroupBySum)
		if !ok {
			return nil, fmt.Errorf("engine: group-by-sum needs a *prune.GroupBySum, got %T", opts.Pruner)
		}
		pruner = gs
	} else {
		gs, err := prune.NewGroupBySum(prune.DefaultGroupBySumConfig(opts.Seed))
		if err != nil {
			return nil, err
		}
		pruner = gs
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	run := &CheetahRun{PrunerName: pruner.Name()}
	// The master accumulates (fingerprint → partial sum); fingerprints
	// resolve back to key strings via the CWorkers' key dictionaries
	// (late materialization).
	sums := map[uint64]int64{}
	fpToKey := map[uint64]string{}
	vals := make([]uint64, 2)
	interleave(q.Table, opts.Workers, func(r int) {
		fp := fingerprintRow(q.Table, []int{kc}, r, opts.Seed)
		if _, ok := fpToKey[fp]; !ok {
			fpToKey[fp] = cellString(q.Table, kc, r)
		}
		vals[0] = fp
		vals[1] = uint64(q.Table.Int64At(vc, r))
		run.Traffic.EntriesSent++
		if d, out := pruner.ProcessEmit(vals); d == switchsim.Forward {
			run.Traffic.Forwarded++
			sums[out[0]] += int64(out[1])
		}
	})
	for _, e := range pruner.Drain() {
		run.Traffic.Forwarded++
		sums[e[0]] += int64(e[1])
	}
	res := &Result{Columns: []string{q.KeyCol, "sum(" + q.AggCol + ")"}}
	for fp, v := range sums {
		res.Rows = append(res.Rows, []string{fpToKey[fp], fmtInt(v)})
	}
	res.Sort()
	run.Result = res
	run.Traffic.MasterProcessed = len(sums)
	run.Stats = pruner.Stats()
	return run, nil
}

func cheetahHaving(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.Having
	if opts.Pruner != nil {
		h, ok := opts.Pruner.(*prune.Having)
		if !ok {
			return nil, fmt.Errorf("engine: having needs a *prune.Having, got %T", opts.Pruner)
		}
		pruner = h
	} else {
		h, err := prune.NewHaving(prune.DefaultHavingConfig(q.Threshold, opts.Seed))
		if err != nil {
			return nil, err
		}
		pruner = h
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	run := &CheetahRun{PrunerName: pruner.Name()}
	// Pass 1: stream everything through the sketch; the master collects
	// candidate key fingerprints.
	candidates := map[uint64]bool{}
	vals := make([]uint64, 2)
	interleave(q.Table, opts.Workers, func(r int) {
		fp := fingerprintRow(q.Table, []int{kc}, r, opts.Seed)
		vals[0] = fp
		vals[1] = uint64(q.Table.Int64At(vc, r))
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			candidates[fp] = true
		}
	})
	// Pass 2 (partial): workers re-stream only the candidate keys'
	// entries; the master computes exact sums and drops false positives
	// (§4.3).
	sums := map[string]int64{}
	interleave(q.Table, opts.Workers, func(r int) {
		fp := fingerprintRow(q.Table, []int{kc}, r, opts.Seed)
		if !candidates[fp] {
			return
		}
		run.Traffic.EntriesSent++
		run.Traffic.SecondPassSent++
		sums[cellString(q.Table, kc, r)] += q.Table.Int64At(vc, r)
	})
	res := &Result{Columns: []string{q.KeyCol}}
	for k, v := range sums {
		if v > q.Threshold {
			res.Rows = append(res.Rows, []string{k})
		}
	}
	res.Sort()
	run.Result = res
	run.Traffic.MasterProcessed = run.Traffic.SecondPassSent
	run.Stats = pruner.Stats()
	return run, nil
}

func cheetahJoin(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.Join
	if opts.Pruner != nil {
		j, ok := opts.Pruner.(*prune.Join)
		if !ok {
			return nil, fmt.Errorf("engine: join needs a *prune.Join, got %T", opts.Pruner)
		}
		pruner = j
	} else {
		j, err := prune.NewJoin(prune.DefaultJoinConfig(opts.Seed))
		if err != nil {
			return nil, err
		}
		pruner = j
	}
	lc := q.Table.Schema().MustIndex(q.LeftKey)
	rc := q.Right.Schema().MustIndex(q.RightKey)
	run := &CheetahRun{PrunerName: pruner.Name()}
	vals := make([]uint64, 2)
	var leftRows, rightRows []int
	if pruner.Asymmetric() {
		// §4.3's small-table optimization: stream side A once, unpruned,
		// while its filter trains; then prune side B against it.
		interleave(q.Table, opts.Workers, func(r int) {
			vals[0] = uint64(prune.SideA)
			vals[1] = fingerprintRow(q.Table, []int{lc}, r, opts.Seed)
			run.Traffic.EntriesSent++
			if pruner.Process(vals) == switchsim.Forward {
				run.Traffic.Forwarded++
				leftRows = append(leftRows, r)
			}
		})
		pruner.StartProbe()
		interleave(q.Right, opts.Workers, func(r int) {
			vals[0] = uint64(prune.SideB)
			vals[1] = fingerprintRow(q.Right, []int{rc}, r, opts.Seed)
			run.Traffic.EntriesSent++
			if pruner.Process(vals) == switchsim.Forward {
				run.Traffic.Forwarded++
				rightRows = append(rightRows, r)
			}
		})
		res, err := execJoin(q, leftRows, rightRows)
		if err != nil {
			return nil, err
		}
		run.Result = res
		run.Traffic.MasterProcessed = len(leftRows) + len(rightRows)
		run.Stats = pruner.Stats()
		return run, nil
	}
	// Pass 1: key columns of both tables build the filters (§4.3's input
	// column optimization). These packets terminate at the switch.
	interleave(q.Table, opts.Workers, func(r int) {
		vals[0] = uint64(prune.SideA)
		vals[1] = fingerprintRow(q.Table, []int{lc}, r, opts.Seed)
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
		}
	})
	interleave(q.Right, opts.Workers, func(r int) {
		vals[0] = uint64(prune.SideB)
		vals[1] = fingerprintRow(q.Right, []int{rc}, r, opts.Seed)
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
		}
	})
	// Pass 2: full entries, pruned by the other side's filter.
	pruner.StartProbe()
	interleave(q.Table, opts.Workers, func(r int) {
		vals[0] = uint64(prune.SideA)
		vals[1] = fingerprintRow(q.Table, []int{lc}, r, opts.Seed)
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			leftRows = append(leftRows, r)
		}
	})
	interleave(q.Right, opts.Workers, func(r int) {
		vals[0] = uint64(prune.SideB)
		vals[1] = fingerprintRow(q.Right, []int{rc}, r, opts.Seed)
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			rightRows = append(rightRows, r)
		}
	})
	res, err := execJoin(q, leftRows, rightRows)
	if err != nil {
		return nil, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(leftRows) + len(rightRows)
	run.Stats = pruner.Stats()
	return run, nil
}

func cheetahSkyline(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.Skyline
	if opts.Pruner != nil {
		s, ok := opts.Pruner.(*prune.Skyline)
		if !ok {
			return nil, fmt.Errorf("engine: skyline needs a *prune.Skyline, got %T", opts.Pruner)
		}
		pruner = s
	} else {
		s, err := prune.NewSkyline(prune.DefaultSkylineConfig(len(q.SkylineCols)))
		if err != nil {
			return nil, err
		}
		pruner = s
	}
	cols := make([]int, len(q.SkylineCols))
	for i, c := range q.SkylineCols {
		cols[i] = q.Table.Schema().MustIndex(c)
	}
	run := &CheetahRun{PrunerName: pruner.Name()}
	vals := make([]uint64, len(cols)+1)
	var survivors []int
	interleave(q.Table, opts.Workers, func(r int) {
		for i, c := range cols {
			vals[i] = uint64(q.Table.Int64At(c, r))
		}
		vals[len(cols)] = uint64(r)
		run.Traffic.EntriesSent++
		if pruner.Process(vals) == switchsim.Forward {
			run.Traffic.Forwarded++
			survivors = append(survivors, r)
		}
	})
	// Control-plane drain of the stored points at FIN: the entry ids
	// rode along through swaps, so the master late-materializes them.
	for _, e := range pruner.Drain() {
		run.Traffic.Forwarded++
		survivors = append(survivors, int(e[len(cols)]))
	}
	res, err := completeOnRows(q, survivors)
	if err != nil {
		return nil, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(survivors)
	run.Stats = pruner.Stats()
	return run, nil
}

// fmtInt is strconv.FormatInt(v, 10) with a shorter name for call sites
// in this file.
func fmtInt(v int64) string {
	return fmt.Sprintf("%d", v)
}
