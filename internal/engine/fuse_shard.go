package engine

// Sharded-path bindings of the fused compiler (fuse.go): each helper
// runs one shard's whole pruning pass as fused loops when the shard's
// dataplane grants direct program access and the pruner is a shipped
// concrete type, returning ok=false to keep the shard on the chunked
// batch pipeline. Traffic, Stats and the shard partials handed to the
// global combine are bit-identical to the batched shard pass (with the
// same single sanctioned deviation as the single-switch path: the
// randomized TOP N RNG stream). Failover composes unchanged — these run
// inside shardExec.run, so a pass that crossed its switch's death is
// discarded and redone exactly like a batched one.

import (
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
)

// fusable reports whether the shard may drive its program's state
// directly for a whole pass — the sharded counterpart of fuseGate.
func (se *shardExec) fusable(opts ShardedOptions) bool {
	if opts.NoFuse {
		return false
	}
	fp, ok := se.dp.(interface{ FusedProgram() switchsim.Program })
	return ok && fp.FusedProgram() == switchsim.Program(se.pruner)
}

// fusedGatherPass runs one FILTER or SKYLINE shard stream (including
// SKYLINE's control-plane drain) and returns the shard's surviving row
// ids in shard-local coordinates.
func (se *shardExec) fusedGatherPass(opts ShardedOptions) ([]int, bool) {
	if !se.fusable(opts) {
		return nil, false
	}
	q := se.q
	switch q.Kind {
	case KindFilter:
		f, isF := se.pruner.(*prune.Filter)
		if !isF {
			return nil, false
		}
		cols := make([]int, len(q.Predicates))
		for i, p := range q.Predicates {
			cols[i] = q.Table.Schema().MustIndex(p.Col)
		}
		spans := fullSpans(q.Table)
		if opts.Skip {
			spans, se.skipped = filterSpans(q, q.Table, cols)
		}
		var rows []int
		sent, fwd, ok := fusedFilterScan(q.Table, q.Predicates, cols, f, spans, &rows)
		if !ok {
			return nil, false
		}
		f.AddStats(uint64(sent), uint64(sent-fwd))
		se.traffic.EntriesSent = sent
		se.traffic.Forwarded = fwd
		se.traffic.MasterProcessed = len(rows)
		return rows, true
	case KindSkyline:
		sk, isS := se.pruner.(*prune.Skyline)
		if !isS {
			return nil, false
		}
		cols := make([]int, len(q.SkylineCols))
		for i, c := range q.SkylineCols {
			cols[i] = q.Table.Schema().MustIndex(c)
		}
		var rows []int
		sent, fwd := fusedSkylineScan(q.Table, cols, sk, opts.Workers, &rows)
		se.traffic.EntriesSent = sent
		se.traffic.Forwarded = fwd
		for _, e := range sk.Drain() {
			se.traffic.Forwarded++
			rows = append(rows, int(e[len(cols)]))
		}
		se.traffic.MasterProcessed = len(rows)
		return rows, true
	}
	return nil, false
}

// fusedDistinctPass runs one DISTINCT shard stream and returns the
// shard's first-seen unique rows with their fingerprints (the global
// combine's dedupe keys).
func (se *shardExec) fusedDistinctPass(opts ShardedOptions, cols []int) (fps []uint64, rows []int, ok bool) {
	if !se.fusable(opts) {
		return nil, nil, false
	}
	d, isD := se.pruner.(*prune.Distinct)
	if !isD {
		return nil, nil, false
	}
	seen := make(map[uint64]struct{}, 1024)
	sent, fwd := fusedDistinctScan(se.q.Table, cols, opts.Seed, d.FusedMatrix(), opts.Workers, seen, &rows)
	d.AddStats(uint64(sent), uint64(sent-fwd))
	se.traffic.EntriesSent = sent
	se.traffic.Forwarded = fwd
	se.traffic.MasterProcessed = fwd
	// The scan dedupes by fingerprint but keeps only rows; recompute the
	// fingerprints of the (few) unique rows for the cross-shard combine.
	fpr := newRowFP(se.q.Table, cols, opts.Seed)
	fps = make([]uint64, len(rows))
	for i, r := range rows {
		fps[i] = fpr.fp(r)
	}
	return fps, rows, true
}

// fusedTopNPass runs one TOP N shard stream into the shard-local N-heap.
func (se *shardExec) fusedTopNPass(opts ShardedOptions, col int) (int64Heap, bool) {
	if !se.fusable(opts) {
		return nil, false
	}
	var rnd *prune.RandTopN
	var det *prune.DetTopN
	switch p := se.pruner.(type) {
	case *prune.RandTopN:
		rnd = p
	case *prune.DetTopN:
		det = p
	default:
		return nil, false
	}
	q := se.q
	ints := q.Table.Int64Col(col)
	h := make(int64Heap, 0, q.N)
	sent, fwd := 0, 0
	scan := func(lo, hi int) {
		var s, f int
		if rnd != nil {
			s, f = fusedTopNRandSpan(ints, lo, hi, rnd, &h, q.N)
		} else {
			s, f = fusedTopNDetSpan(ints, lo, hi, opts.Workers, det, &h, q.N)
		}
		sent += s
		fwd += f
	}
	if opts.Skip && q.Table.SkipIndex() != nil {
		topNSpanScan(q.Table, col, q.N, &h, &se.skipped, scan)
	} else {
		scan(0, q.Table.NumRows())
	}
	if rnd != nil {
		rnd.AddStats(uint64(sent), uint64(sent-fwd))
	} else {
		det.AddStats(uint64(sent), uint64(sent-fwd))
	}
	se.traffic.EntriesSent = sent
	se.traffic.Forwarded = fwd
	se.traffic.MasterProcessed = len(h)
	return h, true
}

// fusedGroupByMaxPass runs one GROUP BY MAX shard stream and returns the
// shard's fingerprint-keyed partial maxima (fps in first-seen order,
// with one representative row per key).
func (se *shardExec) fusedGroupByMaxPass(opts ShardedOptions, kc, vc int) (fps []uint64, maxs []int64, reps []int, ok bool) {
	if !se.fusable(opts) {
		return nil, nil, nil, false
	}
	g, isG := se.pruner.(*prune.GroupBy)
	if !isG {
		return nil, nil, nil, false
	}
	keyIdx := make(map[uint64]int, 1024)
	sent, fwd := fusedGroupByMaxScan(se.q.Table, kc, vc, opts.Seed, g, opts.Workers, keyIdx, &maxs, &reps)
	g.AddStats(uint64(sent), uint64(sent-fwd))
	se.traffic.EntriesSent = sent
	se.traffic.Forwarded = fwd
	se.traffic.MasterProcessed = len(maxs)
	// keyIdx assigns dense first-seen indices; inverting it recovers the
	// fingerprint list in exactly the batched partial's order.
	fps = make([]uint64, len(maxs))
	for fp, i := range keyIdx {
		fps[i] = fp
	}
	return fps, maxs, reps, true
}

// fusedGroupBySumPass runs one GROUP BY SUM shard stream (including the
// end-of-stream drain) and returns the shard's partial sums and key
// dictionary.
func (se *shardExec) fusedGroupBySumPass(opts ShardedOptions, kc, vc int) (sums map[uint64]int64, fpToKey map[uint64]string, ok bool) {
	if !se.fusable(opts) {
		return nil, nil, false
	}
	gs, isGS := se.pruner.(*prune.GroupBySum)
	if !isGS {
		return nil, nil, false
	}
	sums = make(map[uint64]int64, 1024)
	fpToKey = make(map[uint64]string, 1024)
	sent, fwd := fusedGroupBySumScan(se.q.Table, kc, vc, opts.Seed, gs, opts.Workers, fpToKey, sums)
	se.traffic.EntriesSent = sent
	se.traffic.Forwarded = fwd
	for _, e := range gs.Drain() {
		se.traffic.Forwarded++
		sums[e[0]] += int64(e[1])
	}
	se.traffic.MasterProcessed = len(sums)
	return sums, fpToKey, true
}

// fusedHavingCandidates runs one HAVING first-pass shard stream through
// the shard's (threshold-tightened) sketch and returns its candidate
// fingerprints. The exact second pass is pruner-free and shared with the
// single-switch path (fusedHavingPass2).
func (se *shardExec) fusedHavingCandidates(opts ShardedOptions, kc, vc int) (map[uint64]bool, bool) {
	if !se.fusable(opts) {
		return nil, false
	}
	h, isH := se.pruner.(*prune.Having)
	if !isH {
		return nil, false
	}
	cand := make(map[uint64]bool, 1024)
	sent, fwd := fusedHavingPass1(se.q.Table, kc, vc, opts.Seed, h, opts.Workers, cand)
	h.AddStats(uint64(sent), uint64(sent-fwd))
	se.traffic.EntriesSent = sent
	se.traffic.Forwarded = fwd
	return cand, true
}

// fusedJoinPass runs one shard's whole Bloom join (build and probe
// passes over the co-located shard pair) and returns the surviving rows
// of both sides.
func (se *shardExec) fusedJoinPass(opts ShardedOptions, lc, rc int) (left, right []int, ok bool) {
	if !se.fusable(opts) {
		return nil, nil, false
	}
	j, isJ := se.pruner.(*prune.Join)
	if !isJ || j.Phase() != prune.PhaseBuild {
		return nil, nil, false
	}
	q := se.q
	leftSpans := fullSpans(q.Table)
	rightSpans := fullSpans(q.Right)
	if opts.Skip {
		rightSpans, se.skipped = joinRightSpans(q.Table, lc, q.Right, rc)
	}
	fa, fb := j.FusedFilters()
	sent, fwd, pruned := 0, 0, 0
	if j.Asymmetric() {
		s, f := fusedJoinBuild(q.Table, lc, opts.Seed, fa, leftSpans, &left)
		sent += s
		fwd += f
		j.StartProbe()
		s, f = fusedJoinProbe(q.Right, rc, opts.Seed, fa, rightSpans, &right)
		sent += s
		fwd += f
		pruned += s - f
	} else {
		s, _ := fusedJoinBuild(q.Table, lc, opts.Seed, fa, leftSpans, nil)
		sent += s
		pruned += s
		s, _ = fusedJoinBuild(q.Right, rc, opts.Seed, fb, rightSpans, nil)
		sent += s
		pruned += s
		j.StartProbe()
		s, f := fusedJoinProbe(q.Table, lc, opts.Seed, fb, leftSpans, &left)
		sent += s
		fwd += f
		pruned += s - f
		s, f = fusedJoinProbe(q.Right, rc, opts.Seed, fa, rightSpans, &right)
		sent += s
		fwd += f
		pruned += s - f
	}
	j.AddStats(uint64(sent), uint64(pruned))
	se.traffic.EntriesSent = sent
	se.traffic.Forwarded = fwd
	return left, right, true
}
