package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func checkSorted(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: index %d: %q vs %q", name, i, got[i], want[i])
		}
	}
}

func TestRadixSortStringsMatchesSortStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string]func(n int) []string{
		"random": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				b := make([]byte, rng.Intn(20))
				for j := range b {
					b[j] = byte(rng.Intn(256))
				}
				out[i] = string(b)
			}
			return out
		},
		"shared-prefix": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = fmt.Sprintf("agent/%06d (Cheetah; rv:%d)", rng.Intn(n), i%7)
			}
			return out
		},
		"numeric": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = fmt.Sprintf("%d", rng.Int63n(1<<40))
			}
			return out
		},
		"duplicates": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = fmt.Sprintf("key-%02d", rng.Intn(10))
			}
			return out
		},
		"prefix-of-each-other": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = "aaaaaaaaaa"[:rng.Intn(11)]
			}
			return out
		},
	}
	for name, gen := range cases {
		for _, n := range []int{0, 1, 5, 47, 48, 500, 5000} {
			in := gen(n)
			want := append([]string(nil), in...)
			sort.Strings(want)
			got := append([]string(nil), in...)
			radixSortStrings(got)
			checkSorted(t, fmt.Sprintf("%s/%d", name, n), got, want)
		}
	}
}

func TestLexRowsMatchesResultSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := make([][]string, 300)
	for i := range rows {
		row := make([]string, 3)
		for c := range row {
			row[c] = fmt.Sprintf("v%02d", rng.Intn(12))
		}
		rows[i] = row
	}
	viaResult := &Result{Columns: []string{"a", "b", "c"}}
	for _, r := range rows {
		viaResult.Rows = append(viaResult.Rows, append([]string(nil), r...))
	}
	viaResult.Sort()
	viaLex := make([][]string, len(rows))
	copy(viaLex, rows)
	sort.Sort(lexRows(viaLex))
	for i := range viaLex {
		for c := range viaLex[i] {
			if viaLex[i][c] != viaResult.Rows[i][c] {
				t.Fatalf("row %d col %d: %q vs %q", i, c, viaLex[i][c], viaResult.Rows[i][c])
			}
		}
	}
}
