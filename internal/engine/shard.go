package engine

// This file implements the multi-switch scatter/gather execution path:
// the table is sharded across N switches (the paper's deployment shape,
// where each rack's ToR switch prunes its own workers' streams), each
// shard runs the batched pruning pipeline concurrently on its own
// switch program, and the master performs a two-level merge — shard-
// local partials first (fingerprint dedupe, TOP N heaps, aggregate
// maps), then a global combine — that reproduces ExecDirect's result
// exactly for every query kind.
//
// Correctness per kind under arbitrary sharding:
//
//   - FILTER / SKYLINE: each switch forwards a superset of its shard's
//     matching/non-dominated rows; the master gathers survivors and
//     re-runs the exact completion over the union. skyline(S) =
//     skyline(T) whenever skyline(T) ⊆ S ⊆ T.
//   - TOP N: every global top-N value is in its shard's local top N, so
//     per-shard N-heaps followed by a tightened global N-heap re-check
//     lose nothing.
//   - DISTINCT / GROUP BY: partials merge by the worker-computed
//     fingerprint, which is seed-consistent across shards; merging is
//     dedupe / max / sum respectively.
//   - HAVING: a key with global sum S > T has some shard with local sum
//     ≥ ⌈S/k⌉ > ⌊T/k⌋, so per-shard sketches thresholded at ⌊T/k⌋
//     surface every true positive; the global second pass re-computes
//     exact sums and drops the extra false positives (the same
//     guarantee shape as §4.3's partial second pass).
//   - JOIN: the executor hash-shards both tables on the join keys, so
//     matching keys are co-located and per-switch Bloom joins compose
//     by concatenation.

import (
	"fmt"

	"strconv"
	"sync"
	"time"

	"cheetah/internal/obs"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// ShardStrategy selects how ExecSharded splits the table across
// switches.
type ShardStrategy uint8

const (
	// ShardAuto hash-shards JOIN inputs on their keys (required for
	// co-location) and splits everything else contiguously — the
	// cheapest correct default.
	ShardAuto ShardStrategy = iota
	// ShardContiguous splits into contiguous row ranges (zero-copy
	// views), like assigning Spark partitions to racks in file order.
	ShardContiguous
	// ShardHash hash-shards on the query's key column (DISTINCT's first
	// column, GROUP BY/HAVING's key, TOP N's order column, FILTER's
	// first predicate column, SKYLINE's first dimension).
	ShardHash
	// ShardRange range-shards on the query's key column (Int64 only).
	ShardRange
)

// String renders the strategy.
func (s ShardStrategy) String() string {
	switch s {
	case ShardContiguous:
		return "contiguous"
	case ShardHash:
		return "hash"
	case ShardRange:
		return "range"
	default:
		return "auto"
	}
}

// ShardedOptions configures the multi-switch scatter/gather path.
type ShardedOptions struct {
	// Shards is the switch count; ≤ 0 selects 1.
	Shards int
	// Workers is the CWorker (partition) count per shard.
	Workers int
	// Seed drives fingerprinting and randomized pruner defaults. All
	// shards share it, so fingerprints agree at the global combine.
	Seed uint64
	// Pruners, when non-nil, supplies one program per shard (len must
	// equal Shards) — the planner's per-switch sizing. Defaults follow
	// the batched path's per-kind configurations, with HAVING's sketch
	// threshold tightened to ⌊threshold/Shards⌋.
	Pruners []prune.Pruner
	// Flows, when non-nil, routes shard i's batches through Flows[i] (a
	// flow-scoped handle on shard i's shared pipeline) instead of
	// invoking the shard's pruner directly. Requires Pruners: control-
	// plane operations still address the programs directly.
	Flows []BatchDataplane
	// Strategy selects the sharding scheme; see ShardAuto.
	Strategy ShardStrategy
	// Failover, when non-nil, is consulted after a shard's switch dies
	// (its Flow implements HealthDataplane and reports failure): it
	// returns a fresh program and dataplane for the shard — typically a
	// new lease on a surviving switch — and the shard's whole stream is
	// redone through them, which is what keeps results §7.2-exact (state
	// a dead switch held in registers is unrecoverable, so the shard is
	// replayed from scratch, never patched). attempt counts from 1.
	// Returning an error, or exhausting maxFailoverAttempts, degrades
	// the shard to master-side execution of its own (reset) program —
	// the servers-are-the-backstop guarantee: switch loss costs
	// performance, never correctness.
	Failover func(shard, attempt int) (prune.Pruner, BatchDataplane, error)
	// Backoff, when positive, is the base delay before the first
	// failover attempt; each further attempt on the same shard doubles
	// it (capped exponential backoff — the cap is maxFailoverAttempts
	// itself). Zero retries immediately, which is what tests want.
	Backoff time.Duration
	// Skip enables storage-side block skipping on each shard (skip.go)
	// for kinds with a sound block bound (FILTER, TOP N, JOIN). Shards
	// that are contiguous views of an indexed table inherit its skip
	// index; hash/range shards are freshly materialized tables without
	// one and simply scan. Results stay bit-identical to ExecDirect.
	Skip bool
	// NoFuse opts shards out of the fused compiled loops (fuse.go) and
	// back onto the chunked batch pipeline, mirroring
	// CheetahOptions.NoFuse. Shards whose dataplane withholds direct
	// program access (chaos-armed pipelines) fall back per shard
	// automatically; Results are identical either way.
	NoFuse bool
	// Trace, when non-nil, collects one span per shard pass (plus a
	// failover span per discarded attempt and a global merge span) into
	// the query's lifecycle trace. Span recording is mutex-guarded, so
	// concurrent shard goroutines may share the trace. Tracing observes
	// only — results, traffic and stats are unchanged.
	Trace *obs.Trace
}

// ShardedRun is the outcome of a scatter/gather execution.
type ShardedRun struct {
	Result *Result
	// Traffic aggregates all switches (MasterProcessed is the global
	// combine's input size).
	Traffic Traffic
	// PerSwitch is each switch's own traffic (MasterProcessed is that
	// shard's contribution to the combine).
	PerSwitch []Traffic
	// Stats sums the shard programs' pruning statistics.
	Stats prune.Stats
	// PrunerName records the per-switch algorithm.
	PrunerName string
	// FailedOver counts switch replacements taken via Options.Failover
	// (shard streams redone on another switch).
	FailedOver int
	// Degraded counts shards that fell back to master-side execution of
	// their program after failover was exhausted or unavailable.
	Degraded int
	// Skipped sums the shards' block-skipping work (zero unless
	// Options.Skip was set and shards carried skip metadata).
	Skipped SkipStats
	// Wall is the execution's total wall time, captured once in
	// ExecSharded around the whole run (see Stopwatch) — it covers every
	// shard pass including failover redos, never a single attempt.
	Wall time.Duration
}

// UnprunedFraction is Forwarded/EntriesSent over the whole fabric.
func (s *ShardedRun) UnprunedFraction() float64 {
	if s.Traffic.EntriesSent == 0 {
		return 0
	}
	return float64(s.Traffic.Forwarded) / float64(s.Traffic.EntriesSent)
}

// shardKeyCol picks the column ShardHash/ShardRange split on.
func shardKeyCol(q *Query) (string, error) {
	switch q.Kind {
	case KindFilter:
		return q.Predicates[0].Col, nil
	case KindDistinct:
		return q.DistinctCols[0], nil
	case KindTopN:
		return q.OrderCol, nil
	case KindGroupByMax, KindGroupBySum, KindHaving:
		return q.KeyCol, nil
	case KindSkyline:
		return q.SkylineCols[0], nil
	default:
		return "", fmt.Errorf("engine: no shard key column for %v", q.Kind)
	}
}

// shardTables splits the query's input tables into k shards according to
// the strategy. For JOIN both sides are hash-sharded on their keys; any
// other strategy would break key co-location and is rejected.
func shardTables(q *Query, k int, strategy ShardStrategy) (left, right []*table.Table, err error) {
	if q.Kind == KindJoin {
		if strategy != ShardAuto && strategy != ShardHash {
			return nil, nil, fmt.Errorf("engine: sharded join requires hash sharding on the keys, not %v", strategy)
		}
		if k == 1 {
			// One shard needs no co-location: zero-copy views beat
			// rebuilding both tables' column storage.
			if left, err = q.Table.Partition(1); err != nil {
				return nil, nil, err
			}
			if right, err = q.Right.Partition(1); err != nil {
				return nil, nil, err
			}
			return left, right, nil
		}
		ls, li := q.Table.Schema(), q.Table.Schema().Index(q.LeftKey)
		rs, ri := q.Right.Schema(), q.Right.Schema().Index(q.RightKey)
		if ls[li].Type != rs[ri].Type {
			return nil, nil, fmt.Errorf("engine: sharded join needs same-typed keys, %q is %s and %q is %s",
				q.LeftKey, ls[li].Type, q.RightKey, rs[ri].Type)
		}
		if left, err = q.Table.ShardBy(q.LeftKey, k); err != nil {
			return nil, nil, err
		}
		if right, err = q.Right.ShardBy(q.RightKey, k); err != nil {
			return nil, nil, err
		}
		return left, right, nil
	}
	switch strategy {
	case ShardAuto, ShardContiguous:
		left, err = q.Table.Partition(k)
	case ShardHash:
		var col string
		if col, err = shardKeyCol(q); err == nil {
			left, err = q.Table.ShardBy(col, k)
		}
	case ShardRange:
		var col string
		if col, err = shardKeyCol(q); err == nil {
			left, err = q.Table.ShardByRange(col, k)
		}
	default:
		err = fmt.Errorf("engine: unknown shard strategy %d", uint8(strategy))
	}
	return left, nil, err
}

// defaultShardPruner builds shard s's program with the batched path's
// default configuration, tightened per shard where the merge needs it.
func defaultShardPruner(q *Query, shards int, seed uint64) (prune.Pruner, error) {
	switch q.Kind {
	case KindGroupBySum:
		return prune.NewGroupBySum(prune.DefaultGroupBySumConfig(seed))
	case KindHaving:
		return prune.NewHaving(prune.DefaultHavingConfig(q.Threshold/int64(shards), seed))
	case KindJoin:
		return prune.NewJoin(prune.DefaultJoinConfig(seed))
	case KindTopN:
		// Each shard's randomized program gets δ/k: a global top-N value
		// lives in exactly one shard, so the union bound over k
		// independent programs keeps the fabric-wide miss probability at
		// the single-switch default δ.
		return prune.NewRandTopN(prune.LegacyRandTopNConfig(q.N, 1e-4/float64(shards), seed))
	default:
		return DefaultPruner(q, seed)
	}
}

// shardPruner resolves shard s's program: the caller's when supplied
// (with a kind-specific type check where the executor needs the concrete
// interface), a tightened default otherwise.
func shardPruner(q *Query, opts ShardedOptions, s int) (prune.Pruner, error) {
	if opts.Pruners != nil {
		return opts.Pruners[s], nil
	}
	return defaultShardPruner(q, opts.Shards, opts.Seed)
}

// shardExec bundles one shard's execution context.
type shardExec struct {
	idx      int
	q        *Query // per-shard query (shard tables substituted)
	pruner   prune.Pruner
	dp       BatchDataplane
	traffic  Traffic
	skipped  SkipStats
	attempts int  // failover replacements taken
	degraded bool // fell back to master-side execution
}

// maxFailoverAttempts caps per-shard switch replacements before the
// shard degrades to master-side execution.
const maxFailoverAttempts = 3

// healthErr reports the shard dataplane's failure, when it exposes
// health at all (a master-side progDataplane never fails).
func (se *shardExec) healthErr() error {
	if h, ok := se.dp.(HealthDataplane); ok {
		return h.Err()
	}
	return nil
}

// ensureHealthy gives the shard a live dataplane before an attempt:
// while the current one reports a dead switch, the Failover hook is
// asked for a replacement (capped), and past the cap — or without a
// hook — the shard degrades to running its own program master-side.
// The program is Reset first: its register state is treated as lost
// with the switch, exactly like the real failure it models.
func (se *shardExec) ensureHealthy(opts ShardedOptions) {
	for se.healthErr() != nil {
		if opts.Failover == nil || se.attempts >= maxFailoverAttempts {
			se.pruner.Reset()
			se.dp = progDataplane{prog: se.pruner}
			se.degraded = true
			return
		}
		se.attempts++
		if opts.Backoff > 0 {
			time.Sleep(opts.Backoff << (se.attempts - 1))
		}
		p, dp, err := opts.Failover(se.idx, se.attempts)
		if err != nil || p == nil || dp == nil {
			se.pruner.Reset()
			se.dp = progDataplane{prog: se.pruner}
			se.degraded = true
			return
		}
		se.pruner, se.dp = p, dp
	}
}

// run executes one shard's whole stream (pass) with §7.2-exact
// failover: a pass that crossed its switch's death is discarded — the
// registers backing its pruning decisions are gone, so partial results
// cannot be trusted — and redone through a replacement dataplane. pass
// must (re)initialize all per-attempt state it accumulates, including
// reading se.pruner/se.dp at call time; se.traffic is reset here. The
// loop terminates: every retry either replaces the switch (capped) or
// lands on the master-side backstop, which cannot fail.
func (se *shardExec) run(opts ShardedOptions, pass func() error) error {
	for {
		se.ensureHealthy(opts)
		se.traffic = Traffic{}
		se.skipped = SkipStats{}
		tm := opts.Trace.Begin(obs.StageShard, se.idx).Attempt(se.attempts)
		if err := pass(); err != nil {
			return err
		}
		if se.healthErr() == nil {
			note := ""
			if se.degraded {
				note = "degraded: master-side backstop"
			}
			tm.Counts(int64(se.traffic.EntriesSent), int64(se.traffic.Forwarded)).EndNote(note)
			return nil
		}
		// The pass crossed the switch's death: its wall time is recorded
		// as a failover span and the stream is redone (§7.2).
		tm.Restage(obs.StageFailover).EndNote("pass discarded: switch died mid-stream")
	}
}

// forEachShard runs f concurrently for every shard and returns the first
// error. Each shard's pruning is one switch's independent dataplane.
func forEachShard(n int, f func(s int) error) error {
	if n == 1 {
		return f(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for s := 0; s < n; s++ {
		go func(s int) {
			defer wg.Done()
			errs[s] = f(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// newShardExecs shards the tables and builds each shard's context.
func newShardExecs(q *Query, opts ShardedOptions) ([]*shardExec, error) {
	left, right, err := shardTables(q, opts.Shards, opts.Strategy)
	if err != nil {
		return nil, err
	}
	execs := make([]*shardExec, opts.Shards)
	for s := 0; s < opts.Shards; s++ {
		qs := *q
		qs.Table = left[s]
		if right != nil {
			qs.Right = right[s]
		}
		pruner, err := shardPruner(q, opts, s)
		if err != nil {
			return nil, err
		}
		se := &shardExec{idx: s, q: &qs, pruner: pruner}
		if opts.Flows != nil {
			se.dp = opts.Flows[s]
		} else {
			se.dp = progDataplane{prog: pruner}
		}
		execs[s] = se
	}
	return execs, nil
}

// gatherSurvivors copies each shard's surviving rows into one master-
// side table (late materialization of the gather step), one columnar
// sweep per shard.
func gatherSurvivors(execs []*shardExec, survivors [][]int) (*table.Table, error) {
	g, err := table.New(execs[0].q.Table.Schema())
	if err != nil {
		return nil, err
	}
	total := 0
	for _, rows := range survivors {
		total += len(rows)
	}
	g.Grow(total)
	for s, rows := range survivors {
		if err := g.AppendRowsFrom(execs[s].q.Table, rows); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ExecSharded runs the query across a fabric of Shards switches: the
// table is sharded, each shard's workers stream through their own switch
// program concurrently, and the master merges shard partials into the
// exact global result. The result is identical to ExecDirect for every
// query kind.
func ExecSharded(q *Query, opts ShardedOptions) (*ShardedRun, error) {
	clock := StartClock()
	run, err := execSharded(q, opts)
	if run != nil {
		// The engine's single wall capture: one stamp per call, covering
		// every shard pass and failover redo, never reset by a retry.
		run.Wall = clock.Elapsed()
	}
	return run, err
}

func execSharded(q *Query, opts ShardedOptions) (*ShardedRun, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Pruners != nil {
		if len(opts.Pruners) != opts.Shards {
			return nil, fmt.Errorf("engine: got %d pruners for %d shards", len(opts.Pruners), opts.Shards)
		}
		// Unlike ExecCheetah's single nil-means-default Pruner, a partial
		// slice is ambiguous (which shards wanted defaults?) — reject it
		// before a nil program reaches a shard's dataplane.
		for i, p := range opts.Pruners {
			if p == nil {
				return nil, fmt.Errorf("engine: shard %d has a nil pruner (omit Pruners entirely for defaults)", i)
			}
		}
	}
	if opts.Flows != nil {
		if len(opts.Flows) != opts.Shards {
			return nil, fmt.Errorf("engine: got %d flows for %d shards", len(opts.Flows), opts.Shards)
		}
		if opts.Pruners == nil {
			return nil, fmt.Errorf("engine: shard flows require the matching Pruners (control-plane operations address programs directly)")
		}
	}
	execs, err := newShardExecs(q, opts)
	if err != nil {
		return nil, err
	}
	traceBase := opts.Trace.Elapsed()
	var run *ShardedRun
	switch q.Kind {
	case KindFilter, KindSkyline:
		run, err = shardedGather(q, execs, opts)
	case KindDistinct:
		run, err = shardedDistinct(q, execs, opts)
	case KindTopN:
		run, err = shardedTopN(q, execs, opts)
	case KindGroupByMax:
		run, err = shardedGroupByMax(q, execs, opts)
	case KindGroupBySum:
		run, err = shardedGroupBySum(q, execs, opts)
	case KindHaving:
		run, err = shardedHaving(q, execs, opts)
	case KindJoin:
		run, err = shardedJoin(q, execs, opts)
	default:
		return nil, fmt.Errorf("engine: unknown kind %v", q.Kind)
	}
	if err != nil {
		return nil, err
	}
	run.PrunerName = execs[0].pruner.Name()
	run.PerSwitch = make([]Traffic, len(execs))
	for s, se := range execs {
		run.PerSwitch[s] = se.traffic
		run.Traffic.EntriesSent += se.traffic.EntriesSent
		run.Traffic.Forwarded += se.traffic.Forwarded
		run.Traffic.SecondPassSent += se.traffic.SecondPassSent
		st := se.pruner.Stats()
		run.Stats.Processed += st.Processed
		run.Stats.Pruned += st.Pruned
		run.FailedOver += se.attempts
		if se.degraded {
			run.Degraded++
		}
		run.Skipped.Add(se.skipped)
	}
	if tr := opts.Trace; tr != nil {
		// The global combine is everything after the last shard pass
		// finished: shard-local partials merged into the exact result.
		mergeStart := traceBase
		for _, s := range tr.Spans() {
			if (s.Stage == obs.StageShard || s.Stage == obs.StageFailover) && s.Start >= traceBase {
				if end := s.Start + s.Dur; end > mergeStart {
					mergeStart = end
				}
			}
		}
		now := tr.Elapsed()
		if now < mergeStart {
			mergeStart = now
		}
		tr.Add(obs.Span{Stage: obs.StageMerge, Switch: -1, Start: mergeStart,
			Dur: now - mergeStart, Entries: int64(run.Traffic.MasterProcessed)})
	}
	return run, nil
}

// shardSurvivors runs shard se's single-pass pruning stream and returns
// the shard-local surviving row ids, using the pruner's batched
// execution (ExecCheetah on the shard with the shard's own program).
// Kinds whose batched completion fuses away the survivor list (TOP N)
// have their own shard pass below.
func (se *shardExec) shardSurvivors(opts ShardedOptions, collect func(fwd []uint64, ids []uint64, b int)) error {
	q := se.q
	buf := getStreamBuf()
	defer putStreamBuf(buf)
	var encFor func(*table.Table) partEncoder
	var width int
	needIDs := true
	spans := fullSpans(q.Table)
	switch q.Kind {
	case KindFilter:
		cols := make([]int, len(q.Predicates))
		for i, p := range q.Predicates {
			cols[i] = q.Table.Schema().MustIndex(p.Col)
		}
		width = len(cols)
		if opts.Skip {
			// Contiguous shards are views of the indexed root and skip
			// against its (root-aligned) blocks; materialized hash/range
			// shards have no index and get the full span back.
			spans, se.skipped = filterSpans(q, q.Table, cols)
		}
		encFor = func(t *table.Table) partEncoder { return encFilter(t, q.Predicates, cols) }
	case KindSkyline:
		cols := make([]int, len(q.SkylineCols))
		for i, c := range q.SkylineCols {
			cols[i] = q.Table.Schema().MustIndex(c)
		}
		width = len(cols) + 1
		needIDs = false
		encFor = func(t *table.Table) partEncoder { return encCols64(t, cols) }
	default:
		return fmt.Errorf("engine: shardSurvivors does not handle %v", q.Kind)
	}
	return spanPass(q.Table, spans, opts.Workers, width, needIDs, buf, encFor, se.dp,
		func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
			se.traffic.EntriesSent += b.N
			src := ids
			if q.Kind == KindSkyline {
				// The entry id rides as the last header column through
				// swaps.
				src = b.Cols[width-1]
			}
			fwd := buf.compactForwarded(src, dec, b.N)
			se.traffic.Forwarded += len(fwd)
			collect(fwd, ids, b.N)
		})
}

// shardedGather serves FILTER and SKYLINE: per-shard survivor streams,
// then an exact master completion over the gathered union.
func shardedGather(q *Query, execs []*shardExec, opts ShardedOptions) (*ShardedRun, error) {
	survivors := make([][]int, len(execs))
	err := forEachShard(len(execs), func(s int) error {
		se := execs[s]
		return se.run(opts, func() error {
			if rows, ok := se.fusedGatherPass(opts); ok {
				survivors[s] = rows
				return nil
			}
			sv := survivorSet{remaining: se.q.Table.NumRows()}
			if err := se.shardSurvivors(opts, func(fwd []uint64, _ []uint64, chunkN int) {
				sv.add(fwd, chunkN)
			}); err != nil {
				return err
			}
			if q.Kind == KindSkyline {
				// Control-plane drain of the stored points at FIN.
				dr, ok := se.pruner.(prune.Drainer)
				if !ok {
					return fmt.Errorf("engine: skyline needs a draining pruner, got %T", se.pruner)
				}
				width := len(q.SkylineCols)
				for _, e := range dr.Drain() {
					se.traffic.Forwarded++
					sv.rows = append(sv.rows, int(e[width]))
				}
			}
			se.traffic.MasterProcessed = len(sv.rows)
			survivors[s] = sv.rows
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	g, err := gatherSurvivors(execs, survivors)
	if err != nil {
		return nil, err
	}
	qg := *q
	qg.Table = g
	res, err := completeOnRows(&qg, allRows(g))
	if err != nil {
		return nil, err
	}
	run := &ShardedRun{Result: res}
	run.Traffic.MasterProcessed = g.NumRows()
	return run, nil
}

// shardedDistinct dedupes per shard on the worker-computed fingerprint,
// then globally across shards.
func shardedDistinct(q *Query, execs []*shardExec, opts ShardedOptions) (*ShardedRun, error) {
	type uniq struct {
		fps  []uint64
		rows []int
	}
	partials := make([]uniq, len(execs))
	err := forEachShard(len(execs), func(s int) error {
		se := execs[s]
		qs := se.q
		cols := make([]int, len(qs.DistinctCols))
		for i, c := range qs.DistinctCols {
			cols[i] = qs.Table.Schema().MustIndex(c)
		}
		return se.run(opts, func() error {
			if fps, rows, ok := se.fusedDistinctPass(opts, cols); ok {
				partials[s] = uniq{fps: fps, rows: rows}
				return nil
			}
			buf := getStreamBuf()
			defer putStreamBuf(buf)
			seen := make(map[uint64]struct{}, 1024)
			u := &partials[s]
			*u = uniq{}
			batchPass(qs.Table.NumRows(), opts.Workers, 1, true, buf, encFingerprint(qs.Table, cols, opts.Seed), se.dp, nil,
				func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
					se.traffic.EntriesSent += b.N
					fps := b.Cols[0]
					idx := buf.compactIndices(dec, b.N)
					se.traffic.Forwarded += len(idx)
					for _, j := range idx {
						if _, ok := seen[fps[j]]; !ok {
							seen[fps[j]] = struct{}{}
							u.fps = append(u.fps, fps[j])
							u.rows = append(u.rows, int(ids[j]))
						}
					}
				})
			se.traffic.MasterProcessed = se.traffic.Forwarded
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	// Global combine: first shard to claim a fingerprint keeps it (any
	// representative row of the same value tuple renders identically).
	global := make(map[uint64]struct{}, 1024)
	cols := make([]int, len(q.DistinctCols))
	for i, c := range q.DistinctCols {
		cols[i] = q.Table.Schema().MustIndex(c)
	}
	var rows [][]string
	for s := range partials {
		t := execs[s].q.Table
		for i, fp := range partials[s].fps {
			if _, ok := global[fp]; ok {
				continue
			}
			global[fp] = struct{}{}
			row := make([]string, len(cols))
			for k, c := range cols {
				row[k] = cellString(t, c, partials[s].rows[i])
			}
			rows = append(rows, row)
		}
	}
	run := &ShardedRun{Result: sortedResult(append([]string(nil), q.DistinctCols...), rows)}
	for _, se := range execs {
		run.Traffic.MasterProcessed += se.traffic.Forwarded
	}
	return run, nil
}

// shardedTopN keeps an N-heap per shard (the shard-local threshold),
// then re-checks the union in a global N-heap at the master.
func shardedTopN(q *Query, execs []*shardExec, opts ShardedOptions) (*ShardedRun, error) {
	heaps := make([]int64Heap, len(execs))
	err := forEachShard(len(execs), func(s int) error {
		se := execs[s]
		qs := se.q
		col := qs.Table.Schema().MustIndex(qs.OrderCol)
		return se.run(opts, func() error {
			if h, ok := se.fusedTopNPass(opts, col); ok {
				heaps[s] = h
				return nil
			}
			buf := getStreamBuf()
			defer putStreamBuf(buf)
			h := make(int64Heap, 0, qs.N)
			sink := func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
				se.traffic.EntriesSent += b.N
				fwd := buf.compactForwarded(b.Cols[0], dec, b.N)
				se.traffic.Forwarded += len(fwd)
				for _, raw := range fwd {
					v := int64(raw)
					if len(h) < qs.N {
						h.push(v)
					} else if v > h[0] {
						h[0] = v
						h.fixRoot()
					}
				}
			}
			if opts.Skip && qs.Table.SkipIndex() != nil {
				// Shard-local threshold bound: the shard heap's h[0] is a
				// valid (if looser) lower bound for its own top N, which
				// is all the global merge consumes from this shard.
				topNSpanScan(qs.Table, col, qs.N, &h, &se.skipped, func(lo, hi int) {
					v, err := qs.Table.View(lo, hi)
					if err != nil {
						return
					}
					batchPass(v.NumRows(), opts.Workers, 1, false, buf, encInt64(v, col), se.dp, nil, sink)
				})
			} else {
				batchPass(qs.Table.NumRows(), opts.Workers, 1, false, buf, encInt64(qs.Table, col), se.dp, nil, sink)
			}
			se.traffic.MasterProcessed = len(h)
			heaps[s] = h
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	g := make(int64Heap, 0, q.N)
	forwarded := 0
	for _, h := range heaps {
		forwarded += len(h)
		for _, v := range h {
			if len(g) < q.N {
				g.push(v)
			} else if v > g[0] {
				g[0] = v
				g.fixRoot()
			}
		}
	}
	cells := make([]string, len(g))
	for i, v := range g {
		cells[i] = strconv.FormatInt(v, 10)
	}
	radixSortStrings(cells)
	run := &ShardedRun{Result: &Result{Columns: []string{q.OrderCol}, Rows: singleCellRows(cells)}}
	run.Traffic.MasterProcessed = forwarded
	return run, nil
}

// shardedGroupByMax merges per-shard fingerprint-keyed maxima.
func shardedGroupByMax(q *Query, execs []*shardExec, opts ShardedOptions) (*ShardedRun, error) {
	type partial struct {
		fps  []uint64
		maxs []int64
		reps []int
	}
	partials := make([]partial, len(execs))
	err := forEachShard(len(execs), func(s int) error {
		se := execs[s]
		qs := se.q
		kc := qs.Table.Schema().MustIndex(qs.KeyCol)
		vc := qs.Table.Schema().MustIndex(qs.AggCol)
		return se.run(opts, func() error {
			if fps, maxs, reps, ok := se.fusedGroupByMaxPass(opts, kc, vc); ok {
				partials[s] = partial{fps: fps, maxs: maxs, reps: reps}
				return nil
			}
			buf := getStreamBuf()
			defer putStreamBuf(buf)
			keyIdx := make(map[uint64]int, 1024)
			p := &partials[s]
			*p = partial{}
			batchPass(qs.Table.NumRows(), opts.Workers, 2, true, buf, encKeyVal(qs.Table, kc, vc, opts.Seed), se.dp, nil,
				func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
					se.traffic.EntriesSent += b.N
					fps, vals := b.Cols[0], b.Cols[1]
					idx := buf.compactIndices(dec, b.N)
					se.traffic.Forwarded += len(idx)
					for _, j := range idx {
						v := int64(vals[j])
						if i, ok := keyIdx[fps[j]]; ok {
							if v > p.maxs[i] {
								p.maxs[i] = v
							}
						} else {
							keyIdx[fps[j]] = len(p.maxs)
							p.fps = append(p.fps, fps[j])
							p.maxs = append(p.maxs, v)
							p.reps = append(p.reps, int(ids[j]))
						}
					}
				})
			se.traffic.MasterProcessed = len(p.maxs)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	type entry struct {
		max   int64
		shard int
		rep   int
	}
	global := make(map[uint64]entry, 1024)
	var order []uint64
	for s := range partials {
		p := &partials[s]
		for i, fp := range p.fps {
			if e, ok := global[fp]; ok {
				if p.maxs[i] > e.max {
					e.max = p.maxs[i]
					global[fp] = e
				}
			} else {
				global[fp] = entry{max: p.maxs[i], shard: s, rep: p.reps[i]}
				order = append(order, fp)
			}
		}
	}
	rows := make([][]string, 0, len(order))
	for _, fp := range order {
		e := global[fp]
		t := execs[e.shard].q.Table
		kc := t.Schema().MustIndex(q.KeyCol)
		rows = append(rows, []string{cellString(t, kc, e.rep), strconv.FormatInt(e.max, 10)})
	}
	run := &ShardedRun{Result: sortedResult([]string{q.KeyCol, "max(" + q.AggCol + ")"}, rows)}
	for _, se := range execs {
		run.Traffic.MasterProcessed += se.traffic.Forwarded
	}
	return run, nil
}

// shardedGroupBySum adds per-shard fingerprint-keyed partial sums
// (forwarded evictions plus the end-of-stream drains).
func shardedGroupBySum(q *Query, execs []*shardExec, opts ShardedOptions) (*ShardedRun, error) {
	type partial struct {
		sums    map[uint64]int64
		fpToKey map[uint64]string
	}
	partials := make([]partial, len(execs))
	err := forEachShard(len(execs), func(s int) error {
		se := execs[s]
		qs := se.q
		kc := qs.Table.Schema().MustIndex(qs.KeyCol)
		vc := qs.Table.Schema().MustIndex(qs.AggCol)
		return se.run(opts, func() error {
			if sums, fpToKey, ok := se.fusedGroupBySumPass(opts, kc, vc); ok {
				partials[s] = partial{sums: sums, fpToKey: fpToKey}
				return nil
			}
			gs, ok := se.pruner.(*prune.GroupBySum)
			if !ok {
				return fmt.Errorf("engine: group-by-sum needs a *prune.GroupBySum, got %T", se.pruner)
			}
			buf := getStreamBuf()
			defer putStreamBuf(buf)
			p := &partials[s]
			p.sums = make(map[uint64]int64, 1024)
			p.fpToKey = make(map[uint64]string, 1024)
			batchPass(qs.Table.NumRows(), opts.Workers, 2, true, buf, encKeyVal(qs.Table, kc, vc, opts.Seed), se.dp,
				func(b *switchsim.Batch, ids []uint64) {
					// Key dictionary before the program rewrites forwarded
					// slots with evicted aggregates.
					fps := b.Cols[0]
					for j := 0; j < b.N; j++ {
						if _, ok := p.fpToKey[fps[j]]; !ok {
							p.fpToKey[fps[j]] = cellString(qs.Table, kc, int(ids[j]))
						}
					}
				},
				func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
					se.traffic.EntriesSent += b.N
					fps, vals := b.Cols[0], b.Cols[1]
					idx := buf.compactIndices(dec, b.N)
					se.traffic.Forwarded += len(idx)
					for _, j := range idx {
						p.sums[fps[j]] += int64(vals[j])
					}
				})
			for _, e := range gs.Drain() {
				se.traffic.Forwarded++
				p.sums[e[0]] += int64(e[1])
			}
			se.traffic.MasterProcessed = len(p.sums)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	sums := make(map[uint64]int64, 1024)
	fpToKey := make(map[uint64]string, 1024)
	for s := range partials {
		for fp, v := range partials[s].sums {
			sums[fp] += v
		}
		for fp, k := range partials[s].fpToKey {
			if _, ok := fpToKey[fp]; !ok {
				fpToKey[fp] = k
			}
		}
	}
	rows := make([][]string, 0, len(sums))
	for fp, v := range sums {
		rows = append(rows, []string{fpToKey[fp], strconv.FormatInt(v, 10)})
	}
	run := &ShardedRun{Result: sortedResult([]string{q.KeyCol, "sum(" + q.AggCol + ")"}, rows)}
	run.Traffic.MasterProcessed = len(sums)
	return run, nil
}

// shardedHaving runs per-shard sketches at the tightened ⌊T/k⌋
// threshold, unions the candidate fingerprints, and re-streams every
// shard against the global candidate set for exact sums.
func shardedHaving(q *Query, execs []*shardExec, opts ShardedOptions) (*ShardedRun, error) {
	candidateSets := make([]map[uint64]bool, len(execs))
	err := forEachShard(len(execs), func(s int) error {
		se := execs[s]
		qs := se.q
		kc := qs.Table.Schema().MustIndex(qs.KeyCol)
		vc := qs.Table.Schema().MustIndex(qs.AggCol)
		return se.run(opts, func() error {
			if _, ok := se.pruner.(*prune.Having); !ok {
				return fmt.Errorf("engine: having needs a *prune.Having, got %T", se.pruner)
			}
			if cand, ok := se.fusedHavingCandidates(opts, kc, vc); ok {
				candidateSets[s] = cand
				return nil
			}
			buf := getStreamBuf()
			defer putStreamBuf(buf)
			cand := make(map[uint64]bool, 1024)
			batchPass(qs.Table.NumRows(), opts.Workers, 2, false, buf, encKeyVal(qs.Table, kc, vc, opts.Seed), se.dp, nil,
				func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
					se.traffic.EntriesSent += b.N
					fps := b.Cols[0]
					idx := buf.compactIndices(dec, b.N)
					se.traffic.Forwarded += len(idx)
					for _, j := range idx {
						cand[fps[j]] = true
					}
				})
			candidateSets[s] = cand
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	// Barrier: the second pass needs the union of every switch's
	// candidates — a key's sum may cross the global threshold only in
	// aggregate.
	candidates := make(map[uint64]bool, 1024)
	for _, cand := range candidateSets {
		for fp := range cand {
			candidates[fp] = true
		}
	}
	sumsPer := make([]map[string]int64, len(execs))
	err = forEachShard(len(execs), func(s int) error {
		se := execs[s]
		qs := se.q
		kc := qs.Table.Schema().MustIndex(qs.KeyCol)
		vc := qs.Table.Schema().MustIndex(qs.AggCol)
		if !opts.NoFuse {
			// The exact pass is pruner-free (dp is nil below), so the fused
			// loop applies regardless of the shard's dataplane.
			fpr := newRowFP(qs.Table, []int{kc}, opts.Seed)
			sums := make(map[string]int64, len(candidates))
			resent := fusedHavingPass2(qs.Table, kc, qs.Table.Int64Col(vc), &fpr, candidates, sums)
			se.traffic.EntriesSent += resent
			se.traffic.SecondPassSent += resent
			se.traffic.MasterProcessed = se.traffic.SecondPassSent
			sumsPer[s] = sums
			return nil
		}
		buf := getStreamBuf()
		defer putStreamBuf(buf)
		sums := make(map[string]int64, len(candidates))
		batchPass(qs.Table.NumRows(), opts.Workers, 2, true, buf, encKeyVal(qs.Table, kc, vc, opts.Seed), nil, nil,
			func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
				fps, vals := b.Cols[0], b.Cols[1]
				for j := 0; j < b.N; j++ {
					if !candidates[fps[j]] {
						continue
					}
					se.traffic.EntriesSent++
					se.traffic.SecondPassSent++
					sums[cellString(qs.Table, kc, int(ids[j]))] += int64(vals[j])
				}
			})
		se.traffic.MasterProcessed = se.traffic.SecondPassSent
		sumsPer[s] = sums
		return nil
	})
	if err != nil {
		return nil, err
	}
	sums := make(map[string]int64, len(candidates))
	for _, m := range sumsPer {
		for k, v := range m {
			sums[k] += v
		}
	}
	rows := make([][]string, 0, len(sums))
	for k, v := range sums {
		if v > q.Threshold {
			rows = append(rows, []string{k})
		}
	}
	run := &ShardedRun{Result: sortedResult([]string{q.KeyCol}, rows)}
	for _, se := range execs {
		run.Traffic.MasterProcessed += se.traffic.SecondPassSent
	}
	return run, nil
}

// shardedJoin runs one Bloom join per switch over the co-located shard
// pair and concatenates the per-key summaries (hash co-location means no
// key spans switches).
func shardedJoin(q *Query, execs []*shardExec, opts ShardedOptions) (*ShardedRun, error) {
	results := make([]*Result, len(execs))
	err := forEachShard(len(execs), func(s int) error {
		se := execs[s]
		qs := se.q
		lc := qs.Table.Schema().MustIndex(qs.LeftKey)
		rc := qs.Right.Schema().MustIndex(qs.RightKey)
		// The build and probe passes share the program's Bloom state, so
		// the retry unit is the whole build→probe sequence: a switch that
		// dies anywhere inside it invalidates the filter, never just one
		// pass.
		return se.run(opts, func() error {
			j, ok := se.pruner.(*prune.Join)
			if !ok {
				return fmt.Errorf("engine: join needs a *prune.Join, got %T", se.pruner)
			}
			if fl, fr, ok := se.fusedJoinPass(opts, lc, rc); ok {
				res, err := execJoin(qs, fl, fr)
				if err != nil {
					return err
				}
				se.traffic.MasterProcessed = len(fl) + len(fr)
				results[s] = res
				return nil
			}
			buf := getStreamBuf()
			defer putStreamBuf(buf)
			// Probe-side skipping per shard: exact for the same reason as
			// the single-switch path (skip.go) — a key absent from every
			// scanned right block is absent from the shard's left too.
			leftSpans := fullSpans(qs.Table)
			rightSpans := fullSpans(qs.Right)
			if opts.Skip {
				rightSpans, se.skipped = joinRightSpans(qs.Table, lc, qs.Right, rc)
			}
			encAFor := func(t *table.Table) partEncoder { return encSide(t, lc, prune.SideA, opts.Seed) }
			encBFor := func(t *table.Table) partEncoder { return encSide(t, rc, prune.SideB, opts.Seed) }
			pass := func(t *table.Table, spans []span, encFor func(*table.Table) partEncoder, sv *survivorSet) error {
				return spanPass(t, spans, opts.Workers, 2, sv != nil, buf, encFor, se.dp,
					func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
						se.traffic.EntriesSent += b.N
						if sv == nil {
							n := b.N
							for _, d := range dec[:b.N] {
								n -= int(d)
							}
							se.traffic.Forwarded += n
							return
						}
						fwd := buf.compactForwarded(ids, dec, b.N)
						se.traffic.Forwarded += len(fwd)
						sv.add(fwd, b.N)
					})
			}
			var left, right survivorSet
			var err error
			if j.Asymmetric() {
				left.remaining = qs.Table.NumRows()
				err = pass(qs.Table, leftSpans, encAFor, &left)
				j.StartProbe()
				right.remaining = qs.Right.NumRows()
				if err == nil {
					err = pass(qs.Right, rightSpans, encBFor, &right)
				}
			} else {
				err = pass(qs.Table, leftSpans, encAFor, nil)
				if err == nil {
					err = pass(qs.Right, rightSpans, encBFor, nil)
				}
				j.StartProbe()
				left.remaining = qs.Table.NumRows()
				if err == nil {
					err = pass(qs.Table, leftSpans, encAFor, &left)
				}
				right.remaining = qs.Right.NumRows()
				if err == nil {
					err = pass(qs.Right, rightSpans, encBFor, &right)
				}
			}
			if err != nil {
				return err
			}
			res, err := execJoin(qs, left.rows, right.rows)
			if err != nil {
				return err
			}
			se.traffic.MasterProcessed = len(left.rows) + len(right.rows)
			results[s] = res
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, r.Rows...)
	}
	run := &ShardedRun{Result: sortedResult([]string{q.LeftKey, "pairs"}, rows)}
	for _, se := range execs {
		run.Traffic.MasterProcessed += se.traffic.MasterProcessed
	}
	return run, nil
}
