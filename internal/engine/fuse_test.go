package engine

import (
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
)

// This file is the fused-vs-batched equivalence suite (the fused-vs-
// scalar oracle composes transitively through batch_equiv_test.go's
// batch-vs-scalar suite). The contract under test: the fused compiler
// produces bit-identical Results for every kind, and bit-identical
// Traffic and Stats for every kind except randomized TOP N, whose
// counter-indexed RNG draws different (equally sound) prune decisions
// than the scalar chain. The streaming-delta leg lives in
// internal/stream's incremental suite, which drives ExecCheetah with
// default options and therefore the fused path.

// fusedTrafficExempt marks the kinds whose Traffic/Stats may diverge
// between the fused and batched paths.
func fusedTrafficExempt(name string) bool { return name == "topn" }

func TestFusedMatchesBatchExec(t *testing.T) {
	tb := equivTable(t, 4000, 0x5eed)
	rt := equivTable(t, 1500, 0x0dd)
	for name, q := range equivQueries(tb, rt) {
		for _, workers := range []int{1, 3, 5} {
			for _, seed := range []uint64{1, 0xfeed, 42} {
				fused, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: seed})
				if err != nil {
					t.Fatalf("%s w=%d seed=%d fused: %v", name, workers, seed, err)
				}
				batch, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: seed, NoFuse: true})
				if err != nil {
					t.Fatalf("%s w=%d seed=%d batch: %v", name, workers, seed, err)
				}
				if fused.PrunerName != batch.PrunerName {
					t.Fatalf("%s w=%d seed=%d: pruner name %q vs %q", name, workers, seed, fused.PrunerName, batch.PrunerName)
				}
				if !fusedTrafficExempt(name) {
					if fused.Traffic != batch.Traffic {
						t.Fatalf("%s w=%d seed=%d: traffic diverges\nbatch: %+v\nfused: %+v", name, workers, seed, batch.Traffic, fused.Traffic)
					}
					if fused.Stats != batch.Stats {
						t.Fatalf("%s w=%d seed=%d: stats diverge\nbatch: %+v\nfused: %+v", name, workers, seed, batch.Stats, fused.Stats)
					}
				}
				if !fused.Result.Equal(batch.Result) {
					t.Fatalf("%s w=%d seed=%d: results diverge\nbatch:\n%s\nfused:\n%s", name, workers, seed, batch.Result, fused.Result)
				}
				for i := range batch.Result.Rows {
					for j := range batch.Result.Rows[i] {
						if batch.Result.Rows[i][j] != fused.Result.Rows[i][j] {
							t.Fatalf("%s w=%d seed=%d: row %d cell %d: %q vs %q",
								name, workers, seed, i, j, batch.Result.Rows[i][j], fused.Result.Rows[i][j])
						}
					}
				}
			}
		}
	}
}

func TestFusedMatchesDirect(t *testing.T) {
	tb := equivTable(t, 4000, 0x71)
	rt := equivTable(t, 1500, 0x72)
	for name, q := range equivQueries(tb, rt) {
		fused, err := ExecCheetah(q, CheetahOptions{Workers: 4, Seed: 0xfeed})
		if err != nil {
			t.Fatalf("%s fused: %v", name, err)
		}
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		if !fused.Result.Equal(direct) {
			t.Fatalf("%s: fused result wrong vs direct\ndirect:\n%s\nfused:\n%s", name, direct, fused.Result)
		}
	}
}

// TestFusedSharded runs the scatter/gather fabric with and without the
// fused per-shard kernels: identical Results everywhere, identical
// per-switch Traffic except randomized TOP N.
func TestFusedSharded(t *testing.T) {
	tb := equivTable(t, 4000, 0x81)
	rt := equivTable(t, 1500, 0x82)
	for name, q := range equivQueries(tb, rt) {
		for _, shards := range []int{2, 4} {
			fused, err := ExecSharded(q, ShardedOptions{Shards: shards, Workers: 3, Seed: 0xfeed})
			if err != nil {
				t.Fatalf("%s shards=%d fused: %v", name, shards, err)
			}
			batch, err := ExecSharded(q, ShardedOptions{Shards: shards, Workers: 3, Seed: 0xfeed, NoFuse: true})
			if err != nil {
				t.Fatalf("%s shards=%d batch: %v", name, shards, err)
			}
			if !fused.Result.Equal(batch.Result) {
				t.Fatalf("%s shards=%d: results diverge\nbatch:\n%s\nfused:\n%s", name, shards, batch.Result, fused.Result)
			}
			if !fusedTrafficExempt(name) {
				if fused.Traffic != batch.Traffic {
					t.Fatalf("%s shards=%d: traffic diverges\nbatch: %+v\nfused: %+v", name, shards, batch.Traffic, fused.Traffic)
				}
				if fused.Stats != batch.Stats {
					t.Fatalf("%s shards=%d: stats diverge\nbatch: %+v\nfused: %+v", name, shards, batch.Stats, fused.Stats)
				}
				for s := range fused.PerSwitch {
					if fused.PerSwitch[s] != batch.PerSwitch[s] {
						t.Fatalf("%s shards=%d: switch %d traffic diverges\nbatch: %+v\nfused: %+v",
							name, shards, s, batch.PerSwitch[s], fused.PerSwitch[s])
					}
				}
			}
			direct, err := ExecDirect(q)
			if err != nil {
				t.Fatal(err)
			}
			if !fused.Result.Equal(direct) {
				t.Fatalf("%s shards=%d: fused sharded result wrong vs direct", name, shards)
			}
		}
	}
}

// TestFusedSkip checks the fused loops compose with block skipping for
// the kinds with a sound block bound: same Results with and without
// Skip, and the fused skip stats match the batched path's.
func TestFusedSkip(t *testing.T) {
	tb := equivTable(t, 4096, 0x91)
	rt := equivTable(t, 1536, 0x92)
	if err := tb.BuildSkipIndex(128); err != nil {
		t.Fatal(err)
	}
	if err := rt.BuildSkipIndex(128); err != nil {
		t.Fatal(err)
	}
	queries := equivQueries(tb, rt)
	for _, name := range []string{"filter", "filter-count", "topn", "join"} {
		q := queries[name]
		skip, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: 7, Skip: true})
		if err != nil {
			t.Fatalf("%s skip: %v", name, err)
		}
		plain, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: 7})
		if err != nil {
			t.Fatalf("%s plain: %v", name, err)
		}
		if !skip.Result.Equal(plain.Result) {
			t.Fatalf("%s: skip changes fused result\nplain:\n%s\nskip:\n%s", name, plain.Result, skip.Result)
		}
		batchSkip, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: 7, Skip: true, NoFuse: true})
		if err != nil {
			t.Fatalf("%s batch skip: %v", name, err)
		}
		if !skip.Result.Equal(batchSkip.Result) {
			t.Fatalf("%s: fused+skip result diverges from batch+skip", name)
		}
		if !fusedTrafficExempt(name) && skip.Skipped != batchSkip.Skipped {
			t.Fatalf("%s: skip stats diverge: batch %+v fused %+v", name, batchSkip.Skipped, skip.Skipped)
		}
	}
}

// TestFusedCustomPrunerFilter: a caller-supplied switch-resident filter
// program fuses too (the gate accepts any directly driven concrete
// pruner), and false positives still hit the master's exact re-check.
func TestFusedCustomPrunerFilter(t *testing.T) {
	tb := equivTable(t, 3000, 0x61)
	q := &Query{
		Kind:  KindFilter,
		Table: tb,
		Predicates: []FilterPred{
			{Col: "score", Op: prune.OpGT, Const: 50_000},
			{Col: "val", Op: prune.OpLT, Const: 500},
		},
		Formula: boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}},
	}
	mk := func() prune.Pruner {
		f, err := prune.NewFilter(prune.FilterConfig{
			Predicates: []prune.Predicate{{ValIdx: 0, Op: prune.OpGT, Const: 50_000}},
			Formula:    boolexpr.Leaf{V: 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	fused, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: 5, Pruner: mk()})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: 5, Pruner: mk(), NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Traffic != batch.Traffic || fused.Stats != batch.Stats || !fused.Result.Equal(batch.Result) {
		t.Fatalf("custom-pruner filter diverges\nbatch: %+v\nfused: %+v", batch.Traffic, fused.Traffic)
	}
}

// TestFusedTopNDeterminism: the counter RNG is a pure function of (seed,
// position), so repeated fused runs are bit-identical in Result, Traffic
// and Stats.
func TestFusedTopNDeterminism(t *testing.T) {
	tb := equivTable(t, 5003, 0xa1)
	q := &Query{Kind: KindTopN, Table: tb, OrderCol: "score", N: 25}
	for _, seed := range []uint64{1, 0xfeed} {
		a, err := ExecCheetah(q, CheetahOptions{Workers: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ExecCheetah(q, CheetahOptions{Workers: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if a.Traffic != b.Traffic || a.Stats != b.Stats || !a.Result.Equal(b.Result) {
			t.Fatalf("seed=%d: fused TOP N not deterministic: %+v vs %+v", seed, a.Traffic, b.Traffic)
		}
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Result.Equal(direct) {
			t.Fatalf("seed=%d: fused TOP N result wrong vs direct", seed)
		}
	}
}

// TestFusedRandStatePosition pins the counter-stream bookkeeping: a
// standing program consumes one contiguous stream across passes
// (deltas), and Reset rewinds it with the rest of the pruner state.
func TestFusedRandStatePosition(t *testing.T) {
	p, err := prune.NewRandTopN(prune.LegacyRandTopNConfig(10, 1e-4, 99))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, pos := p.FusedRandState(100); pos != 0 {
		t.Fatalf("fresh pruner stream starts at %d, want 0", pos)
	}
	if _, _, _, pos := p.FusedRandState(7); pos != 100 {
		t.Fatalf("second pass starts at %d, want 100", pos)
	}
	_, d, base, pos := p.FusedRandState(1)
	if pos != 107 {
		t.Fatalf("third pass starts at %d, want 107", pos)
	}
	if d == 0 {
		t.Fatal("row modulus is 0")
	}
	p.Reset()
	_, d2, base2, pos2 := p.FusedRandState(1)
	if pos2 != 0 {
		t.Fatalf("stream position after Reset is %d, want 0", pos2)
	}
	if d2 != d || base2 != base {
		t.Fatalf("Reset changed the stream parameters: d %d→%d base %#x→%#x", d, d2, base, base2)
	}
}
