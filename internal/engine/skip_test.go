package engine

import (
	"fmt"
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// skipBlockRows is small relative to the 5000-row equivalence tables so
// the suites exercise many blocks, a partial tail block, and block
// boundaries that do not divide the row count.
const skipBlockRows = 256

// TestSkipEqualsDirect is the tentpole invariant: with a skip index
// attached, every skipping path — direct, batched Cheetah, sharded —
// returns results bit-identical to the no-skip ExecDirect for every
// query kind, while the bookkeeping accounts for every block.
func TestSkipEqualsDirect(t *testing.T) {
	tb := equivTable(t, 5000, 0x5eed)
	rt := equivTable(t, 1777, 0x0dd)
	if err := tb.BuildSkipIndex(skipBlockRows); err != nil {
		t.Fatal(err)
	}
	if err := rt.BuildSkipIndex(skipBlockRows); err != nil {
		t.Fatal(err)
	}
	for name, q := range equivQueries(tb, rt) {
		direct, err := ExecDirect(q)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}

		res, st, err := ExecDirectSkip(q)
		if err != nil {
			t.Fatalf("%s direct-skip: %v", name, err)
		}
		if !res.Equal(direct) {
			t.Fatalf("%s: direct-skip diverges from direct\nwant:\n%s\ngot:\n%s", name, direct, res)
		}
		assertSkipStats(t, name+" direct-skip", q, st)

		for _, seed := range []uint64{1, 0xfeed} {
			run, err := ExecCheetah(q, CheetahOptions{Workers: 3, Seed: seed, Skip: true})
			if err != nil {
				t.Fatalf("%s cheetah skip seed=%d: %v", name, seed, err)
			}
			if !run.Result.Equal(direct) {
				t.Fatalf("%s seed=%d: cheetah skip diverges from direct", name, seed)
			}
			assertSkipStats(t, fmt.Sprintf("%s cheetah seed=%d", name, seed), q, run.Skipped)

			for _, shards := range []int{2, 4} {
				srun, err := ExecSharded(q, ShardedOptions{
					Shards: shards, Workers: 3, Seed: seed, Skip: true,
				})
				if err != nil {
					t.Fatalf("%s sharded=%d skip seed=%d: %v", name, shards, seed, err)
				}
				if !srun.Result.Equal(direct) {
					t.Fatalf("%s shards=%d seed=%d: sharded skip diverges from direct", name, shards, seed)
				}
			}
		}
	}
}

// assertSkipStats checks the per-kind bookkeeping contract: eligible
// kinds (FILTER/TOP N/JOIN) see every block and skip at most what they
// saw; ineligible kinds report zero.
func assertSkipStats(t *testing.T, label string, q *Query, st SkipStats) {
	t.Helper()
	switch q.Kind {
	case KindFilter, KindTopN, KindJoin:
		if st.BlocksSeen == 0 {
			t.Fatalf("%s: eligible kind saw no blocks (%+v)", label, st)
		}
		if st.BlocksSkipped > st.BlocksSeen {
			t.Fatalf("%s: skipped more blocks than seen (%+v)", label, st)
		}
	default:
		if st != (SkipStats{}) {
			t.Fatalf("%s: ineligible kind reported skip stats %+v", label, st)
		}
	}
}

// TestSkipActuallySkips pins that the index does real work on selective
// queries: a narrow zone-map range, a tight TOP N threshold, and a join
// against a right table with disjoint key ranges must all skip blocks.
func TestSkipActuallySkips(t *testing.T) {
	// score falls monotonically so zone maps partition the value space
	// cleanly across blocks — and the first block saturates a TOP N
	// heap, letting the running threshold skip every later block.
	tb := table.MustNew(table.Schema{
		{Name: "score", Type: table.Int64},
		{Name: "key", Type: table.String},
	})
	for i := 0; i < 4096; i++ {
		if err := tb.AppendRow(int64(4096-i), fmt.Sprintf("k%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.BuildSkipIndex(skipBlockRows); err != nil {
		t.Fatal(err)
	}

	filter := &Query{
		Kind:  KindFilter,
		Table: tb,
		Predicates: []FilterPred{
			{Col: "score", Op: prune.OpLT, Const: 100},
		},
		Formula: boolexpr.Leaf{V: 0},
	}
	if err := filter.Validate(); err != nil {
		t.Fatal(err)
	}
	res, st, err := ExecDirectSkip(filter)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 99 {
		t.Fatalf("filter returned %d rows, want 99", len(res.Rows))
	}
	if st.BlocksSkipped == 0 || st.RowsSkipped == 0 {
		t.Fatalf("selective filter skipped nothing: %+v", st)
	}

	topn := &Query{Kind: KindTopN, Table: tb, OrderCol: "score", N: 10}
	_, st, err = ExecDirectSkip(topn)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksSkipped == 0 {
		t.Fatalf("top-n over sorted data skipped nothing: %+v", st)
	}

	// The build side's score range [0, 255] overlaps exactly one probe
	// block's zone-map range, so Int64 key zone maps exclude the rest.
	rt := table.MustNew(tb.Schema())
	for i := 0; i < 256; i++ {
		if err := rt.AppendRow(int64(i), fmt.Sprintf("k%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	join := &Query{Kind: KindJoin, Table: rt, Right: tb, LeftKey: "score", RightKey: "score"}
	direct, err := ExecDirect(join)
	if err != nil {
		t.Fatal(err)
	}
	jres, st, err := ExecDirectSkip(join)
	if err != nil {
		t.Fatal(err)
	}
	if !jres.Equal(direct) {
		t.Fatal("join skip diverges from direct")
	}
	if st.BlocksSkipped == 0 {
		t.Fatalf("join with disjoint right blocks skipped nothing: %+v", st)
	}
}

// TestSkipScalarRejected pins that the scalar legacy path refuses the
// Skip option instead of silently ignoring it.
func TestSkipScalarRejected(t *testing.T) {
	tb := equivTable(t, 100, 1)
	q := &Query{
		Kind: KindTopN, Table: tb, OrderCol: "score", N: 5,
	}
	if _, err := ExecCheetah(q, CheetahOptions{Workers: 1, Scalar: true, Skip: true}); err == nil {
		t.Fatal("Scalar+Skip accepted, want error")
	}
}

// TestSkipPropertyAppendInterleave is the property test: under a random
// interleaving of appends and queries (refreshing the index between
// some, not all, batches so stale-index spans stay exercised), every
// skipping path must match a from-scratch no-skip execution.
func TestSkipPropertyAppendInterleave(t *testing.T) {
	tb := table.MustNew(table.Schema{
		{Name: "name", Type: table.String},
		{Name: "score", Type: table.Int64},
		{Name: "group", Type: table.String},
		{Name: "val", Type: table.Int64},
		{Name: "dim1", Type: table.Int64},
		{Name: "dim2", Type: table.Int64},
	})
	if err := tb.BuildSkipIndex(64); err != nil {
		t.Fatal(err)
	}
	rt := equivTable(t, 333, 0x0dd)
	if err := rt.BuildSkipIndex(64); err != nil {
		t.Fatal(err)
	}

	s := uint64(0xdecade)
	next := func(mod int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := int64(s >> 33)
		if v < 0 {
			v = -v
		}
		return v % mod
	}
	appendRows := func(n int64) {
		for i := int64(0); i < n; i++ {
			name := fmt.Sprintf("user%04d", next(500))
			group := fmt.Sprintf("g%02d", next(37))
			if err := tb.AppendRow(name, next(100_000)+1, group, next(1000), next(5000)+1, next(5000)+1); err != nil {
				t.Fatal(err)
			}
		}
	}

	for round := 0; round < 30; round++ {
		// Random batch sizes straddle block boundaries: empty batches,
		// sub-block, exactly one block, and multi-block appends.
		appendRows(next(150))
		if next(3) != 0 {
			tb.RefreshSkipIndex() // sometimes stale, sometimes fresh
		}
		for name, q := range equivQueries(tb, rt) {
			direct, err := ExecDirect(q)
			if err != nil {
				t.Fatalf("round %d %s direct: %v", round, name, err)
			}
			res, _, err := ExecDirectSkip(q)
			if err != nil {
				t.Fatalf("round %d %s direct-skip: %v", round, name, err)
			}
			if !res.Equal(direct) {
				t.Fatalf("round %d %s: direct-skip diverges (rows=%d, index rows=%d)",
					round, name, tb.NumRows(), tb.SkipIndex().Rows())
			}
			run, err := ExecCheetah(q, CheetahOptions{Workers: 2, Seed: uint64(round), Skip: true})
			if err != nil {
				t.Fatalf("round %d %s cheetah skip: %v", round, name, err)
			}
			if !run.Result.Equal(direct) {
				t.Fatalf("round %d %s: cheetah skip diverges", round, name)
			}
		}
	}
}
