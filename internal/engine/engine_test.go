package engine

import (
	"strings"
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
	"cheetah/internal/table"
	"cheetah/internal/workload"
)

// ratingsTable builds Table 1(b) from the paper.
func ratingsTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "name", Type: table.String},
		{Name: "taste", Type: table.Int64},
		{Name: "texture", Type: table.Int64},
	})
	rows := []struct {
		name           string
		taste, texture int64
	}{
		{"Pizza", 7, 5}, {"Cheetos", 8, 6}, {"Jello", 9, 4}, {"Burger", 5, 7}, {"Fries", 3, 3},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.name, r.taste, r.texture); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// productsTable builds Table 1(a).
func productsTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "name", Type: table.String},
		{Name: "seller", Type: table.String},
		{Name: "price", Type: table.Int64},
	})
	rows := []struct {
		name, seller string
		price        int64
	}{
		{"Burger", "McCheetah", 4}, {"Pizza", "Papizza", 7},
		{"Fries", "McCheetah", 2}, {"Jello", "JellyFish", 5},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.name, r.seller, r.price); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"elbows", "e%s", true},
		{"elbows", "e%x", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "%", true},
		{"", "%", true},
		{"abc", "abcd", false},
		{"xaybzc", "x%y%z%", true},
		// _ matches exactly one byte.
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "___", true},
		{"abc", "__", false},
		{"abc", "____", false},
		{"abc", "_bc", true},
		{"abc", "ab_", true},
		{"", "_", false},
		// _ and % combine.
		{"abc", "_%", true},
		{"abc", "%_", true},
		{"abc", "_%_", true},
		{"a", "_%_", false},
		{"elbows", "e_b%s", true},
		{"elbows", "e_x%s", false},
		{"abcdef", "a_c%e_", true},
		{"abcdef", "a_c%f_", false},
		// % backtracking past a shorter candidate match.
		{"aXbYb", "a%b", true},
		{"mississippi", "m%iss%ppi", true},
		{"mississippi", "m%iss%ppx", false},
		{"banana", "%a_a", true},
		// Empty string and empty pattern edges.
		{"", "", true},
		{"", "%%", true},
		{"a", "", false},
		{"", "a", false},
		// Literal '%' bytes in the data never bind a pattern '%': the
		// pattern wildcard stays a wildcard.
		{"a%bc", "a%", true},
		{"%xy", "%", true},
		{"a%b", "a%b", true},
		{"100%", "100%", true},
		{"a_b", "a_b", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q,%q) = %v", c.s, c.p, got)
		}
	}
}

func TestDirectDistinctPaperExample(t *testing.T) {
	// §4.2: SELECT DISTINCT seller FROM Products →
	// (Papizza, McCheetah, JellyFish).
	q := &Query{Kind: KindDistinct, Table: productsTable(t), DistinctCols: []string{"seller"}}
	res, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("distinct sellers = %v", res.Rows)
	}
}

func TestDirectSkylinePaperExample(t *testing.T) {
	// §4.4: SKYLINE OF taste, texture → (Cheetos, Jello, Burger) —
	// coordinate tuples (8,6), (9,4), (5,7).
	q := &Query{Kind: KindSkyline, Table: ratingsTable(t), SkylineCols: []string{"taste", "texture"}}
	res, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"8\x006": false, "9\x004": false, "5\x007": false}
	if len(res.Rows) != len(want) {
		t.Fatalf("skyline = %v", res.Rows)
	}
	for _, row := range res.Rows {
		key := row[0] + "\x00" + row[1]
		if _, ok := want[key]; !ok {
			t.Fatalf("unexpected skyline point %v", row)
		}
	}
}

func TestDirectTopNPaperExample(t *testing.T) {
	// §4.3: TOP 3 ORDER BY taste → tastes 9, 8, 7.
	q := &Query{Kind: KindTopN, Table: ratingsTable(t), OrderCol: "taste", N: 3}
	res, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range res.Rows {
		got[r[0]] = true
	}
	for _, want := range []string{"9", "8", "7"} {
		if !got[want] {
			t.Fatalf("top-3 = %v", res.Rows)
		}
	}
}

func TestDirectHavingPaperExample(t *testing.T) {
	// §4.3: GROUP BY seller HAVING SUM(price) > 5 → McCheetah, Papizza.
	q := &Query{Kind: KindHaving, Table: productsTable(t), KeyCol: "seller", AggCol: "price", Threshold: 5}
	res, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "McCheetah" || res.Rows[1][0] != "Papizza" {
		t.Fatalf("having = %v", res.Rows)
	}
}

func TestDirectJoinPaperExample(t *testing.T) {
	// §4.3: Products JOIN Ratings ON name — Cheetos has no match.
	q := &Query{
		Kind: KindJoin, Table: productsTable(t), Right: ratingsTable(t),
		LeftKey: "name", RightKey: "name",
	}
	res, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("join keys = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[0] == "Cheetos" {
			t.Fatal("Cheetos must not join")
		}
		if row[1] != "1" {
			t.Fatalf("pair count for %s = %s", row[0], row[1])
		}
	}
}

func TestDirectFilterPaperExample(t *testing.T) {
	// §4.1: (taste > 5) OR (texture > 4 AND name LIKE e%s) — Cheetos,
	// Pizza, Jello qualify via taste; Burger needs the LIKE and fails
	// (no e...s); Fries fails everything. Wait: "Burger" ends with 'r';
	// LIKE e%s requires starting e and ending s. None match the LIKE, so
	// matches are taste>5 only: Pizza, Cheetos, Jello.
	q := &Query{
		Kind:  KindFilter,
		Table: ratingsTable(t),
		Predicates: []FilterPred{
			{Col: "taste", Op: prune.OpGT, Const: 5},
			{Col: "texture", Op: prune.OpGT, Const: 4},
			{Col: "name", Like: "e%s"},
		},
		Formula: boolexpr.Or{boolexpr.Leaf{V: 0}, boolexpr.And{boolexpr.Leaf{V: 1}, boolexpr.Leaf{V: 2}}},
	}
	res, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row[0]] = true
	}
	if len(names) != 3 || !names["Pizza"] || !names["Cheetos"] || !names["Jello"] {
		t.Fatalf("filter matches = %v", res.Rows)
	}
	// CountOnly collapses to a single count row.
	q.CountOnly = true
	res, err = ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "3" {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestQueryValidation(t *testing.T) {
	tbl := productsTable(t)
	bad := []*Query{
		{Kind: KindDistinct},
		{Kind: KindDistinct, Table: tbl},
		{Kind: KindDistinct, Table: tbl, DistinctCols: []string{"ghost"}},
		{Kind: KindTopN, Table: tbl, OrderCol: "price"},
		{Kind: KindTopN, Table: tbl, OrderCol: "ghost", N: 3},
		{Kind: KindGroupByMax, Table: tbl, KeyCol: "ghost", AggCol: "price"},
		{Kind: KindHaving, Table: tbl, KeyCol: "seller", AggCol: "price", Threshold: -2},
		{Kind: KindJoin, Table: tbl, LeftKey: "name", RightKey: "name"},
		{Kind: KindSkyline, Table: tbl, SkylineCols: []string{"price"}},
		{Kind: KindFilter, Table: tbl},
		{Kind: QueryKind(99), Table: tbl},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

// TestQueryValidationColumnTypes pins the type checks: String columns in
// Int64-typed roles (ORDER BY, aggregates, skyline dimensions, numeric
// comparisons) and Int64 columns under LIKE are rejected at Validate
// instead of panicking later in encode.
func TestQueryValidationColumnTypes(t *testing.T) {
	tbl := productsTable(t) // name, seller: String; price: Int64
	cases := []struct {
		label string
		q     *Query
		want  string
	}{
		{"topn string order col", &Query{Kind: KindTopN, Table: tbl, OrderCol: "seller", N: 3},
			`ORDER BY column "seller" is string`},
		{"groupby-max string agg col", &Query{Kind: KindGroupByMax, Table: tbl, KeyCol: "seller", AggCol: "name"},
			`aggregate column "name" is string`},
		{"groupby-sum string agg col", &Query{Kind: KindGroupBySum, Table: tbl, KeyCol: "seller", AggCol: "name"},
			`aggregate column "name" is string`},
		{"having string agg col", &Query{Kind: KindHaving, Table: tbl, KeyCol: "seller", AggCol: "name", Threshold: 1},
			`aggregate column "name" is string`},
		{"skyline string dim", &Query{Kind: KindSkyline, Table: tbl, SkylineCols: []string{"price", "seller"}},
			`skyline column "seller" is string`},
		{"comparison on string col", &Query{Kind: KindFilter, Table: tbl,
			Predicates: []FilterPred{{Col: "name", Op: prune.OpGT, Const: 1}},
			Formula:    boolexpr.Leaf{V: 0}},
			`comparison column "name" is string`},
		{"like on int col", &Query{Kind: KindFilter, Table: tbl,
			Predicates: []FilterPred{{Col: "price", Like: "4%"}},
			Formula:    boolexpr.Leaf{V: 0}},
			`LIKE column "price" is int64`},
	}
	for _, c := range cases {
		err := c.q.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.label)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.want)
		}
	}
	// Int64-typed columns in those roles stay accepted.
	good := []*Query{
		{Kind: KindTopN, Table: tbl, OrderCol: "price", N: 3},
		{Kind: KindGroupByMax, Table: tbl, KeyCol: "seller", AggCol: "price"},
		{Kind: KindGroupBySum, Table: tbl, KeyCol: "seller", AggCol: "price"},
		{Kind: KindHaving, Table: tbl, KeyCol: "seller", AggCol: "price", Threshold: 1},
	}
	for i, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("good query %d rejected: %v", i, err)
		}
	}
}

// TestCheetahEqualsDirect is the central reproduction check: for every
// query kind, Q(A(D)) = Q(D) — the Cheetah path on pruned data matches
// the direct execution exactly.
func TestCheetahEqualsDirect(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(20_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	rank := workload.Rankings(20_000, 2)
	if err := rank.Shuffle(3); err != nil {
		t.Fatal(err)
	}
	orders, lineitem, err := workload.TPCHQ3(2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := map[string]*Query{
		"filter": {
			Kind:  KindFilter,
			Table: rank,
			Predicates: []FilterPred{
				{Col: "avgDuration", Op: prune.OpLT, Const: 10},
			},
			Formula:   boolexpr.Leaf{V: 0},
			CountOnly: true,
		},
		"filter-with-like": {
			Kind:  KindFilter,
			Table: uv,
			Predicates: []FilterPred{
				{Col: "adRevenue", Op: prune.OpGT, Const: 9000},
				{Col: "duration", Op: prune.OpGT, Const: 300},
				{Col: "userAgent", Like: "agent/00%"},
			},
			Formula: boolexpr.Or{boolexpr.Leaf{V: 0}, boolexpr.And{boolexpr.Leaf{V: 1}, boolexpr.Leaf{V: 2}}},
		},
		"distinct": {
			Kind: KindDistinct, Table: uv, DistinctCols: []string{"userAgent"},
		},
		"topn": {
			Kind: KindTopN, Table: uv, OrderCol: "adRevenue", N: 250,
		},
		"groupby-max": {
			Kind: KindGroupByMax, Table: uv, KeyCol: "userAgent", AggCol: "adRevenue",
		},
		"groupby-sum": {
			Kind: KindGroupBySum, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue",
		},
		"having": {
			Kind: KindHaving, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue", Threshold: 1_000_000,
		},
		"join": {
			Kind: KindJoin, Table: orders, Right: lineitem,
			LeftKey: "o_orderkey", RightKey: "l_orderkey",
		},
		"skyline": {
			Kind: KindSkyline, Table: rank, SkylineCols: []string{"pageRank", "avgDuration"},
		},
	}
	for name, q := range queries {
		q := q
		t.Run(name, func(t *testing.T) {
			want, err := ExecDirect(q)
			if err != nil {
				t.Fatal(err)
			}
			run, err := ExecCheetah(q, CheetahOptions{Workers: 5, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(run.Result) {
				t.Fatalf("Cheetah result diverges from direct execution\nwant %d rows, got %d rows\nwant:\n%s\ngot:\n%s",
					len(want.Rows), len(run.Result.Rows), want, run.Result)
			}
			if run.Traffic.EntriesSent == 0 {
				t.Fatal("no traffic recorded")
			}
			if run.Traffic.Forwarded > run.Traffic.EntriesSent {
				t.Fatal("forwarded more than sent")
			}
		})
	}
}

func TestCheetahPrunesSubstantially(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(50_000, 7))
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Kind: KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}
	run, err := ExecCheetah(q, CheetahOptions{Workers: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f := run.UnprunedFraction(); f > 0.4 {
		t.Fatalf("unpruned fraction %.3f too high for Zipfian agents", f)
	}
}

func TestCheetahWorkerCountInvariance(t *testing.T) {
	// Results must be identical regardless of partitioning.
	uv, err := workload.UserVisits(workload.DefaultUserVisits(10_000, 9))
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Kind: KindGroupByMax, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue"}
	want, err := ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, 8} {
		run, err := ExecCheetah(q, CheetahOptions{Workers: workers, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(run.Result) {
			t.Fatalf("workers=%d diverges", workers)
		}
	}
}

func TestCheetahCustomPruner(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(5_000, 11))
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Kind: KindTopN, Table: uv, OrderCol: "adRevenue", N: 50}
	det, err := prune.NewDetTopN(prune.DetTopNConfig{N: 50, Thresholds: 4})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ExecCheetah(q, CheetahOptions{Workers: 2, Pruner: det})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ExecDirect(q)
	if !want.Equal(run.Result) {
		t.Fatal("deterministic pruner diverges")
	}
	if run.PrunerName != "topn-det" {
		t.Fatalf("PrunerName = %q", run.PrunerName)
	}
	// Wrong pruner type for a typed slot must error.
	qh := &Query{Kind: KindHaving, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue", Threshold: 10}
	if _, err := ExecCheetah(qh, CheetahOptions{Pruner: det}); err == nil {
		t.Fatal("mismatched pruner type accepted")
	}
}

func TestCheetahJoinAsymmetric(t *testing.T) {
	orders, lineitem, err := workload.TPCHQ3(1_000, 13)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Kind: KindJoin, Table: orders, Right: lineitem, LeftKey: "o_orderkey", RightKey: "l_orderkey"}
	j, err := prune.NewJoin(prune.JoinConfig{FilterBits: 1 << 20, Hashes: 3, Asymmetric: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = j
	// The engine's symmetric two-pass driver is incompatible with the
	// asymmetric protocol; it must reject... actually the asymmetric
	// pruner forwards the whole build pass, which the driver treats as
	// survivors of side A — still correct, only less pruning on A.
	run, err := ExecCheetah(q, CheetahOptions{Workers: 1, Pruner: j})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ExecDirect(q)
	if !want.Equal(run.Result) {
		t.Fatal("asymmetric join diverges")
	}
}

func TestResultEqualAndString(t *testing.T) {
	a := &Result{Columns: []string{"x"}, Rows: [][]string{{"b"}, {"a"}}}
	b := &Result{Columns: []string{"x"}, Rows: [][]string{{"a"}, {"b"}}}
	a.Sort()
	b.Sort()
	if !a.Equal(b) {
		t.Fatal("sorted equal results differ")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil)")
	}
	c := &Result{Columns: []string{"x"}, Rows: [][]string{{"a"}, {"c"}}}
	if a.Equal(c) {
		t.Fatal("different results equal")
	}
	if a.String() == "" {
		t.Fatal("String")
	}
}

func TestInterleaveCoversAllRows(t *testing.T) {
	tbl := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	const n = 103
	for i := 0; i < n; i++ {
		if err := tbl.AppendInt64Row(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 5, 7} {
		seen := make([]bool, n)
		count := 0
		interleave(tbl, workers, func(r int) {
			if seen[r] {
				t.Fatalf("row %d visited twice", r)
			}
			seen[r] = true
			count++
		})
		if count != n {
			t.Fatalf("workers=%d visited %d of %d", workers, count, n)
		}
	}
}
