package engine

// This file is the calibrated cost model that converts the entry counts
// measured by the two execution paths into completion times with the
// paper's bottleneck structure (§8.2): Spark is compute-bound at the
// workers; Cheetah is network-bound at the (single) CWorker pipe and
// master NIC, with the master's per-entry work hidden behind the network
// until the unpruned fraction grows (Fig. 9). Absolute constants are
// calibrated, not measured on a testbed — DESIGN.md and EXPERIMENTS.md
// document the calibration; only the *shapes* are claims.

// CostModel holds the calibration constants.
type CostModel struct {
	// SparkTaskNs is the per-entry worker task cost (ns) by query kind —
	// hash-aggregation, dedup and join tasks dominate Spark's completion
	// time (§2.1 "the major portion of query completion time is spent at
	// the tasks the workers run").
	SparkTaskNs map[QueryKind]float64
	// SparkFirstRunFactor multiplies worker task time on a cold first
	// run (indexing + JIT, §8.2.1).
	SparkFirstRunFactor float64
	// SparkMasterNs is the master-side per-entry merge cost (ns) applied
	// to the partial results workers ship.
	SparkMasterNs float64
	// SparkPackEntries is the effective number of entries per wire packet
	// for Spark's compressed, batched columnar shuffle (§7.1).
	SparkPackEntries float64

	// SerializeNsPerEntry is the CWorker serialization cost (ns); the
	// CWorker overlaps serialization with transmission and can generate
	// ~12M pps (§7.1), so it only binds above the NIC rate.
	SerializeNsPerEntry float64
	// CheetahMasterNs is the CMaster per-entry parse+process cost (ns) by
	// query kind (TOP N uses a heap and is cheap; SKYLINE is expensive —
	// §8.3).
	CheetahMasterNs map[QueryKind]float64
	// NICPacketsPerSecPer10G is the entry-packet rate of a 10G pipe
	// (~10M pps at minimum frame size, §7.1).
	NICPacketsPerSecPer10G float64
	// RuleInstallSeconds is the control-plane cost of installing a
	// query's match-action rules (<1ms, §3).
	RuleInstallSeconds float64
	// JobOverheadSeconds is the fixed scheduling/setup time of a job.
	JobOverheadSeconds float64
	// DrainPacketsPerSec is the control-plane packet-out rate for reading
	// result state off the switch — NetAccel's extra cost (§8.2.4).
	DrainPacketsPerSec float64
}

// DefaultCostModel returns constants calibrated so the paper's Figure 5,
// 6, 8 and 9 shapes reproduce (see EXPERIMENTS.md for the paper-vs-
// measured record).
func DefaultCostModel() CostModel {
	return CostModel{
		SparkTaskNs: map[QueryKind]float64{
			KindFilter:     240,  // cheap scan: Spark wins here (Fig. 5 BigData A)
			KindDistinct:   1100, // hash-set build + shuffle
			KindTopN:       700,
			KindGroupByMax: 1000,
			KindGroupBySum: 1000,
			KindHaving:     1100,
			KindJoin:       1900, // heaviest task (67% of TPC-H Q3, §8.1)
			KindSkyline:    2600, // quadratic-ish dominance checks
		},
		SparkFirstRunFactor: 2.2,
		SparkMasterNs:       1100,
		SparkPackEntries:    12,

		SerializeNsPerEntry: 55,
		CheetahMasterNs: map[QueryKind]float64{
			KindFilter:     70,
			KindDistinct:   260,
			KindTopN:       90,
			KindGroupByMax: 260,
			KindGroupBySum: 260,
			KindHaving:     260,
			KindJoin:       180,
			KindSkyline:    900,
		},
		NICPacketsPerSecPer10G: 10e6,
		RuleInstallSeconds:     0.001,
		JobOverheadSeconds:     0.35,
		DrainPacketsPerSec:     1e6,
	}
}

// Breakdown splits a completion time the way Figure 8 does.
type Breakdown struct {
	Computation float64
	Network     float64
	Other       float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Computation + b.Network + b.Other }

// CheetahTime converts a Cheetah run's traffic into completion time at
// the given NIC speed (Gbit/s). The pipe rate scales linearly with NIC
// speed; serialization binds only when it exceeds the line rate (§8.2.3:
// at 20G Cheetah improves ~2×, meaning the network is the bottleneck at
// 10G).
func (cm CostModel) CheetahTime(q QueryKind, tr Traffic, nicGbps float64) Breakdown {
	if nicGbps <= 0 {
		nicGbps = 10
	}
	lineRate := cm.NICPacketsPerSecPer10G * nicGbps / 10
	serializeRate := 1e9 / cm.SerializeNsPerEntry
	rate := lineRate
	if serializeRate < rate {
		rate = serializeRate
	}
	network := float64(tr.EntriesSent) / rate
	masterWork := float64(tr.MasterProcessed) * cm.CheetahMasterNs[q] / 1e9
	// The master overlaps with arrival; only the excess beyond the
	// transmission window shows up as extra completion time, plus the
	// smooth queueing interpolation of masterLatency.
	compute := cm.masterLatency(masterWork, network)
	return Breakdown{
		Computation: compute,
		Network:     network,
		Other:       cm.JobOverheadSeconds + cm.RuleInstallSeconds,
	}
}

// masterLatency is the blocking-master model behind Figure 9: with work w
// and arrival window T, latency = w²/(w+T). When the master keeps up
// (w ≪ T) latency ≈ w²/T — near zero; once work exceeds the window it
// approaches w - T — entries buffer up and the completion time grows
// super-linearly in the unpruned rate (§8.3).
func (cm CostModel) masterLatency(work, window float64) float64 {
	if work <= 0 {
		return 0
	}
	return work * work / (work + window)
}

// MasterBlockingLatency reproduces Figure 9's y-axis: the blocking master
// latency when `total` entries stream at 10G and `unpruned` of them reach
// a master with the per-entry cost of query kind q.
func (cm CostModel) MasterBlockingLatency(q QueryKind, total int, unpruned float64, nicGbps float64) float64 {
	if nicGbps <= 0 {
		nicGbps = 10
	}
	window := float64(total) / (cm.NICPacketsPerSecPer10G * nicGbps / 10)
	work := float64(total) * unpruned * cm.CheetahMasterNs[q] / 1e9
	return cm.masterLatency(work, window)
}

// SparkTime models the baseline: per-worker task time (cold runs pay the
// first-run factor), compressed transfer of the partial results, and the
// master merge.
func (cm CostModel) SparkTime(q QueryKind, perWorkerEntries []int, resultEntries int, firstRun bool, nicGbps float64) Breakdown {
	if nicGbps <= 0 {
		nicGbps = 10
	}
	maxPart := 0
	for _, n := range perWorkerEntries {
		if n > maxPart {
			maxPart = n
		}
	}
	task := float64(maxPart) * cm.SparkTaskNs[q] / 1e9
	if firstRun {
		task *= cm.SparkFirstRunFactor
	}
	lineRate := cm.NICPacketsPerSecPer10G * nicGbps / 10
	network := float64(resultEntries) / cm.SparkPackEntries / lineRate
	merge := float64(resultEntries) * cm.SparkMasterNs / 1e9
	return Breakdown{
		Computation: task + merge,
		Network:     network,
		Other:       cm.JobOverheadSeconds,
	}
}

// NetAccelDrainTime reproduces Figure 7's lower bound: NetAccel must read
// its result off the switch registers through the control plane before
// the query can complete, costing resultEntries/DrainPacketsPerSec; the
// pipelined Cheetah result stream has no such step (§8.2.4).
func (cm CostModel) NetAccelDrainTime(resultEntries int) float64 {
	return float64(resultEntries) / cm.DrainPacketsPerSec
}

// CheetahResultMoveTime is Figure 7's Cheetah curve: results stream to
// the master at line rate during execution, so moving them costs only
// their share of the pipe.
func (cm CostModel) CheetahResultMoveTime(resultEntries int, nicGbps float64) float64 {
	if nicGbps <= 0 {
		nicGbps = 10
	}
	return float64(resultEntries) / (cm.NICPacketsPerSecPer10G * nicGbps / 10)
}
