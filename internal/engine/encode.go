package engine

import (
	"fmt"

	"cheetah/internal/prune"
)

// This file exposes the CWorker-side entry encoding and master-side
// completion used by the engine's in-process Cheetah path, so the
// cluster layer can run the same queries over the real transport.

// EncodeEntries serializes the query's relevant columns into per-worker
// entry streams, one []uint64 per row with the global row id appended as
// the final value (the late-materialization handle). Only single-pass
// query kinds are supported here; JOIN and HAVING run their multi-pass
// protocols inside ExecCheetah.
func EncodeEntries(q *Query, workers int, seed uint64) ([][][]uint64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	n := q.Table.NumRows()
	out := make([][][]uint64, workers)
	starts := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		starts[i] = i * n / workers
	}
	encodeRow, width, err := rowEncoder(q, seed)
	if err != nil {
		return nil, err
	}
	for w := 0; w < workers; w++ {
		part := make([][]uint64, 0, starts[w+1]-starts[w])
		for r := starts[w]; r < starts[w+1]; r++ {
			vals := make([]uint64, width+1)
			encodeRow(r, vals)
			vals[width] = uint64(r)
			part = append(part, vals)
		}
		out[w] = part
	}
	return out, nil
}

// rowEncoder returns a function filling vals[0:width] for a row.
func rowEncoder(q *Query, seed uint64) (func(r int, vals []uint64), int, error) {
	switch q.Kind {
	case KindFilter:
		cols := make([]int, len(q.Predicates))
		for i, p := range q.Predicates {
			cols[i] = q.Table.Schema().MustIndex(p.Col)
		}
		preds := q.Predicates
		return func(r int, vals []uint64) {
			for i := range preds {
				if preds[i].SwitchSupported() {
					vals[i] = uint64(q.Table.Int64At(cols[i], r))
				} else if preds[i].Eval(q.Table, cols[i], r) {
					vals[i] = 1
				} else {
					vals[i] = 0
				}
			}
		}, len(preds), nil
	case KindDistinct:
		cols := make([]int, len(q.DistinctCols))
		for i, c := range q.DistinctCols {
			cols[i] = q.Table.Schema().MustIndex(c)
		}
		return func(r int, vals []uint64) {
			vals[0] = fingerprintRow(q.Table, cols, r, seed)
		}, 1, nil
	case KindTopN:
		col := q.Table.Schema().MustIndex(q.OrderCol)
		return func(r int, vals []uint64) {
			vals[0] = uint64(q.Table.Int64At(col, r))
		}, 1, nil
	case KindGroupByMax:
		kc := q.Table.Schema().MustIndex(q.KeyCol)
		vc := q.Table.Schema().MustIndex(q.AggCol)
		return func(r int, vals []uint64) {
			vals[0] = fingerprintRow(q.Table, []int{kc}, r, seed)
			vals[1] = uint64(q.Table.Int64At(vc, r))
		}, 2, nil
	case KindSkyline:
		cols := make([]int, len(q.SkylineCols))
		for i, c := range q.SkylineCols {
			cols[i] = q.Table.Schema().MustIndex(c)
		}
		return func(r int, vals []uint64) {
			for i, c := range cols {
				vals[i] = uint64(q.Table.Int64At(c, r))
			}
		}, len(cols), nil
	default:
		return nil, 0, fmt.Errorf("engine: EncodeEntries does not support %v (multi-pass kind)", q.Kind)
	}
}

// DefaultPruner builds the default switch program for a single-pass
// query kind, matching ExecCheetah's defaults.
func DefaultPruner(q *Query, seed uint64) (prune.Pruner, error) {
	switch q.Kind {
	case KindFilter:
		sPreds := make([]prune.Predicate, len(q.Predicates))
		for i, p := range q.Predicates {
			if p.SwitchSupported() {
				sPreds[i] = prune.Predicate{ValIdx: i, Op: p.Op, Const: p.Const}
			} else {
				sPreds[i] = prune.Predicate{ValIdx: i, Precomputed: true}
			}
		}
		return prune.NewFilter(prune.FilterConfig{Predicates: sPreds, Formula: q.Formula})
	case KindDistinct:
		return prune.NewDistinct(prune.DefaultDistinctConfig(seed))
	case KindTopN:
		return prune.NewRandTopN(prune.LegacyRandTopNConfig(q.N, 1e-4, seed))
	case KindGroupByMax:
		return prune.NewGroupBy(prune.DefaultGroupByConfig(seed))
	case KindSkyline:
		return prune.NewSkyline(prune.DefaultSkylineConfig(len(q.SkylineCols)))
	default:
		return nil, fmt.Errorf("engine: no default single-pass pruner for %v", q.Kind)
	}
}

// CompleteOnRows finishes a single-pass query at the master given the
// surviving global row indices (duplicates allowed — the reliability
// protocol may deliver retransmissions of pruned packets, §7.2).
func CompleteOnRows(q *Query, rows []int) (*Result, error) {
	return completeOnRows(q, rows)
}
