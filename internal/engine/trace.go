package engine

// Trace plumbing and the engine's single wall-clock capture point.
//
// Instrumentation is deliberately central: rather than sprinkling
// timestamps through the eight per-kind executions, the engine
// measures at the three places every execution funnels through —
// dataplaneFor (every batch crosses the resolved dataplane), the
// execCheetahBatch/execCheetahFused dispatch, and shardExec.run (every
// sharded pass, including failover redos). A nil trace keeps all of it
// disabled at the cost of one pointer check.

import (
	"sync/atomic"
	"time"

	"cheetah/internal/obs"
	"cheetah/internal/switchsim"
)

// Stopwatch is the engine's one wall-clock source. Every execution
// path — direct, cheetah (scalar/batched/fused) and sharded — captures
// its wall time through StartClock/Elapsed so the numbers are
// comparable across paths and cover a whole call including internal
// failover redos, never a single attempt.
type Stopwatch struct{ t0 time.Time }

// StartClock starts a monotonic stopwatch.
func StartClock() Stopwatch { return Stopwatch{t0: time.Now()} }

// Elapsed is the monotonic wall time since StartClock.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t0) }

// traceAcc accumulates dataplane time for one execution: ProcessBatch
// wall time (the switch's share of the pass) and the offset of the
// last processed batch (the stream/merge boundary). Atomics, because
// batch collection may interleave with worker goroutines.
type traceAcc struct {
	base    time.Time
	pruneNs atomic.Int64
	lastEnd atomic.Int64 // ns offset of the last ProcessBatch return
}

// traceDataplane wraps the resolved dataplane and accumulates its
// processing time. It intentionally does not forward FusedProgram —
// the fused gate probes opts.Flow before the batch path resolves a
// dataplane, so the wrapper never participates in that decision.
type traceDataplane struct {
	inner BatchDataplane
	acc   *traceAcc
}

func (d traceDataplane) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	t0 := time.Now()
	d.inner.ProcessBatch(b, decisions)
	now := time.Now()
	d.acc.pruneNs.Add(now.Sub(t0).Nanoseconds())
	d.acc.lastEnd.Store(now.Sub(d.acc.base).Nanoseconds())
}

// Err forwards health so the serving path's failover detection still
// sees the underlying lease through the wrapper.
func (d traceDataplane) Err() error {
	if h, ok := d.inner.(HealthDataplane); ok {
		return h.Err()
	}
	return nil
}

// execCheetahBatchTraced runs the batch pipeline with the trace's
// stage spans derived from one accumulator: the stream phase splits
// into encode (worker-side encode + collection minus dataplane time)
// and prune (accumulated ProcessBatch time); everything after the last
// batch is the master's merge.
func execCheetahBatchTraced(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	tr, sw := opts.Trace, opts.TraceSwitch
	base := tr.Elapsed()
	acc := &traceAcc{base: time.Now()}
	opts.traceAcc = acc
	run, err := execCheetahBatchDispatch(q, opts)
	total := tr.Elapsed() - base
	if err != nil || run == nil {
		return run, err
	}
	pruneNs := time.Duration(acc.pruneNs.Load())
	streamEnd := time.Duration(acc.lastEnd.Load())
	if streamEnd > total {
		streamEnd = total
	}
	encode := streamEnd - pruneNs
	if encode < 0 {
		encode = 0
	}
	tr.Add(obs.Span{Stage: obs.StageEncode, Switch: sw, Start: base, Dur: encode,
		Entries: int64(run.Traffic.EntriesSent)})
	tr.Add(obs.Span{Stage: obs.StagePrune, Switch: sw, Start: base + encode, Dur: pruneNs,
		Entries: int64(run.Traffic.EntriesSent), Forwarded: int64(run.Traffic.Forwarded),
		Note: run.PrunerName})
	tr.Add(obs.Span{Stage: obs.StageMerge, Switch: sw, Start: base + streamEnd, Dur: total - streamEnd,
		Entries: int64(run.Traffic.MasterProcessed)})
	return run, nil
}
