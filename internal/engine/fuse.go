package engine

// This file is the fused query compiler — the default execution layer of
// ExecCheetah. The batched pipeline (batch.go) is already columnar, but
// it still round-trips every chunk through three materialized passes
// (encode into stream buffers → BatchProgram.ProcessBatch filling a
// Decision slice → compact survivors), with an interface dispatch per
// chunk and the pruner's per-entry state transition hidden behind it.
// Here each query kind compiles to one monomorphic loop instead: the
// loop reads table columns directly, inlines the pruner's core state
// transition through the concrete type's Fused* entry points
// (prune/fused.go), and consumes survivors in place — no wire buffers,
// no Decision slice, no per-chunk dispatch.
//
// Equivalence contract. For every kind the fused loop visits entries in
// the exact arrival order of the batched/scalar paths (the round-robin
// worker interleave — see rrStarts), drives the same state transitions,
// and deposits the same Stats via AddStats, so Results, Traffic and
// Stats are bit-identical to the batched path — with two deliberate
// relaxations, both invisible in Results:
//
//   - Stateless or order-insensitive passes (FILTER's predicate sweeps,
//     JOIN's Bloom build/probe, HAVING's exact second pass) run in plain
//     row order: their totals and final state cannot depend on order.
//   - Randomized TOP N draws its row choices from a counter-indexed RNG
//     stream (prune.FusedRandState) instead of the scalar path's serial
//     chain, so its prune decisions — and hence Traffic/Stats — differ
//     from the scalar oracle, while final Results stay bit-identical
//     (the master's heap completion is exact on whatever survives).
//
// Gating. The compiler only engages when it can own the program for the
// whole run: the pruner must be one of the shipped concrete types, and
// the dataplane must grant direct access through FusedProgram() — the
// exclusive progDataplane always does; a serve.Lease does only while its
// pipeline is healthy and no fault injector is armed (chaos runs keep
// the batched per-batch kill semantics). Anything else — a third-party
// pruner, a wrong concrete type for the kind, an exotic predicate
// layout — falls back to the batched pipeline untouched.

import (
	"strconv"
	"sync"

	"cheetah/internal/cache"
	"cheetah/internal/hashutil"
	"cheetah/internal/prune"
	"cheetah/internal/sketch"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// fuseGate reports whether the execution may drive pruner's state
// directly: the resolved dataplane must expose direct program access and
// hand back the very same program the options carry.
func fuseGate(opts CheetahOptions, pruner prune.Pruner) bool {
	fp, ok := opts.dataplaneFor(pruner).(interface{ FusedProgram() switchsim.Program })
	if !ok {
		return false
	}
	return fp.FusedProgram() == switchsim.Program(pruner)
}

// rrStarts returns the worker partition boundaries of rows
// [lo, lo+n): partition w is [starts[w], starts[w+1]), identical to
// table.Partition / interleave / batchPass. The fused loops replay the
// round-robin arrival order with
//
//	for k, done := 0, 0; done < n; k++ {
//	    for w := 0; w < workers; w++ {
//	        r := starts[w] + k
//	        if r >= starts[w+1] { continue }
//	        done++
//	        ... entry r ...
//	    }
//	}
//
// — cycle k visits every still-live partition in worker order, which is
// exactly interleave's schedule.
func rrStarts(lo, n, workers int) []int {
	starts := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		starts[i] = lo + i*n/workers
	}
	return starts
}

// rowFP is fingerprintRow compiled to a direct (devirtualized) per-row
// call, with the dominant single-column cases hoisted to a raw column
// slice; it must stay bit-identical to fingerprintRow / encFingerprint.
type rowFP struct {
	strs []string
	ints []int64
	accs []colAcc
	seed uint64
	h0   uint64
}

func newRowFP(t *table.Table, cols []int, seed uint64) rowFP {
	f := rowFP{seed: seed, h0: seed ^ 0xfeedface}
	if len(cols) == 1 {
		if t.ColumnType(cols[0]) == table.String {
			f.strs = t.StringCol(cols[0])
		} else {
			f.ints = t.Int64Col(cols[0])
		}
		return f
	}
	f.accs = make([]colAcc, len(cols))
	for i, c := range cols {
		f.accs[i] = accessorFor(t, c)
	}
	return f
}

func (f *rowFP) fp(r int) uint64 {
	if f.strs != nil {
		return hashutil.Mix64(f.h0 ^ hashutil.HashString64(f.strs[r], f.seed))
	}
	if f.ints != nil {
		return hashutil.Mix64(f.h0 ^ hashutil.HashUint64(uint64(f.ints[r]), f.seed))
	}
	return fingerprintAccs(f.accs, r, f.seed)
}

// --- FILTER ------------------------------------------------------------

// fusedFilterChunk sizes the predicate bit-vector sweeps so the vector
// stays cache-resident across the per-predicate passes.
const fusedFilterChunk = 8192

// filterBitsPool recycles the per-chunk predicate bit-vectors of the
// fused FILTER scan.
var filterBitsPool = sync.Pool{New: func() any {
	s := make([]uint32, fusedFilterChunk)
	return &s
}}

// predPasses is Predicate.Eval's comparison with the value hoisted —
// used to precompute, for a LIKE wire column, which of its two values
// {0, 1} passes a non-precomputed predicate over it (a degenerate shape
// a caller-built pruner can request; kept for exact parity).
func predPasses(v int64, op prune.CmpOp, c int64) bool {
	switch op {
	case prune.OpGT:
		return v > c
	case prune.OpGE:
		return v >= c
	case prune.OpLT:
		return v < c
	case prune.OpLE:
		return v <= c
	case prune.OpEQ:
		return v == c
	case prune.OpNE:
		return v != c
	default:
		return false
	}
}

// evalIntPred sweeps one raw int64 wire column, OR-ing bit into the
// bit-vector of every passing row — Filter.ProcessBatch's per-predicate
// loop reading the table column directly.
func evalIntPred(bits []uint32, col []int64, pr *prune.Predicate, bit uint32) {
	if pr.Precomputed {
		for j, v := range col {
			if v != 0 {
				bits[j] |= bit
			}
		}
		return
	}
	c := pr.Const
	switch pr.Op {
	case prune.OpGT:
		for j, v := range col {
			if v > c {
				bits[j] |= bit
			}
		}
	case prune.OpGE:
		for j, v := range col {
			if v >= c {
				bits[j] |= bit
			}
		}
	case prune.OpLT:
		for j, v := range col {
			if v < c {
				bits[j] |= bit
			}
		}
	case prune.OpLE:
		for j, v := range col {
			if v <= c {
				bits[j] |= bit
			}
		}
	case prune.OpEQ:
		for j, v := range col {
			if v == c {
				bits[j] |= bit
			}
		}
	case prune.OpNE:
		for j, v := range col {
			if v != c {
				bits[j] |= bit
			}
		}
	}
}

// evalLikePred sweeps one LIKE wire column: the wire value is the 0/1
// match bit, so a non-precomputed predicate over it reduces to two
// precomputed booleans.
func evalLikePred(bits []uint32, col []string, like string, pr *prune.Predicate, bit uint32) {
	hitSets, missSets := true, false
	if !pr.Precomputed {
		hitSets = predPasses(1, pr.Op, pr.Const)
		missSets = predPasses(0, pr.Op, pr.Const)
	}
	for j := range col {
		if MatchLike(col[j], like) {
			if hitSets {
				bits[j] |= bit
			}
		} else if missSets {
			bits[j] |= bit
		}
	}
}

// fusedFilterScan runs the whole FILTER dataplane over spans of t as
// chunked column sweeps: each filter predicate ORs its bit into a pooled
// bit-vector straight from its wire column (raw int64, or LIKE evaluated
// on the fly), then one truth-table sweep counts — and, when rows is
// non-nil, collects — the survivors. Filtering is stateless, so plain
// row order yields the same totals as the worker interleave, and the
// result assembly sorts. ok=false means the pruner's predicate layout
// does not match the query's wire format; the caller falls back.
func fusedFilterScan(t *table.Table, preds []FilterPred, cols []int, f *prune.Filter,
	spans []span, rows *[]int) (sent, fwd int, ok bool) {
	sPreds, tt := f.FusedSpec()
	for i := range sPreds {
		if sPreds[i].ValIdx >= len(preds) {
			return 0, 0, false
		}
	}
	type wire struct {
		ints []int64
		strs []string
		like string
	}
	wires := make([]wire, len(preds))
	for i := range preds {
		if preds[i].SwitchSupported() {
			wires[i] = wire{ints: t.Int64Col(cols[i])}
		} else {
			wires[i] = wire{strs: t.StringCol(cols[i]), like: preds[i].Like}
		}
	}
	bp := filterBitsPool.Get().(*[]uint32)
	bits := *bp
	for _, sp := range spans {
		for lo := sp.lo; lo < sp.hi; lo += fusedFilterChunk {
			hi := min(lo+fusedFilterChunk, sp.hi)
			m := hi - lo
			if cap(bits) < m {
				bits = make([]uint32, m)
			}
			bits = bits[:m]
			clear(bits)
			for i := range sPreds {
				pr := &sPreds[i]
				w := &wires[pr.ValIdx]
				bit := uint32(1) << uint(i)
				if w.ints != nil {
					evalIntPred(bits, w.ints[lo:hi], pr, bit)
				} else {
					evalLikePred(bits, w.strs[lo:hi], w.like, pr, bit)
				}
			}
			sent += m
			if rows == nil {
				for _, bv := range bits {
					if tt.Lookup(bv) {
						fwd++
					}
				}
				continue
			}
			for j, bv := range bits {
				if tt.Lookup(bv) {
					fwd++
					*rows = append(*rows, lo+j)
				}
			}
		}
	}
	*bp = bits
	filterBitsPool.Put(bp)
	return sent, fwd, true
}

func fusedFilter(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	cols := make([]int, len(q.Predicates))
	for i, p := range q.Predicates {
		cols[i] = q.Table.Schema().MustIndex(p.Col)
	}
	trusted := opts.Pruner == nil
	var f *prune.Filter
	if trusted {
		p, err := DefaultPruner(q, opts.Seed)
		if err != nil {
			return nil, true, err
		}
		f = p.(*prune.Filter)
	} else {
		var ok bool
		if f, ok = opts.Pruner.(*prune.Filter); !ok || !fuseGate(opts, f) {
			return nil, false, nil
		}
	}
	run := &CheetahRun{PrunerName: f.Name()}
	spans := fullSpans(q.Table)
	if opts.Skip {
		spans, run.Skipped = filterSpans(q, q.Table, cols)
	}
	var survivors []int
	rowsPtr := &survivors
	if trusted && q.CountOnly {
		rowsPtr = nil
	}
	sent, fwd, ok := fusedFilterScan(q.Table, q.Predicates, cols, f, spans, rowsPtr)
	if !ok {
		return nil, false, nil
	}
	f.AddStats(uint64(sent), uint64(sent-fwd))
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	run.Stats = f.Stats()
	if trusted && q.CountOnly {
		run.Result = &Result{Columns: []string{"count"}, Rows: [][]string{{strconv.Itoa(fwd)}}}
		run.Traffic.MasterProcessed = fwd
		return run, true, nil
	}
	if !trusted {
		// A caller-supplied pruner may forward false positives; keep the
		// exact master completion.
		res, err := completeOnRows(q, survivors)
		if err != nil {
			return nil, true, err
		}
		run.Result = res
		run.Traffic.MasterProcessed = len(survivors)
		return run, true, nil
	}
	t := q.Table
	names := make([]string, t.NumCols())
	for i, d := range t.Schema() {
		names[i] = d.Name
	}
	rows := make([][]string, len(survivors))
	backing := make([]string, len(survivors)*t.NumCols())
	for i, r := range survivors {
		row := backing[i*t.NumCols() : (i+1)*t.NumCols() : (i+1)*t.NumCols()]
		for c := range row {
			row[c] = cellString(t, c, r)
		}
		rows[i] = row
	}
	run.Result = sortedResult(names, rows)
	run.Traffic.MasterProcessed = len(survivors)
	return run, true, nil
}

// --- DISTINCT ----------------------------------------------------------

// fusedDistinctScan streams every row's key fingerprint through the
// cache matrix in worker-interleave order and dedupes survivors on the
// fly: first-seen fingerprints land in seen/rows (the master's unique
// list), later duplicates only count as forwarded.
func fusedDistinctScan(t *table.Table, cols []int, seed uint64, m *cache.Matrix, workers int,
	seen map[uint64]struct{}, rows *[]int) (sent, fwd int) {
	n := t.NumRows()
	if n == 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = 1
	}
	starts := rrStarts(0, n, workers)
	fpr := newRowFP(t, cols, seed)
	for k, done := 0, 0; done < n; k++ {
		for w := 0; w < workers; w++ {
			r := starts[w] + k
			if r >= starts[w+1] {
				continue
			}
			done++
			fp := fpr.fp(r)
			if m.Insert(fp) {
				continue
			}
			fwd++
			if _, dup := seen[fp]; !dup {
				seen[fp] = struct{}{}
				*rows = append(*rows, r)
			}
		}
	}
	return n, fwd
}

func fusedDistinct(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	var d *prune.Distinct
	if opts.Pruner != nil {
		var ok bool
		if d, ok = opts.Pruner.(*prune.Distinct); !ok || !fuseGate(opts, d) {
			return nil, false, nil
		}
	} else {
		p, err := DefaultPruner(q, opts.Seed)
		if err != nil {
			return nil, true, err
		}
		d = p.(*prune.Distinct)
	}
	cols := make([]int, len(q.DistinctCols))
	for i, c := range q.DistinctCols {
		cols[i] = q.Table.Schema().MustIndex(c)
	}
	run := &CheetahRun{PrunerName: d.Name()}
	ds := distinctScratchPool.Get().(*distinctScratch)
	clear(ds.seen)
	ds.uniqueRows = ds.uniqueRows[:0]
	sent, fwd := fusedDistinctScan(q.Table, cols, opts.Seed, d.FusedMatrix(), opts.Workers,
		ds.seen, &ds.uniqueRows)
	d.AddStats(uint64(sent), uint64(sent-fwd))
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	var res *Result
	if len(cols) == 1 {
		cells := make([]string, len(ds.uniqueRows))
		for i, r := range ds.uniqueRows {
			cells[i] = cellString(q.Table, cols[0], r)
		}
		radixSortStrings(cells)
		res = &Result{Columns: append([]string(nil), q.DistinctCols...), Rows: singleCellRows(cells)}
	} else {
		rows := make([][]string, len(ds.uniqueRows))
		backing := make([]string, len(ds.uniqueRows)*len(cols))
		for i, r := range ds.uniqueRows {
			row := backing[i*len(cols) : (i+1)*len(cols) : (i+1)*len(cols)]
			for k, c := range cols {
				row[k] = cellString(q.Table, c, r)
			}
			rows[i] = row
		}
		res = sortedResult(append([]string(nil), q.DistinctCols...), rows)
	}
	distinctScratchPool.Put(ds)
	run.Result = res
	run.Traffic.MasterProcessed = fwd
	run.Stats = d.Stats()
	return run, true, nil
}

// --- TOP N -------------------------------------------------------------

// fusedTopNRandSpan streams rows [lo, hi) through the randomized TOP N
// matrix, feeding survivors straight into the master's N-heap. The row
// choice comes from the counter-indexed RNG stream
// (prune.FusedRandState): the per-entry draw is Mix64 of a running
// counter — no loop-carried dependency — and the prune test is the
// min-cache fast path of RandTopN.ProcessBatch with the steady-state
// splice specialized to InsertFull. Two sanctioned liberties beyond the
// batched path's: the scan runs in plain row order rather than
// worker-interleave (the row draw is value-independent, so any
// deterministic entry↔counter pairing gives the same uniform-row
// guarantee — this pruner's decisions already deviate from the scalar
// oracle by design), and the worker count does not influence the
// stream at all, so fused TOP N traffic is reproducible across worker
// counts too.
func fusedTopNRandSpan(ints []int64, lo, hi int, p *prune.RandTopN,
	h *int64Heap, topN int) (sent, fwd int) {
	n := hi - lo
	if n == 0 {
		return 0, 0
	}
	m, d, base, pos0 := p.FusedRandState(n)
	mins := m.Mins()
	g := uint64(prune.FusedRandGolden)
	acc := base + pos0*g
	vs := ints[lo:hi]
	// Hash a quad of counters ahead and touch their min-cache lines, then
	// settle the four verdicts unrolled and exactly in entry order: the
	// draws have no loop-carried dependency, so the four hashes overlap,
	// the summed loads act as software prefetches hiding the random-access
	// latency a one-at-a-time loop pays serially, and the unroll keeps the
	// row indices in registers. Decisions are identical to the sequential
	// loop — each verdict re-reads mins (now resident) after any earlier
	// splice in the quad.
	i := 0
	for ; i+4 <= len(vs); i += 4 {
		z0 := hashutil.Mix64(acc)
		z1 := hashutil.Mix64(acc + g)
		z2 := hashutil.Mix64(acc + 2*g)
		z3 := hashutil.Mix64(acc + 3*g)
		acc += 4 * g
		r0 := int(hashutil.ReduceFull(z0, d))
		r1 := int(hashutil.ReduceFull(z1, d))
		r2 := int(hashutil.ReduceFull(z2, d))
		r3 := int(hashutil.ReduceFull(z3, d))
		_ = mins[r0] + mins[r1] + mins[r2] + mins[r3]
		v0, v1, v2, v3 := vs[i], vs[i+1], vs[i+2], vs[i+3]
		// Forwarded entries splice into their (possibly still filling)
		// row — the sentinel-slot layout makes InsertFull Offer minus the
		// verdict the compact-array test already settled.
		if mn := mins[r0]; v0 > mn || mn == cache.MinSentinel {
			m.InsertFull(r0, v0)
			fwd++
			h.offer(v0, topN)
		}
		if mn := mins[r1]; v1 > mn || mn == cache.MinSentinel {
			m.InsertFull(r1, v1)
			fwd++
			h.offer(v1, topN)
		}
		if mn := mins[r2]; v2 > mn || mn == cache.MinSentinel {
			m.InsertFull(r2, v2)
			fwd++
			h.offer(v2, topN)
		}
		if mn := mins[r3]; v3 > mn || mn == cache.MinSentinel {
			m.InsertFull(r3, v3)
			fwd++
			h.offer(v3, topN)
		}
	}
	for ; i < len(vs); i++ {
		v := vs[i]
		row := int(hashutil.ReduceFull(hashutil.Mix64(acc), d))
		acc += g
		if mn := mins[row]; v > mn || mn == cache.MinSentinel {
			m.InsertFull(row, v)
			fwd++
			h.offer(v, topN)
		}
	}
	return n, fwd
}

// fusedTopNDetSpan is fusedTopNRandSpan for the deterministic threshold
// pruner: the per-entry transition is DetTopN.FusedOffer.
func fusedTopNDetSpan(ints []int64, lo, hi, workers int, p *prune.DetTopN,
	h *int64Heap, topN int) (sent, fwd int) {
	n := hi - lo
	if n == 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = 1
	}
	starts := rrStarts(lo, n, workers)
	for k, done := 0, 0; done < n; k++ {
		for w := 0; w < workers; w++ {
			r := starts[w] + k
			if r >= starts[w+1] {
				continue
			}
			done++
			v := ints[r]
			if p.FusedOffer(v) {
				continue
			}
			fwd++
			if len(*h) < topN {
				h.push(v)
			} else if v > (*h)[0] {
				(*h)[0] = v
				(*h).fixRoot()
			}
		}
	}
	return n, fwd
}

func fusedTopN(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	var rnd *prune.RandTopN
	var det *prune.DetTopN
	var pr prune.Pruner
	if opts.Pruner != nil {
		switch p := opts.Pruner.(type) {
		case *prune.RandTopN:
			rnd, pr = p, p
		case *prune.DetTopN:
			det, pr = p, p
		default:
			return nil, false, nil
		}
		if !fuseGate(opts, pr) {
			return nil, false, nil
		}
	} else {
		p, err := DefaultPruner(q, opts.Seed)
		if err != nil {
			return nil, true, err
		}
		rnd = p.(*prune.RandTopN)
		pr = rnd
	}
	col := q.Table.Schema().MustIndex(q.OrderCol)
	ints := q.Table.Int64Col(col)
	run := &CheetahRun{PrunerName: pr.Name()}
	h := make(int64Heap, 0, q.N)
	sent, fwd := 0, 0
	scan := func(lo, hi int) {
		var s, f int
		if rnd != nil {
			s, f = fusedTopNRandSpan(ints, lo, hi, rnd, &h, q.N)
		} else {
			s, f = fusedTopNDetSpan(ints, lo, hi, opts.Workers, det, &h, q.N)
		}
		sent += s
		fwd += f
	}
	if opts.Skip && q.Table.SkipIndex() != nil {
		topNSpanScan(q.Table, col, q.N, &h, &run.Skipped, scan)
	} else {
		scan(0, q.Table.NumRows())
	}
	if rnd != nil {
		rnd.AddStats(uint64(sent), uint64(sent-fwd))
	} else {
		det.AddStats(uint64(sent), uint64(sent-fwd))
	}
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	cells := make([]string, len(h))
	for i, v := range h {
		cells[i] = strconv.FormatInt(v, 10)
	}
	radixSortStrings(cells)
	run.Result = &Result{Columns: []string{q.OrderCol}, Rows: singleCellRows(cells)}
	run.Traffic.MasterProcessed = fwd
	run.Stats = pr.Stats()
	return run, true, nil
}

// --- GROUP BY MAX ------------------------------------------------------

// fusedGroupByMaxScan streams (key fingerprint, value) through the
// keyed-max matrix in worker-interleave order, folding survivors into
// the master's fingerprint-keyed maxima with one representative row per
// key for late materialization.
func fusedGroupByMaxScan(t *table.Table, kc, vc int, seed uint64, g *prune.GroupBy, workers int,
	keyIdx map[uint64]int, maxs *[]int64, reps *[]int) (sent, fwd int) {
	n := t.NumRows()
	if n == 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = 1
	}
	starts := rrStarts(0, n, workers)
	fpr := newRowFP(t, []int{kc}, seed)
	vals := t.Int64Col(vc)
	m, neg := g.FusedMatrix()
	for k, done := 0, 0; done < n; k++ {
		for w := 0; w < workers; w++ {
			r := starts[w] + k
			if r >= starts[w+1] {
				continue
			}
			done++
			fp := fpr.fp(r)
			v := vals[r]
			ov := v
			if neg {
				ov = -v
			}
			if m.Offer(fp, ov) {
				continue
			}
			fwd++
			if i, ok := keyIdx[fp]; ok {
				if v > (*maxs)[i] {
					(*maxs)[i] = v
				}
			} else {
				keyIdx[fp] = len(*maxs)
				*maxs = append(*maxs, v)
				*reps = append(*reps, r)
			}
		}
	}
	return n, fwd
}

func fusedGroupByMax(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	var g *prune.GroupBy
	if opts.Pruner != nil {
		var ok bool
		if g, ok = opts.Pruner.(*prune.GroupBy); !ok || !fuseGate(opts, g) {
			return nil, false, nil
		}
	} else {
		p, err := DefaultPruner(q, opts.Seed)
		if err != nil {
			return nil, true, err
		}
		g = p.(*prune.GroupBy)
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	run := &CheetahRun{PrunerName: g.Name()}
	keyIdx := make(map[uint64]int, 1024)
	var maxs []int64
	var reps []int
	sent, fwd := fusedGroupByMaxScan(q.Table, kc, vc, opts.Seed, g, opts.Workers, keyIdx, &maxs, &reps)
	g.AddStats(uint64(sent), uint64(sent-fwd))
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	rows := make([][]string, len(maxs))
	backing := make([]string, len(maxs)*2)
	for i := range maxs {
		row := backing[i*2 : i*2+2 : i*2+2]
		row[0] = cellString(q.Table, kc, reps[i])
		row[1] = strconv.FormatInt(maxs[i], 10)
		rows[i] = row
	}
	run.Result = sortedResult([]string{q.KeyCol, "max(" + q.AggCol + ")"}, rows)
	run.Traffic.MasterProcessed = fwd
	run.Stats = g.Stats()
	return run, true, nil
}

// --- GROUP BY SUM ------------------------------------------------------

// fusedGroupBySumScan streams (key fingerprint, value) through the
// in-switch aggregation matrix in worker-interleave order. The key
// dictionary entry is recorded before ProcessEmit, which may rewrite the
// forwarded pair with an evicted aggregate (batchGroupBySum's pre-hook).
func fusedGroupBySumScan(t *table.Table, kc, vc int, seed uint64, gs *prune.GroupBySum, workers int,
	fpToKey map[uint64]string, sums map[uint64]int64) (sent, fwd int) {
	n := t.NumRows()
	if n == 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = 1
	}
	starts := rrStarts(0, n, workers)
	fpr := newRowFP(t, []int{kc}, seed)
	vals := t.Int64Col(vc)
	var vbuf [2]uint64
	for k, done := 0, 0; done < n; k++ {
		for w := 0; w < workers; w++ {
			r := starts[w] + k
			if r >= starts[w+1] {
				continue
			}
			done++
			fp := fpr.fp(r)
			if _, ok := fpToKey[fp]; !ok {
				fpToKey[fp] = cellString(t, kc, r)
			}
			vbuf[0] = fp
			vbuf[1] = uint64(vals[r])
			if d, out := gs.ProcessEmit(vbuf[:]); d == switchsim.Forward {
				fwd++
				sums[out[0]] += int64(out[1])
			}
		}
	}
	return n, fwd
}

func fusedGroupBySum(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	var gs *prune.GroupBySum
	if opts.Pruner != nil {
		var ok bool
		if gs, ok = opts.Pruner.(*prune.GroupBySum); !ok || !fuseGate(opts, gs) {
			return nil, false, nil
		}
	} else {
		p, err := prune.NewGroupBySum(prune.DefaultGroupBySumConfig(opts.Seed))
		if err != nil {
			return nil, true, err
		}
		gs = p
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	run := &CheetahRun{PrunerName: gs.Name()}
	sums := map[uint64]int64{}
	fpToKey := map[uint64]string{}
	sent, fwd := fusedGroupBySumScan(q.Table, kc, vc, opts.Seed, gs, opts.Workers, fpToKey, sums)
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	for _, e := range gs.Drain() {
		run.Traffic.Forwarded++
		sums[e[0]] += int64(e[1])
	}
	rows := make([][]string, 0, len(sums))
	for fp, v := range sums {
		rows = append(rows, []string{fpToKey[fp], strconv.FormatInt(v, 10)})
	}
	run.Result = sortedResult([]string{q.KeyCol, "sum(" + q.AggCol + ")"}, rows)
	run.Traffic.MasterProcessed = len(sums)
	run.Stats = gs.Stats()
	return run, true, nil
}

// --- HAVING ------------------------------------------------------------

// fusedHavingPass1 streams (key fingerprint, value) through the
// Count-Min sketch in worker-interleave order, collecting candidate key
// fingerprints.
func fusedHavingPass1(t *table.Table, kc, vc int, seed uint64, h *prune.Having, workers int,
	candidates map[uint64]bool) (sent, fwd int) {
	n := t.NumRows()
	if n == 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = 1
	}
	starts := rrStarts(0, n, workers)
	fpr := newRowFP(t, []int{kc}, seed)
	vals := t.Int64Col(vc)
	for k, done := 0, 0; done < n; k++ {
		for w := 0; w < workers; w++ {
			r := starts[w] + k
			if r >= starts[w+1] {
				continue
			}
			done++
			fp := fpr.fp(r)
			if h.FusedOffer(fp, vals[r]) {
				continue
			}
			fwd++
			candidates[fp] = true
		}
	}
	return n, fwd
}

// fusedHavingPass2 is the exact partial second pass: candidate keys'
// entries re-stream and the master sums them exactly. No pruner state is
// touched, so plain row order gives identical sums and counts.
func fusedHavingPass2(t *table.Table, kc int, vals []int64, fpr *rowFP,
	candidates map[uint64]bool, sums map[string]int64) (resent int) {
	for r := 0; r < t.NumRows(); r++ {
		if !candidates[fpr.fp(r)] {
			continue
		}
		resent++
		sums[cellString(t, kc, r)] += vals[r]
	}
	return resent
}

func fusedHaving(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	var h *prune.Having
	if opts.Pruner != nil {
		var ok bool
		if h, ok = opts.Pruner.(*prune.Having); !ok || !fuseGate(opts, h) {
			return nil, false, nil
		}
	} else {
		p, err := prune.NewHaving(prune.DefaultHavingConfig(q.Threshold, opts.Seed))
		if err != nil {
			return nil, true, err
		}
		h = p
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	run := &CheetahRun{PrunerName: h.Name()}
	candidates := map[uint64]bool{}
	sent, fwd := fusedHavingPass1(q.Table, kc, vc, opts.Seed, h, opts.Workers, candidates)
	h.AddStats(uint64(sent), uint64(sent-fwd))
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	sums := map[string]int64{}
	fpr := newRowFP(q.Table, []int{kc}, opts.Seed)
	resent := fusedHavingPass2(q.Table, kc, q.Table.Int64Col(vc), &fpr, candidates, sums)
	run.Traffic.EntriesSent += resent
	run.Traffic.SecondPassSent = resent
	rows := make([][]string, 0, len(sums))
	for k, v := range sums {
		if v > q.Threshold {
			rows = append(rows, []string{k})
		}
	}
	run.Result = sortedResult([]string{q.KeyCol}, rows)
	run.Traffic.MasterProcessed = resent
	run.Stats = h.Stats()
	return run, true, nil
}

// --- JOIN --------------------------------------------------------------

// fusedJoinBuild trains mem with one side's key fingerprints. Bloom Add
// is commutative, so plain row order over the spans suffices. rows
// non-nil marks the asymmetric build: every entry forwards (and
// collects) while the filter trains.
func fusedJoinBuild(t *table.Table, kc int, seed uint64, mem sketch.Membership,
	spans []span, rows *[]int) (sent, fwd int) {
	fpr := newRowFP(t, []int{kc}, seed)
	for _, sp := range spans {
		sent += sp.hi - sp.lo
		for r := sp.lo; r < sp.hi; r++ {
			mem.Add(fpr.fp(r))
		}
	}
	if rows != nil {
		for _, sp := range spans {
			for r := sp.lo; r < sp.hi; r++ {
				*rows = append(*rows, r)
			}
		}
		fwd = sent
	}
	return sent, fwd
}

// fusedJoinProbe collects the rows of one side whose key fingerprint
// tests positive in the other side's filter. Contains does not mutate,
// so plain row order over the spans suffices.
func fusedJoinProbe(t *table.Table, kc int, seed uint64, mem sketch.Membership,
	spans []span, rows *[]int) (sent, fwd int) {
	fpr := newRowFP(t, []int{kc}, seed)
	for _, sp := range spans {
		sent += sp.hi - sp.lo
		for r := sp.lo; r < sp.hi; r++ {
			if mem.Contains(fpr.fp(r)) {
				fwd++
				*rows = append(*rows, r)
			}
		}
	}
	return sent, fwd
}

func fusedJoin(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	var j *prune.Join
	if opts.Pruner != nil {
		var ok bool
		if j, ok = opts.Pruner.(*prune.Join); !ok || !fuseGate(opts, j) {
			return nil, false, nil
		}
	} else {
		p, err := prune.NewJoin(prune.DefaultJoinConfig(opts.Seed))
		if err != nil {
			return nil, true, err
		}
		j = p
	}
	// The fused passes hard-code which filter each pass trains or probes;
	// that only matches the batched path when the pruner starts in the
	// build phase (a mid-phase standing pruner keeps the batched path,
	// whose passes consult the live phase).
	if j.Phase() != prune.PhaseBuild {
		return nil, false, nil
	}
	lc := q.Table.Schema().MustIndex(q.LeftKey)
	rc := q.Right.Schema().MustIndex(q.RightKey)
	run := &CheetahRun{PrunerName: j.Name()}
	leftSpans := fullSpans(q.Table)
	rightSpans := fullSpans(q.Right)
	if opts.Skip {
		rightSpans, run.Skipped = joinRightSpans(q.Table, lc, q.Right, rc)
	}
	fa, fb := j.FusedFilters()
	var left, right []int
	sent, fwd, pruned := 0, 0, 0
	if j.Asymmetric() {
		s, f := fusedJoinBuild(q.Table, lc, opts.Seed, fa, leftSpans, &left)
		sent += s
		fwd += f
		j.StartProbe()
		s, f = fusedJoinProbe(q.Right, rc, opts.Seed, fa, rightSpans, &right)
		sent += s
		fwd += f
		pruned += s - f
	} else {
		s, _ := fusedJoinBuild(q.Table, lc, opts.Seed, fa, leftSpans, nil)
		sent += s
		pruned += s
		s, _ = fusedJoinBuild(q.Right, rc, opts.Seed, fb, rightSpans, nil)
		sent += s
		pruned += s
		j.StartProbe()
		s, f := fusedJoinProbe(q.Table, lc, opts.Seed, fb, leftSpans, &left)
		sent += s
		fwd += f
		pruned += s - f
		s, f = fusedJoinProbe(q.Right, rc, opts.Seed, fa, rightSpans, &right)
		sent += s
		fwd += f
		pruned += s - f
	}
	j.AddStats(uint64(sent), uint64(pruned))
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	res, err := execJoin(q, left, right)
	if err != nil {
		return nil, true, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(left) + len(right)
	run.Stats = j.Stats()
	return run, true, nil
}

// --- SKYLINE -----------------------------------------------------------

// fusedSkylineScan streams the dimension tuples through the skyline
// pool in worker-interleave order. The pool's swap/drop logic (and its
// stats) live in Process; the fused win is the devirtualized call and
// the in-loop survivor collection.
func fusedSkylineScan(t *table.Table, cols []int, s *prune.Skyline, workers int,
	rows *[]int) (sent, fwd int) {
	n := t.NumRows()
	if n == 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = 1
	}
	starts := rrStarts(0, n, workers)
	ints := make([][]int64, len(cols))
	for i, c := range cols {
		ints[i] = t.Int64Col(c)
	}
	vals := make([]uint64, len(cols)+1)
	for k, done := 0, 0; done < n; k++ {
		for w := 0; w < workers; w++ {
			r := starts[w] + k
			if r >= starts[w+1] {
				continue
			}
			done++
			for i, src := range ints {
				vals[i] = uint64(src[r])
			}
			vals[len(ints)] = uint64(r)
			if s.Process(vals) == switchsim.Forward {
				fwd++
				*rows = append(*rows, r)
			}
		}
	}
	return n, fwd
}

func fusedSkyline(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	var s *prune.Skyline
	if opts.Pruner != nil {
		var ok bool
		if s, ok = opts.Pruner.(*prune.Skyline); !ok || !fuseGate(opts, s) {
			return nil, false, nil
		}
	} else {
		p, err := DefaultPruner(q, opts.Seed)
		if err != nil {
			return nil, true, err
		}
		s = p.(*prune.Skyline)
	}
	cols := make([]int, len(q.SkylineCols))
	for i, c := range q.SkylineCols {
		cols[i] = q.Table.Schema().MustIndex(c)
	}
	run := &CheetahRun{PrunerName: s.Name()}
	var survivors []int
	sent, fwd := fusedSkylineScan(q.Table, cols, s, opts.Workers, &survivors)
	run.Traffic.EntriesSent = sent
	run.Traffic.Forwarded = fwd
	for _, e := range s.Drain() {
		run.Traffic.Forwarded++
		survivors = append(survivors, int(e[len(cols)]))
	}
	res, err := completeOnRows(q, survivors)
	if err != nil {
		return nil, true, err
	}
	run.Result = res
	run.Traffic.MasterProcessed = len(survivors)
	run.Stats = s.Stats()
	return run, true, nil
}

// --- dispatch ----------------------------------------------------------

// execCheetahFused compiles and runs the query as one fused loop per
// pass. ok=false means the compiler cannot own this execution (foreign
// pruner type, no direct program access, mid-phase join state) and the
// batched pipeline must run instead; when ok=true the run (or error) is
// final.
func execCheetahFused(q *Query, opts CheetahOptions) (*CheetahRun, bool, error) {
	if opts.Pruner == nil && opts.Flow != nil {
		// The flow's installed program is not in our hands; only the
		// batched mux may drive it.
		return nil, false, nil
	}
	switch q.Kind {
	case KindFilter:
		return fusedFilter(q, opts)
	case KindDistinct:
		return fusedDistinct(q, opts)
	case KindTopN:
		return fusedTopN(q, opts)
	case KindGroupByMax:
		return fusedGroupByMax(q, opts)
	case KindGroupBySum:
		return fusedGroupBySum(q, opts)
	case KindHaving:
		return fusedHaving(q, opts)
	case KindJoin:
		return fusedJoin(q, opts)
	case KindSkyline:
		return fusedSkyline(q, opts)
	default:
		return nil, false, nil
	}
}
