package engine

// This file implements the batched Cheetah execution pipeline — the
// default path of ExecCheetah. The legacy path (cheetah.go) dispatches
// one closure call and one Program.Process per entry; here each CWorker
// encodes its partition into reusable column-major batch buffers, a
// round-robin scatter reproduces the exact arrival order of interleave,
// and the switch program runs its native batch loop over whole chunks.
// The master completes queries straight from the encoded columns where
// it can (late materialization): survivors are collected branchlessly
// through preallocated index buffers sized from the running prune rate,
// DISTINCT and GROUP BY dedupe survivors by the fingerprints the workers
// already computed, and TOP N feeds forwarded values into its heap
// without materializing a survivor list at all.
//
// Results, Traffic and Stats are bit-identical to the scalar path (the
// equivalence suite in batch_equiv_test.go asserts it for every query
// kind); the only semantic difference is that fingerprint-assisted
// master completion merges fingerprint-colliding keys, which has the
// same 1-δ guarantee (Theorem 4) as the fingerprinting the switch
// already performs on the stream.

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cheetah/internal/hashutil"
	"cheetah/internal/obs"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// The branchless survivor compaction below indexes by the numeric value
// of a Decision; these declarations fail to compile if the dataplane
// constants ever move.
var (
	_ = [1]struct{}{}[switchsim.Forward] // Forward must be 0
	_ = [1]struct{}{}[switchsim.Prune-1] // Prune must be 1
)

// chunkEntries caps one batch so stream buffers stay memory-bounded at
// paper scale and cache-resident across the encode → process → collect
// sweeps. It is a variable only so tests can force multi-chunk streams
// on small tables.
var chunkEntries = 1 << 18

// parallelEncodeMin is the chunk size below which the per-worker encode
// runs inline; goroutine handoff costs more than it saves on tiny
// chunks. A variable only so tests can force the concurrent branch on
// small tables.
var parallelEncodeMin = 8192

// encodeInParallel gates the per-chunk worker goroutines: concurrent
// encoding only pays when the runtime has real parallelism.
var encodeInParallel = runtime.NumCPU() > 1

// streamBuf holds the reusable buffers of one pass: the pruner-visible
// value columns, the engine-side row-id column, the decision vector and
// a compaction scratch.
type streamBuf struct {
	all []([]uint64)
	ids []uint64
	dec []switchsim.Decision
	tmp []uint64
}

var streamBufPool = sync.Pool{New: func() any { return new(streamBuf) }}

func getStreamBuf() *streamBuf  { return streamBufPool.Get().(*streamBuf) }
func putStreamBuf(b *streamBuf) { streamBufPool.Put(b) }

// columns returns width columns of length n, reusing prior capacity.
func (b *streamBuf) columns(width, n int) [][]uint64 {
	for len(b.all) < width {
		b.all = append(b.all, nil)
	}
	for i := 0; i < width; i++ {
		if cap(b.all[i]) < n {
			b.all[i] = make([]uint64, n)
		} else {
			b.all[i] = b.all[i][:n]
		}
	}
	return b.all[:width:width]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// batchSink consumes one processed chunk: the pruner-visible batch, the
// per-entry decisions, and the row ids of the chunk's entries (nil when
// the pass ran without ids).
type batchSink func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64)

// partEncoder encodes rows [lo, hi) of its table into dst (and ids when
// non-nil) at positions pos0, pos0+stride, pos0+2·stride, … .
type partEncoder func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int)

// batchPass streams the n rows of a table through the dataplane in the
// exact arrival order of interleave: workers encode their partitions
// concurrently, scattering values into the merged round-robin stream;
// each chunk is then processed (when dp is non-nil) and handed to
// sink. dp is a flow-scoped handle — the execution's own program on the
// exclusive path, the shared pipeline's per-flow mux when serving. pre,
// when non-nil, sees each encoded chunk before the program runs —
// needed by emitters that rewrite packets in place.
func batchPass(n, workers, width int, needIDs bool, buf *streamBuf, enc partEncoder,
	dp BatchDataplane, pre func(*switchsim.Batch, []uint64), sink batchSink) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = 1
	}
	// Partition boundaries identical to table.Partition / interleave.
	starts := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		starts[i] = i * n / workers
	}
	// Partitions have size s or s+1; in cycle k < s every worker emits
	// one entry (stream position k·workers + w), and in the final
	// partial cycle only the larger partitions emit, in worker order.
	s := n / workers
	bigBefore := make([]int, workers+1)
	for w := 0; w < workers; w++ {
		bigBefore[w+1] = bigBefore[w] + (starts[w+1] - starts[w] - s)
	}
	nBig := bigBefore[workers]

	cyclesPer := chunkEntries / workers
	if cyclesPer < 1 {
		cyclesPer = 1
	}
	for c0 := 0; ; c0 += cyclesPer {
		c1 := c0 + cyclesPer
		last := false
		if c1 >= s {
			c1 = s
			last = true
		}
		m := (c1 - c0) * workers
		if last {
			m += nBig
		}
		if m == 0 {
			break
		}
		cols := buf.columns(width, m)
		var ids []uint64
		if needIDs {
			buf.ids = growU64(buf.ids, m)
			ids = buf.ids
		}
		tailBase := (c1 - c0) * workers
		encodeChunk := func(w int) {
			if lo, hi := starts[w]+c0, starts[w]+c1; hi > lo {
				enc(cols, ids, lo, hi, w, workers)
			}
			if last && starts[w+1]-starts[w] > s {
				r := starts[w] + s
				enc(cols, ids, r, r+1, tailBase+bigBefore[w], 1)
			}
		}
		if encodeInParallel && workers > 1 && m >= parallelEncodeMin {
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					encodeChunk(w)
				}(w)
			}
			wg.Wait()
		} else {
			for w := 0; w < workers; w++ {
				encodeChunk(w)
			}
		}
		b := &switchsim.Batch{Cols: cols, N: m}
		if pre != nil {
			pre(b, ids)
		}
		if cap(buf.dec) < m {
			buf.dec = make([]switchsim.Decision, m)
		}
		dec := buf.dec[:m]
		if dp != nil {
			dp.ProcessBatch(b, dec)
		}
		sink(b, dec, ids)
		if last {
			break
		}
	}
}

// compactForwarded writes, for every forwarded entry j of the chunk,
// src[j] into buf.tmp, branchlessly (random forward/prune patterns
// mispredict a conditional append), and returns the compacted slice.
func (b *streamBuf) compactForwarded(src []uint64, dec []switchsim.Decision, n int) []uint64 {
	b.tmp = growU64(b.tmp, n)
	tmp := b.tmp
	k := 0
	for j := 0; j < n; j++ {
		tmp[k] = src[j]
		k += 1 - int(dec[j])
	}
	return tmp[:k]
}

// compactIndices is compactForwarded for chunk-local indices, for sinks
// that need several columns of each survivor.
func (b *streamBuf) compactIndices(dec []switchsim.Decision, n int) []uint64 {
	b.tmp = growU64(b.tmp, n)
	tmp := b.tmp
	k := 0
	for j := 0; j < n; j++ {
		tmp[k] = uint64(j)
		k += 1 - int(dec[j])
	}
	return tmp[:k]
}

// --- per-kind encoders -------------------------------------------------

// colAcc is a hoisted typed accessor for one column.
type colAcc struct {
	isStr bool
	ints  []int64
	strs  []string
}

func accessorFor(t *table.Table, c int) colAcc {
	if t.ColumnType(c) == table.String {
		return colAcc{isStr: true, strs: t.StringCol(c)}
	}
	return colAcc{ints: t.Int64Col(c)}
}

// fingerprintAccs is fingerprintRow over hoisted accessors; it must stay
// bit-identical to fingerprintRow.
func fingerprintAccs(accs []colAcc, r int, seed uint64) uint64 {
	h := seed ^ 0xfeedface
	for i := range accs {
		var cell uint64
		if accs[i].isStr {
			cell = hashutil.HashString64(accs[i].strs[r], seed)
		} else {
			cell = hashutil.HashUint64(uint64(accs[i].ints[r]), seed)
		}
		h = hashutil.Mix64(h ^ cell)
	}
	return h
}

// encFingerprint encodes dst[0] = fingerprintRow over cols, with
// closure-free inner loops for the dominant single-column cases.
func encFingerprint(t *table.Table, cols []int, seed uint64) partEncoder {
	accs := make([]colAcc, len(cols))
	for i, c := range cols {
		accs[i] = accessorFor(t, c)
	}
	h0 := seed ^ 0xfeedface
	if len(accs) == 1 && accs[0].isStr {
		strs := accs[0].strs
		return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
			out := dst[0]
			p := pos0
			if ids != nil {
				for r := lo; r < hi; r++ {
					out[p] = hashutil.Mix64(h0 ^ hashutil.HashString64(strs[r], seed))
					ids[p] = uint64(r)
					p += stride
				}
				return
			}
			for r := lo; r < hi; r++ {
				out[p] = hashutil.Mix64(h0 ^ hashutil.HashString64(strs[r], seed))
				p += stride
			}
		}
	}
	if len(accs) == 1 {
		ints := accs[0].ints
		return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
			out := dst[0]
			p := pos0
			if ids != nil {
				for r := lo; r < hi; r++ {
					out[p] = hashutil.Mix64(h0 ^ hashutil.HashUint64(uint64(ints[r]), seed))
					ids[p] = uint64(r)
					p += stride
				}
				return
			}
			for r := lo; r < hi; r++ {
				out[p] = hashutil.Mix64(h0 ^ hashutil.HashUint64(uint64(ints[r]), seed))
				p += stride
			}
		}
	}
	return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
		out := dst[0]
		p := pos0
		for r := lo; r < hi; r++ {
			out[p] = fingerprintAccs(accs, r, seed)
			p += stride
		}
		fillIDs(ids, lo, hi, pos0, stride)
	}
}

// fillIDs writes the row-id scatter of one span; a nil ids means the
// pass does not need row ids.
func fillIDs(ids []uint64, lo, hi, pos0, stride int) {
	if ids == nil {
		return
	}
	p := pos0
	for r := lo; r < hi; r++ {
		ids[p] = uint64(r)
		p += stride
	}
}

// encInt64 encodes dst[0] = uint64(column value).
func encInt64(t *table.Table, col int) partEncoder {
	ints := t.Int64Col(col)
	return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
		out := dst[0]
		p := pos0
		for r := lo; r < hi; r++ {
			out[p] = uint64(ints[r])
			p += stride
		}
		fillIDs(ids, lo, hi, pos0, stride)
	}
}

// encKeyVal encodes dst[0] = fingerprint(key), dst[1] = uint64(value) —
// the GROUP BY / HAVING packet layout.
func encKeyVal(t *table.Table, keyCol, valCol int, seed uint64) partEncoder {
	fpEnc := encFingerprint(t, []int{keyCol}, seed)
	vals := t.Int64Col(valCol)
	return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
		fpEnc(dst[:1], ids, lo, hi, pos0, stride)
		out := dst[1]
		p := pos0
		for r := lo; r < hi; r++ {
			out[p] = uint64(vals[r])
			p += stride
		}
	}
}

// encSide encodes dst[0] = side marker, dst[1] = fingerprint(key) — the
// join packet layout.
func encSide(t *table.Table, keyCol int, side prune.JoinSide, seed uint64) partEncoder {
	fpEnc := encFingerprint(t, []int{keyCol}, seed)
	return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
		sides := dst[0]
		sv := uint64(side)
		p := pos0
		for r := lo; r < hi; r++ {
			sides[p] = sv
			p += stride
		}
		fpEnc(dst[1:2], nil, lo, hi, pos0, stride)
		fillIDs(ids, lo, hi, pos0, stride)
	}
}

// encCols64 encodes dst[i] = uint64(cols[i] value) for D columns and
// dst[D] = row id — the skyline packet layout, where the id is a real
// header value riding through swaps.
func encCols64(t *table.Table, cols []int) partEncoder {
	ints := make([][]int64, len(cols))
	for i, c := range cols {
		ints[i] = t.Int64Col(c)
	}
	return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
		for i, src := range ints {
			out := dst[i]
			p := pos0
			for r := lo; r < hi; r++ {
				out[p] = uint64(src[r])
				p += stride
			}
		}
		fillIDs(dst[len(ints)], lo, hi, pos0, stride)
	}
}

// encFilter encodes one column per predicate (the raw value for
// switch-evaluable comparisons, the worker-precomputed bit for LIKE),
// sweeping column-at-a-time. t is the table (or segment view) being
// encoded; preds and cols are the query's predicates and their column
// indexes in t's schema.
func encFilter(t *table.Table, preds []FilterPred, cols []int) partEncoder {
	type predEnc struct {
		ints []int64
		strs []string
		like string
	}
	pes := make([]predEnc, len(preds))
	for i, p := range preds {
		if p.SwitchSupported() {
			pes[i] = predEnc{ints: t.Int64Col(cols[i])}
		} else {
			pes[i] = predEnc{strs: t.StringCol(cols[i]), like: p.Like}
		}
	}
	return func(dst [][]uint64, ids []uint64, lo, hi, pos0, stride int) {
		for i := range pes {
			out := dst[i]
			if pes[i].like == "" {
				src := pes[i].ints
				p := pos0
				for r := lo; r < hi; r++ {
					out[p] = uint64(src[r])
					p += stride
				}
			} else {
				src, pat := pes[i].strs, pes[i].like
				p := pos0
				for r := lo; r < hi; r++ {
					if MatchLike(src[r], pat) {
						out[p] = 1
					} else {
						out[p] = 0
					}
					p += stride
				}
			}
		}
		fillIDs(ids, lo, hi, pos0, stride)
	}
}

// --- survivor collection ----------------------------------------------

// survivorSet accumulates forwarded row ids across chunks, growing its
// buffer from the observed unpruned rate instead of append's doubling.
type survivorSet struct {
	rows      []int
	seen      int // entries processed so far
	remaining int // entries still to come, for rate projection
}

// add appends the compacted forwarded ids of one chunk that covered
// chunkN entries.
func (s *survivorSet) add(fwd []uint64, chunkN int) {
	s.seen += chunkN
	s.remaining -= chunkN
	if need := len(s.rows) + len(fwd); need > cap(s.rows) {
		projected := need + int(float64(s.remaining)*float64(need)/float64(s.seen))
		projected += projected / 8 // headroom against rate drift
		grown := make([]int, len(s.rows), projected)
		copy(grown, s.rows)
		s.rows = grown
	}
	for _, id := range fwd {
		s.rows = append(s.rows, int(id))
	}
}

// --- sorted result assembly -------------------------------------------

// lexRows sorts rows in the exact order of Result.Sort (lexicographic on
// the \x00-joined row key) without allocating per comparison: cells
// never contain \x00, so element-wise comparison is equivalent.
type lexRows [][]string

func (r lexRows) Len() int      { return len(r) }
func (r lexRows) Swap(i, j int) { r[i], r[j] = r[j], r[i] }
func (r lexRows) Less(i, j int) bool {
	a, b := r[i], r[j]
	for k := 0; k < len(a) && k < len(b); k++ {
		if c := compareStrings(a[k], b[k]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// sortedResult builds a Result whose rows are already in Result.Sort
// order. Cells containing NUL collide with Result.Sort's join
// separator, where element-wise comparison can disagree; that rare
// shape falls back to the legacy sort.
func sortedResult(columns []string, rows [][]string) *Result {
	res := &Result{Columns: columns, Rows: rows}
	for _, row := range rows {
		for _, cell := range row {
			if strings.IndexByte(cell, 0) >= 0 {
				res.Sort()
				return res
			}
		}
	}
	sort.Sort(lexRows(rows))
	return res
}

// singleCellRows wraps already-sorted cell values as single-column
// result rows backed by one allocation.
func singleCellRows(cells []string) [][]string {
	rows := make([][]string, len(cells))
	for i := range cells {
		rows[i] = cells[i : i+1 : i+1]
	}
	return rows
}

// --- per-kind batched executions --------------------------------------

// batchRun bundles the state shared by every batched execution.
type batchRun struct {
	run *CheetahRun
	buf *streamBuf
}

func newBatchRun(pruner prune.Pruner) *batchRun {
	return &batchRun{
		run: &CheetahRun{PrunerName: pruner.Name()},
		buf: getStreamBuf(),
	}
}

func (b *batchRun) finish(pruner prune.Pruner, res *Result, masterProcessed int) *CheetahRun {
	b.run.Result = res
	b.run.Traffic.MasterProcessed = masterProcessed
	b.run.Stats = pruner.Stats()
	putStreamBuf(b.buf)
	return b.run
}

func batchFilter(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	cols := make([]int, len(q.Predicates))
	for i, p := range q.Predicates {
		cols[i] = q.Table.Schema().MustIndex(p.Col)
	}
	pruner := opts.Pruner
	if pruner == nil {
		var err error
		if pruner, err = DefaultPruner(q, opts.Seed); err != nil {
			return nil, err
		}
	}
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	// Skipping is exact for FILTER (monotone formula over block bounds;
	// skip.go): a skipped block contains no matching row, so both the
	// trusted materialization and the exact master re-check below stay
	// bit-identical to ExecDirect.
	spans := fullSpans(q.Table)
	if opts.Skip {
		spans, br.run.Skipped = filterSpans(q, q.Table, cols)
	}
	encFor := func(t *table.Table) partEncoder { return encFilter(t, q.Predicates, cols) }
	// With the engine's own default pruner, every survivor passed the
	// full switch formula (precomputed bits included) — the same formula
	// the master would re-check — so the completion materializes rows
	// (or the count) directly. A caller-supplied pruner may forward
	// false positives (pruning is best-effort by design), so that case
	// keeps the scalar path's exact master completion.
	trusted := opts.Pruner == nil
	if !trusted {
		sv := survivorSet{remaining: q.Table.NumRows()}
		err := spanPass(q.Table, spans, opts.Workers, len(cols), true, br.buf, encFor, dp,
			func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
				br.run.Traffic.EntriesSent += b.N
				fwd := br.buf.compactForwarded(ids, dec, b.N)
				br.run.Traffic.Forwarded += len(fwd)
				sv.add(fwd, b.N)
			})
		if err == nil {
			var res *Result
			if res, err = completeOnRows(q, sv.rows); err == nil {
				return br.finish(pruner, res, len(sv.rows)), nil
			}
		}
		putStreamBuf(br.buf)
		return nil, err
	}
	if q.CountOnly {
		// COUNT(*) needs no row ids at all: the forward count is the
		// answer.
		count := 0
		err := spanPass(q.Table, spans, opts.Workers, len(cols), false, br.buf, encFor, dp,
			func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
				br.run.Traffic.EntriesSent += b.N
				n := b.N
				for _, d := range dec[:b.N] {
					n -= int(d)
				}
				br.run.Traffic.Forwarded += n
				count += n
			})
		if err != nil {
			putStreamBuf(br.buf)
			return nil, err
		}
		res := &Result{Columns: []string{"count"}, Rows: [][]string{{strconv.Itoa(count)}}}
		return br.finish(pruner, res, count), nil
	}
	sv := survivorSet{remaining: q.Table.NumRows()}
	if err := spanPass(q.Table, spans, opts.Workers, len(cols), true, br.buf, encFor, dp,
		func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
			br.run.Traffic.EntriesSent += b.N
			fwd := br.buf.compactForwarded(ids, dec, b.N)
			br.run.Traffic.Forwarded += len(fwd)
			sv.add(fwd, b.N)
		}); err != nil {
		putStreamBuf(br.buf)
		return nil, err
	}
	t := q.Table
	names := make([]string, t.NumCols())
	for i, d := range t.Schema() {
		names[i] = d.Name
	}
	rows := make([][]string, len(sv.rows))
	backing := make([]string, len(sv.rows)*t.NumCols())
	for i, r := range sv.rows {
		row := backing[i*t.NumCols() : (i+1)*t.NumCols() : (i+1)*t.NumCols()]
		for c := range row {
			row[c] = cellString(t, c, r)
		}
		rows[i] = row
	}
	return br.finish(pruner, sortedResult(names, rows), len(sv.rows)), nil
}

// distinctScratch is the pooled master-side dedup state of one DISTINCT
// run.
type distinctScratch struct {
	seen       map[uint64]struct{}
	uniqueRows []int
}

var distinctScratchPool = sync.Pool{New: func() any {
	return &distinctScratch{seen: make(map[uint64]struct{}, 4096)}
}}

func batchDistinct(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	pruner := opts.Pruner
	if pruner == nil {
		var err error
		if pruner, err = DefaultPruner(q, opts.Seed); err != nil {
			return nil, err
		}
	}
	cols := make([]int, len(q.DistinctCols))
	for i, c := range q.DistinctCols {
		cols[i] = q.Table.Schema().MustIndex(c)
	}
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	// Fused master-side dedup: survivors dedupe on the worker-computed
	// fingerprint in stream order, so only first-seen rows materialize.
	ds := distinctScratchPool.Get().(*distinctScratch)
	clear(ds.seen)
	ds.uniqueRows = ds.uniqueRows[:0]
	forwarded := 0
	batchPass(q.Table.NumRows(), opts.Workers, 1, true, br.buf, encFingerprint(q.Table, cols, opts.Seed), dp, nil,
		func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
			br.run.Traffic.EntriesSent += b.N
			fps := b.Cols[0]
			idx := br.buf.compactIndices(dec, b.N)
			forwarded += len(idx)
			for _, j := range idx {
				fp := fps[j]
				if _, ok := ds.seen[fp]; !ok {
					ds.seen[fp] = struct{}{}
					ds.uniqueRows = append(ds.uniqueRows, int(ids[j]))
				}
			}
		})
	br.run.Traffic.Forwarded = forwarded
	var res *Result
	if len(cols) == 1 {
		// Single-column DISTINCT: sort the cell values directly (radix
		// for the string-heavy case) and wrap them as rows.
		cells := make([]string, len(ds.uniqueRows))
		for i, r := range ds.uniqueRows {
			cells[i] = cellString(q.Table, cols[0], r)
		}
		radixSortStrings(cells)
		res = &Result{Columns: append([]string(nil), q.DistinctCols...), Rows: singleCellRows(cells)}
	} else {
		rows := make([][]string, len(ds.uniqueRows))
		backing := make([]string, len(ds.uniqueRows)*len(cols))
		for i, r := range ds.uniqueRows {
			row := backing[i*len(cols) : (i+1)*len(cols) : (i+1)*len(cols)]
			for k, c := range cols {
				row[k] = cellString(q.Table, c, r)
			}
			rows[i] = row
		}
		res = sortedResult(append([]string(nil), q.DistinctCols...), rows)
	}
	distinctScratchPool.Put(ds)
	return br.finish(pruner, res, forwarded), nil
}

func batchTopN(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	pruner := opts.Pruner
	if pruner == nil {
		var err error
		if pruner, err = DefaultPruner(q, opts.Seed); err != nil {
			return nil, err
		}
	}
	col := q.Table.Schema().MustIndex(q.OrderCol)
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	// Fused completion: forwarded values feed the master's N-heap
	// directly from the stream buffer; no survivor list materializes.
	h := make(int64Heap, 0, q.N)
	forwarded := 0
	sink := func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
		br.run.Traffic.EntriesSent += b.N
		fwd := br.buf.compactForwarded(b.Cols[0], dec, b.N)
		forwarded += len(fwd)
		for _, raw := range fwd {
			v := int64(raw)
			if len(h) < q.N {
				h.push(v)
			} else if v > h[0] {
				h[0] = v
				h.fixRoot()
			}
		}
	}
	if opts.Skip && q.Table.SkipIndex() != nil {
		// Block threshold bound (skip.go): once the heap is full, a
		// block whose max ≤ h[0] cannot change the final multiset. The
		// heap tightens between spans, so the bound is dynamic.
		topNSpanScan(q.Table, col, q.N, &h, &br.run.Skipped, func(lo, hi int) {
			v, err := q.Table.View(lo, hi)
			if err != nil {
				return
			}
			batchPass(v.NumRows(), opts.Workers, 1, false, br.buf, encInt64(v, col), dp, nil, sink)
		})
	} else {
		batchPass(q.Table.NumRows(), opts.Workers, 1, false, br.buf, encInt64(q.Table, col), dp, nil, sink)
	}
	br.run.Traffic.Forwarded = forwarded
	// The scalar completion sorts values descending and then re-sorts
	// the formatted rows lexicographically; only the final order is
	// observable, so format straight from the heap.
	cells := make([]string, len(h))
	for i, v := range h {
		cells[i] = strconv.FormatInt(v, 10)
	}
	radixSortStrings(cells)
	res := &Result{Columns: []string{q.OrderCol}, Rows: singleCellRows(cells)}
	return br.finish(pruner, res, forwarded), nil
}

func batchGroupByMax(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	pruner := opts.Pruner
	if pruner == nil {
		var err error
		if pruner, err = DefaultPruner(q, opts.Seed); err != nil {
			return nil, err
		}
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	// Fingerprint-keyed master aggregation with one representative row
	// per key for late materialization of the key string.
	keyIdx := make(map[uint64]int, 1024)
	var maxs []int64
	var reps []int
	forwarded := 0
	batchPass(q.Table.NumRows(), opts.Workers, 2, true, br.buf, encKeyVal(q.Table, kc, vc, opts.Seed), dp, nil,
		func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
			br.run.Traffic.EntriesSent += b.N
			fps, vals := b.Cols[0], b.Cols[1]
			idx := br.buf.compactIndices(dec, b.N)
			forwarded += len(idx)
			for _, j := range idx {
				v := int64(vals[j])
				if i, ok := keyIdx[fps[j]]; ok {
					if v > maxs[i] {
						maxs[i] = v
					}
				} else {
					keyIdx[fps[j]] = len(maxs)
					maxs = append(maxs, v)
					reps = append(reps, int(ids[j]))
				}
			}
		})
	br.run.Traffic.Forwarded = forwarded
	rows := make([][]string, len(maxs))
	backing := make([]string, len(maxs)*2)
	for i := range maxs {
		row := backing[i*2 : i*2+2 : i*2+2]
		row[0] = cellString(q.Table, kc, reps[i])
		row[1] = strconv.FormatInt(maxs[i], 10)
		rows[i] = row
	}
	res := sortedResult([]string{q.KeyCol, "max(" + q.AggCol + ")"}, rows)
	return br.finish(pruner, res, forwarded), nil
}

func batchGroupBySum(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.GroupBySum
	if opts.Pruner != nil {
		gs, ok := opts.Pruner.(*prune.GroupBySum)
		if !ok {
			return nil, fmt.Errorf("engine: group-by-sum needs a *prune.GroupBySum, got %T", opts.Pruner)
		}
		pruner = gs
	} else {
		gs, err := prune.NewGroupBySum(prune.GroupBySumConfig{Rows: 4096, Cols: 8, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		pruner = gs
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	sums := map[uint64]int64{}
	fpToKey := map[uint64]string{}
	batchPass(q.Table.NumRows(), opts.Workers, 2, true, br.buf, encKeyVal(q.Table, kc, vc, opts.Seed), dp,
		func(b *switchsim.Batch, ids []uint64) {
			// The key dictionary must be read before the program rewrites
			// forwarded slots with evicted aggregates.
			fps := b.Cols[0]
			for j := 0; j < b.N; j++ {
				if _, ok := fpToKey[fps[j]]; !ok {
					fpToKey[fps[j]] = cellString(q.Table, kc, int(ids[j]))
				}
			}
		},
		func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
			br.run.Traffic.EntriesSent += b.N
			fps, vals := b.Cols[0], b.Cols[1]
			idx := br.buf.compactIndices(dec, b.N)
			br.run.Traffic.Forwarded += len(idx)
			for _, j := range idx {
				sums[fps[j]] += int64(vals[j])
			}
		})
	for _, e := range pruner.Drain() {
		br.run.Traffic.Forwarded++
		sums[e[0]] += int64(e[1])
	}
	rows := make([][]string, 0, len(sums))
	for fp, v := range sums {
		rows = append(rows, []string{fpToKey[fp], strconv.FormatInt(v, 10)})
	}
	res := sortedResult([]string{q.KeyCol, "sum(" + q.AggCol + ")"}, rows)
	return br.finish(pruner, res, len(sums)), nil
}

func batchHaving(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.Having
	if opts.Pruner != nil {
		h, ok := opts.Pruner.(*prune.Having)
		if !ok {
			return nil, fmt.Errorf("engine: having needs a *prune.Having, got %T", opts.Pruner)
		}
		pruner = h
	} else {
		h, err := prune.NewHaving(prune.HavingConfig{
			Agg: prune.HavingSum, Threshold: q.Threshold,
			Rows: 3, CountersPerRow: 1024, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		pruner = h
	}
	kc := q.Table.Schema().MustIndex(q.KeyCol)
	vc := q.Table.Schema().MustIndex(q.AggCol)
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	enc := encKeyVal(q.Table, kc, vc, opts.Seed)
	// Pass 1: stream through the sketch, collecting candidate key
	// fingerprints.
	candidates := map[uint64]bool{}
	batchPass(q.Table.NumRows(), opts.Workers, 2, false, br.buf, enc, dp, nil,
		func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
			br.run.Traffic.EntriesSent += b.N
			fps := b.Cols[0]
			idx := br.buf.compactIndices(dec, b.N)
			br.run.Traffic.Forwarded += len(idx)
			for _, j := range idx {
				candidates[fps[j]] = true
			}
		})
	// Pass 2 (partial): only candidate keys' entries re-stream; the
	// master computes exact sums and drops false positives (§4.3).
	sums := map[string]int64{}
	batchPass(q.Table.NumRows(), opts.Workers, 2, true, br.buf, enc, nil, nil,
		func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
			fps, vals := b.Cols[0], b.Cols[1]
			for j := 0; j < b.N; j++ {
				if !candidates[fps[j]] {
					continue
				}
				br.run.Traffic.EntriesSent++
				br.run.Traffic.SecondPassSent++
				sums[cellString(q.Table, kc, int(ids[j]))] += int64(vals[j])
			}
		})
	rows := make([][]string, 0, len(sums))
	for k, v := range sums {
		if v > q.Threshold {
			rows = append(rows, []string{k})
		}
	}
	res := sortedResult([]string{q.KeyCol}, rows)
	return br.finish(pruner, res, br.run.Traffic.SecondPassSent), nil
}

func batchJoin(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.Join
	if opts.Pruner != nil {
		j, ok := opts.Pruner.(*prune.Join)
		if !ok {
			return nil, fmt.Errorf("engine: join needs a *prune.Join, got %T", opts.Pruner)
		}
		pruner = j
	} else {
		j, err := prune.NewJoin(prune.JoinConfig{FilterBits: 4 << 23, Hashes: 3, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		pruner = j
	}
	lc := q.Table.Schema().MustIndex(q.LeftKey)
	rc := q.Right.Schema().MustIndex(q.RightKey)
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	// Probe-side block skipping (skip.go): a right block where every
	// distinct left key tests Bloom-negative holds no joinable row.
	// Every right pass — including the symmetric build pass — uses the
	// same spans: a key that would train the B-side filter out of a
	// skipped block cannot exist on the left, so no left row loses its
	// forward, and the master's execJoin re-check stays exact.
	leftSpans := fullSpans(q.Table)
	rightSpans := fullSpans(q.Right)
	if opts.Skip {
		rightSpans, br.run.Skipped = joinRightSpans(q.Table, lc, q.Right, rc)
	}
	encAFor := func(t *table.Table) partEncoder { return encSide(t, lc, prune.SideA, opts.Seed) }
	encBFor := func(t *table.Table) partEncoder { return encSide(t, rc, prune.SideB, opts.Seed) }

	pass := func(t *table.Table, spans []span, encFor func(*table.Table) partEncoder, sv *survivorSet) error {
		return spanPass(t, spans, opts.Workers, 2, sv != nil, br.buf, encFor, dp,
			func(b *switchsim.Batch, dec []switchsim.Decision, ids []uint64) {
				br.run.Traffic.EntriesSent += b.N
				if sv == nil {
					// Build pass: count forwards without collecting.
					n := b.N
					for _, d := range dec[:b.N] {
						n -= int(d)
					}
					br.run.Traffic.Forwarded += n
					return
				}
				fwd := br.buf.compactForwarded(ids, dec, b.N)
				br.run.Traffic.Forwarded += len(fwd)
				sv.add(fwd, b.N)
			})
	}
	var left, right survivorSet
	var err error
	if pruner.Asymmetric() {
		// §4.3's small-table optimization: side A streams once, unpruned,
		// while its filter trains; then side B is pruned against it.
		left.remaining = q.Table.NumRows()
		err = pass(q.Table, leftSpans, encAFor, &left)
		pruner.StartProbe()
		right.remaining = q.Right.NumRows()
		if err == nil {
			err = pass(q.Right, rightSpans, encBFor, &right)
		}
	} else {
		// Pass 1: both key columns build the filters; packets terminate
		// at the switch. Pass 2: full entries, pruned by the other side.
		err = pass(q.Table, leftSpans, encAFor, nil)
		if err == nil {
			err = pass(q.Right, rightSpans, encBFor, nil)
		}
		pruner.StartProbe()
		left.remaining = q.Table.NumRows()
		if err == nil {
			err = pass(q.Table, leftSpans, encAFor, &left)
		}
		right.remaining = q.Right.NumRows()
		if err == nil {
			err = pass(q.Right, rightSpans, encBFor, &right)
		}
	}
	if err != nil {
		putStreamBuf(br.buf)
		return nil, err
	}
	res, err := execJoin(q, left.rows, right.rows)
	if err != nil {
		putStreamBuf(br.buf)
		return nil, err
	}
	return br.finish(pruner, res, len(left.rows)+len(right.rows)), nil
}

func batchSkyline(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	var pruner *prune.Skyline
	if opts.Pruner != nil {
		s, ok := opts.Pruner.(*prune.Skyline)
		if !ok {
			return nil, fmt.Errorf("engine: skyline needs a *prune.Skyline, got %T", opts.Pruner)
		}
		pruner = s
	} else {
		s, err := prune.NewSkyline(prune.SkylineConfig{
			Dims: len(q.SkylineCols), Points: 10, Heuristic: prune.SkylineAPH,
		})
		if err != nil {
			return nil, err
		}
		pruner = s
	}
	cols := make([]int, len(q.SkylineCols))
	for i, c := range q.SkylineCols {
		cols[i] = q.Table.Schema().MustIndex(c)
	}
	br := newBatchRun(pruner)
	dp := opts.dataplaneFor(pruner)
	sv := survivorSet{remaining: q.Table.NumRows()}
	batchPass(q.Table.NumRows(), opts.Workers, len(cols)+1, false, br.buf, encCols64(q.Table, cols), dp, nil,
		func(b *switchsim.Batch, dec []switchsim.Decision, _ []uint64) {
			br.run.Traffic.EntriesSent += b.N
			// The entry id is a real header value (the last column).
			fwd := br.buf.compactForwarded(b.Cols[len(cols)], dec, b.N)
			br.run.Traffic.Forwarded += len(fwd)
			sv.add(fwd, b.N)
		})
	// Control-plane drain of the stored points at FIN (ids rode along
	// through swaps, so the master late-materializes them).
	for _, e := range pruner.Drain() {
		br.run.Traffic.Forwarded++
		sv.rows = append(sv.rows, int(e[len(cols)]))
	}
	res, err := completeOnRows(q, sv.rows)
	if err != nil {
		putStreamBuf(br.buf)
		return nil, err
	}
	return br.finish(pruner, res, len(sv.rows)), nil
}

// execCheetahBatch dispatches the batched pipeline, trying the fused
// compiler first: when the query's pruner is a shipped type the fused
// layer knows (and the dataplane grants direct program access), the
// whole execution runs as monomorphic per-kind loops (fuse.go).
func execCheetahBatch(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	if !opts.NoFuse {
		tm := opts.Trace.Begin(obs.StageFused, opts.TraceSwitch)
		if run, ok, err := execCheetahFused(q, opts); ok {
			if err == nil && run != nil {
				// One span covers the fused encode→prune→compact loop and
				// its in-loop completion — the phases are interleaved by
				// construction, so they cannot be timed apart.
				tm.End(int64(run.Traffic.EntriesSent), int64(run.Traffic.Forwarded))
			}
			return run, err
		}
	}
	if opts.Trace != nil && opts.traceAcc == nil {
		return execCheetahBatchTraced(q, opts)
	}
	return execCheetahBatchDispatch(q, opts)
}

// execCheetahBatchDispatch routes to the per-kind batched execution.
func execCheetahBatchDispatch(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	switch q.Kind {
	case KindFilter:
		return batchFilter(q, opts)
	case KindDistinct:
		return batchDistinct(q, opts)
	case KindTopN:
		return batchTopN(q, opts)
	case KindGroupByMax:
		return batchGroupByMax(q, opts)
	case KindGroupBySum:
		return batchGroupBySum(q, opts)
	case KindHaving:
		return batchHaving(q, opts)
	case KindJoin:
		return batchJoin(q, opts)
	case KindSkyline:
		return batchSkyline(q, opts)
	default:
		return nil, fmt.Errorf("engine: unknown kind %v", q.Kind)
	}
}

// push adds v to the heap (sift-up), replicating container/heap.Push for
// the master's int64 N-heap without the interface boxing.
func (h *int64Heap) push(v int64) {
	*h = append(*h, v)
	j := len(*h) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if (*h)[parent] <= (*h)[j] {
			break
		}
		(*h)[parent], (*h)[j] = (*h)[j], (*h)[parent]
		j = parent
	}
}

// offer admits v to the capacity-topN heap when it qualifies: a plain
// push while filling, a root replacement when v beats the current
// minimum, a no-op otherwise.
func (h *int64Heap) offer(v int64, topN int) {
	if len(*h) < topN {
		h.push(v)
	} else if v > (*h)[0] {
		(*h)[0] = v
		(*h).fixRoot()
	}
}

// fixRoot restores heap order after the root was replaced (sift-down),
// replicating container/heap.Fix(h, 0).
func (h int64Heap) fixRoot() {
	n := len(h)
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		small := j
		if l < n && h[l] < h[small] {
			small = l
		}
		if r < n && h[r] < h[small] {
			small = r
		}
		if small == j {
			return
		}
		h[j], h[small] = h[small], h[j]
		j = small
	}
}
