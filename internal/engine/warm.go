package engine

// This file implements warm program rebuild for standing-query
// re-placement (§7.2 recovery). When a switch hosting a continuous
// query's program dies, the master still holds the exact standing
// result in its merge state; for monotone query kinds that standing
// result is a faithful summary of everything the lost register state
// was allowed to prune with, so replaying it through a fresh program
// rebuilds equivalent prune state without re-streaming history:
//
//   - DISTINCT: the standing rows ARE the seen value set; replaying
//     their fingerprints re-arms the seen-filter, so already-reported
//     values prune again instead of surviving to a master-side dedupe.
//   - GROUP BY MAX: the standing maxima are exactly the aggregates the
//     registers held (the merge is the same max), so replaying (key,
//     max) restores the prune threshold per group.
//   - TOP N: the standing top N are the only values a correct program
//     may use as prune thresholds; offering them is normal program
//     operation on an N-value stream.
//
// Every other kind is refused: warming a GROUP BY SUM / HAVING sketch
// from standing sums would double-count on the next drain, a warmed
// skyline would drain rows ids that don't exist in the delta, JOIN
// retrains per delta anyway, and windowed state must not outlive its
// window. Callers admit those cold — the master's merge keeps results
// exact either way; warmth only buys pruning back.

import (
	"fmt"
	"strconv"

	"cheetah/internal/hashutil"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// warmCellHash hashes one canonically rendered cell exactly as
// fingerprintRow hashes the live column value it was rendered from.
func warmCellHash(typ table.Type, cell string, seed uint64) (uint64, error) {
	if typ == table.Int64 {
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("engine: warm rebuild: %q is not an int64 cell: %v", cell, err)
		}
		return hashutil.HashUint64(uint64(v), seed), nil
	}
	return hashutil.HashString64(cell, seed), nil
}

// warmFingerprint recomputes fingerprintRow over rendered cells; it
// must stay bit-identical to fingerprintRow for the same values.
func warmFingerprint(types []table.Type, cells []string, seed uint64) (uint64, error) {
	h := seed ^ 0xfeedface
	for i, c := range cells {
		ch, err := warmCellHash(types[i], c, seed)
		if err != nil {
			return 0, err
		}
		h = hashutil.Mix64(h ^ ch)
	}
	return h, nil
}

// WarmPruner replays a standing result through a fresh program p,
// rebuilding prune state equivalent to what a failed switch lost.
// Returns true when the query kind supports warm rebuild (DISTINCT,
// GROUP BY MAX, TOP N) and the replay ran; false means the caller
// should admit the program cold — results stay exact either way, a cold
// program just forwards more until it re-learns. seed must be the
// execution's fingerprint seed and standing the exact current standing
// result (columns in the query's layout).
func WarmPruner(q *Query, seed uint64, standing *Result, p prune.Pruner) (bool, error) {
	if standing == nil || p == nil {
		return false, nil
	}
	switch q.Kind {
	case KindDistinct:
		types := make([]table.Type, len(q.DistinctCols))
		for i, c := range q.DistinctCols {
			types[i] = q.Table.Schema()[q.Table.Schema().MustIndex(c)].Type
		}
		for _, row := range standing.Rows {
			if len(row) != len(types) {
				return false, fmt.Errorf("engine: warm rebuild: distinct row has %d cells, want %d", len(row), len(types))
			}
			fp, err := warmFingerprint(types, row, seed)
			if err != nil {
				return false, err
			}
			p.Process([]uint64{fp})
		}
		return true, nil
	case KindGroupByMax:
		kt := q.Table.Schema()[q.Table.Schema().MustIndex(q.KeyCol)].Type
		for _, row := range standing.Rows {
			if len(row) != 2 {
				return false, fmt.Errorf("engine: warm rebuild: group-by row has %d cells, want 2", len(row))
			}
			fp, err := warmFingerprint([]table.Type{kt}, row[:1], seed)
			if err != nil {
				return false, err
			}
			v, err := strconv.ParseInt(row[1], 10, 64)
			if err != nil {
				return false, fmt.Errorf("engine: warm rebuild: bad aggregate %q: %v", row[1], err)
			}
			p.Process([]uint64{fp, uint64(v)})
		}
		return true, nil
	case KindTopN:
		for _, row := range standing.Rows {
			if len(row) != 1 {
				return false, fmt.Errorf("engine: warm rebuild: top-n row has %d cells, want 1", len(row))
			}
			v, err := strconv.ParseInt(row[0], 10, 64)
			if err != nil {
				return false, fmt.Errorf("engine: warm rebuild: bad value %q: %v", row[0], err)
			}
			p.Process([]uint64{uint64(v)})
		}
		return true, nil
	default:
		return false, nil
	}
}
