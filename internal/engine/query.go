// Package engine implements the query execution substrate Cheetah plugs
// into: a Spark-SQL-like engine with columnar partitions, worker tasks
// and a master that completes queries — plus the Cheetah execution path
// where workers serialize entries, the switch prunes them, and the master
// finishes the query on the surviving subset (§3). A calibrated cost
// model (cost.go) converts measured entry counts into completion times
// with the paper's bottleneck structure.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// QueryKind enumerates the query shapes Cheetah offloads (§4).
type QueryKind uint8

const (
	// KindFilter is SELECT * WHERE <formula>.
	KindFilter QueryKind = iota
	// KindDistinct is SELECT DISTINCT cols.
	KindDistinct
	// KindTopN is SELECT TOP n ... ORDER BY col.
	KindTopN
	// KindGroupByMax is SELECT key, MAX(val) GROUP BY key.
	KindGroupByMax
	// KindGroupBySum is SELECT key, SUM(val) GROUP BY key.
	KindGroupBySum
	// KindHaving is SELECT key GROUP BY key HAVING SUM(val) > c.
	KindHaving
	// KindJoin is SELECT * FROM a JOIN b ON a.k = b.k.
	KindJoin
	// KindSkyline is SELECT ... SKYLINE OF cols.
	KindSkyline
)

// String renders the kind.
func (k QueryKind) String() string {
	switch k {
	case KindFilter:
		return "filter"
	case KindDistinct:
		return "distinct"
	case KindTopN:
		return "topn"
	case KindGroupByMax:
		return "groupby-max"
	case KindGroupBySum:
		return "groupby-sum"
	case KindHaving:
		return "having"
	case KindJoin:
		return "join"
	case KindSkyline:
		return "skyline"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// FilterPred is one WHERE predicate over a named column: either a numeric
// comparison the switch can evaluate, or a LIKE pattern it cannot (the
// CWorker precomputes those, §4.1).
type FilterPred struct {
	Col   string
	Op    prune.CmpOp
	Const int64
	// Like, when non-empty, makes this a string LIKE predicate with %
	// wildcards; Op/Const are ignored.
	Like string
}

// SwitchSupported reports whether the switch can evaluate the predicate.
func (p FilterPred) SwitchSupported() bool { return p.Like == "" }

// MatchLike implements SQL LIKE with the % (any sequence) and _ (exactly
// one byte) wildcards; no escapes. Matching is byte-wise, which covers
// the ASCII workloads the paper benchmarks.
func MatchLike(s, pattern string) bool {
	// Greedy match with single-level backtracking to the most recent %:
	// a mismatch after a % retries the suffix one byte further along.
	si, pi := 0, 0
	star, resume := -1, 0
	for si < len(s) {
		switch {
		// The wildcard test precedes the literal test: a '%' in the
		// pattern is always the any-sequence wildcard, even when the
		// data byte at this position happens to be a literal '%'.
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			resume = si
			pi++
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case star >= 0:
			resume++
			si = resume
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Eval evaluates the predicate against row r of t.
func (p FilterPred) Eval(t *table.Table, col int, r int) bool {
	if p.Like != "" {
		return MatchLike(t.StringAt(col, r), p.Like)
	}
	v := t.Int64At(col, r)
	switch p.Op {
	case prune.OpGT:
		return v > p.Const
	case prune.OpGE:
		return v >= p.Const
	case prune.OpLT:
		return v < p.Const
	case prune.OpLE:
		return v <= p.Const
	case prune.OpEQ:
		return v == p.Const
	case prune.OpNE:
		return v != p.Const
	default:
		return false
	}
}

// Query is a declarative query spec consumed by both execution paths.
type Query struct {
	Kind  QueryKind
	Table *table.Table
	// Right is the probe-side table for KindJoin.
	Right *table.Table

	// Filter fields.
	Predicates []FilterPred
	Formula    boolexpr.Expr // leaves index Predicates
	CountOnly  bool          // SELECT COUNT(*): result is a single count row

	// Distinct fields.
	DistinctCols []string

	// TopN fields.
	OrderCol string
	N        int

	// GroupBy / Having fields.
	KeyCol    string
	AggCol    string
	Threshold int64

	// Join fields.
	LeftKey, RightKey string

	// Skyline fields.
	SkylineCols []string
}

// Validate checks the spec against its table schemas.
func (q *Query) Validate() error {
	if q.Table == nil {
		return fmt.Errorf("engine: query needs a table")
	}
	s := q.Table.Schema()
	need := func(col string) error {
		if s.Index(col) < 0 {
			return fmt.Errorf("engine: unknown column %q", col)
		}
		return nil
	}
	// needTyped additionally checks the column's type: the encode path
	// reads Int64 columns with Int64At (a String column would panic
	// there) and LIKE patterns only apply to String columns.
	needTyped := func(col string, want table.Type, role string) error {
		i := s.Index(col)
		if i < 0 {
			return fmt.Errorf("engine: unknown column %q", col)
		}
		if s[i].Type != want {
			return fmt.Errorf("engine: %s column %q is %s, need %s", role, col, s[i].Type, want)
		}
		return nil
	}
	switch q.Kind {
	case KindFilter:
		if len(q.Predicates) == 0 || q.Formula == nil {
			return fmt.Errorf("engine: filter query needs predicates and a formula")
		}
		for _, p := range q.Predicates {
			if p.Like != "" {
				if err := needTyped(p.Col, table.String, "LIKE"); err != nil {
					return err
				}
			} else if err := needTyped(p.Col, table.Int64, "comparison"); err != nil {
				return err
			}
		}
		for _, v := range boolexpr.Vars(q.Formula) {
			if v < 0 || v >= len(q.Predicates) {
				return fmt.Errorf("engine: formula references predicate %d of %d", v, len(q.Predicates))
			}
		}
	case KindDistinct:
		if len(q.DistinctCols) == 0 {
			return fmt.Errorf("engine: distinct query needs columns")
		}
		for _, c := range q.DistinctCols {
			if err := need(c); err != nil {
				return err
			}
		}
	case KindTopN:
		if q.N <= 0 {
			return fmt.Errorf("engine: top-n needs N > 0")
		}
		if err := needTyped(q.OrderCol, table.Int64, "ORDER BY"); err != nil {
			return err
		}
	case KindGroupByMax, KindGroupBySum:
		if err := need(q.KeyCol); err != nil {
			return err
		}
		if err := needTyped(q.AggCol, table.Int64, "aggregate"); err != nil {
			return err
		}
	case KindHaving:
		if err := need(q.KeyCol); err != nil {
			return err
		}
		if err := needTyped(q.AggCol, table.Int64, "aggregate"); err != nil {
			return err
		}
		if q.Threshold < 0 {
			return fmt.Errorf("engine: having threshold must be non-negative")
		}
	case KindJoin:
		if q.Right == nil {
			return fmt.Errorf("engine: join needs a right table")
		}
		if err := need(q.LeftKey); err != nil {
			return err
		}
		if q.Right.Schema().Index(q.RightKey) < 0 {
			return fmt.Errorf("engine: unknown right column %q", q.RightKey)
		}
	case KindSkyline:
		if len(q.SkylineCols) < 2 {
			return fmt.Errorf("engine: skyline needs at least two dimensions")
		}
		for _, c := range q.SkylineCols {
			if err := needTyped(c, table.Int64, "skyline"); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("engine: unknown query kind %d", q.Kind)
	}
	return nil
}

// Result is a canonical query result: column names plus textual rows,
// sorted for order-insensitive comparison.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Sort orders rows lexicographically, making results comparable.
func (r *Result) Sort() {
	rowKey := func(row []string) string { return strings.Join(row, "\x00") }
	sort.Slice(r.Rows, func(i, j int) bool { return rowKey(r.Rows[i]) < rowKey(r.Rows[j]) })
}

// Equal reports whether two sorted results match exactly.
func (r *Result) Equal(o *Result) bool {
	if o == nil || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Rows {
		if len(r.Rows[i]) != len(o.Rows[i]) {
			return false
		}
		for j := range r.Rows[i] {
			if r.Rows[i][j] != o.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the result compactly for examples and debugging.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, " | "))
	b.WriteByte('\n')
	for i, row := range r.Rows {
		if i >= 20 {
			fmt.Fprintf(&b, "... (%d rows total)\n", len(r.Rows))
			break
		}
		b.WriteString(strings.Join(row, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}
