// Package boolexpr implements the predicate-formula algebra behind
// Cheetah's filtering pruner (§4.1). A WHERE clause is a monotone boolean
// formula over basic predicates; predicates the switch cannot evaluate
// (string LIKE, unsupported arithmetic) are replaced by tautologies and
// the formula is reduced, yielding a weaker formula that the switch *can*
// evaluate and that never rejects an entry the original formula accepts.
//
// The reduced formula is compiled to a truth table indexed by the
// bit-vector of basic-predicate outcomes, exactly as the switch looks up
// a prune/forward decision from per-predicate ALU results.
package boolexpr

import (
	"fmt"
	"strings"
)

// Expr is a boolean formula over numbered predicate variables.
type Expr interface {
	// Eval evaluates the formula given a truth assignment for the
	// predicate variables.
	Eval(assign func(v int) bool) bool
	// String renders the formula.
	String() string
}

// Leaf references basic predicate number V.
type Leaf struct{ V int }

// Const is a boolean constant.
type Const bool

// And is a conjunction of sub-formulas.
type And []Expr

// Or is a disjunction of sub-formulas.
type Or []Expr

// Eval implements Expr.
func (l Leaf) Eval(assign func(int) bool) bool { return assign(l.V) }

// Eval implements Expr.
func (c Const) Eval(func(int) bool) bool { return bool(c) }

// Eval implements Expr.
func (a And) Eval(assign func(int) bool) bool {
	for _, e := range a {
		if !e.Eval(assign) {
			return false
		}
	}
	return true
}

// Eval implements Expr.
func (o Or) Eval(assign func(int) bool) bool {
	for _, e := range o {
		if e.Eval(assign) {
			return true
		}
	}
	return false
}

// String implements Expr.
func (l Leaf) String() string { return fmt.Sprintf("p%d", l.V) }

// String implements Expr.
func (c Const) String() string {
	if c {
		return "T"
	}
	return "F"
}

// String implements Expr.
func (a And) String() string { return joinExprs([]Expr(a), " AND ") }

// String implements Expr.
func (o Or) String() string { return joinExprs([]Expr(o), " OR ") }

func joinExprs(es []Expr, sep string) string {
	if len(es) == 0 {
		return "()"
	}
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Vars returns the sorted set of predicate variables appearing in e.
func Vars(e Expr) []int {
	set := map[int]bool{}
	collectVars(e, set)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	// Insertion sort: variable sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func collectVars(e Expr, set map[int]bool) {
	switch x := e.(type) {
	case Leaf:
		set[x.V] = true
	case And:
		for _, k := range x {
			collectVars(k, set)
		}
	case Or:
		for _, k := range x {
			collectVars(k, set)
		}
	}
}

// Simplify performs constant folding and flattening:
// AND(T,x) → x, OR(F,x) → x, AND(F,…) → F, OR(T,…) → T, unary nodes
// collapse, and nested same-kind nodes are flattened.
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case Leaf, Const:
		return e
	case And:
		kids := make([]Expr, 0, len(x))
		for _, k := range x {
			s := Simplify(k)
			switch sk := s.(type) {
			case Const:
				if !bool(sk) {
					return Const(false)
				}
				// drop T
			case And:
				kids = append(kids, sk...)
			default:
				kids = append(kids, s)
			}
		}
		switch len(kids) {
		case 0:
			return Const(true)
		case 1:
			return kids[0]
		}
		return And(kids)
	case Or:
		kids := make([]Expr, 0, len(x))
		for _, k := range x {
			s := Simplify(k)
			switch sk := s.(type) {
			case Const:
				if bool(sk) {
					return Const(true)
				}
				// drop F
			case Or:
				kids = append(kids, sk...)
			default:
				kids = append(kids, s)
			}
		}
		switch len(kids) {
		case 0:
			return Const(false)
		case 1:
			return kids[0]
		}
		return Or(kids)
	default:
		return e
	}
}

// Decompose implements the paper's query decomposition: every predicate
// variable for which supported returns false is replaced by the tautology
// (T ∨ F) ≡ T, and the result is reduced. For the monotone formulas this
// package represents (AND/OR over positive predicates), the returned
// formula is implied by the original: any entry satisfying the original
// satisfies the decomposition, so pruning with it is always safe. The
// residual predicates (the unsupported ones) must still be checked by the
// master.
func Decompose(e Expr, supported func(v int) bool) (switchExpr Expr, residualVars []int) {
	repl := replaceUnsupported(e, supported)
	sw := Simplify(repl)
	var residual []int
	for _, v := range Vars(e) {
		if !supported(v) {
			residual = append(residual, v)
		}
	}
	return sw, residual
}

func replaceUnsupported(e Expr, supported func(int) bool) Expr {
	switch x := e.(type) {
	case Leaf:
		if supported(x.V) {
			return x
		}
		return Const(true)
	case Const:
		return x
	case And:
		out := make(And, len(x))
		for i, k := range x {
			out[i] = replaceUnsupported(k, supported)
		}
		return out
	case Or:
		out := make(Or, len(x))
		for i, k := range x {
			out[i] = replaceUnsupported(k, supported)
		}
		return out
	default:
		return e
	}
}

// MaxTruthTableVars bounds the truth-table width: the switch encodes the
// predicate outcomes as a metadata bit-vector and a 2^n-entry table is
// installed via the control plane; the prototype uses at most 16
// predicates per query.
const MaxTruthTableVars = 16

// TruthTable is the compiled prune/forward lookup: bit i of the index is
// the outcome of the i-th listed predicate.
type TruthTable struct {
	vars  []int
	table []uint64 // bitset of 2^len(vars) outcomes
}

// Compile builds the truth table of e over the given variable ordering.
// Every variable of e must appear in vars (extra vars are allowed and
// become don't-cares).
func Compile(e Expr, vars []int) (*TruthTable, error) {
	if len(vars) > MaxTruthTableVars {
		return nil, fmt.Errorf("boolexpr: %d variables exceed truth-table limit %d", len(vars), MaxTruthTableVars)
	}
	pos := map[int]int{}
	for i, v := range vars {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("boolexpr: duplicate variable p%d", v)
		}
		pos[v] = i
	}
	for _, v := range Vars(e) {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("boolexpr: formula variable p%d missing from ordering", v)
		}
	}
	n := len(vars)
	size := 1 << n
	tt := &TruthTable{
		vars:  append([]int(nil), vars...),
		table: make([]uint64, (size+63)/64),
	}
	for idx := 0; idx < size; idx++ {
		ok := e.Eval(func(v int) bool {
			return idx&(1<<pos[v]) != 0
		})
		if ok {
			tt.table[idx>>6] |= 1 << (idx & 63)
		}
	}
	return tt, nil
}

// NumVars returns the truth table's width.
func (t *TruthTable) NumVars() int { return len(t.vars) }

// Vars returns the variable ordering (bit i of a lookup index is the
// outcome of predicate Vars()[i]).
func (t *TruthTable) Vars() []int { return t.vars }

// Lookup returns the formula outcome for the predicate bit-vector idx.
func (t *TruthTable) Lookup(idx uint32) bool {
	return t.table[idx>>6]&(1<<(idx&63)) != 0
}

// Entries returns the number of table entries (2^NumVars), the quantity
// that counts against switch SRAM.
func (t *TruthTable) Entries() int { return 1 << len(t.vars) }
