package boolexpr

import (
	"testing"
	"testing/quick"
)

// paperFormula is the running example from §4.1:
// (taste > 5) OR (texture > 4 AND name LIKE e%s)
// with p0 = taste>5, p1 = texture>4, p2 = name LIKE e%s.
func paperFormula() Expr {
	return Or{Leaf{0}, And{Leaf{1}, Leaf{2}}}
}

func TestEval(t *testing.T) {
	e := paperFormula()
	cases := []struct {
		assign [3]bool
		want   bool
	}{
		{[3]bool{false, false, false}, false},
		{[3]bool{true, false, false}, true},
		{[3]bool{false, true, false}, false},
		{[3]bool{false, true, true}, true},
		{[3]bool{false, false, true}, false},
		{[3]bool{true, true, true}, true},
	}
	for _, c := range cases {
		got := e.Eval(func(v int) bool { return c.assign[v] })
		if got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.assign, got, c.want)
		}
	}
}

func TestConstEval(t *testing.T) {
	if !Const(true).Eval(nil) || Const(false).Eval(nil) {
		t.Fatal("const eval broken")
	}
	if (And{}).Eval(nil) != true {
		t.Fatal("empty AND should be true")
	}
	if (Or{}).Eval(nil) != false {
		t.Fatal("empty OR should be false")
	}
}

func TestString(t *testing.T) {
	e := paperFormula()
	if got := e.String(); got != "(p0 OR (p1 AND p2))" {
		t.Fatalf("String = %q", got)
	}
	if Const(true).String() != "T" || Const(false).String() != "F" {
		t.Fatal("const strings")
	}
}

func TestVars(t *testing.T) {
	e := Or{Leaf{3}, And{Leaf{1}, Leaf{3}, Const(true)}}
	got := Vars(e)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Vars = %v", got)
	}
	if len(Vars(Const(true))) != 0 {
		t.Fatal("const has no vars")
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{And{Const(true), Leaf{0}}, "p0"},
		{And{Const(false), Leaf{0}}, "F"},
		{Or{Const(true), Leaf{0}}, "T"},
		{Or{Const(false), Leaf{0}}, "p0"},
		{And{And{Leaf{0}, Leaf{1}}, Leaf{2}}, "(p0 AND p1 AND p2)"},
		{Or{Or{Leaf{0}}, Leaf{1}}, "(p0 OR p1)"},
		{And{}, "T"},
		{Or{}, "F"},
		{And{Or{Const(false)}}, "F"},
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	// Property: simplification never changes the function.
	f := func(bits uint8, shape uint8) bool {
		e := buildExpr(int(shape), 0)
		s := Simplify(e)
		assign := func(v int) bool { return bits&(1<<(v%8)) != 0 }
		return e.Eval(assign) == s.Eval(assign)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// buildExpr deterministically builds a small formula from a shape seed.
func buildExpr(shape, depth int) Expr {
	if depth > 2 {
		return Leaf{shape % 5}
	}
	switch shape % 4 {
	case 0:
		return Leaf{shape % 5}
	case 1:
		return Const(shape%2 == 0)
	case 2:
		return And{buildExpr(shape/2, depth+1), buildExpr(shape/3+1, depth+1)}
	default:
		return Or{buildExpr(shape/2, depth+1), buildExpr(shape/3+1, depth+1)}
	}
}

func TestDecomposePaperExample(t *testing.T) {
	// Paper: replacing the LIKE predicate (p2) with T reduces
	// (p0 OR (p1 AND p2)) to (p0 OR p1).
	sw, residual := Decompose(paperFormula(), func(v int) bool { return v != 2 })
	if got := sw.String(); got != "(p0 OR p1)" {
		t.Fatalf("switch formula = %s, want (p0 OR p1)", got)
	}
	if len(residual) != 1 || residual[0] != 2 {
		t.Fatalf("residual = %v", residual)
	}
}

func TestDecomposeAllSupported(t *testing.T) {
	sw, residual := Decompose(paperFormula(), func(int) bool { return true })
	if sw.String() != paperFormula().String() {
		t.Fatalf("formula changed: %s", sw)
	}
	if len(residual) != 0 {
		t.Fatalf("residual = %v", residual)
	}
}

func TestDecomposeNothingSupported(t *testing.T) {
	sw, residual := Decompose(paperFormula(), func(int) bool { return false })
	if c, ok := sw.(Const); !ok || !bool(c) {
		t.Fatalf("expected T, got %s", sw)
	}
	if len(residual) != 3 {
		t.Fatalf("residual = %v", residual)
	}
}

func TestDecomposeIsSafeOverapproximation(t *testing.T) {
	// Core safety property (monotone formulas): for every assignment, if
	// the original formula accepts, the decomposed formula accepts too —
	// i.e. the switch never prunes an entry the query wants.
	f := func(bits uint8, shape uint8, supportMask uint8) bool {
		e := buildExpr(int(shape), 0)
		supported := func(v int) bool { return supportMask&(1<<(v%8)) != 0 }
		sw, _ := Decompose(e, supported)
		assign := func(v int) bool { return bits&(1<<(v%8)) != 0 }
		if e.Eval(assign) && !sw.Eval(assign) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompileTruthTable(t *testing.T) {
	e := paperFormula()
	tt, err := Compile(e, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumVars() != 3 || tt.Entries() != 8 {
		t.Fatalf("dims: vars=%d entries=%d", tt.NumVars(), tt.Entries())
	}
	for idx := uint32(0); idx < 8; idx++ {
		want := e.Eval(func(v int) bool { return idx&(1<<v) != 0 })
		if got := tt.Lookup(idx); got != want {
			t.Errorf("Lookup(%03b) = %v, want %v", idx, got, want)
		}
	}
}

func TestCompileWithDontCares(t *testing.T) {
	// Extra variables in the ordering act as don't-cares.
	e := Expr(Leaf{0})
	tt, err := Compile(e, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Lookup(0b01) || !tt.Lookup(0b11) || tt.Lookup(0b00) || tt.Lookup(0b10) {
		t.Fatal("don't-care handling wrong")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(Leaf{9}, []int{0}); err == nil {
		t.Fatal("missing variable accepted")
	}
	if _, err := Compile(Leaf{0}, []int{0, 0}); err == nil {
		t.Fatal("duplicate variable accepted")
	}
	tooMany := make([]int, MaxTruthTableVars+1)
	for i := range tooMany {
		tooMany[i] = i
	}
	if _, err := Compile(Const(true), tooMany); err == nil {
		t.Fatal("oversized table accepted")
	}
}

func TestCompileMatchesEvalProperty(t *testing.T) {
	f := func(shape uint8, idx uint16) bool {
		e := buildExpr(int(shape), 0)
		vars := []int{0, 1, 2, 3, 4}
		tt, err := Compile(e, vars)
		if err != nil {
			return false
		}
		i := uint32(idx) % uint32(tt.Entries())
		want := e.Eval(func(v int) bool { return i&(1<<v) != 0 })
		return tt.Lookup(i) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruthTableVarsAccessor(t *testing.T) {
	tt, _ := Compile(Leaf{2}, []int{2, 7})
	vs := tt.Vars()
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 7 {
		t.Fatalf("Vars = %v", vs)
	}
}

func BenchmarkTruthTableLookup(b *testing.B) {
	e := Or{Leaf{0}, And{Leaf{1}, Leaf{2}}, And{Leaf{3}, Or{Leaf{4}, Leaf{5}}}}
	tt, _ := Compile(e, []int{0, 1, 2, 3, 4, 5})
	b.ReportAllocs()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = tt.Lookup(uint32(i) & 63)
	}
	_ = sink
}
