package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/serve"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// stubProg is a minimal program with a configurable footprint.
type stubProg struct{ prof switchsim.Profile }

func (p stubProg) Profile() switchsim.Profile          { return p.prof }
func (p stubProg) Process([]uint64) switchsim.Decision { return switchsim.Forward }
func (p stubProg) Reset()                              {}

// tinyModel is a switch with 3 usable stages (3 reserved), no
// recirculation — small enough that one 3-stage program fills it.
func tinyModel() switchsim.Model {
	return switchsim.Model{
		Name:             "tiny",
		Stages:           6,
		ALUsPerStage:     4,
		SRAMPerStageBits: 1 << 20,
		TCAMEntries:      1000,
		MetadataBits:     512,
		Recirculation:    1,
	}
}

// prog returns a stub consuming `stages` full stages' worth of ALUs.
func prog(stages int) stubProg {
	return stubProg{prof: switchsim.Profile{Name: "stub", Stages: stages, ALUs: 4 * stages}}
}

func TestAdmitSpreadsLeastLoaded(t *testing.T) {
	f, err := New(Options{Switches: 3, Model: tinyModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seen := map[int]int{}
	var leases []*Placement
	for i := 0; i < 3; i++ {
		p, err := f.Admit(context.Background(), prog(1))
		if err != nil {
			t.Fatal(err)
		}
		seen[p.Switch]++
		leases = append(leases, p)
	}
	// With equal load the tie breaks by index, so three admissions land
	// on three distinct switches.
	for i := 0; i < 3; i++ {
		if seen[i] != 1 {
			t.Fatalf("placement skew: %v", seen)
		}
	}
	for _, p := range leases {
		p.Release()
	}
}

func TestAdmitFallsBackToLeastContendedQueue(t *testing.T) {
	f, err := New(Options{Switches: 2, Model: tinyModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Fill both switches completely.
	a, err := f.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Switch == b.Switch {
		t.Fatalf("both full-switch programs on switch %d", a.Switch)
	}
	// Next admission must queue; releasing a switch should grant it.
	done := make(chan *Placement, 1)
	go func() {
		p, err := f.Admit(context.Background(), prog(3))
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- p
	}()
	// Wait until it is queued somewhere, then release that switch.
	var queuedAt int
	for {
		stats := f.Stats()
		queuedAt = -1
		for i, st := range stats {
			if st.Queued > 0 {
				queuedAt = i
			}
		}
		if queuedAt >= 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if queuedAt == a.Switch {
		a.Release()
	} else {
		b.Release()
	}
	p := <-done
	if p == nil {
		t.Fatal("queued admission failed")
	}
	if p.Switch != queuedAt {
		t.Fatalf("granted on switch %d, queued on %d", p.Switch, queuedAt)
	}
	p.Release()
	if queuedAt == a.Switch {
		b.Release()
	} else {
		a.Release()
	}
}

func TestAdmitNeverFitsAndClosed(t *testing.T) {
	f, err := New(Options{Switches: 2, Model: tinyModel()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(context.Background(), prog(4)); !errors.Is(err, serve.ErrNeverFits) {
		t.Fatalf("oversized program: got %v, want ErrNeverFits", err)
	}
	f.Close()
	f.Close() // idempotent
	if _, err := f.Admit(context.Background(), prog(1)); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("closed fabric: got %v, want ErrClosed", err)
	}
}

func TestAdmitShardsRollbackOnFailure(t *testing.T) {
	f, err := New(Options{Switches: 3, Model: tinyModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Program 1 can never fit, so the scatter fails after switch 0's
	// grant — which must be rolled back.
	_, err = f.AdmitShards(context.Background(), []switchsim.Program{prog(1), prog(4), prog(1)})
	if !errors.Is(err, serve.ErrNeverFits) {
		t.Fatalf("got %v, want ErrNeverFits", err)
	}
	for i, u := range f.Utilization() {
		if u.ALUsUsed != 0 {
			t.Fatalf("switch %d leaked resources after rollback: %v", i, u)
		}
	}
	// More programs than switches errors descriptively.
	if _, err := f.AdmitShards(context.Background(), []switchsim.Program{prog(1), prog(1), prog(1), prog(1)}); err == nil {
		t.Fatal("program/switch count overflow: want error")
	}
	// Fewer shards than switches is fine: round-robin from switch 0.
	narrow, err := f.AdmitShards(context.Background(), []switchsim.Program{prog(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) != 1 || narrow[0].Switch != 0 {
		t.Fatalf("single-shard scatter placed %+v, want switch 0", narrow)
	}
	narrow[0].Release()
	// A full scatter admits one program per switch.
	leases, err := f.AdmitShards(context.Background(), []switchsim.Program{prog(1), prog(1), prog(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range f.Utilization() {
		if u.ALUsUsed != 4 {
			t.Fatalf("switch %d utilization %v, want 4 ALUs", i, u)
		}
	}
	for _, l := range leases {
		l.Release()
	}
}

// TestAdmitShardsRollbackOnSwitchFailure is the mid-sequence failure
// variant: a shard queued on a switch that then dies — with no
// survivors left — must roll the earlier grants back without leaking
// programs, and releasing a revoked lease must be a harmless no-op.
func TestAdmitShardsRollbackOnSwitchFailure(t *testing.T) {
	f, err := New(Options{Switches: 2, Model: tinyModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Fill switch 1 so the scatter's second shard has to queue there.
	blocker, err := f.Server(1).TryAdmit(prog(3))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := f.AdmitShards(context.Background(), []switchsim.Program{prog(1), prog(1)})
		errc <- err
	}()
	for f.Server(1).Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	// Kill switch 0 first (revoking shard 0's already-granted lease),
	// then switch 1: the queued shard fails, no survivors remain, and
	// AdmitShards must give up and roll back.
	f.Fail(0)
	f.Fail(1)
	if err := <-errc; !errors.Is(err, serve.ErrFailed) {
		t.Fatalf("scatter across a dead fabric: got %v, want ErrFailed", err)
	}
	st := f.Stats()
	if st[0].Active != 0 || st[0].Revoked != 1 {
		t.Fatalf("switch 0 after failure: %+v, want 0 active / 1 revoked", st[0])
	}
	blocker.Release() // revoked: must be a no-op, not a panic
	// Restore both switches: the same scatter must now succeed cleanly.
	if err := f.Restore(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Restore(1); err != nil {
		t.Fatal(err)
	}
	placements, err := f.AdmitShards(context.Background(), []switchsim.Program{prog(1), prog(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placements {
		p.Release()
	}
	for i, u := range f.Utilization() {
		if u.ALUsUsed != 0 {
			t.Fatalf("switch %d leaked resources after restore cycle: %v", i, u)
		}
	}
}

// TestFabricFailureLifecycle drives Fail/Restore/Add through the
// placement paths: placement routes around dead switches, a fully dead
// fabric fails with the direct-execution cue, and restored or added
// switches rejoin the rotation.
func TestFabricFailureLifecycle(t *testing.T) {
	f, err := New(Options{Switches: 3, Model: tinyModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Fail(1)
	if got := f.Healthy(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Healthy() = %v, want [0 2]", got)
	}
	for i := 0; i < 4; i++ {
		p, err := f.Admit(context.Background(), prog(1))
		if err != nil {
			t.Fatal(err)
		}
		if p.Switch == 1 {
			t.Fatal("placed a query on a failed switch")
		}
		p.Release()
	}
	f.Fail(0)
	f.Fail(2)
	if _, err := f.Admit(context.Background(), prog(1)); !errors.Is(err, serve.ErrFailed) {
		t.Fatalf("fully dead fabric: got %v, want ErrFailed", err)
	}
	if err := f.Restore(1); err != nil {
		t.Fatal(err)
	}
	p, err := f.Admit(context.Background(), prog(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Switch != 1 {
		t.Fatalf("placed on switch %d, want the restored switch 1", p.Switch)
	}
	p.Release()
	idx, err := f.Add()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 || f.Size() != 4 {
		t.Fatalf("Add() = %d (size %d), want index 3 of 4", idx, f.Size())
	}
	// Occupy the restored switch so the fresh one is least-loaded.
	hold, err := f.Admit(context.Background(), prog(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err = f.Admit(context.Background(), prog(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Switch != idx {
		t.Fatalf("placed on switch %d, want the added switch %d", p.Switch, idx)
	}
	p.Release()
	hold.Release()
	if got := f.Metrics().Total("revoked"); got != 0 {
		t.Fatalf("revoked metric = %d, want 0 (no active leases died)", got)
	}
}

func TestFabricConcurrentChurn(t *testing.T) {
	f, err := New(Options{Switches: 4, Model: tinyModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const goroutines = 16
	const perG = 25
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p, err := f.Admit(context.Background(), prog(1+(g+i)%3))
				if err != nil {
					t.Errorf("admit: %v", err)
					return
				}
				p.Release()
			}
		}(g)
	}
	wg.Wait()
	admitted := uint64(0)
	for _, st := range f.Stats() {
		admitted += st.Admitted
		if st.Active != 0 || st.Queued != 0 {
			t.Fatalf("leftover load after churn: %+v", st)
		}
	}
	if admitted != goroutines*perG {
		t.Fatalf("admitted %d, want %d", admitted, goroutines*perG)
	}
	for i, u := range f.Utilization() {
		if u.ALUsUsed != 0 {
			t.Fatalf("switch %d leaked resources: %v", i, u)
		}
	}
}

// TestScatterGatherThroughFabricLeases wires the full multi-switch
// dataplane: per-shard programs are admitted into real pipelines via
// AdmitShards and the engine executes each shard through its lease —
// the result must still be exactly ExecDirect's.
func TestScatterGatherThroughFabricLeases(t *testing.T) {
	tb := table.MustNew(table.Schema{
		{Name: "name", Type: table.String},
		{Name: "score", Type: table.Int64},
	})
	s := uint64(7)
	for i := 0; i < 4000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		if err := tb.AppendRow(fmt.Sprintf("u%03d", s%300), int64(s%100_000)); err != nil {
			t.Fatal(err)
		}
	}
	queries := map[string]*engine.Query{
		"distinct": {Kind: engine.KindDistinct, Table: tb, DistinctCols: []string{"name"}},
		"topn":     {Kind: engine.KindTopN, Table: tb, OrderCol: "score", N: 40},
		"filter": {
			Kind:       engine.KindFilter,
			Table:      tb,
			Predicates: []engine.FilterPred{{Col: "score", Op: prune.OpGT, Const: 50_000}},
			Formula:    boolexpr.Leaf{V: 0},
		},
	}
	const switches = 4
	f, err := New(Options{Switches: switches})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for name, q := range queries {
		direct, err := engine.ExecDirect(q)
		if err != nil {
			t.Fatal(err)
		}
		pruners := make([]prune.Pruner, switches)
		progs := make([]switchsim.Program, switches)
		for i := range pruners {
			p, err := engine.DefaultPruner(q, 11)
			if err != nil {
				t.Fatal(err)
			}
			pruners[i] = p
			progs[i] = p
		}
		leases, err := f.AdmitShards(context.Background(), progs)
		if err != nil {
			t.Fatal(err)
		}
		flows := make([]engine.BatchDataplane, switches)
		for i, l := range leases {
			flows[i] = l
		}
		run, err := engine.ExecSharded(q, engine.ShardedOptions{
			Shards: switches, Workers: 2, Seed: 11, Pruners: pruners, Flows: flows,
		})
		for _, l := range leases {
			l.Release()
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !run.Result.Equal(direct) {
			t.Fatalf("%s through fabric leases: results diverge\ndirect:\n%s\nsharded:\n%s", name, direct, run.Result)
		}
	}
	for i, u := range f.Utilization() {
		if u.ALUsUsed != 0 || u.SRAMBitsUsed != 0 {
			t.Fatalf("switch %d leaked resources: %v", i, u)
		}
	}
}
