// Package fabric is Cheetah's multi-switch execution fabric: N
// simulated switch pipelines, each fronted by its own serving layer
// (admission + QueryID multiplexing), behind one placement interface.
// The paper's deployment is a distributed database where every rack's
// ToR switch prunes its own workers' streams; a Fabric is that set of
// ToR switches as one control-plane object.
//
// Two usage shapes map onto it:
//
//   - Query placement (serving): each concurrent query runs whole on
//     one switch. Admit picks the least-loaded switch first and, when
//     every switch is busy, joins the FIFO queue of the least-contended
//     one — aggregate serving throughput scales with switch count.
//   - Scatter/gather (scale-out): one query is sharded across the
//     healthy switches. AdmitShards places one program per shard and
//     the engine's ExecSharded streams each shard through its own
//     lease.
//
// The fabric also owns the switch failure lifecycle (§7.2): Fail(i)
// kills a switch (its serving layer revokes leases and sheds waiters),
// Restore(i) reboots it with an empty pipeline, and Add grows the
// fabric with a fresh switch. Placement routes around failed switches;
// when every switch is dead, admission fails with serve.ErrFailed and
// callers fall back to exact direct execution — the servers are the
// exactness backstop, so switch loss costs performance, never
// correctness.
//
// Placement is deliberately simple and deterministic given a load
// snapshot; adaptive placement (Cuttlefish-style learned policies) can
// swap in behind the same Admit signature.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"cheetah/internal/serve"
	"cheetah/internal/stats"
	"cheetah/internal/switchsim"
)

// Options configures a fabric.
type Options struct {
	// Switches is the pipeline count; ≤ 0 selects 1.
	Switches int
	// Model is the hardware model every switch simulates. The zero
	// value selects switchsim.Tofino(). Fabrics are homogeneous — the
	// paper's racks deploy identical ToR switches.
	Model switchsim.Model
	// QueueLimit caps each switch's admission wait queue (0 =
	// unbounded); admissions beyond every queue's cap shed load.
	QueueLimit int
	// TenantQuota caps any one tenant's concurrently active leases per
	// switch (0 = unlimited); see serve.Options.TenantQuota.
	TenantQuota int
	// Metrics, when non-nil, is the registry every switch's serving
	// layer records into — pass one registry to aggregate several
	// fabrics (or a whole server) into a single exposition endpoint.
	// Nil creates a fabric-private registry.
	Metrics *stats.Registry
}

// Fabric owns N per-switch serving layers. All methods are safe for
// concurrent use.
type Fabric struct {
	mu          sync.RWMutex
	servers     []*serve.Server
	model       switchsim.Model
	queueLimit  int
	tenantQuota int
	metrics     *stats.Registry
}

// New builds a fabric of opts.Switches fresh pipelines.
func New(opts Options) (*Fabric, error) {
	if opts.Switches <= 0 {
		opts.Switches = 1
	}
	if opts.Model.Stages == 0 {
		opts.Model = switchsim.Tofino()
	}
	if opts.Metrics == nil {
		opts.Metrics = stats.NewRegistry()
	}
	f := &Fabric{
		model:       opts.Model,
		queueLimit:  opts.QueueLimit,
		tenantQuota: opts.TenantQuota,
		metrics:     opts.Metrics,
	}
	for i := 0; i < opts.Switches; i++ {
		srv, err := f.newServer(i)
		if err != nil {
			return nil, err
		}
		f.servers = append(f.servers, srv)
	}
	return f, nil
}

// newServer builds switch i's serving layer wired to the shared metrics
// registry.
func (f *Fabric) newServer(i int) (*serve.Server, error) {
	return serve.New(serve.Options{
		Model:       f.model,
		QueueLimit:  f.queueLimit,
		TenantQuota: f.tenantQuota,
		Metrics:     f.metrics,
		Label:       strconv.Itoa(i),
	})
}

// snapshot returns the current server list. Servers are only ever
// appended (switch indices are stable for the fabric's lifetime), so
// the returned slice is safe to iterate without the lock.
func (f *Fabric) snapshot() []*serve.Server {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.servers
}

// Size returns the switch count.
func (f *Fabric) Size() int { return len(f.snapshot()) }

// Model returns the per-switch hardware model.
func (f *Fabric) Model() switchsim.Model { return f.model }

// Metrics returns the fabric-wide operational-counters registry shared
// by every switch's serving layer (series are labeled by switch index
// and tenant).
func (f *Fabric) Metrics() *stats.Registry { return f.metrics }

// Server returns switch i's serving layer, for direct (per-switch)
// control-plane access.
func (f *Fabric) Server(i int) *serve.Server { return f.snapshot()[i] }

// Stats returns each switch's serving counters, indexed by switch.
func (f *Fabric) Stats() []serve.Counters {
	servers := f.snapshot()
	out := make([]serve.Counters, len(servers))
	for i, s := range servers {
		out[i] = s.Stats()
	}
	return out
}

// Utilization returns each switch's pipeline occupancy, indexed by
// switch.
func (f *Fabric) Utilization() []switchsim.Utilization {
	servers := f.snapshot()
	out := make([]switchsim.Utilization, len(servers))
	for i, s := range servers {
		out[i] = s.Utilization()
	}
	return out
}

// Fail kills switch i: active leases are revoked, queued admissions
// fail, and the switch stops pruning (a dead pipeline forwards
// everything). Out-of-range indices are a no-op.
func (f *Fabric) Fail(i int) {
	servers := f.snapshot()
	if i < 0 || i >= len(servers) {
		return
	}
	servers[i].Fail()
}

// Restore reboots failed switch i with a fresh, empty pipeline.
// Standing programs that lived there must be re-admitted by their
// owners. Out-of-range indices are a no-op.
func (f *Fabric) Restore(i int) error {
	servers := f.snapshot()
	if i < 0 || i >= len(servers) {
		return nil
	}
	return servers[i].Restore()
}

// Failed reports whether switch i is currently failed.
func (f *Fabric) Failed(i int) bool {
	servers := f.snapshot()
	if i < 0 || i >= len(servers) {
		return true
	}
	return servers[i].Failed()
}

// Add grows the fabric by one fresh switch and returns its index.
// Existing placements are untouched; subsequent admissions see the new
// capacity.
func (f *Fabric) Add() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := len(f.servers)
	srv, err := f.newServer(i)
	if err != nil {
		return 0, err
	}
	f.servers = append(f.servers, srv)
	return i, nil
}

// Healthy returns the indices of the currently non-failed switches, in
// ascending order.
func (f *Fabric) Healthy() []int {
	servers := f.snapshot()
	out := make([]int, 0, len(servers))
	for i, s := range servers {
		if !s.Failed() {
			out = append(out, i)
		}
	}
	return out
}

// Placement is one admitted query's hold on the fabric: the lease plus
// the switch it landed on.
type Placement struct {
	*serve.Lease
	// Switch is the index of the pipeline the query was placed on.
	Switch int
}

// sortedBy returns the switch indices ordered ascending by less over
// the load snapshot (insertion sort: fabrics are a handful of racks).
// Ties break toward the lower index for determinism.
func sortedBy(stats []serve.Counters, less func(a, b serve.Counters) bool) []int {
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(stats[order[j]], stats[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Admit places one query's program on the fabric with default QoS. See
// AdmitQoS.
func (f *Fabric) Admit(ctx context.Context, prog switchsim.Program) (*Placement, error) {
	return f.AdmitQoS(ctx, prog, serve.QoS{})
}

// TryAdmit places prog on the least-loaded healthy switch without
// blocking, with default QoS. See TryAdmitQoS.
func (f *Fabric) TryAdmit(prog switchsim.Program) (*Placement, error) {
	return f.TryAdmitQoS(prog, serve.QoS{})
}

// TryAdmitQoS places one query's program on the fabric without
// blocking: healthy switches are tried in ascending load order (active
// leases, then queue depth, then index for determinism) with
// non-blocking admission. serve.ErrBusy is returned when every healthy
// switch is at capacity right now, serve.ErrFailed only when every
// switch is dead; ErrNeverFits and ErrClosed propagate. Failover paths
// use this shape — a dead standing program must move to a survivor
// immediately or fall back to exact execution, never wait in a queue
// behind other queries.
func (f *Fabric) TryAdmitQoS(prog switchsim.Program, qos serve.QoS) (*Placement, error) {
	if prog == nil {
		return nil, fmt.Errorf("fabric: Admit needs a program")
	}
	servers := f.snapshot()
	stats := make([]serve.Counters, len(servers))
	for i, s := range servers {
		stats[i] = s.Stats()
	}
	// Least-loaded first: fewest active leases, breaking ties toward the
	// shorter queue.
	var lastErr error = serve.ErrFailed
	for _, i := range sortedBy(stats, func(a, b serve.Counters) bool {
		if a.Active != b.Active {
			return a.Active < b.Active
		}
		return a.Queued < b.Queued
	}) {
		l, err := servers[i].TryAdmitQoS(prog, qos)
		if err == nil {
			return &Placement{Lease: l, Switch: i}, nil
		}
		// Failed switches are routed around; every survivor is still a
		// candidate.
		if errors.Is(err, serve.ErrFailed) {
			continue
		}
		lastErr = err
		// A program the model can never host fails on every identical
		// switch, and a closed server means the fabric is closing.
		if !errors.Is(err, serve.ErrBusy) {
			return nil, err
		}
	}
	return nil, lastErr
}

// AdmitQoS places one query's program on the fabric: the non-blocking
// TryAdmitQoS sweep first; when every switch is busy the call joins the
// wait queue of the least-contended healthy switch (shortest queue,
// then fewest active, then lowest index), retrying the
// next-least-contended queue when one is at its cap or dies while
// waiting. ErrNeverFits and ErrClosed propagate from the serving layer;
// ErrQueueFull is returned only when every healthy switch's queue is at
// its cap; serve.ErrFailed only when every switch is dead — the
// caller's cue to run the query exactly without pruning (§7.2).
func (f *Fabric) AdmitQoS(ctx context.Context, prog switchsim.Program, qos serve.QoS) (*Placement, error) {
	if p, err := f.TryAdmitQoS(prog, qos); err == nil || !errors.Is(err, serve.ErrBusy) {
		return p, err
	}
	servers := f.snapshot()
	stats := make([]serve.Counters, len(servers))
	for i, s := range servers {
		stats[i] = s.Stats()
	}
	var lastErr error = serve.ErrFailed
	// Everyone is busy: wait on the least-contended switch, falling
	// through to the next-least-contended instead of shedding while some
	// switch still has queue capacity (or if the one we queued on dies).
	for _, i := range sortedBy(stats, func(a, b serve.Counters) bool {
		if a.Queued != b.Queued {
			return a.Queued < b.Queued
		}
		return a.Active < b.Active
	}) {
		l, err := servers[i].AdmitQoS(ctx, prog, qos)
		if err == nil {
			return &Placement{Lease: l, Switch: i}, nil
		}
		if errors.Is(err, serve.ErrFailed) {
			continue
		}
		lastErr = err
		if !errors.Is(err, serve.ErrQueueFull) {
			return nil, err
		}
	}
	return nil, lastErr
}

// AdmitShards places one program per shard for a scatter/gather
// execution — progs[i] on the i-th healthy switch, wrapping round-robin
// when shards outnumber survivors (with all switches healthy and one
// program per switch this is the identity placement progs[i] → switch
// i). Admission waits FIFO on each switch as needed; a switch that dies
// mid-sequence is dropped from the rotation and the shard retries on
// the survivors. On any terminal failure the already-granted leases are
// released, so a partially admitted scatter never leaks programs. When
// no switch is healthy, fails with serve.ErrFailed.
func (f *Fabric) AdmitShards(ctx context.Context, progs []switchsim.Program) ([]*Placement, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("fabric: AdmitShards needs at least one program")
	}
	if n := f.Size(); len(progs) > n {
		return nil, fmt.Errorf("fabric: got %d programs for %d switches", len(progs), n)
	}
	placements := make([]*Placement, len(progs))
	rollback := func(k int) {
		for _, p := range placements[:k] {
			if p != nil {
				p.Release()
			}
		}
	}
	healthy := f.Healthy()
	for i, prog := range progs {
		var placed *Placement
		// Bounded retry: each ErrFailed removes at least one switch from
		// the rotation, so Size() attempts cover the worst case.
		for attempt := 0; attempt <= f.Size() && placed == nil; attempt++ {
			if len(healthy) == 0 {
				rollback(i)
				return nil, fmt.Errorf("fabric: shard %d: %w", i, serve.ErrFailed)
			}
			sw := healthy[i%len(healthy)]
			l, err := f.Server(sw).Admit(ctx, prog)
			switch {
			case err == nil:
				placed = &Placement{Lease: l, Switch: sw}
			case errors.Is(err, serve.ErrFailed):
				// The switch died between the health check and admission:
				// recompute the survivor set and retry this shard.
				healthy = f.Healthy()
			default:
				rollback(i)
				return nil, fmt.Errorf("fabric: switch %d: %w", sw, err)
			}
		}
		if placed == nil {
			rollback(i)
			return nil, fmt.Errorf("fabric: shard %d: %w", i, serve.ErrFailed)
		}
		placements[i] = placed
	}
	return placements, nil
}

// Close shuts every switch's serving layer down: queued admissions and
// future Admit calls fail with serve.ErrClosed. Active leases stay
// valid. Idempotent.
func (f *Fabric) Close() {
	for _, s := range f.snapshot() {
		s.Close()
	}
}
