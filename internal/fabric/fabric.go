// Package fabric is Cheetah's multi-switch execution fabric: N
// simulated switch pipelines, each fronted by its own serving layer
// (admission + QueryID multiplexing), behind one placement interface.
// The paper's deployment is a distributed database where every rack's
// ToR switch prunes its own workers' streams; a Fabric is that set of
// ToR switches as one control-plane object.
//
// Two usage shapes map onto it:
//
//   - Query placement (serving): each concurrent query runs whole on
//     one switch. Admit picks the least-loaded switch first and, when
//     every switch is busy, joins the FIFO queue of the least-contended
//     one — aggregate serving throughput scales with switch count.
//   - Scatter/gather (scale-out): one query is sharded across all N
//     switches. AdmitShards installs one program per switch and the
//     engine's ExecSharded streams each shard through its own lease.
//
// Placement is deliberately simple and deterministic given a load
// snapshot; adaptive placement (Cuttlefish-style learned policies) can
// swap in behind the same Admit signature.
package fabric

import (
	"context"
	"errors"
	"fmt"

	"cheetah/internal/serve"
	"cheetah/internal/switchsim"
)

// Options configures a fabric.
type Options struct {
	// Switches is the pipeline count; ≤ 0 selects 1.
	Switches int
	// Model is the hardware model every switch simulates. The zero
	// value selects switchsim.Tofino(). Fabrics are homogeneous — the
	// paper's racks deploy identical ToR switches.
	Model switchsim.Model
	// QueueLimit caps each switch's admission wait queue (0 =
	// unbounded); admissions beyond every queue's cap shed load.
	QueueLimit int
}

// Fabric owns N per-switch serving layers. All methods are safe for
// concurrent use.
type Fabric struct {
	servers []*serve.Server
	model   switchsim.Model
}

// New builds a fabric of opts.Switches fresh pipelines.
func New(opts Options) (*Fabric, error) {
	if opts.Switches <= 0 {
		opts.Switches = 1
	}
	if opts.Model.Stages == 0 {
		opts.Model = switchsim.Tofino()
	}
	f := &Fabric{model: opts.Model}
	for i := 0; i < opts.Switches; i++ {
		srv, err := serve.New(serve.Options{Model: opts.Model, QueueLimit: opts.QueueLimit})
		if err != nil {
			return nil, err
		}
		f.servers = append(f.servers, srv)
	}
	return f, nil
}

// Size returns the switch count.
func (f *Fabric) Size() int { return len(f.servers) }

// Model returns the per-switch hardware model.
func (f *Fabric) Model() switchsim.Model { return f.model }

// Server returns switch i's serving layer, for direct (per-switch)
// control-plane access.
func (f *Fabric) Server(i int) *serve.Server { return f.servers[i] }

// Stats returns each switch's serving counters, indexed by switch.
func (f *Fabric) Stats() []serve.Counters {
	out := make([]serve.Counters, len(f.servers))
	for i, s := range f.servers {
		out[i] = s.Stats()
	}
	return out
}

// Utilization returns each switch's pipeline occupancy, indexed by
// switch.
func (f *Fabric) Utilization() []switchsim.Utilization {
	out := make([]switchsim.Utilization, len(f.servers))
	for i, s := range f.servers {
		out[i] = s.Utilization()
	}
	return out
}

// Placement is one admitted query's hold on the fabric: the lease plus
// the switch it landed on.
type Placement struct {
	*serve.Lease
	// Switch is the index of the pipeline the query was placed on.
	Switch int
}

// sortedBy returns the switch indices ordered ascending by less over
// the load snapshot (insertion sort: fabrics are a handful of racks).
// Ties break toward the lower index for determinism.
func sortedBy(stats []serve.Counters, less func(a, b serve.Counters) bool) []int {
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(stats[order[j]], stats[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Admit places one query's program on the fabric: switches are tried in
// ascending load order (active leases, then queue depth, then index for
// determinism) with non-blocking admission; when every switch is busy
// the call joins the FIFO wait queue of the least-contended switch
// (shortest queue, then fewest active, then lowest index), retrying
// the next-least-contended queue when one is at its cap. ErrNeverFits
// and ErrClosed propagate from the serving layer; ErrQueueFull is
// returned only when every switch's queue is at its cap.
func (f *Fabric) Admit(ctx context.Context, prog switchsim.Program) (*Placement, error) {
	if prog == nil {
		return nil, fmt.Errorf("fabric: Admit needs a program")
	}
	stats := f.Stats()
	// Least-loaded first: fewest active leases, breaking ties toward the
	// shorter queue.
	var lastErr error
	for _, i := range sortedBy(stats, func(a, b serve.Counters) bool {
		if a.Active != b.Active {
			return a.Active < b.Active
		}
		return a.Queued < b.Queued
	}) {
		l, err := f.servers[i].TryAdmit(prog)
		if err == nil {
			return &Placement{Lease: l, Switch: i}, nil
		}
		lastErr = err
		// A program the model can never host fails on every identical
		// switch, and a closed server means the fabric is closing.
		if !errors.Is(err, serve.ErrBusy) {
			return nil, err
		}
	}
	// Everyone is busy: wait FIFO on the least-contended switch, falling
	// through to the next-least-contended instead of shedding while some
	// switch still has queue capacity.
	for _, i := range sortedBy(stats, func(a, b serve.Counters) bool {
		if a.Queued != b.Queued {
			return a.Queued < b.Queued
		}
		return a.Active < b.Active
	}) {
		l, err := f.servers[i].Admit(ctx, prog)
		if err == nil {
			return &Placement{Lease: l, Switch: i}, nil
		}
		lastErr = err
		if !errors.Is(err, serve.ErrQueueFull) {
			return nil, err
		}
	}
	return nil, lastErr
}

// AdmitShards installs one program per switch — progs[i] on switch i —
// for a scatter/gather execution, waiting FIFO on each switch as
// needed. On any failure the already-granted leases are released, so a
// partially admitted scatter never leaks programs.
func (f *Fabric) AdmitShards(ctx context.Context, progs []switchsim.Program) ([]*serve.Lease, error) {
	if len(progs) != len(f.servers) {
		return nil, fmt.Errorf("fabric: got %d programs for %d switches", len(progs), len(f.servers))
	}
	leases := make([]*serve.Lease, len(progs))
	for i, prog := range progs {
		l, err := f.servers[i].Admit(ctx, prog)
		if err != nil {
			for _, g := range leases[:i] {
				g.Release()
			}
			return nil, fmt.Errorf("fabric: switch %d: %w", i, err)
		}
		leases[i] = l
	}
	return leases, nil
}

// Close shuts every switch's serving layer down: queued admissions and
// future Admit calls fail with serve.ErrClosed. Active leases stay
// valid. Idempotent.
func (f *Fabric) Close() {
	for _, s := range f.servers {
		s.Close()
	}
}
