package connector

// Built-in connectors: the generator and CSV sources, the log and null
// sinks. DefaultRegistry registers all four; cheetahd exposes them via
// -source/-pipe flags.

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/hashutil"
	"cheetah/internal/table"
)

// DefaultRegistry returns a registry with the built-in connectors:
// sources "gen" (synthetic rows; args rows, batch, rate, seed) and
// "csv" (args path, batch, loop); sinks "log" (args path, "-" =
// stdout) and "null".
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.RegisterSource("gen", newGenSource)
	r.RegisterSource("csv", newCSVSource)
	r.RegisterSink("log", newLogSink)
	r.RegisterSink("null", func(map[string]string) (Sink, error) { return nullSink{}, nil })
	return r
}

// genSource synthesizes deterministic rows for any schema: Int64
// columns draw bounded values, String columns draw from a small
// vocabulary — enough cardinality structure for every pruner family to
// have work to do.
type genSource struct {
	rows  int // total rows to emit (0 = unbounded)
	batch int
	pause time.Duration // inter-batch pause derived from rate
	seed  uint64

	emitted int
}

func newGenSource(args map[string]string) (Source, error) {
	rows, err := atoiDefault(args, "rows", 0)
	if err != nil {
		return nil, err
	}
	batch, err := atoiDefault(args, "batch", 256)
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("connector: gen batch must be positive")
	}
	rate, err := atoiDefault(args, "rate", 0) // rows per second; 0 = unpaced
	if err != nil {
		return nil, err
	}
	seed, err := atoiDefault(args, "seed", 1)
	if err != nil {
		return nil, err
	}
	g := &genSource{rows: rows, batch: batch, seed: uint64(seed)}
	if rate > 0 {
		g.pause = time.Duration(float64(batch) / float64(rate) * float64(time.Second))
	}
	return g, nil
}

func (g *genSource) ReadBatch(ctx context.Context, schema table.Schema) (*table.Table, error) {
	if g.rows > 0 && g.emitted >= g.rows {
		return nil, io.EOF
	}
	if g.pause > 0 && g.emitted > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(g.pause):
		}
	}
	n := g.batch
	if g.rows > 0 && g.emitted+n > g.rows {
		n = g.rows - g.emitted
	}
	t, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	vals := make([]any, len(schema))
	for i := 0; i < n; i++ {
		row := uint64(g.emitted + i)
		for c, col := range schema {
			h := hashutil.SplitMix64(g.seed ^ row*0x9e3779b97f4a7c15 ^ uint64(c)<<32)
			if col.Type == table.Int64 {
				vals[c] = int64(h % 10_000)
			} else {
				vals[c] = fmt.Sprintf("%s-%d", col.Name, h%64)
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	g.emitted += n
	return t, nil
}

func (g *genSource) Close() error { return nil }

// csvSource reads rows from a CSV file whose columns match the served
// schema positionally (no header handling beyond "skip a first row
// that fails integer parsing on an Int64 column").
type csvSource struct {
	path  string
	batch int
	loop  bool

	mu     sync.Mutex
	f      *os.File
	r      *csv.Reader
	first  bool
	closed bool
}

func newCSVSource(args map[string]string) (Source, error) {
	path := args["path"]
	if path == "" {
		return nil, fmt.Errorf("connector: csv source needs path=")
	}
	batch, err := atoiDefault(args, "batch", 256)
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("connector: csv batch must be positive")
	}
	return &csvSource{path: path, batch: batch, loop: args["loop"] == "true", first: true}, nil
}

func (c *csvSource) open() error {
	f, err := os.Open(c.path)
	if err != nil {
		return err
	}
	c.f = f
	c.r = csv.NewReader(f)
	c.r.ReuseRecord = true
	return nil
}

func (c *csvSource) ReadBatch(ctx context.Context, schema table.Schema) (*table.Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, io.EOF
	}
	if c.f == nil {
		if err := c.open(); err != nil {
			return nil, err
		}
	}
	t, err := table.New(schema)
	if err != nil {
		return nil, err
	}
	vals := make([]any, len(schema))
	for t.NumRows() < c.batch {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		rec, err := c.r.Read()
		if err == io.EOF {
			if c.loop && t.NumRows() == 0 {
				c.f.Close()
				c.f = nil
				if err := c.open(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("connector: csv row has %d fields, schema has %d", len(rec), len(schema))
		}
		skip := false
		for i, col := range schema {
			if col.Type == table.Int64 {
				v, err := strconv.ParseInt(rec[i], 10, 64)
				if err != nil {
					if c.first {
						skip = true // header row
						break
					}
					return nil, fmt.Errorf("connector: csv field %q is not an integer", rec[i])
				}
				vals[i] = v
			} else {
				vals[i] = rec[i]
			}
		}
		c.first = false
		if skip {
			continue
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	if t.NumRows() == 0 {
		return nil, io.EOF
	}
	return t, nil
}

func (c *csvSource) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.f != nil {
		err := c.f.Close()
		c.f = nil
		return err
	}
	return nil
}

// logSink renders each standing-result refresh to a writer, one
// compact line per update.
type logSink struct {
	mu  sync.Mutex
	w   io.Writer
	f   *os.File // owned file, nil for stdout
	tag string
}

func newLogSink(args map[string]string) (Sink, error) {
	path := args["path"]
	s := &logSink{tag: args["tag"]}
	if path == "" || path == "-" {
		s.w = os.Stdout
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.w = f
	s.f = f
	return s, nil
}

func (s *logSink) Write(version uint64, res *engine.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tag := s.tag
	if tag != "" {
		tag += " "
	}
	_, err := fmt.Fprintf(s.w, "%sv%d: %d rows\n", tag, version, len(res.Rows))
	return err
}

func (s *logSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

// nullSink discards updates (load tests and drain smokes).
type nullSink struct{}

func (nullSink) Write(uint64, *engine.Result) error { return nil }
func (nullSink) Close() error                       { return nil }
