package connector

import (
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/plan"
	"cheetah/internal/table"
)

func testStreaming(t *testing.T, opts plan.StreamOptions) (*plan.Streaming, *table.Table) {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "k", Type: table.String},
		{Name: "v", Type: table.Int64},
	})
	sess, err := plan.Open(tbl, plan.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	strm, err := sess.Stream(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return strm, tbl
}

// TestFeedAndPipe wires gen → ingestor → subscription → sink and pins
// the piped standing result to a direct execution over the committed
// table.
func TestFeedAndPipe(t *testing.T) {
	strm, tbl := testStreaming(t, plan.StreamOptions{})
	rt, err := NewRuntime(strm)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	reg := DefaultRegistry()
	src, err := reg.OpenSource("gen:rows=1000,batch=100,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	sink := &captureSink{}
	q := &engine.Query{Kind: engine.KindGroupBySum, Table: tbl, KeyCol: "k", AggCol: "v"}
	sub, err := rt.Pipe(context.Background(), q, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Feed(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sub.Wait(ctx, 1000); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := rt.Err(); err != nil {
		t.Fatalf("feed error: %v", err)
	}

	// The forwarder is async behind Wait: poll until the sink caught up.
	var ver uint64
	var res *engine.Result
	for {
		ver, res = sink.last()
		if ver >= 1000 || ctx.Err() != nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ver != 1000 {
		t.Fatalf("sink saw version %d, want 1000", ver)
	}
	snap, err := tbl.SnapshotPrefix(1000)
	if err != nil {
		t.Fatal(err)
	}
	dq := *q
	dq.Table = snap
	want, err := engine.ExecDirect(&dq)
	if err != nil {
		t.Fatal(err)
	}
	want.Sort()
	got := &engine.Result{Columns: res.Columns, Rows: res.Rows}
	got.Sort()
	if !want.Equal(got) {
		t.Fatalf("piped result diverges:\nwant %v\ngot  %v", want, got)
	}
	rt.Close() // idempotent; sink must be closed exactly once
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times", sink.closes)
	}
}

// TestFeedShedBackpressure pins the Shed mapping: the pump retries shed
// batches until the subscription drains, losing nothing.
func TestFeedShedBackpressure(t *testing.T) {
	strm, tbl := testStreaming(t, plan.StreamOptions{Backlog: 64, Shed: true})
	rt, err := NewRuntime(strm)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// A subscription must exist for the backlog to bind against.
	q := &engine.Query{Kind: engine.KindDistinct, Table: tbl, DistinctCols: []string{"k"}}
	sink := &captureSink{}
	sub, err := rt.Pipe(context.Background(), q, sink)
	if err != nil {
		t.Fatal(err)
	}
	src, err := DefaultRegistry().OpenSource("gen:rows=500,batch=50")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Feed(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sub.Wait(ctx, 500); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := rt.Err(); err != nil {
		t.Fatalf("feed error (shed batches must be retried, not dropped): %v", err)
	}
	if got := strm.Version(); got != 500 {
		t.Fatalf("committed %d rows, want 500", got)
	}
}

// TestCSVSource round-trips a CSV file (with header) into batches.
func TestCSVSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := csv.NewWriter(f)
	_ = w.Write([]string{"k", "v"}) // header: skipped via parse failure
	for i := 0; i < 10; i++ {
		_ = w.Write([]string{"key-" + strconv.Itoa(i%3), strconv.Itoa(i)})
	}
	w.Flush()
	f.Close()

	src, err := DefaultRegistry().OpenSource("csv:path=" + path + ",batch=4")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	schema := table.Schema{{Name: "k", Type: table.String}, {Name: "v", Type: table.Int64}}
	total := 0
	var sum int64
	for {
		b, err := src.ReadBatch(context.Background(), schema)
		if err != nil {
			break
		}
		total += b.NumRows()
		for r := 0; r < b.NumRows(); r++ {
			sum += b.Int64At(1, r)
		}
	}
	if total != 10 || sum != 45 {
		t.Fatalf("csv read %d rows (sum %d), want 10 (45)", total, sum)
	}
}

// TestRegistrySpecs covers spec parsing and unknown-name errors.
func TestRegistrySpecs(t *testing.T) {
	reg := DefaultRegistry()
	if _, err := reg.OpenSource("nope:x=1"); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := reg.OpenSink("nope"); err == nil {
		t.Fatal("unknown sink accepted")
	}
	if _, err := reg.OpenSource("gen:rows"); err == nil {
		t.Fatal("malformed arg accepted")
	}
	if _, err := reg.OpenSource("gen:batch=zero"); err == nil {
		t.Fatal("non-integer arg accepted")
	}
	sink, err := reg.OpenSink("null")
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(1, &engine.Result{}); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "updates.log")
	ls, err := reg.OpenSink("log:path=" + logPath + ",tag=q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Write(7, &engine.Result{Rows: [][]string{{"a"}}}); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "q1 v7: 1 rows\n" {
		t.Fatalf("log sink wrote %q", b)
	}
}

// captureSink records the last update.
type captureSink struct {
	mu     sync.Mutex
	ver    uint64
	res    *engine.Result
	closes int
}

func (s *captureSink) Write(v uint64, r *engine.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ver, s.res = v, r
	return nil
}

func (s *captureSink) last() (uint64, *engine.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ver, s.res
}

func (s *captureSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closes++
	return nil
}
