// Package connector is the fabric's external I/O runtime: Sources pump
// rows from outside readers into the streaming ingestor (batched, with
// backpressure mapped onto the ingestor's Block/Shed policies), and
// Sinks fan continuous-query results out of subscriptions. A Registry
// names source/sink constructors so cheetahd can wire a topology from
// flags ("gen:rows=1000,rate=500" → the generator source feeding the
// served table) without compiling connectors in.
//
// The shape follows the stream-processor connector idiom (a benthos-
// style input/output registry), kept deliberately tiny: a Source is a
// batch iterator, a Sink is a result consumer, and the Runtime owns the
// goroutines between them and the session's streaming handle.
package connector

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/plan"
	"cheetah/internal/stream"
	"cheetah/internal/table"
)

// Source produces row batches for the streamed table. ReadBatch blocks
// until a batch is ready, returning io.EOF when the source is drained.
// Close releases external resources; it may be called concurrently
// with ReadBatch to interrupt it.
type Source interface {
	// ReadBatch returns the next batch with the given schema. A nil
	// batch with nil error means "nothing right now, call again".
	ReadBatch(ctx context.Context, schema table.Schema) (*table.Table, error)
	Close() error
}

// Sink consumes standing-result refreshes from a subscription. Write
// is called sequentially per subscription.
type Sink interface {
	// Write delivers the standing result covering the given committed
	// version.
	Write(version uint64, res *engine.Result) error
	Close() error
}

// BuildSource constructs a source from parsed spec arguments.
type BuildSource func(args map[string]string) (Source, error)

// BuildSink constructs a sink from parsed spec arguments.
type BuildSink func(args map[string]string) (Sink, error)

// Registry names connector constructors.
type Registry struct {
	mu      sync.Mutex
	sources map[string]BuildSource
	sinks   map[string]BuildSink
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		sources: make(map[string]BuildSource),
		sinks:   make(map[string]BuildSink),
	}
}

// RegisterSource names a source constructor. Re-registering a name
// replaces it.
func (r *Registry) RegisterSource(name string, build BuildSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = build
}

// RegisterSink names a sink constructor.
func (r *Registry) RegisterSink(name string, build BuildSink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sinks[name] = build
}

// Sources lists the registered source names, sorted.
func (r *Registry) Sources() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sinks lists the registered sink names, sorted.
func (r *Registry) Sinks() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sinks))
	for n := range r.sinks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseSpec splits a "name:key=val,key=val" connector spec.
func ParseSpec(spec string) (name string, args map[string]string, err error) {
	name, rest, _ := strings.Cut(spec, ":")
	if name == "" {
		return "", nil, fmt.Errorf("connector: empty spec")
	}
	args = make(map[string]string)
	if rest == "" {
		return name, args, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return "", nil, fmt.Errorf("connector: malformed argument %q in spec %q", kv, spec)
		}
		args[k] = v
	}
	return name, args, nil
}

// OpenSource builds the source a spec names.
func (r *Registry) OpenSource(spec string) (Source, error) {
	name, args, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	build := r.sources[name]
	r.mu.Unlock()
	if build == nil {
		return nil, fmt.Errorf("connector: unknown source %q (have %s)", name, strings.Join(r.Sources(), ", "))
	}
	return build(args)
}

// OpenSink builds the sink a spec names.
func (r *Registry) OpenSink(spec string) (Sink, error) {
	name, args, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	build := r.sinks[name]
	r.mu.Unlock()
	if build == nil {
		return nil, fmt.Errorf("connector: unknown sink %q (have %s)", name, strings.Join(r.Sinks(), ", "))
	}
	return build(args)
}

// Runtime owns the pump goroutines between connectors and one
// streaming handle.
type Runtime struct {
	strm *plan.Streaming

	mu     sync.Mutex
	closed bool
	cancel []context.CancelFunc
	wg     sync.WaitGroup

	feedErrMu sync.Mutex
	feedErr   error
}

// NewRuntime wires a runtime over the session's streaming handle.
func NewRuntime(strm *plan.Streaming) (*Runtime, error) {
	if strm == nil {
		return nil, fmt.Errorf("connector: runtime needs a streaming handle")
	}
	return &Runtime{strm: strm}, nil
}

// Feed starts pumping src into the streamed table: each ReadBatch
// commits through AppendBatch, so the ingestor's backpressure policy
// applies — Block stalls the pump (and transitively the source's
// producer), Shed drops the batch and the pump retries it after a
// backoff. The pump stops at io.EOF, on ctx cancellation, or when the
// runtime closes; the source is closed when the pump exits.
func (rt *Runtime) Feed(ctx context.Context, src Source) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return fmt.Errorf("connector: runtime is closed")
	}
	ctx, cancel := context.WithCancel(ctx)
	rt.cancel = append(rt.cancel, cancel)
	rt.wg.Add(1)
	rt.mu.Unlock()
	schema := rt.strm.Session().Table().Schema()
	go func() {
		defer rt.wg.Done()
		defer src.Close()
		for {
			batch, err := src.ReadBatch(ctx, schema)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, context.Canceled) {
					rt.noteFeedErr(err)
				}
				return
			}
			if batch == nil || batch.NumRows() == 0 {
				continue
			}
			for {
				err := rt.strm.AppendBatch(batch)
				if err == nil {
					break
				}
				if errors.Is(err, stream.ErrBacklog) {
					// Shed policy: the ingestor refused the batch to
					// protect the slowest subscription. Back off and
					// retry — the connector absorbs the burst.
					select {
					case <-ctx.Done():
						return
					case <-time.After(time.Millisecond):
					}
					continue
				}
				if ctx.Err() == nil {
					rt.noteFeedErr(err)
				}
				return
			}
		}
	}()
	return nil
}

func (rt *Runtime) noteFeedErr(err error) {
	rt.feedErrMu.Lock()
	if rt.feedErr == nil {
		rt.feedErr = err
	}
	rt.feedErrMu.Unlock()
}

// Err returns the first terminal feed error, if any.
func (rt *Runtime) Err() error {
	rt.feedErrMu.Lock()
	defer rt.feedErrMu.Unlock()
	return rt.feedErr
}

// Pipe subscribes q as a continuous query and fans its standing-result
// refreshes into sink, one Write per update (latest wins under lag, the
// subscription channel's own contract). The subscription closes when
// ctx cancels or the runtime closes; the sink is closed when the
// forwarder exits.
func (rt *Runtime) Pipe(ctx context.Context, q *engine.Query, sink Sink) (*plan.Subscription, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, fmt.Errorf("connector: runtime is closed")
	}
	rt.mu.Unlock()
	sub, err := rt.strm.Subscribe(ctx, q)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		sub.Close()
		return nil, fmt.Errorf("connector: runtime is closed")
	}
	ctx, cancel := context.WithCancel(ctx)
	rt.cancel = append(rt.cancel, cancel)
	rt.wg.Add(1)
	rt.mu.Unlock()
	go func() {
		defer rt.wg.Done()
		defer sink.Close()
		defer sub.Close()
		for {
			select {
			case <-ctx.Done():
				return
			case _, ok := <-sub.Updates():
				if !ok {
					return
				}
				res, ver := sub.Results()
				if res == nil {
					continue
				}
				if err := sink.Write(ver, res); err != nil {
					rt.noteFeedErr(err)
					return
				}
			}
		}
	}()
	return sub, nil
}

// Close stops every pump and forwarder and waits for them to exit.
// Sources and sinks close with their pumps. Idempotent.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	cancels := rt.cancel
	rt.cancel = nil
	rt.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	rt.wg.Wait()
}

// atoiDefault parses an integer argument with a default.
func atoiDefault(args map[string]string, key string, def int) (int, error) {
	v, ok := args[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("connector: argument %s=%q is not an integer", key, v)
	}
	return n, nil
}
