package switchsim

import "testing"

// TestFailedPipelineForwardsEverything: a dead switch stops pruning —
// every entry forwards (the §7.2 conservative behaviour) — and rejects
// control-plane installs until restored.
func TestFailedPipelineForwardsEverything(t *testing.T) {
	pl, err := NewPipeline(Tofino())
	if err != nil {
		t.Fatal(err)
	}
	p := &batchParityProgram{}
	if err := pl.Install(1, p); err != nil {
		t.Fatal(err)
	}
	b, dec := testBatch(64)
	pl.ProcessBatch(1, b, dec)
	pruned := 0
	for _, d := range dec {
		if d == Prune {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("healthy pipeline pruned nothing — test program broken")
	}

	pl.Fail()
	if !pl.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
	pl.ProcessBatch(1, b, dec)
	for j, d := range dec {
		if d != Forward {
			t.Fatalf("entry %d: dead switch decided %v, want Forward", j, d)
		}
	}
	if d := pl.Process(1, []uint64{3}); d != Forward {
		t.Fatalf("scalar path on dead switch decided %v, want Forward", d)
	}
	if err := pl.Install(2, &parityProgram{}); err == nil {
		t.Fatal("Install succeeded on a dead switch")
	}
	if err := pl.CanInstall(p.Profile()); err == nil {
		t.Fatal("CanInstall succeeded on a dead switch")
	}
}

// TestFaultInjectorKillsBetweenBatches: the injector sees a
// monotonically increasing batch ordinal and kills the switch exactly
// at the chosen boundary — decisions before the kill stand, the killed
// batch and everything after forward.
func TestFaultInjectorKillsBetweenBatches(t *testing.T) {
	pl, err := NewPipeline(Tofino())
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Install(7, &batchParityProgram{}); err != nil {
		t.Fatal(err)
	}
	var seen []int
	pl.SetFaultInjector(func(flowID uint32, batch int) bool {
		if flowID != 7 {
			t.Errorf("injector saw flow %d, want 7", flowID)
		}
		seen = append(seen, batch)
		return batch >= 2 // die between the 2nd and 3rd batch
	})
	for i := 0; i < 4; i++ {
		b, dec := testBatch(32)
		pl.ProcessBatch(7, b, dec)
		pruned := 0
		for _, d := range dec {
			if d == Prune {
				pruned++
			}
		}
		if i < 2 && pruned == 0 {
			t.Fatalf("batch %d before the kill pruned nothing", i)
		}
		if i >= 2 && pruned != 0 {
			t.Fatalf("batch %d after the kill still pruned %d entries", i, pruned)
		}
	}
	if !pl.Failed() {
		t.Fatal("injector fired but pipeline is not failed")
	}
	// Ordinals 0,1,2 were offered; after the kill the injector must not
	// be consulted again.
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("injector saw ordinals %v, want [0 1 2]", seen)
	}
}

// TestFaultInjectorScopedToArmedFlow: batches of other flows advance
// the shared ordinal but a kill triggered by one flow takes the whole
// switch down — the failure domain is the switch, not the flow.
func TestFaultInjectorScopedToArmedFlow(t *testing.T) {
	pl, err := NewPipeline(Tofino())
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Install(1, &batchParityProgram{}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Install(2, &batchParityProgram{}); err != nil {
		t.Fatal(err)
	}
	pl.SetFaultInjector(func(flowID uint32, batch int) bool { return flowID == 1 })
	b, dec := testBatch(16)
	pl.ProcessBatch(2, b, dec) // not the armed flow: switch stays up
	if pl.Failed() {
		t.Fatal("injector killed the switch from an unarmed flow")
	}
	pl.ProcessBatch(1, b, dec)
	if !pl.Failed() {
		t.Fatal("armed flow did not kill the switch")
	}
	// Both flows now forward — the whole switch is dead.
	pl.ProcessBatch(2, b, dec)
	for j, d := range dec {
		if d != Forward {
			t.Fatalf("flow 2 entry %d decided %v after switch death", j, d)
		}
	}
}
