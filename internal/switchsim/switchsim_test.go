package switchsim

import (
	"strings"
	"testing"
)

// fakeProgram is a trivial Program for packing tests.
type fakeProgram struct {
	prof    Profile
	verdict Decision
	resets  int
}

func (f *fakeProgram) Profile() Profile          { return f.prof }
func (f *fakeProgram) Process([]uint64) Decision { return f.verdict }
func (f *fakeProgram) Reset()                    { f.resets++ }

func prog(name string, stages, alus, sram int) *fakeProgram {
	return &fakeProgram{prof: Profile{Name: name, Stages: stages, ALUs: alus, SRAMBits: sram}}
}

func TestModelValidate(t *testing.T) {
	if err := Tofino().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Tofino2().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Tofino()
	bad.Stages = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("stage-less model accepted")
	}
	bad = Tofino()
	bad.MetadataBits = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("metadata-less model accepted")
	}
	if Tofino().TotalSRAMBits() != 12*(36<<20) {
		t.Fatal("TotalSRAMBits")
	}
}

func TestProfileValidate(t *testing.T) {
	if err := (Profile{Name: "x", Stages: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Profile{Stages: 1}).Validate(); err == nil {
		t.Fatal("unnamed profile accepted")
	}
	if err := (Profile{Name: "x", Stages: 0}).Validate(); err == nil {
		t.Fatal("0-stage profile accepted")
	}
	if err := (Profile{Name: "x", Stages: 1, ALUs: -1}).Validate(); err == nil {
		t.Fatal("negative ALUs accepted")
	}
}

func TestFormatBits(t *testing.T) {
	cases := []struct {
		bits int
		want string
	}{
		{64, "64b"},
		{8 << 10, "1.0KB"},
		{8 << 20, "1.0MB"},
	}
	for _, c := range cases {
		if got := FormatBits(c.bits); got != c.want {
			t.Errorf("FormatBits(%d) = %q, want %q", c.bits, got, c.want)
		}
	}
}

func TestPipelineInstallAndProcess(t *testing.T) {
	pl, err := NewPipeline(Tofino())
	if err != nil {
		t.Fatal(err)
	}
	p := prog("distinct", 2, 2, 4096*2*64)
	p.verdict = Prune
	if err := pl.Install(7, p); err != nil {
		t.Fatal(err)
	}
	if got := pl.Process(7, []uint64{1}); got != Prune {
		t.Fatalf("Process = %v", got)
	}
	// Unknown flows pass through untouched.
	if got := pl.Process(99, []uint64{1}); got != Forward {
		t.Fatalf("unknown flow = %v", got)
	}
	if err := pl.Install(7, prog("dup", 1, 1, 64)); err == nil {
		t.Fatal("duplicate flow accepted")
	}
}

func TestPipelineStageOrdering(t *testing.T) {
	pl, _ := NewPipeline(Tofino())
	p := prog("ordered", 4, 4, 4*64)
	if err := pl.Install(1, p); err != nil {
		t.Fatal(err)
	}
	phys := pl.Programs()[0].PhysicalStage
	if len(phys) != 4 {
		t.Fatalf("placed %d stages", len(phys))
	}
	for i := 1; i < len(phys); i++ {
		if phys[i] <= phys[i-1] {
			t.Fatalf("logical stages out of order: %v", phys)
		}
	}
}

func TestPipelinePackingSharesStages(t *testing.T) {
	// §6: a 1-ALU filter and an 8-stage group-by pack onto the same
	// stages when per-stage resources suffice.
	pl, _ := NewPipeline(Tofino())
	groupBy := prog("groupby", 8, 8, 4096*8*64)
	filter := prog("filter", 1, 1, 32)
	if err := pl.Install(1, groupBy); err != nil {
		t.Fatal(err)
	}
	if err := pl.Install(2, filter); err != nil {
		t.Fatal(err)
	}
	// Filter's single logical stage should share physical stage 0.
	if got := pl.Programs()[1].PhysicalStage[0]; got != 0 {
		t.Fatalf("filter landed on stage %d, want 0 (shared)", got)
	}
	u := pl.Utilization()
	if u.StagesUsed != 8 {
		t.Fatalf("StagesUsed = %d, want 8", u.StagesUsed)
	}
}

func TestPipelinePackingOverflowsToLaterStages(t *testing.T) {
	// Fill stage ALUs so a second program must start on a later stage.
	m := Tofino()
	m.ALUsPerStage = 2
	pl, _ := NewPipeline(m)
	if err := pl.Install(1, prog("a", 1, 2, 64)); err != nil {
		t.Fatal(err)
	}
	if err := pl.Install(2, prog("b", 1, 2, 64)); err != nil {
		t.Fatal(err)
	}
	s0 := pl.Programs()[0].PhysicalStage[0]
	s1 := pl.Programs()[1].PhysicalStage[0]
	if s0 == s1 {
		t.Fatal("programs with full-stage ALU demand were co-located")
	}
}

func TestPipelineAdmissionFailures(t *testing.T) {
	m := Tofino()
	pl, _ := NewPipeline(m)
	// ALU demand per stage above the model's per-stage capacity.
	if err := pl.Install(1, prog("fat", 1, m.ALUsPerStage+1, 64)); err == nil {
		t.Fatal("over-ALU program accepted")
	}
	// SRAM demand per stage above capacity.
	if err := pl.Install(2, prog("hog", 1, 1, m.SRAMPerStageBits+1)); err == nil {
		t.Fatal("over-SRAM program accepted")
	}
	// More logical stages than available (including recirculation).
	usable := (m.Stages - ReservedStages) * m.Recirculation
	if err := pl.Install(3, prog("long", usable+1, 1, 64)); err == nil {
		t.Fatal("over-length program accepted (reserved stages ignored)")
	}
	// TCAM exhaustion.
	tp := prog("tcam", 1, 1, 64)
	tp.prof.TCAMEntries = m.TCAMEntries + 1
	if err := pl.Install(4, tp); err == nil {
		t.Fatal("over-TCAM program accepted")
	}
	// Metadata exhaustion.
	mp := prog("meta", 1, 1, 64)
	mp.prof.MetadataBits = m.MetadataBits + 1
	if err := pl.Install(5, mp); err == nil {
		t.Fatal("over-metadata program accepted")
	}
	// Failed installs must not leak resources.
	u := pl.Utilization()
	if u.ALUsUsed != 0 || u.SRAMBitsUsed != 0 || u.TCAMUsed != 0 || u.MetaUsed != 0 {
		t.Fatalf("failed installs leaked resources: %+v", u)
	}
}

func TestPipelineUninstallReleasesResources(t *testing.T) {
	pl, _ := NewPipeline(Tofino())
	p := prog("tmp", 3, 6, 3*1024)
	p.prof.TCAMEntries = 10
	p.prof.MetadataBits = 64
	if err := pl.Install(1, p); err != nil {
		t.Fatal(err)
	}
	if err := pl.Uninstall(1); err != nil {
		t.Fatal(err)
	}
	u := pl.Utilization()
	if u.ALUsUsed != 0 || u.SRAMBitsUsed != 0 || u.TCAMUsed != 0 || u.MetaUsed != 0 {
		t.Fatalf("uninstall leaked: %+v", u)
	}
	if err := pl.Uninstall(1); err == nil {
		t.Fatal("double uninstall accepted")
	}
	// Reinstall must work and process correctly after compaction.
	p2 := prog("again", 1, 1, 64)
	p2.verdict = Prune
	if err := pl.Install(2, p2); err != nil {
		t.Fatal(err)
	}
	if pl.Process(2, nil) != Prune {
		t.Fatal("process after reinstall broken")
	}
}

func TestPipelineUninstallKeepsOtherFlows(t *testing.T) {
	pl, _ := NewPipeline(Tofino())
	a := prog("a", 1, 1, 64)
	a.verdict = Prune
	b := prog("b", 1, 1, 64)
	if err := pl.Install(1, a); err != nil {
		t.Fatal(err)
	}
	if err := pl.Install(2, b); err != nil {
		t.Fatal(err)
	}
	if err := pl.Uninstall(2); err != nil {
		t.Fatal(err)
	}
	if pl.Process(1, nil) != Prune {
		t.Fatal("surviving flow lost its program after compaction")
	}
}

func TestPipelineReset(t *testing.T) {
	pl, _ := NewPipeline(Tofino())
	p := prog("r", 1, 1, 64)
	_ = pl.Install(1, p)
	pl.Reset()
	if p.resets != 1 {
		t.Fatalf("resets = %d", p.resets)
	}
}

func TestNewPipelineRejectsTinyModels(t *testing.T) {
	m := Tofino()
	m.Stages = ReservedStages
	if _, err := NewPipeline(m); err == nil {
		t.Fatal("model with only reserved stages accepted")
	}
	m.Stages = 0
	if _, err := NewPipeline(m); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestUtilizationAndString(t *testing.T) {
	pl, _ := NewPipeline(Tofino())
	_ = pl.Install(1, prog("x", 2, 4, 2*512))
	u := pl.Utilization()
	if u.StagesUsed != 2 || u.ALUsUsed != 4 || u.SRAMBitsUsed != 2*512 {
		t.Fatalf("utilization: %+v", u)
	}
	s := pl.String()
	if !strings.Contains(s, "flow 1: x") || !strings.Contains(s, "stage  0") {
		t.Fatalf("String output missing detail:\n%s", s)
	}
}

func TestDecisionString(t *testing.T) {
	if Forward.String() != "forward" || Prune.String() != "prune" {
		t.Fatal("decision strings")
	}
}

func TestProfileString(t *testing.T) {
	p := Profile{Name: "distinct", Stages: 2, ALUs: 2, SRAMBits: 4096 * 2 * 64}
	s := p.String()
	if !strings.Contains(s, "distinct") || !strings.Contains(s, "stages=2") {
		t.Fatalf("profile string = %q", s)
	}
}

func TestModelAdmits(t *testing.T) {
	m := Tofino()
	if err := m.Admits(Profile{Name: "ok", Stages: 2, ALUs: 4, SRAMBits: 1 << 20}); err != nil {
		t.Fatalf("small profile rejected: %v", err)
	}
	if err := m.Admits(Profile{Name: "fat", Stages: 1, ALUs: m.ALUsPerStage + 1}); err == nil {
		t.Fatal("per-stage ALU overflow admitted")
	}
	if err := m.Admits(Profile{Name: "hog", Stages: 1, ALUs: 1, SRAMBits: m.SRAMPerStageBits + 1}); err == nil {
		t.Fatal("per-stage SRAM overflow admitted")
	}
	usable := (m.Stages - ReservedStages) * m.Recirculation
	if err := m.Admits(Profile{Name: "long", Stages: usable + 1, ALUs: 1}); err == nil {
		t.Fatal("over-length profile admitted")
	}
	bad := m
	bad.Stages = 0
	if err := bad.Admits(Profile{Name: "any", Stages: 1}); err == nil {
		t.Fatal("invalid model admitted a profile")
	}
}

func TestPipelineCanInstallTracksOccupancy(t *testing.T) {
	m := Tofino()
	pl, _ := NewPipeline(m)
	// A profile that fills every usable stage's ALUs.
	usable := (m.Stages - ReservedStages) * m.Recirculation
	full := Profile{Name: "full", Stages: usable, ALUs: usable * m.ALUsPerStage}
	if err := pl.CanInstall(full); err != nil {
		t.Fatalf("full-pipe profile rejected on empty pipeline: %v", err)
	}
	if err := pl.Install(1, prog("occupant", 1, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if err := pl.CanInstall(full); err == nil {
		t.Fatal("full-pipe profile admitted on an occupied pipeline")
	}
	// CanInstall must not mutate the pipeline: the occupant still owns
	// exactly one ALU.
	u := pl.Utilization()
	if u.ALUsUsed != 1 {
		t.Fatalf("CanInstall mutated the pipeline: %+v", u)
	}
}

func BenchmarkPipelineProcess(b *testing.B) {
	pl, _ := NewPipeline(Tofino())
	p := prog("bench", 2, 2, 1024)
	_ = pl.Install(1, p)
	vals := []uint64{42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Process(1, vals)
	}
}
