// Package switchsim models the programmable-switch substrate Cheetah runs
// on. The paper deploys on a Barefoot Tofino; this repository has no
// switch hardware (see DESIGN.md), so the package reproduces the part of
// the hardware that *shapes* the algorithms: the PISA resource model —
// a pipeline of stages with per-stage stateful ALUs, per-stage register
// SRAM, shared TCAM, and a bounded metadata (PHV) budget — together with
// the multi-query packing of §6 and a per-packet dataplane executor.
//
// Every pruning algorithm declares a Profile (its Table 2 row); the
// pipeline admission-checks and packs profiles exactly the way the
// control plane allocates hardware, so "does this configuration fit the
// switch?" is answered by the same arithmetic as on the real device.
package switchsim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrFailed is returned by control-plane operations against a failed
// pipeline: a dead switch accepts no installs and its existing rules
// are gone with the hardware.
var ErrFailed = errors.New("switchsim: pipeline has failed")

// Model describes a switch's hardware resources. The defaults follow the
// constraint ranges quoted in §2.2 (12–60 stages, ≤10 stateful ALUs per
// stage, ≲100 MB SRAM, 100K–300K TCAM entries, 10–20 B of parsed values).
type Model struct {
	Name             string
	Stages           int // physical match-action stages per pipe
	ALUsPerStage     int // stateful ALUs usable per stage
	SRAMPerStageBits int // register SRAM per stage, in bits
	TCAMEntries      int // switch-wide TCAM entry budget
	MetadataBits     int // PHV bits carried between stages
	// Recirculation is the number of pipeline passes available by
	// looping packets through unused pipes (the technique of the paper's
	// reference [46]); it multiplies the usable logical stages at a
	// proportional throughput cost. 0 or 1 means no recirculation.
	Recirculation int
}

// Tofino returns a model with Tofino-like dimensions used throughout the
// evaluation: 12 stages × 10 ALUs, 4 MB of register SRAM per stage
// (48 MB total, inside §2.2's "under 100MB of SRAM"), 150K TCAM entries
// and an IPv6-header-scale metadata budget. The per-stage SRAM admits
// Table 2's default 4 MB join Bloom filter split over its two logical
// stages.
func Tofino() Model {
	return Model{
		Name:             "tofino",
		Stages:           12,
		ALUsPerStage:     10,
		SRAMPerStageBits: 36 << 20, // 4.5 MB per stage
		TCAMEntries:      150_000,
		MetadataBits:     2048,
		Recirculation:    4, // four pipes available for loopback passes
	}
}

// Tofino2 returns a larger model (Table 3's Tofino V2 column): 20 stages
// and double the per-stage SRAM.
func Tofino2() Model {
	return Model{
		Name:             "tofino2",
		Stages:           20,
		ALUsPerStage:     10,
		SRAMPerStageBits: 64 << 20, // 8 MB per stage
		TCAMEntries:      300_000,
		MetadataBits:     4096,
		Recirculation:    4,
	}
}

// Validate reports whether the model is internally consistent.
func (m Model) Validate() error {
	if m.Stages <= 0 || m.ALUsPerStage <= 0 || m.SRAMPerStageBits <= 0 {
		return fmt.Errorf("switchsim: model %q has non-positive stage resources", m.Name)
	}
	if m.TCAMEntries < 0 || m.MetadataBits <= 0 {
		return fmt.Errorf("switchsim: model %q has invalid TCAM/metadata budget", m.Name)
	}
	return nil
}

// TotalSRAMBits returns the switch-wide register SRAM.
func (m Model) TotalSRAMBits() int { return m.Stages * m.SRAMPerStageBits }

// Profile is one algorithm's resource demand — a row of Table 2.
// SRAMBits is the total register demand; it is spread across the
// algorithm's logical stages. SharedStageMemory marks the algorithms
// footnoted (*) in Table 2, whose same-stage ALUs address one memory
// space and can therefore fold multiple logical columns into one physical
// stage (DISTINCT-FIFO, JOIN-BF).
type Profile struct {
	Name              string
	Stages            int
	ALUs              int
	SRAMBits          int
	TCAMEntries       int
	MetadataBits      int
	SharedStageMemory bool
}

// Validate reports whether the profile is well-formed.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("switchsim: profile with empty name")
	}
	if p.Stages <= 0 {
		return fmt.Errorf("switchsim: profile %q needs at least one stage", p.Name)
	}
	if p.ALUs < 0 || p.SRAMBits < 0 || p.TCAMEntries < 0 || p.MetadataBits < 0 {
		return fmt.Errorf("switchsim: profile %q has negative resources", p.Name)
	}
	return nil
}

// String renders the profile as a Table 2-style row.
func (p Profile) String() string {
	return fmt.Sprintf("%-18s stages=%-3d ALUs=%-4d SRAM=%s TCAM=%d",
		p.Name, p.Stages, p.ALUs, FormatBits(p.SRAMBits), p.TCAMEntries)
}

// FormatBits renders a bit count in human units (b, KB, MB).
func FormatBits(bits int) string {
	bytes := float64(bits) / 8
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", bytes/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1fKB", bytes/(1<<10))
	default:
		return fmt.Sprintf("%db", bits)
	}
}

// Decision is a dataplane verdict for one entry.
type Decision uint8

const (
	// Forward sends the packet on to the master.
	Forward Decision = iota
	// Prune drops the packet (and ACKs it under the reliability protocol).
	Prune
)

// String renders the decision.
func (d Decision) String() string {
	if d == Prune {
		return "prune"
	}
	return "forward"
}

// Program is a pruning algorithm admitted to the pipeline: a resource
// profile plus the per-entry function executed in the dataplane. Values
// reaching the dataplane are the parsed Cheetah header values (already
// fingerprinted by the CWorker when needed).
type Program interface {
	Profile() Profile
	// Process inspects one entry's header values and decides its fate.
	// It must not retain vals.
	Process(vals []uint64) Decision
	// Reset clears the program's switch state (reboot / new query run).
	Reset()
}

// stageUse tracks the resources consumed on one physical stage.
type stageUse struct {
	alus     int
	sramBits int
}

// Placement records where one program's logical stages landed.
type Placement struct {
	Program       Program
	FlowID        uint32
	PhysicalStage []int // physical stage index per logical stage, ascending
}

// Pipeline is a configured switch: a model plus the set of admitted
// programs and their placements. One extra "selection" stage is reserved
// for the per-query prune-bit mux of §6, and two stages for the
// reliability protocol (§7.1: "our reliability protocol ... takes two
// pipeline stages on the hardware switch").
//
// A Pipeline is safe for concurrent use under a per-flow ownership
// discipline: control-plane mutations (Install, Uninstall, Reset) take
// the write lock, dataplane and inspection paths the read lock — the §5
// concurrency model, where many queries' traffic crosses the switch
// while the control plane installs and removes programs. Distinct flows
// may process batches in parallel. One flow's traffic must stay
// single-threaded (as one query's packets arrive in order on the wire),
// and the flow's owner must stop sending before uninstalling it. The
// lock protects the placement tables, not program state: Process and
// ProcessBatch run the program after releasing the read lock, so Reset
// — which touches every program — must not run concurrently with
// dataplane traffic (it models a switch reboot, not a hot path).
type Pipeline struct {
	mu          sync.RWMutex
	model       Model
	stages      []stageUse
	tcamUsed    int
	metaUsed    int
	placements  []Placement
	byFlow      map[uint32]*Placement
	reservedTop int // stages reserved for selection + reliability
	failed      bool
	injector    FaultInjector
	batchSeq    atomic.Uint64 // dataplane batches seen, for the injector
}

// FaultInjector decides, before batch ordinal n crosses the pipeline,
// whether the switch dies at that instant — i.e. between batch n-1 and
// batch n. flowID is the flow about to process. A true return kills the
// pipeline exactly as Fail does, except that the victim flow's program
// state is also scrubbed (the calling goroutine owns that flow's
// traffic, so the reset is within the per-flow ownership discipline —
// the state a real switch loses at power-off). The injector must be
// fast and must not call back into the pipeline.
type FaultInjector func(flowID uint32, batch int) bool

// ReservedStages is the number of pipeline stages held back for the §6
// prune-bit selection stage and the §7 reliability protocol.
const ReservedStages = 3

// NewPipeline creates an empty pipeline for the model.
func NewPipeline(m Model) (*Pipeline, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Stages <= ReservedStages {
		return nil, fmt.Errorf("switchsim: model %q has %d stages, needs > %d", m.Name, m.Stages, ReservedStages)
	}
	recirc := m.Recirculation
	if recirc < 1 {
		recirc = 1
	}
	return &Pipeline{
		model:       m,
		stages:      make([]stageUse, (m.Stages-ReservedStages)*recirc),
		byFlow:      make(map[uint32]*Placement),
		reservedTop: ReservedStages,
	}, nil
}

// Model returns the pipeline's hardware model.
func (pl *Pipeline) Model() Model { return pl.model }

// SetFaultInjector installs (or, with nil, removes) the pipeline's
// fault hook. Chaos harnesses arm it before traffic starts.
func (pl *Pipeline) SetFaultInjector(fi FaultInjector) {
	pl.mu.Lock()
	pl.injector = fi
	pl.mu.Unlock()
}

// Fail marks the pipeline dead: every subsequent dataplane decision is
// Forward (a dead switch prunes nothing — the §7.2 backstop's exactness
// anchor) and control-plane operations fail with ErrFailed. Program
// state is NOT scrubbed here — in-flight batches of other flows may be
// executing their programs, and the serving layer treats a dead
// switch's state as lost regardless (revoked leases are never drained).
// Idempotent.
func (pl *Pipeline) Fail() {
	pl.mu.Lock()
	pl.failed = true
	pl.mu.Unlock()
}

// Failed reports whether the pipeline is dead.
func (pl *Pipeline) Failed() bool {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.failed
}

// killFromFlow is the injector-initiated death: the calling goroutine
// owns flowID's traffic, so that one program's state can be scrubbed
// safely (modeling the register loss of a real power-off). Other flows'
// programs simply go quiet — the dead pipeline stops invoking them.
func (pl *Pipeline) killFromFlow(flowID uint32) {
	pl.mu.Lock()
	if !pl.failed {
		pl.failed = true
		if plc, ok := pl.byFlow[flowID]; ok {
			plc.Program.Reset()
		}
	}
	pl.mu.Unlock()
}

// Programs returns a snapshot of the admitted placements in installation
// order.
func (pl *Pipeline) Programs() []Placement {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return append([]Placement(nil), pl.placements...)
}

// placeProfile admission-checks p against the pipeline's remaining
// resources and returns the physical stage each logical stage would land
// on, without committing anything. It is the planning half of Install and
// the substrate of the CanInstall/Admits admission queries.
func (pl *Pipeline) placeProfile(p Profile) (phys []int, perStageALUs, perStageSRAM int, err error) {
	if err := p.Validate(); err != nil {
		return nil, 0, 0, err
	}
	if p.TCAMEntries > pl.model.TCAMEntries-pl.tcamUsed {
		return nil, 0, 0, fmt.Errorf("switchsim: %s needs %d TCAM entries, %d free",
			p.Name, p.TCAMEntries, pl.model.TCAMEntries-pl.tcamUsed)
	}
	if p.MetadataBits > pl.model.MetadataBits-pl.metaUsed {
		return nil, 0, 0, fmt.Errorf("switchsim: %s needs %d metadata bits, %d free",
			p.Name, p.MetadataBits, pl.model.MetadataBits-pl.metaUsed)
	}
	// Spread demand evenly over the program's logical stages.
	perStageALUs = ceilDiv(p.ALUs, p.Stages)
	perStageSRAM = ceilDiv(p.SRAMBits, p.Stages)
	if perStageALUs > pl.model.ALUsPerStage {
		return nil, 0, 0, fmt.Errorf("switchsim: %s needs %d ALUs in one stage, model has %d",
			p.Name, perStageALUs, pl.model.ALUsPerStage)
	}
	if perStageSRAM > pl.model.SRAMPerStageBits {
		return nil, 0, 0, fmt.Errorf("switchsim: %s needs %s SRAM in one stage, model has %s",
			p.Name, FormatBits(perStageSRAM), FormatBits(pl.model.SRAMPerStageBits))
	}
	// Greedy in-order packing: logical stage j goes to the earliest
	// physical stage after logical stage j-1's with enough headroom.
	phys = make([]int, 0, p.Stages)
	next := 0
	for l := 0; l < p.Stages; l++ {
		placed := false
		for s := next; s < len(pl.stages); s++ {
			if pl.stages[s].alus+perStageALUs <= pl.model.ALUsPerStage &&
				pl.stages[s].sramBits+perStageSRAM <= pl.model.SRAMPerStageBits {
				phys = append(phys, s)
				next = s + 1
				placed = true
				break
			}
		}
		if !placed {
			return nil, 0, 0, fmt.Errorf("switchsim: cannot pack %s: logical stage %d/%d finds no physical stage with %d ALUs and %s SRAM free",
				p.Name, l+1, p.Stages, perStageALUs, FormatBits(perStageSRAM))
		}
	}
	return phys, perStageALUs, perStageSRAM, nil
}

// CanInstall reports whether a program with this profile would be
// admitted given the pipeline's current occupancy, without installing
// anything. A nil return means a subsequent Install with an unused flow
// id will succeed.
func (pl *Pipeline) CanInstall(p Profile) error {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	if pl.failed {
		return ErrFailed
	}
	_, _, _, err := pl.placeProfile(p)
	return err
}

// Admits answers the control-plane admission question for an empty
// switch: does a program with this profile fit the model at all? It is
// the planner's pre-flight check before any query state is allocated.
func (m Model) Admits(p Profile) error {
	pl, err := NewPipeline(m)
	if err != nil {
		return err
	}
	return pl.CanInstall(p)
}

// Install admission-checks prog's profile against the remaining resources
// and, if it fits, packs its logical stages greedily onto the earliest
// physical stages with spare capacity (§6's concurrent packing: different
// queries share stages when their combined ALU/SRAM demand fits). The
// program becomes the handler for flowID.
func (pl *Pipeline) Install(flowID uint32, prog Program) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.failed {
		return ErrFailed
	}
	if _, dup := pl.byFlow[flowID]; dup {
		return fmt.Errorf("switchsim: flow %d already has a program", flowID)
	}
	p := prog.Profile()
	phys, perStageALUs, perStageSRAM, err := pl.placeProfile(p)
	if err != nil {
		return err
	}
	// Commit.
	for _, s := range phys {
		pl.stages[s].alus += perStageALUs
		pl.stages[s].sramBits += perStageSRAM
	}
	pl.tcamUsed += p.TCAMEntries
	pl.metaUsed += p.MetadataBits
	pl.placements = append(pl.placements, Placement{Program: prog, FlowID: flowID, PhysicalStage: phys})
	pl.byFlow[flowID] = &pl.placements[len(pl.placements)-1]
	return nil
}

// Uninstall removes the program bound to flowID and releases its
// resources.
func (pl *Pipeline) Uninstall(flowID uint32) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.failed {
		return ErrFailed
	}
	plc, ok := pl.byFlow[flowID]
	if !ok {
		return fmt.Errorf("switchsim: flow %d has no program", flowID)
	}
	p := plc.Program.Profile()
	perStageALUs := ceilDiv(p.ALUs, p.Stages)
	perStageSRAM := ceilDiv(p.SRAMBits, p.Stages)
	for _, s := range plc.PhysicalStage {
		pl.stages[s].alus -= perStageALUs
		pl.stages[s].sramBits -= perStageSRAM
	}
	pl.tcamUsed -= p.TCAMEntries
	pl.metaUsed -= p.MetadataBits
	delete(pl.byFlow, flowID)
	for i := range pl.placements {
		if pl.placements[i].FlowID == flowID {
			pl.placements = append(pl.placements[:i], pl.placements[i+1:]...)
			break
		}
	}
	// byFlow holds pointers into placements; rebuild after compaction.
	pl.byFlow = make(map[uint32]*Placement, len(pl.placements))
	for i := range pl.placements {
		pl.byFlow[pl.placements[i].FlowID] = &pl.placements[i]
	}
	return nil
}

// FlowInstalled reports whether flowID currently has a program — the
// control-plane pre-flight for callers installing into a shared
// pipeline under an externally chosen flow id.
func (pl *Pipeline) FlowInstalled(flowID uint32) bool {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	_, ok := pl.byFlow[flowID]
	return ok
}

// Process runs the program bound to flowID over one entry. Unknown flows
// are forwarded untouched — the switch stays transparent to traffic it has
// no rules for (§3: "fully compatible with other network functions").
func (pl *Pipeline) Process(flowID uint32, vals []uint64) Decision {
	pl.mu.RLock()
	failed := pl.failed
	prog := pl.programOf(flowID)
	pl.mu.RUnlock()
	if failed || prog == nil {
		return Forward
	}
	return prog.Process(vals)
}

// programOf returns the program bound to flowID, or nil. Callers hold at
// least the read lock.
func (pl *Pipeline) programOf(flowID uint32) Program {
	if plc, ok := pl.byFlow[flowID]; ok {
		return plc.Program
	}
	return nil
}

// Reset clears all program state (the "reboot the switch with empty
// states" failure-recovery path of §3) while keeping installations.
func (pl *Pipeline) Reset() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, plc := range pl.placements {
		plc.Program.Reset()
	}
}

// Utilization summarizes consumed resources.
type Utilization struct {
	StagesUsed   int // physical stages with any allocation (excl. reserved)
	StagesTotal  int
	ALUsUsed     int
	ALUsTotal    int
	SRAMBitsUsed int
	SRAMBitsCap  int
	TCAMUsed     int
	TCAMTotal    int
	MetaUsed     int
	MetaTotal    int
}

// Add accumulates o into u — fabric-wide occupancy totals (used and
// capacity both sum across pipelines). Lives next to the struct so a
// new resource field is summed the day it is added.
func (u *Utilization) Add(o Utilization) {
	u.StagesUsed += o.StagesUsed
	u.StagesTotal += o.StagesTotal
	u.ALUsUsed += o.ALUsUsed
	u.ALUsTotal += o.ALUsTotal
	u.SRAMBitsUsed += o.SRAMBitsUsed
	u.SRAMBitsCap += o.SRAMBitsCap
	u.TCAMUsed += o.TCAMUsed
	u.TCAMTotal += o.TCAMTotal
	u.MetaUsed += o.MetaUsed
	u.MetaTotal += o.MetaTotal
}

// String renders the utilization as one line of used/total pairs.
func (u Utilization) String() string {
	return fmt.Sprintf("stages %d/%d ALUs %d/%d SRAM %s/%s TCAM %d/%d meta %d/%d",
		u.StagesUsed, u.StagesTotal, u.ALUsUsed, u.ALUsTotal,
		FormatBits(u.SRAMBitsUsed), FormatBits(u.SRAMBitsCap),
		u.TCAMUsed, u.TCAMTotal, u.MetaUsed, u.MetaTotal)
}

// Utilization reports current resource consumption.
func (pl *Pipeline) Utilization() Utilization {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	u := Utilization{
		StagesTotal: len(pl.stages),
		ALUsTotal:   len(pl.stages) * pl.model.ALUsPerStage,
		SRAMBitsCap: len(pl.stages) * pl.model.SRAMPerStageBits,
		TCAMUsed:    pl.tcamUsed,
		TCAMTotal:   pl.model.TCAMEntries,
		MetaUsed:    pl.metaUsed,
		MetaTotal:   pl.model.MetadataBits,
	}
	for _, s := range pl.stages {
		if s.alus > 0 || s.sramBits > 0 {
			u.StagesUsed++
		}
		u.ALUsUsed += s.alus
		u.SRAMBitsUsed += s.sramBits
	}
	return u
}

// String renders a per-stage occupancy map.
func (pl *Pipeline) String() string {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline(%s): %d usable stages (+%d reserved)\n",
		pl.model.Name, len(pl.stages), pl.reservedTop)
	for i, s := range pl.stages {
		if s.alus == 0 && s.sramBits == 0 {
			continue
		}
		fmt.Fprintf(&b, "  stage %2d: ALUs %d/%d SRAM %s/%s\n", i,
			s.alus, pl.model.ALUsPerStage,
			FormatBits(s.sramBits), FormatBits(pl.model.SRAMPerStageBits))
	}
	flows := make([]int, 0, len(pl.byFlow))
	for f := range pl.byFlow {
		flows = append(flows, int(f))
	}
	sort.Ints(flows)
	for _, f := range flows {
		plc := pl.byFlow[uint32(f)]
		fmt.Fprintf(&b, "  flow %d: %s at stages %v\n", f, plc.Program.Profile().Name, plc.PhysicalStage)
	}
	return b.String()
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
