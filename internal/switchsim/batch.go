package switchsim

import "sync"

// This file adds the batched dataplane interface. The per-entry Process
// call models one packet crossing the pipeline; simulating at that
// granularity costs an interface dispatch, a slice header and a stats
// update per entry, which dominates runtime at paper-scale streams. A
// Batch carries a block of entries in column-major order so programs can
// run tight per-column loops with configuration and statistics hoisted
// out of the inner loop, while the per-entry *semantics* (state updates
// in arrival order) stay exactly those of repeated Process calls.

// Batch is a column-major block of entries flowing through the pipeline.
// Cols[i][j] holds value i of entry j — the same values, in the same
// order, that Process would receive as vals[i] for each entry. All
// columns have length ≥ N; entries 0..N-1 are valid. By the engine's
// wire convention the last column carries the global row id of each
// entry (the late-materialization handle appended by EncodeEntries);
// programs that do not use it simply never index it.
//
// Programs with in-flight packet rewriting (switchsim's Emitter-style
// aggregation) may overwrite a forwarded entry's column values in place:
// the batch models the packets *after* the pipeline, so a rewritten slot
// holds what the forwarded packet carries toward the master.
type Batch struct {
	Cols [][]uint64
	N    int
}

// BatchProgram is the fast-path extension of Program: ProcessBatch must
// make exactly the same per-entry decisions, state transitions and
// statistics updates as calling Process on entries 0..N-1 in order,
// writing each verdict to decisions[j]. decisions has length ≥ N.
type BatchProgram interface {
	Program
	ProcessBatch(b *Batch, decisions []Decision)
}

// gatherPool recycles the scalar fallback's per-entry gather slice;
// allocating it per call shows up at paper scale when a third-party
// Program streams millions of chunk-sized batches.
var gatherPool = sync.Pool{New: func() any {
	s := make([]uint64, 0, 16)
	return &s
}}

// ProcessBatchOf runs prog over the batch, using the native batch loop
// when prog implements BatchProgram and falling back to a per-entry
// gather + Process loop otherwise, so third-party Programs keep working
// unchanged behind the batched engine.
func ProcessBatchOf(prog Program, b *Batch, decisions []Decision) {
	if bp, ok := prog.(BatchProgram); ok {
		bp.ProcessBatch(b, decisions)
		return
	}
	vp := gatherPool.Get().(*[]uint64)
	vals := *vp
	if cap(vals) < len(b.Cols) {
		vals = make([]uint64, len(b.Cols))
	}
	vals = vals[:len(b.Cols)]
	for j := 0; j < b.N; j++ {
		for i, c := range b.Cols {
			vals[i] = c[j]
		}
		decisions[j] = prog.Process(vals)
	}
	*vp = vals
	gatherPool.Put(vp)
}

// ProcessBatch runs the program bound to flowID over a batch of entries.
// Unknown flows forward everything untouched, mirroring Process, and so
// does a failed pipeline — a dead switch prunes nothing, which is what
// keeps the §7.2 backstop exact. Only the flow lookup is under the read
// lock — holding it across a whole batch would convoy every flow's
// traffic behind any pending Install (Go's write-preferring RWMutex
// blocks new readers then), serializing exactly the concurrency §5
// promises. The caller owns its flow's lifecycle: a flow is only
// uninstalled after its own batches are done, so the program cannot be
// torn down mid-batch.
//
// When a FaultInjector is armed, it is consulted once per batch with
// the pipeline-wide batch ordinal before the batch executes, so a test
// can kill the switch between any two batches.
func (pl *Pipeline) ProcessBatch(flowID uint32, b *Batch, decisions []Decision) {
	pl.mu.RLock()
	failed := pl.failed
	inj := pl.injector
	prog := pl.programOf(flowID)
	pl.mu.RUnlock()
	if !failed && inj != nil {
		n := pl.batchSeq.Add(1)
		if inj(flowID, int(n-1)) {
			pl.killFromFlow(flowID)
			failed = true
		}
	}
	if failed || prog == nil {
		for j := 0; j < b.N; j++ {
			decisions[j] = Forward
		}
		return
	}
	ProcessBatchOf(prog, b, decisions)
}

// FusedProgram returns the live program installed for flowID when a
// caller may drive it directly — the engine's fused loops bypass the
// per-batch mux entirely, so the pipeline must be healthy, the flow
// installed, and no fault injector armed (injected deaths fire between
// batches through ProcessBatch's ordinal; a bypassing caller would
// never observe them, so chaos runs keep the batched path). A nil
// return means the caller must route through ProcessBatch. The
// ownership discipline is unchanged: the flow's owner is the only
// goroutine touching its program state, and a concurrent Fail only
// flips the pipeline flag — the post-pass health check (Lease.Err)
// still reports the death.
func (pl *Pipeline) FusedProgram(flowID uint32) Program {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	if pl.failed || pl.injector != nil {
		return nil
	}
	return pl.programOf(flowID)
}
