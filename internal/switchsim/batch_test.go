package switchsim

import "testing"

// parityProgram prunes entries whose first value is odd; it counts calls
// so tests can tell the scalar and batch paths apart.
type parityProgram struct {
	scalarCalls int
	batchCalls  int
}

func (p *parityProgram) Profile() Profile { return Profile{Name: "parity", Stages: 1} }
func (p *parityProgram) Reset()           {}
func (p *parityProgram) Process(vals []uint64) Decision {
	p.scalarCalls++
	if vals[0]%2 == 1 {
		return Prune
	}
	return Forward
}

// batchParityProgram adds a native batch loop.
type batchParityProgram struct{ parityProgram }

func (p *batchParityProgram) ProcessBatch(b *Batch, decisions []Decision) {
	p.batchCalls++
	for j, v := range b.Cols[0][:b.N] {
		if v%2 == 1 {
			decisions[j] = Prune
		} else {
			decisions[j] = Forward
		}
	}
}

func testBatch(n int) (*Batch, []Decision) {
	col := make([]uint64, n)
	ids := make([]uint64, n)
	for i := range col {
		col[i] = uint64(i * 3)
		ids[i] = uint64(i)
	}
	return &Batch{Cols: [][]uint64{col, ids}, N: n}, make([]Decision, n)
}

func TestProcessBatchOfScalarFallback(t *testing.T) {
	b, dec := testBatch(100)
	p := &parityProgram{}
	ProcessBatchOf(p, b, dec)
	if p.scalarCalls != 100 {
		t.Fatalf("scalar fallback made %d Process calls, want 100", p.scalarCalls)
	}
	for j := 0; j < b.N; j++ {
		want := Forward
		if b.Cols[0][j]%2 == 1 {
			want = Prune
		}
		if dec[j] != want {
			t.Fatalf("entry %d: got %v, want %v", j, dec[j], want)
		}
	}
}

func TestProcessBatchOfNativePath(t *testing.T) {
	b, dec := testBatch(64)
	p := &batchParityProgram{}
	ProcessBatchOf(p, b, dec)
	if p.batchCalls != 1 || p.scalarCalls != 0 {
		t.Fatalf("native path: batchCalls=%d scalarCalls=%d, want 1/0", p.batchCalls, p.scalarCalls)
	}
	for j := 0; j < b.N; j++ {
		want := Forward
		if b.Cols[0][j]%2 == 1 {
			want = Prune
		}
		if dec[j] != want {
			t.Fatalf("entry %d: got %v, want %v", j, dec[j], want)
		}
	}
}

func TestPipelineProcessBatchUnknownFlow(t *testing.T) {
	pl, err := NewPipeline(Tofino())
	if err != nil {
		t.Fatal(err)
	}
	b, dec := testBatch(8)
	for i := range dec {
		dec[i] = Prune // must be overwritten
	}
	pl.ProcessBatch(99, b, dec)
	for j, d := range dec {
		if d != Forward {
			t.Fatalf("unknown flow entry %d: got %v, want forward", j, d)
		}
	}
}

func TestPipelineProcessBatchInstalledFlow(t *testing.T) {
	pl, err := NewPipeline(Tofino())
	if err != nil {
		t.Fatal(err)
	}
	p := &parityProgram{}
	if err := pl.Install(7, p); err != nil {
		t.Fatal(err)
	}
	b, dec := testBatch(16)
	pl.ProcessBatch(7, b, dec)
	if p.scalarCalls != 16 {
		t.Fatalf("installed flow processed %d entries, want 16", p.scalarCalls)
	}
}
