package prune

// This file is the pruner side of the engine's fused execution loops
// (engine/fuse.go). The batched path dispatches one interface
// ProcessBatch call per chunk and round-trips a Decision slice between
// encode and collect; the fused path instead compiles one monomorphic
// loop per query kind that reads table columns directly and needs, per
// entry, only the pruner's core state transition — no interface call,
// no stats update, no Decision materialization.
//
// The contract mirrors BatchProgram's: each Fused* entry point performs
// exactly the per-entry state transition and verdict of Process, minus
// the statistics, which the engine accumulates in loop-local counters
// and deposits once per pass through AddStats. A pruner's Stats() after
// a fused pass equal those after the equivalent Process sequence. The
// one sanctioned deviation is RandTopN's RNG (see FusedRandState): the
// fused path draws row choices from a counter-indexed stream rather
// than the scalar path's serial chain, so its prune decisions differ
// from the scalar oracle while final query Results stay bit-identical
// (master-side completion is exact for TOP N regardless of which
// entries were pruned).

import (
	"cheetah/internal/boolexpr"
	"cheetah/internal/cache"
	"cheetah/internal/sketch"
)

// AddStats deposits a fused pass's locally accumulated counters.
func (p *Filter) AddStats(processed, pruned uint64) {
	p.stats.Processed += processed
	p.stats.Pruned += pruned
}

// AddStats deposits a fused pass's locally accumulated counters.
func (p *Distinct) AddStats(processed, pruned uint64) {
	p.stats.Processed += processed
	p.stats.Pruned += pruned
}

// AddStats deposits a fused pass's locally accumulated counters.
func (p *GroupBy) AddStats(processed, pruned uint64) {
	p.stats.Processed += processed
	p.stats.Pruned += pruned
}

// AddStats deposits a fused pass's locally accumulated counters.
func (p *DetTopN) AddStats(processed, pruned uint64) {
	p.stats.Processed += processed
	p.stats.Pruned += pruned
}

// AddStats deposits a fused pass's locally accumulated counters.
func (p *RandTopN) AddStats(processed, pruned uint64) {
	p.stats.Processed += processed
	p.stats.Pruned += pruned
}

// AddStats deposits a fused pass's locally accumulated counters.
func (p *Having) AddStats(processed, pruned uint64) {
	p.stats.Processed += processed
	p.stats.Pruned += pruned
}

// AddStats deposits a fused pass's locally accumulated counters.
func (p *Join) AddStats(processed, pruned uint64) {
	p.stats.Processed += processed
	p.stats.Pruned += pruned
}

// FusedSpec exposes the compiled predicate list and truth table so the
// fused FILTER loop can evaluate the formula straight off the table
// columns (bit i of the lookup index is Predicates[i]'s verdict, as in
// Process).
func (p *Filter) FusedSpec() ([]Predicate, *boolexpr.TruthTable) {
	return p.cfg.Predicates, p.tt
}

// FusedMatrix exposes the cache matrix: Insert's hit verdict is the
// prune decision of Process.
func (p *Distinct) FusedMatrix() *cache.Matrix { return p.matrix }

// FusedMatrix exposes the keyed-max matrix and the MIN negation flag:
// Offer(key, v) — with v negated when min is set — is the prune
// decision of Process.
func (p *GroupBy) FusedMatrix() (m *cache.KeyedMax, min bool) {
	return p.matrix, p.cfg.Min
}

// FusedOffer is Process without the stats update: it returns true when
// the entry is pruned. The threshold state machine is identical.
func (p *DetTopN) FusedOffer(v int64) bool {
	if p.warmSeen < int64(p.cfg.N) {
		p.warmSeen++
		if v < p.t0 {
			p.t0 = v
		}
		if p.warmSeen == int64(p.cfg.N) {
			p.cur = 0
		}
		return false
	}
	for i := 0; i < p.cfg.Thresholds; i++ {
		if v >= p.threshold(i) {
			p.counts[i]++
			if i > p.cur && p.counts[i] >= int64(p.cfg.N) {
				p.cur = i
			}
		} else {
			break
		}
	}
	return p.cur >= 0 && v < p.threshold(p.cur)
}

// FusedRandGolden is the counter increment of the fused TOP N RNG
// stream; entry i draws from Mix64(base + i·FusedRandGolden). Exported
// so the engine's fused loop can advance the stream inline.
const FusedRandGolden = 0x9e3779b97f4a7c15

// FusedRandState hands the fused TOP N loop everything its inner loop
// needs and reserves n positions of the counter-indexed RNG stream.
//
// The scalar/batched paths advance a serial chain (rng = SplitMix64(rng))
// whose loop-carried dependency caps the batch speedup; the fused path
// instead derives entry i's row as
//
//	row_i = ReduceFull(Mix64(base + i·golden), d)
//
// — the same SplitMix64 output function over an independently computable
// counter, so the row choice stays uniform, value-independent and
// deterministic per seed (the 1-δ analysis of Theorem 2 needs nothing
// more), with no serial dependency. The position counter persists
// across calls (standing programs see one stream across deltas) and
// Reset rewinds it with the rest of the state. Prune decisions
// therefore differ from the scalar oracle; final TOP N Results do not,
// because the master's completion is exact on whatever survives.
func (p *RandTopN) FusedRandState(n int) (m *cache.RollingMin, d uint64, base, pos0 uint64) {
	pos0 = p.fusedPos
	p.fusedPos += uint64(n)
	return p.matrix, uint64(p.cfg.Rows), p.cfg.Seed ^ 0x6d6f746f726f6c61, pos0
}

// FusedOffer is Process without the stats update: it returns true when
// the entry is pruned. Negative SUM summands forward untouched, exactly
// as in Process (they are not pruned and not counted as pruned).
func (p *Having) FusedOffer(key uint64, v int64) bool {
	inc := int64(1)
	if p.cfg.Agg == HavingSum {
		if v < 0 {
			return false
		}
		inc = v
	}
	return p.cms.Add(key, inc) <= p.cfg.Threshold
}

// FusedFilters exposes the two membership filters so the fused JOIN
// passes can hoist phase and side out of the loop entirely: each pass
// streams one side in one phase, so the engine picks the filter to Add
// to or Contains against once per pass.
func (p *Join) FusedFilters() (fa, fb sketch.Membership) { return p.fa, p.fb }
