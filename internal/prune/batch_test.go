package prune

import (
	"testing"

	"cheetah/internal/boolexpr"
	"cheetah/internal/cache"
	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

// makeStream builds a deterministic pseudo-random column-major stream of
// n entries with the given column value ranges (range 0 keeps the column
// zero, e.g. a side marker filled by the caller).
func makeStream(n int, ranges []uint64, seed uint64) [][]uint64 {
	cols := make([][]uint64, len(ranges))
	for i := range cols {
		cols[i] = make([]uint64, n)
	}
	s := seed
	for j := 0; j < n; j++ {
		for i, r := range ranges {
			if r == 0 {
				continue
			}
			s = hashutil.SplitMix64(s)
			cols[i][j] = s % r
		}
	}
	return cols
}

// runScalar feeds the stream entry by entry through Process.
func runScalar(p Pruner, cols [][]uint64, n int) []switchsim.Decision {
	dec := make([]switchsim.Decision, n)
	vals := make([]uint64, len(cols))
	for j := 0; j < n; j++ {
		for i := range cols {
			vals[i] = cols[i][j]
		}
		dec[j] = p.Process(vals)
	}
	return dec
}

// runBatch feeds the same stream through ProcessBatch in uneven chunks
// so chunk-boundary state carry-over is exercised.
func runBatch(p Pruner, cols [][]uint64, n int) []switchsim.Decision {
	dec := make([]switchsim.Decision, n)
	chunks := []int{1, 7, 64, 1000, n} // cumulative boundaries, clamped
	lo := 0
	for _, hi := range chunks {
		if hi > n {
			hi = n
		}
		if hi <= lo {
			continue
		}
		sub := make([][]uint64, len(cols))
		for i := range cols {
			sub[i] = cols[i][lo:hi]
		}
		b := &switchsim.Batch{Cols: sub, N: hi - lo}
		switchsim.ProcessBatchOf(p, b, dec[lo:hi])
		lo = hi
	}
	return dec
}

func compareRuns(t *testing.T, name string, scalar, batch Pruner, cols [][]uint64, n int) {
	t.Helper()
	// Copy the stream for the batch run: GroupBySum rewrites in place.
	colsB := make([][]uint64, len(cols))
	for i := range cols {
		colsB[i] = append([]uint64(nil), cols[i]...)
	}
	ds := runScalar(scalar, cols, n)
	db := runBatch(batch, colsB, n)
	for j := 0; j < n; j++ {
		if ds[j] != db[j] {
			t.Fatalf("%s: entry %d: scalar=%v batch=%v", name, j, ds[j], db[j])
		}
	}
	if scalar.Stats() != batch.Stats() {
		t.Fatalf("%s: stats diverge: scalar=%+v batch=%+v", name, scalar.Stats(), batch.Stats())
	}
}

func TestBatchMatchesScalarFilter(t *testing.T) {
	mk := func() Pruner {
		f, err := NewFilter(FilterConfig{
			Predicates: []Predicate{
				{ValIdx: 0, Op: OpGT, Const: 500},
				{ValIdx: 1, Op: OpLE, Const: 100},
				{ValIdx: 2, Precomputed: true},
			},
			Formula: boolexpr.Or{boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}}, boolexpr.Leaf{V: 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	cols := makeStream(5000, []uint64{1000, 200, 2}, 0xf1)
	compareRuns(t, "filter", mk(), mk(), cols, 5000)
}

func TestBatchMatchesScalarDistinct(t *testing.T) {
	for _, pol := range []cache.Policy{cache.FIFO, cache.LRU} {
		mk := func() Pruner {
			d, err := NewDistinct(DistinctConfig{Rows: 64, Cols: 2, Policy: pol, Seed: 0xd1})
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
		cols := makeStream(5000, []uint64{300}, 0xd2)
		compareRuns(t, "distinct-"+pol.String(), mk(), mk(), cols, 5000)
	}
}

func TestBatchMatchesScalarDetTopN(t *testing.T) {
	mk := func() Pruner {
		d, err := NewDetTopN(DetTopNConfig{N: 50, Thresholds: 4})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cols := makeStream(5000, []uint64{1 << 20}, 0x71)
	compareRuns(t, "topn-det", mk(), mk(), cols, 5000)
}

func TestBatchMatchesScalarRandTopN(t *testing.T) {
	mk := func() Pruner {
		r, err := NewRandTopN(RandTopNConfig{N: 50, Rows: 32, Cols: 4, Seed: 0x72})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cols := makeStream(5000, []uint64{1 << 20}, 0x73)
	compareRuns(t, "topn-rand", mk(), mk(), cols, 5000)
}

func TestBatchMatchesScalarGroupBy(t *testing.T) {
	for _, min := range []bool{false, true} {
		mk := func() Pruner {
			g, err := NewGroupBy(GroupByConfig{Rows: 32, Cols: 4, Min: min, Seed: 0x91})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		cols := makeStream(5000, []uint64{200, 1 << 16}, 0x92)
		compareRuns(t, "groupby", mk(), mk(), cols, 5000)
	}
}

func TestBatchMatchesScalarHaving(t *testing.T) {
	for _, agg := range []HavingAgg{HavingSum, HavingCount} {
		mk := func() Pruner {
			h, err := NewHaving(HavingConfig{Agg: agg, Threshold: 1000, Rows: 3, CountersPerRow: 64, Seed: 0xa1})
			if err != nil {
				t.Fatal(err)
			}
			return h
		}
		cols := makeStream(5000, []uint64{150, 100}, 0xa2)
		compareRuns(t, "having-"+agg.String(), mk(), mk(), cols, 5000)
	}
}

func TestBatchMatchesScalarJoin(t *testing.T) {
	for _, asym := range []bool{false, true} {
		mk := func() *Join {
			j, err := NewJoin(JoinConfig{FilterBits: 1 << 12, Hashes: 3, Asymmetric: asym, Seed: 0xb1})
			if err != nil {
				t.Fatal(err)
			}
			return j
		}
		cols := makeStream(4000, []uint64{0, 500}, 0xb2)
		// Half side A, half side B.
		for j := 2000; j < 4000; j++ {
			cols[0][j] = uint64(SideB)
		}
		s, b := mk(), mk()
		// Build pass on the first half, probe pass on the second.
		compareRuns(t, "join-build", s, b, [][]uint64{cols[0][:2000], cols[1][:2000]}, 2000)
		s.StartProbe()
		b.StartProbe()
		compareRuns(t, "join-probe", s, b, [][]uint64{cols[0][2000:], cols[1][2000:]}, 2000)
	}
}

func TestBatchMatchesScalarSkyline(t *testing.T) {
	for _, h := range []SkylineHeuristic{SkylineSum, SkylineAPH, SkylineBaseline} {
		mk := func() Pruner {
			s, err := NewSkyline(SkylineConfig{Dims: 2, Points: 8, Heuristic: h})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		cols := makeStream(3000, []uint64{1 << 16, 1 << 16, 1 << 30}, 0xc1)
		compareRuns(t, "skyline-"+h.String(), mk(), mk(), cols, 3000)
	}
}

// TestBatchGroupBySumRewrite checks the in-place packet rewriting
// contract: forwarded slots must carry the same evicted aggregates that
// ProcessEmit returns, and absorbed state must drain identically.
func TestBatchGroupBySumRewrite(t *testing.T) {
	mk := func() *GroupBySum {
		g, err := NewGroupBySum(GroupBySumConfig{Rows: 16, Cols: 2, Seed: 0xe1})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	const n = 5000
	cols := makeStream(n, []uint64{300, 1 << 10}, 0xe2)
	s, b := mk(), mk()

	// Scalar reference via ProcessEmit.
	type emitted struct{ key, sum uint64 }
	var wantEmits []emitted
	vals := make([]uint64, 2)
	dec := make([]switchsim.Decision, n)
	for j := 0; j < n; j++ {
		vals[0], vals[1] = cols[0][j], cols[1][j]
		d, out := s.ProcessEmit(vals)
		dec[j] = d
		if d == switchsim.Forward {
			wantEmits = append(wantEmits, emitted{out[0], out[1]})
		}
	}

	colsB := [][]uint64{append([]uint64(nil), cols[0]...), append([]uint64(nil), cols[1]...)}
	decB := make([]switchsim.Decision, n)
	b.ProcessBatch(&switchsim.Batch{Cols: colsB, N: n}, decB)
	var gotEmits []emitted
	for j := 0; j < n; j++ {
		if dec[j] != decB[j] {
			t.Fatalf("entry %d: scalar=%v batch=%v", j, dec[j], decB[j])
		}
		if decB[j] == switchsim.Forward {
			gotEmits = append(gotEmits, emitted{colsB[0][j], colsB[1][j]})
		}
	}
	if len(wantEmits) != len(gotEmits) {
		t.Fatalf("emit count: scalar=%d batch=%d", len(wantEmits), len(gotEmits))
	}
	for i := range wantEmits {
		if wantEmits[i] != gotEmits[i] {
			t.Fatalf("emit %d: scalar=%+v batch=%+v", i, wantEmits[i], gotEmits[i])
		}
	}
	sd, bd := s.Drain(), b.Drain()
	if len(sd) != len(bd) {
		t.Fatalf("drain size: scalar=%d batch=%d", len(sd), len(bd))
	}
	for i := range sd {
		if sd[i][0] != bd[i][0] || sd[i][1] != bd[i][1] {
			t.Fatalf("drain %d: scalar=%v batch=%v", i, sd[i], bd[i])
		}
	}
	if s.Stats() != b.Stats() {
		t.Fatalf("stats diverge: scalar=%+v batch=%+v", s.Stats(), b.Stats())
	}
}
