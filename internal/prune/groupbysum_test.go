package prune

import (
	"testing"
	"testing/quick"

	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

// masterSums replays a GroupBySum stream and accumulates what the master
// would see: emitted aggregates plus the end-of-stream drain.
func masterSums(p *GroupBySum, stream [][2]uint64) map[uint64]int64 {
	got := map[uint64]int64{}
	for _, e := range stream {
		d, out := p.ProcessEmit([]uint64{e[0], e[1]})
		if d == switchsim.Forward {
			got[out[0]] += int64(out[1])
		}
	}
	for _, e := range p.Drain() {
		got[e[0]] += int64(e[1])
	}
	return got
}

func TestGroupBySumValidation(t *testing.T) {
	if _, err := NewGroupBySum(GroupBySumConfig{Rows: 0, Cols: 1}); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestGroupBySumConservation(t *testing.T) {
	// Core invariant: master-side totals equal true per-key sums exactly,
	// regardless of eviction pressure.
	p, err := NewGroupBySum(GroupBySumConfig{Rows: 4, Cols: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint16) bool {
		p.Reset()
		stream := make([][2]uint64, len(raw))
		truth := map[uint64]int64{}
		for i, x := range raw {
			key := uint64(x % 43)
			val := uint64(x % 17)
			stream[i] = [2]uint64{key, val}
			truth[key] += int64(val)
		}
		got := masterSums(p, stream)
		if len(got) > len(truth) {
			return false
		}
		for k, want := range truth {
			if got[k] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBySumHeavyPruning(t *testing.T) {
	// With few keys relative to capacity, nearly everything is absorbed.
	p, _ := NewGroupBySum(GroupBySumConfig{Rows: 1024, Cols: 8, Seed: 1})
	s := uint64(5)
	const n = 100_000
	stream := make([][2]uint64, n)
	for i := range stream {
		s = hashutil.SplitMix64(s)
		stream[i] = [2]uint64{s % 500, s >> 32 % 100}
	}
	truth := map[uint64]int64{}
	for _, e := range stream {
		truth[e[0]] += int64(e[1])
	}
	got := masterSums(p, stream)
	for k, want := range truth {
		if got[k] != want {
			t.Fatalf("key %d: got %d want %d", k, got[k], want)
		}
	}
	if rate := p.Stats().PruneRate(); rate < 0.99 {
		t.Fatalf("prune rate %.4f, want ≥0.99 when keys fit", rate)
	}
}

func TestGroupBySumProcessCompatibleDecision(t *testing.T) {
	p, _ := NewGroupBySum(GroupBySumConfig{Rows: 1, Cols: 1, Seed: 1})
	if p.Process([]uint64{1, 10}) != switchsim.Prune {
		t.Fatal("first entry should be absorbed")
	}
	if p.Process([]uint64{2, 10}) != switchsim.Forward {
		t.Fatal("eviction should forward")
	}
}

func TestGroupBySumDrainClears(t *testing.T) {
	p, _ := NewGroupBySum(GroupBySumConfig{Rows: 2, Cols: 2, Seed: 1})
	p.ProcessEmit([]uint64{1, 5})
	if n := len(p.Drain()); n != 1 {
		t.Fatalf("drained %d", n)
	}
	if n := len(p.Drain()); n != 0 {
		t.Fatalf("second drain returned %d", n)
	}
}

func TestGroupBySumProfile(t *testing.T) {
	p, _ := NewGroupBySum(GroupBySumConfig{Rows: 4096, Cols: 8})
	prof := p.Profile()
	if prof.Stages != 8 || prof.SRAMBits != 4096*8*2*64 {
		t.Fatalf("profile = %+v", prof)
	}
	if p.Name() != "groupby-sum" || p.Guarantee() != Deterministic {
		t.Fatal("identity")
	}
}

func TestSkylineDrainCarriesIDs(t *testing.T) {
	p, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 2, Heuristic: SkylineSum})
	// Entries carry (x, y, id).
	p.Process([]uint64{10, 10, 100})
	p.Process([]uint64{20, 20, 200}) // fills second slot
	p.Process([]uint64{30, 30, 300}) // swaps out one stored point
	drained := p.Drain()
	if len(drained) != 2 {
		t.Fatalf("drained %d points", len(drained))
	}
	ids := map[uint64]bool{}
	for _, e := range drained {
		if len(e) != 3 {
			t.Fatalf("drained entry %v wrong arity", e)
		}
		ids[e[2]] = true
	}
	// The two highest-score points are 300 and 200; their ids must have
	// ridden along through the swap.
	if !ids[300] || !ids[200] {
		t.Fatalf("drained ids %v, want {200,300}", ids)
	}
	if len(p.Drain()) != 0 {
		t.Fatal("drain did not clear state")
	}
}

func BenchmarkGroupBySumProcessEmit(b *testing.B) {
	p, _ := NewGroupBySum(GroupBySumConfig{Rows: 4096, Cols: 8, Seed: 1})
	s := uint64(1)
	vals := []uint64{0, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = hashutil.SplitMix64(s)
		vals[0], vals[1] = s%100000, s>>32%100
		p.ProcessEmit(vals)
	}
}
