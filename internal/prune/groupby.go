package prune

import (
	"cheetah/internal/cache"
	"cheetah/internal/switchsim"
)

// GroupByConfig configures the GROUP BY (max/min aggregate) pruner.
// The paper offloads SELECT key, MAX(val) ... GROUP BY key by caching a
// running per-key maximum in a d×w keyed matrix (§4.3 HAVING's MAX/MIN
// path and the dedicated GROUP BY row of Table 2; default w=8).
type GroupByConfig struct {
	// Rows (d) and Cols (w) size the keyed matrix.
	Rows, Cols int
	// Min flips the aggregate to MIN (values are negated internally).
	Min bool
	// Seed drives key-to-row hashing.
	Seed uint64
}

// GroupBy prunes max/min GROUP BY queries: an entry whose value cannot
// improve its key's cached aggregate is dropped; improvements are
// forwarded (so the master's per-key max over forwarded entries equals
// the true max) and unknown keys are cached with rolling replacement.
type GroupBy struct {
	cfg    GroupByConfig
	matrix *cache.KeyedMax
	stats  Stats
}

// NewGroupBy builds the pruner.
func NewGroupBy(cfg GroupByConfig) (*GroupBy, error) {
	if err := validateDims("group-by", cfg.Rows, cfg.Cols); err != nil {
		return nil, err
	}
	m, err := cache.NewKeyedMax(cfg.Rows, cfg.Cols, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &GroupBy{cfg: cfg, matrix: m}, nil
}

// Name implements Pruner.
func (p *GroupBy) Name() string {
	if p.cfg.Min {
		return "groupby-min"
	}
	return "groupby-max"
}

// Guarantee implements Pruner.
func (p *GroupBy) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program with Table 2's GROUP BY row:
// w stages, w ALUs, d·w×64b SRAM.
func (p *GroupBy) Profile() switchsim.Profile {
	return switchsim.Profile{
		Name:         p.Name(),
		Stages:       p.cfg.Cols,
		ALUs:         p.cfg.Cols,
		SRAMBits:     p.matrix.MemoryBits(),
		MetadataBits: 64 + 64 + 32, // key fingerprint + value + row index
	}
}

// Process implements switchsim.Program. vals[0] is the (fingerprinted)
// group key, vals[1] the aggregate value as int64.
func (p *GroupBy) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	v := int64(vals[1])
	if p.cfg.Min {
		v = -v
	}
	if p.matrix.Offer(vals[0], v) {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram: a fused sweep over the
// key and value columns with the MIN negation and matrix pointer hoisted.
func (p *GroupBy) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	keys := b.Cols[0][:b.N]
	vals := b.Cols[1][:b.N]
	m := p.matrix
	neg := p.cfg.Min
	pruned := uint64(0)
	for j, key := range keys {
		v := int64(vals[j])
		if neg {
			v = -v
		}
		if m.Offer(key, v) {
			decisions[j] = switchsim.Prune
			pruned++
		} else {
			decisions[j] = switchsim.Forward
		}
	}
	p.stats.Processed += uint64(len(keys))
	p.stats.Pruned += pruned
}

// Reset implements switchsim.Program.
func (p *GroupBy) Reset() {
	p.matrix.Reset()
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *GroupBy) Stats() Stats { return p.stats }
