package prune

import (
	"fmt"

	"cheetah/internal/sketch"
	"cheetah/internal/switchsim"
)

// HavingAgg selects the aggregate of a HAVING pruner.
type HavingAgg uint8

const (
	// HavingSum prunes SELECT key ... GROUP BY key HAVING SUM(val) > c.
	HavingSum HavingAgg = iota
	// HavingCount prunes ... HAVING COUNT(*) > c.
	HavingCount
)

// String renders the aggregate.
func (a HavingAgg) String() string {
	if a == HavingCount {
		return "COUNT"
	}
	return "SUM"
}

// HavingConfig configures the HAVING pruner (§4.3, Example #5).
type HavingConfig struct {
	// Agg is SUM or COUNT. (MAX/MIN HAVING reduces to the GROUP BY
	// pruner followed by a master-side filter and needs no sketch.)
	Agg HavingAgg
	// Threshold is c in HAVING f(key) > c.
	Threshold int64
	// Rows (d) and CountersPerRow (w) size the Count-Min sketch. Paper
	// defaults: d=3 rows, w=1024 counters (Table 2 swaps the letters:
	// "w=1024, d=3" with stages ⌈d/A⌉ and ALUs d — d there is the row
	// count, matching here).
	Rows, CountersPerRow int
	// Seed derives the sketch hash family.
	Seed uint64
	// ALUsPerStage is Table 2's A (0 selects DefaultALUsPerStage).
	ALUsPerStage int
}

// Having prunes HAVING SUM/COUNT(...) > c streams with a Count-Min
// sketch. Count-Min's one-sided error (estimate ≥ truth for non-negative
// updates) means pruning while the estimate is still ≤ c can never drop a
// key whose true aggregate exceeds c: once the key's aggregate crosses
// the threshold its later entries are forwarded, so the master receives a
// superset of the output keys and completes the query with a partial
// second pass (§4.3) to compute exact aggregates.
type Having struct {
	cfg   HavingConfig
	cms   *sketch.CountMin
	stats Stats
}

// NewHaving builds the pruner.
func NewHaving(cfg HavingConfig) (*Having, error) {
	if cfg.Rows <= 0 || cfg.CountersPerRow <= 0 {
		return nil, fmt.Errorf("prune: having sketch %dx%d must be positive", cfg.Rows, cfg.CountersPerRow)
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("prune: having threshold %d must be non-negative (SUM/COUNT < c is future work per §4.3)", cfg.Threshold)
	}
	if cfg.ALUsPerStage == 0 {
		cfg.ALUsPerStage = DefaultALUsPerStage
	}
	cms, err := sketch.NewCountMin(cfg.Rows, cfg.CountersPerRow, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Having{cfg: cfg, cms: cms}, nil
}

// Name implements Pruner.
func (p *Having) Name() string { return "having-" + p.cfg.Agg.String() }

// Guarantee implements Pruner: one-sided sketch error affects pruning
// rate only, never correctness.
func (p *Having) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program with Table 2's HAVING row:
// ⌈d/A⌉ stages, d ALUs, (d·w)×64b SRAM.
func (p *Having) Profile() switchsim.Profile {
	return switchsim.Profile{
		Name:         p.Name(),
		Stages:       ceilDiv(p.cfg.Rows, p.cfg.ALUsPerStage),
		ALUs:         p.cfg.Rows,
		SRAMBits:     p.cfg.Rows * p.cfg.CountersPerRow * 64,
		MetadataBits: 64 + 64 + 8,
	}
}

// Process implements switchsim.Program. vals[0] is the (fingerprinted)
// group key; vals[1] is the summand for SUM (ignored for COUNT).
func (p *Having) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	inc := int64(1)
	if p.cfg.Agg == HavingSum {
		inc = int64(vals[1])
		if inc < 0 {
			// Negative summands would break the one-sided guarantee;
			// forward them untouched so correctness is preserved and only
			// pruning rate suffers.
			return switchsim.Forward
		}
	}
	est := p.cms.Add(vals[0], inc)
	if est <= p.cfg.Threshold {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram with the aggregate
// dispatch lifted out of the loop: COUNT sweeps with a constant
// increment, SUM with the value column (negative summands forwarded
// untouched as in Process).
func (p *Having) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	keys := b.Cols[0][:b.N]
	cms := p.cms
	thr := p.cfg.Threshold
	pruned := uint64(0)
	if p.cfg.Agg == HavingCount {
		for j, key := range keys {
			if cms.Add(key, 1) <= thr {
				decisions[j] = switchsim.Prune
				pruned++
			} else {
				decisions[j] = switchsim.Forward
			}
		}
	} else {
		vals := b.Cols[1][:b.N]
		for j, key := range keys {
			inc := int64(vals[j])
			if inc < 0 {
				decisions[j] = switchsim.Forward
				continue
			}
			if cms.Add(key, inc) <= thr {
				decisions[j] = switchsim.Prune
				pruned++
			} else {
				decisions[j] = switchsim.Forward
			}
		}
	}
	p.stats.Processed += uint64(len(keys))
	p.stats.Pruned += pruned
}

// Reset implements switchsim.Program.
func (p *Having) Reset() {
	p.cms.Reset()
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *Having) Stats() Stats { return p.stats }

// Estimate exposes the sketch estimate for a key; the master-side second
// pass uses it in tests to cross-check the one-sided property.
func (p *Having) Estimate(key uint64) int64 { return p.cms.Estimate(key) }
