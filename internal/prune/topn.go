package prune

import (
	"fmt"
	"math"

	"cheetah/internal/cache"
	"cheetah/internal/hashutil"
	"cheetah/internal/stats"
	"cheetah/internal/switchsim"
)

// DetTopNConfig configures the deterministic TOP N pruner (§4.3,
// Example #3).
type DetTopNConfig struct {
	// N is the requested result size.
	N int
	// Thresholds (w) is the number of exponentially spaced thresholds
	// t_i = 2^i·t0 maintained after the warm-up minimum t0. Paper
	// default: w=4 (Table 2).
	Thresholds int
}

// DetTopN prunes for SELECT TOP N ... ORDER BY col with a deterministic
// guarantee. The switch learns t0, the minimum of the first N entries,
// then counts how many entries exceed each threshold t_i = 2^i·t0; once
// N entries above t_i have been observed, everything below t_i is
// prunable.
type DetTopN struct {
	cfg DetTopNConfig

	warmSeen int64
	t0       int64
	counts   []int64 // entries seen ≥ t_i
	cur      int     // highest i with counts[i] ≥ N, or -1 during warm-up
	stats    Stats
}

// NewDetTopN builds the pruner.
func NewDetTopN(cfg DetTopNConfig) (*DetTopN, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("prune: top-n N=%d must be positive", cfg.N)
	}
	if cfg.Thresholds <= 0 || cfg.Thresholds > 62 {
		return nil, fmt.Errorf("prune: top-n thresholds w=%d out of range 1..62", cfg.Thresholds)
	}
	return &DetTopN{
		cfg:    cfg,
		t0:     math.MaxInt64,
		counts: make([]int64, cfg.Thresholds),
		cur:    -1,
	}, nil
}

// Name implements Pruner.
func (p *DetTopN) Name() string { return "topn-det" }

// Guarantee implements Pruner.
func (p *DetTopN) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program with Table 2's TOP N Det row:
// w+1 stages, w+1 ALUs (one per threshold counter plus the t0 rolling
// minimum), (w+1)×64b SRAM.
func (p *DetTopN) Profile() switchsim.Profile {
	w := p.cfg.Thresholds
	return switchsim.Profile{
		Name:         p.Name(),
		Stages:       w + 1,
		ALUs:         w + 1,
		SRAMBits:     (w + 1) * 64,
		MetadataBits: 64 + 8,
	}
}

// threshold returns t_i = 2^i·t0, clamped so a non-positive warm-up
// minimum (the paper assumes positive ORDER BY values) degrades to a
// never-advancing threshold rather than a wrong one.
func (p *DetTopN) threshold(i int) int64 {
	if p.t0 <= 0 {
		if i == 0 {
			return p.t0
		}
		return math.MaxInt64
	}
	shifted := p.t0 << uint(i)
	if shifted>>uint(i) != p.t0 || shifted < 0 { // overflow guard
		return math.MaxInt64
	}
	return shifted
}

// Process implements switchsim.Program. vals[0] is the ORDER BY value as
// a two's-complement int64.
func (p *DetTopN) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	v := int64(vals[0])
	if p.warmSeen < int64(p.cfg.N) {
		// Warm-up: maintain the rolling minimum of the first N entries.
		p.warmSeen++
		if v < p.t0 {
			p.t0 = v
		}
		if p.warmSeen == int64(p.cfg.N) {
			p.cur = 0 // t0 is live: everything below it is prunable
		}
		return switchsim.Forward
	}
	// Count the entry against every threshold it clears and advance the
	// pruning point when a higher threshold accumulates N entries.
	for i := 0; i < p.cfg.Thresholds; i++ {
		if v >= p.threshold(i) {
			p.counts[i]++
			if i > p.cur && p.counts[i] >= int64(p.cfg.N) {
				p.cur = i
			}
		} else {
			break // thresholds are increasing
		}
	}
	if p.cur >= 0 && v < p.threshold(p.cur) {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram. After warm-up the
// common case is a two-comparison verdict against the live threshold, so
// the loop keeps the warm-up test first and otherwise mirrors Process
// with the config loads hoisted.
func (p *DetTopN) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	col := b.Cols[0][:b.N]
	n := int64(p.cfg.N)
	w := p.cfg.Thresholds
	pruned := uint64(0)
	for j, raw := range col {
		v := int64(raw)
		if p.warmSeen < n {
			p.warmSeen++
			if v < p.t0 {
				p.t0 = v
			}
			if p.warmSeen == n {
				p.cur = 0
			}
			decisions[j] = switchsim.Forward
			continue
		}
		for i := 0; i < w; i++ {
			if v >= p.threshold(i) {
				p.counts[i]++
				if i > p.cur && p.counts[i] >= n {
					p.cur = i
				}
			} else {
				break
			}
		}
		if p.cur >= 0 && v < p.threshold(p.cur) {
			decisions[j] = switchsim.Prune
			pruned++
		} else {
			decisions[j] = switchsim.Forward
		}
	}
	p.stats.Processed += uint64(len(col))
	p.stats.Pruned += pruned
}

// Reset implements switchsim.Program.
func (p *DetTopN) Reset() {
	p.warmSeen = 0
	p.t0 = math.MaxInt64
	for i := range p.counts {
		p.counts[i] = 0
	}
	p.cur = -1
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *DetTopN) Stats() Stats { return p.stats }

// RandTopNConfig configures the randomized TOP N pruner (§5, Example #7).
type RandTopNConfig struct {
	// N is the requested result size.
	N int
	// Rows (d) and Cols (w) size the rolling-minimum matrix. Use
	// TopNColumnsFor / OptimalTopNRows to derive them from (N, δ).
	Rows, Cols int
	// Seed drives the per-entry random row choice.
	Seed uint64
}

// RandTopN prunes TOP N with probabilistic guarantee 1-δ: entries are
// assigned to uniformly random rows, each row keeps its w largest values
// by rolling minimum, and an entry smaller than all w cached values in
// its row is pruned.
type RandTopN struct {
	cfg    RandTopNConfig
	matrix *cache.RollingMin
	rng    uint64
	// fusedPos is the counter-indexed RNG stream position of the fused
	// path (fused.go); the scalar chain above and this counter are
	// independent streams.
	fusedPos uint64
	stats    Stats
}

// NewRandTopN builds the pruner.
func NewRandTopN(cfg RandTopNConfig) (*RandTopN, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("prune: top-n N=%d must be positive", cfg.N)
	}
	if err := validateDims("rand top-n", cfg.Rows, cfg.Cols); err != nil {
		return nil, err
	}
	m, err := cache.NewRollingMin(cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	return &RandTopN{cfg: cfg, matrix: m, rng: cfg.Seed ^ 0x6d6f746f726f6c61}, nil
}

// Name implements Pruner.
func (p *RandTopN) Name() string { return "topn-rand" }

// Guarantee implements Pruner.
func (p *RandTopN) Guarantee() Guarantee { return Randomized }

// Profile implements switchsim.Program with Table 2's TOP N Rand row:
// w stages, w ALUs, (d·w)×64b SRAM.
func (p *RandTopN) Profile() switchsim.Profile {
	return switchsim.Profile{
		Name:         p.Name(),
		Stages:       p.cfg.Cols,
		ALUs:         p.cfg.Cols,
		SRAMBits:     p.matrix.MemoryBits(),
		MetadataBits: 64 + 32,
	}
}

// Process implements switchsim.Program. vals[0] is the ORDER BY value.
func (p *RandTopN) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	p.rng = hashutil.SplitMix64(p.rng)
	row := int(hashutil.ReduceFull(p.rng, uint64(p.cfg.Rows)))
	if p.matrix.Offer(row, int64(vals[0])) {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram. The hot path prunes
// against the matrix's per-row minimum cache — one load from a small
// array instead of a register-row walk — and only entries that might
// displace a cached value run the splice; the RNG chain (the loop's
// serial dependency) advances through a register.
func (p *RandTopN) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	col := b.Cols[0][:b.N]
	m := p.matrix
	mins := m.Mins()
	rng := p.rng
	d := uint64(p.cfg.Rows)
	pruned := uint64(0)
	for j, raw := range col {
		rng = hashutil.SplitMix64(rng)
		row := int(hashutil.ReduceFull(rng, d))
		v := int64(raw)
		if v <= mins[row] {
			// The sentinel value cannot distinguish a filling row from
			// a full row whose minimum it equals; confirm fullness on
			// that rare path only.
			if v != cache.MinSentinel {
				decisions[j] = switchsim.Prune
				pruned++
				continue
			}
			if _, full := m.FullMin(row); full {
				decisions[j] = switchsim.Prune
				pruned++
				continue
			}
		}
		// The splice can no longer prune (the row is not full, or the
		// value displaces something); Offer still runs for the state
		// update and its verdict is kept for exactness.
		if m.Offer(row, v) {
			decisions[j] = switchsim.Prune
			pruned++
		} else {
			decisions[j] = switchsim.Forward
		}
	}
	p.rng = rng
	p.stats.Processed += uint64(len(col))
	p.stats.Pruned += pruned
}

// Reset implements switchsim.Program.
func (p *RandTopN) Reset() {
	p.matrix.Reset()
	p.rng = p.cfg.Seed ^ 0x6d6f746f726f6c61
	p.fusedPos = 0
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *RandTopN) Stats() Stats { return p.stats }

// TopNColumnsFor computes Theorem 2's matrix-column count
//
//	w = 1.3·ln(d/δ) / ln((d/(N·e))·ln(d/δ))
//
// for d rows, result size N and failure probability δ. The theorem
// requires d ≥ N·e/ln(1/δ). The paper's worked examples (§5: d=600→w=16,
// d=8000→w=5, d=200→w=288 for N=1000, δ=1e-4) truncate the ratio, and
// this function matches them.
func TopNColumnsFor(d, n int, delta float64) (int, error) {
	if d <= 0 || n <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("prune: invalid TopNColumnsFor(d=%d, N=%d, delta=%v)", d, n, delta)
	}
	w := topNColumnsReal(float64(d), float64(n), delta)
	if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
		return 0, fmt.Errorf("prune: d=%d too small for N=%d, delta=%v (need d ≥ N·e/ln(1/δ) ≈ %.0f)",
			d, n, delta, float64(n)*math.E/math.Log(1/delta))
	}
	iw := int(w)
	if iw < 1 {
		iw = 1
	}
	return iw, nil
}

// topNColumnsReal returns the un-truncated column count, or NaN/Inf when
// the configuration violates the theorem's premise.
func topNColumnsReal(d, n, delta float64) float64 {
	lnD := math.Log(d / delta)
	denom := math.Log(d / (n * math.E) * lnD)
	if denom <= 0 {
		return math.NaN()
	}
	return 1.3 * lnD / denom
}

// OptimalTopNRows jointly optimizes space and pruning rate (§5): both the
// memory Θ(w·d) and the unpruned bound of Theorem 3 are monotone in w·d,
// so the best configuration minimizes f(d) = d·w(d). The paper expresses
// the minimizer through the Lambert W function; this implementation
// minimizes f numerically over the feasible range (reproducing the
// paper's example: N=1000, δ=1e-4 → d=481, w=19) with the Lambert form as
// the scan pivot.
func OptimalTopNRows(n int, delta float64) (d, w int, err error) {
	if n <= 0 || delta <= 0 || delta >= 1 {
		return 0, 0, fmt.Errorf("prune: invalid OptimalTopNRows(N=%d, delta=%v)", n, delta)
	}
	dMin := int(math.Ceil(float64(n) * math.E / math.Log(1/delta)))
	if dMin < 1 {
		dMin = 1
	}
	// Pivot the scan around the Lambert-W stationary point when it is
	// finite; always cover [dMin, 64·N] which brackets the minimum for
	// every practical (N, δ).
	dMax := 64 * n
	if lw, lerr := stats.LambertW0(float64(n) * math.E * math.E / delta); lerr == nil {
		if cand := int(delta * math.Exp(lw)); cand > dMax {
			dMax = 2 * cand
		}
	}
	bestD := -1
	bestF := math.Inf(1)
	for dd := dMin; dd <= dMax; dd = nextScan(dd) {
		wReal := topNColumnsReal(float64(dd), float64(n), delta)
		if math.IsNaN(wReal) || wReal <= 0 {
			continue
		}
		if f := float64(dd) * wReal; f < bestF {
			bestF = f
			bestD = dd
		}
	}
	if bestD < 0 {
		return 0, 0, fmt.Errorf("prune: no feasible (d,w) for N=%d, delta=%v", n, delta)
	}
	// The real-valued objective is extremely flat near its minimum and the
	// deployable w is integral, so refine locally on the integer product
	// d·⌊w(d)⌋ (footnote 12: "the actual optimum, which needs to be
	// integral, will be either the minimum d for that value or for w that
	// is off by 1").
	lo := bestD - bestD/20 - 2
	if lo < dMin {
		lo = dMin
	}
	hi := bestD + bestD/20 + 2
	bestProd := math.MaxInt64
	d, w = bestD, 1
	for dd := lo; dd <= hi; dd++ {
		wReal := topNColumnsReal(float64(dd), float64(n), delta)
		if math.IsNaN(wReal) || wReal < 1 {
			continue
		}
		wi := int(wReal)
		if prod := dd * wi; prod < bestProd {
			bestProd = prod
			d, w = dd, wi
		}
	}
	return d, w, nil
}

// nextScan advances the scan densely near small d and geometrically for
// large d, keeping OptimalTopNRows fast for large N without missing the
// (flat) minimum.
func nextScan(d int) int {
	if d < 10_000 {
		return d + 1
	}
	return d + d/1000
}

// ExpectedTopNUnpruned is Theorem 3's bound: on a random-order stream of
// m elements, at most w·d·ln(m·e/(w·d)) elements are forwarded in
// expectation.
func ExpectedTopNUnpruned(m, d, w int) float64 {
	if m <= 0 || d <= 0 || w <= 0 {
		return 0
	}
	wd := float64(w) * float64(d)
	if wd >= float64(m) {
		return float64(m)
	}
	return wd * math.Log(float64(m)*math.E/wd)
}
