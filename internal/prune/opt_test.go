package prune

import (
	"testing"

	"cheetah/internal/cache"
	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

func TestOptDistinctExactlyFirstOccurrences(t *testing.T) {
	p := NewOptDistinct()
	stream := []uint64{1, 2, 1, 3, 2, 1}
	want := []switchsim.Decision{
		switchsim.Forward, switchsim.Forward, switchsim.Prune,
		switchsim.Forward, switchsim.Prune, switchsim.Prune,
	}
	for i, v := range stream {
		if got := p.Process([]uint64{v}); got != want[i] {
			t.Fatalf("entry %d: %v, want %v", i, got, want[i])
		}
	}
	if p.Stats().Forwarded() != 3 {
		t.Fatal("forwarded count")
	}
	p.Reset()
	if p.Process([]uint64{1}) != switchsim.Forward {
		t.Fatal("reset")
	}
}

func TestOptTopNForwardsPrefixTopN(t *testing.T) {
	p := NewOptTopN(2)
	// Stream 5,3,4,2,6: prefix-top-2 membership at arrival:
	// 5 yes; 3 yes; 4 yes (beats 3); 2 no; 6 yes.
	stream := []int64{5, 3, 4, 2, 6}
	want := []switchsim.Decision{
		switchsim.Forward, switchsim.Forward, switchsim.Forward,
		switchsim.Prune, switchsim.Forward,
	}
	for i, v := range stream {
		if got := p.Process([]uint64{uint64(v)}); got != want[i] {
			t.Fatalf("entry %d (%d): %v, want %v", i, v, got, want[i])
		}
	}
}

func TestOptTopNLowerBoundsAllPruners(t *testing.T) {
	// OPT must forward no more than the constrained pruners on the same
	// stream (it is the upper bound on pruning).
	const m = 100_000
	stream := shuffledInt64s(m, 5)
	opt := NewOptTopN(250)
	det, _ := NewDetTopN(DetTopNConfig{N: 250, Thresholds: 4})
	rnd, _ := NewRandTopN(RandTopNConfig{N: 250, Rows: 4096, Cols: 4, Seed: 2})
	for _, v := range stream {
		u := uint64(v)
		opt.Process([]uint64{u})
		det.Process([]uint64{u})
		rnd.Process([]uint64{u})
	}
	if opt.Stats().Forwarded() > det.Stats().Forwarded() {
		t.Fatal("OPT forwarded more than deterministic")
	}
	if opt.Stats().Forwarded() > rnd.Stats().Forwarded() {
		t.Fatal("OPT forwarded more than randomized")
	}
}

func TestOptSkylineMatchesTrueSkyline(t *testing.T) {
	pts := randomPoints(2000, 2, 9, 1000)
	p := NewOptSkyline(2)
	forwarded := map[[2]uint64]bool{}
	for _, pt := range pts {
		if p.Process(pt) == switchsim.Forward {
			forwarded[[2]uint64{pt[0], pt[1]}] = true
		}
	}
	for _, sk := range trueSkyline(pts) {
		if !forwarded[[2]uint64{sk[0], sk[1]}] {
			t.Fatalf("OPT skyline lost true skyline point %v", sk)
		}
	}
	// OPT lower-bounds the constrained skyline pruner.
	cp, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: SkylineAPH})
	p.Reset()
	for _, pt := range pts {
		p.Process(pt)
		cp.Process(append([]uint64(nil), pt...))
	}
	if p.Stats().Forwarded() > cp.Stats().Forwarded()+uint64(len(cp.StoredPoints())) {
		t.Fatal("OPT skyline forwarded more than the constrained pruner")
	}
}

func TestOptGroupByForwardsOnlyImprovements(t *testing.T) {
	p := NewOptGroupBy()
	seq := []struct {
		k, v uint64
		want switchsim.Decision
	}{
		{1, 10, switchsim.Forward},
		{1, 10, switchsim.Prune},
		{1, 11, switchsim.Forward},
		{2, 1, switchsim.Forward},
		{1, 5, switchsim.Prune},
	}
	for i, s := range seq {
		if got := p.Process([]uint64{s.k, s.v}); got != s.want {
			t.Fatalf("step %d: %v, want %v", i, got, s.want)
		}
	}
	// Lower-bounds the constrained GROUP BY pruner.
	gb, _ := NewGroupBy(GroupByConfig{Rows: 4, Cols: 1, Seed: 1})
	p.Reset()
	s := uint64(3)
	for i := 0; i < 20000; i++ {
		s = hashutil.SplitMix64(s)
		vals := []uint64{s % 100, s >> 32 % 1000}
		p.Process(vals)
		gb.Process(vals)
	}
	if p.Stats().Forwarded() > gb.Stats().Forwarded() {
		t.Fatal("OPT group-by forwarded more than constrained pruner")
	}
}

func TestOptJoinExact(t *testing.T) {
	p := NewOptJoin()
	a, b := joinStream(50, 500, 500, 3)
	for _, k := range a {
		p.Process([]uint64{uint64(SideA), k})
	}
	for _, k := range b {
		p.Process([]uint64{uint64(SideB), k})
	}
	p.StartProbe()
	matched := map[uint64]bool{}
	for _, k := range a[:50] {
		matched[k] = true
	}
	for _, k := range a {
		dec := p.Process([]uint64{uint64(SideA), k})
		if matched[k] != (dec == switchsim.Forward) {
			t.Fatalf("OPT join wrong verdict for key %d", k)
		}
	}
}

func TestOptHavingExactOneSided(t *testing.T) {
	p := NewOptHaving(10)
	// key 1 sums: 4, 8, 13 → forwarded only once sum crosses 10.
	if p.Process([]uint64{1, 4}) != switchsim.Prune {
		t.Fatal("sum 4 should prune")
	}
	if p.Process([]uint64{1, 4}) != switchsim.Prune {
		t.Fatal("sum 8 should prune")
	}
	if p.Process([]uint64{1, 5}) != switchsim.Forward {
		t.Fatal("sum 13 should forward")
	}
	// OPT forwards no more than the sketched pruner.
	hv, _ := NewHaving(HavingConfig{Agg: HavingSum, Threshold: 10, Rows: 3, CountersPerRow: 16, Seed: 1})
	p.Reset()
	s := uint64(9)
	for i := 0; i < 20000; i++ {
		s = hashutil.SplitMix64(s)
		vals := []uint64{s % 500, s >> 48 % 8}
		p.Process(vals)
		hv.Process(vals)
	}
	if p.Stats().Forwarded() > hv.Stats().Forwarded() {
		t.Fatal("OPT having forwarded more than sketch pruner")
	}
}

func TestOptDistinctLowerBoundsMatrix(t *testing.T) {
	opt := NewOptDistinct()
	m, _ := NewDistinct(DistinctConfig{Rows: 64, Cols: 2, Policy: cache.FIFO, Seed: 1})
	s := uint64(13)
	for i := 0; i < 50000; i++ {
		s = hashutil.SplitMix64(s)
		v := []uint64{s % 3000}
		opt.Process(v)
		m.Process(v)
	}
	if opt.Stats().Forwarded() > m.Stats().Forwarded() {
		t.Fatal("OPT distinct forwarded more than matrix pruner")
	}
}

func TestOptResets(t *testing.T) {
	prs := []Pruner{NewOptDistinct(), NewOptTopN(3), NewOptSkyline(2), NewOptGroupBy(), NewOptJoin(), NewOptHaving(5)}
	for _, p := range prs {
		switch p.Name() {
		case "opt-join":
			p.Process([]uint64{0, 1})
		case "opt-groupby", "opt-having":
			p.Process([]uint64{1, 2})
		case "opt-skyline":
			p.Process([]uint64{1, 2})
		default:
			p.Process([]uint64{1})
		}
		p.Reset()
		if p.Stats().Processed != 0 {
			t.Fatalf("%s: reset incomplete", p.Name())
		}
		if p.Guarantee() != Deterministic {
			t.Fatalf("%s: OPT streams are deterministic", p.Name())
		}
		if p.Profile().Name != p.Name() {
			t.Fatalf("%s: profile name mismatch", p.Name())
		}
	}
}
