package prune

import (
	"fmt"
	"math"

	"cheetah/internal/cache"
	"cheetah/internal/sketch"
	"cheetah/internal/switchsim"
)

// DistinctConfig configures the DISTINCT pruner (§4.2, Example #2).
type DistinctConfig struct {
	// Rows (d) and Cols (w) size the cache matrix. Paper defaults:
	// d=4096, w=2 (Table 2).
	Rows, Cols int
	// Policy selects FIFO (cheaper, Table 2's starred row) or LRU
	// replacement.
	Policy cache.Policy
	// FingerprintBits, when non-zero, declares that CWorkers send
	// fingerprints of this length instead of raw values (Example #8).
	// It only affects the guarantee classification and the metadata
	// accounting; values arriving at Process are already fingerprinted.
	FingerprintBits uint
	// Seed drives row selection.
	Seed uint64
	// ALUsPerStage is Table 2's A (0 selects DefaultALUsPerStage).
	ALUsPerStage int
}

// Distinct is the DISTINCT pruner: a d×w matrix of per-row caches with
// rolling replacement. A value found in its row is a guaranteed duplicate
// and is pruned; cache misses (including evicted re-appearances — the
// false negatives) are forwarded for the master to deduplicate.
type Distinct struct {
	cfg    DistinctConfig
	matrix *cache.Matrix
	stats  Stats
}

// NewDistinct builds the pruner.
func NewDistinct(cfg DistinctConfig) (*Distinct, error) {
	if err := validateDims("distinct", cfg.Rows, cfg.Cols); err != nil {
		return nil, err
	}
	if cfg.FingerprintBits > 64 {
		return nil, fmt.Errorf("prune: distinct fingerprint bits %d > 64", cfg.FingerprintBits)
	}
	if cfg.ALUsPerStage == 0 {
		cfg.ALUsPerStage = DefaultALUsPerStage
	}
	if cfg.ALUsPerStage < 0 {
		return nil, fmt.Errorf("prune: distinct ALUs per stage %d must be positive", cfg.ALUsPerStage)
	}
	m, err := cache.NewMatrix(cfg.Rows, cfg.Cols, cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Distinct{cfg: cfg, matrix: m}, nil
}

// Name implements Pruner.
func (p *Distinct) Name() string { return "distinct-" + p.cfg.Policy.String() }

// Guarantee implements Pruner: exact values give a deterministic
// guarantee; fingerprinting makes the result correct with probability
// 1-δ per Theorem 4.
func (p *Distinct) Guarantee() Guarantee {
	if p.cfg.FingerprintBits > 0 {
		return Randomized
	}
	return Deterministic
}

// Profile implements switchsim.Program with Table 2's DISTINCT row:
// FIFO packs ⌈w/A⌉ stages (same-stage ALUs share the row memory), LRU
// needs a stage per column; both use w ALUs and (d·w)×64b SRAM.
func (p *Distinct) Profile() switchsim.Profile {
	stages := p.cfg.Cols
	shared := false
	if p.cfg.Policy == cache.FIFO {
		stages = ceilDiv(p.cfg.Cols, p.cfg.ALUsPerStage)
		shared = true
	}
	return switchsim.Profile{
		Name:              p.Name(),
		Stages:            stages,
		ALUs:              p.cfg.Cols,
		SRAMBits:          p.matrix.MemoryBits(),
		MetadataBits:      64 + 32, // value/fingerprint + row index
		SharedStageMemory: shared,
	}
}

// Process implements switchsim.Program. vals[0] carries the (possibly
// fingerprinted) DISTINCT key.
func (p *Distinct) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	if p.matrix.Insert(vals[0]) {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram: one tight sweep over
// the key column with the matrix pointer and statistics hoisted out of
// the loop.
func (p *Distinct) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	m := p.matrix
	pruned := uint64(0)
	col := b.Cols[0][:b.N]
	for j, v := range col {
		if m.Insert(v) {
			decisions[j] = switchsim.Prune
			pruned++
		} else {
			decisions[j] = switchsim.Forward
		}
	}
	p.stats.Processed += uint64(len(col))
	p.stats.Pruned += pruned
}

// Reset implements switchsim.Program.
func (p *Distinct) Reset() {
	p.matrix.Reset()
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *Distinct) Stats() Stats { return p.stats }

// ExpectedDistinctPruneFraction is Theorem 1's lower bound on the
// expected fraction of duplicate entries pruned on a random-order stream
// with D distinct values: 0.99·min(w·d/(D·e), 1), valid for
// D > d·ln(200d).
func ExpectedDistinctPruneFraction(distinct, d, w int) float64 {
	if distinct <= 0 || d <= 0 || w <= 0 {
		return 0
	}
	frac := float64(w) * float64(d) / (float64(distinct) * math.E)
	if frac > 1 {
		frac = 1
	}
	return 0.99 * frac
}

// DistinctFingerprintBits sizes fingerprints for a DISTINCT query per
// Theorem 4 given the expected distinct count, row count and error budget.
func DistinctFingerprintBits(distinct, d int, delta float64) (uint, error) {
	return sketch.FingerprintBits(distinct, d, delta)
}
