package prune

import (
	"math"
	"testing"
	"testing/quick"

	"cheetah/internal/cache"
	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

func TestDistinctConstructorValidation(t *testing.T) {
	if _, err := NewDistinct(DistinctConfig{Rows: 0, Cols: 2}); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewDistinct(DistinctConfig{Rows: 2, Cols: 0}); err == nil {
		t.Fatal("w=0 accepted")
	}
	if _, err := NewDistinct(DistinctConfig{Rows: 2, Cols: 2, FingerprintBits: 65}); err == nil {
		t.Fatal("fingerprint 65 bits accepted")
	}
	if _, err := NewDistinct(DistinctConfig{Rows: 2, Cols: 2, ALUsPerStage: -1}); err == nil {
		t.Fatal("negative ALUs accepted")
	}
}

func TestDistinctNeverPrunesFirstOccurrence(t *testing.T) {
	// The pruning invariant for DISTINCT: a pruned entry is always a
	// duplicate, so the forwarded set contains every distinct value and
	// Q(A(D)) = Q(D).
	p, err := NewDistinct(DistinctConfig{Rows: 64, Cols: 2, Policy: cache.FIFO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(stream []uint16) bool {
		p.Reset()
		seen := map[uint64]bool{}
		forwarded := map[uint64]bool{}
		for _, x := range stream {
			v := uint64(x % 512)
			dec := p.Process([]uint64{v})
			if dec == switchsim.Prune && !seen[v] {
				return false // pruned a first occurrence
			}
			if dec == switchsim.Forward {
				forwarded[v] = true
			}
			seen[v] = true
		}
		// Every distinct value must have been forwarded at least once.
		for v := range seen {
			if !forwarded[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctLRUInvariant(t *testing.T) {
	p, _ := NewDistinct(DistinctConfig{Rows: 16, Cols: 2, Policy: cache.LRU, Seed: 3})
	f := func(stream []uint16) bool {
		p.Reset()
		seen := map[uint64]bool{}
		for _, x := range stream {
			v := uint64(x % 256)
			if p.Process([]uint64{v}) == switchsim.Prune && !seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctPrunesAllDuplicatesWhenFits(t *testing.T) {
	// Fig. 10a: with w=2, d=4096 Cheetah prunes all duplicates when the
	// distinct count is far below capacity.
	run := func(distinct uint64) float64 {
		p, _ := NewDistinct(DistinctConfig{Rows: 4096, Cols: 2, Policy: cache.LRU, Seed: 5})
		const total = 200_000
		s := uint64(99)
		dupes, prunedDupes := 0, 0
		seen := map[uint64]bool{}
		for i := 0; i < total; i++ {
			s = hashutil.SplitMix64(s)
			v := s % distinct
			isDup := seen[v]
			seen[v] = true
			dec := p.Process([]uint64{v})
			if isDup {
				dupes++
				if dec == switchsim.Prune {
					prunedDupes++
				}
			}
		}
		return float64(prunedDupes) / float64(dupes)
	}
	// D=200 into 4096 rows: w.h.p. no row holds >2 distinct values, so
	// every duplicate is pruned.
	if rate := run(200); rate < 0.9999 {
		t.Fatalf("D=200 duplicate prune rate %.5f, want ~1.0", rate)
	}
	// D=2000: a few rows exceed w=2 by balls-in-bins and churn, but the
	// rate stays very high.
	if rate := run(2000); rate < 0.95 {
		t.Fatalf("D=2000 duplicate prune rate %.4f, want ≥0.95", rate)
	}
}

func TestDistinctTheorem1Bound(t *testing.T) {
	// Paper example: D=15000, d=1000, w=24 → expected prune of duplicates
	// ≥ 58%. Random-order stream.
	const D = 15000
	const d = 1000
	const w = 24
	bound := ExpectedDistinctPruneFraction(D, d, w)
	if math.Abs(bound-0.5827) > 0.01 {
		t.Fatalf("Theorem 1 bound = %v, paper says ≈0.58", bound)
	}
	p, _ := NewDistinct(DistinctConfig{Rows: d, Cols: w, Policy: cache.LRU, Seed: 11})
	// Random-order stream: 10 occurrences of each of D values, shuffled.
	const reps = 10
	stream := make([]uint64, 0, D*reps)
	for v := 0; v < D; v++ {
		for r := 0; r < reps; r++ {
			stream = append(stream, uint64(v))
		}
	}
	s := uint64(7)
	for i := len(stream) - 1; i > 0; i-- {
		s = hashutil.SplitMix64(s)
		j := int(hashutil.ReduceFull(s, uint64(i+1)))
		stream[i], stream[j] = stream[j], stream[i]
	}
	seen := map[uint64]bool{}
	dupes, prunedDupes := 0, 0
	for _, v := range stream {
		isDup := seen[v]
		seen[v] = true
		if p.Process([]uint64{v}) == switchsim.Prune {
			prunedDupes++
		}
		if isDup {
			dupes++
		}
	}
	rate := float64(prunedDupes) / float64(dupes)
	if rate < bound-0.05 {
		t.Fatalf("measured duplicate prune rate %.3f below Theorem 1 bound %.3f", rate, bound)
	}
}

func TestDistinctStatsAndName(t *testing.T) {
	p, _ := NewDistinct(DistinctConfig{Rows: 8, Cols: 2, Policy: cache.FIFO, Seed: 1})
	p.Process([]uint64{1})
	p.Process([]uint64{1})
	st := p.Stats()
	if st.Processed != 2 || st.Pruned != 1 || st.Forwarded() != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PruneRate() != 0.5 || st.UnprunedRate() != 0.5 {
		t.Fatalf("rates = %v, %v", st.PruneRate(), st.UnprunedRate())
	}
	if p.Name() != "distinct-FIFO" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Guarantee() != Deterministic {
		t.Fatal("exact distinct should be deterministic")
	}
	fp, _ := NewDistinct(DistinctConfig{Rows: 8, Cols: 2, FingerprintBits: 32})
	if fp.Guarantee() != Randomized {
		t.Fatal("fingerprinted distinct should be randomized")
	}
	var zero Stats
	if zero.PruneRate() != 0 || zero.UnprunedRate() != 0 {
		t.Fatal("zero stats rates should be 0")
	}
}

func TestDistinctProfileTable2(t *testing.T) {
	// Table 2, DISTINCT defaults w=2, d=4096:
	// FIFO*: ⌈w/A⌉ stages, w ALUs, (d·w)×64b SRAM, 0 TCAM.
	fifo, _ := NewDistinct(DistinctConfig{Rows: 4096, Cols: 2, Policy: cache.FIFO})
	prof := fifo.Profile()
	if prof.Stages != 1 { // ceil(2/10)
		t.Fatalf("FIFO stages = %d, want 1", prof.Stages)
	}
	if prof.ALUs != 2 {
		t.Fatalf("FIFO ALUs = %d, want 2", prof.ALUs)
	}
	if prof.SRAMBits != 4096*2*64 {
		t.Fatalf("FIFO SRAM = %d, want %d", prof.SRAMBits, 4096*2*64)
	}
	if prof.TCAMEntries != 0 {
		t.Fatalf("FIFO TCAM = %d", prof.TCAMEntries)
	}
	if !prof.SharedStageMemory {
		t.Fatal("FIFO row is starred (shared stage memory) in Table 2")
	}
	// LRU: w stages, w ALUs.
	lru, _ := NewDistinct(DistinctConfig{Rows: 4096, Cols: 2, Policy: cache.LRU})
	prof = lru.Profile()
	if prof.Stages != 2 || prof.ALUs != 2 {
		t.Fatalf("LRU stages/ALUs = %d/%d, want 2/2", prof.Stages, prof.ALUs)
	}
	if prof.SharedStageMemory {
		t.Fatal("LRU must not claim shared stage memory")
	}
}

func TestDistinctInstallsOnTofino(t *testing.T) {
	pl, err := switchsim.NewPipeline(switchsim.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewDistinct(DistinctConfig{Rows: 4096, Cols: 2, Policy: cache.LRU})
	if err := pl.Install(1, p); err != nil {
		t.Fatalf("paper-default DISTINCT does not fit Tofino model: %v", err)
	}
	if pl.Process(1, []uint64{9}) != switchsim.Forward {
		t.Fatal("first value through pipeline should forward")
	}
	if pl.Process(1, []uint64{9}) != switchsim.Prune {
		t.Fatal("duplicate through pipeline should prune")
	}
}

func TestExpectedDistinctPruneFractionEdges(t *testing.T) {
	if ExpectedDistinctPruneFraction(0, 1, 1) != 0 {
		t.Fatal("D=0")
	}
	// Saturates at 0.99 when capacity exceeds distinct·e.
	if got := ExpectedDistinctPruneFraction(10, 1000, 24); got != 0.99 {
		t.Fatalf("saturated bound = %v", got)
	}
}

func TestDistinctFingerprintBitsDelegates(t *testing.T) {
	bits, err := DistinctFingerprintBits(500_000_000, 1000, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if bits == 0 || bits > 64 {
		t.Fatalf("bits = %d", bits)
	}
}

func BenchmarkDistinctProcess(b *testing.B) {
	p, _ := NewDistinct(DistinctConfig{Rows: 4096, Cols: 2, Policy: cache.LRU, Seed: 1})
	vals := []uint64{0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vals[0] = uint64(i % 100000)
		p.Process(vals)
	}
}
