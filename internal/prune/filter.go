package prune

import (
	"fmt"

	"cheetah/internal/boolexpr"
	"cheetah/internal/switchsim"
)

// CmpOp is a comparison operator the switch ALUs support (§4.1).
type CmpOp uint8

const (
	// OpGT is >.
	OpGT CmpOp = iota
	// OpGE is >=.
	OpGE
	// OpLT is <.
	OpLT
	// OpLE is <=.
	OpLE
	// OpEQ is ==.
	OpEQ
	// OpNE is !=.
	OpNE
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "=="
	case OpNE:
		return "!="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Predicate is one basic predicate of a WHERE clause, in one of two
// forms:
//
//   - a switch-evaluable comparison ValIdx-th value ⟨Op⟩ Const, or
//   - a worker-precomputed bit (Precomputed=true): the CWorker evaluates
//     an unsupported predicate (e.g. name LIKE 'e%s') host-side and ships
//     the boolean as value ValIdx (§4.1: "the CWorker can compute
//     (name LIKE e%s) and add the result as one of the values in the
//     sent packet").
type Predicate struct {
	ValIdx      int
	Op          CmpOp
	Const       int64
	Precomputed bool
}

// Eval evaluates the predicate against an entry's header values.
func (p Predicate) Eval(vals []uint64) bool {
	if p.Precomputed {
		return vals[p.ValIdx] != 0
	}
	v := int64(vals[p.ValIdx])
	switch p.Op {
	case OpGT:
		return v > p.Const
	case OpGE:
		return v >= p.Const
	case OpLT:
		return v < p.Const
	case OpLE:
		return v <= p.Const
	case OpEQ:
		return v == p.Const
	case OpNE:
		return v != p.Const
	default:
		return false
	}
}

// FilterConfig configures the filtering pruner.
type FilterConfig struct {
	// Predicates are the basic predicates; boolexpr.Leaf{i} in Formula
	// refers to Predicates[i].
	Predicates []Predicate
	// Formula is the monotone WHERE formula over the predicates. The
	// caller has already decomposed away unsupported predicates
	// (boolexpr.Decompose) or arranged for them to arrive precomputed.
	Formula boolexpr.Expr
}

// Filter prunes entries failing the switch-evaluable part of a WHERE
// clause: every predicate is one ALU comparison producing a metadata bit,
// and the bit-vector indexes a truth table that yields the prune/forward
// verdict (§4.1).
type Filter struct {
	cfg   FilterConfig
	tt    *boolexpr.TruthTable
	idx   []uint32 // batch scratch: per-entry predicate bit-vectors
	stats Stats
}

// NewFilter builds the pruner, compiling the formula to its truth table.
func NewFilter(cfg FilterConfig) (*Filter, error) {
	if len(cfg.Predicates) == 0 {
		return nil, fmt.Errorf("prune: filter needs at least one predicate")
	}
	if cfg.Formula == nil {
		return nil, fmt.Errorf("prune: filter needs a formula")
	}
	for i, pr := range cfg.Predicates {
		if pr.ValIdx < 0 {
			return nil, fmt.Errorf("prune: predicate %d has negative value index", i)
		}
	}
	vars := make([]int, len(cfg.Predicates))
	for i := range vars {
		vars[i] = i
	}
	tt, err := boolexpr.Compile(cfg.Formula, vars)
	if err != nil {
		return nil, err
	}
	return &Filter{cfg: cfg, tt: tt}, nil
}

// Name implements Pruner.
func (p *Filter) Name() string { return "filter" }

// Guarantee implements Pruner.
func (p *Filter) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program: one ALU per predicate (A.2.2:
// "filtering a single condition requires just 1 ALU"), one 32-bit
// register per runtime-configurable constant, and the truth table (one
// SRAM word per entry) in a final stage.
func (p *Filter) Profile() switchsim.Profile {
	n := len(p.cfg.Predicates)
	return switchsim.Profile{
		Name:         p.Name(),
		Stages:       1 + ceilDiv(n, DefaultALUsPerStage),
		ALUs:         n + 1,
		SRAMBits:     n*32 + p.tt.Entries(),
		MetadataBits: 64 + n,
	}
}

// Process implements switchsim.Program: evaluate predicate bits, look up
// the truth table, prune on false.
func (p *Filter) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	var idx uint32
	for i, pr := range p.cfg.Predicates {
		if pr.Eval(vals) {
			idx |= 1 << uint(i)
		}
	}
	if !p.tt.Lookup(idx) {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram. The evaluation is
// column-at-a-time: each predicate sweeps its value column once, OR-ing
// its metadata bit into a per-entry bit-vector, and a final sweep looks
// the vectors up in the truth table — the same stage-parallel structure
// the hardware uses, with the operator dispatch hoisted out of the
// per-entry loop.
func (p *Filter) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	n := b.N
	if cap(p.idx) < n {
		p.idx = make([]uint32, n)
	}
	idx := p.idx[:n]
	for j := range idx {
		idx[j] = 0
	}
	for i := range p.cfg.Predicates {
		pr := &p.cfg.Predicates[i]
		col := b.Cols[pr.ValIdx][:n]
		bit := uint32(1) << uint(i)
		if pr.Precomputed {
			for j, v := range col {
				if v != 0 {
					idx[j] |= bit
				}
			}
			continue
		}
		c := pr.Const
		switch pr.Op {
		case OpGT:
			for j, v := range col {
				if int64(v) > c {
					idx[j] |= bit
				}
			}
		case OpGE:
			for j, v := range col {
				if int64(v) >= c {
					idx[j] |= bit
				}
			}
		case OpLT:
			for j, v := range col {
				if int64(v) < c {
					idx[j] |= bit
				}
			}
		case OpLE:
			for j, v := range col {
				if int64(v) <= c {
					idx[j] |= bit
				}
			}
		case OpEQ:
			for j, v := range col {
				if int64(v) == c {
					idx[j] |= bit
				}
			}
		case OpNE:
			for j, v := range col {
				if int64(v) != c {
					idx[j] |= bit
				}
			}
		}
	}
	pruned := uint64(0)
	for j, v := range idx {
		if p.tt.Lookup(v) {
			decisions[j] = switchsim.Forward
		} else {
			decisions[j] = switchsim.Prune
			pruned++
		}
	}
	p.stats.Processed += uint64(n)
	p.stats.Pruned += pruned
}

// Reset implements switchsim.Program. Filtering is stateless, so only
// the statistics clear.
func (p *Filter) Reset() { p.stats = Stats{} }

// Stats implements Pruner.
func (p *Filter) Stats() Stats { return p.stats }
