package prune

import (
	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

// Drainer is implemented by pruners that hold switch state the master
// must receive at end-of-stream (SKYLINE's stored points, GROUP BY SUM's
// partial aggregates). The control plane reads and clears the state when
// all workers have sent FIN.
type Drainer interface {
	Drain() [][]uint64
}

// Emitter is implemented by pruners that rewrite packets in flight: the
// entry that arrived is absorbed into switch state and the packet leaves
// carrying different values (an evicted aggregate, as in §6's in-switch
// SUM). The engine calls ProcessEmit instead of Process when available.
type Emitter interface {
	// ProcessEmit handles one entry. When the returned decision is
	// Forward, out holds the values the forwarded packet carries (which
	// may differ from vals). out is only valid until the next call.
	ProcessEmit(vals []uint64) (d switchsim.Decision, out []uint64)
}

// GroupBySumConfig configures the SUM GROUP BY offload used for the
// BigData benchmark's query B (§6): the switch keeps d×w (key, partial
// sum) pairs; entries matching a cached key are absorbed (summed and
// pruned); evictions emit the displaced aggregate toward the master; the
// residue drains at end-of-stream.
type GroupBySumConfig struct {
	// Rows (d) and Cols (w) size the aggregation matrix.
	Rows, Cols int
	// Seed drives key-to-row hashing.
	Seed uint64
}

// GroupBySum is the in-switch partial-aggregation pruner. Correctness is
// conservation: every entry's value is accounted exactly once, either in
// a still-cached partial sum (drained at FIN) or in an emitted aggregate
// packet, so the master's per-key totals equal the true sums.
type GroupBySum struct {
	cfg   GroupBySumConfig
	keys  []uint64
	sums  []int64
	used  []bool
	emit  []uint64 // scratch for the emitted (key, sum) pair
	stats Stats
}

// NewGroupBySum builds the pruner.
func NewGroupBySum(cfg GroupBySumConfig) (*GroupBySum, error) {
	if err := validateDims("group-by-sum", cfg.Rows, cfg.Cols); err != nil {
		return nil, err
	}
	n := cfg.Rows * cfg.Cols
	return &GroupBySum{
		cfg:  cfg,
		keys: make([]uint64, n),
		sums: make([]int64, n),
		used: make([]bool, n),
		emit: make([]uint64, 2),
	}, nil
}

// Name implements Pruner.
func (p *GroupBySum) Name() string { return "groupby-sum" }

// Guarantee implements Pruner.
func (p *GroupBySum) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program: like GROUP BY but each slot holds
// a key and a sum register.
func (p *GroupBySum) Profile() switchsim.Profile {
	return switchsim.Profile{
		Name:         p.Name(),
		Stages:       p.cfg.Cols,
		ALUs:         p.cfg.Cols,
		SRAMBits:     p.cfg.Rows * p.cfg.Cols * 2 * 64,
		MetadataBits: 64 + 64 + 32,
	}
}

// Process implements switchsim.Program for callers unaware of emission:
// evictions are conservatively forwarded carrying the *arriving* entry
// (losing the absorption benefit but never correctness). Prefer
// ProcessEmit.
func (p *GroupBySum) Process(vals []uint64) switchsim.Decision {
	d, _ := p.ProcessEmit(vals)
	return d
}

// ProcessEmit implements Emitter. vals[0] is the (fingerprinted) group
// key, vals[1] the summand as int64.
func (p *GroupBySum) ProcessEmit(vals []uint64) (switchsim.Decision, []uint64) {
	p.stats.Processed++
	key := vals[0]
	v := int64(vals[1])
	row := hashutil.Reduce(hashutil.HashUint64(key, p.cfg.Seed), p.cfg.Rows)
	base := row * p.cfg.Cols
	free := -1
	for i := base; i < base+p.cfg.Cols; i++ {
		if !p.used[i] {
			if free < 0 {
				free = i
			}
			continue
		}
		if p.keys[i] == key {
			// Absorb: the entry's value joins the cached partial sum and
			// the packet is pruned (and ACKed by the reliability layer).
			p.sums[i] += v
			p.stats.Pruned++
			return switchsim.Prune, nil
		}
	}
	if free >= 0 {
		p.used[free] = true
		p.keys[free] = key
		p.sums[free] = v
		p.stats.Pruned++
		return switchsim.Prune, nil
	}
	// Row full: evict the first slot (rolling replacement), forwarding
	// the evicted aggregate in the rewritten packet.
	p.emit[0] = p.keys[base]
	p.emit[1] = uint64(p.sums[base])
	copy(p.keys[base:base+p.cfg.Cols-1], p.keys[base+1:base+p.cfg.Cols])
	copy(p.sums[base:base+p.cfg.Cols-1], p.sums[base+1:base+p.cfg.Cols])
	p.keys[base+p.cfg.Cols-1] = key
	p.sums[base+p.cfg.Cols-1] = v
	return switchsim.Forward, p.emit
}

// ProcessBatch implements switchsim.BatchProgram with the batch's packet
// rewriting contract: an absorbed entry is marked Prune; an eviction is
// marked Forward and the entry's key and value columns are overwritten
// in place with the displaced (key, partial sum) aggregate, modeling the
// rewritten packet the master receives. Callers needing the original
// values must read them before processing.
func (p *GroupBySum) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	keys := b.Cols[0][:b.N]
	sums := b.Cols[1][:b.N]
	var scratch [2]uint64
	for j := range keys {
		scratch[0], scratch[1] = keys[j], sums[j]
		d, out := p.ProcessEmit(scratch[:])
		decisions[j] = d
		if d == switchsim.Forward {
			keys[j], sums[j] = out[0], out[1]
		}
	}
}

// Drain implements Drainer: the cached partial sums leave the switch as
// (key, sum) pairs at end-of-stream.
func (p *GroupBySum) Drain() [][]uint64 {
	var out [][]uint64
	for i, u := range p.used {
		if !u {
			continue
		}
		out = append(out, []uint64{p.keys[i], uint64(p.sums[i])})
		p.used[i] = false
	}
	return out
}

// Reset implements switchsim.Program.
func (p *GroupBySum) Reset() {
	for i := range p.used {
		p.used[i] = false
	}
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *GroupBySum) Stats() Stats { return p.stats }

var (
	_ Pruner  = (*GroupBySum)(nil)
	_ Emitter = (*GroupBySum)(nil)
	_ Drainer = (*GroupBySum)(nil)
	_ Drainer = (*Skyline)(nil)
)
