// Package prune implements Cheetah's query pruning algorithms (§4–§5):
// Filtering, DISTINCT, TOP N (deterministic and randomized), GROUP BY,
// JOIN, HAVING and SKYLINE. Each pruner is a switchsim.Program — it
// declares its Table 2 resource profile and makes a per-entry
// prune/forward decision using only operations the PISA datapath
// supports: hashing, comparisons, register reads/writes, table lookups.
//
// The package also provides the paper's configuration formulas
// (Theorem 2's matrix-column count, the Lambert-W-guided optimal row
// count, Theorem 1/3's pruning-rate bounds) and the unconstrained "OPT"
// reference streams used as upper bounds in Figures 10 and 11.
package prune

import (
	"fmt"

	"cheetah/internal/switchsim"
)

// Guarantee classifies a pruner's correctness guarantee (Appendix A).
type Guarantee uint8

const (
	// Deterministic pruners always satisfy Q(A(D)) = Q(D).
	Deterministic Guarantee = iota
	// Randomized pruners satisfy Pr[Q(A(D)) ≠ Q(D)] ≤ δ.
	Randomized
)

// String renders the guarantee.
func (g Guarantee) String() string {
	if g == Randomized {
		return "randomized"
	}
	return "deterministic"
}

// Stats counts a pruner's traffic.
type Stats struct {
	Processed uint64 // entries seen
	Pruned    uint64 // entries dropped
}

// Forwarded returns Processed - Pruned.
func (s Stats) Forwarded() uint64 { return s.Processed - s.Pruned }

// PruneRate returns the fraction of processed entries that were pruned.
func (s Stats) PruneRate() float64 {
	if s.Processed == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Processed)
}

// UnprunedRate returns 1 - PruneRate (the y-axis of Figures 10 and 11).
func (s Stats) UnprunedRate() float64 {
	if s.Processed == 0 {
		return 0
	}
	return float64(s.Forwarded()) / float64(s.Processed)
}

// Pruner is a switch pruning program with traffic statistics.
type Pruner interface {
	switchsim.Program
	Name() string
	Guarantee() Guarantee
	Stats() Stats
}

// DefaultALUsPerStage is the per-stage stateful ALU count assumed when a
// profile formula divides work across stages (the "A" of Table 2).
const DefaultALUsPerStage = 10

// Every shipped pruner implements the batched fast path; the engine's
// batch pipeline falls back to per-entry Process only for third-party
// programs.
var (
	_ switchsim.BatchProgram = (*Filter)(nil)
	_ switchsim.BatchProgram = (*Distinct)(nil)
	_ switchsim.BatchProgram = (*DetTopN)(nil)
	_ switchsim.BatchProgram = (*RandTopN)(nil)
	_ switchsim.BatchProgram = (*GroupBy)(nil)
	_ switchsim.BatchProgram = (*GroupBySum)(nil)
	_ switchsim.BatchProgram = (*Having)(nil)
	_ switchsim.BatchProgram = (*Join)(nil)
	_ switchsim.BatchProgram = (*Skyline)(nil)
)

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// validateDims rejects non-positive matrix dimensions with a uniform
// error shape shared by the matrix-based pruners.
func validateDims(what string, d, w int) error {
	if d <= 0 || w <= 0 {
		return fmt.Errorf("prune: %s dimensions d=%d w=%d must be positive", what, d, w)
	}
	return nil
}
