package prune

import (
	"fmt"
	"math/bits"

	"cheetah/internal/aph"
	"cheetah/internal/switchsim"
)

// SkylineHeuristic selects the projection h: R^D → R used to decide which
// points the switch retains (§4.4).
type SkylineHeuristic uint8

const (
	// SkylineSum is hS(x) = Σ xᵢ — cheap but biased toward dimensions
	// with larger ranges.
	SkylineSum SkylineHeuristic = iota
	// SkylineAPH is the Approximate Product Heuristic: sum of fixed-point
	// approximate logarithms, emulating hP(x) = Π xᵢ (Appendix D).
	SkylineAPH
	// SkylineBaseline stores the first w points with no replacement —
	// the "Baseline" curve of Figure 10b.
	SkylineBaseline
)

// String renders the heuristic.
func (h SkylineHeuristic) String() string {
	switch h {
	case SkylineAPH:
		return "APH"
	case SkylineBaseline:
		return "Baseline"
	default:
		return "Sum"
	}
}

// SkylineConfig configures the SKYLINE pruner (§4.4, Example #6).
type SkylineConfig struct {
	// Dims (D) is the point dimensionality. Paper default: 2.
	Dims int
	// Points (w) is the number of prune points stored on the switch.
	// Paper default: 10.
	Points int
	// Heuristic picks the projection.
	Heuristic SkylineHeuristic
	// Beta is the APH fixed-point scale (0 selects aph.DefaultBeta).
	Beta uint64
	// ALUsPerStage bounds per-stage comparisons; Table 2's SKYLINE row
	// assumes D ≤ A. 0 selects DefaultALUsPerStage.
	ALUsPerStage int
	// Seed is reserved for randomized variants; the shipped heuristics
	// are deterministic and ignore it.
	Seed uint64
}

// Skyline prunes SKYLINE OF d1,...,dD queries (all dimensions maximized).
// The switch stores w points, each over two logical stages (score, then
// coordinates). An arriving point with a higher score than a stored point
// replaces it — the displaced point rides the packet onward — and a point
// dominated by any stored point is marked and dropped at the end of the
// pipeline. Stored points are exactly the w highest-score points seen,
// which are always true skyline members under a monotone projection.
type Skyline struct {
	cfg     SkylineConfig
	proj    *aph.Projector // nil unless APH
	scores  []uint64
	pts     [][]uint64 // w × D coordinate store
	ids     []uint64   // entry identifier stored alongside each point
	fill    int
	carry   []uint64 // scratch: the packet's current point
	carryID uint64
	gather  []uint64 // batch scratch: one entry's gathered values
	stats   Stats
}

// NewSkyline builds the pruner.
func NewSkyline(cfg SkylineConfig) (*Skyline, error) {
	if cfg.Dims <= 0 {
		return nil, fmt.Errorf("prune: skyline dimensionality %d must be positive", cfg.Dims)
	}
	if cfg.Points <= 0 {
		return nil, fmt.Errorf("prune: skyline point count %d must be positive", cfg.Points)
	}
	if cfg.ALUsPerStage == 0 {
		cfg.ALUsPerStage = DefaultALUsPerStage
	}
	if cfg.Dims > cfg.ALUsPerStage {
		return nil, fmt.Errorf("prune: skyline needs D=%d ≤ A=%d comparisons per stage (Table 2)", cfg.Dims, cfg.ALUsPerStage)
	}
	s := &Skyline{
		cfg:    cfg,
		scores: make([]uint64, cfg.Points),
		pts:    make([][]uint64, cfg.Points),
		ids:    make([]uint64, cfg.Points),
		carry:  make([]uint64, cfg.Dims),
	}
	for i := range s.pts {
		s.pts[i] = make([]uint64, cfg.Dims)
	}
	if cfg.Heuristic == SkylineAPH {
		beta := cfg.Beta
		if beta == 0 {
			beta = aph.DefaultBeta
		}
		proj, err := aph.New(beta)
		if err != nil {
			return nil, err
		}
		s.proj = proj
	}
	return s, nil
}

// Name implements Pruner.
func (p *Skyline) Name() string { return "skyline-" + p.cfg.Heuristic.String() }

// Guarantee implements Pruner.
func (p *Skyline) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program with Table 2's SKYLINE rows.
// SUM: log₂D + 2w stages, 2log₂D - 1 + w(D+1) ALUs, w(D+1)×64b SRAM.
// APH: log₂D + 2(w+1) stages, same ALUs, plus the 2¹⁶×32b log table and
// 64·D TCAM entries for the per-dimension MSB lookups.
func (p *Skyline) Profile() switchsim.Profile {
	d, w := p.cfg.Dims, p.cfg.Points
	log2D := bits.Len(uint(d))
	if d&(d-1) == 0 && d > 1 {
		log2D--
	}
	if log2D < 1 {
		log2D = 1
	}
	prof := switchsim.Profile{
		Name:         p.Name(),
		ALUs:         2*log2D - 1 + w*(d+1),
		SRAMBits:     w * (d + 1) * 64,
		MetadataBits: 64*(d+1) + 16,
	}
	switch p.cfg.Heuristic {
	case SkylineAPH:
		prof.Stages = log2D + 2*(w+1)
		prof.SRAMBits += aph.TableEntries * 32
		prof.TCAMEntries = aph.MSBTCAMRules * d
	case SkylineBaseline:
		prof.Stages = 2 * w // no score pipeline, direct dominance checks
		prof.ALUs = w * d
		prof.SRAMBits = w * d * 64
	default: // Sum
		prof.Stages = log2D + 2*w
	}
	return prof
}

// score projects a point.
func (p *Skyline) score(pt []uint64) uint64 {
	if p.proj != nil {
		return p.proj.Score(pt)
	}
	return aph.SumScore(pt)
}

// dominates reports whether a dominates b in all dimensions.
func dominates(a, b []uint64) bool {
	for i := range a {
		if b[i] > a[i] {
			return false
		}
	}
	return true
}

// Process implements switchsim.Program. vals holds the D coordinates,
// optionally followed by an entry identifier (vals[Dims]) that travels
// with the point through swaps so drained switch state can be
// late-materialized by the master.
func (p *Skyline) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	if len(vals) < p.cfg.Dims {
		// Malformed entry: forward untouched, never risk wrong pruning.
		return switchsim.Forward
	}
	id := uint64(0)
	if len(vals) > p.cfg.Dims {
		id = vals[p.cfg.Dims]
	}
	if p.cfg.Heuristic == SkylineBaseline {
		for i := 0; i < p.fill; i++ {
			if dominates(p.pts[i], vals[:p.cfg.Dims]) {
				p.stats.Pruned++
				return switchsim.Prune
			}
		}
		// "w arbitrary points": the first w points of the stream, with
		// no replacement — the natural arbitrary choice on a switch.
		if p.fill < p.cfg.Points {
			copy(p.pts[p.fill], vals[:p.cfg.Dims])
			p.ids[p.fill] = id
			p.fill++
		}
		return switchsim.Forward
	}

	copy(p.carry, vals[:p.cfg.Dims])
	p.carryID = id
	carryScore := p.score(p.carry)
	marked := false
	for i := 0; i < p.cfg.Points; i++ {
		if i >= p.fill {
			// Empty slot: store the carried point. The packet now carries
			// nothing — but the hardware still emits the packet; we model
			// the stored point as consumed and forward the original entry
			// so the master is guaranteed to see every stored point.
			copy(p.pts[i], p.carry)
			p.scores[i] = carryScore
			p.ids[i] = p.carryID
			p.fill++
			return switchsim.Forward
		}
		if carryScore > p.scores[i] {
			// Swap: the stored point continues down the pipeline.
			p.pts[i], p.carry = p.carry, p.pts[i]
			p.scores[i], carryScore = carryScore, p.scores[i]
			p.ids[i], p.carryID = p.carryID, p.ids[i]
			// A swapped-out point was not previously forwarded; it must
			// not inherit a prune mark earned by the point that displaced
			// it. Dominance marks below only ever apply to the current
			// carried point, so clear the mark on swap.
			marked = false
		} else if !marked && dominates(p.pts[i], p.carry) {
			// The carried point is dominated by a stored point: mark it;
			// the drop happens at the end of the pipeline (§4.4: "the
			// switch only drops the packet at the end of the pipeline").
			marked = true
		}
	}
	if marked {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram. SKYLINE's per-entry
// work is a full sweep of the stored points, so the batch win is the
// hoisted gather scratch and decision loop rather than a columnar inner
// loop; semantics are exactly sequential Process calls.
func (p *Skyline) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	width := len(b.Cols)
	if cap(p.gather) < width {
		p.gather = make([]uint64, width)
	}
	vals := p.gather[:width]
	for j := 0; j < b.N; j++ {
		for i, c := range b.Cols {
			vals[i] = c[j]
		}
		decisions[j] = p.Process(vals)
	}
}

// Reset implements switchsim.Program.
func (p *Skyline) Reset() {
	p.fill = 0
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *Skyline) Stats() Stats { return p.stats }

// StoredPoints returns copies of the points currently cached on the
// switch. With the swap discipline every arriving point is either
// forwarded, pruned (dominated), or currently stored — the forwarded
// stream plus the stored set always covers the true skyline; tests rely
// on this accessor.
func (p *Skyline) StoredPoints() [][]uint64 {
	out := make([][]uint64, p.fill)
	for i := 0; i < p.fill; i++ {
		out[i] = append([]uint64(nil), p.pts[i]...)
	}
	return out
}

// Drain implements Drainer: at end-of-stream the control plane reads the
// stored points (coordinates followed by the entry id) so the master can
// merge them into the survivor set. The switch state is cleared.
func (p *Skyline) Drain() [][]uint64 {
	out := make([][]uint64, p.fill)
	for i := 0; i < p.fill; i++ {
		e := make([]uint64, p.cfg.Dims+1)
		copy(e, p.pts[i])
		e[p.cfg.Dims] = p.ids[i]
		out[i] = e
	}
	p.fill = 0
	return out
}
