package prune

import (
	"testing"
	"testing/quick"

	"cheetah/internal/boolexpr"
	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

// --- GROUP BY ---

func TestGroupByValidation(t *testing.T) {
	if _, err := NewGroupBy(GroupByConfig{Rows: 0, Cols: 8}); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestGroupByMaxInvariant(t *testing.T) {
	// Pruning invariant: per-key max over forwarded entries equals the
	// true per-key max.
	p, _ := NewGroupBy(GroupByConfig{Rows: 16, Cols: 2, Seed: 7})
	f := func(stream []uint32) bool {
		p.Reset()
		truth := map[uint64]int64{}
		fwd := map[uint64]int64{}
		for _, x := range stream {
			key := uint64(x % 61)
			val := int64(x / 61)
			if cur, ok := truth[key]; !ok || val > cur {
				truth[key] = val
			}
			if p.Process([]uint64{key, uint64(val)}) == switchsim.Forward {
				if cur, ok := fwd[key]; !ok || val > cur {
					fwd[key] = val
				}
			}
		}
		for k, want := range truth {
			got, ok := fwd[k]
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByMinInvariant(t *testing.T) {
	p, _ := NewGroupBy(GroupByConfig{Rows: 16, Cols: 2, Min: true, Seed: 7})
	truth := map[uint64]int64{}
	fwd := map[uint64]int64{}
	s := uint64(3)
	for i := 0; i < 10000; i++ {
		s = hashutil.SplitMix64(s)
		key := s % 50
		val := int64(s>>32%1000) - 500
		if cur, ok := truth[key]; !ok || val < cur {
			truth[key] = val
		}
		if p.Process([]uint64{key, uint64(val)}) == switchsim.Forward {
			if cur, ok := fwd[key]; !ok || val < cur {
				fwd[key] = val
			}
		}
	}
	for k, want := range truth {
		if got, ok := fwd[k]; !ok || got != want {
			t.Fatalf("key %d: forwarded min %d (ok=%v), true min %d", k, got, ok, want)
		}
	}
	if p.Name() != "groupby-min" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestGroupByProfileTable2(t *testing.T) {
	// Table 2: GROUP BY default w=8 → w stages, w ALUs, d·w×64b SRAM.
	p, _ := NewGroupBy(GroupByConfig{Rows: 4096, Cols: 8})
	prof := p.Profile()
	if prof.Stages != 8 || prof.ALUs != 8 || prof.SRAMBits != 4096*8*64 || prof.TCAMEntries != 0 {
		t.Fatalf("profile = %+v", prof)
	}
}

// --- JOIN ---

func TestJoinValidation(t *testing.T) {
	if _, err := NewJoin(JoinConfig{FilterBits: 0, Hashes: 3}); err == nil {
		t.Fatal("M=0 accepted")
	}
	if _, err := NewJoin(JoinConfig{FilterBits: 64, Hashes: 0}); err == nil {
		t.Fatal("H=0 accepted")
	}
}

func joinStream(overlap, onlyA, onlyB int, seed uint64) (a, b []uint64) {
	s := seed
	next := func() uint64 { s = hashutil.SplitMix64(s); return s }
	for i := 0; i < overlap; i++ {
		k := next()
		a = append(a, k)
		b = append(b, k)
	}
	for i := 0; i < onlyA; i++ {
		a = append(a, next())
	}
	for i := 0; i < onlyB; i++ {
		b = append(b, next())
	}
	return a, b
}

func testJoinNoMatchedEntryPruned(t *testing.T, kind JoinFilterKind) {
	t.Helper()
	p, err := NewJoin(JoinConfig{FilterBits: 1 << 16, Hashes: 3, Kind: kind, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, b := joinStream(500, 2000, 2000, 11)
	// Pass 1: build. All build packets are consumed by the switch.
	for _, k := range a {
		if p.Process([]uint64{uint64(SideA), k}) != switchsim.Prune {
			t.Fatal("build-pass packet escaped the switch")
		}
	}
	for _, k := range b {
		p.Process([]uint64{uint64(SideB), k})
	}
	p.StartProbe()
	if p.Phase() != PhaseProbe {
		t.Fatal("phase did not advance")
	}
	// Pass 2: matched keys must never be pruned (Bloom has no false
	// negatives), on either side.
	matched := map[uint64]bool{}
	for _, k := range a[:500] {
		matched[k] = true
	}
	for _, k := range a {
		dec := p.Process([]uint64{uint64(SideA), k})
		if matched[k] && dec == switchsim.Prune {
			t.Fatalf("%v: matched key pruned from side A", kind)
		}
	}
	for _, k := range b {
		dec := p.Process([]uint64{uint64(SideB), k})
		if matched[k] && dec == switchsim.Prune {
			t.Fatalf("%v: matched key pruned from side B", kind)
		}
	}
}

func TestJoinBloomNoMatchedEntryPruned(t *testing.T) {
	testJoinNoMatchedEntryPruned(t, BloomFilter)
}

func TestJoinRegisterBloomNoMatchedEntryPruned(t *testing.T) {
	testJoinNoMatchedEntryPruned(t, RegisterBloomFilter)
}

func TestJoinPrunesNonMatching(t *testing.T) {
	p, _ := NewJoin(JoinConfig{FilterBits: 1 << 20, Hashes: 3, Seed: 5})
	a, b := joinStream(100, 5000, 5000, 13)
	for _, k := range a {
		p.Process([]uint64{uint64(SideA), k})
	}
	for _, k := range b {
		p.Process([]uint64{uint64(SideB), k})
	}
	p.StartProbe()
	prunedNonMatch := 0
	for _, k := range a[100:] { // A-only keys
		if p.Process([]uint64{uint64(SideA), k}) == switchsim.Prune {
			prunedNonMatch++
		}
	}
	if rate := float64(prunedNonMatch) / 5000; rate < 0.95 {
		t.Fatalf("non-matching prune rate %.3f too low with a roomy filter", rate)
	}
}

func TestJoinAsymmetric(t *testing.T) {
	// Small table A streams unpruned in pass 1; large table B pruned
	// against A's filter in pass 2. No matching B entry may be pruned.
	p, _ := NewJoin(JoinConfig{FilterBits: 1 << 16, Hashes: 3, Asymmetric: true, Seed: 5})
	a, b := joinStream(200, 300, 20000, 17)
	for _, k := range a {
		if p.Process([]uint64{uint64(SideA), k}) != switchsim.Forward {
			t.Fatal("asymmetric build pass must forward the small table")
		}
	}
	p.StartProbe()
	inA := map[uint64]bool{}
	for _, k := range a {
		inA[k] = true
	}
	pruned := 0
	for _, k := range b {
		dec := p.Process([]uint64{uint64(SideB), k})
		if inA[k] && dec == switchsim.Prune {
			t.Fatal("asymmetric probe pruned a matching key")
		}
		if dec == switchsim.Prune {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("asymmetric probe pruned nothing")
	}
}

func TestJoinProfileTable2(t *testing.T) {
	// Table 2: JOIN BF* defaults M=4MB, H=3 → 2 stages, H ALUs, M (per
	// filter; two filters) SRAM; RBF → 1 stage, 1 ALU, M + ⌈64/H⌉×64b.
	const m4 = 4 << 23 // 4MB in bits
	bf, _ := NewJoin(JoinConfig{FilterBits: m4, Hashes: 3, Kind: BloomFilter})
	prof := bf.Profile()
	if prof.Stages != 2 || prof.ALUs != 3 || prof.SRAMBits != 2*m4 {
		t.Fatalf("BF profile = %+v", prof)
	}
	if !prof.SharedStageMemory {
		t.Fatal("BF row is starred in Table 2")
	}
	rbf, _ := NewJoin(JoinConfig{FilterBits: m4, Hashes: 3, Kind: RegisterBloomFilter})
	prof = rbf.Profile()
	wantSpill := ((64 + 3 - 1) / 3) * 64
	// Table 2's "1 stage, 1 ALU" is per filter; the profile covers both.
	if prof.Stages != 2 || prof.ALUs != 2 || prof.SRAMBits != 2*m4+wantSpill {
		t.Fatalf("RBF profile = %+v (want spill %d)", prof, wantSpill)
	}
	if bf.Name() != "join-BF" || rbf.Name() != "join-RBF" {
		t.Fatal("names")
	}
}

func TestJoinReset(t *testing.T) {
	p, _ := NewJoin(JoinConfig{FilterBits: 1 << 12, Hashes: 2, Seed: 1})
	p.Process([]uint64{uint64(SideA), 42})
	p.StartProbe()
	p.Reset()
	if p.Phase() != PhaseBuild {
		t.Fatal("phase not reset")
	}
	if p.Stats().Processed != 0 {
		t.Fatal("stats not reset")
	}
	// After reset, key 42 must be gone from the filters.
	p.StartProbe()
	if p.Process([]uint64{uint64(SideB), 42}) != switchsim.Prune {
		t.Fatal("stale filter state after reset")
	}
}

// --- HAVING ---

func TestHavingValidation(t *testing.T) {
	if _, err := NewHaving(HavingConfig{Rows: 0, CountersPerRow: 8}); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if _, err := NewHaving(HavingConfig{Rows: 3, CountersPerRow: 8, Threshold: -1}); err == nil {
		t.Fatal("negative threshold accepted (paper defers < c)")
	}
}

func TestHavingSumOneSided(t *testing.T) {
	// Invariant: every key whose true SUM exceeds c has at least one
	// forwarded entry — the master's candidate set is a superset of the
	// true output.
	const c = 500
	p, _ := NewHaving(HavingConfig{Agg: HavingSum, Threshold: c, Rows: 3, CountersPerRow: 64, Seed: 3})
	f := func(stream []uint16) bool {
		p.Reset()
		sums := map[uint64]int64{}
		fwd := map[uint64]bool{}
		for _, x := range stream {
			key := uint64(x % 29)
			val := int64(x%97) + 1
			sums[key] += val
			if p.Process([]uint64{key, uint64(val)}) == switchsim.Forward {
				fwd[key] = true
			}
		}
		for k, s := range sums {
			if s > c && !fwd[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHavingCount(t *testing.T) {
	const c = 10
	p, _ := NewHaving(HavingConfig{Agg: HavingCount, Threshold: c, Rows: 3, CountersPerRow: 1024, Seed: 3})
	counts := map[uint64]int64{}
	fwd := map[uint64]bool{}
	s := uint64(5)
	for i := 0; i < 30000; i++ {
		s = hashutil.SplitMix64(s)
		key := s % 200
		counts[key]++
		if p.Process([]uint64{key, 1}) == switchsim.Forward {
			fwd[key] = true
		}
	}
	for k, n := range counts {
		if n > c && !fwd[k] {
			t.Fatalf("key %d count %d > %d but never forwarded", k, n, c)
		}
	}
	if p.Name() != "having-COUNT" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestHavingNegativeSummandSafe(t *testing.T) {
	p, _ := NewHaving(HavingConfig{Agg: HavingSum, Threshold: 100, Rows: 3, CountersPerRow: 64, Seed: 1})
	// Negative summand (as int64 reinterpreted) must be forwarded, never
	// pruned, to preserve one-sidedness.
	neg := int64(-5)
	if p.Process([]uint64{1, uint64(neg)}) != switchsim.Forward {
		t.Fatal("negative summand pruned")
	}
}

func TestHavingProfileTable2(t *testing.T) {
	// Table 2: HAVING defaults w=1024, d=3 → ⌈d/A⌉ stages, d ALUs,
	// (d·w)×64b SRAM.
	p, _ := NewHaving(HavingConfig{Agg: HavingSum, Threshold: 1, Rows: 3, CountersPerRow: 1024})
	prof := p.Profile()
	if prof.Stages != 1 || prof.ALUs != 3 || prof.SRAMBits != 3*1024*64 {
		t.Fatalf("profile = %+v", prof)
	}
	if p.Guarantee() != Deterministic {
		t.Fatal("one-sided sketch error keeps HAVING deterministic")
	}
}

func TestHavingEstimateUpperBounds(t *testing.T) {
	p, _ := NewHaving(HavingConfig{Agg: HavingSum, Threshold: 0, Rows: 3, CountersPerRow: 256, Seed: 9})
	truth := map[uint64]int64{}
	s := uint64(1)
	for i := 0; i < 5000; i++ {
		s = hashutil.SplitMix64(s)
		key := s % 100
		v := int64(s >> 40 % 50)
		truth[key] += v
		p.Process([]uint64{key, uint64(v)})
	}
	for k, want := range truth {
		if got := p.Estimate(k); got < want {
			t.Fatalf("estimate %d < true %d for key %d", got, want, k)
		}
	}
}

// --- Filter ---

func TestFilterValidation(t *testing.T) {
	if _, err := NewFilter(FilterConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewFilter(FilterConfig{Predicates: []Predicate{{ValIdx: -1}}, Formula: boolexpr.Leaf{V: 0}}); err == nil {
		t.Fatal("negative value index accepted")
	}
	if _, err := NewFilter(FilterConfig{Predicates: []Predicate{{ValIdx: 0}}}); err == nil {
		t.Fatal("nil formula accepted")
	}
}

func TestFilterPaperExample(t *testing.T) {
	// §4.1: (taste > 5) OR (texture > 4 AND name LIKE e%s); the LIKE is
	// precomputed by the CWorker into value slot 2.
	preds := []Predicate{
		{ValIdx: 0, Op: OpGT, Const: 5},
		{ValIdx: 1, Op: OpGT, Const: 4},
		{ValIdx: 2, Precomputed: true},
	}
	formula := boolexpr.Or{boolexpr.Leaf{V: 0}, boolexpr.And{boolexpr.Leaf{V: 1}, boolexpr.Leaf{V: 2}}}
	p, err := NewFilter(FilterConfig{Predicates: preds, Formula: formula})
	if err != nil {
		t.Fatal(err)
	}
	// Ratings rows: (taste, texture, likeBit) per Table 1 with LIKE e%s.
	rows := []struct {
		vals []uint64
		want switchsim.Decision
	}{
		{[]uint64{7, 5, 0}, switchsim.Forward}, // Pizza: taste>5
		{[]uint64{8, 6, 1}, switchsim.Forward}, // Cheetos: both branches
		{[]uint64{9, 4, 0}, switchsim.Forward}, // Jello: taste>5
		{[]uint64{5, 7, 0}, switchsim.Prune},   // Burger: texture>4 but no LIKE
		{[]uint64{3, 3, 0}, switchsim.Prune},   // Fries: neither
	}
	for i, r := range rows {
		if got := p.Process(r.vals); got != r.want {
			t.Errorf("row %d: %v, want %v", i, got, r.want)
		}
	}
}

func TestFilterDecomposedIsSuperset(t *testing.T) {
	// Pruning with the decomposed formula must forward a superset of the
	// rows the full formula accepts.
	full := boolexpr.Or{boolexpr.Leaf{V: 0}, boolexpr.And{boolexpr.Leaf{V: 1}, boolexpr.Leaf{V: 2}}}
	sw, _ := boolexpr.Decompose(full, func(v int) bool { return v != 2 })
	preds := []Predicate{
		{ValIdx: 0, Op: OpGT, Const: 5},
		{ValIdx: 1, Op: OpGT, Const: 4},
		{ValIdx: 2, Precomputed: true},
	}
	pFull, _ := NewFilter(FilterConfig{Predicates: preds, Formula: full})
	pSw, _ := NewFilter(FilterConfig{Predicates: preds, Formula: sw})
	f := func(taste, texture uint8, like bool) bool {
		vals := []uint64{uint64(taste % 12), uint64(texture % 12), 0}
		if like {
			vals[2] = 1
		}
		fullDec := pFull.Process(vals)
		swDec := pSw.Process(vals)
		// If the full query accepts, the switch must not prune.
		return !(fullDec == switchsim.Forward && swDec == switchsim.Prune)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterAllOps(t *testing.T) {
	ops := []struct {
		op   CmpOp
		c    int64
		v    int64
		want bool
	}{
		{OpGT, 5, 6, true}, {OpGT, 5, 5, false},
		{OpGE, 5, 5, true}, {OpGE, 5, 4, false},
		{OpLT, 5, 4, true}, {OpLT, 5, 5, false},
		{OpLE, 5, 5, true}, {OpLE, 5, 6, false},
		{OpEQ, 5, 5, true}, {OpEQ, 5, 4, false},
		{OpNE, 5, 4, true}, {OpNE, 5, 5, false},
		{OpGT, 0, -1, false}, // signed comparison
	}
	for _, c := range ops {
		pr := Predicate{ValIdx: 0, Op: c.op, Const: c.c}
		if got := pr.Eval([]uint64{uint64(c.v)}); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.v, c.op, c.c, got, c.want)
		}
	}
	if (CmpOp(99)).String() == "" {
		t.Fatal("unknown op string empty")
	}
	if (Predicate{ValIdx: 0, Op: CmpOp(99)}).Eval([]uint64{1}) {
		t.Fatal("unknown op must evaluate false (safe direction is... forward)")
	}
}

func TestFilterProfileAndReset(t *testing.T) {
	preds := []Predicate{{ValIdx: 0, Op: OpGT, Const: 1}}
	p, _ := NewFilter(FilterConfig{Predicates: preds, Formula: boolexpr.Leaf{V: 0}})
	prof := p.Profile()
	if prof.Stages < 2 || prof.ALUs != 2 {
		t.Fatalf("profile = %+v", prof)
	}
	p.Process([]uint64{0})
	p.Reset()
	if p.Stats().Processed != 0 {
		t.Fatal("reset")
	}
	if p.Name() != "filter" || p.Guarantee() != Deterministic {
		t.Fatal("identity")
	}
}

// --- multi-query packing (§6) ---

func TestMultiQueryPackingOnTofino(t *testing.T) {
	// §6 / Fig. 5 "A+B": a filter query and a group-by query packed on the
	// pipeline concurrently, sharing stages.
	pl, err := switchsim.NewPipeline(switchsim.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	filter, _ := NewFilter(FilterConfig{
		Predicates: []Predicate{{ValIdx: 0, Op: OpLT, Const: 10}},
		Formula:    boolexpr.Leaf{V: 0},
	})
	groupBy, _ := NewGroupBy(GroupByConfig{Rows: 4096, Cols: 8, Seed: 1})
	if err := pl.Install(1, filter); err != nil {
		t.Fatalf("filter install: %v", err)
	}
	if err := pl.Install(2, groupBy); err != nil {
		t.Fatalf("group-by install: %v", err)
	}
	// Both queries answer on their own flows.
	if pl.Process(1, []uint64{5}) != switchsim.Forward {
		t.Fatal("filter flow broken")
	}
	if pl.Process(2, []uint64{1, 100}) != switchsim.Forward {
		t.Fatal("group-by flow broken")
	}
	if pl.Process(2, []uint64{1, 50}) != switchsim.Prune {
		t.Fatal("group-by flow should prune dominated value")
	}
	u := pl.Utilization()
	if u.StagesUsed > 9 {
		t.Fatalf("packing used %d stages; filter should share group-by's stages", u.StagesUsed)
	}
}

func TestAllPaperDefaultsFitTofinoTogether(t *testing.T) {
	// The prototype packs DISTINCT, TOP N, GROUP BY, JOIN, HAVING and
	// filtering concurrently (§7.1 "we also support combining these
	// queries and running them in parallel without reprogramming the
	// switch"). Verify the Table 2 default configurations co-install on
	// one Tofino2-scale pipeline.
	pl, err := switchsim.NewPipeline(switchsim.Tofino2())
	if err != nil {
		t.Fatal(err)
	}
	distinct, _ := NewDistinct(DistinctConfig{Rows: 4096, Cols: 2})
	topn, _ := NewRandTopN(RandTopNConfig{N: 250, Rows: 4096, Cols: 4})
	groupBy, _ := NewGroupBy(GroupByConfig{Rows: 4096, Cols: 8})
	join, _ := NewJoin(JoinConfig{FilterBits: 4 << 23, Hashes: 3})
	having, _ := NewHaving(HavingConfig{Agg: HavingSum, Threshold: 1_000_000, Rows: 3, CountersPerRow: 1024})
	filter, _ := NewFilter(FilterConfig{
		Predicates: []Predicate{{ValIdx: 0, Op: OpLT, Const: 10}},
		Formula:    boolexpr.Leaf{V: 0},
	})
	for i, p := range []Pruner{distinct, topn, groupBy, join, having, filter} {
		if err := pl.Install(uint32(i+1), p); err != nil {
			t.Fatalf("install %s: %v", p.Name(), err)
		}
	}
}
