package prune

import (
	"math/bits"

	"cheetah/internal/cache"
)

// This file is the algorithm catalog: the paper-default configuration of
// every pruner (Table 2's rows plus §5's worked examples), factored out
// so the engine's legacy defaults and the planner derive parameters from
// one place instead of scattering literals.

// DefaultDistinctConfig is Table 2's DISTINCT row: a 4096×2 LRU cache
// matrix over 64-bit CWorker fingerprints (Example #8).
func DefaultDistinctConfig(seed uint64) DistinctConfig {
	return DistinctConfig{
		Rows: 4096, Cols: 2, Policy: cache.LRU,
		FingerprintBits: 64, Seed: seed,
	}
}

// DefaultGroupByConfig is Table 2's GROUP BY row: a 4096×8 per-key
// rolling-max matrix.
func DefaultGroupByConfig(seed uint64) GroupByConfig {
	return GroupByConfig{Rows: 4096, Cols: 8, Seed: seed}
}

// DefaultGroupBySumConfig sizes the in-switch SUM aggregation matrix
// (§6) like the GROUP BY matrix: 4096×8 (key, partial sum) slots.
func DefaultGroupBySumConfig(seed uint64) GroupBySumConfig {
	return GroupBySumConfig{Rows: 4096, Cols: 8, Seed: seed}
}

// DefaultHavingConfig is Table 2's HAVING row: a 3×1024 Count-Min
// sketch.
func DefaultHavingConfig(threshold int64, seed uint64) HavingConfig {
	return HavingConfig{
		Agg: HavingSum, Threshold: threshold,
		Rows: 3, CountersPerRow: 1024, Seed: seed,
	}
}

// DefaultJoinConfig is Table 2's JOIN BF row: two 4 MB Bloom filters
// with 3 hashes.
func DefaultJoinConfig(seed uint64) JoinConfig {
	return JoinConfig{FilterBits: 4 << 23, Hashes: 3, Seed: seed}
}

// JoinFilterBitsFor sizes one join Bloom filter for an expected key
// count: ~10 bits per key (under 1% false positives at 3 hashes),
// rounded up to a power of two and clamped to [64 KB, 4 MB] — the
// largest filter Table 2 deploys.
func JoinFilterBitsFor(keys int) int {
	const (
		minBits = 64 << 13 // 64 KB
		maxBits = 4 << 23  // 4 MB
	)
	if keys <= 0 {
		return minBits
	}
	want := 10 * keys
	if want >= maxBits {
		return maxBits
	}
	b := 1 << bits.Len(uint(want-1))
	if b < minBits {
		return minBits
	}
	return b
}

// DefaultSkylineConfig is §4.4's deployment: w=10 stored points under
// the APH projection (Appendix D).
func DefaultSkylineConfig(dims int) SkylineConfig {
	return SkylineConfig{Dims: dims, Points: 10, Heuristic: SkylineAPH}
}

// DefaultDetTopNConfig is Table 2's TOP N Det row: w=4 exponential
// thresholds above the warm-up minimum.
func DefaultDetTopNConfig(n int) DetTopNConfig {
	return DetTopNConfig{N: n, Thresholds: 4}
}

// LegacyRandTopNConfig is the engine's historical TOP N default: a fixed
// d=4096 matrix with Theorem 2's column count for δ (falling back to
// Table 2's w=4 when the theorem premise fails). The planner prefers
// PlannedRandTopNConfig, which optimizes d as well.
func LegacyRandTopNConfig(n int, delta float64, seed uint64) RandTopNConfig {
	w, err := TopNColumnsFor(4096, n, delta)
	if err != nil {
		w = 4
	}
	return RandTopNConfig{N: n, Rows: 4096, Cols: w, Seed: seed}
}

// PlannedRandTopNConfig derives the jointly optimized (d, w) matrix for
// TOP N at failure probability delta via §5's Lambert-W minimization.
func PlannedRandTopNConfig(n int, delta float64, seed uint64) (RandTopNConfig, error) {
	d, w, err := OptimalTopNRows(n, delta)
	if err != nil {
		return RandTopNConfig{}, err
	}
	return RandTopNConfig{N: n, Rows: d, Cols: w, Seed: seed}, nil
}
