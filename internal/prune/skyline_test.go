package prune

import (
	"testing"

	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

// trueSkyline computes the exact skyline (maximizing all dims).
func trueSkyline(points [][]uint64) [][]uint64 {
	var out [][]uint64
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p) && !equalPoint(p, q) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

func equalPoint(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomPoints(n, dims int, seed uint64, maxVal uint64) [][]uint64 {
	s := seed
	pts := make([][]uint64, n)
	for i := range pts {
		p := make([]uint64, dims)
		for j := range p {
			s = hashutil.SplitMix64(s)
			p[j] = s % maxVal
		}
		pts[i] = p
	}
	return pts
}

func TestSkylineValidation(t *testing.T) {
	if _, err := NewSkyline(SkylineConfig{Dims: 0, Points: 10}); err == nil {
		t.Fatal("D=0 accepted")
	}
	if _, err := NewSkyline(SkylineConfig{Dims: 2, Points: 0}); err == nil {
		t.Fatal("w=0 accepted")
	}
	if _, err := NewSkyline(SkylineConfig{Dims: 20, Points: 4}); err == nil {
		t.Fatal("D > ALUs per stage accepted (violates Table 2 premise)")
	}
	if _, err := NewSkyline(SkylineConfig{Dims: 2, Points: 4, Heuristic: SkylineAPH, Beta: 1 << 40}); err == nil {
		t.Fatal("oversized beta accepted")
	}
}

func testSkylineCorrectness(t *testing.T, h SkylineHeuristic) {
	t.Helper()
	// Invariant: forwarded ∪ stored covers the true skyline — no skyline
	// point is lost.
	for _, seed := range []uint64{1, 2, 3} {
		p, err := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: h})
		if err != nil {
			t.Fatal(err)
		}
		pts := randomPoints(5000, 2, seed, 1<<20)
		received := map[[2]uint64]bool{}
		for _, pt := range pts {
			if p.Process(pt) == switchsim.Forward {
				received[[2]uint64{pt[0], pt[1]}] = true
			}
		}
		// The master drains the stored points at FIN (see StoredPoints).
		for _, pt := range p.StoredPoints() {
			received[[2]uint64{pt[0], pt[1]}] = true
		}
		for _, sk := range trueSkyline(pts) {
			if !received[[2]uint64{sk[0], sk[1]}] {
				t.Fatalf("%v seed %d: skyline point %v lost", h, seed, sk)
			}
		}
	}
}

func TestSkylineSumCorrectness(t *testing.T)      { testSkylineCorrectness(t, SkylineSum) }
func TestSkylineAPHCorrectness(t *testing.T)      { testSkylineCorrectness(t, SkylineAPH) }
func TestSkylineBaselineCorrectness(t *testing.T) { testSkylineCorrectness(t, SkylineBaseline) }

func TestSkylineAPHBeatsSumOnSkewedRanges(t *testing.T) {
	// Fig. 10b: with unbalanced dimension ranges (0..255 vs 0..65535) the
	// APH projection retains better prune points than Sum.
	mk := func(h SkylineHeuristic) *Skyline {
		p, err := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: h})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	aphP, sumP := mk(SkylineAPH), mk(SkylineSum)
	s := uint64(33)
	const n = 300_000
	for i := 0; i < n; i++ {
		s = hashutil.SplitMix64(s)
		pt := []uint64{s % 256, (s >> 32) % 65536}
		aphP.Process(pt)
		sumP.Process(append([]uint64(nil), pt...))
	}
	if aphP.Stats().UnprunedRate() > sumP.Stats().UnprunedRate() {
		t.Fatalf("APH unpruned %.5f worse than Sum %.5f on skewed ranges",
			aphP.Stats().UnprunedRate(), sumP.Stats().UnprunedRate())
	}
}

func TestSkylineReplacementBeatsBaseline(t *testing.T) {
	// Fig. 10b: heuristics that "learn" good prune points beat storing
	// the first w arbitrary points.
	mk := func(h SkylineHeuristic) *Skyline {
		p, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: h})
		return p
	}
	sumP, baseP := mk(SkylineSum), mk(SkylineBaseline)
	s := uint64(55)
	const n = 200_000
	for i := 0; i < n; i++ {
		s = hashutil.SplitMix64(s)
		pt := []uint64{s % 10000, (s >> 32) % 10000}
		sumP.Process(pt)
		baseP.Process(append([]uint64(nil), pt...))
	}
	if sumP.Stats().UnprunedRate() >= baseP.Stats().UnprunedRate() {
		t.Fatalf("Sum unpruned %.5f not better than Baseline %.5f",
			sumP.Stats().UnprunedRate(), baseP.Stats().UnprunedRate())
	}
}

func TestSkylinePrunesHeavilyOnRandomData(t *testing.T) {
	p, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: SkylineAPH})
	s := uint64(77)
	const n = 100_000
	for i := 0; i < n; i++ {
		s = hashutil.SplitMix64(s)
		p.Process([]uint64{s % 100000, (s >> 32) % 100000})
	}
	if rate := p.Stats().PruneRate(); rate < 0.95 {
		t.Fatalf("APH prune rate %.4f too low on uniform 2-D data", rate)
	}
}

func TestSkylineStoredPointsAreHighScore(t *testing.T) {
	p, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 4, Heuristic: SkylineSum})
	pts := [][]uint64{
		{1, 1}, {100, 100}, {2, 2}, {50, 200}, {200, 50}, {3, 3}, {150, 150},
	}
	for _, pt := range pts {
		p.Process(pt)
	}
	stored := p.StoredPoints()
	if len(stored) != 4 {
		t.Fatalf("stored %d points, want 4", len(stored))
	}
	// The 4 highest sum-scores are 300, 250, 250, 200.
	sums := map[uint64]bool{}
	for _, s := range stored {
		sums[s[0]+s[1]] = true
	}
	for _, want := range []uint64{300, 250, 200} {
		if !sums[want] {
			t.Fatalf("stored set %v missing score %d", stored, want)
		}
	}
}

func TestSkylineMalformedEntryForwarded(t *testing.T) {
	p, _ := NewSkyline(SkylineConfig{Dims: 3, Points: 2})
	if p.Process([]uint64{1, 2}) != switchsim.Forward {
		t.Fatal("short entry must be forwarded, never pruned")
	}
}

func TestSkylineProfileTable2(t *testing.T) {
	// Table 2: SKYLINE defaults D=2, w=10.
	// SUM: log2(D) + 2w = 1 + 20 = 21 stages; 2log2(D)-1 + w(D+1) = 1 + 30
	// = 31 ALUs; w(D+1)×64b SRAM; 0 TCAM.
	sum, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: SkylineSum})
	prof := sum.Profile()
	if prof.Stages != 21 || prof.ALUs != 31 || prof.SRAMBits != 10*3*64 || prof.TCAMEntries != 0 {
		t.Fatalf("SUM profile = %+v", prof)
	}
	// APH: log2(D) + 2(w+1) = 23 stages; SRAM += 2^16×32b; TCAM = 64·D.
	aphP, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: SkylineAPH})
	prof = aphP.Profile()
	if prof.Stages != 23 {
		t.Fatalf("APH stages = %d, want 23", prof.Stages)
	}
	if prof.SRAMBits != 10*3*64+(1<<16)*32 {
		t.Fatalf("APH SRAM = %d", prof.SRAMBits)
	}
	if prof.TCAMEntries != 128 {
		t.Fatalf("APH TCAM = %d, want 128", prof.TCAMEntries)
	}
	if sum.Name() != "skyline-Sum" || aphP.Name() != "skyline-APH" {
		t.Fatal("names")
	}
}

func TestSkylineReset(t *testing.T) {
	p, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 2})
	p.Process([]uint64{5, 5})
	p.Reset()
	if len(p.StoredPoints()) != 0 || p.Stats().Processed != 0 {
		t.Fatal("reset incomplete")
	}
}

func BenchmarkSkylineAPHProcess(b *testing.B) {
	p, _ := NewSkyline(SkylineConfig{Dims: 2, Points: 10, Heuristic: SkylineAPH})
	s := uint64(1)
	vals := []uint64{0, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = hashutil.SplitMix64(s)
		vals[0], vals[1] = s%65536, (s>>32)%65536
		p.Process(vals)
	}
}
