package prune

import (
	"fmt"

	"cheetah/internal/sketch"
	"cheetah/internal/switchsim"
)

// JoinSide identifies which table an entry belongs to.
type JoinSide uint64

const (
	// SideA is the left join input.
	SideA JoinSide = 0
	// SideB is the right join input.
	SideB JoinSide = 1
)

// JoinPhase is the pruner's streaming phase (§4.3, Example #4: "we
// propose to send the data through the switch with two passes").
type JoinPhase uint8

const (
	// PhaseBuild is the first pass: the key columns of both tables stream
	// through and populate the Bloom filters; the packets themselves are
	// consumed by the switch (pruned and ACKed).
	PhaseBuild JoinPhase = iota
	// PhaseProbe is the second pass: entries are pruned when the *other*
	// table's filter reports no match.
	PhaseProbe
)

// JoinFilterKind selects the membership structure.
type JoinFilterKind uint8

const (
	// BloomFilter is the standard M-bit, H-hash filter (Table 2 "BF*").
	BloomFilter JoinFilterKind = iota
	// RegisterBloomFilter is the single-stage blocked variant ("RBF").
	RegisterBloomFilter
)

// String renders the kind.
func (k JoinFilterKind) String() string {
	if k == RegisterBloomFilter {
		return "RBF"
	}
	return "BF"
}

// JoinConfig configures the JOIN pruner.
type JoinConfig struct {
	// FilterBits (M) is each filter's size in bits. Paper default: 4 MB.
	FilterBits int
	// Hashes (H) is the hash count. Paper default: 3.
	Hashes int
	// Kind picks BF or RBF.
	Kind JoinFilterKind
	// Asymmetric enables the small-table optimization: the build pass
	// streams only side A (the small table) *without pruning it* while
	// populating its filter, and the probe pass prunes side B against it.
	Asymmetric bool
	// Seed derives the filter hash families.
	Seed uint64
}

// Join prunes INNER JOIN streams with two Bloom filters and two passes.
// False positives cost pruning rate only; Bloom filters have no false
// negatives, so no matching entry is ever dropped — the guarantee stays
// deterministic.
type Join struct {
	cfg   JoinConfig
	fa    sketch.Membership
	fb    sketch.Membership
	phase JoinPhase
	stats Stats
}

// NewJoin builds the pruner in PhaseBuild.
func NewJoin(cfg JoinConfig) (*Join, error) {
	if cfg.FilterBits <= 0 {
		return nil, fmt.Errorf("prune: join filter bits %d must be positive", cfg.FilterBits)
	}
	if cfg.Hashes <= 0 {
		return nil, fmt.Errorf("prune: join hash count %d must be positive", cfg.Hashes)
	}
	mk := func(seed uint64) (sketch.Membership, error) {
		if cfg.Kind == RegisterBloomFilter {
			return sketch.NewRegisterBloom(cfg.FilterBits, cfg.Hashes, seed)
		}
		return sketch.NewBloom(cfg.FilterBits, cfg.Hashes, seed)
	}
	fa, err := mk(cfg.Seed ^ 0xa)
	if err != nil {
		return nil, err
	}
	fb, err := mk(cfg.Seed ^ 0xb)
	if err != nil {
		return nil, err
	}
	return &Join{cfg: cfg, fa: fa, fb: fb}, nil
}

// Name implements Pruner.
func (p *Join) Name() string { return "join-" + p.cfg.Kind.String() }

// Guarantee implements Pruner.
func (p *Join) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program with Table 2's JOIN rows: the BF
// uses 2 logical stages and H ALUs over M bits (same-stage ALUs share the
// filter memory); the RBF folds membership into one stage and one ALU at
// the cost of ⌈64/H⌉ extra spill registers.
func (p *Join) Profile() switchsim.Profile {
	if p.cfg.Kind == RegisterBloomFilter {
		// Table 2 lists the per-filter cost (1 stage, 1 ALU, M bits);
		// a join carries two filters, one physical stage each.
		return switchsim.Profile{
			Name:         p.Name(),
			Stages:       2,
			ALUs:         2,
			SRAMBits:     2*p.cfg.FilterBits + ceilDiv(64, p.cfg.Hashes)*64,
			MetadataBits: 64 + 8,
		}
	}
	return switchsim.Profile{
		Name:              p.Name(),
		Stages:            2,
		ALUs:              p.cfg.Hashes,
		SRAMBits:          2 * p.cfg.FilterBits,
		MetadataBits:      64 + 8,
		SharedStageMemory: true,
	}
}

// Asymmetric reports whether the small-table optimization is active.
func (p *Join) Asymmetric() bool { return p.cfg.Asymmetric }

// Phase returns the current streaming phase.
func (p *Join) Phase() JoinPhase { return p.phase }

// StartProbe transitions to the probe pass. The control plane flips this
// bit between the two data movements.
func (p *Join) StartProbe() { p.phase = PhaseProbe }

// Process implements switchsim.Program. vals[0] is the side (SideA or
// SideB) and vals[1] the (fingerprinted) join key.
func (p *Join) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	side := JoinSide(vals[0])
	key := vals[1]
	if p.phase == PhaseBuild {
		if p.cfg.Asymmetric {
			// Only the small table (side A) streams in the build pass,
			// and it is forwarded unpruned — the master gets it for free
			// while the filter trains.
			p.fa.Add(key)
			return switchsim.Forward
		}
		if side == SideA {
			p.fa.Add(key)
		} else {
			p.fb.Add(key)
		}
		// Build-pass packets terminate at the switch: prune + ACK.
		p.stats.Pruned++
		return switchsim.Prune
	}
	// Probe pass.
	if p.cfg.Asymmetric {
		// Only side B streams; prune when the small table lacks the key.
		if !p.fa.Contains(key) {
			p.stats.Pruned++
			return switchsim.Prune
		}
		return switchsim.Forward
	}
	other := p.fb
	if side == SideB {
		other = p.fa
	}
	if !other.Contains(key) {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// ProcessBatch implements switchsim.BatchProgram. The phase only changes
// through StartProbe between passes, so it is hoisted into a per-phase
// loop; the side column is still read per entry because symmetric
// streams may interleave both tables.
func (p *Join) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	sides := b.Cols[0][:b.N]
	keys := b.Cols[1][:b.N]
	pruned := uint64(0)
	switch {
	case p.phase == PhaseBuild && p.cfg.Asymmetric:
		fa := p.fa
		for j, key := range keys {
			fa.Add(key)
			decisions[j] = switchsim.Forward
		}
	case p.phase == PhaseBuild:
		fa, fb := p.fa, p.fb
		for j, key := range keys {
			if JoinSide(sides[j]) == SideA {
				fa.Add(key)
			} else {
				fb.Add(key)
			}
			decisions[j] = switchsim.Prune
		}
		pruned = uint64(len(keys))
	case p.cfg.Asymmetric:
		fa := p.fa
		for j, key := range keys {
			if fa.Contains(key) {
				decisions[j] = switchsim.Forward
			} else {
				decisions[j] = switchsim.Prune
				pruned++
			}
		}
	default:
		fa, fb := p.fa, p.fb
		for j, key := range keys {
			other := fb
			if JoinSide(sides[j]) == SideB {
				other = fa
			}
			if other.Contains(key) {
				decisions[j] = switchsim.Forward
			} else {
				decisions[j] = switchsim.Prune
				pruned++
			}
		}
	}
	p.stats.Processed += uint64(len(keys))
	p.stats.Pruned += pruned
}

// Reset implements switchsim.Program.
func (p *Join) Reset() {
	p.fa.Reset()
	p.fb.Reset()
	p.phase = PhaseBuild
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *Join) Stats() Stats { return p.stats }
