package prune

import (
	"cheetah/internal/switchsim"
)

// This file implements the "OPT" curves of Figures 10 and 11: hypothetical
// streaming algorithms with no resource constraints. OPT upper-bounds the
// pruning rate of ANY switch algorithm, because a one-pass algorithm
// must forward every entry that could still affect the output given the
// prefix seen so far.

// OptDistinct forwards exactly the first occurrence of each value.
type OptDistinct struct {
	seen  map[uint64]struct{}
	stats Stats
}

// NewOptDistinct builds the reference stream.
func NewOptDistinct() *OptDistinct {
	return &OptDistinct{seen: make(map[uint64]struct{})}
}

// Name implements Pruner.
func (p *OptDistinct) Name() string { return "opt-distinct" }

// Guarantee implements Pruner.
func (p *OptDistinct) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program; OPT is resource-unconstrained and
// reports a nominal profile (it is never installed on a pipeline).
func (p *OptDistinct) Profile() switchsim.Profile {
	return switchsim.Profile{Name: p.Name(), Stages: 1}
}

// Process implements switchsim.Program.
func (p *OptDistinct) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	if _, ok := p.seen[vals[0]]; ok {
		p.stats.Pruned++
		return switchsim.Prune
	}
	p.seen[vals[0]] = struct{}{}
	return switchsim.Forward
}

// Reset implements switchsim.Program.
func (p *OptDistinct) Reset() {
	p.seen = make(map[uint64]struct{})
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *OptDistinct) Stats() Stats { return p.stats }

// OptTopN forwards an entry iff it ranks among the top N of the prefix
// seen so far (any correct one-pass algorithm must forward those).
type OptTopN struct {
	n     int
	heap  []int64 // min-heap of the current top-N
	stats Stats
}

// NewOptTopN builds the reference stream.
func NewOptTopN(n int) *OptTopN {
	if n < 1 {
		n = 1
	}
	return &OptTopN{n: n, heap: make([]int64, 0, n)}
}

// Name implements Pruner.
func (p *OptTopN) Name() string { return "opt-topn" }

// Guarantee implements Pruner.
func (p *OptTopN) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program.
func (p *OptTopN) Profile() switchsim.Profile {
	return switchsim.Profile{Name: p.Name(), Stages: 1}
}

// Process implements switchsim.Program.
func (p *OptTopN) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	v := int64(vals[0])
	if len(p.heap) < p.n {
		p.push(v)
		return switchsim.Forward
	}
	if v <= p.heap[0] {
		p.stats.Pruned++
		return switchsim.Prune
	}
	p.heap[0] = v
	p.siftDown(0)
	return switchsim.Forward
}

func (p *OptTopN) push(v int64) {
	p.heap = append(p.heap, v)
	i := len(p.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.heap[parent] <= p.heap[i] {
			break
		}
		p.heap[parent], p.heap[i] = p.heap[i], p.heap[parent]
		i = parent
	}
}

func (p *OptTopN) siftDown(i int) {
	n := len(p.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && p.heap[l] < p.heap[small] {
			small = l
		}
		if r < n && p.heap[r] < p.heap[small] {
			small = r
		}
		if small == i {
			return
		}
		p.heap[i], p.heap[small] = p.heap[small], p.heap[i]
		i = small
	}
}

// Reset implements switchsim.Program.
func (p *OptTopN) Reset() {
	p.heap = p.heap[:0]
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *OptTopN) Stats() Stats { return p.stats }

// OptSkyline forwards an entry iff no previously seen point dominates it.
type OptSkyline struct {
	dims   int
	points [][]uint64 // current skyline of the prefix
	stats  Stats
}

// NewOptSkyline builds the reference stream.
func NewOptSkyline(dims int) *OptSkyline {
	if dims < 1 {
		dims = 1
	}
	return &OptSkyline{dims: dims}
}

// Name implements Pruner.
func (p *OptSkyline) Name() string { return "opt-skyline" }

// Guarantee implements Pruner.
func (p *OptSkyline) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program.
func (p *OptSkyline) Profile() switchsim.Profile {
	return switchsim.Profile{Name: p.Name(), Stages: 1}
}

// Process implements switchsim.Program.
func (p *OptSkyline) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	pt := vals[:p.dims]
	for _, s := range p.points {
		if dominates(s, pt) {
			p.stats.Pruned++
			return switchsim.Prune
		}
	}
	// Keep the prefix skyline small: drop stored points the new one
	// dominates, then store it.
	kept := p.points[:0]
	for _, s := range p.points {
		if !dominates(pt, s) {
			kept = append(kept, s)
		}
	}
	p.points = append(kept, append([]uint64(nil), pt...))
	return switchsim.Forward
}

// Reset implements switchsim.Program.
func (p *OptSkyline) Reset() {
	p.points = nil
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *OptSkyline) Stats() Stats { return p.stats }

// OptGroupBy forwards an entry iff it strictly improves its key's max.
type OptGroupBy struct {
	best  map[uint64]int64
	stats Stats
}

// NewOptGroupBy builds the reference stream.
func NewOptGroupBy() *OptGroupBy {
	return &OptGroupBy{best: make(map[uint64]int64)}
}

// Name implements Pruner.
func (p *OptGroupBy) Name() string { return "opt-groupby" }

// Guarantee implements Pruner.
func (p *OptGroupBy) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program.
func (p *OptGroupBy) Profile() switchsim.Profile {
	return switchsim.Profile{Name: p.Name(), Stages: 1}
}

// Process implements switchsim.Program.
func (p *OptGroupBy) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	k, v := vals[0], int64(vals[1])
	if cur, ok := p.best[k]; ok && v <= cur {
		p.stats.Pruned++
		return switchsim.Prune
	}
	p.best[k] = v
	return switchsim.Forward
}

// Reset implements switchsim.Program.
func (p *OptGroupBy) Reset() {
	p.best = make(map[uint64]int64)
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *OptGroupBy) Stats() Stats { return p.stats }

// OptJoin knows both tables' exact key sets (an exact two-pass oracle):
// during the probe pass it forwards an entry iff the other side truly
// contains the key.
type OptJoin struct {
	a, b  map[uint64]struct{}
	probe bool
	stats Stats
}

// NewOptJoin builds the reference stream.
func NewOptJoin() *OptJoin {
	return &OptJoin{a: map[uint64]struct{}{}, b: map[uint64]struct{}{}}
}

// Name implements Pruner.
func (p *OptJoin) Name() string { return "opt-join" }

// Guarantee implements Pruner.
func (p *OptJoin) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program.
func (p *OptJoin) Profile() switchsim.Profile {
	return switchsim.Profile{Name: p.Name(), Stages: 1}
}

// StartProbe moves to the probe pass.
func (p *OptJoin) StartProbe() { p.probe = true }

// Process implements switchsim.Program: vals[0] side, vals[1] key.
func (p *OptJoin) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	side, key := JoinSide(vals[0]), vals[1]
	if !p.probe {
		if side == SideA {
			p.a[key] = struct{}{}
		} else {
			p.b[key] = struct{}{}
		}
		p.stats.Pruned++
		return switchsim.Prune
	}
	other := p.b
	if side == SideB {
		other = p.a
	}
	if _, ok := other[key]; !ok {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// Reset implements switchsim.Program.
func (p *OptJoin) Reset() {
	p.a = map[uint64]struct{}{}
	p.b = map[uint64]struct{}{}
	p.probe = false
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *OptJoin) Stats() Stats { return p.stats }

// OptHaving keeps exact per-key aggregates (an exact Count-Min) and
// forwards an entry only while its key's running aggregate has just
// crossed the threshold or beyond.
type OptHaving struct {
	threshold int64
	sums      map[uint64]int64
	stats     Stats
}

// NewOptHaving builds the reference stream for HAVING SUM > c.
func NewOptHaving(threshold int64) *OptHaving {
	return &OptHaving{threshold: threshold, sums: make(map[uint64]int64)}
}

// Name implements Pruner.
func (p *OptHaving) Name() string { return "opt-having" }

// Guarantee implements Pruner.
func (p *OptHaving) Guarantee() Guarantee { return Deterministic }

// Profile implements switchsim.Program.
func (p *OptHaving) Profile() switchsim.Profile {
	return switchsim.Profile{Name: p.Name(), Stages: 1}
}

// Process implements switchsim.Program: vals[0] key, vals[1] summand.
func (p *OptHaving) Process(vals []uint64) switchsim.Decision {
	p.stats.Processed++
	k := vals[0]
	p.sums[k] += int64(vals[1])
	if p.sums[k] <= p.threshold {
		p.stats.Pruned++
		return switchsim.Prune
	}
	return switchsim.Forward
}

// Reset implements switchsim.Program.
func (p *OptHaving) Reset() {
	p.sums = make(map[uint64]int64)
	p.stats = Stats{}
}

// Stats implements Pruner.
func (p *OptHaving) Stats() Stats { return p.stats }

// Compile-time interface checks for every pruner in the package.
var (
	_ Pruner = (*Distinct)(nil)
	_ Pruner = (*DetTopN)(nil)
	_ Pruner = (*RandTopN)(nil)
	_ Pruner = (*GroupBy)(nil)
	_ Pruner = (*Join)(nil)
	_ Pruner = (*Having)(nil)
	_ Pruner = (*Skyline)(nil)
	_ Pruner = (*Filter)(nil)
	_ Pruner = (*OptDistinct)(nil)
	_ Pruner = (*OptTopN)(nil)
	_ Pruner = (*OptSkyline)(nil)
	_ Pruner = (*OptGroupBy)(nil)
	_ Pruner = (*OptJoin)(nil)
	_ Pruner = (*OptHaving)(nil)
)
