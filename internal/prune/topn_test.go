package prune

import (
	"sort"
	"testing"

	"cheetah/internal/hashutil"
	"cheetah/internal/switchsim"
)

func shuffledInt64s(n int, seed uint64) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	s := seed
	for i := n - 1; i > 0; i-- {
		s = hashutil.SplitMix64(s)
		j := int(hashutil.ReduceFull(s, uint64(i+1)))
		vals[i], vals[j] = vals[j], vals[i]
	}
	return vals
}

// topNOf returns the n largest values of vals.
func topNOf(vals []int64, n int) []int64 {
	cp := append([]int64(nil), vals...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] > cp[j] })
	if n > len(cp) {
		n = len(cp)
	}
	return cp[:n]
}

func TestDetTopNValidation(t *testing.T) {
	if _, err := NewDetTopN(DetTopNConfig{N: 0, Thresholds: 4}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewDetTopN(DetTopNConfig{N: 1, Thresholds: 0}); err == nil {
		t.Fatal("w=0 accepted")
	}
	if _, err := NewDetTopN(DetTopNConfig{N: 1, Thresholds: 63}); err == nil {
		t.Fatal("w=63 accepted")
	}
}

func TestDetTopNCorrectness(t *testing.T) {
	// Deterministic guarantee: forwarded set always contains the true
	// top N, for several stream orders and sizes.
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		const n = 250
		const m = 50_000
		p, err := NewDetTopN(DetTopNConfig{N: n, Thresholds: 4})
		if err != nil {
			t.Fatal(err)
		}
		stream := shuffledInt64s(m, seed)
		forwarded := map[int64]bool{}
		for _, v := range stream {
			if p.Process([]uint64{uint64(v)}) == switchsim.Forward {
				forwarded[v] = true
			}
		}
		for _, v := range topNOf(stream, n) {
			if !forwarded[v] {
				t.Fatalf("seed %d: top-N value %d was pruned", seed, v)
			}
		}
	}
}

func TestDetTopNPrunesSubstantially(t *testing.T) {
	// The deterministic algorithm's pruning point is capped at
	// t0·2^(w-1) (§4.3), so on a uniform stream with t0 ≈ m/N the prune
	// rate grows with w. With w=10 the cap reaches half the value range
	// and beyond; expect a substantial (but far from total) prune rate —
	// exactly the Det-vs-Rand gap of Fig. 10c.
	const n = 250
	const m = 200_000
	small, _ := NewDetTopN(DetTopNConfig{N: n, Thresholds: 4})
	large, _ := NewDetTopN(DetTopNConfig{N: n, Thresholds: 10})
	for _, v := range shuffledInt64s(m, 42) {
		small.Process([]uint64{uint64(v)})
		large.Process([]uint64{uint64(v)})
	}
	if rate := large.Stats().PruneRate(); rate < 0.30 {
		t.Fatalf("w=10 deterministic top-n prune rate %.3f too low", rate)
	}
	if small.Stats().PruneRate() >= large.Stats().PruneRate() {
		t.Fatal("more thresholds must not reduce deterministic pruning")
	}
}

func TestDetTopNMonotoneStreamSafe(t *testing.T) {
	// Worst case (§5): monotonically increasing stream — nothing above the
	// current threshold may be pruned; all true top-N must survive.
	const n = 10
	const m = 1000
	p, _ := NewDetTopN(DetTopNConfig{N: n, Thresholds: 4})
	forwarded := map[int64]bool{}
	stream := make([]int64, m)
	for i := range stream {
		stream[i] = int64(i + 1)
	}
	for _, v := range stream {
		if p.Process([]uint64{uint64(v)}) == switchsim.Forward {
			forwarded[v] = true
		}
	}
	for _, v := range topNOf(stream, n) {
		if !forwarded[v] {
			t.Fatalf("monotone stream: top value %d pruned", v)
		}
	}
}

func TestDetTopNNegativeT0Safe(t *testing.T) {
	// Values can be ≤ 0; thresholds must not advance incorrectly.
	const n = 5
	p, _ := NewDetTopN(DetTopNConfig{N: n, Thresholds: 3})
	stream := []int64{-10, -5, -7, -1, -3, 2, 8, -2, 6, 4, -8, 10, 1, -4}
	forwarded := map[int64]bool{}
	for _, v := range stream {
		if p.Process([]uint64{uint64(v)}) == switchsim.Forward {
			forwarded[v] = true
		}
	}
	for _, v := range topNOf(stream, n) {
		if !forwarded[v] {
			t.Fatalf("negative-value stream: top value %d pruned", v)
		}
	}
}

func TestDetTopNProfileTable2(t *testing.T) {
	// Table 2: TOP N Det, defaults N=250, w=4 → w+1 stages, w+1 ALUs,
	// (w+1)×64b SRAM, 0 TCAM.
	p, _ := NewDetTopN(DetTopNConfig{N: 250, Thresholds: 4})
	prof := p.Profile()
	if prof.Stages != 5 || prof.ALUs != 5 || prof.SRAMBits != 5*64 || prof.TCAMEntries != 0 {
		t.Fatalf("profile = %+v", prof)
	}
	if p.Name() != "topn-det" || p.Guarantee() != Deterministic {
		t.Fatal("identity")
	}
}

func TestRandTopNValidation(t *testing.T) {
	if _, err := NewRandTopN(RandTopNConfig{N: 0, Rows: 1, Cols: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewRandTopN(RandTopNConfig{N: 1, Rows: 0, Cols: 1}); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestRandTopNSuccessWithTheoremConfig(t *testing.T) {
	// Configure per Theorem 2 for N=100, δ=1e-4 and verify the guarantee
	// empirically across several seeds: no top-N element pruned.
	const n = 100
	const m = 100_000
	d := 600
	w, err := TopNColumnsFor(d, n, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 13, 99} {
		p, err := NewRandTopN(RandTopNConfig{N: n, Rows: d, Cols: w, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		stream := shuffledInt64s(m, seed*31)
		forwarded := map[int64]bool{}
		for _, v := range stream {
			if p.Process([]uint64{uint64(v)}) == switchsim.Forward {
				forwarded[v] = true
			}
		}
		for _, v := range topNOf(stream, n) {
			if !forwarded[v] {
				t.Fatalf("seed %d: top-N value %d pruned (δ=1e-4 config)", seed, v)
			}
		}
	}
}

func TestRandTopNPruningBeatsDeterministic(t *testing.T) {
	// Fig. 10c's headline: the randomized algorithm prunes far more than
	// the deterministic one at equal w.
	const n = 250
	const m = 500_000
	const w = 4
	det, _ := NewDetTopN(DetTopNConfig{N: n, Thresholds: w})
	rnd, _ := NewRandTopN(RandTopNConfig{N: n, Rows: 4096, Cols: w, Seed: 3})
	stream := shuffledInt64s(m, 17)
	for _, v := range stream {
		det.Process([]uint64{uint64(v)})
		rnd.Process([]uint64{uint64(v)})
	}
	if rnd.Stats().UnprunedRate() >= det.Stats().UnprunedRate() {
		t.Fatalf("randomized unpruned %.5f not better than deterministic %.5f",
			rnd.Stats().UnprunedRate(), det.Stats().UnprunedRate())
	}
}

func TestRandTopNTheorem3Bound(t *testing.T) {
	// Expected unpruned ≤ w·d·ln(m·e/(w·d)); verify with slack on a
	// random stream.
	const m = 1_000_000
	const d = 600
	const w = 8
	bound := ExpectedTopNUnpruned(m, d, w)
	p, _ := NewRandTopN(RandTopNConfig{N: 100, Rows: d, Cols: w, Seed: 5})
	for _, v := range shuffledInt64s(m, 23) {
		p.Process([]uint64{uint64(v)})
	}
	unpruned := float64(p.Stats().Forwarded())
	if unpruned > bound*1.15 {
		t.Fatalf("unpruned %.0f exceeds Theorem 3 bound %.0f by >15%%", unpruned, bound)
	}
}

func TestTopNColumnsForPaperExamples(t *testing.T) {
	// §5/Appendix E worked examples for N=1000, δ=1e-4.
	cases := []struct {
		d    int
		want int
	}{
		{600, 16},
		{8000, 5},
		{200, 288},
	}
	for _, c := range cases {
		got, err := TopNColumnsFor(c.d, 1000, 1e-4)
		if err != nil {
			t.Fatalf("d=%d: %v", c.d, err)
		}
		if got != c.want {
			t.Errorf("TopNColumnsFor(d=%d) = %d, paper says %d", c.d, got, c.want)
		}
	}
	if _, err := TopNColumnsFor(0, 10, 0.1); err == nil {
		t.Fatal("d=0 accepted")
	}
	// Below the theorem's feasibility threshold the function must error,
	// not return garbage.
	if _, err := TopNColumnsFor(10, 1000, 1e-4); err == nil {
		t.Fatal("infeasible d accepted")
	}
}

func TestOptimalTopNRowsPaperExample(t *testing.T) {
	// §5: "for finding TOP 1000 with probability 99.99% we should use
	// d = 481 rows and w = 19 matrix columns".
	d, w, err := OptimalTopNRows(1000, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if d < 450 || d > 510 {
		t.Fatalf("optimal d = %d, paper says 481", d)
	}
	if w < 18 || w > 20 {
		t.Fatalf("optimal w = %d, paper says 19", w)
	}
	// The optimum must beat the paper's d=600 configuration on w·d.
	w600, _ := TopNColumnsFor(600, 1000, 1e-4)
	if d*w >= 600*w600 {
		t.Fatalf("optimal d·w = %d not below d=600's %d", d*w, 600*w600)
	}
	if _, _, err := OptimalTopNRows(0, 0.1); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestExpectedTopNUnprunedShape(t *testing.T) {
	// Paper: d=600, N=1000 config, m=8M → ≥99% pruned; m=100M → ≥99.9%.
	w, _ := TopNColumnsFor(600, 1000, 1e-4)
	m8 := 8_000_000.0
	if frac := ExpectedTopNUnpruned(int(m8), 600, w) / m8; frac > 0.01 {
		t.Fatalf("m=8M unpruned fraction bound %.4f, paper says ≤1%%", frac)
	}
	m100 := 100_000_000.0
	if frac := ExpectedTopNUnpruned(int(m100), 600, w) / m100; frac > 0.001 {
		t.Fatalf("m=100M unpruned fraction bound %.5f, paper says ≤0.1%%", frac)
	}
	// Degenerate: capacity above stream size.
	if got := ExpectedTopNUnpruned(10, 100, 100); got != 10 {
		t.Fatalf("capacity-dominated bound = %v", got)
	}
	if ExpectedTopNUnpruned(0, 1, 1) != 0 {
		t.Fatal("m=0")
	}
}

func TestRandTopNProfileTable2(t *testing.T) {
	// Table 2: TOP N Rand defaults N=250, w=4, d=4096 → w stages, w ALUs,
	// (d·w)×64b SRAM.
	p, _ := NewRandTopN(RandTopNConfig{N: 250, Rows: 4096, Cols: 4})
	prof := p.Profile()
	if prof.Stages != 4 || prof.ALUs != 4 || prof.SRAMBits != 4096*4*64 {
		t.Fatalf("profile = %+v", prof)
	}
	if p.Guarantee() != Randomized {
		t.Fatal("guarantee")
	}
}

func TestRandTopNResetDeterminism(t *testing.T) {
	p, _ := NewRandTopN(RandTopNConfig{N: 10, Rows: 32, Cols: 2, Seed: 9})
	stream := shuffledInt64s(5000, 3)
	run := func() uint64 {
		p.Reset()
		for _, v := range stream {
			p.Process([]uint64{uint64(v)})
		}
		return p.Stats().Pruned
	}
	if run() != run() {
		t.Fatal("Reset does not restore the RNG: runs differ")
	}
}

func BenchmarkDetTopNProcess(b *testing.B) {
	p, _ := NewDetTopN(DetTopNConfig{N: 250, Thresholds: 4})
	s := uint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = hashutil.SplitMix64(s)
		p.Process([]uint64{s % 1_000_000})
	}
}

func BenchmarkRandTopNProcess(b *testing.B) {
	p, _ := NewRandTopN(RandTopNConfig{N: 250, Rows: 4096, Cols: 4, Seed: 1})
	s := uint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = hashutil.SplitMix64(s)
		p.Process([]uint64{s % 1_000_000})
	}
}
