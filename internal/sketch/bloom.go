// Package sketch implements the probabilistic data structures Cheetah
// stores in switch SRAM: Bloom filters (JOIN, §4.3), the register-based
// "blocked" Bloom filter variant (Table 2's RBF row), the Count-Min sketch
// (HAVING, §4.3), and key fingerprinting with the Theorem 4/6 length
// bounds (§5, Appendix C).
//
// All structures are deterministic given a seed and allocate nothing on
// their per-entry hot paths, matching the switch model where the memory is
// laid out once at rule-installation time.
package sketch

import (
	"fmt"
	"math"

	"cheetah/internal/hashutil"
)

// Bloom is a standard Bloom filter over 64-bit keys with H independent
// hash functions, as used by the JOIN pruner's first pass. Keys wider than
// 64 bits (multi-column joins) are first fingerprinted.
type Bloom struct {
	bits   []uint64
	mBits  uint64
	family *hashutil.Family
	count  int
}

// NewBloom creates a Bloom filter with sizeBits bits (rounded up to a
// multiple of 64) and h hash functions.
func NewBloom(sizeBits int, h int, seed uint64) (*Bloom, error) {
	if sizeBits <= 0 {
		return nil, fmt.Errorf("sketch: bloom size %d must be positive", sizeBits)
	}
	if h <= 0 {
		return nil, fmt.Errorf("sketch: bloom hash count %d must be positive", h)
	}
	words := (sizeBits + 63) / 64
	return &Bloom{
		bits:   make([]uint64, words),
		mBits:  uint64(words) * 64,
		family: hashutil.NewFamily(h, seed),
	}, nil
}

// Add inserts key into the filter.
func (b *Bloom) Add(key uint64) {
	for i := 0; i < b.family.Size(); i++ {
		p := hashutil.ReduceFull(b.family.Uint64(i, key), b.mBits)
		b.bits[p>>6] |= 1 << (p & 63)
	}
	b.count++
}

// Contains reports whether key may have been added. False means the key
// was definitely never added (no false negatives).
func (b *Bloom) Contains(key uint64) bool {
	for i := 0; i < b.family.Size(); i++ {
		p := hashutil.ReduceFull(b.family.Uint64(i, key), b.mBits)
		if b.bits[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls.
func (b *Bloom) Count() int { return b.count }

// SizeBits returns the filter capacity in bits.
func (b *Bloom) SizeBits() int { return int(b.mBits) }

// FillRatio returns the fraction of set bits, a direct predictor of the
// false-positive rate (fp ≈ fill^H).
func (b *Bloom) FillRatio() float64 {
	set := 0
	for _, w := range b.bits {
		set += popcount64(w)
	}
	return float64(set) / float64(b.mBits)
}

// Reset clears the filter for reuse between query runs.
func (b *Bloom) Reset() {
	for i := range b.bits {
		b.bits[i] = 0
	}
	b.count = 0
}

// EstimateFalsePositiveRate returns the classic (1 - e^{-hn/m})^h estimate
// for n inserted keys.
func (b *Bloom) EstimateFalsePositiveRate(n int) float64 {
	h := float64(b.family.Size())
	m := float64(b.mBits)
	return math.Pow(1-math.Exp(-h*float64(n)/m), h)
}

// RegisterBloom is the "RBF" variant from Table 2: a blocked Bloom filter
// whose blocks are single 64-bit registers. One hash selects the register
// and the remaining hash bits select H bit positions inside it, so the
// whole membership test costs a single stage and a single ALU on the
// switch (one register read plus a mask compare), at the price of a
// slightly higher false-positive rate than an unblocked filter of equal
// size.
type RegisterBloom struct {
	words []uint64
	h     int
	seed  uint64
	count int
}

// NewRegisterBloom creates a register Bloom filter with sizeBits bits
// (rounded up to whole 64-bit registers) and h bits set per key.
func NewRegisterBloom(sizeBits int, h int, seed uint64) (*RegisterBloom, error) {
	if sizeBits <= 0 {
		return nil, fmt.Errorf("sketch: register bloom size %d must be positive", sizeBits)
	}
	if h <= 0 || h > 16 {
		return nil, fmt.Errorf("sketch: register bloom needs 1..16 bits per key, got %d", h)
	}
	words := (sizeBits + 63) / 64
	return &RegisterBloom{words: make([]uint64, words), h: h, seed: seed}, nil
}

// mask derives the word index and the h-bit in-word mask for key in one
// 64-bit hash, mirroring the single-ALU datapath implementation.
func (rb *RegisterBloom) mask(key uint64) (int, uint64) {
	hv := hashutil.HashUint64(key, rb.seed)
	word := int(hashutil.ReduceFull(hv, uint64(len(rb.words))))
	// Derive h bit positions from successive 6-bit nibbles of a second mix.
	bitsrc := hashutil.Mix64(hv)
	var m uint64
	for i := 0; i < rb.h; i++ {
		m |= 1 << (bitsrc & 63)
		bitsrc >>= 6
		if bitsrc == 0 { // extremely unlikely; re-mix to keep h bits flowing
			bitsrc = hashutil.Mix64(hv + uint64(i) + 1)
		}
	}
	return word, m
}

// Add inserts key.
func (rb *RegisterBloom) Add(key uint64) {
	w, m := rb.mask(key)
	rb.words[w] |= m
	rb.count++
}

// Contains reports whether key may have been added (no false negatives).
func (rb *RegisterBloom) Contains(key uint64) bool {
	w, m := rb.mask(key)
	return rb.words[w]&m == m
}

// Count returns the number of Add calls.
func (rb *RegisterBloom) Count() int { return rb.count }

// SizeBits returns the capacity in bits.
func (rb *RegisterBloom) SizeBits() int { return len(rb.words) * 64 }

// Reset clears the filter.
func (rb *RegisterBloom) Reset() {
	for i := range rb.words {
		rb.words[i] = 0
	}
	rb.count = 0
}

// Membership is the interface shared by both Bloom variants; the JOIN
// pruner is generic over it so the BF-vs-RBF ablation (Fig. 10e) swaps
// implementations without touching the pruning logic.
type Membership interface {
	Add(key uint64)
	Contains(key uint64) bool
	Count() int
	SizeBits() int
	Reset()
}

var (
	_ Membership = (*Bloom)(nil)
	_ Membership = (*RegisterBloom)(nil)
)

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
