package sketch

import (
	"fmt"
	"math"

	"cheetah/internal/hashutil"
)

// Fingerprinter maps wide or multi-column keys to short fixed-width
// fingerprints, as CWorkers do before sending entries whose key exceeds
// the bits a switch can parse (§5, Example #8). Fingerprints of f bits are
// the low f bits of a seeded 64-bit hash.
type Fingerprinter struct {
	bits uint
	mask uint64
	seed uint64
}

// NewFingerprinter creates a fingerprinter producing fingerprints of the
// given bit length (1..64).
func NewFingerprinter(bits uint, seed uint64) (*Fingerprinter, error) {
	if bits == 0 || bits > 64 {
		return nil, fmt.Errorf("sketch: fingerprint length %d out of range 1..64", bits)
	}
	mask := ^uint64(0)
	if bits < 64 {
		mask = (1 << bits) - 1
	}
	return &Fingerprinter{bits: bits, mask: mask, seed: seed}, nil
}

// Bits returns the fingerprint length.
func (f *Fingerprinter) Bits() uint { return f.bits }

// Bytes fingerprints a byte-serialized key.
func (f *Fingerprinter) Bytes(key []byte) uint64 {
	return hashutil.Hash64(key, f.seed) & f.mask
}

// String fingerprints a string key without copying it.
func (f *Fingerprinter) String(key string) uint64 {
	return hashutil.HashString64(key, f.seed) & f.mask
}

// Uint64 fingerprints a 64-bit key.
func (f *Fingerprinter) Uint64(key uint64) uint64 {
	return hashutil.HashUint64(key, f.seed) & f.mask
}

// Columns fingerprints a multi-column key given as alternating 64-bit
// values (string columns must be pre-hashed by the caller). The fold is
// order-sensitive: (a,b) and (b,a) produce different fingerprints.
func (f *Fingerprinter) Columns(vals ...uint64) uint64 {
	h := f.seed
	for _, v := range vals {
		h = hashutil.Mix64(h ^ hashutil.HashUint64(v, f.seed))
	}
	return h & f.mask
}

// MaxRowLoad computes the bound M of Theorem 4/6: with d rows and error
// budget delta, M upper-bounds (w.h.p.) the number of distinct elements
// mapped into any single row when D distinct elements are hashed into the
// d rows:
//
//	M = e·D/d                          if D > d·ln(2d/δ)
//	M = e·ln(2d/δ)                     if d·ln(1/δ)/e ≤ D ≤ d·ln(2d/δ)
//	M = 1.3·ln(2d/δ) / ln((d/(D·e))·ln(2d/δ))   otherwise
func MaxRowLoad(distinct, d int, delta float64) (float64, error) {
	if distinct <= 0 || d <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("sketch: invalid MaxRowLoad(D=%d, d=%d, delta=%v)", distinct, d, delta)
	}
	D := float64(distinct)
	df := float64(d)
	l2d := math.Log(2 * df / delta)
	switch {
	case D > df*l2d:
		return math.E * D / df, nil
	case D >= df*math.Log(1/delta)/math.E:
		return math.E * l2d, nil
	default:
		denom := math.Log(df / (D * math.E) * l2d)
		if denom <= 0 {
			// Fall back to the middle-regime bound, which always dominates.
			return math.E * l2d, nil
		}
		return 1.3 * l2d / denom, nil
	}
}

// FingerprintBits computes Theorem 4/6's required fingerprint length
// f = ⌈log2(d·M²/δ)⌉ so that, with probability ≥ 1-δ, no two distinct
// elements hashed to the same row share a fingerprint. The result is
// capped at 64 (the widest value the Cheetah header carries).
func FingerprintBits(distinct, d int, delta float64) (uint, error) {
	m, err := MaxRowLoad(distinct, d, delta)
	if err != nil {
		return 0, err
	}
	bits := math.Ceil(math.Log2(float64(d) * m * m / delta))
	if bits < 1 {
		bits = 1
	}
	if bits > 64 {
		bits = 64
	}
	return uint(bits), nil
}

// FingerprintBitsSimple computes Theorem 5's simpler stream-length bound
// f = ⌈log2(w·m/δ)⌉ for a stream of m entries and row width w.
func FingerprintBitsSimple(streamLen, w int, delta float64) (uint, error) {
	if streamLen <= 0 || w <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("sketch: invalid FingerprintBitsSimple(m=%d, w=%d, delta=%v)", streamLen, w, delta)
	}
	bits := math.Ceil(math.Log2(float64(w) * float64(streamLen) / delta))
	if bits < 1 {
		bits = 1
	}
	if bits > 64 {
		bits = 64
	}
	return uint(bits), nil
}
