package sketch

import (
	"fmt"
	"math"

	"cheetah/internal/hashutil"
)

// CountMin is a Count-Min sketch over 64-bit keys. Cheetah uses it for
// HAVING SUM(...)/COUNT(...) > c pruning (§4.3): the sketch estimate g(z)
// always satisfies g(z) ≥ f(z) (one-sided error), so pruning entries whose
// current estimate is ≤ c can never drop a key whose true aggregate
// exceeds c.
//
// The layout matches the switch implementation: depth rows (one per
// pipeline stage holding one register array and one ALU) of width counters
// each.
type CountMin struct {
	depth, width int
	counters     []int64 // row-major: depth rows of width counters
	family       *hashutil.Family
}

// NewCountMin creates a sketch with the given depth (number of rows /
// hash functions) and width (counters per row).
func NewCountMin(depth, width int, seed uint64) (*CountMin, error) {
	if depth <= 0 || width <= 0 {
		return nil, fmt.Errorf("sketch: count-min dimensions %dx%d must be positive", depth, width)
	}
	return &CountMin{
		depth:    depth,
		width:    width,
		counters: make([]int64, depth*width),
		family:   hashutil.NewFamily(depth, seed),
	}, nil
}

// DimensionsForError returns the textbook (ε, δ) sizing: width = ⌈e/ε⌉,
// depth = ⌈ln(1/δ)⌉, guaranteeing estimate ≤ true + ε·N with probability
// 1-δ, where N is the total added mass.
func DimensionsForError(epsilon, delta float64) (depth, width int, err error) {
	if epsilon <= 0 || delta <= 0 || delta >= 1 {
		return 0, 0, fmt.Errorf("sketch: invalid (epsilon=%v, delta=%v)", epsilon, delta)
	}
	width = int(math.Ceil(math.E / epsilon))
	depth = int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	return depth, width, nil
}

// Add increases key's aggregate by v (v must be non-negative for the
// one-sided guarantee to hold) and returns the updated estimate.
func (cm *CountMin) Add(key uint64, v int64) int64 {
	est := int64(math.MaxInt64)
	for i := 0; i < cm.depth; i++ {
		idx := i*cm.width + hashutil.Reduce(cm.family.Uint64(i, key), cm.width)
		cm.counters[idx] += v
		if cm.counters[idx] < est {
			est = cm.counters[idx]
		}
	}
	return est
}

// Estimate returns the current estimate for key (≥ the true aggregate for
// non-negative updates).
func (cm *CountMin) Estimate(key uint64) int64 {
	est := int64(math.MaxInt64)
	for i := 0; i < cm.depth; i++ {
		idx := i*cm.width + hashutil.Reduce(cm.family.Uint64(i, key), cm.width)
		if cm.counters[idx] < est {
			est = cm.counters[idx]
		}
	}
	return est
}

// Depth returns the number of rows.
func (cm *CountMin) Depth() int { return cm.depth }

// Width returns counters per row.
func (cm *CountMin) Width() int { return cm.width }

// Reset zeroes all counters.
func (cm *CountMin) Reset() {
	for i := range cm.counters {
		cm.counters[i] = 0
	}
}
