package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"cheetah/internal/hashutil"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b, err := NewBloom(1<<14, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		b.Add(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !b.Contains(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
	if b.Count() != 1000 {
		t.Fatalf("Count = %d", b.Count())
	}
}

func TestBloomFalsePositiveRateNearEstimate(t *testing.T) {
	b, _ := NewBloom(1<<16, 3, 7)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		b.Add(i)
	}
	est := b.EstimateFalsePositiveRate(n)
	fp := 0
	const probes = 100000
	for i := uint64(0); i < probes; i++ {
		if b.Contains(1e9 + i) {
			fp++
		}
	}
	got := float64(fp) / probes
	if got > est*3+0.01 {
		t.Fatalf("fp rate %v far above estimate %v", got, est)
	}
}

func TestBloomReset(t *testing.T) {
	b, _ := NewBloom(1024, 2, 3)
	b.Add(42)
	if !b.Contains(42) {
		t.Fatal("add failed")
	}
	b.Reset()
	if b.Contains(42) || b.Count() != 0 || b.FillRatio() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBloomConstructorValidation(t *testing.T) {
	if _, err := NewBloom(0, 3, 1); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewBloom(64, 0, 1); err == nil {
		t.Fatal("h 0 accepted")
	}
}

func TestBloomNoFalseNegativesProperty(t *testing.T) {
	b, _ := NewBloom(1<<12, 4, 11)
	f := func(keys []uint64) bool {
		b.Reset()
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterBloomNoFalseNegatives(t *testing.T) {
	rb, err := NewRegisterBloom(1<<14, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		rb.Add(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !rb.Contains(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestRegisterBloomValidation(t *testing.T) {
	if _, err := NewRegisterBloom(-1, 3, 1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := NewRegisterBloom(64, 0, 1); err == nil {
		t.Fatal("h=0 accepted")
	}
	if _, err := NewRegisterBloom(64, 17, 1); err == nil {
		t.Fatal("h=17 accepted")
	}
}

func TestRegisterBloomFalsePositivesBounded(t *testing.T) {
	// The blocked variant should still reject the vast majority of absent
	// keys at a reasonable load.
	rb, _ := NewRegisterBloom(1<<16, 3, 9)
	const n = 4000
	for i := uint64(0); i < n; i++ {
		rb.Add(i)
	}
	fp := 0
	const probes = 50000
	for i := uint64(0); i < probes; i++ {
		if rb.Contains(1e9 + i) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("register bloom fp rate too high: %v", rate)
	}
}

func TestRegisterBloomReset(t *testing.T) {
	rb, _ := NewRegisterBloom(256, 2, 1)
	rb.Add(7)
	rb.Reset()
	if rb.Contains(7) || rb.Count() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMembershipInterfaceParity(t *testing.T) {
	// Both variants must satisfy the same no-false-negative contract via
	// the shared interface.
	impls := []Membership{}
	b, _ := NewBloom(1<<12, 3, 2)
	rb, _ := NewRegisterBloom(1<<12, 3, 2)
	impls = append(impls, b, rb)
	for _, m := range impls {
		for i := uint64(0); i < 500; i++ {
			m.Add(i * 31)
		}
		for i := uint64(0); i < 500; i++ {
			if !m.Contains(i * 31) {
				t.Fatalf("%T: false negative", m)
			}
		}
		if m.SizeBits() < 1<<12 {
			t.Fatalf("%T: size shrank", m)
		}
	}
}

func TestCountMinOneSidedError(t *testing.T) {
	cm, err := NewCountMin(3, 128, 13)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]int64{}
	// Heavily skewed updates across 1000 keys.
	for i := 0; i < 20000; i++ {
		k := uint64(i % 1000)
		v := int64(i%7 + 1)
		truth[k] += v
		cm.Add(k, v)
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("Count-Min underestimated key %d: got %d want >= %d", k, got, want)
		}
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	// With few keys and a wide sketch, estimates should be exact.
	cm, _ := NewCountMin(4, 1<<12, 3)
	for k := uint64(0); k < 10; k++ {
		cm.Add(k, int64(k)*10)
	}
	for k := uint64(1); k < 10; k++ {
		if got := cm.Estimate(k); got != int64(k)*10 {
			t.Fatalf("Estimate(%d) = %d, want %d", k, got, k*10)
		}
	}
	if cm.Estimate(999999) != 0 {
		t.Fatal("absent key should estimate 0 in sparse sketch")
	}
}

func TestCountMinAddReturnsEstimate(t *testing.T) {
	cm, _ := NewCountMin(2, 64, 1)
	if got := cm.Add(5, 3); got < 3 {
		t.Fatalf("Add returned %d < 3", got)
	}
	if got := cm.Add(5, 4); got < 7 {
		t.Fatalf("Add returned %d < 7", got)
	}
}

func TestCountMinReset(t *testing.T) {
	cm, _ := NewCountMin(2, 64, 1)
	cm.Add(1, 100)
	cm.Reset()
	if cm.Estimate(1) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 10, 1); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := NewCountMin(3, 0, 1); err == nil {
		t.Fatal("width 0 accepted")
	}
}

func TestDimensionsForError(t *testing.T) {
	d, w, err := DimensionsForError(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if w != int(math.Ceil(math.E/0.01)) {
		t.Fatalf("width = %d", w)
	}
	if d != 5 { // ceil(ln 100) = 5
		t.Fatalf("depth = %d", d)
	}
	if _, _, err := DimensionsForError(0, 0.1); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, _, err := DimensionsForError(0.1, 1); err == nil {
		t.Fatal("delta 1 accepted")
	}
}

func TestCountMinOneSidedProperty(t *testing.T) {
	cm, _ := NewCountMin(3, 64, 99)
	f := func(updates []uint16) bool {
		cm.Reset()
		truth := map[uint64]int64{}
		for _, u := range updates {
			k := uint64(u % 50)
			truth[k]++
			cm.Add(k, 1)
		}
		for k, want := range truth {
			if cm.Estimate(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprinterBasics(t *testing.T) {
	fp, err := NewFingerprinter(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Bits() != 16 {
		t.Fatalf("Bits = %d", fp.Bits())
	}
	if v := fp.Uint64(12345); v >= 1<<16 {
		t.Fatalf("fingerprint %d exceeds 16 bits", v)
	}
	if fp.String("abc") != fp.Bytes([]byte("abc")) {
		t.Fatal("string and byte fingerprints disagree")
	}
	if _, err := NewFingerprinter(0, 1); err == nil {
		t.Fatal("0 bits accepted")
	}
	if _, err := NewFingerprinter(65, 1); err == nil {
		t.Fatal("65 bits accepted")
	}
	full, _ := NewFingerprinter(64, 1)
	if full.Uint64(1) == full.Uint64(2) {
		t.Fatal("64-bit fingerprints collide on trivial input")
	}
}

func TestFingerprinterColumnsOrderSensitive(t *testing.T) {
	fp, _ := NewFingerprinter(64, 7)
	a := fp.Columns(1, 2)
	b := fp.Columns(2, 1)
	if a == b {
		t.Fatal("column order should matter")
	}
	if fp.Columns(1, 2) != a {
		t.Fatal("not deterministic")
	}
}

func TestMaxRowLoadRegimes(t *testing.T) {
	// Heavy regime: D much larger than d ln(2d/δ) → M = eD/d.
	m, err := MaxRowLoad(1_000_000, 1000, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	want := math.E * 1_000_000 / 1000
	if math.Abs(m-want) > 1e-9 {
		t.Fatalf("heavy regime M = %v, want %v", m, want)
	}
	// Middle regime.
	d := 1000
	delta := 0.0001
	l2d := math.Log(2 * float64(d) / delta)
	Dmid := int(float64(d) * l2d / 2) // between d ln(1/δ)/e and d ln(2d/δ)
	m, err = MaxRowLoad(Dmid, d, delta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-math.E*l2d) > 1e-9 {
		t.Fatalf("middle regime M = %v, want %v", m, math.E*l2d)
	}
	// Light regime must return something positive and finite.
	m, err = MaxRowLoad(10, d, delta)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		t.Fatalf("light regime M = %v", m)
	}
	if _, err := MaxRowLoad(0, 10, 0.5); err == nil {
		t.Fatal("D=0 accepted")
	}
}

func TestFingerprintBitsPaperExample(t *testing.T) {
	// Paper: d=1000, δ=0.01% supports up to 500M distinct elements with
	// 64-bit fingerprints.
	bits, err := FingerprintBits(500_000_000, 1000, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if bits > 64 {
		t.Fatalf("bits = %d, want <= 64", bits)
	}
	if bits < 50 {
		t.Fatalf("bits = %d suspiciously small for 500M distinct", bits)
	}
	// Fewer distinct elements need fewer bits.
	small, _ := FingerprintBits(1000, 1000, 0.0001)
	if small >= bits {
		t.Fatalf("1000 distinct needs %d bits, >= %d for 500M", small, bits)
	}
}

func TestFingerprintBitsMonotoneInDistinct(t *testing.T) {
	prev := uint(0)
	for _, D := range []int{100, 10_000, 1_000_000, 100_000_000} {
		b, err := FingerprintBits(D, 1000, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		if b < prev {
			t.Fatalf("bits not monotone: %d then %d", prev, b)
		}
		prev = b
	}
}

func TestFingerprintBitsSimple(t *testing.T) {
	// Theorem 5: f = ceil(log2(w·m/δ)).
	bits, err := FingerprintBitsSimple(1_000_000, 2, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	want := uint(math.Ceil(math.Log2(2 * 1e6 / 0.0001)))
	if bits != want {
		t.Fatalf("bits = %d, want %d", bits, want)
	}
	if _, err := FingerprintBitsSimple(0, 2, 0.1); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestFingerprintCollisionRateMatchesTheorem(t *testing.T) {
	// Simulate the Theorem 4 setup: hash D distinct keys into d rows, give
	// each a fingerprint of the prescribed size, and check that same-row
	// collisions are rare across trials.
	const d = 256
	const D = 4096
	const delta = 0.05
	bits, err := FingerprintBits(D, d, delta)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		fp, _ := NewFingerprinter(bits, uint64(trial)*7+1)
		rows := make(map[int]map[uint64]uint64) // row -> fingerprint -> key
		collided := false
		for k := uint64(0); k < D; k++ {
			key := k*2654435761 + uint64(trial)<<32
			row := hashutil.Reduce(hashutil.HashUint64(key, 42), d)
			f := fp.Uint64(key)
			if rows[row] == nil {
				rows[row] = map[uint64]uint64{}
			}
			if prev, ok := rows[row][f]; ok && prev != key {
				collided = true
				break
			}
			rows[row][f] = key
		}
		if collided {
			failures++
		}
	}
	// delta = 5%; allow generous slack over 20 trials (expected 1).
	if failures > 5 {
		t.Fatalf("fingerprint collisions in %d/%d trials, far above delta=%v", failures, trials, delta)
	}
}

func BenchmarkBloomAdd(b *testing.B) {
	bf, _ := NewBloom(1<<20, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bf.Add(uint64(i))
	}
}

func BenchmarkBloomContains(b *testing.B) {
	bf, _ := NewBloom(1<<20, 3, 1)
	for i := uint64(0); i < 1<<16; i++ {
		bf.Add(i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = bf.Contains(uint64(i))
	}
	_ = sink
}

func BenchmarkRegisterBloomContains(b *testing.B) {
	rb, _ := NewRegisterBloom(1<<20, 3, 1)
	for i := uint64(0); i < 1<<16; i++ {
		rb.Add(i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = rb.Contains(uint64(i))
	}
	_ = sink
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm, _ := NewCountMin(3, 1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.Add(uint64(i%4096), 1)
	}
}
