package stream

import (
	"context"
	"fmt"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/table"
)

// DeltaExec executes one fully-formed delta query (the delta table is
// already substituted in, and HAVING is rewritten to GROUP BY SUM) and
// returns its canonical result. The planning layer injects an executor
// that streams the delta through a held switch program; the default is
// exact direct execution.
//
// standing lazily renders the current standing merge state (the result
// of everything absorbed so far). Executors that re-place a dead
// switch's program use it to warm-rebuild prune state (§7.2 recovery);
// most executors never call it. It is only valid for the duration of
// the call — it reads state the stream layer guards, so it must not be
// retained, and Subscription methods (Results, Step, Close) must not be
// called from inside a DeltaExec.
type DeltaExec func(dq *engine.Query, standing func() *engine.Result) (*engine.Result, error)

// SubOptions shapes one subscription.
type SubOptions struct {
	// Exec runs each delta; nil selects DirectExec.
	Exec DeltaExec
	// Window and Slide, when non-zero, make the subscription windowed
	// over row counts: the standing result covers the most recently
	// completed window of Window rows, advancing every Slide rows with
	// the oldest Slide rows retracted. Window == Slide is a tumbling
	// window. Window must be a positive multiple of Slide, and windowing
	// applies to the aggregate kinds (TOP N, GROUP BY MAX/SUM, HAVING).
	Window, Slide int
	// NoPump disables the background pump; deltas are processed only by
	// explicit Step calls. Deterministic delta schedules — the property
	// suites — use this.
	NoPump bool
}

// Update is one subscription progress notification.
type Update struct {
	// Version is the committed row prefix the standing result now
	// covers (for windowed subscriptions: the rows processed; the
	// fired window may trail it).
	Version uint64
	// Rows is the delta size that produced this update.
	Rows int
}

// Subscription is one continuous query: a standing result kept
// incrementally fresh over the ingestor's append log. Results is
// polled; Updates streams progress notifications (latest wins).
type Subscription struct {
	in   *Ingestor
	q    *engine.Query
	exec DeltaExec

	// Unwindowed standing state, or the windowed pane machinery.
	m   merger
	win *windowState

	notify  chan struct{}
	done    chan struct{}
	pumped  bool
	pumpEnd chan struct{}
	updates chan Update

	// stateMu guards the merge state (m / win) and stateVer: the pump
	// mutates them outside the ingestor lock, Results reads them.
	stateMu  sync.Mutex
	stateVer uint64

	// Guarded by in.mu: processed offset, terminal error, closed flag.
	processed uint64
	err       error
	subClosed bool

	// Guarded by resMu: the rendered standing result cache.
	resMu     sync.Mutex
	result    *engine.Result
	resultVer uint64
	dirty     bool

	// stepMu serializes step with Close for manual (NoPump)
	// subscriptions, where no pump handshake protects the updates
	// channel from an in-flight Step's publish.
	stepMu      sync.Mutex
	closeOnce   sync.Once
	updatesOnce sync.Once
}

// windowState is the pane machinery of a windowed subscription: the
// current pane accumulates sub-deltas; completed panes keep their
// rendered partials; the fired window is the fold of the last
// Window/Slide panes — sliding retracts by dropping the oldest pane.
type windowState struct {
	window, slide int
	panes         int // window / slide
	cur           merger
	done          []*engine.Result
	firedHi       uint64 // end row of the last fired window (0 = none)
}

func newSubscription(in *Ingestor, q *engine.Query, opts SubOptions) (*Subscription, error) {
	s := &Subscription{
		in:      in,
		q:       q,
		exec:    opts.Exec,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
		pumpEnd: make(chan struct{}),
		updates: make(chan Update, 1),
		pumped:  !opts.NoPump,
		dirty:   true,
	}
	if opts.Window != 0 || opts.Slide != 0 {
		if err := validateWindow(q, opts.Window, opts.Slide); err != nil {
			return nil, err
		}
		cur, err := paneMerger(q)
		if err != nil {
			return nil, err
		}
		s.win = &windowState{
			window: opts.Window,
			slide:  opts.Slide,
			panes:  opts.Window / opts.Slide,
			cur:    cur,
		}
	} else {
		m, err := newMerger(q)
		if err != nil {
			return nil, err
		}
		s.m = m
	}
	return s, nil
}

// validateWindow checks the window shape and the kind's windowability.
func validateWindow(q *engine.Query, window, slide int) error {
	if window <= 0 || slide <= 0 {
		return fmt.Errorf("stream: window %d / slide %d must both be positive", window, slide)
	}
	if window%slide != 0 {
		return fmt.Errorf("stream: window %d must be a multiple of slide %d (pane-aligned retraction)", window, slide)
	}
	switch q.Kind {
	case engine.KindTopN, engine.KindGroupByMax, engine.KindGroupBySum, engine.KindHaving:
		return nil
	default:
		return fmt.Errorf("stream: %v does not support windows (windowed variants cover the aggregate kinds)", q.Kind)
	}
}

// start launches the background pump unless the subscription is manual.
func (s *Subscription) start() {
	if !s.pumped {
		close(s.pumpEnd)
		// A manual subscription may already be behind a committed
		// prefix; the first Step picks it up.
		return
	}
	go s.pump()
	s.wake() // catch up over the already-committed prefix
}

// wake nudges the pump (nonblocking; coalesces).
func (s *Subscription) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *Subscription) pump() {
	defer close(s.pumpEnd)
	for {
		select {
		case <-s.done:
			return
		case <-s.notify:
		}
		for {
			n, err := s.step()
			if err != nil {
				// Terminal: fail() already deregistered the
				// subscription; closing updates unblocks receivers.
				s.updatesOnce.Do(func() { close(s.updates) })
				return
			}
			if n == 0 {
				break
			}
		}
	}
}

// Step processes the pending delta (all rows committed since the last
// processed version) synchronously and reports its size. Manual
// (NoPump) subscriptions are driven exclusively through Step; calling
// it on a pumped subscription is an error (two drivers would race the
// merge state).
func (s *Subscription) Step() (int, error) {
	if s.pumped {
		return 0, fmt.Errorf("stream: Step on a pumped subscription (use NoPump for manual draining)")
	}
	return s.step()
}

// step coalesces everything committed past the processed offset into
// one delta, runs it through the executor and the merge state, then
// publishes the advance.
func (s *Subscription) step() (int, error) {
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	s.in.mu.Lock()
	if s.subClosed {
		s.in.mu.Unlock()
		return 0, ErrClosed
	}
	if s.err != nil {
		err := s.err
		s.in.mu.Unlock()
		return 0, err
	}
	lo, hi := s.processed, s.in.rows
	if lo == hi {
		s.in.mu.Unlock()
		return 0, nil
	}
	// Extend the skip index over the rows this delta covers before the
	// snapshot captures the index pointer (same amortization as
	// Ingestor.Snapshot; in.mu serializes the refresh against commits).
	s.in.t.RefreshSkipIndex()
	snap, err := s.in.t.SnapshotPrefix(int(hi))
	s.in.mu.Unlock()
	if err != nil {
		return 0, s.fail(err)
	}

	s.stateMu.Lock()
	if s.win != nil {
		err = s.absorbWindowed(snap, lo, hi)
	} else {
		err = s.absorbSpan(snap, lo, hi, s.m)
	}
	if err == nil {
		s.stateVer = hi
	}
	s.stateMu.Unlock()
	if err != nil {
		return 0, s.fail(err)
	}

	s.resMu.Lock()
	s.dirty = true
	s.resMu.Unlock()

	s.in.mu.Lock()
	s.processed = hi
	s.in.cond.Broadcast()
	s.in.mu.Unlock()

	s.publish(Update{Version: hi, Rows: int(hi - lo)})
	return int(hi - lo), nil
}

// absorbSpan executes rows [lo, hi) of the snapshot as one delta and
// folds the result into m. The executor gets a lazy view of m's current
// state (stateMu is already held here, and merger snapshots take no
// locks, so the closure is safe for the duration of the call): for
// unwindowed subscriptions that is the full standing result, which
// §7.2 re-placement warms fresh programs from; for windowed ones it is
// only the current pane — per-pane state must not prune across window
// boundaries, and the planning layer never warms windowed programs.
func (s *Subscription) absorbSpan(snap *table.Table, lo, hi uint64, m merger) error {
	delta, err := snap.View(int(lo), int(hi))
	if err != nil {
		return err
	}
	res, err := s.exec(deltaQuery(s.q, delta), m.snapshot)
	if err != nil {
		return err
	}
	return m.absorb(res)
}

// absorbWindowed splits the delta at pane boundaries: each pane-aligned
// sub-span executes separately into the current pane, and every
// completed pane slides the window — the oldest pane's contribution is
// retracted by falling out of the fold.
func (s *Subscription) absorbWindowed(snap *table.Table, lo, hi uint64) error {
	w := s.win
	for a := lo; a < hi; {
		b := a - a%uint64(w.slide) + uint64(w.slide) // next pane boundary
		if b > hi {
			b = hi
		}
		if err := s.absorbSpan(snap, a, b, w.cur); err != nil {
			return err
		}
		if b%uint64(w.slide) == 0 {
			// Pane complete: freeze its partial, slide the window.
			w.done = append(w.done, w.cur.snapshot())
			if len(w.done) > w.panes {
				w.done = w.done[1:]
			}
			w.firedHi = b
			cur, err := paneMerger(s.q)
			if err != nil {
				return err
			}
			w.cur = cur
		}
		a = b
	}
	return nil
}

// fired folds the completed panes into the current window's result; an
// unfired window renders the query's empty result.
func (w *windowState) fired(q *engine.Query) *engine.Result {
	fm, err := newMerger(q)
	if err != nil {
		// newMerger already succeeded for this query at subscribe time.
		panic(err)
	}
	for _, pane := range w.done {
		if err := fm.absorb(pane); err != nil {
			panic(fmt.Sprintf("stream: window fold over own pane snapshot: %v", err))
		}
	}
	return fm.snapshot()
}

// WindowBounds returns the committed row range [lo, hi) the last fired
// window covers (0, 0 before the first pane completes).
func (s *Subscription) WindowBounds() (lo, hi uint64) {
	if s.win == nil {
		return 0, 0
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	w := s.win
	if w.firedHi == 0 {
		return 0, 0
	}
	return w.firedHi - uint64(len(w.done)*w.slide), w.firedHi
}

// Window returns the subscription's window shape (0, 0 when
// unwindowed).
func (s *Subscription) Window() (window, slide int) {
	if s.win == nil {
		return 0, 0
	}
	return s.win.window, s.win.slide
}

// fail records a terminal execution error: the standing result freezes
// at its last consistent state, and the subscription leaves the
// ingestor's backlog accounting — a wedged continuous query must not
// block (or shed) every future append forever.
func (s *Subscription) fail(err error) error {
	s.in.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	delete(s.in.subs, s)
	s.in.cond.Broadcast()
	s.in.mu.Unlock()
	return err
}

// publish pushes an update with latest-wins semantics: a slow receiver
// never blocks the pump, it just skips intermediate versions.
func (s *Subscription) publish(u Update) {
	for {
		select {
		case s.updates <- u:
			return
		default:
			select {
			case <-s.updates:
			default:
			}
		}
	}
}

// Results returns the standing result and the version (committed row
// prefix) it covers. For windowed subscriptions the result is the last
// fired window and the version its end row. The result is immutable.
func (s *Subscription) Results() (*engine.Result, uint64) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.dirty {
		s.stateMu.Lock()
		if s.win != nil {
			s.result = s.win.fired(s.q)
			s.resultVer = s.win.firedHi
		} else {
			s.result = s.m.snapshot()
			s.resultVer = s.stateVer
		}
		s.stateMu.Unlock()
		s.dirty = false
	}
	return s.result, s.resultVer
}

// Updates returns the progress channel. It carries the latest
// unconsumed advance (older ones are dropped) and is closed when the
// subscription closes.
func (s *Subscription) Updates() <-chan Update { return s.updates }

// Err returns the subscription's terminal execution error, if any.
func (s *Subscription) Err() error {
	s.in.mu.Lock()
	defer s.in.mu.Unlock()
	return s.err
}

// Query returns the subscribed query.
func (s *Subscription) Query() *engine.Query { return s.q }

// Version returns the committed row prefix the merge state has
// processed.
func (s *Subscription) Version() uint64 {
	s.in.mu.Lock()
	defer s.in.mu.Unlock()
	return s.processed
}

// Wait blocks until the subscription has processed at least version
// rows (ErrClosed if it closes first, the terminal error if it fails,
// ctx errors propagate).
func (s *Subscription) Wait(ctx context.Context, version uint64) error {
	return s.in.waitVersion(ctx, s, version)
}

// Flush waits until every row committed before the call is reflected
// in the standing result.
func (s *Subscription) Flush(ctx context.Context) error {
	return s.Wait(ctx, s.in.Version())
}

// Close deregisters the subscription, stops its pump (draining the
// delta in flight) and closes the updates channel. Idempotent.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() {
		s.in.mu.Lock()
		s.subClosed = true
		delete(s.in.subs, s)
		s.in.cond.Broadcast()
		s.in.mu.Unlock()
		close(s.done)
		<-s.pumpEnd
		// Manual subscriptions have no pump handshake: close under
		// stepMu so an in-flight Step finishes its publish first (later
		// Steps bail on subClosed before publishing).
		s.stepMu.Lock()
		s.updatesOnce.Do(func() { close(s.updates) })
		s.stepMu.Unlock()
	})
}
