package stream

import (
	"fmt"
	"testing"

	"cheetah/internal/engine"
	"cheetah/internal/table"
	"cheetah/internal/workload/multitenant"
)

// windowGroundTruth runs q from scratch over rows [lo, hi) of src.
func windowGroundTruth(t *testing.T, q *engine.Query, src *table.Table, lo, hi uint64) *engine.Result {
	t.Helper()
	v, err := src.View(int(lo), int(hi))
	if err != nil {
		t.Fatal(err)
	}
	qw := *q
	qw.Table = v
	res, err := engine.ExecDirect(&qw)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWindowedEquivalence pins the windowed invariant for the aggregate
// kinds: after every append, the fired window result is bit-identical
// to a from-scratch run over exactly the window's row range — tumbling
// (window == slide) and sliding (window = k·slide, oldest pane
// retracted on each slide).
func TestWindowedEquivalence(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1200, RankRows: 500, Seed: 0xabc})
	if err != nil {
		t.Fatal(err)
	}
	// Kind indices of the mix: 2=TOPN, 3=GBMAX, 4=GBSUM, 5=HAVING.
	for _, kind := range []int{2, 3, 4, 5} {
		for _, shape := range []struct{ window, slide int }{
			{200, 200}, // tumbling
			{300, 100}, // sliding, 3 panes
		} {
			base := mix.Query(kind)
			name := fmt.Sprintf("%v/w=%d,s=%d", base.Kind, shape.window, shape.slide)
			t.Run(name, func(t *testing.T) {
				target, err := table.New(mix.Visits.Schema())
				if err != nil {
					t.Fatal(err)
				}
				in, err := NewIngestor(target, Config{})
				if err != nil {
					t.Fatal(err)
				}
				defer in.Close()
				q := *base
				q.Table = target
				sub, err := in.Subscribe(&q, SubOptions{
					Window: shape.window, Slide: shape.slide, NoPump: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				// Deliberately misaligned batches: panes must split them.
				const chunk = 73
				n := mix.Visits.NumRows()
				for lo := 0; lo < n; lo += chunk {
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					v, err := mix.Visits.View(lo, hi)
					if err != nil {
						t.Fatal(err)
					}
					if err := in.AppendBatch(v); err != nil {
						t.Fatal(err)
					}
					if _, err := sub.Step(); err != nil {
						t.Fatal(err)
					}
					wlo, whi := sub.WindowBounds()
					got, ver := sub.Results()
					if whi == 0 {
						// No pane completed yet: the window renders empty.
						if len(got.Rows) != 0 && q.Kind != engine.KindHaving {
							t.Fatalf("unfired window has %d rows", len(got.Rows))
						}
						continue
					}
					if ver != whi {
						t.Fatalf("result version %d != window end %d", ver, whi)
					}
					if span := whi - wlo; span > uint64(shape.window) || whi%uint64(shape.slide) != 0 {
						t.Fatalf("window bounds [%d,%d) malformed", wlo, whi)
					}
					want := windowGroundTruth(t, &q, mix.Visits, wlo, whi)
					mustEqual(t, fmt.Sprintf("window [%d,%d)", wlo, whi), got, want)
				}
				// At least one full-width window must have fired and slid.
				if _, whi := sub.WindowBounds(); whi < uint64(shape.window) {
					t.Fatalf("window never reached full width (end=%d)", whi)
				}
			})
		}
	}
}

// TestWindowValidation pins the window option contract.
func TestWindowValidation(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "k", Type: table.String}, {Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	agg := &engine.Query{Kind: engine.KindGroupBySum, Table: tb, KeyCol: "k", AggCol: "v"}
	for _, bad := range []struct{ w, s int }{{0, 5}, {5, 0}, {-2, 2}, {10, 3}} {
		if _, err := in.Subscribe(agg, SubOptions{Window: bad.w, Slide: bad.s, NoPump: true}); err == nil {
			t.Fatalf("window %d/%d should be rejected", bad.w, bad.s)
		}
	}
	distinct := &engine.Query{Kind: engine.KindDistinct, Table: tb, DistinctCols: []string{"k"}}
	if _, err := in.Subscribe(distinct, SubOptions{Window: 10, Slide: 5, NoPump: true}); err == nil {
		t.Fatal("windowed DISTINCT should be rejected (aggregate kinds only)")
	}
	ok, err := in.Subscribe(agg, SubOptions{Window: 10, Slide: 5, NoPump: true})
	if err != nil {
		t.Fatal(err)
	}
	if w, s := ok.Window(); w != 10 || s != 5 {
		t.Fatalf("Window() = %d/%d", w, s)
	}
}

// TestWindowRetraction pins the retraction semantics directly: a key
// whose rows all fall out of the sliding window disappears from the
// standing result.
func TestWindowRetraction(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "k", Type: table.String}, {Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	q := &engine.Query{Kind: engine.KindGroupBySum, Table: tb, KeyCol: "k", AggCol: "v"}
	sub, err := in.Subscribe(q, SubOptions{Window: 4, Slide: 2, NoPump: true})
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		t.Helper()
		if _, err := sub.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Window covers 4 rows sliding by 2: "old" fills rows 0-3, then
	// "new" rows push it out entirely.
	for i := 0; i < 4; i++ {
		if err := in.Append("old", int64(10)); err != nil {
			t.Fatal(err)
		}
	}
	step()
	res, _ := sub.Results()
	if len(res.Rows) != 1 || res.Rows[0][0] != "old" || res.Rows[0][1] != "40" {
		t.Fatalf("full window = %v, want old=40", res.Rows)
	}
	for i := 0; i < 4; i++ {
		if err := in.Append("new", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	step()
	res, _ = sub.Results()
	if len(res.Rows) != 1 || res.Rows[0][0] != "new" || res.Rows[0][1] != "4" {
		t.Fatalf("slid window = %v, want new=4 (old fully retracted)", res.Rows)
	}
}
