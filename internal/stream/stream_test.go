package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/table"
	"cheetah/internal/workload/multitenant"
)

// newEmptyLike builds an empty root table with src's schema.
func newEmptyLike(t *testing.T, src *table.Table) *table.Table {
	t.Helper()
	tb, err := table.New(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// mustEqual fails unless got is bit-identical to want.
func mustEqual(t *testing.T, ctx string, got, want *engine.Result) {
	t.Helper()
	if got == nil || !want.Equal(got) {
		t.Fatalf("%s: standing result diverged\n got: %v\nwant: %v", ctx, got, want)
	}
}

// schedules enumerates the delta schedules of the property suite: one
// big batch, many small batches, and small batches with a second
// subscription registered mid-stream.
var schedules = []string{"one-big", "many-small", "interleaved"}

// runSchedule drives rows of src into the ingestor per the schedule,
// stepping subscription(s) between appends, and returns every live
// subscription (the interleaved schedule registers a second one
// mid-stream via subscribe).
func runSchedule(t *testing.T, in *Ingestor, src *table.Table, schedule string,
	sub *Subscription, subscribe func() *Subscription) []*Subscription {
	t.Helper()
	subs := []*Subscription{sub}
	stepAll := func() {
		for _, s := range subs {
			if _, err := s.Step(); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
	}
	n := src.NumRows()
	appendRange := func(lo, hi int) {
		v, err := src.View(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.AppendBatch(v); err != nil {
			t.Fatalf("append [%d,%d): %v", lo, hi, err)
		}
	}
	switch schedule {
	case "one-big":
		appendRange(0, n)
		stepAll()
	case "many-small":
		const chunk = 97
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			appendRange(lo, hi)
			stepAll()
		}
	case "interleaved":
		appendRange(0, n/2)
		stepAll()
		late := subscribe()
		subs = append(subs, late)
		const chunk = 61
		for lo := n / 2; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			appendRange(lo, hi)
			stepAll()
		}
	default:
		t.Fatalf("unknown schedule %q", schedule)
	}
	return subs
}

// TestIncrementalEquivalence is the stream-layer half of the property
// suite: for all 8 kinds × delta schedules × seeds, the standing result
// after any append schedule is bit-identical to running the query from
// scratch on the full prefix — with the exact executor and with the
// batched pruned executor (standing switch state across deltas).
func TestIncrementalEquivalence(t *testing.T) {
	execs := map[string]func(seed uint64) DeltaExec{
		"direct": func(uint64) DeltaExec { return DirectExec },
		"cheetah": func(seed uint64) DeltaExec {
			return func(dq *engine.Query, _ func() *engine.Result) (*engine.Result, error) {
				run, err := engine.ExecCheetah(dq, engine.CheetahOptions{Workers: 2, Seed: seed})
				if err != nil {
					return nil, err
				}
				return run.Result, nil
			}
		},
	}
	for execName, mkExec := range execs {
		for _, seed := range []uint64{1, 0xbeef, 42} {
			mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1500, RankRows: 700, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for kind := 0; kind < multitenant.NumKinds; kind++ {
				for _, schedule := range schedules {
					name := fmt.Sprintf("%s/seed=%#x/%v/%s", execName, seed, mix.Query(kind).Kind, schedule)
					t.Run(name, func(t *testing.T) {
						target := newEmptyLike(t, mix.Visits)
						in, err := NewIngestor(target, Config{})
						if err != nil {
							t.Fatal(err)
						}
						defer in.Close()
						q := *mix.Query(kind)
						q.Table = target
						subscribe := func() *Subscription {
							s, err := in.Subscribe(&q, SubOptions{Exec: mkExec(seed), NoPump: true})
							if err != nil {
								t.Fatal(err)
							}
							return s
						}
						subs := runSchedule(t, in, mix.Visits, schedule, subscribe(), subscribe)

						full := *mix.Query(kind) // from-scratch ground truth on the full prefix
						want, err := engine.ExecDirect(&full)
						if err != nil {
							t.Fatal(err)
						}
						for i, s := range subs {
							got, ver := s.Results()
							if ver != uint64(mix.Visits.NumRows()) {
								t.Fatalf("sub %d version = %d, want %d", i, ver, mix.Visits.NumRows())
							}
							mustEqual(t, fmt.Sprintf("sub %d", i), got, want)
						}
					})
				}
			}
		}
	}
}

func TestIngestorSnapshotVersioning(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.Append(int64(1)); err != nil {
		t.Fatal(err)
	}
	snap, ver, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || snap.NumRows() != 1 {
		t.Fatalf("snapshot ver=%d rows=%d, want 1/1", ver, snap.NumRows())
	}
	// Later appends stay invisible to the captured snapshot.
	for i := 0; i < 100; i++ {
		if err := in.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if snap.NumRows() != 1 || snap.Int64At(0, 0) != 1 {
		t.Fatalf("snapshot mutated: rows=%d", snap.NumRows())
	}
	if got := in.Version(); got != 101 {
		t.Fatalf("version = %d, want 101", got)
	}
}

func TestIngestorRejectsViewsAndExternalMutation(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	if err := tb.AppendInt64Row(1); err != nil {
		t.Fatal(err)
	}
	v, err := tb.View(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIngestor(v, Config{}); err == nil {
		t.Fatal("ingestor over a view should fail")
	}
	in, err := NewIngestor(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	// An append that bypasses the ingestor is detected on the next commit.
	if err := tb.AppendInt64Row(2); err != nil {
		t.Fatal(err)
	}
	if err := in.Append(int64(3)); err == nil {
		t.Fatal("append after external mutation should fail")
	}
}

func TestBackpressureShed(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{Backlog: 5, OnFull: Shed})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	q := &engine.Query{Kind: engine.KindTopN, Table: tb, OrderCol: "v", N: 3}
	sub, err := in.Subscribe(q, SubOptions{NoPump: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := in.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Append(int64(99)); !errors.Is(err, ErrBacklog) {
		t.Fatalf("overflow append err = %v, want ErrBacklog", err)
	}
	if st := in.Stats(); st.Backlog != 5 || st.Subscriptions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Draining frees capacity; the shed rows were never committed.
	if _, err := sub.Step(); err != nil {
		t.Fatal(err)
	}
	if err := in.Append(int64(99)); err != nil {
		t.Fatalf("append after drain: %v", err)
	}
	if got := in.Version(); got != 6 {
		t.Fatalf("version = %d, want 6 (shed batch not committed)", got)
	}
	// A batch bigger than the bound can never be admitted.
	big := table.MustNew(tb.Schema())
	for i := 0; i < 6; i++ {
		if err := big.AppendInt64Row(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AppendBatch(big); err == nil {
		t.Fatal("batch above the backlog bound should fail")
	}
}

func TestBackpressureBlocks(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{Backlog: 4, OnFull: Block})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	q := &engine.Query{Kind: engine.KindTopN, Table: tb, OrderCol: "v", N: 2}
	sub, err := in.Subscribe(q, SubOptions{NoPump: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := in.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- in.Append(int64(4)) }()
	select {
	case err := <-unblocked:
		t.Fatalf("append should have blocked, returned %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := sub.Step(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("unblocked append: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append stayed blocked after the backlog drained")
	}
}

func TestPumpedSubscriptionAndUpdates(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	q := &engine.Query{Kind: engine.KindTopN, Table: tb, OrderCol: "v", N: 3}
	sub, err := in.Subscribe(q, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 50; i++ {
		if err := in.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	res, ver := sub.Results()
	if ver != 50 {
		t.Fatalf("version = %d, want 50", ver)
	}
	want := [][]string{{"47"}, {"48"}, {"49"}}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0] != w[0] {
			t.Fatalf("rows = %v, want %v", res.Rows, want)
		}
	}
	// Step is rejected on a pumped subscription.
	if _, err := sub.Step(); err == nil {
		t.Fatal("Step on a pumped subscription should fail")
	}
	// The updates channel carries the latest advance and closes on Close.
	select {
	case u := <-sub.Updates():
		if u.Version == 0 {
			t.Fatalf("update = %+v", u)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no update received")
	}
	sub.Close()
	sub.Close() // idempotent
	// Any residual buffered update drains, then the channel reports
	// closed — a ranged receive must terminate.
	for range sub.Updates() {
	}
}

func TestIngestorCloseDrainsSubscriptions(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Kind: engine.KindTopN, Table: tb, OrderCol: "v", N: 1}
	sub, err := in.Subscribe(q, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Append(int64(7)); err != nil {
		t.Fatal(err)
	}
	in.Close()
	in.Close() // idempotent
	if err := in.Append(int64(8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close err = %v, want ErrClosed", err)
	}
	if _, err := in.Subscribe(q, SubOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after close err = %v, want ErrClosed", err)
	}
	// The subscription's pump has exited and its channel is closed.
	for range sub.Updates() {
	}
}

// TestFailedSubscriptionLeavesBacklog pins that a subscription whose
// executor fails terminally stops counting against the backlog bound —
// a wedged continuous query must not block or shed appends forever —
// and that its updates channel closes so receivers unblock.
func TestFailedSubscriptionLeavesBacklog(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{Backlog: 4, OnFull: Shed})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	q := &engine.Query{Kind: engine.KindTopN, Table: tb, OrderCol: "v", N: 2}
	boom := fmt.Errorf("executor broke")
	sub, err := in.Subscribe(q, SubOptions{Exec: func(*engine.Query, func() *engine.Result) (*engine.Result, error) {
		return nil, boom
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Append(int64(1)); err != nil {
		t.Fatal(err)
	}
	// The pump hits the terminal error and closes updates.
	for range sub.Updates() {
	}
	if err := sub.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want the executor error", err)
	}
	// The failed subscription no longer counts toward the backlog:
	// appends past its frozen offset keep committing.
	for i := 0; i < 20; i++ {
		if err := in.Append(int64(i)); err != nil {
			t.Fatalf("append %d after subscription failure: %v", i, err)
		}
	}
	// Wait surfaces the terminal error instead of hanging.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sub.Wait(ctx, in.Version()); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want the executor error", err)
	}
	sub.Close()
}

// TestManualStepCloseRace pins that Close racing an in-flight Step on
// a NoPump subscription never panics (publish vs channel close).
func TestManualStepCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
		in, err := NewIngestor(tb, Config{})
		if err != nil {
			t.Fatal(err)
		}
		q := &engine.Query{Kind: engine.KindTopN, Table: tb, OrderCol: "v", N: 2}
		sub, err := in.Subscribe(q, SubOptions{NoPump: true})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 8; r++ {
			if err := in.Append(int64(r)); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); sub.Step() }() //nolint:errcheck
		go func() { defer wg.Done(); sub.Close() }()
		wg.Wait()
		in.Close()
	}
}

// TestConcurrentAppendersRace exercises the writer/reader paths the
// race detector must clear: several appenders, a pumped subscription
// and snapshot readers all running against one log.
func TestConcurrentAppendersRace(t *testing.T) {
	tb := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	in, err := NewIngestor(tb, Config{Backlog: 10_000, OnFull: Block})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	q := &engine.Query{Kind: engine.KindTopN, Table: tb, OrderCol: "v", N: 10}
	sub, err := in.Subscribe(q, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const appenders, rowsEach = 8, 400
	var wg sync.WaitGroup
	wg.Add(appenders + 1)
	for a := 0; a < appenders; a++ {
		go func(a int) {
			defer wg.Done()
			for i := 0; i < rowsEach; i++ {
				if err := in.Append(int64(a*rowsEach + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			snap, _, err := in.Snapshot()
			if err != nil {
				t.Error(err)
				return
			}
			_ = snap.NumRows()
			sub.Results()
		}
	}()
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sub.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	res, ver := sub.Results()
	if ver != appenders*rowsEach {
		t.Fatalf("version = %d, want %d", ver, appenders*rowsEach)
	}
	if got, want := res.Rows[len(res.Rows)-1][0], fmt.Sprint(appenders*rowsEach-1); got != want {
		t.Fatalf("top value = %s, want %s", got, want)
	}
}
