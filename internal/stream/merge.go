package stream

// Per-kind incremental merge state. Each merger folds the canonical
// engine.Result of one delta execution into a standing result that is
// bit-identical to running the query from scratch on the full prefix.
// Working on rendered results — not raw survivor streams — makes the
// merge path executor-agnostic: the same state merges deltas produced
// by ExecDirect, the batched pipeline, ExecSharded, or a fabric lease,
// because all of them render the same canonical rows.
//
// Why each merge is exact:
//
//   - FILTER: matching is per-row, so the full result is the bag union
//     of per-delta matches (a count sum for COUNT(*)).
//   - DISTINCT: the tuple set is the union of per-delta tuple sets; a
//     tuple's first global occurrence is in some delta, whose result
//     contains it even when a standing switch cache suppressed rows
//     duplicated from earlier deltas.
//   - TOP N: topN(A ∪ B) = topN(topN(A) ∪ topN(B)) as multisets, so a
//     standing N-heap absorbs each delta's local top N.
//   - GROUP BY MAX / SUM: per-key max/sum merge per-delta partials;
//     both operators are associative and commutative over row bags.
//   - HAVING: keys can cross the threshold only in aggregate, so the
//     standing state is the full per-key sum map (deltas execute as
//     GROUP BY SUM); the threshold applies when the standing result is
//     rendered. The candidates-only output of the sketch path cannot
//     be merged incrementally — a below-threshold key would be lost.
//   - JOIN: with a static right side, per-key pair counts are linear in
//     the left rows: pairs(A∪B ⋈ R) = pairs(A⋈R) + pairs(B⋈R).
//   - SKYLINE: skyline(A ∪ B) = skyline(skyline(A) ∪ skyline(B)); the
//     standing frontier is dominance-re-checked against each delta's
//     skyline. Points never resurface once dominated.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cheetah/internal/engine"
	"cheetah/internal/table"
)

// merger folds delta results into a standing result. Mergers are not
// safe for concurrent use; the subscription serializes access.
type merger interface {
	// absorb folds one delta execution's result in.
	absorb(*engine.Result) error
	// snapshot renders the standing result, bit-identical to a
	// from-scratch run over everything absorbed. The returned value is
	// immutable (fresh rows each call).
	snapshot() *engine.Result
}

// newMerger builds the standing-state merger for q. For windowed
// subscriptions it is also the final fold over pane snapshots.
func newMerger(q *engine.Query) (merger, error) {
	switch q.Kind {
	case engine.KindFilter:
		if q.CountOnly {
			return &countMerger{}, nil
		}
		names := make([]string, q.Table.NumCols())
		for i, d := range q.Table.Schema() {
			names[i] = d.Name
		}
		return &bagMerger{cols: names}, nil
	case engine.KindDistinct:
		return &setMerger{cols: append([]string(nil), q.DistinctCols...)}, nil
	case engine.KindTopN:
		return &topNMerger{cols: []string{q.OrderCol}, n: q.N}, nil
	case engine.KindGroupByMax:
		return &keyAggMerger{cols: []string{q.KeyCol, "max(" + q.AggCol + ")"}, sum: false}, nil
	case engine.KindGroupBySum:
		return &keyAggMerger{cols: []string{q.KeyCol, "sum(" + q.AggCol + ")"}, sum: true}, nil
	case engine.KindHaving:
		return &havingMerger{
			keyAggMerger: keyAggMerger{cols: []string{q.KeyCol, "sum(" + q.AggCol + ")"}, sum: true},
			outCols:      []string{q.KeyCol},
			threshold:    q.Threshold,
		}, nil
	case engine.KindJoin:
		return &joinMerger{cols: []string{q.LeftKey, "pairs"}}, nil
	case engine.KindSkyline:
		return &skylineMerger{cols: append([]string(nil), q.SkylineCols...), dims: len(q.SkylineCols)}, nil
	default:
		return nil, fmt.Errorf("stream: no incremental merge for %v", q.Kind)
	}
}

// paneMerger builds the per-pane accumulator for windowed
// subscriptions. It differs from newMerger only for HAVING, whose panes
// must keep raw sums (the threshold applies to the whole window, not
// per pane).
func paneMerger(q *engine.Query) (merger, error) {
	if q.Kind == engine.KindHaving {
		return &keyAggMerger{cols: []string{q.KeyCol, "sum(" + q.AggCol + ")"}, sum: true}, nil
	}
	return newMerger(q)
}

// deltaQuery derives the query executed against one delta table: the
// delta substitutes the source table, and HAVING aggregates as GROUP BY
// SUM (full per-key partial sums; see the HAVING note above).
func deltaQuery(q *engine.Query, delta *table.Table) *engine.Query {
	qd := *q
	qd.Table = delta
	if qd.Kind == engine.KindHaving {
		qd.Kind = engine.KindGroupBySum
	}
	return &qd
}

// parseInt64 parses a canonical rendered integer cell.
func parseInt64(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("stream: malformed integer cell %q: %v", s, err)
	}
	return v, nil
}

// sortedCopy renders the rows as a Result in the canonical sorted
// order (fresh backing, safe to hand out).
func sortedCopy(cols []string, rows [][]string) *engine.Result {
	res := &engine.Result{Columns: cols, Rows: rows}
	res.Sort()
	return res
}

// --- FILTER -----------------------------------------------------------

// countMerger serves SELECT COUNT(*): the standing count is the sum of
// delta counts.
type countMerger struct{ count int64 }

func (m *countMerger) absorb(r *engine.Result) error {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return fmt.Errorf("stream: count delta with %d rows", len(r.Rows))
	}
	v, err := parseInt64(r.Rows[0][0])
	if err != nil {
		return err
	}
	m.count += v
	return nil
}

func (m *countMerger) snapshot() *engine.Result {
	return &engine.Result{Columns: []string{"count"}, Rows: [][]string{{strconv.FormatInt(m.count, 10)}}}
}

// bagMerger serves FILTER: the standing result is the bag union of
// per-delta matching rows.
type bagMerger struct {
	cols []string
	rows [][]string
}

func (m *bagMerger) absorb(r *engine.Result) error {
	m.rows = append(m.rows, r.Rows...)
	return nil
}

func (m *bagMerger) snapshot() *engine.Result {
	return sortedCopy(m.cols, append([][]string(nil), m.rows...))
}

// --- DISTINCT ---------------------------------------------------------

// setMerger serves DISTINCT: a fingerprint set over the rendered value
// tuples (the exact tuple key — collisions on the canonical rendering
// are equality).
type setMerger struct {
	cols []string
	seen map[string]struct{}
	rows [][]string
}

func (m *setMerger) absorb(r *engine.Result) error {
	if m.seen == nil {
		m.seen = make(map[string]struct{}, 4*len(r.Rows))
	}
	for _, row := range r.Rows {
		k := strings.Join(row, "\x00")
		if _, ok := m.seen[k]; ok {
			continue
		}
		m.seen[k] = struct{}{}
		m.rows = append(m.rows, row)
	}
	return nil
}

func (m *setMerger) snapshot() *engine.Result {
	return sortedCopy(m.cols, append([][]string(nil), m.rows...))
}

// --- TOP N ------------------------------------------------------------

// topNMerger serves TOP N: a standing N-min-heap absorbs each delta's
// local top N.
type topNMerger struct {
	cols []string
	n    int
	heap []int64 // min-heap of the current top N
}

func (m *topNMerger) absorb(r *engine.Result) error {
	for _, row := range r.Rows {
		v, err := parseInt64(row[0])
		if err != nil {
			return err
		}
		m.offer(v)
	}
	return nil
}

func (m *topNMerger) offer(v int64) {
	h := m.heap
	if len(h) < m.n {
		// Sift-up.
		h = append(h, v)
		j := len(h) - 1
		for j > 0 {
			p := (j - 1) / 2
			if h[p] <= h[j] {
				break
			}
			h[p], h[j] = h[j], h[p]
			j = p
		}
		m.heap = h
		return
	}
	if m.n == 0 || v <= h[0] {
		return
	}
	// Replace the root and sift-down.
	h[0] = v
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		small := j
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == j {
			return
		}
		h[j], h[small] = h[small], h[j]
		j = small
	}
}

func (m *topNMerger) snapshot() *engine.Result {
	// Heap order is irrelevant: sortedCopy renders the canonical
	// lexicographic order, same as the from-scratch executor's final
	// Result.Sort.
	rows := make([][]string, len(m.heap))
	for i, v := range m.heap {
		rows[i] = []string{strconv.FormatInt(v, 10)}
	}
	return sortedCopy(m.cols, rows)
}

// --- GROUP BY MAX / SUM (and HAVING's aggregate map) ------------------

// keyAggMerger serves GROUP BY: a standing key → aggregate map merged
// by max or sum.
type keyAggMerger struct {
	cols []string
	sum  bool
	aggs map[string]int64
}

func (m *keyAggMerger) absorb(r *engine.Result) error {
	if m.aggs == nil {
		m.aggs = make(map[string]int64, 4*len(r.Rows))
	}
	for _, row := range r.Rows {
		v, err := parseInt64(row[1])
		if err != nil {
			return err
		}
		cur, ok := m.aggs[row[0]]
		switch {
		case m.sum:
			m.aggs[row[0]] = cur + v
		case !ok || v > cur:
			m.aggs[row[0]] = v
		}
	}
	return nil
}

func (m *keyAggMerger) snapshot() *engine.Result {
	rows := make([][]string, 0, len(m.aggs))
	for k, v := range m.aggs {
		rows = append(rows, []string{k, strconv.FormatInt(v, 10)})
	}
	return sortedCopy(m.cols, rows)
}

// havingMerger serves HAVING: the full aggregate map of keyAggMerger
// with the threshold applied when the standing result is rendered.
type havingMerger struct {
	keyAggMerger
	outCols   []string
	threshold int64
}

func (m *havingMerger) snapshot() *engine.Result {
	rows := make([][]string, 0, len(m.aggs))
	for k, v := range m.aggs {
		if v > m.threshold {
			rows = append(rows, []string{k})
		}
	}
	return sortedCopy(m.outCols, rows)
}

// --- JOIN -------------------------------------------------------------

// joinMerger serves JOIN against a static right side: per-key pair
// counts add across left-side deltas.
type joinMerger struct {
	cols  []string
	pairs map[string]int64
}

func (m *joinMerger) absorb(r *engine.Result) error {
	if m.pairs == nil {
		m.pairs = make(map[string]int64, 4*len(r.Rows))
	}
	for _, row := range r.Rows {
		v, err := parseInt64(row[1])
		if err != nil {
			return err
		}
		m.pairs[row[0]] += v
	}
	return nil
}

func (m *joinMerger) snapshot() *engine.Result {
	rows := make([][]string, 0, len(m.pairs))
	for k, v := range m.pairs {
		rows = append(rows, []string{k, strconv.FormatInt(v, 10)})
	}
	return sortedCopy(m.cols, rows)
}

// --- SKYLINE ----------------------------------------------------------

// skylineMerger serves SKYLINE: the standing Pareto frontier is
// dominance-re-checked against each delta's skyline points.
type skylineMerger struct {
	cols     []string
	dims     int
	frontier [][]int64
}

func (m *skylineMerger) absorb(r *engine.Result) error {
	if len(r.Rows) == 0 {
		return nil
	}
	// Parse the delta's skyline points and dedupe against the frontier
	// (both are distinct-point sets; equal points are one point).
	seen := make(map[string]struct{}, len(m.frontier)+len(r.Rows))
	pts := make([][]int64, 0, len(m.frontier)+len(r.Rows))
	add := func(p []int64) {
		var b strings.Builder
		for _, v := range p {
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteByte(0)
		}
		k := b.String()
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		pts = append(pts, p)
	}
	for _, p := range m.frontier {
		add(p)
	}
	for _, row := range r.Rows {
		p := make([]int64, m.dims)
		for i, cell := range row {
			v, err := parseInt64(cell)
			if err != nil {
				return err
			}
			p[i] = v
		}
		add(p)
	}
	// Re-check dominance over the union: descending coordinate-sum
	// order makes the accepted-set sweep exact (a dominator's sum is
	// never smaller, and equal-sum dominance implies equality).
	sort.Slice(pts, func(i, j int) bool {
		var si, sj int64
		for _, v := range pts[i] {
			si += v
		}
		for _, v := range pts[j] {
			sj += v
		}
		return si > sj
	})
	m.frontier = m.frontier[:0]
	for _, p := range pts {
		dominated := false
		for _, s := range m.frontier {
			if dominates(s, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			m.frontier = append(m.frontier, p)
		}
	}
	return nil
}

// dominates reports a ≥ b in every dimension (maximization).
func dominates(a, b []int64) bool {
	for i := range a {
		if b[i] > a[i] {
			return false
		}
	}
	return true
}

func (m *skylineMerger) snapshot() *engine.Result {
	rows := make([][]string, len(m.frontier))
	for i, p := range m.frontier {
		row := make([]string, len(p))
		for j, v := range p {
			row[j] = strconv.FormatInt(v, 10)
		}
		rows[i] = row
	}
	return sortedCopy(m.cols, rows)
}
