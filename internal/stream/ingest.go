// Package stream turns Cheetah's frozen-table, one-shot execution model
// into a streaming one: tables become append-able sources and queries
// become long-lived subscriptions whose standing results stay fresh as
// rows arrive. The dataplane was always streaming — workers stream
// entries through the switch, which prunes them in flight — so the
// subsystem's job is purely incremental bookkeeping: an append log with
// versioned consistent-prefix snapshots (Ingestor), per-kind merge
// state folding each delta's execution result into a standing result
// (merge.go), and subscriptions that drive deltas through any executor
// — direct, batched, sharded, or a fabric lease — and expose the
// standing result by polling or over a channel (subscription.go).
//
// The load-bearing invariant, pinned by the property suites: after any
// append schedule, a subscription's standing result is bit-identical to
// re-running its query from scratch over the full committed prefix.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/table"
)

// ErrClosed is returned for operations on a closed ingestor or
// subscription.
var ErrClosed = errors.New("stream: ingestor is closed")

// ErrBacklog is returned by appends under the Shed policy when
// committing the batch would push the slowest subscription's unprocessed
// backlog past the configured bound.
var ErrBacklog = errors.New("stream: subscription backlog is full")

// Policy selects what a bounded ingestor does when an append would
// overflow the backlog.
type Policy uint8

const (
	// Block makes Append wait until subscriptions drain enough backlog.
	Block Policy = iota
	// Shed makes Append fail fast with ErrBacklog; the rows are NOT
	// committed (the standing results stay consistent with the log).
	Shed
)

// String renders the policy.
func (p Policy) String() string {
	if p == Shed {
		return "shed"
	}
	return "block"
}

// Config shapes an ingestor.
type Config struct {
	// Backlog bounds the unprocessed rows buffered ahead of the slowest
	// subscription; 0 means unbounded. The bound is what keeps a slow
	// standing query from letting the gap to the live table grow without
	// limit.
	Backlog int
	// OnFull picks the overflow behaviour: Block (default) or Shed.
	OnFull Policy
}

// Ingestor is an append log over a table: atomic batch appends,
// monotonically versioned snapshots (the version is the committed row
// count), and registration of continuous queries. Appends serialize on
// the ingestor; readers never block writers and writers never block
// readers — a snapshot detaches from the log at capture and stays
// consistent while appends continue. All methods are safe for
// concurrent use.
//
// The ingestor must own its table exclusively: it is created over a
// root (non-view) table and every mutation must go through Append*.
// Mutations that bypass it are detected via table.Version and surface
// as errors on the next append.
type Ingestor struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond // broadcast: commits, offset advances, close
	t      *table.Table
	tver   uint64 // t.Version() at the last commit
	rows   uint64 // committed row count == snapshot version
	subs   map[*Subscription]struct{}
	closed bool
}

// NewIngestor opens an append log over t. Rows already in t count as
// committed prefix (version = current row count).
func NewIngestor(t *table.Table, cfg Config) (*Ingestor, error) {
	if t == nil {
		return nil, fmt.Errorf("stream: NewIngestor needs a table")
	}
	if t.IsView() {
		return nil, fmt.Errorf("stream: cannot ingest into a view (appends are disallowed there)")
	}
	if cfg.Backlog < 0 {
		cfg.Backlog = 0
	}
	in := &Ingestor{
		cfg:  cfg,
		t:    t,
		tver: t.Version(),
		rows: uint64(t.NumRows()),
		subs: make(map[*Subscription]struct{}),
	}
	in.cond = sync.NewCond(&in.mu)
	return in, nil
}

// Version returns the committed row count — the monotonically
// increasing snapshot version.
func (in *Ingestor) Version() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rows
}

// Snapshot captures a consistent committed prefix: a detached read-only
// table plus its version. The snapshot stays valid and immutable while
// appends continue.
func (in *Ingestor) Snapshot() (*table.Table, uint64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	// Extend the skip index over rows appended since the last snapshot
	// before the snapshot captures the index pointer. Amortizing the
	// refresh onto the read path (rather than every commit) keeps
	// appends O(row); the refresh itself is O(tail block + new rows)
	// and only the in.mu holder reads tail column data, so it is
	// serialized against commits.
	in.t.RefreshSkipIndex()
	snap, err := in.t.SnapshotPrefix(int(in.rows))
	if err != nil {
		return nil, 0, err
	}
	return snap, in.rows, nil
}

// Append commits one row (values in schema order, like
// table.AppendRow). The commit is atomic with respect to snapshots and
// subscriptions.
func (in *Ingestor) Append(vals ...any) error {
	return in.commit(1, func() error { return in.t.AppendRow(vals...) })
}

// AppendBatch atomically commits every row of src (a table or view with
// a type-compatible schema): subscriptions and snapshots see either
// none or all of the batch.
func (in *Ingestor) AppendBatch(src *table.Table) error {
	if src == nil {
		return fmt.Errorf("stream: AppendBatch needs a source table")
	}
	n := src.NumRows()
	if n == 0 {
		return nil
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return in.commit(n, func() error { return in.t.AppendRowsFrom(src, rows) })
}

// commit runs one append under the ingestor lock: backpressure first,
// exclusive-ownership check, the append itself, then the version bump
// and wakeups.
func (in *Ingestor) commit(n int, apply func() error) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if err := in.waitCapacityLocked(n); err != nil {
		return err
	}
	if got := in.t.Version(); got != in.tver {
		return fmt.Errorf("stream: table mutated outside the ingestor (version %d, expected %d)", got, in.tver)
	}
	if err := apply(); err != nil {
		return err
	}
	in.tver = in.t.Version()
	in.rows += uint64(n)
	in.cond.Broadcast()
	for s := range in.subs {
		s.wake()
	}
	return nil
}

// waitCapacityLocked enforces the backlog bound for an n-row commit.
func (in *Ingestor) waitCapacityLocked(n int) error {
	if in.closed {
		return ErrClosed
	}
	if in.cfg.Backlog <= 0 {
		return nil
	}
	if n > in.cfg.Backlog {
		return fmt.Errorf("stream: batch of %d rows exceeds the backlog bound %d", n, in.cfg.Backlog)
	}
	for {
		if in.backlogLocked()+n <= in.cfg.Backlog {
			return nil
		}
		if in.cfg.OnFull == Shed {
			return fmt.Errorf("%w (%d rows pending, bound %d)", ErrBacklog, in.backlogLocked(), in.cfg.Backlog)
		}
		in.cond.Wait()
		if in.closed {
			return ErrClosed
		}
	}
}

// backlogLocked is the unprocessed-row gap of the slowest live
// subscription; zero with no subscriptions.
func (in *Ingestor) backlogLocked() int {
	var worst uint64
	for s := range in.subs {
		if gap := in.rows - s.processed; gap > worst {
			worst = gap
		}
	}
	return int(worst)
}

// Stats is a point-in-time ingest gauge.
type Stats struct {
	// Rows is the committed row count (the version).
	Rows uint64
	// Subscriptions is the live continuous-query count.
	Subscriptions int
	// Backlog is the slowest subscription's unprocessed-row gap.
	Backlog int
}

// Stats returns the current ingest gauges.
func (in *Ingestor) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Stats{Rows: in.rows, Subscriptions: len(in.subs), Backlog: in.backlogLocked()}
}

// Subscribe registers q as a continuous query: deltas of the log run
// incrementally through opts.Exec (engine.ExecDirect on the delta when
// nil) and fold into a standing result. The new subscription starts at
// version 0, so its first delta catches up over the already-committed
// prefix — registrations interleaved with appends converge to the same
// standing result.
func (in *Ingestor) Subscribe(q *engine.Query, opts SubOptions) (*Subscription, error) {
	if q == nil {
		return nil, fmt.Errorf("stream: Subscribe needs a query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opts.Exec == nil {
		opts.Exec = DirectExec
	}
	s, err := newSubscription(in, q, opts)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrClosed
	}
	in.subs[s] = struct{}{}
	in.mu.Unlock()
	s.start()
	return s, nil
}

// Close shuts the log down: blocked and future appends fail with
// ErrClosed, and every registered subscription is closed (their pumps
// drain the delta in flight, then stop). Idempotent.
func (in *Ingestor) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	subs := make([]*Subscription, 0, len(in.subs))
	for s := range in.subs {
		subs = append(subs, s)
	}
	in.cond.Broadcast()
	in.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// DirectExec is the default delta executor: exact single-node execution
// of the delta query. It keeps the merge layer testable — and usable —
// without any switch in the loop.
func DirectExec(dq *engine.Query, _ func() *engine.Result) (*engine.Result, error) {
	return engine.ExecDirect(dq)
}

// waitVersion blocks until sub's processed version reaches v, the
// subscription errors or closes, or ctx is done. Callers: Wait/Flush.
func (in *Ingestor) waitVersion(ctx context.Context, s *Subscription, v uint64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		in.mu.Lock()
		in.cond.Broadcast()
		in.mu.Unlock()
	})
	defer stop()
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if s.err != nil {
			return s.err
		}
		if s.processed >= v {
			return nil
		}
		if s.subClosed || in.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		in.cond.Wait()
	}
}
