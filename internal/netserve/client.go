package netserve

// Client is the dial side of the wire protocol: a connection to a
// cheetahd server with a demultiplexing read loop, synchronous
// Query/Append calls correlated by request id, and channel-backed
// subscriptions with explicit credit flow control. All methods are safe
// for concurrent use; requests from many goroutines interleave on one
// connection.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/obs"
	"cheetah/internal/table"
	"cheetah/internal/wire"
)

// ServerError is a failure the server reported for one request.
type ServerError struct {
	Code wire.ErrCode
	Msg  string
}

// Error renders the failure.
func (e *ServerError) Error() string {
	return fmt.Sprintf("netserve: server error (%v): %s", e.Code, e.Msg)
}

// Retryable reports whether retrying the request later (or against
// another server) can succeed — true for drain shedding and backlog
// pushback, false for invalid requests and internal failures.
func (e *ServerError) Retryable() bool { return e.Code == wire.CodeRetryable }

// ErrClientClosed fails calls on a closed (or disconnected) client.
var ErrClientClosed = errors.New("netserve: client closed")

// Client is one open connection to a server.
type Client struct {
	nc      net.Conn
	welcome wire.Welcome

	wmu sync.Mutex // serializes frame writes

	mu     sync.Mutex
	nextID uint64
	calls  map[uint64]chan callReply
	subs   map[uint64]*ClientSub
	err    error // terminal connection error
	closed bool
}

// callReply is one correlated response: exactly one field is set.
type callReply struct {
	result   *wire.ResultMsg
	appended *wire.AppendedMsg
	subbed   *wire.SubscribedMsg
	err      error
}

// Dial connects to a server and performs the handshake, identifying as
// tenant. The returned client owns the connection.
func Dial(addr, tenant string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl, err := NewClient(nc, tenant)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return cl, nil
}

// NewClient performs the handshake over an existing connection.
func NewClient(nc net.Conn, tenant string) (*Client, error) {
	h := wire.Hello{Version: wire.ProtoVersion, Tenant: tenant}
	if err := wire.WriteFrame(nc, wire.FrameHello, h.EncodeBody(nil)); err != nil {
		return nil, err
	}
	ft, body, err := wire.ReadFrame(nc)
	if err != nil {
		return nil, err
	}
	switch ft {
	case wire.FrameWelcome:
	case wire.FrameError:
		var em wire.ErrorMsg
		if err := em.DecodeBody(body); err != nil {
			return nil, err
		}
		return nil, &ServerError{Code: em.Code, Msg: em.Msg}
	default:
		return nil, fmt.Errorf("netserve: expected WELCOME, got %v", ft)
	}
	cl := &Client{
		nc:    nc,
		calls: make(map[uint64]chan callReply),
		subs:  make(map[uint64]*ClientSub),
	}
	if err := cl.welcome.DecodeBody(body); err != nil {
		return nil, err
	}
	go cl.readLoop()
	return cl, nil
}

// Welcome returns the server's handshake: protocol version, fabric
// width, table catalog and the streamed table's name ("" = streaming
// disabled).
func (cl *Client) Welcome() wire.Welcome { return cl.welcome }

// Close tears the connection down; pending calls fail with
// ErrClientClosed and subscription channels close.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cl.mu.Unlock()
	g := wire.GoodbyeMsg{Reason: "client closing"}
	cl.wmu.Lock()
	_ = wire.WriteFrame(cl.nc, wire.FrameGoodbye, g.EncodeBody(nil))
	cl.wmu.Unlock()
	err := cl.nc.Close()
	return err
}

func (cl *Client) writeFrame(t wire.FrameType, body []byte) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	return wire.WriteFrame(cl.nc, t, body)
}

// register allocates a request id with a reply channel.
func (cl *Client) register() (uint64, chan callReply, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed || cl.err != nil {
		return 0, nil, cl.terminalLocked()
	}
	cl.nextID++
	id := cl.nextID
	ch := make(chan callReply, 1)
	cl.calls[id] = ch
	return id, ch, nil
}

func (cl *Client) terminalLocked() error {
	if cl.err != nil {
		return cl.err
	}
	return ErrClientClosed
}

func (cl *Client) drop(id uint64) {
	cl.mu.Lock()
	delete(cl.calls, id)
	cl.mu.Unlock()
}

// call sends one frame and waits for its correlated reply.
func (cl *Client) call(ctx context.Context, ft wire.FrameType, id uint64, ch chan callReply, body []byte) (callReply, error) {
	if err := cl.writeFrame(ft, body); err != nil {
		cl.drop(id)
		return callReply{}, err
	}
	select {
	case r := <-ch:
		return r, r.err
	case <-ctx.Done():
		cl.drop(id)
		return callReply{}, ctx.Err()
	}
}

// QueryOptions carries a one-shot query's QoS.
type QueryOptions struct {
	// Priority orders the server's admission queue (higher first).
	Priority int
	// Deadline, when non-zero, sheds the query server-side if admission
	// cannot happen in time. It travels as a relative duration, so
	// client/server clock skew does not matter.
	Deadline time.Duration
}

// Query runs one one-shot query and returns the server's result.
func (cl *Client) Query(ctx context.Context, spec wire.QuerySpec, opts QueryOptions) (*wire.ResultMsg, error) {
	id, ch, err := cl.register()
	if err != nil {
		return nil, err
	}
	req := wire.QueryReq{ID: id, Priority: int32(opts.Priority), Spec: spec}
	if opts.Deadline > 0 {
		req.DeadlineMicros = uint64(opts.Deadline / time.Microsecond)
	}
	r, err := cl.call(ctx, wire.FrameQuery, id, ch, req.EncodeBody(nil))
	if err != nil {
		return nil, err
	}
	return r.result, nil
}

// FormatTrace renders a result's server-side stage summary — the
// compact form of the execution's lifecycle trace that travels in the
// Result frame — one "stage  duration  entries->forwarded" line per
// stage, in lifecycle order. Empty when the server disabled tracing.
func FormatTrace(res *wire.ResultMsg) string {
	if res == nil || len(res.Trace) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "server wall %s\n", time.Duration(res.WallNanos).Round(time.Microsecond))
	for _, st := range res.Trace {
		fmt.Fprintf(&b, "  %-8s %10s", obs.Stage(st.Stage), time.Duration(st.Nanos).Round(time.Microsecond))
		if st.Entries > 0 || st.Forwarded > 0 {
			fmt.Fprintf(&b, "  %d->%d", st.Entries, st.Forwarded)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// QueryEngine is Query for a locally-built engine.Query: the spec is
// derived with wire.SpecOf against the named tables.
func (cl *Client) QueryEngine(ctx context.Context, q *engine.Query, tableName, rightName string, opts QueryOptions) (*engine.Result, error) {
	spec, err := wire.SpecOf(q, tableName, rightName)
	if err != nil {
		return nil, err
	}
	res, err := cl.Query(ctx, *spec, opts)
	if err != nil {
		return nil, err
	}
	return &engine.Result{Columns: res.Columns, Rows: res.Rows}, nil
}

// Append streams one row batch into the server's ingestor and returns
// the committed version. Retryable server errors indicate backlog shed.
func (cl *Client) Append(ctx context.Context, batch *table.Table) (uint64, error) {
	id, ch, err := cl.register()
	if err != nil {
		return 0, err
	}
	req := wire.AppendBatchOf(id, batch)
	r, err := cl.call(ctx, wire.FrameAppend, id, ch, req.EncodeBody(nil))
	if err != nil {
		return 0, err
	}
	return r.appended.Version, nil
}

// Ping round-trips a liveness probe.
func (cl *Client) Ping(ctx context.Context) error {
	id, ch, err := cl.register()
	if err != nil {
		return err
	}
	p := wire.PingMsg{Nonce: id}
	r, err := cl.call(ctx, wire.FramePing, id, ch, p.EncodeBody(nil))
	if err != nil {
		return err
	}
	if r.result != nil || r.appended != nil {
		return fmt.Errorf("netserve: ping answered with the wrong frame")
	}
	return nil
}

// ClientSub is a standing subscription held over the connection.
type ClientSub struct {
	cl *Client
	id uint64
	// Direct reports the server could not host the standing program on
	// a switch; deltas run exact and unpruned (results are identical).
	Direct bool

	updates chan *wire.UpdateMsg
	once    sync.Once
}

// SubscribeOptions configures a subscription.
type SubscribeOptions struct {
	// Window/Slide select the windowed variants (rows; 0 = unwindowed).
	Window, Slide int
	// Credits is the initial send window: how many updates the server
	// may push before waiting for Credit calls. 0 = 1.
	Credits int
	// Buffer is the local update channel's capacity (default 1; the
	// server coalesces latest-wins beyond the credit window anyway).
	Buffer int
}

// Subscribe registers a continuous query over the server's streamed
// table. Updates arrive on the returned subscription's channel; each
// consumed update should be matched by a Credit call to reopen the
// window.
func (cl *Client) Subscribe(ctx context.Context, spec wire.QuerySpec, opts SubscribeOptions) (*ClientSub, error) {
	id, ch, err := cl.register()
	if err != nil {
		return nil, err
	}
	buf := opts.Buffer
	if buf <= 0 {
		buf = 1
	}
	sub := &ClientSub{cl: cl, id: id, updates: make(chan *wire.UpdateMsg, buf)}
	cl.mu.Lock()
	cl.subs[id] = sub
	cl.mu.Unlock()
	req := wire.SubscribeReq{
		ID:      id,
		Window:  uint32(opts.Window),
		Slide:   uint32(opts.Slide),
		Credits: uint32(opts.Credits),
		Spec:    spec,
	}
	r, err := cl.call(ctx, wire.FrameSubscribe, id, ch, req.EncodeBody(nil))
	if err != nil {
		cl.mu.Lock()
		delete(cl.subs, id)
		cl.mu.Unlock()
		return nil, err
	}
	sub.Direct = r.subbed.Direct
	return sub, nil
}

// Updates returns the subscription's update channel. It closes when the
// subscription or connection closes. Updates are latest-wins: a slow
// consumer sees the newest standing result, not every intermediate one.
func (s *ClientSub) Updates() <-chan *wire.UpdateMsg { return s.updates }

// Credit reopens the send window by n updates.
func (s *ClientSub) Credit(n int) error {
	if n <= 0 {
		return nil
	}
	m := wire.CreditMsg{ID: s.id, N: uint32(n)}
	return s.cl.writeFrame(wire.FrameCredit, m.EncodeBody(nil))
}

// Close deregisters the subscription server-side and closes Updates.
func (s *ClientSub) Close() error {
	var err error
	s.once.Do(func() {
		s.cl.mu.Lock()
		delete(s.cl.subs, s.id)
		s.cl.mu.Unlock()
		m := wire.UnsubscribeMsg{ID: s.id}
		err = s.cl.writeFrame(wire.FrameUnsubscribe, m.EncodeBody(nil))
		close(s.updates)
	})
	return err
}

// deliver routes one update to the subscription's channel without
// blocking the read loop: if the buffer is full the oldest queued
// update is dropped (latest wins, matching the server's coalescing).
func (s *ClientSub) deliver(u *wire.UpdateMsg) {
	for {
		select {
		case s.updates <- u:
			return
		default:
			select {
			case <-s.updates:
			default:
			}
		}
	}
}

// fail tears the client down with a terminal error: every pending call
// and subscription learns the connection is gone.
func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.err == nil {
		cl.err = err
	}
	calls := cl.calls
	cl.calls = make(map[uint64]chan callReply)
	subs := cl.subs
	cl.subs = make(map[uint64]*ClientSub)
	cl.mu.Unlock()
	for _, ch := range calls {
		ch <- callReply{err: err}
	}
	for _, s := range subs {
		s.once.Do(func() { close(s.updates) })
	}
	cl.nc.Close()
}

// reply completes the pending call registered under id.
func (cl *Client) reply(id uint64, r callReply) {
	cl.mu.Lock()
	ch := cl.calls[id]
	delete(cl.calls, id)
	cl.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

// Err returns the terminal connection error, if any (e.g. the server's
// Goodbye reason after a drain).
func (cl *Client) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// readLoop demultiplexes server frames to their waiting calls and
// subscriptions.
func (cl *Client) readLoop() {
	for {
		ft, body, err := wire.ReadFrame(cl.nc)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				err = ErrClientClosed
			}
			cl.fail(err)
			return
		}
		switch ft {
		case wire.FrameResult:
			var m wire.ResultMsg
			if err := m.DecodeBody(body); err != nil {
				cl.fail(err)
				return
			}
			cl.reply(m.ID, callReply{result: &m})
		case wire.FrameAppended:
			var m wire.AppendedMsg
			if err := m.DecodeBody(body); err != nil {
				cl.fail(err)
				return
			}
			cl.reply(m.ID, callReply{appended: &m})
		case wire.FrameSubscribed:
			var m wire.SubscribedMsg
			if err := m.DecodeBody(body); err != nil {
				cl.fail(err)
				return
			}
			cl.reply(m.ID, callReply{subbed: &m})
		case wire.FramePong:
			var m wire.PingMsg
			if err := m.DecodeBody(body); err != nil {
				cl.fail(err)
				return
			}
			cl.reply(m.Nonce, callReply{})
		case wire.FrameUpdate:
			var m wire.UpdateMsg
			if err := m.DecodeBody(body); err != nil {
				cl.fail(err)
				return
			}
			cl.mu.Lock()
			sub := cl.subs[m.ID]
			cl.mu.Unlock()
			if sub != nil {
				sub.deliver(&m)
			}
		case wire.FrameError:
			var m wire.ErrorMsg
			if err := m.DecodeBody(body); err != nil {
				cl.fail(err)
				return
			}
			serr := &ServerError{Code: m.Code, Msg: m.Msg}
			if m.ID == 0 {
				cl.fail(serr)
				return
			}
			cl.reply(m.ID, callReply{err: serr})
		case wire.FrameGoodbye:
			var m wire.GoodbyeMsg
			_ = m.DecodeBody(body)
			cl.fail(&ServerError{Code: wire.CodeRetryable, Msg: "server goodbye: " + m.Reason})
			return
		default:
			cl.fail(fmt.Errorf("netserve: unexpected frame %v", ft))
			return
		}
	}
}
