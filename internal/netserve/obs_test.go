package netserve

// Observability over the wire: the Result frame's compact trace
// summary and wall clock, the server's shared metrics registry
// (per-kind latency histograms, slow-query counter + log hook,
// admission gauges), and the health signal cheetahd's /healthz serves.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"cheetah/internal/obs"
	"cheetah/internal/plan"
	"cheetah/internal/stats"
	"cheetah/internal/table"
	"cheetah/internal/wire"
	"cheetah/internal/workload/multitenant"
)

// TestWireTraceAndMetrics runs all 8 kinds over TCP and checks each
// result carries the server-side wall clock and stage summary, the
// shared registry accumulates per-kind latency histograms, and the
// slow-query hook fires (threshold 1ns: everything is slow).
func TestWireTraceAndMetrics(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 2000, RankRows: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := stats.NewRegistry()
	var mu sync.Mutex
	var slowLines []string
	srv, err := Listen("127.0.0.1:0", Options{
		Tables:             map[string]*table.Table{"visits": mix.Visits, "rankings": mix.Rankings},
		Primary:            "visits",
		Plan:               plan.Options{Switches: 2, Seed: 11},
		Metrics:            reg,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog: func(format string, args ...any) {
			mu.Lock()
			slowLines = append(slowLines, format)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if srv.Metrics() != reg {
		t.Fatal("server did not adopt the caller's registry")
	}
	if !srv.Healthy() {
		t.Fatal("fresh server reports unhealthy")
	}

	cl := dialMix(t, srv, "tenant-0")
	ctx := context.Background()
	kinds := map[string]bool{}
	for i := 0; i < multitenant.NumKinds; i++ {
		q := mix.Query(i)
		kinds[q.Kind.String()] = true
		spec, err := wire.SpecOf(q, "visits", rightName(q))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Query(ctx, *spec, QueryOptions{})
		if err != nil {
			t.Fatalf("query %d (%v): %v", i, q.Kind, err)
		}
		if res.WallNanos == 0 {
			t.Fatalf("query %d (%v): result carries no wall clock", i, q.Kind)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("query %d (%v): result carries no trace summary", i, q.Kind)
		}
		var sawPlan bool
		for _, st := range res.Trace {
			if obs.Stage(st.Stage) == obs.StagePlan {
				sawPlan = true
			}
		}
		if !sawPlan {
			t.Fatalf("query %d (%v): trace summary %v has no plan stage", i, q.Kind, res.Trace)
		}
		rendered := FormatTrace(res)
		if !strings.Contains(rendered, "server wall") || !strings.Contains(rendered, "plan") {
			t.Fatalf("query %d (%v): FormatTrace rendered %q", i, q.Kind, rendered)
		}
	}

	// Per-kind latency histograms: every kind submitted shows up, each
	// with at least one observation and a positive sum.
	for kind := range kinds {
		h := reg.Histogram("query_latency", "kind", kind)
		if h.Count() == 0 || h.Sum() <= 0 {
			t.Fatalf("query_latency{kind=%s} is empty", kind)
		}
	}
	if n := reg.Total("slow_queries"); n == 0 {
		t.Fatal("slow-query counter never fired at a 1ns threshold")
	}
	mu.Lock()
	lines := len(slowLines)
	mu.Unlock()
	if lines == 0 {
		t.Fatal("slow-query log hook never fired")
	}

	srv.Close()
	if srv.Healthy() {
		t.Fatal("closed server still reports healthy")
	}
}

// TestWireTraceDisabled pins the opt-out: with session tracing off the
// Result frame carries no stage summary (the wall clock still does —
// it comes from the execution, not the trace) and FormatTrace renders
// nothing.
func TestWireTraceDisabled(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1000, RankRows: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", Options{
		Tables:  map[string]*table.Table{"visits": mix.Visits, "rankings": mix.Rankings},
		Primary: "visits",
		Plan:    plan.Options{Switches: 2, Seed: 11, DisableTracing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := dialMix(t, srv, "tenant-0")
	q := mix.Query(0)
	spec, err := wire.SpecOf(q, "visits", rightName(q))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(context.Background(), *spec, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Fatalf("tracing disabled but summary present: %v", res.Trace)
	}
	if res.WallNanos == 0 {
		t.Fatal("wall clock must not depend on tracing")
	}
	if FormatTrace(res) != "" {
		t.Fatal("FormatTrace must render nothing without a summary")
	}
}

// TestHealthyTracksFabric pins Healthy() to the fabric's failure
// state: all switches failed → unhealthy; one restored → healthy.
func TestHealthyTracksFabric(t *testing.T) {
	srv, _ := testServer(t, false, 500)
	fab := srv.Serving().Fabric()
	for i := 0; i < fab.Size(); i++ {
		fab.Fail(i)
	}
	if srv.Healthy() {
		t.Fatal("all switches failed but server reports healthy")
	}
	if err := fab.Restore(0); err != nil {
		t.Fatal(err)
	}
	if !srv.Healthy() {
		t.Fatal("restored switch but server reports unhealthy")
	}
}
