package netserve

// End-to-end equivalence over a real TCP loopback: every query kind
// submitted through the wire must return bit-identical rows to
// engine.ExecDirect — one-shot and through standing subscriptions fed
// by live appends — plus the lifecycle tests: mid-query disconnect
// releases the fabric, SIGTERM-style drain leaves no client hanging.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/plan"
	"cheetah/internal/table"
	"cheetah/internal/wire"
	"cheetah/internal/workload/multitenant"
)

// testServer starts a loopback server over a fresh mix.
func testServer(t *testing.T, streaming bool, rows int) (*Server, *multitenant.Mix) {
	t.Helper()
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: rows, RankRows: rows / 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Tables:  map[string]*table.Table{"visits": mix.Visits, "rankings": mix.Rankings},
		Primary: "visits",
		Plan:    plan.Options{Switches: 2, Seed: 11},
	}
	if streaming {
		opts.Stream = &plan.StreamOptions{}
	}
	srv, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, mix
}

func dialMix(t *testing.T, srv *Server, tenant string) *Client {
	t.Helper()
	cl, err := Dial(srv.Addr().String(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func rightName(q *engine.Query) string {
	if q.Right != nil {
		return "rankings"
	}
	return ""
}

// TestOneShotEquivalence pins all 8 kinds over TCP bit-identical to
// ExecDirect.
func TestOneShotEquivalence(t *testing.T) {
	srv, mix := testServer(t, false, 4000)
	cl := dialMix(t, srv, "tenant-0")
	w := cl.Welcome()
	if w.Version != wire.ProtoVersion || len(w.Tables) != 2 || w.Stream != "" {
		t.Fatalf("welcome: %+v", w)
	}
	ctx := context.Background()
	for i := 0; i < 2*multitenant.NumKinds; i++ {
		q := mix.Query(i)
		want, err := engine.ExecDirect(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.QueryEngine(ctx, q, "visits", rightName(q), QueryOptions{Priority: mix.Priority(i)})
		if err != nil {
			t.Fatalf("query %d (%v): %v", i, q.Kind, err)
		}
		want.Sort()
		got.Sort()
		if !want.Equal(got) {
			t.Fatalf("query %d (%v) diverges over the wire:\nwant %v\ngot  %v", i, q.Kind, want, got)
		}
	}
}

// TestConcurrentClients multiplexes many tenants' queries over separate
// connections onto the shared fabric, all pinned to direct.
func TestConcurrentClients(t *testing.T) {
	srv, mix := testServer(t, false, 2000)
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		cl := dialMix(t, srv, fmt.Sprintf("tenant-%d", c))
		wg.Add(1)
		go func(c int, cl *Client) {
			defer wg.Done()
			for i := c; i < c+multitenant.NumKinds; i++ {
				q := mix.Query(i)
				want, err := engine.ExecDirect(q)
				if err != nil {
					errs <- err
					return
				}
				got, err := cl.QueryEngine(context.Background(), q, "visits", rightName(q), QueryOptions{})
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
				want.Sort()
				got.Sort()
				if !want.Equal(got) {
					errs <- fmt.Errorf("client %d query %d (%v) diverges", c, i, q.Kind)
					return
				}
			}
		}(c, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSubscriptionEquivalence pins all 8 kinds through standing
// subscriptions fed by wire appends: after each append wave the pushed
// standing result must be bit-identical to ExecDirect over the full
// committed prefix.
func TestSubscriptionEquivalence(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 3000, RankRows: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The served table starts empty (same schema as the mix's visits);
	// the mix table is the row source the client appends from.
	live := table.MustNew(mix.Visits.Schema())
	srv, err := Listen("127.0.0.1:0", Options{
		Tables:  map[string]*table.Table{"visits": live, "rankings": mix.Rankings},
		Primary: "visits",
		Plan:    plan.Options{Switches: 2, Seed: 11},
		Stream:  &plan.StreamOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr().String(), "tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Welcome().Stream != "visits" {
		t.Fatalf("welcome: streaming not announced: %+v", cl.Welcome())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// One subscription per kind, all on one connection.
	subs := make([]*ClientSub, multitenant.NumKinds)
	queries := make([]*engine.Query, multitenant.NumKinds)
	for k := 0; k < multitenant.NumKinds; k++ {
		q := mix.Query(k)
		queries[k] = q
		spec, err := wire.SpecOf(q, "visits", rightName(q))
		if err != nil {
			t.Fatal(err)
		}
		subs[k], err = cl.Subscribe(ctx, *spec, SubscribeOptions{Credits: 2})
		if err != nil {
			t.Fatalf("subscribe kind %d: %v", k, err)
		}
	}

	// Three append waves; after each, every subscription must converge
	// to the direct answer over the committed prefix.
	const wave = 500
	total := 0
	for waveIdx := 0; waveIdx < 3; waveIdx++ {
		batch := table.MustNew(mix.Visits.Schema())
		if err := batch.AppendRowsFrom(mix.Visits, rowRange(total, total+wave)); err != nil {
			t.Fatal(err)
		}
		version, err := cl.Append(ctx, batch)
		if err != nil {
			t.Fatalf("append wave %d: %v", waveIdx, err)
		}
		total += wave
		if version != uint64(total) {
			t.Fatalf("wave %d: committed version %d, want %d", waveIdx, version, total)
		}
		prefix, err := live.SnapshotPrefix(total)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < multitenant.NumKinds; k++ {
			dq := *queries[k]
			dq.Table = prefix
			want, err := engine.ExecDirect(&dq)
			if err != nil {
				t.Fatal(err)
			}
			want.Sort()
			got := awaitVersion(ctx, t, subs[k], uint64(total))
			res := &engine.Result{Columns: got.Columns, Rows: got.Rows}
			res.Sort()
			if !want.Equal(res) {
				t.Fatalf("wave %d kind %d (%v) diverges at version %d:\nwant %v\ngot  %v",
					waveIdx, k, queries[k].Kind, total, want, res)
			}
		}
	}
	for _, s := range subs {
		s.Close()
	}
}

// awaitVersion consumes updates (crediting each) until the standing
// result covers at least version.
func awaitVersion(ctx context.Context, t *testing.T, s *ClientSub, version uint64) *wire.UpdateMsg {
	t.Helper()
	for {
		select {
		case u, ok := <-s.Updates():
			if !ok {
				t.Fatal("updates channel closed before convergence")
			}
			if err := s.Credit(1); err != nil {
				t.Fatal(err)
			}
			if u.Version >= version {
				return u
			}
		case <-ctx.Done():
			t.Fatalf("timed out waiting for version %d", version)
		}
	}
}

func rowRange(lo, hi int) []int {
	rows := make([]int, hi-lo)
	for i := range rows {
		rows[i] = lo + i
	}
	return rows
}

// TestClientDisconnectReleasesFabric pins the mid-query disconnect
// path: a client holding a subscription and in-flight queries drops its
// connection; the server must release the standing program's lease and
// drain cleanly (Shutdown converges — impossible if leases leaked).
func TestClientDisconnectReleasesFabric(t *testing.T) {
	srv, mix := testServer(t, true, 3000)
	cl, err := Dial(srv.Addr().String(), "tenant-2")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec, err := wire.SpecOf(mix.Query(2), "visits", "") // TOP N: switch-hosted
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe(ctx, *spec, SubscribeOptions{}); err != nil {
		t.Fatal(err)
	}
	// Launch queries and sever the connection while they're in flight.
	for i := 0; i < 4; i++ {
		spec, err := wire.SpecOf(mix.Query(i), "visits", rightName(mix.Query(i)))
		if err != nil {
			t.Fatal(err)
		}
		req := wire.QueryReq{ID: uint64(100 + i), Spec: *spec}
		if err := cl.writeFrame(wire.FrameQuery, req.EncodeBody(nil)); err != nil {
			t.Fatal(err)
		}
	}
	cl.nc.Close() // hard disconnect, no Goodbye

	// The drain converges only if the disconnect released every lease
	// and the in-flight queries ran out.
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		t.Fatalf("drain after disconnect: %v", err)
	}
	if got := srv.Stats(); got.Active != 0 {
		t.Fatalf("leases still active after drain: %+v", got)
	}
}

// TestGracefulDrain pins the SIGTERM contract: during Shutdown every
// outstanding client sees either a completed result or a retryable
// error — never a hang or a hard reset — and new work is refused
// retryable.
func TestGracefulDrain(t *testing.T) {
	srv, mix := testServer(t, true, 3000)
	cl := dialMix(t, srv, "tenant-0")
	ctx := context.Background()

	// A standing subscription that must be closed out by the drain.
	spec, err := wire.SpecOf(mix.Query(3), "visits", "")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Subscribe(ctx, *spec, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Clients keep submitting while the server drains; every reply must
	// be a result or a retryable error.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	bad := make(chan error, 64)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i += 3 {
				select {
				case <-stop:
					return
				default:
				}
				q := mix.Query(i % 16)
				_, err := cl.QueryEngine(ctx, q, "visits", rightName(q), QueryOptions{})
				if err == nil {
					continue
				}
				var se *ServerError
				if errors.As(err, &se) {
					if !se.Retryable() {
						bad <- fmt.Errorf("non-retryable drain error: %v", se)
					}
					continue
				}
				// Connection-level close after the drain finishes. The
				// server's close can also surface on the write side as a
				// reset/EPIPE before the client's read loop notices and
				// sets Err — same event, racing observation sides.
				if errors.Is(err, ErrClientClosed) || cl.Err() != nil ||
					errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
					return
				}
				bad <- err
				return
			}
		}(c)
	}

	time.Sleep(50 * time.Millisecond) // let queries start flowing
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	close(bad)
	for err := range bad {
		t.Error(err)
	}
	// The subscription's channel closed out (no hanging consumer).
	select {
	case _, ok := <-sub.Updates():
		if ok {
			// A final update is fine; the channel must close after.
			if _, ok := <-sub.Updates(); ok {
				t.Fatal("subscription still delivering after drain")
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription left hanging after drain")
	}
	if got := srv.Stats(); got.Active != 0 {
		t.Fatalf("active leases after drain: %+v", got)
	}
	// New connections are refused with a retryable error.
	if _, err := Dial(srv.Addr().String(), "x"); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}

// TestDeadlineOverWire pins the QoS deadline path: an already-expired
// deadline on a contended fabric is shed with a retryable error, not
// silently degraded.
func TestDeadlineOverWire(t *testing.T) {
	srv, mix := testServer(t, false, 2000)
	cl := dialMix(t, srv, "tenant-4")
	ctx := context.Background()
	// Deadline of 1µs: admission cannot happen in time unless the
	// fabric is instantly free — and even then, the submit checks the
	// deadline first. Either a result (free fabric admitted fast) or a
	// retryable shed is acceptable; a hang or terminal error is not.
	q := mix.Query(2)
	_, err := cl.QueryEngine(ctx, q, "visits", "", QueryOptions{Deadline: time.Microsecond})
	if err != nil {
		var se *ServerError
		if !errors.As(err, &se) || !se.Retryable() {
			t.Fatalf("deadline shed should be retryable, got %v", err)
		}
	}
}

// TestPingAndBadFrame covers liveness and protocol-violation handling.
func TestPingAndBadFrame(t *testing.T) {
	srv, _ := testServer(t, false, 500)
	cl := dialMix(t, srv, "t")
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// A protocol violation (server-only frame from the client) fails
	// the connection with a connection-level error.
	_ = cl.writeFrame(wire.FrameWelcome, (&wire.Welcome{Version: 1}).EncodeBody(nil))
	deadline := time.After(10 * time.Second)
	for cl.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("protocol violation not surfaced")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
