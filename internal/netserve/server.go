// Package netserve is the network front door: a TCP server that speaks
// the internal/wire frame protocol and multiplexes many client
// connections onto one shared plan.Session fabric. It closes the gap
// between the library API and the paper's deployment story — external
// clients submit one-shot queries, stream appends, and hold standing
// subscriptions against the fault-tolerant fabric, with the equivalence
// discipline intact: a query over the wire returns bit-identical rows
// to engine.ExecDirect.
//
// The server's moving parts:
//
//   - One plan.Session per server, opened over the primary table, with
//     one Serving handle (one-shot queries through the QoS admission)
//     and optionally one Streaming handle (appends + continuous
//     queries) sharing the session.
//   - One goroutine per connection reading frames; each query runs on
//     its own goroutine through Serving.SubmitQoS with the connection's
//     tenant identity and the request's priority/deadline mapped to
//     serve.QoS — so the fabric's admission, quotas and deadline
//     shedding apply to network clients exactly as to in-process ones.
//   - Per-subscription credit-based send windows: the server only
//     pushes a FrameUpdate while the subscription has credits; updates
//     arriving with the window exhausted coalesce latest-wins (matching
//     stream.Subscription's own Updates contract), so a slow client
//     throttles its own subscription without stalling the fabric.
//   - Graceful drain: Shutdown stops accepting, fails new work with a
//     retryable error (clients may reconnect elsewhere), waits for
//     in-flight queries, closes subscriptions (each gets a final
//     Goodbye), then closes the session — no client is left hanging.
//
// Equivalence note: one-shot queries against the streamed primary table
// execute against a consistent Ingestor snapshot, not the live table, so
// concurrent appends can never tear a scan.
package netserve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/plan"
	"cheetah/internal/serve"
	"cheetah/internal/stats"
	"cheetah/internal/stream"
	"cheetah/internal/table"
	"cheetah/internal/wire"
)

// Options configures a server.
type Options struct {
	// Tables is the served catalog: every table a client query may name.
	// It must contain Primary.
	Tables map[string]*table.Table
	// Primary names the session's table — the one Serving plans against
	// and Streaming appends to.
	Primary string
	// Plan configures the shared session (fabric width, switch model,
	// workers, seed).
	Plan plan.Options
	// Serve configures the one-shot admission (queue limit, tenant
	// quota).
	Serve plan.ServeOptions
	// Stream, when non-nil, enables appends and subscriptions over the
	// primary table with the given backlog/shed policy.
	Stream *plan.StreamOptions
	// Metrics, when non-nil, is the registry every layer of the server
	// records into (fabric admission counters and gauges, query-latency
	// histograms, credit stalls) — the registry cheetahd's /metrics
	// endpoint exposes. Nil creates a server-private registry, reachable
	// via Server.Metrics.
	Metrics *stats.Registry
	// SlowQueryThreshold, when > 0, counts and logs every query whose
	// measured wall clock meets it.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives one line per slow query; nil selects the
	// standard logger.
	SlowQueryLog func(format string, args ...any)
}

// Server is a live cheetahd instance: a listener plus the shared
// session fabric its connections multiplex onto.
type Server struct {
	ln      net.Listener
	sess    *plan.Session
	serving *plan.Serving
	strm    *plan.Streaming // nil when streaming is disabled
	tables  map[string]*table.Table
	primary string
	metrics *stats.Registry
	slowAt  time.Duration
	slowLog func(format string, args ...any)

	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining bool
	closed   bool

	// accepting tracks the accept loop; handlers tracks per-connection
	// read loops and subscription forwarders; inflight tracks queries
	// and appends the drain must wait out.
	accepting sync.WaitGroup
	handlers  sync.WaitGroup
	inflight  sync.WaitGroup
}

// Serve starts a server on ln. The listener is owned by the server and
// closed on Shutdown/Close.
func Serve(ln net.Listener, opts Options) (*Server, error) {
	primary := opts.Tables[opts.Primary]
	if opts.Primary == "" || primary == nil {
		return nil, fmt.Errorf("netserve: Options.Tables must contain Primary (%q)", opts.Primary)
	}
	if opts.Metrics == nil {
		opts.Metrics = stats.NewRegistry()
	}
	if opts.SlowQueryLog == nil {
		opts.SlowQueryLog = log.Printf
	}
	// One registry across every layer: the fabrics' admission series,
	// the serving gauges/histograms and the server's own query metrics
	// all land in the registry /metrics exposes.
	if opts.Plan.Metrics == nil {
		opts.Plan.Metrics = opts.Metrics
	}
	sess, err := plan.Open(primary, opts.Plan)
	if err != nil {
		return nil, err
	}
	serving, err := sess.Serve(context.Background(), opts.Serve)
	if err != nil {
		sess.Close()
		return nil, err
	}
	var strm *plan.Streaming
	if opts.Stream != nil {
		strm, err = sess.Stream(context.Background(), *opts.Stream)
		if err != nil {
			sess.Close()
			return nil, err
		}
	}
	tables := make(map[string]*table.Table, len(opts.Tables))
	for name, t := range opts.Tables {
		tables[name] = t
	}
	s := &Server{
		ln:      ln,
		sess:    sess,
		serving: serving,
		strm:    strm,
		tables:  tables,
		primary: opts.Primary,
		metrics: opts.Metrics,
		slowAt:  opts.SlowQueryThreshold,
		slowLog: opts.SlowQueryLog,
		conns:   make(map[*conn]struct{}),
	}
	s.accepting.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Listen starts a server on a fresh TCP listener at addr (use
// "127.0.0.1:0" for an ephemeral test port).
func Listen(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s, err := Serve(ln, opts)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Session returns the server's shared session.
func (s *Server) Session() *plan.Session { return s.sess }

// Serving returns the one-shot admission handle (for stats).
func (s *Server) Serving() *plan.Serving { return s.serving }

// Streaming returns the streaming handle, or nil when disabled.
func (s *Server) Streaming() *plan.Streaming { return s.strm }

// Stats returns the cumulative admission counters across the fabric.
func (s *Server) Stats() serve.Counters { return s.serving.Stats() }

// Metrics returns the server's operational-metrics registry: fabric
// admission counters, queue/lease gauges, admission-wait and
// query-latency histograms, credit stalls — the series /metrics
// exposes.
func (s *Server) Metrics() *stats.Registry { return s.metrics }

// Healthy reports whether the server can currently do useful work: not
// draining, and at least one fabric switch alive (an all-dead fabric
// still answers exactly via the direct fallback, but /healthz should
// say the deployment is degraded).
func (s *Server) Healthy() bool {
	s.mu.Lock()
	down := s.draining || s.closed
	s.mu.Unlock()
	if down {
		return false
	}
	fab := s.serving.Fabric()
	for i := 0; i < fab.Size(); i++ {
		if !fab.Server(i).Failed() {
			return true
		}
	}
	return false
}

func (s *Server) acceptLoop() {
	defer s.accepting.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain in progress
		}
		c := &conn{srv: s, nc: nc, subs: make(map[uint64]*subState)}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			// Refuse politely: a retryable connection-level error, then
			// close. The client sees ErrDraining, not a reset.
			c.writeError(0, wire.CodeRetryable, "server is draining")
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// beginRequest registers one in-flight query/append with the drain
// barrier; it fails when the server is draining so the caller can
// answer with a retryable error instead of racing Session.Close.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Shutdown drains the server: the listener closes (new connections are
// refused with a retryable error), requests arriving on live
// connections fail retryable, in-flight queries and appends run to
// completion, subscriptions close after their final update, every
// connection gets a Goodbye, and the session closes — releasing all
// leases and queued waiters. Returns ctx.Err() if the context expires
// first (the remaining teardown still completes in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.accepting.Wait()
		// In-flight work completes; nothing new can start (beginRequest
		// checks draining), so this converges.
		s.inflight.Wait()
		// Subscriptions next: each drains its in-flight delta, pushes
		// nothing further, and the forwarder exits.
		s.mu.Lock()
		conns := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			c.shutdown("server shutting down")
		}
		// Session.Close drains the serving/streaming children: queued
		// admissions fail over, leases release.
		s.sess.Close()
		for _, c := range conns {
			c.nc.Close()
		}
		s.handlers.Wait()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts down without waiting for in-flight work (tests and
// error paths). Prefer Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	s.sess.Close()
	for _, c := range conns {
		c.nc.Close()
	}
	s.accepting.Wait()
	s.handlers.Wait()
	return nil
}

// conn is one client connection: the read loop plus the write-side
// state (serialized frames, per-subscription send windows).
type conn struct {
	srv    *Server
	nc     net.Conn
	tenant string

	// wmu serializes frame writes: query goroutines, subscription
	// forwarders and the read loop all answer on the same socket.
	wmu sync.Mutex

	// mu guards subs and closed.
	mu     sync.Mutex
	subs   map[uint64]*subState
	closed bool
}

// subState is one standing subscription's server-side send window.
type subState struct {
	sub *plan.Subscription

	mu      sync.Mutex
	credits uint32
	// pending is the newest update that arrived while the window was
	// exhausted (latest wins — intermediate standing results are
	// skippable by construction, the subscription's own Updates channel
	// has the same contract).
	pending *wire.UpdateMsg
	closed  bool
}

func (c *conn) writeFrame(t wire.FrameType, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return wire.WriteFrame(c.nc, t, body)
}

func (c *conn) writeError(id uint64, code wire.ErrCode, msg string) {
	m := wire.ErrorMsg{ID: id, Code: code, Msg: msg}
	_ = c.writeFrame(wire.FrameError, m.EncodeBody(nil))
}

// serve runs the connection: handshake, then the frame dispatch loop.
// On any exit every subscription held by the connection closes — the
// disconnect path that releases fabric leases.
func (c *conn) serve() {
	defer c.teardown()
	if err := c.handshake(); err != nil {
		return
	}
	for {
		ft, body, err := wire.ReadFrame(c.nc)
		if err != nil {
			return // disconnect (clean or not): teardown releases subs
		}
		if err := c.dispatch(ft, body); err != nil {
			return
		}
	}
}

// teardown closes every subscription the connection holds, releasing
// their standing programs' fabric leases and stopping the forwarders.
func (c *conn) teardown() {
	c.mu.Lock()
	c.closed = true
	subs := make([]*subState, 0, len(c.subs))
	for _, st := range c.subs {
		subs = append(subs, st)
	}
	c.subs = make(map[uint64]*subState)
	c.mu.Unlock()
	for _, st := range subs {
		st.sub.Close()
	}
	c.nc.Close()
}

// shutdown is the drain-path teardown: like teardown, plus a Goodbye so
// the client distinguishes an orderly drain from a dropped link.
func (c *conn) shutdown(reason string) {
	g := wire.GoodbyeMsg{Reason: reason}
	_ = c.writeFrame(wire.FrameGoodbye, g.EncodeBody(nil))
	c.teardown()
}

// handshake reads the Hello and answers with the catalog.
func (c *conn) handshake() error {
	ft, body, err := wire.ReadFrame(c.nc)
	if err != nil {
		return err
	}
	if ft != wire.FrameHello {
		c.writeError(0, wire.CodeInvalid, "expected HELLO")
		return fmt.Errorf("netserve: expected HELLO, got %v", ft)
	}
	var h wire.Hello
	if err := h.DecodeBody(body); err != nil {
		c.writeError(0, wire.CodeInvalid, "malformed HELLO")
		return err
	}
	if h.Version != wire.ProtoVersion {
		c.writeError(0, wire.CodeInvalid,
			fmt.Sprintf("protocol version %d not supported (want %d)", h.Version, wire.ProtoVersion))
		return fmt.Errorf("netserve: version mismatch")
	}
	c.tenant = h.Tenant
	w := wire.Welcome{
		Version:  wire.ProtoVersion,
		Switches: uint32(c.srv.serving.Switches()),
	}
	for name, t := range c.srv.tables {
		w.Tables = append(w.Tables, wire.TableDef{Name: name, Schema: t.Schema()})
	}
	sortTableDefs(w.Tables)
	if c.srv.strm != nil {
		w.Stream = c.srv.primary
	}
	return c.writeFrame(wire.FrameWelcome, w.EncodeBody(nil))
}

func sortTableDefs(defs []wire.TableDef) {
	for i := 1; i < len(defs); i++ {
		for j := i; j > 0 && defs[j].Name < defs[j-1].Name; j-- {
			defs[j], defs[j-1] = defs[j-1], defs[j]
		}
	}
}

func (c *conn) dispatch(ft wire.FrameType, body []byte) error {
	switch ft {
	case wire.FramePing:
		var p wire.PingMsg
		if err := p.DecodeBody(body); err != nil {
			c.writeError(0, wire.CodeInvalid, "malformed PING")
			return err
		}
		return c.writeFrame(wire.FramePong, p.EncodeBody(nil))
	case wire.FrameQuery:
		var q wire.QueryReq
		if err := q.DecodeBody(body); err != nil {
			c.writeError(0, wire.CodeInvalid, "malformed QUERY")
			return err
		}
		c.handleQuery(&q)
		return nil
	case wire.FrameAppend:
		var a wire.AppendReq
		if err := a.DecodeBody(body); err != nil {
			c.writeError(0, wire.CodeInvalid, "malformed APPEND")
			return err
		}
		c.handleAppend(&a)
		return nil
	case wire.FrameSubscribe:
		var sr wire.SubscribeReq
		if err := sr.DecodeBody(body); err != nil {
			c.writeError(0, wire.CodeInvalid, "malformed SUBSCRIBE")
			return err
		}
		c.handleSubscribe(&sr)
		return nil
	case wire.FrameCredit:
		var cr wire.CreditMsg
		if err := cr.DecodeBody(body); err != nil {
			c.writeError(0, wire.CodeInvalid, "malformed CREDIT")
			return err
		}
		c.handleCredit(&cr)
		return nil
	case wire.FrameUnsubscribe:
		var u wire.UnsubscribeMsg
		if err := u.DecodeBody(body); err != nil {
			c.writeError(0, wire.CodeInvalid, "malformed UNSUBSCRIBE")
			return err
		}
		c.mu.Lock()
		st := c.subs[u.ID]
		delete(c.subs, u.ID)
		c.mu.Unlock()
		if st != nil {
			st.sub.Close()
		}
		return nil
	case wire.FrameGoodbye:
		return errors.New("netserve: client said goodbye")
	default:
		c.writeError(0, wire.CodeInvalid, fmt.Sprintf("unexpected frame %v", ft))
		return fmt.Errorf("netserve: unexpected frame %v", ft)
	}
}

// bindQuery resolves a spec against the catalog. Queries touching the
// streamed primary table bind to a consistent snapshot so concurrent
// appends cannot tear the scan; the snapshot version is returned for
// the result's metadata (0 when streaming is off).
func (c *conn) bindQuery(spec *wire.QuerySpec) (*engine.Query, error) {
	tables := c.srv.tables
	if c.srv.strm != nil && (spec.Table == c.srv.primary || spec.Right == c.srv.primary) {
		snap, _, err := c.srv.strm.Ingest().Snapshot()
		if err != nil {
			return nil, err
		}
		tables = make(map[string]*table.Table, len(c.srv.tables))
		for name, t := range c.srv.tables {
			tables[name] = t
		}
		tables[c.srv.primary] = snap
	}
	return spec.Bind(tables)
}

// handleQuery runs one one-shot query on its own goroutine through the
// shared fabric's QoS admission and answers with a Result or Error
// frame. During a drain the answer is an immediate retryable error.
func (c *conn) handleQuery(req *wire.QueryReq) {
	if !c.srv.beginRequest() {
		c.writeError(req.ID, wire.CodeRetryable, "server is draining")
		return
	}
	go func() {
		defer c.srv.inflight.Done()
		q, err := c.bindQuery(&req.Spec)
		if err != nil {
			c.writeError(req.ID, wire.CodeInvalid, err.Error())
			return
		}
		qos := serve.QoS{Tenant: c.tenant, Priority: int(req.Priority)}
		if req.DeadlineMicros != 0 {
			qos.Deadline = time.Now().Add(time.Duration(req.DeadlineMicros) * time.Microsecond)
		}
		ex, err := c.srv.serving.SubmitQoS(context.Background(), q, qos)
		if err != nil {
			code := wire.CodeInternal
			if errors.Is(err, serve.ErrDeadline) || errors.Is(err, serve.ErrBusy) {
				code = wire.CodeRetryable
			}
			c.srv.metrics.Counter("query_errors", "kind", q.Kind.String()).Incr(1)
			c.writeError(req.ID, code, err.Error())
			return
		}
		c.srv.observeQuery(c.tenant, q, ex)
		res := wire.ResultMsg{
			ID:          req.ID,
			Mode:        uint8(ex.Plan.Mode),
			EntriesSent: uint64(ex.Traffic.EntriesSent),
			Forwarded:   uint64(ex.Traffic.Forwarded),
			FailedOver:  uint32(ex.FailedOver),
			Columns:     ex.Result.Columns,
			Rows:        ex.Result.Rows,
			WallNanos:   uint64(ex.Wall),
		}
		if tr := ex.Trace(); tr != nil {
			for _, st := range tr.Summary() {
				res.Trace = append(res.Trace, wire.TraceStage{
					Stage:     uint8(st.Stage),
					Nanos:     clampU64(st.Nanos),
					Entries:   clampU64(st.Entries),
					Forwarded: clampU64(st.Forwarded),
				})
			}
		}
		_ = c.writeFrame(wire.FrameResult, res.EncodeBody(nil))
	}()
}

// clampU64 narrows a non-negative int64 metric for the wire (negative
// never happens in practice; encode zero rather than a huge uvarint).
func clampU64(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// observeQuery records one completed query's operational series: the
// per-kind latency histogram and, past the slow-query threshold, the
// slow-query counter and log line.
func (s *Server) observeQuery(tenant string, q *engine.Query, ex *plan.Execution) {
	kind := q.Kind.String()
	s.metrics.Histogram("query_latency", "kind", kind).Observe(int64(ex.Wall))
	if s.slowAt > 0 && ex.Wall >= s.slowAt {
		s.metrics.Counter("slow_queries", "kind", kind).Incr(1)
		s.slowLog("netserve: slow query kind=%s tenant=%q wall=%v failovers=%d rows=%d",
			kind, tenant, ex.Wall, ex.FailedOver, len(ex.Result.Rows))
	}
}

// handleAppend commits one batch into the ingestor, mapping the
// backpressure policy onto the wire: Block policies block right here
// (TCP pushback — the client's next frame waits), Shed answers with a
// retryable error.
func (c *conn) handleAppend(req *wire.AppendReq) {
	if c.srv.strm == nil {
		c.writeError(req.ID, wire.CodeInvalid, "streaming is disabled")
		return
	}
	if !c.srv.beginRequest() {
		c.writeError(req.ID, wire.CodeRetryable, "server is draining")
		return
	}
	defer c.srv.inflight.Done()
	batch, err := req.Batch(c.srv.tables[c.srv.primary].Schema())
	if err != nil {
		c.writeError(req.ID, wire.CodeInvalid, err.Error())
		return
	}
	if err := c.srv.strm.AppendBatch(batch); err != nil {
		code := wire.CodeInternal
		if errors.Is(err, stream.ErrBacklog) {
			code = wire.CodeRetryable
		}
		c.writeError(req.ID, code, err.Error())
		return
	}
	ack := wire.AppendedMsg{ID: req.ID, Version: c.srv.strm.Version()}
	_ = c.writeFrame(wire.FrameAppended, ack.EncodeBody(nil))
}

// handleSubscribe registers a continuous query over the primary table
// and starts the forwarder pushing standing-result refreshes under the
// credit window.
func (c *conn) handleSubscribe(req *wire.SubscribeReq) {
	if c.srv.strm == nil {
		c.writeError(req.ID, wire.CodeInvalid, "streaming is disabled")
		return
	}
	if req.Spec.Table != c.srv.primary {
		c.writeError(req.ID, wire.CodeInvalid,
			fmt.Sprintf("subscriptions cover the streamed table %q only", c.srv.primary))
		return
	}
	if !c.srv.beginRequest() {
		c.writeError(req.ID, wire.CodeRetryable, "server is draining")
		return
	}
	defer c.srv.inflight.Done()
	// The subscription's query binds to the live table: the stream
	// layer snapshots each delta itself.
	q, err := req.Spec.Bind(c.srv.tables)
	if err != nil {
		c.writeError(req.ID, wire.CodeInvalid, err.Error())
		return
	}
	var sub *plan.Subscription
	if req.Window != 0 || req.Slide != 0 {
		sub, err = c.srv.strm.SubscribeWindow(context.Background(), q, int(req.Window), int(req.Slide))
	} else {
		sub, err = c.srv.strm.Subscribe(context.Background(), q)
	}
	if err != nil {
		c.writeError(req.ID, wire.CodeInvalid, err.Error())
		return
	}
	credits := req.Credits
	if credits == 0 {
		credits = 1
	}
	st := &subState{sub: sub, credits: credits}
	c.mu.Lock()
	if c.closed || c.subs[req.ID] != nil {
		c.mu.Unlock()
		sub.Close()
		c.writeError(req.ID, wire.CodeInvalid, "subscription id in use or connection closing")
		return
	}
	c.subs[req.ID] = st
	c.mu.Unlock()
	ackMsg := wire.SubscribedMsg{ID: req.ID, Direct: sub.Plan().Mode == plan.ModeDirect}
	_ = c.writeFrame(wire.FrameSubscribed, ackMsg.EncodeBody(nil))
	c.srv.handlers.Add(1)
	go func() {
		defer c.srv.handlers.Done()
		c.forward(req.ID, st)
	}()
}

// forward consumes the subscription's update channel and pushes
// standing-result refreshes while the send window has credits. The
// channel closes when the subscription does (unsubscribe, disconnect,
// or drain), ending the forwarder.
func (c *conn) forward(id uint64, st *subState) {
	for range st.sub.Updates() {
		res, ver := st.sub.Results()
		if res == nil {
			continue
		}
		u := &wire.UpdateMsg{ID: id, Version: ver, Columns: res.Columns, Rows: res.Rows}
		st.mu.Lock()
		if st.credits == 0 {
			st.pending = u // latest wins while the window is exhausted
			st.mu.Unlock()
			// A stall: the client's window is the bottleneck, not the
			// fabric — the series a slow consumer shows up in.
			c.srv.metrics.Counter("credit_stalls").Incr(1)
			continue
		}
		st.credits--
		st.mu.Unlock()
		if c.writeFrame(wire.FrameUpdate, u.EncodeBody(nil)) != nil {
			return
		}
	}
}

// handleCredit replenishes a subscription's send window and flushes the
// coalesced pending update, if any.
func (c *conn) handleCredit(cr *wire.CreditMsg) {
	c.mu.Lock()
	st := c.subs[cr.ID]
	c.mu.Unlock()
	if st == nil || cr.N == 0 {
		return
	}
	st.mu.Lock()
	st.credits += cr.N
	u := st.pending
	if u != nil {
		st.pending = nil
		st.credits--
	}
	st.mu.Unlock()
	if u != nil {
		_ = c.writeFrame(wire.FrameUpdate, u.EncodeBody(nil))
	}
}
