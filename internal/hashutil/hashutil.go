// Package hashutil provides fast, deterministic, seedable hash functions
// used throughout Cheetah for row partitioning, fingerprinting, Bloom
// filters and sketches.
//
// The switch hardware that Cheetah targets exposes a small set of hash
// primitives (CRC-style polynomial hashes over header fields). This package
// plays the same role in the simulator: every data structure that needs a
// hash family draws seeded 64-bit hashes from here, so results are
// reproducible across runs and platforms. Only the standard library is used.
package hashutil

import "math/bits"

// SplitMix64 advances the SplitMix64 sequence from state x and returns the
// next pseudo-random value. It is the standard finalizer-quality mixer used
// to derive independent seeds from a single seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 applies a strong 64-bit finalizer to x (Murmur3-style fmix64).
// It is a bijection, which several callers rely on (distinct fixed inputs
// map to distinct outputs).
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

const (
	prime1 = 0x9e3779b185ebca87
	prime2 = 0xc2b2ae3d27d4eb4f
	prime3 = 0x165667b19e3779f9
	prime4 = 0x85ebca77c2b2ae63
	prime5 = 0x27d4eb2f165667c5
)

// Hash64 computes a 64-bit XXH64-style hash of b with the given seed.
// The implementation follows the xxHash64 specification; it allocates
// nothing and is safe for concurrent use.
func Hash64(b []byte, seed uint64) uint64 {
	n := len(b)
	var h uint64
	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(b) >= 32 {
			v1 = round(v1, le64(b[0:8]))
			v2 = round(v2, le64(b[8:16]))
			v3 = round(v3, le64(b[16:24]))
			v4 = round(v4, le64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}
	h += uint64(n)
	for len(b) >= 8 {
		h ^= round(0, le64(b[0:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(le32(b[0:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// HashString64 is Hash64 for strings without forcing a []byte conversion
// allocation at call sites that only have a string.
func HashString64(s string, seed uint64) uint64 {
	// The compiler does not always elide the copy for []byte(s); keep a
	// small dedicated loop-based path for short strings (the common case:
	// keys are usually short), falling back to Hash64 for long ones.
	if len(s) < 32 {
		h := seed + prime5 + uint64(len(s))
		i := 0
		for ; i+8 <= len(s); i += 8 {
			h ^= round(0, le64String(s[i:i+8]))
			h = bits.RotateLeft64(h, 27)*prime1 + prime4
		}
		if i+4 <= len(s) {
			h ^= uint64(le32String(s[i:i+4])) * prime1
			h = bits.RotateLeft64(h, 23)*prime2 + prime3
			i += 4
		}
		for ; i < len(s); i++ {
			h ^= uint64(s[i]) * prime5
			h = bits.RotateLeft64(h, 11) * prime1
		}
		h ^= h >> 33
		h *= prime2
		h ^= h >> 29
		h *= prime3
		h ^= h >> 32
		return h
	}
	return Hash64([]byte(s), seed)
}

// HashUint64 hashes a fixed 64-bit value with a seed. It is the hot-path
// hash for integer column values: one multiply-xor chain, zero allocations.
func HashUint64(x, seed uint64) uint64 {
	return Mix64(x ^ SplitMix64(seed))
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime1
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	return acc*prime1 + prime4
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64String(s string) uint64 {
	_ = s[7]
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

func le32String(s string) uint32 {
	_ = s[3]
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
}

// Family is a family of H independent hash functions derived from one seed,
// as used by Bloom filters and the Count-Min sketch. The switch derives its
// hash functions from distinct CRC polynomials; here each member uses an
// independently mixed seed.
type Family struct {
	seeds []uint64
}

// NewFamily returns a family of h hash functions derived from seed.
// h must be positive.
func NewFamily(h int, seed uint64) *Family {
	if h <= 0 {
		panic("hashutil: family size must be positive")
	}
	f := &Family{seeds: make([]uint64, h)}
	s := seed
	for i := range f.seeds {
		s = SplitMix64(s)
		f.seeds[i] = s
	}
	return f
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Uint64 returns the i-th hash of value x.
func (f *Family) Uint64(i int, x uint64) uint64 {
	return HashUint64(x, f.seeds[i])
}

// Bytes returns the i-th hash of b.
func (f *Family) Bytes(i int, b []byte) uint64 {
	return Hash64(b, f.seeds[i])
}

// Reduce maps a 64-bit hash onto [0,n) without modulo bias using the
// multiply-shift trick (Lemire). n must be positive.
func Reduce(h uint64, n int) int {
	return int((uint64(uint32(h)) * uint64(uint32(n))) >> 32)
}

// ReduceFull maps h onto [0,n) using full 64-bit multiply-high, which keeps
// all 64 bits of entropy. n must be positive.
func ReduceFull(h uint64, n uint64) uint64 {
	hi, _ := bits.Mul64(h, n)
	return hi
}
