package hashutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the SplitMix64 reference
	// implementation (Vigna). The first output of splitmix64(0) is
	// 0xe220a8397b1dcdaf.
	got := SplitMix64(0)
	const want = uint64(0xe220a8397b1dcdaf)
	if got != want {
		t.Fatalf("SplitMix64(0) = %#x, want %#x", got, want)
	}
}

func TestMix64Bijective(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, h)
		}
		seen[h] = i
	}
}

func TestHash64MatchesStringVariant(t *testing.T) {
	cases := []string{"", "a", "abcd", "abcdefg", "abcdefgh", "hello world",
		"0123456789abcdef0123456789abcdef-and-more-bytes-to-cross-32"}
	for _, s := range cases {
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			if Hash64([]byte(s), seed) != HashString64(s, seed) {
				t.Errorf("Hash64 != HashString64 for %q seed %d", s, seed)
			}
		}
	}
}

func TestHash64SeedSensitivity(t *testing.T) {
	b := []byte("cheetah")
	if Hash64(b, 1) == Hash64(b, 2) {
		t.Fatal("different seeds produced identical hashes")
	}
}

func TestHash64PropertyDeterministic(t *testing.T) {
	f := func(b []byte, seed uint64) bool {
		return Hash64(b, seed) == Hash64(b, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashString64PropertyMatchesBytes(t *testing.T) {
	f := func(s string, seed uint64) bool {
		return HashString64(s, seed) == Hash64([]byte(s), seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFamilyIndependence(t *testing.T) {
	f := NewFamily(4, 42)
	if f.Size() != 4 {
		t.Fatalf("Size = %d, want 4", f.Size())
	}
	// Members must differ on a fixed input.
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		h := f.Uint64(i, 12345)
		if seen[h] {
			t.Fatalf("family members %d collide on fixed input", i)
		}
		seen[h] = true
	}
}

func TestFamilyPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(0) did not panic")
		}
	}()
	NewFamily(0, 1)
}

func TestReduceRange(t *testing.T) {
	f := func(h uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := Reduce(h, m)
		return r >= 0 && r < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceFullRange(t *testing.T) {
	f := func(h uint64, n uint32) bool {
		m := uint64(n%100000) + 1
		r := ReduceFull(h, m)
		return r < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceUniformity(t *testing.T) {
	// Chi-squared sanity check: hash 0..N-1 into 16 buckets; each bucket
	// should be near N/16.
	const n = 1 << 16
	const buckets = 16
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[Reduce(HashUint64(uint64(i), 7), buckets)]++
	}
	want := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 15 degrees of freedom; 99.99% quantile is ~44.3. Allow generous slack.
	if chi2 > 60 {
		t.Fatalf("hash distribution too skewed: chi2 = %f", chi2)
	}
}

func TestHashUint64AvalancheRough(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	var totalFlips, trials int
	for i := uint64(1); i < 64; i++ {
		base := HashUint64(0xABCDEF, 9)
		flipped := HashUint64(0xABCDEF^(1<<i), 9)
		diff := base ^ flipped
		totalFlips += popcount(diff)
		trials++
	}
	avg := float64(totalFlips) / float64(trials)
	if math.Abs(avg-32) > 6 {
		t.Fatalf("weak avalanche: average %.1f bits flipped, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkHashUint64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= HashUint64(uint64(i), 1)
	}
	_ = sink
}

func BenchmarkHashString64Short(b *testing.B) {
	var sink uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink ^= HashString64("api.example.com/path", 1)
	}
	_ = sink
}

func BenchmarkHash64_64B(b *testing.B) {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(buf, 1)
	}
	_ = sink
}
