package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	m := tr.Begin(StagePlan, -1)
	m.End(1, 2)
	m.EndNote("x")
	tr.Add(Span{})
	tr.SetQueryID(7)
	tr.Release()
	if tr.QueryID() != 0 || tr.Spans() != nil || tr.Summary() != nil || tr.Elapsed() != 0 {
		t.Fatal("nil trace must observe nothing")
	}
	if !strings.Contains(tr.String(), "disabled") {
		t.Fatalf("nil render = %q, want disabled marker", tr.String())
	}
}

func TestSpanOrderingAndRender(t *testing.T) {
	tr := New()
	tr.SetQueryID(42)
	// Record out of start order; Spans must sort by start offset.
	tr.Add(Span{Stage: StageMerge, Switch: -1, Start: 30, Dur: 5})
	tr.Add(Span{Stage: StagePlan, Switch: -1, Start: 0, Dur: 10})
	tr.Add(Span{Stage: StagePrune, Switch: 1, Start: 10, Dur: 20, Entries: 100, Forwarded: 7})
	tr.Add(Span{Stage: StageEncode, Switch: 1, Start: 10, Dur: 8})
	spans := tr.Spans()
	want := []Stage{StagePlan, StageEncode, StagePrune, StageMerge}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(spans), len(want))
	}
	for i, s := range spans {
		if s.Stage != want[i] {
			t.Fatalf("span %d stage = %v, want %v", i, s.Stage, want[i])
		}
	}
	out := tr.String()
	if !strings.Contains(out, "query-id=42") {
		t.Fatalf("render missing query id:\n%s", out)
	}
	for _, frag := range []string{"plan", "encode", "prune", "merge", "switch=1", "entries=100", "forwarded=7"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	// Engine-side stages indent one level deeper than lifecycle stages.
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "  plan"):
		case strings.HasPrefix(line, "    prune"), strings.HasPrefix(line, "    encode"):
		case strings.HasPrefix(line, "  prune"), strings.HasPrefix(line, "  encode"):
			t.Fatalf("engine stage not indented:\n%s", out)
		}
	}
}

func TestTimerMeasuresMonotonic(t *testing.T) {
	tr := New()
	m := tr.Begin(StageScan, -1)
	time.Sleep(2 * time.Millisecond)
	m.End(10, 3)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Dur < time.Millisecond {
		t.Fatalf("span dur %v too small for a 2ms stage", s.Dur)
	}
	if s.Entries != 10 || s.Forwarded != 3 {
		t.Fatalf("counts = %d/%d, want 10/3", s.Entries, s.Forwarded)
	}
	if tr.Elapsed() < s.Start+s.Dur {
		t.Fatal("elapsed must cover the span")
	}
}

func TestSummaryAggregatesPerStage(t *testing.T) {
	tr := New()
	tr.Add(Span{Stage: StagePrune, Switch: 0, Dur: 10, Entries: 100, Forwarded: 5})
	tr.Add(Span{Stage: StagePrune, Switch: 1, Dur: 20, Entries: 200, Forwarded: 7})
	tr.Add(Span{Stage: StagePlan, Dur: 3})
	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("got %d stage totals, want 2", len(sum))
	}
	if sum[0].Stage != StagePlan || sum[0].Nanos != 3 {
		t.Fatalf("summary[0] = %+v, want plan/3ns", sum[0])
	}
	if sum[1].Stage != StagePrune || sum[1].Nanos != 30 || sum[1].Entries != 300 || sum[1].Forwarded != 12 {
		t.Fatalf("summary[1] = %+v, want prune totals 30/300/12", sum[1])
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := tr.Begin(StageShard, g)
				m.End(int64(i), 0)
			}
		}(g)
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 1600 {
		t.Fatalf("lost spans under concurrency: %d != 1600", n)
	}
}

func TestStageNamesStable(t *testing.T) {
	// Stage numbers ride the wire; renames are fine, renumbering is not.
	want := map[Stage]string{
		StagePlan: "plan", StageAdmit: "admit", StageSkip: "skip",
		StageScan: "scan", StageEncode: "encode", StagePrune: "prune",
		StageFused: "fused", StageMerge: "merge", StageShard: "shard",
		StageDelta: "delta", StageFailover: "failover",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("stage %d = %q, want %q", s, s.String(), name)
		}
	}
	if StagePlan != 0 || StageFailover != 10 {
		t.Fatal("stage numbering must stay stable (wire format)")
	}
}
