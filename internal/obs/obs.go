// Package obs is the query-lifecycle tracing layer: a Trace rides a
// query (keyed by its QueryID) from planning through QoS admission,
// skip planning, the switch passes and the master merge, collecting
// per-stage Spans stamped with monotonic nanoseconds.
//
// Design constraints, in order:
//
//   - Tracing is on by default, so it must not perturb the execution it
//     observes: spans time whole stages (a dozen per query), never
//     per-entry work, and the span buffer is pooled so steady-state
//     tracing allocates nothing on the hot path.
//   - Span recording is concurrent — sharded execution finishes shard
//     passes from independent goroutines — so End appends under a
//     mutex. One uncontended lock per stage is noise next to a stage
//     that streams thousands of entries.
//   - The trace must not influence results: it carries timings and
//     counts out of the engine but nothing back in, preserving the
//     repo-wide invariant that every execution mode is bit-identical
//     to ExecDirect.
//
// Rendering (Trace.Render) prints the span tree the way EXPLAIN
// ANALYZE does: top-level lifecycle stages in start order, engine-side
// stages indented beneath them, each with duration and stream counts.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage identifies one lifecycle stage of a query. Values are part of
// the wire trace summary (encoded as a u8), so existing stages must
// keep their numbers; append new ones.
type Stage uint8

const (
	// StagePlan covers planner candidate selection and pruner sizing.
	StagePlan Stage = iota
	// StageAdmit covers QoS admission: queue wait plus placement.
	StageAdmit
	// StageSkip covers skip-index consultation (zone maps + Blooms).
	StageSkip
	// StageScan covers a direct master-side scan+complete pass.
	StageScan
	// StageEncode covers worker-side entry encoding for a switch pass.
	StageEncode
	// StagePrune covers the switch dataplane's pruning of a pass.
	StagePrune
	// StageFused covers a fused encode→prune→compact loop, where the
	// encode and prune phases are a single interleaved scan.
	StageFused
	// StageMerge covers the master's completion over survivors.
	StageMerge
	// StageShard covers one shard's whole pass in sharded execution.
	StageShard
	// StageDelta covers one streaming delta's execution.
	StageDelta
	// StageFailover marks a discarded attempt: the span's duration is
	// the wall-clock the failed attempt burned before being redone.
	StageFailover

	numStages
)

var stageNames = [numStages]string{
	"plan", "admit", "skip", "scan", "encode", "prune", "fused",
	"merge", "shard", "delta", "failover",
}

// String returns the stage's lowercase taxonomy name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// depth is the render indentation: lifecycle stages are top-level,
// engine-side stages nest beneath the pass that contains them.
func (s Stage) depth() int {
	switch s {
	case StagePlan, StageAdmit, StageScan, StageDelta, StageFailover:
		return 0
	default:
		return 1
	}
}

// Span is one timed stage. Start is the offset from the trace's birth
// (monotonic), Dur the stage's wall time.
type Span struct {
	Stage   Stage
	Switch  int // switch/shard index; -1 = master-side / not placed
	Attempt int // failover attempt the span belongs to (0 = first)
	Start   time.Duration
	Dur     time.Duration
	// Entries/Forwarded count the stream crossing the stage's boundary
	// (entries offloaded to the switch vs forwarded past it); zero when
	// the stage has no stream.
	Entries   int64
	Forwarded int64
	// Note carries low-cardinality context ("degraded", a pruner name).
	Note string
}

// Trace collects one query's spans. The zero value is not usable; get
// traces from New. A nil *Trace is a valid no-op receiver for every
// method, so instrumentation points need no nil checks of their own.
type Trace struct {
	t0      time.Time
	queryID uint32

	mu    sync.Mutex
	spans []Span
}

// spanPool recycles span buffers so steady-state tracing does not
// allocate per query. Buffers return to the pool via Release.
var spanPool = sync.Pool{
	New: func() any { return make([]Span, 0, 32) },
}

// New starts a trace; its clock (monotonic, via time.Time) begins now.
func New() *Trace {
	return &Trace{t0: time.Now(), spans: spanPool.Get().([]Span)}
}

// Release returns the trace's span buffer to the pool. Only call when
// no references to the trace or its spans remain.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := t.spans
	t.spans = nil
	t.mu.Unlock()
	if s != nil {
		spanPool.Put(s[:0])
	}
}

// SetQueryID stamps the trace with the query's fabric-assigned id.
func (t *Trace) SetQueryID(id uint32) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.queryID = id
	t.mu.Unlock()
}

// QueryID returns the stamped id (0 until admission assigns one).
func (t *Trace) QueryID() uint32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queryID
}

// Elapsed is the wall time since the trace began.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

// Timer is an in-flight span: Begin stamps the start, End appends the
// completed span. The zero Timer (from a nil trace) no-ops on End.
type Timer struct {
	t     *Trace
	start time.Duration
	span  Span
}

// Begin opens a span for stage on switch sw (-1 = master-side).
// Only End touches the trace, so Begin costs one monotonic clock read.
func (t *Trace) Begin(stage Stage, sw int) Timer {
	if t == nil {
		return Timer{}
	}
	return Timer{t: t, start: time.Since(t.t0), span: Span{Stage: stage, Switch: sw}}
}

// Attempt tags the span with a failover attempt number.
func (m Timer) Attempt(n int) Timer {
	m.span.Attempt = n
	return m
}

// Counts sets the span's stream counts without closing it.
func (m Timer) Counts(entries, forwarded int64) Timer {
	m.span.Entries = entries
	m.span.Forwarded = forwarded
	return m
}

// Restage reassigns the span's stage — used when the outcome decides
// what a span was (a pass that crossed a switch death becomes a
// failover span).
func (m Timer) Restage(s Stage) Timer {
	m.span.Stage = s
	return m
}

// End closes the span with stream counts and appends it to the trace.
func (m Timer) End(entries, forwarded int64) {
	m.span.Entries = entries
	m.span.Forwarded = forwarded
	m.EndNote("")
}

// EndNote closes the span with an optional note.
func (m Timer) EndNote(note string) {
	if m.t == nil {
		return
	}
	m.span.Start = m.start
	m.span.Dur = time.Since(m.t.t0) - m.start
	m.span.Note = note
	m.t.Add(m.span)
}

// Add appends a completed span (used for derived spans whose bounds
// were measured elsewhere, e.g. accumulated dataplane time).
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by start offset
// (ties broken by stage order, then switch), safe to keep.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Switch < out[j].Switch
	})
	return out
}

// StageTotal is one aggregated line of the compact trace summary: the
// summed duration and stream counts of every span of one stage.
type StageTotal struct {
	Stage     Stage
	Nanos     int64
	Entries   int64
	Forwarded int64
}

// Summary aggregates spans per stage, ordered by stage number — the
// compact form Result frames carry so clients see server-side timings
// without shipping the whole span list.
func (t *Trace) Summary() []StageTotal {
	if t == nil {
		return nil
	}
	var tot [numStages]StageTotal
	var seen [numStages]bool
	t.mu.Lock()
	for _, s := range t.spans {
		tot[s.Stage].Nanos += int64(s.Dur)
		tot[s.Stage].Entries += s.Entries
		tot[s.Stage].Forwarded += s.Forwarded
		seen[s.Stage] = true
	}
	t.mu.Unlock()
	out := make([]StageTotal, 0, 8)
	for i := range tot {
		if seen[i] {
			tot[i].Stage = Stage(i)
			out = append(out, tot[i])
		}
	}
	return out
}

// Render writes the span tree: one line per span in start order,
// engine-side stages indented under their pass.
func (t *Trace) Render(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "trace: disabled")
		return
	}
	spans := t.Spans()
	fmt.Fprintf(w, "trace: query-id=%d spans=%d\n", t.QueryID(), len(spans))
	for _, s := range spans {
		var b strings.Builder
		for i := 0; i <= s.Stage.depth(); i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-8s %12s", s.Stage, s.Dur.Round(time.Microsecond))
		if s.Switch >= 0 {
			fmt.Fprintf(&b, "  switch=%d", s.Switch)
		}
		if s.Attempt > 0 {
			fmt.Fprintf(&b, "  attempt=%d", s.Attempt)
		}
		if s.Entries > 0 {
			fmt.Fprintf(&b, "  entries=%d", s.Entries)
		}
		if s.Forwarded > 0 {
			fmt.Fprintf(&b, "  forwarded=%d", s.Forwarded)
		}
		if s.Note != "" {
			fmt.Fprintf(&b, "  (%s)", s.Note)
		}
		fmt.Fprintln(w, b.String())
	}
}

// String renders the span tree to a string.
func (t *Trace) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
