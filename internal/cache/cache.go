// Package cache implements the d×w register matrices Cheetah lays out in
// switch SRAM (§4.2, §5): per-row caches with rolling replacement used by
// DISTINCT, rolling-minimum rows used by the randomized TOP N, and keyed
// running-max rows used by GROUP BY.
//
// Layout mirrors the hardware: each of the w columns is one pipeline stage
// holding a d-entry register array; a packet visits the columns of its row
// in stage order. All structures use flat backing arrays and allocate
// nothing per entry.
package cache

import (
	"fmt"
	"math"

	"cheetah/internal/hashutil"
)

// Policy selects the replacement behaviour of a matrix-cache row.
type Policy uint8

const (
	// FIFO does rolling replacement on every miss: the new value enters
	// column 0 and every cached value shifts one column right, the last
	// falling out. A hit leaves the row unchanged. This is the cheaper
	// policy (Table 2's "FIFO*" row shares same-stage ALU memory).
	FIFO Policy = iota
	// LRU additionally moves a hit value back to column 0, so the row
	// evicts the least recently *seen* value rather than the oldest
	// insertion.
	LRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case LRU:
		return "LRU"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Matrix is the d×w value cache used by the DISTINCT pruner: row i caches
// the last w values hashed to it. Values must already be fingerprints or
// raw 64-bit column values; the matrix itself stores opaque uint64s.
//
// Empty slots are tracked explicitly (occupancy bitmap per row is replaced
// by a fill counter, because rolling replacement always fills columns left
// to right), so the value 0 is a legal cacheable value.
type Matrix struct {
	d, w   int
	policy Policy
	vals   []uint64 // row-major d rows × w cols
	fill   []int    // number of occupied columns in each row
	seed   uint64
}

// NewMatrix creates a d-row, w-column cache with the given replacement
// policy. The seed drives the row-selection hash.
func NewMatrix(d, w int, policy Policy, seed uint64) (*Matrix, error) {
	if d <= 0 || w <= 0 {
		return nil, fmt.Errorf("cache: matrix dimensions %dx%d must be positive", d, w)
	}
	if policy != FIFO && policy != LRU {
		return nil, fmt.Errorf("cache: unknown policy %v", policy)
	}
	return &Matrix{
		d:      d,
		w:      w,
		policy: policy,
		vals:   make([]uint64, d*w),
		fill:   make([]int, d),
		seed:   seed,
	}, nil
}

// Rows returns d. Cols returns w.
func (m *Matrix) Rows() int { return m.d }

// Cols returns the number of columns (stages) per row.
func (m *Matrix) Cols() int { return m.w }

// PolicyKind returns the replacement policy.
func (m *Matrix) PolicyKind() Policy { return m.policy }

// RowOf returns the row index value maps to.
func (m *Matrix) RowOf(value uint64) int {
	return hashutil.Reduce(hashutil.HashUint64(value, m.seed), m.d)
}

// Insert looks value up in its row and inserts it on a miss.
// It returns true when the value was already cached (the caller prunes
// the entry) and false when it was new (the caller forwards it).
func (m *Matrix) Insert(value uint64) (hit bool) {
	row := m.RowOf(value)
	base := row * m.w
	n := m.fill[row]
	slots := m.vals[base : base+n]
	for i, v := range slots {
		if v == value {
			if m.policy == LRU && i > 0 {
				copy(slots[1:i+1], slots[:i])
				slots[0] = value
			}
			return true
		}
	}
	// Miss: rolling replacement, new value enters column 0.
	if n < m.w {
		m.fill[row] = n + 1
		n++
	}
	full := m.vals[base : base+n]
	copy(full[1:], full[:n-1])
	full[0] = value
	return false
}

// Contains reports whether value is currently cached, without mutating
// the matrix.
func (m *Matrix) Contains(value uint64) bool {
	row := m.RowOf(value)
	base := row * m.w
	for _, v := range m.vals[base : base+m.fill[row]] {
		if v == value {
			return true
		}
	}
	return false
}

// Reset clears all rows.
func (m *Matrix) Reset() {
	for i := range m.fill {
		m.fill[i] = 0
	}
}

// MemoryBits returns the SRAM footprint in bits (d·w 64-bit registers),
// matching Table 2's "(d·w)×64b" accounting.
func (m *Matrix) MemoryBits() int { return m.d * m.w * 64 }

// RollingMin is the d×w matrix of §5's randomized TOP N: each row keeps
// the w largest values routed to it, in descending column order, using the
// single-comparison-per-stage rolling-minimum update the switch supports.
//
// Empty slots hold MinSentinel rather than a fill counter: the sentinel is
// the smallest int64, so it sorts to the tail of a descending row and the
// filling splice and the full-row displacement are the same operation. A
// row is full exactly when its last column is not the sentinel. The one
// representable casualty is a genuine MinSentinel value: it is
// indistinguishable from an empty slot, so such values are never cached
// and never pruned — forwarding them is always sound, the master just
// sees a few more entries.
type RollingMin struct {
	d, w int
	vals []int64
	// mins caches each row's last column (MinSentinel while the row is
	// filling), giving scan loops a single compact-array prune test that
	// avoids touching the row matrix for pruned entries. Maintained by
	// Offer/InsertFull.
	mins []int64
}

// MinSentinel marks an empty slot (and a not-yet-full row in the Mins
// cache): a value ≤ mins[row] may be pruned exactly when mins[row] is not
// the sentinel.
const MinSentinel = math.MinInt64

// NewRollingMin creates the matrix.
func NewRollingMin(d, w int) (*RollingMin, error) {
	if d <= 0 || w <= 0 {
		return nil, fmt.Errorf("cache: rolling-min dimensions %dx%d must be positive", d, w)
	}
	r := &RollingMin{d: d, w: w, vals: make([]int64, d*w), mins: make([]int64, d)}
	fillSentinel(r.vals)
	fillSentinel(r.mins)
	return r, nil
}

// fillSentinel sets every element to MinSentinel at memmove speed
// (doubling copies beat a scalar store loop on the 128KB value matrices
// the TOP N pruners allocate per query).
func fillSentinel(s []int64) {
	if len(s) == 0 {
		return
	}
	s[0] = MinSentinel
	for i := 1; i < len(s); i *= 2 {
		copy(s[i:], s[:i])
	}
}

// Mins exposes the per-row minimum cache for batch prune tests. The
// caller must not modify it; see MinSentinel for the not-full marker.
func (r *RollingMin) Mins() []int64 { return r.mins }

// Rows returns d. Cols returns w.
func (r *RollingMin) Rows() int { return r.d }

// Cols returns w.
func (r *RollingMin) Cols() int { return r.w }

// Offer presents value to the given row (chosen uniformly at random by the
// caller). It returns true when the value was smaller than every cached
// value in a full row — i.e. the entry can be pruned. Otherwise the value
// is spliced into its ordered position and the row's minimum (an empty
// sentinel while filling) falls out.
func (r *RollingMin) Offer(row int, value int64) (prune bool) {
	last := r.mins[row]
	if value <= last && last != MinSentinel {
		return true
	}
	r.InsertFull(row, value)
	return false
}

// InsertFull splices value into its row: Offer without the prune verdict.
// The splice is a no-op when value is not larger than the row minimum, so
// callers that already proved value > mins[row] (the fused loops' compact
// prune test) lose nothing by skipping the verdict; sentinel-valued empty
// slots make the filling phase the same displacement.
func (r *RollingMin) InsertFull(row int, value int64) {
	if r.w == 4 {
		// The literal hardware rolling swap, branch-free: each stage keeps
		// the larger of (register, carried value) and passes the smaller
		// on; min/max compile to conditional moves, so the randomly placed
		// insertions never mispredict. w=4 is LegacyRandTopNConfig's
		// column count, making this the steady-state TOP N path — and
		// keeping it straight-line keeps InsertFull inlinable into the
		// fused scan loops.
		base := row * 4
		s := r.vals[base : base+4 : base+4]
		v0, v1, v2, v3 := s[0], s[1], s[2], s[3]
		c := value
		s[0] = max(v0, c)
		c = min(v0, c)
		s[1] = max(v1, c)
		c = min(v1, c)
		s[2] = max(v2, c)
		c = min(v2, c)
		m := max(v3, c)
		s[3] = m
		r.mins[row] = m
		return
	}
	r.insertSplice(row, value)
}

// insertSplice is InsertFull's generic-width path: a position count over
// the descending row followed by a shift (a no-op when value misses the
// row's top w).
func (r *RollingMin) insertSplice(row int, value int64) {
	base := row * r.w
	slots := r.vals[base : base+r.w]
	pos := 0
	for _, s := range slots {
		if s >= value {
			pos++
		}
	}
	if pos == r.w {
		return
	}
	for i := r.w - 1; i > pos; i-- {
		slots[i] = slots[i-1]
	}
	slots[pos] = value
	r.mins[row] = slots[r.w-1]
}

// FullMin returns the minimum cached value of row and whether the row is
// full. It is the branch-light prune test hoisted into batch loops: for a
// full row the minimum sits in the last column (splicing keeps columns in
// descending order), so a value ≤ it can be pruned without running the
// splice, and a not-full row can never prune. The method is small enough
// to inline into callers' inner loops.
func (r *RollingMin) FullMin(row int) (int64, bool) {
	m := r.mins[row]
	if m == MinSentinel {
		return 0, false
	}
	return m, true
}

// RowMin returns the minimum cached value of a full row, or false when the
// row is not yet full.
func (r *RollingMin) RowMin(row int) (int64, bool) {
	return r.FullMin(row)
}

// Reset clears all rows.
func (r *RollingMin) Reset() {
	fillSentinel(r.vals)
	fillSentinel(r.mins)
}

// MemoryBits returns the SRAM footprint in bits.
func (r *RollingMin) MemoryBits() int { return r.d * r.w * 64 }

// KeyedMax is the GROUP BY matrix (§4.3, Table 2): each row holds w
// (key fingerprint, running max) pairs. An entry whose value does not
// exceed the cached max for its key is pruned; larger values update the
// max and are forwarded so the master always holds the true per-key max.
type KeyedMax struct {
	d, w int
	keys []uint64
	vals []int64
	fill []int
	seed uint64
}

// NewKeyedMax creates the matrix.
func NewKeyedMax(d, w int, seed uint64) (*KeyedMax, error) {
	if d <= 0 || w <= 0 {
		return nil, fmt.Errorf("cache: keyed-max dimensions %dx%d must be positive", d, w)
	}
	return &KeyedMax{
		d: d, w: w,
		keys: make([]uint64, d*w),
		vals: make([]int64, d*w),
		fill: make([]int, d),
		seed: seed,
	}, nil
}

// Rows returns d. Cols returns w.
func (k *KeyedMax) Rows() int { return k.d }

// Cols returns w.
func (k *KeyedMax) Cols() int { return k.w }

// Offer presents (key, value). It returns true when the entry is provably
// redundant (a same-key entry with value ≥ this one was already
// forwarded) and false when the entry must be forwarded.
func (k *KeyedMax) Offer(key uint64, value int64) (prune bool) {
	row := hashutil.Reduce(hashutil.HashUint64(key, k.seed), k.d)
	base := row * k.w
	n := k.fill[row]
	for i := 0; i < n; i++ {
		if k.keys[base+i] == key {
			if value <= k.vals[base+i] {
				return true
			}
			k.vals[base+i] = value
			return false
		}
	}
	// Unknown key: cache it (rolling replacement) and forward.
	if n < k.w {
		k.keys[base+n] = key
		k.vals[base+n] = value
		k.fill[row] = n + 1
		return false
	}
	copy(k.keys[base+1:base+k.w], k.keys[base:base+k.w-1])
	copy(k.vals[base+1:base+k.w], k.vals[base:base+k.w-1])
	k.keys[base] = key
	k.vals[base] = value
	return false
}

// Reset clears all rows.
func (k *KeyedMax) Reset() {
	for i := range k.fill {
		k.fill[i] = 0
	}
}

// MemoryBits returns the SRAM footprint in bits (key + value registers).
func (k *KeyedMax) MemoryBits() int { return k.d * k.w * 64 }
