package cache

import (
	"testing"
	"testing/quick"

	"cheetah/internal/hashutil"
)

func TestMatrixBasicHitMiss(t *testing.T) {
	m, err := NewMatrix(16, 4, FIFO, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Insert(42) {
		t.Fatal("first insert reported hit")
	}
	if !m.Insert(42) {
		t.Fatal("second insert reported miss")
	}
	if !m.Contains(42) {
		t.Fatal("Contains lost the value")
	}
	if m.Contains(43) {
		t.Fatal("Contains invented a value")
	}
}

func TestMatrixZeroValueCacheable(t *testing.T) {
	m, _ := NewMatrix(4, 2, FIFO, 1)
	if m.Insert(0) {
		t.Fatal("0 hit on first insert")
	}
	if !m.Insert(0) {
		t.Fatal("0 missed on second insert")
	}
}

func TestMatrixFIFOEviction(t *testing.T) {
	// Single row, w=2: inserting a third distinct value evicts the oldest.
	m, _ := NewMatrix(1, 2, FIFO, 1)
	m.Insert(1)
	m.Insert(2)
	m.Insert(3) // evicts 1
	if m.Contains(1) {
		t.Fatal("FIFO failed to evict oldest")
	}
	if !m.Contains(2) || !m.Contains(3) {
		t.Fatal("FIFO evicted wrong value")
	}
	// A hit must NOT refresh recency under FIFO: hit 2, insert 4 → 2 (the
	// older insertion) is evicted even though it was just seen.
	m.Insert(2) // hit
	m.Insert(4) // evicts 2 under FIFO
	if m.Contains(2) {
		t.Fatal("FIFO refreshed recency on hit")
	}
	if !m.Contains(3) || !m.Contains(4) {
		t.Fatal("FIFO row contents wrong after eviction")
	}
}

func TestMatrixLRUMoveToFront(t *testing.T) {
	m, _ := NewMatrix(1, 2, LRU, 1)
	m.Insert(1)
	m.Insert(2)
	m.Insert(1) // hit: 1 becomes most recent
	m.Insert(3) // evicts 2, not 1
	if !m.Contains(1) {
		t.Fatal("LRU evicted the recently used value")
	}
	if m.Contains(2) {
		t.Fatal("LRU kept the least recently used value")
	}
	if !m.Contains(3) {
		t.Fatal("LRU lost the new value")
	}
}

func TestMatrixRowIsolation(t *testing.T) {
	// Same value always maps to the same row; different rows do not
	// interfere. Fill one row far beyond w and confirm another row's
	// values survive.
	m, _ := NewMatrix(64, 2, FIFO, 7)
	probe := uint64(999)
	m.Insert(probe)
	row := m.RowOf(probe)
	inserted := 0
	for v := uint64(0); inserted < 100; v++ {
		if v != probe && m.RowOf(v) != row {
			m.Insert(v)
			inserted++
		}
	}
	if !m.Contains(probe) {
		t.Fatal("other rows evicted this row's value")
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 2, FIFO, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewMatrix(2, 0, FIFO, 1); err == nil {
		t.Fatal("w=0 accepted")
	}
	if _, err := NewMatrix(2, 2, Policy(99), 1); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestMatrixReset(t *testing.T) {
	m, _ := NewMatrix(8, 2, LRU, 1)
	m.Insert(5)
	m.Reset()
	if m.Contains(5) {
		t.Fatal("reset incomplete")
	}
	if m.Insert(5) {
		t.Fatal("hit after reset")
	}
}

func TestMatrixMemoryBits(t *testing.T) {
	m, _ := NewMatrix(4096, 2, FIFO, 1)
	if got := m.MemoryBits(); got != 4096*2*64 {
		t.Fatalf("MemoryBits = %d", got)
	}
}

func TestMatrixNoFalseHitsProperty(t *testing.T) {
	// Property: Insert never reports a hit for a value that was not
	// previously inserted (the no-false-positives requirement that makes
	// the cache safe for DISTINCT).
	m, _ := NewMatrix(32, 3, FIFO, 3)
	f := func(vals []uint64) bool {
		m.Reset()
		seen := map[uint64]bool{}
		for _, v := range vals {
			hit := m.Insert(v)
			if hit && !seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixLRUNoFalseHitsProperty(t *testing.T) {
	m, _ := NewMatrix(16, 2, LRU, 5)
	f := func(vals []uint64) bool {
		m.Reset()
		seen := map[uint64]bool{}
		for _, v := range vals {
			if m.Insert(v) && !seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRollingMinOrderingInvariant(t *testing.T) {
	r, err := NewRollingMin(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{5, 1, 9, 3, 7, 2, 8}
	for _, v := range vals {
		r.Offer(0, v)
	}
	// Row must hold the 4 largest: 9,8,7,5 in descending order.
	want := []int64{9, 8, 7, 5}
	for i, w := range want {
		if got := r.vals[i]; got != w {
			t.Fatalf("slot %d = %d, want %d (row=%v)", i, got, w, r.vals[:4])
		}
	}
	min, ok := r.RowMin(0)
	if !ok || min != 5 {
		t.Fatalf("RowMin = %d, %v", min, ok)
	}
}

func TestRollingMinPruneDecision(t *testing.T) {
	r, _ := NewRollingMin(1, 2)
	if r.Offer(0, 10) {
		t.Fatal("pruned while filling")
	}
	if r.Offer(0, 20) {
		t.Fatal("pruned while filling")
	}
	if !r.Offer(0, 5) {
		t.Fatal("value below full row's min not pruned")
	}
	if r.Offer(0, 15) {
		t.Fatal("value above min wrongly pruned")
	}
	// After 15 displaced 10, min is 15.
	if min, _ := r.RowMin(0); min != 15 {
		t.Fatalf("min = %d, want 15", min)
	}
}

func TestRollingMinNeverPrunesTopW(t *testing.T) {
	// Property: for a single row, the w largest values offered are never
	// pruned (they are exactly what the row retains).
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		r, _ := NewRollingMin(1, 3)
		maxSeen := []int64{}
		for _, x := range raw {
			v := int64(x)
			pruned := r.Offer(0, v)
			// Track the top-3 so far.
			maxSeen = append(maxSeen, v)
			for i := len(maxSeen) - 1; i > 0 && maxSeen[i] > maxSeen[i-1]; i-- {
				maxSeen[i], maxSeen[i-1] = maxSeen[i-1], maxSeen[i]
			}
			if len(maxSeen) > 3 {
				maxSeen = maxSeen[:3]
			}
			// If v is among the top-3 seen so far it must not be pruned.
			inTop := false
			for _, m := range maxSeen {
				if m == v {
					inTop = true
					break
				}
			}
			if inTop && pruned {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRollingMinRowIsolation(t *testing.T) {
	r, _ := NewRollingMin(2, 2)
	r.Offer(0, 100)
	r.Offer(0, 200)
	r.Offer(1, 1)
	r.Offer(1, 2)
	if r.Offer(1, 3) {
		t.Fatal("row 1 pruned a value above its own min")
	}
	if min, _ := r.RowMin(0); min != 100 {
		t.Fatalf("row 0 min = %d", min)
	}
}

func TestRollingMinValidationAndReset(t *testing.T) {
	if _, err := NewRollingMin(0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewRollingMin(1, 0); err == nil {
		t.Fatal("w=0 accepted")
	}
	r, _ := NewRollingMin(1, 1)
	r.Offer(0, 5)
	r.Reset()
	if _, ok := r.RowMin(0); ok {
		t.Fatal("reset incomplete")
	}
	if r.MemoryBits() != 64 {
		t.Fatalf("MemoryBits = %d", r.MemoryBits())
	}
}

func TestKeyedMaxBasic(t *testing.T) {
	k, err := NewKeyedMax(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.Offer(1, 10) {
		t.Fatal("first value pruned")
	}
	if !k.Offer(1, 10) {
		t.Fatal("equal value not pruned")
	}
	if !k.Offer(1, 5) {
		t.Fatal("smaller value not pruned")
	}
	if k.Offer(1, 20) {
		t.Fatal("larger value pruned")
	}
	if !k.Offer(1, 15) {
		t.Fatal("value below updated max not pruned")
	}
}

func TestKeyedMaxCorrectnessInvariant(t *testing.T) {
	// Invariant: for any stream, max over forwarded entries per key equals
	// the true per-key max (the pruned set is sufficient for MAX GROUP BY).
	f := func(raw []uint16) bool {
		k, _ := NewKeyedMax(8, 2, 9)
		truth := map[uint64]int64{}
		forwarded := map[uint64]int64{}
		for _, x := range raw {
			key := uint64(x % 37)
			val := int64(x / 37)
			if cur, ok := truth[key]; !ok || val > cur {
				truth[key] = val
			}
			if !k.Offer(key, val) {
				if cur, ok := forwarded[key]; !ok || val > cur {
					forwarded[key] = val
				}
			}
		}
		for key, want := range truth {
			if forwarded[key] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedMaxEvictionStillCorrect(t *testing.T) {
	// Force evictions with a tiny matrix and many keys; correctness must
	// hold (eviction only reduces pruning).
	k, _ := NewKeyedMax(1, 1, 3)
	truth := map[uint64]int64{}
	forwarded := map[uint64]int64{}
	s := uint64(77)
	for i := 0; i < 5000; i++ {
		s = hashutil.SplitMix64(s)
		key := s % 17
		val := int64(s >> 32 % 1000)
		if cur, ok := truth[key]; !ok || val > cur {
			truth[key] = val
		}
		if !k.Offer(key, val) {
			if cur, ok := forwarded[key]; !ok || val > cur {
				forwarded[key] = val
			}
		}
	}
	for key, want := range truth {
		if forwarded[key] != want {
			t.Fatalf("key %d: forwarded max %d != true max %d", key, forwarded[key], want)
		}
	}
}

func TestKeyedMaxValidationAndReset(t *testing.T) {
	if _, err := NewKeyedMax(0, 1, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewKeyedMax(1, 0, 1); err == nil {
		t.Fatal("w=0 accepted")
	}
	k, _ := NewKeyedMax(2, 2, 1)
	k.Offer(1, 1)
	k.Reset()
	if !k.Offer(1, 0) == false {
		t.Fatal("reset incomplete: stale max survived")
	}
	if k.MemoryBits() != 2*2*64 {
		t.Fatalf("MemoryBits = %d", k.MemoryBits())
	}
}

func BenchmarkMatrixInsert(b *testing.B) {
	m, _ := NewMatrix(4096, 2, FIFO, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Insert(uint64(i % 100000))
	}
}

func BenchmarkRollingMinOffer(b *testing.B) {
	r, _ := NewRollingMin(4096, 4)
	s := uint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = hashutil.SplitMix64(s)
		r.Offer(int(s%4096), int64(s>>32))
	}
}

func BenchmarkKeyedMaxOffer(b *testing.B) {
	k, _ := NewKeyedMax(4096, 8, 1)
	s := uint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = hashutil.SplitMix64(s)
		k.Offer(s%5000, int64(s>>32%1000))
	}
}

// TestRollingMinMinsCache checks the per-row minimum cache against the
// ground truth after every Offer, including the not-full sentinel and
// the FullMin accessor.
func TestRollingMinMinsCache(t *testing.T) {
	const d, w = 8, 4
	r, err := NewRollingMin(d, w)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(99)
	next := func(mod int64) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := int64(seed >> 33)
		return v % mod
	}
	for i := 0; i < 2000; i++ {
		row := int(next(d))
		if row < 0 {
			row = -row
		}
		r.Offer(row%d, next(1<<20))
		for q := 0; q < d; q++ {
			min, full := r.FullMin(q)
			if !full {
				if r.Mins()[q] != MinSentinel {
					t.Fatalf("row %d not full but mins=%d", q, r.Mins()[q])
				}
				continue
			}
			if got := r.Mins()[q]; got != min {
				t.Fatalf("row %d: mins cache %d, true min %d", q, got, min)
			}
			if rm, ok := r.RowMin(q); !ok || rm != min {
				t.Fatalf("row %d: RowMin %v/%v vs FullMin %d", q, rm, ok, min)
			}
		}
	}
	r.Reset()
	for q := 0; q < d; q++ {
		if r.Mins()[q] != MinSentinel {
			t.Fatalf("after reset, row %d mins=%d", q, r.Mins()[q])
		}
	}
}

// TestRollingMinOfferOrder checks that Offer keeps rows in descending
// order with exact rolling-replacement semantics (the hardware's swap
// walk), including ties.
func TestRollingMinOfferOrder(t *testing.T) {
	r, err := NewRollingMin(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		v     int64
		prune bool
		want  []int64
	}{
		{5, false, []int64{5}},
		{7, false, []int64{7, 5}},
		{5, false, []int64{7, 5, 5}}, // tie inserts after equal values
		{4, true, []int64{7, 5, 5}},  // full row, below min: pruned
		{5, true, []int64{7, 5, 5}},  // equal to min, never displaces
		{6, false, []int64{7, 6, 5}}, // splices mid-row, min falls out
		{9, false, []int64{9, 7, 6}},
	}
	for i, s := range steps {
		if got := r.Offer(0, s.v); got != s.prune {
			t.Fatalf("step %d: Offer(%d) prune=%v, want %v", i, s.v, got, s.prune)
		}
		for j, want := range s.want {
			if r.vals[j] != want {
				t.Fatalf("step %d: slot %d = %d, want %d (row %v)", i, j, r.vals[j], want, r.vals[:3])
			}
		}
	}
}
