package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cheetah/internal/switchsim"
)

// stubProg is a minimal program with a configurable footprint.
type stubProg struct{ prof switchsim.Profile }

func (p stubProg) Profile() switchsim.Profile               { return p.prof }
func (p stubProg) Process(vals []uint64) switchsim.Decision { return switchsim.Forward }
func (p stubProg) Reset()                                   {}

// smallModel is a switch tight enough to force queueing with a handful
// of queries: 3 reserved + 3 usable stages, no recirculation.
func smallModel() switchsim.Model {
	return switchsim.Model{
		Name:             "tiny",
		Stages:           6,
		ALUsPerStage:     4,
		SRAMPerStageBits: 1 << 20,
		TCAMEntries:      1000,
		MetadataBits:     512,
		Recirculation:    1,
	}
}

// prog returns a stub consuming `stages` full stages' worth of ALUs.
func prog(stages int) stubProg {
	return stubProg{prof: switchsim.Profile{
		Name:   "stub",
		Stages: stages,
		ALUs:   4 * stages, // all ALUs of each stage
	}}
}

func TestAdmitReleaseRoundTrip(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Admit(context.Background(), prog(2))
	if err != nil {
		t.Fatal(err)
	}
	if l.QueryID() == 0 {
		t.Fatal("lease has zero QueryID")
	}
	if u := s.Utilization(); u.ALUsUsed != 8 {
		t.Fatalf("utilization after admit = %v, want 8 ALUs", u)
	}
	if u := l.Utilization(); u.ALUsUsed != 8 {
		t.Fatalf("lease utilization snapshot = %v, want 8 ALUs", u)
	}
	l.Release()
	l.Release() // idempotent
	if u := s.Utilization(); u.ALUsUsed != 0 {
		t.Fatalf("utilization after release = %v, want empty", u)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizedBypass(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	// 4 logical stages cannot fit a 3-usable-stage switch, ever.
	_, err = s.Admit(context.Background(), prog(4))
	if !errors.Is(err, ErrNeverFits) {
		t.Fatalf("err = %v, want ErrNeverFits", err)
	}
	if st := s.Stats(); st.Oversized != 1 || st.Queued != 0 {
		t.Fatalf("oversized admission must not queue: %+v", st)
	}
}

func TestFIFOAdmissionOrder(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the switch completely.
	full, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	// Queue three waiters in order.
	type got struct {
		idx int
		l   *Lease
	}
	order := make(chan got, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := s.Admit(context.Background(), prog(3))
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- got{i, l}
			// Hold briefly so the next waiter really waited behind us.
			time.Sleep(5 * time.Millisecond)
			l.Release()
		}(i)
		// Give goroutine i time to join the queue before i+1 does, so
		// the FIFO order under test is the launch order.
		for {
			if s.Stats().Queued > i {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	full.Release()
	wg.Wait()
	close(order)
	want := 0
	for g := range order {
		if g.idx != want {
			t.Fatalf("admission order: got waiter %d before waiter %d", g.idx, want)
		}
		want++
	}
}

func TestQueueLimitSheds(t *testing.T) {
	s, err := New(Options{Model: smallModel(), QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Release()
	errCh := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, err := s.Admit(ctx, prog(1)) // occupies the single queue slot
		errCh <- err
	}()
	for s.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Admit(context.Background(), prog(1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	full.Release()
	if l, err := <-errCh, error(nil); l != err {
		t.Fatalf("queued admission failed: %v", l)
	}
}

func TestAdmitContextCancel(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, prog(1))
		errCh <- err
	}()
	for s.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Queued != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	full.Release()
	// The switch must be fully usable afterwards.
	l, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
}

func TestCloseFailsWaiters(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Admit(context.Background(), prog(1))
		errCh <- err
	}()
	for s.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued admission after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.Admit(context.Background(), prog(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("new admission after Close: err = %v, want ErrClosed", err)
	}
	full.Release() // releasing an active lease after Close must not panic
}

// TestAdmissionChurnProperty is the churn property test: random
// interleavings of concurrent Admit/Release must (1) never hand out a
// QueryID already held by a live lease, (2) never exceed the model's
// stage budgets, and (3) always drain the wait queue — no stuck
// waiters, an empty switch — once every client is done.
func TestAdmissionChurnProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		s, err := New(Options{Model: smallModel()})
		if err != nil {
			t.Fatal(err)
		}
		model := s.Model()
		aluCap := (model.Stages - switchsim.ReservedStages) * model.ALUsPerStage

		var mu sync.Mutex
		held := make(map[uint32]bool)

		const clients = 8
		const iters = 40
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed<<8 | int64(c)))
				for i := 0; i < iters; i++ {
					// 1–4 stages: mostly admissible, sometimes oversized
					// (4 stages never fits), occasionally instant-fit.
					st := 1 + rng.Intn(4)
					l, err := s.Admit(context.Background(), prog(st))
					if err != nil {
						if st >= 4 && errors.Is(err, ErrNeverFits) {
							continue // expected bypass
						}
						t.Errorf("client %d iter %d (stages=%d): %v", c, i, st, err)
						return
					}
					mu.Lock()
					if held[l.QueryID()] {
						t.Errorf("QueryID %d double-installed", l.QueryID())
					}
					held[l.QueryID()] = true
					mu.Unlock()
					if u := s.Utilization(); u.ALUsUsed > aluCap || u.StagesUsed > u.StagesTotal {
						t.Errorf("stage budget exceeded: %v", u)
					}
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
					mu.Lock()
					delete(held, l.QueryID())
					mu.Unlock()
					l.Release()
				}
			}(c)
		}
		wg.Wait()
		st := s.Stats()
		if st.Queued != 0 || st.Active != 0 {
			t.Fatalf("seed %d: queue not drained: %+v", seed, st)
		}
		if u := s.Utilization(); u.ALUsUsed != 0 || u.SRAMBitsUsed != 0 || u.StagesUsed != 0 {
			t.Fatalf("seed %d: switch not empty after churn: %v", seed, u)
		}
	}
}
