package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"cheetah/internal/stats"
)

// admitAsync queues one AdmitQoS call and returns its outcome channel.
func admitAsync(s *Server, p stubProg, qos QoS) chan admitResult {
	out := make(chan admitResult, 1)
	go func() {
		l, err := s.AdmitQoS(context.Background(), p, qos)
		out <- admitResult{lease: l, err: err}
	}()
	return out
}

// waitQueued polls until the server reports n queued waiters.
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (stats %+v)", n, s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPriorityAdmissionOrder: a higher-priority waiter that arrived
// later admits first; FIFO holds within a priority level.
func TestPriorityAdmissionOrder(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	hold, err := s.Admit(context.Background(), prog(3)) // fills the switch
	if err != nil {
		t.Fatal(err)
	}
	loA := admitAsync(s, prog(3), QoS{Priority: 0})
	waitQueued(t, s, 1)
	loB := admitAsync(s, prog(3), QoS{Priority: 0})
	waitQueued(t, s, 2)
	hi := admitAsync(s, prog(3), QoS{Priority: 1})
	waitQueued(t, s, 3)

	next := func(c chan admitResult) *Lease {
		t.Helper()
		r := <-c
		if r.err != nil {
			t.Fatalf("queued admission failed: %v", r.err)
		}
		return r.lease
	}
	hold.Release()
	l := next(hi) // priority 1 overtakes both earlier priority-0 waiters
	select {
	case r := <-loA:
		t.Fatalf("priority-0 waiter admitted before priority-1: %+v", r)
	default:
	}
	l.Release()
	next(loA).Release() // then FIFO within priority 0
	next(loB).Release()
}

// TestTryAdmitRespectsQueuePriority: TryAdmit never overtakes an equal-
// or higher-priority waiter, but a strictly higher-priority TryAdmit
// may pass a lower-priority queue.
func TestTryAdmitRespectsQueuePriority(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	hold, err := s.Admit(context.Background(), prog(2))
	if err != nil {
		t.Fatal(err)
	}
	pending := admitAsync(s, prog(3), QoS{Priority: 1}) // needs the whole switch
	waitQueued(t, s, 1)
	// Equal priority must not jump the queue even though 1 stage fits.
	if _, err := s.TryAdmitQoS(prog(1), QoS{Priority: 1}); !errors.Is(err, ErrBusy) {
		t.Fatalf("equal-priority TryAdmit err = %v, want ErrBusy", err)
	}
	// Strictly higher priority may.
	l, err := s.TryAdmitQoS(prog(1), QoS{Priority: 2})
	if err != nil {
		t.Fatalf("higher-priority TryAdmit: %v", err)
	}
	l.Release()
	hold.Release()
	if r := <-pending; r.err != nil {
		t.Fatal(r.err)
	} else {
		r.lease.Release()
	}
}

// TestTenantQuota: a tenant at its quota queues without blocking other
// tenants, and unblocks when its own lease releases.
func TestTenantQuota(t *testing.T) {
	s, err := New(Options{Model: smallModel(), TenantQuota: 1})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := s.AdmitQoS(context.Background(), prog(1), QoS{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a is at quota: its next admission queues even with stages
	// free…
	a2 := admitAsync(s, prog(1), QoS{Tenant: "a"})
	waitQueued(t, s, 1)
	if _, err := s.TryAdmitQoS(prog(1), QoS{Tenant: "a"}); !errors.Is(err, ErrBusy) {
		t.Fatalf("at-quota TryAdmit err = %v, want ErrBusy", err)
	}
	// …while tenant b sails past the quota-blocked waiter.
	b1, err := s.TryAdmitQoS(prog(1), QoS{Tenant: "b"})
	if err != nil {
		t.Fatalf("tenant b blocked by tenant a's quota: %v", err)
	}
	a1.Release() // frees a's quota slot → the queued a admission runs
	r := <-a2
	if r.err != nil {
		t.Fatal(r.err)
	}
	if got := r.lease.Tenant(); got != "a" {
		t.Fatalf("lease tenant = %q", got)
	}
	r.lease.Release()
	b1.Release()
	if st := s.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestDeadlineSheds: a queued admission whose deadline passes fails
// with ErrDeadline, leaves the queue, and is counted.
func TestDeadlineSheds(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	hold, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.AdmitQoS(context.Background(), prog(3), QoS{
		Tenant: "t", Deadline: time.Now().Add(20 * time.Millisecond),
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	st := s.Stats()
	if st.DeadlineMissed != 1 || st.Queued != 0 {
		t.Fatalf("stats after deadline shed: %+v", st)
	}
	hold.Release()
	if st := s.Stats(); st.Active != 0 {
		t.Fatalf("active after release: %+v", st)
	}
}

// TestFailRevokesAndRestoreRecovers is the switch-death lifecycle:
// Fail revokes active leases (their handles turn ErrFailed but stay
// safe to use), sheds waiters, rejects new admissions; Restore brings
// admission back; releasing a pre-failure lease after Restore is a
// harmless no-op that cannot disturb post-restore leases.
func TestFailRevokesAndRestoreRecovers(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	waiting := admitAsync(s, prog(1), QoS{})
	waitQueued(t, s, 1)

	s.Fail()
	if r := <-waiting; !errors.Is(r.err, ErrFailed) {
		t.Fatalf("queued waiter err = %v, want ErrFailed", r.err)
	}
	if err := l1.Err(); !errors.Is(err, ErrFailed) {
		t.Fatalf("revoked lease Err = %v, want ErrFailed", err)
	}
	if _, err := s.Admit(context.Background(), prog(1)); !errors.Is(err, ErrFailed) {
		t.Fatalf("admission on failed switch err = %v, want ErrFailed", err)
	}
	st := s.Stats()
	if st.Revoked != 1 || st.Shed != 1 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats after failure: %+v", st)
	}

	if err := s.Restore(); err != nil {
		t.Fatal(err)
	}
	l2, err := s.Admit(context.Background(), prog(3))
	if err != nil {
		t.Fatalf("admission after restore: %v", err)
	}
	// The pre-failure lease may share l2's recycled flow id; releasing
	// it must not panic and must not free l2's program.
	l1.Release()
	if u := s.Utilization(); u.ALUsUsed == 0 {
		t.Fatal("stale release freed the post-restore lease's program")
	}
	if err := l2.Err(); err != nil {
		t.Fatalf("post-restore lease Err = %v", err)
	}
	l2.Release()
	if u := s.Utilization(); u.ALUsUsed != 0 {
		t.Fatalf("utilization after drain = %v", u)
	}
}

// TestReleaseAfterCloseIsIdempotent pins the satellite fix: releasing a
// lease on a closed (or failed-then-closed) server must be a safe
// no-op, however many times it runs.
func TestReleaseAfterCloseIsIdempotent(t *testing.T) {
	s, err := New(Options{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Admit(context.Background(), prog(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	l.Release()
	l.Release()
	s.Fail() // failing a closed server must not panic either
	l.Release()
	if st := s.Stats(); st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMetricsLabels: counters flow into the shared registry labeled by
// switch and tenant.
func TestMetricsLabels(t *testing.T) {
	reg := stats.NewRegistry()
	s, err := New(Options{Model: smallModel(), Metrics: reg, Label: "3"})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.AdmitQoS(context.Background(), prog(1), QoS{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	s.NoteFailedOver("acme")
	s.NoteReplaced("")
	if got := reg.Total("admitted"); got != 1 {
		t.Fatalf("admitted total = %d, want 1", got)
	}
	if got := reg.Total("failed_over"); got != 1 {
		t.Fatalf("failed_over total = %d, want 1", got)
	}
	if got := reg.Total("replaced"); got != 1 {
		t.Fatalf("replaced total = %d, want 1", got)
	}
	var sawTenant, sawSwitch bool
	for _, series := range reg.Snapshot() {
		if strings.Contains(series.Name, "tenant=acme") {
			sawTenant = true
		}
		if strings.Contains(series.Name, "switch=3") {
			sawSwitch = true
		}
	}
	if !sawTenant || !sawSwitch {
		t.Fatalf("series missing labels (tenant=%v switch=%v): %v", sawTenant, sawSwitch, reg.Snapshot())
	}
}
