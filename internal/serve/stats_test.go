package serve

import (
	"context"
	"errors"
	"testing"
)

// TestStatsLifecycle pins Server.Stats through a full admission
// lifecycle: active leases, queue depth and shed/oversized counts are
// what stream placement and the benches report as switch occupancy.
func TestStatsLifecycle(t *testing.T) {
	s, err := New(Options{Model: smallModel(), QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Fill the switch: 3 usable stages → one 3-stage program.
	l1, err := s.Admit(ctx, prog(3))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Active != 1 || st.Admitted != 1 || st.Queued != 0 {
		t.Fatalf("after admit: %+v", st)
	}

	// A second admission queues (FIFO); queue depth shows it.
	got := make(chan *Lease, 1)
	go func() {
		l, err := s.Admit(ctx, prog(3))
		if err != nil {
			t.Error(err)
		}
		got <- l
	}()
	for s.Stats().Queued == 0 {
	}
	if st := s.Stats(); st.Queued != 1 || st.Waited != 1 {
		t.Fatalf("while queued: %+v", st)
	}

	// The queue is at its cap: the next admission sheds.
	if _, err := s.Admit(ctx, prog(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected shed, got %v", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("after shed: %+v", st)
	}

	// A program the model can never host counts as oversized, not shed.
	if _, err := s.Admit(ctx, prog(64)); !errors.Is(err, ErrNeverFits) {
		t.Fatalf("expected oversized rejection, got %v", err)
	}
	if st := s.Stats(); st.Oversized != 1 {
		t.Fatalf("after oversized: %+v", st)
	}

	// Releasing drains the queue; counters settle.
	l1.Release()
	l2 := <-got
	st := s.Stats()
	if st.Active != 1 || st.Queued != 0 || st.Admitted != 2 {
		t.Fatalf("after drain: %+v", st)
	}
	l2.Release()
	if st := s.Stats(); st.Active != 0 {
		t.Fatalf("after final release: %+v", st)
	}

	// Counters aggregate across switches via Add (the fabric and the
	// streaming handle's occupancy reports).
	var total Counters
	total.Add(s.Stats())
	total.Add(s.Stats())
	if want := s.Stats(); total.Admitted != 2*want.Admitted || total.Shed != 2*want.Shed ||
		total.Oversized != 2*want.Oversized || total.Waited != 2*want.Waited {
		t.Fatalf("aggregated counters = %+v, singles = %+v", total, want)
	}
}
