// Package serve is Cheetah's concurrent serving layer: one switch, many
// queries. The paper's §5 multiplexes concurrent queries on a single
// pipeline by carrying a query id in the Cheetah header and giving each
// admitted query its own register partition; this package reproduces
// that control plane. A Server owns one shared switchsim.Pipeline and
// admits pruning programs on behalf of many concurrent clients: each
// admitted query gets a fresh QueryID (flow id), its program is packed
// into the shared pipeline via the usual CanInstall/Install admission
// arithmetic, and a Lease hands the execution a flow-scoped dataplane
// handle — the query never owns the pipeline, it owns a flow.
//
// When the pipeline is full, admissions wait in FIFO order and are
// re-admitted as completing queries release their resources. Two kinds
// of requests never wait: programs that cannot fit even an empty switch
// (ErrNeverFits — the caller's cue to fall back to exact direct
// execution), and requests arriving at a full wait queue when a queue
// limit is set (ErrQueueFull — shed load instead of building an
// unbounded backlog).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cheetah/internal/switchsim"
)

// ErrNeverFits marks a program whose profile exceeds the switch model
// itself: no amount of waiting frees enough resources, so admission
// fails immediately (the oversized-query bypass). Callers should run the
// query without pruning instead.
var ErrNeverFits = errors.New("serve: program cannot fit the switch model even when idle")

// ErrQueueFull is returned when Options.QueueLimit is set and the wait
// queue is at capacity.
var ErrQueueFull = errors.New("serve: admission wait queue is full")

// ErrClosed is returned for admissions against a closed server.
var ErrClosed = errors.New("serve: server is closed")

// ErrBusy is returned by TryAdmit when the program fits the model but
// not the pipeline's current occupancy (or other admissions are already
// queued) — the caller's cue to try another switch or fall back to the
// blocking Admit.
var ErrBusy = errors.New("serve: pipeline is busy")

// Options configures a Server.
type Options struct {
	// Model is the switch hardware the shared pipeline simulates. The
	// zero value selects switchsim.Tofino().
	Model switchsim.Model
	// QueueLimit caps the admission wait queue; 0 means unbounded.
	// Admissions beyond the cap fail fast with ErrQueueFull.
	QueueLimit int
}

// Counters are cumulative serving statistics, read via Server.Stats.
type Counters struct {
	Admitted  uint64 // leases granted (immediate + after waiting)
	Waited    uint64 // admissions that had to queue first
	Oversized uint64 // ErrNeverFits rejections (direct-execution bypass)
	Shed      uint64 // ErrQueueFull rejections
	Active    int    // leases currently held
	Queued    int    // admissions currently waiting
}

// Add accumulates o into c — the fabric-wide aggregation. Lives next to
// the struct so a new counter field is summed the day it is added.
func (c *Counters) Add(o Counters) {
	c.Admitted += o.Admitted
	c.Waited += o.Waited
	c.Oversized += o.Oversized
	c.Shed += o.Shed
	c.Active += o.Active
	c.Queued += o.Queued
}

// waiter is one queued admission.
type waiter struct {
	prog  switchsim.Program
	ready chan *Lease // buffered; receives the lease on admission
}

// Server owns a shared pipeline and serializes admission to it. All
// methods are safe for concurrent use.
type Server struct {
	pipe *switchsim.Pipeline

	mu       sync.Mutex
	nextFlow uint32
	active   map[uint32]*Lease
	waiters  []*waiter
	queueCap int
	closed   bool
	counters Counters
}

// New creates a serving layer over a fresh pipeline for opts.Model.
func New(opts Options) (*Server, error) {
	if opts.Model.Stages == 0 {
		opts.Model = switchsim.Tofino()
	}
	pl, err := switchsim.NewPipeline(opts.Model)
	if err != nil {
		return nil, err
	}
	if opts.QueueLimit < 0 {
		opts.QueueLimit = 0
	}
	return &Server{
		pipe:     pl,
		nextFlow: 1,
		active:   make(map[uint32]*Lease),
		queueCap: opts.QueueLimit,
	}, nil
}

// Model returns the shared pipeline's hardware model.
func (s *Server) Model() switchsim.Model { return s.pipe.Model() }

// Utilization reports the shared pipeline's current occupancy.
func (s *Server) Utilization() switchsim.Utilization { return s.pipe.Utilization() }

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters
	c.Active = len(s.active)
	c.Queued = len(s.waiters)
	return c
}

// Admit installs prog into the shared pipeline under a fresh QueryID and
// returns the lease. When the pipeline is too busy, the call waits in
// FIFO order until completing queries free enough resources or ctx is
// done. Programs too large for the model itself fail immediately with
// ErrNeverFits; when a queue limit is configured, admissions beyond it
// fail with ErrQueueFull.
func (s *Server) Admit(ctx context.Context, prog switchsim.Program) (*Lease, error) {
	if err := validateProgram(prog); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if err := s.admitPrologueLocked(prog); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// FIFO fairness: only admit immediately when nobody is waiting.
	if len(s.waiters) == 0 {
		if l, err := s.installLocked(prog); err == nil {
			s.mu.Unlock()
			return l, nil
		}
	}
	if s.queueCap > 0 && len(s.waiters) >= s.queueCap {
		s.counters.Shed++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{prog: prog, ready: make(chan *Lease, 1)}
	s.waiters = append(s.waiters, w)
	s.counters.Waited++
	s.mu.Unlock()

	select {
	case l := <-w.ready:
		if l == nil {
			return nil, ErrClosed
		}
		return l, nil
	case <-ctx.Done():
		s.mu.Lock()
		removed := s.removeWaiterLocked(w)
		s.mu.Unlock()
		if !removed {
			// Admission raced the cancellation: the lease was (or is
			// being) delivered. Take it and give the resources back.
			if l := <-w.ready; l != nil {
				l.Release()
			}
		}
		return nil, ctx.Err()
	}
}

// validateProgram is the admission pre-flight shared by Admit and
// TryAdmit: a present program with a well-formed profile.
func validateProgram(prog switchsim.Program) error {
	if prog == nil {
		return fmt.Errorf("serve: admission needs a program")
	}
	return prog.Profile().Validate()
}

// admitPrologueLocked is the shared admission gate: a closed server
// rejects everything, and a program the model can never host must not
// occupy a queue slot it can never leave successfully (the oversized
// bypass, counted once per rejection). Callers hold s.mu.
func (s *Server) admitPrologueLocked(prog switchsim.Program) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.pipe.Model().Admits(prog.Profile()); err != nil {
		s.counters.Oversized++
		return fmt.Errorf("%w: %v", ErrNeverFits, err)
	}
	return nil
}

// TryAdmit is the non-blocking admission used by fabric placement: it
// grants a lease only when the program can be installed right now.
// Queued waiters keep FIFO priority — TryAdmit never jumps the queue.
// It fails with ErrNeverFits for programs the model can never host,
// ErrClosed on a closed server, and ErrBusy when admission would have
// to wait.
func (s *Server) TryAdmit(prog switchsim.Program) (*Lease, error) {
	if err := validateProgram(prog); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitPrologueLocked(prog); err != nil {
		return nil, err
	}
	if len(s.waiters) > 0 {
		return nil, ErrBusy
	}
	l, err := s.installLocked(prog)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBusy, err)
	}
	return l, nil
}

// installLocked packs prog into the pipeline under a fresh flow id and
// records the lease. Callers hold s.mu.
func (s *Server) installLocked(prog switchsim.Program) (*Lease, error) {
	flowID := s.nextFlow
	for {
		if _, taken := s.active[flowID]; !taken && flowID != 0 {
			break
		}
		flowID++
	}
	if err := s.pipe.Install(flowID, prog); err != nil {
		return nil, err
	}
	s.nextFlow = flowID + 1
	l := &Lease{s: s, flowID: flowID, prog: prog, util: s.pipe.Utilization()}
	s.active[flowID] = l
	s.counters.Admitted++
	return l, nil
}

// removeWaiterLocked drops w from the queue, reporting whether it was
// still queued. Callers hold s.mu.
func (s *Server) removeWaiterLocked(w *waiter) bool {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// release uninstalls a lease's program and re-admits waiters.
func (s *Server) release(l *Lease) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.active[l.flowID]; !ok {
		return
	}
	// Uninstall only needs the lease's own traffic to have stopped, and
	// it has: a lease is released by the query's execution goroutine
	// after its last batch. Other flows' in-flight batches are untouched
	// — they run on their own programs, looked up before this point.
	if err := s.pipe.Uninstall(l.flowID); err != nil {
		// The lease is the only installer for its flow id; failure here
		// means the invariant broke, which the churn tests guard.
		panic(fmt.Sprintf("serve: uninstall flow %d: %v", l.flowID, err))
	}
	delete(s.active, l.flowID)
	s.admitWaitersLocked()
}

// admitWaitersLocked grants leases from the head of the FIFO queue while
// the head fits. Strict head-of-line: a large query at the head blocks
// smaller ones behind it from jumping ahead, so no query starves.
// Callers hold s.mu.
func (s *Server) admitWaitersLocked() {
	for len(s.waiters) > 0 {
		head := s.waiters[0]
		l, err := s.installLocked(head.prog)
		if err != nil {
			return
		}
		s.waiters = s.waiters[1:]
		head.ready <- l
	}
}

// Close fails all queued admissions and future Admit calls with
// ErrClosed. Active leases stay valid; their Release still works.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, w := range s.waiters {
		w.ready <- nil
	}
	s.waiters = nil
}

// Lease is one admitted query's hold on the shared pipeline: its
// QueryID, its installed program, and the flow-scoped dataplane handle
// the batched engine executes through. Release returns the resources
// and wakes queued admissions; it is idempotent.
type Lease struct {
	s      *Server
	flowID uint32
	prog   switchsim.Program
	util   switchsim.Utilization
	once   sync.Once
}

// QueryID returns the flow id the serving layer assigned this query —
// the value the Cheetah header would carry to select the query's
// register partition (§5).
func (l *Lease) QueryID() uint32 { return l.flowID }

// Program returns the installed program, for control-plane operations
// (probe switchover, end-of-stream drains) that address the program
// directly.
func (l *Lease) Program() switchsim.Program { return l.prog }

// Utilization returns the shared pipeline's occupancy snapshot taken at
// this query's admission — the per-query utilization surfaced in
// execution reports.
func (l *Lease) Utilization() switchsim.Utilization { return l.util }

// ProcessBatch routes one batch through the shared pipeline under the
// lease's QueryID. It implements engine.BatchDataplane.
func (l *Lease) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	l.s.pipe.ProcessBatch(l.flowID, b, decisions)
}

// Release uninstalls the program and re-admits queued waiters.
func (l *Lease) Release() {
	l.once.Do(func() { l.s.release(l) })
}
