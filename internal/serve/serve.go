// Package serve is Cheetah's concurrent serving layer: one switch, many
// queries. The paper's §5 multiplexes concurrent queries on a single
// pipeline by carrying a query id in the Cheetah header and giving each
// admitted query its own register partition; this package reproduces
// that control plane. A Server owns one shared switchsim.Pipeline and
// admits pruning programs on behalf of many concurrent clients: each
// admitted query gets a fresh QueryID (flow id), its program is packed
// into the shared pipeline via the usual CanInstall/Install admission
// arithmetic, and a Lease hands the execution a flow-scoped dataplane
// handle — the query never owns the pipeline, it owns a flow.
//
// When the pipeline is full, admissions wait in a priority queue (FIFO
// within a priority level) and are re-admitted as completing queries
// release their resources. Three kinds of requests never wait: programs
// that cannot fit even an empty switch (ErrNeverFits — the caller's cue
// to fall back to exact direct execution), requests arriving at a full
// wait queue when a queue limit is set (ErrQueueFull — shed load
// instead of building an unbounded backlog), and requests whose QoS
// deadline passes while queued (ErrDeadline). Per-tenant quotas bound
// any one tenant's concurrently active leases without letting a
// quota-blocked request stall other tenants' admissions.
//
// The server also models the switch's failure lifecycle (§7.2): Fail
// marks the switch dead — active leases are revoked (their Release
// becomes a no-op), queued admissions fail with ErrFailed, and the dead
// pipeline forwards all traffic unpruned, which is exactly what keeps
// the master's completion exact. Restore brings the switch back with a
// fresh, empty pipeline: revoked leases stay revoked, and their
// standing programs must be re-admitted (with state rebuilt by the
// owner — the switch's registers did not survive).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cheetah/internal/stats"
	"cheetah/internal/switchsim"
)

// ErrNeverFits marks a program whose profile exceeds the switch model
// itself: no amount of waiting frees enough resources, so admission
// fails immediately (the oversized-query bypass). Callers should run the
// query without pruning instead.
var ErrNeverFits = errors.New("serve: program cannot fit the switch model even when idle")

// ErrQueueFull is returned when Options.QueueLimit is set and the wait
// queue is at capacity.
var ErrQueueFull = errors.New("serve: admission wait queue is full")

// ErrClosed is returned for admissions against a closed server.
var ErrClosed = errors.New("serve: server is closed")

// ErrBusy is returned by TryAdmit when the program fits the model but
// not the pipeline's current occupancy (or other admissions are already
// queued) — the caller's cue to try another switch or fall back to the
// blocking Admit.
var ErrBusy = errors.New("serve: pipeline is busy")

// ErrFailed is returned for admissions against a failed switch and by
// Lease.Err once a lease has been revoked by switch failure. Like
// ErrNeverFits it is a direct-execution cue: the servers are the
// exactness backstop when the switch dies (§7.2).
var ErrFailed = errors.New("serve: switch has failed")

// ErrDeadline is returned when a queued admission's QoS deadline passes
// before resources free up — deadline-based shedding.
var ErrDeadline = errors.New("serve: admission deadline exceeded")

// Options configures a Server.
type Options struct {
	// Model is the switch hardware the shared pipeline simulates. The
	// zero value selects switchsim.Tofino().
	Model switchsim.Model
	// QueueLimit caps the admission wait queue; 0 means unbounded.
	// Admissions beyond the cap fail fast with ErrQueueFull.
	QueueLimit int
	// TenantQuota caps any one tenant's concurrently active leases on
	// this switch; 0 means unlimited. Quota-blocked admissions queue
	// without stalling other tenants.
	TenantQuota int
	// Metrics, when non-nil, receives the per-switch/per-tenant
	// operational counters (admitted/shed/revoked/deadline_missed/
	// failed_over/replaced), labeled with Label.
	Metrics *stats.Registry
	// Label names this switch in Metrics series (e.g. its fabric index).
	Label string
}

// QoS is one admission's quality-of-service envelope.
type QoS struct {
	// Tenant attributes the admission for quota accounting and metrics.
	Tenant string
	// Priority orders the wait queue: higher admits first, FIFO within a
	// level. The default 0 reproduces plain FIFO.
	Priority int
	// Deadline, when non-zero, sheds the admission with ErrDeadline if
	// it is still queued at that instant.
	Deadline time.Time
}

// Counters are cumulative serving statistics, read via Server.Stats.
type Counters struct {
	Admitted       uint64 // leases granted (immediate + after waiting)
	Waited         uint64 // admissions that had to queue first
	Oversized      uint64 // ErrNeverFits rejections (direct-execution bypass)
	Shed           uint64 // ErrQueueFull rejections + waiters failed by switch death
	Revoked        uint64 // leases revoked by switch failure
	FailedOver     uint64 // executions redone elsewhere after this switch failed
	Replaced       uint64 // standing programs re-admitted away from this switch
	DeadlineMissed uint64 // queued admissions shed at their QoS deadline
	Active         int    // leases currently held
	Queued         int    // admissions currently waiting
}

// Add accumulates o into c — the fabric-wide aggregation. Lives next to
// the struct so a new counter field is summed the day it is added.
func (c *Counters) Add(o Counters) {
	c.Admitted += o.Admitted
	c.Waited += o.Waited
	c.Oversized += o.Oversized
	c.Shed += o.Shed
	c.Revoked += o.Revoked
	c.FailedOver += o.FailedOver
	c.Replaced += o.Replaced
	c.DeadlineMissed += o.DeadlineMissed
	c.Active += o.Active
	c.Queued += o.Queued
}

// admitResult is a queued admission's outcome.
type admitResult struct {
	lease *Lease
	err   error
}

// waiter is one queued admission.
type waiter struct {
	prog  switchsim.Program
	qos   QoS
	ready chan admitResult // buffered; receives the outcome exactly once
}

// Server owns a shared pipeline and serializes admission to it. All
// methods are safe for concurrent use.
type Server struct {
	model   switchsim.Model
	metrics *stats.Registry
	label   string

	mu           sync.Mutex
	pipe         *switchsim.Pipeline // replaced wholesale by Restore
	nextFlow     uint32
	active       map[uint32]*Lease
	tenantActive map[string]int
	waiters      []*waiter
	queueCap     int
	tenantQuota  int
	closed       bool
	failed       bool
	counters     Counters
}

// New creates a serving layer over a fresh pipeline for opts.Model.
func New(opts Options) (*Server, error) {
	if opts.Model.Stages == 0 {
		opts.Model = switchsim.Tofino()
	}
	pl, err := switchsim.NewPipeline(opts.Model)
	if err != nil {
		return nil, err
	}
	if opts.QueueLimit < 0 {
		opts.QueueLimit = 0
	}
	if opts.TenantQuota < 0 {
		opts.TenantQuota = 0
	}
	return &Server{
		model:        opts.Model,
		metrics:      opts.Metrics,
		label:        opts.Label,
		pipe:         pl,
		nextFlow:     1,
		active:       make(map[uint32]*Lease),
		tenantActive: make(map[string]int),
		queueCap:     opts.QueueLimit,
		tenantQuota:  opts.TenantQuota,
	}, nil
}

// Model returns the shared pipeline's hardware model.
func (s *Server) Model() switchsim.Model { return s.model }

// Pipeline returns the current shared pipeline, for control-plane and
// chaos-harness access (arming a FaultInjector, inspecting placements).
// After Restore this is a different object than before the failure.
func (s *Server) Pipeline() *switchsim.Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipe
}

// Utilization reports the shared pipeline's current occupancy.
func (s *Server) Utilization() switchsim.Utilization {
	s.mu.Lock()
	pipe := s.pipe
	s.mu.Unlock()
	return pipe.Utilization()
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncFailureLocked()
	c := s.counters
	c.Active = len(s.active)
	c.Queued = len(s.waiters)
	return c
}

// bumpLocked increments a per-switch/per-tenant metric series. Callers
// hold s.mu (the registry takes its own lock; serve never re-enters).
func (s *Server) bumpLocked(name, tenant string) {
	if s.metrics == nil {
		return
	}
	if tenant == "" {
		tenant = "-"
	}
	s.metrics.Counter(name, "switch", s.label, "tenant", tenant).Incr(1)
}

// occupancyLocked refreshes the per-switch queue-depth and active-lease
// gauges; called after every transition that changes either. Callers
// hold s.mu.
func (s *Server) occupancyLocked() {
	if s.metrics == nil {
		return
	}
	s.metrics.Gauge("queue_depth", "switch", s.label).Set(int64(len(s.waiters)))
	s.metrics.Gauge("active_leases", "switch", s.label).Set(int64(len(s.active)))
}

// observeWait records how long one successful admission took from call
// to lease grant — immediate admissions land in the lowest bucket, so
// the histogram's upper quantiles isolate genuine queue waits.
func (s *Server) observeWait(start time.Time) {
	if s.metrics == nil {
		return
	}
	s.metrics.Histogram("admission_wait", "switch", s.label).Observe(time.Since(start).Nanoseconds())
}

// Admit installs prog into the shared pipeline under a fresh QueryID
// with default QoS. See AdmitQoS.
func (s *Server) Admit(ctx context.Context, prog switchsim.Program) (*Lease, error) {
	return s.AdmitQoS(ctx, prog, QoS{})
}

// AdmitQoS installs prog into the shared pipeline under a fresh QueryID
// and returns the lease. When the pipeline is too busy, the call waits
// in the priority queue (higher qos.Priority first, FIFO within a
// level) until completing queries free enough resources, ctx is done,
// or qos.Deadline passes (ErrDeadline). Programs too large for the
// model itself fail immediately with ErrNeverFits; when a queue limit
// is configured, admissions beyond it fail with ErrQueueFull; a failed
// switch rejects everything with ErrFailed.
func (s *Server) AdmitQoS(ctx context.Context, prog switchsim.Program, qos QoS) (*Lease, error) {
	if err := validateProgram(prog); err != nil {
		return nil, err
	}
	start := time.Now()
	s.mu.Lock()
	if err := s.admitPrologueLocked(prog); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// Queue fairness: admit immediately only when no eligible waiter of
	// equal or higher priority would be overtaken, and the tenant is
	// under quota.
	if !s.blockedByQueueLocked(qos.Priority) && !s.tenantAtQuotaLocked(qos.Tenant) {
		if l, err := s.installLocked(prog, qos.Tenant); err == nil {
			s.mu.Unlock()
			s.observeWait(start)
			return l, nil
		}
	}
	if s.queueCap > 0 && len(s.waiters) >= s.queueCap {
		s.counters.Shed++
		s.bumpLocked("shed", qos.Tenant)
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{prog: prog, qos: qos, ready: make(chan admitResult, 1)}
	s.waiters = append(s.waiters, w)
	s.counters.Waited++
	s.occupancyLocked()
	s.mu.Unlock()

	var deadline <-chan time.Time
	if !qos.Deadline.IsZero() {
		t := time.NewTimer(time.Until(qos.Deadline))
		defer t.Stop()
		deadline = t.C
	}
	select {
	case r := <-w.ready:
		if r.err == nil {
			s.observeWait(start)
		}
		return r.lease, r.err
	case <-deadline:
		s.mu.Lock()
		removed := s.removeWaiterLocked(w)
		if removed {
			s.counters.DeadlineMissed++
			s.bumpLocked("deadline_missed", qos.Tenant)
		}
		s.mu.Unlock()
		if !removed {
			// Admission raced the deadline: the outcome was (or is being)
			// delivered — take it, the resources are already committed.
			r := <-w.ready
			return r.lease, r.err
		}
		return nil, ErrDeadline
	case <-ctx.Done():
		s.mu.Lock()
		removed := s.removeWaiterLocked(w)
		s.mu.Unlock()
		if !removed {
			// Admission raced the cancellation: the lease was (or is
			// being) delivered. Take it and give the resources back.
			if r := <-w.ready; r.err == nil {
				r.lease.Release()
			}
		}
		return nil, ctx.Err()
	}
}

// validateProgram is the admission pre-flight shared by Admit and
// TryAdmit: a present program with a well-formed profile.
func validateProgram(prog switchsim.Program) error {
	if prog == nil {
		return fmt.Errorf("serve: admission needs a program")
	}
	return prog.Profile().Validate()
}

// syncFailureLocked promotes an injector-initiated pipeline death to
// server-level failure: the serving layer may learn of the dead switch
// lazily, but every control-plane path observes a consistent state —
// leases revoked, waiters failed. Callers hold s.mu.
func (s *Server) syncFailureLocked() {
	if !s.failed && !s.closed && s.pipe.Failed() {
		s.failLocked()
	}
}

// admitPrologueLocked is the shared admission gate: a closed server
// rejects everything, a failed switch rejects with the direct-execution
// cue, and a program the model can never host must not occupy a queue
// slot it can never leave successfully (the oversized bypass, counted
// once per rejection). Callers hold s.mu.
func (s *Server) admitPrologueLocked(prog switchsim.Program) error {
	s.syncFailureLocked()
	if s.closed {
		return ErrClosed
	}
	if s.failed {
		return ErrFailed
	}
	if err := s.model.Admits(prog.Profile()); err != nil {
		s.counters.Oversized++
		return fmt.Errorf("%w: %v", ErrNeverFits, err)
	}
	return nil
}

// tenantAtQuotaLocked reports whether tenant holds its full quota of
// active leases. Callers hold s.mu.
func (s *Server) tenantAtQuotaLocked(tenant string) bool {
	return s.tenantQuota > 0 && s.tenantActive[tenant] >= s.tenantQuota
}

// blockedByQueueLocked reports whether an arriving admission at pri
// would overtake an eligible queued waiter of equal or higher priority
// (quota-blocked waiters are not overtakable — they are not runnable).
// Callers hold s.mu.
func (s *Server) blockedByQueueLocked(pri int) bool {
	for _, w := range s.waiters {
		if w.qos.Priority >= pri && !s.tenantAtQuotaLocked(w.qos.Tenant) {
			return true
		}
	}
	return false
}

// TryAdmit is the non-blocking admission used by fabric placement, with
// default QoS. See TryAdmitQoS.
func (s *Server) TryAdmit(prog switchsim.Program) (*Lease, error) {
	return s.TryAdmitQoS(prog, QoS{})
}

// TryAdmitQoS grants a lease only when the program can be installed
// right now. Queued waiters of equal or higher priority keep their
// place — TryAdmitQoS never jumps that part of the queue. It fails with
// ErrNeverFits for programs the model can never host, ErrClosed on a
// closed server, ErrFailed on a failed switch, and ErrBusy when
// admission would have to wait (including tenant-quota exhaustion).
func (s *Server) TryAdmitQoS(prog switchsim.Program, qos QoS) (*Lease, error) {
	if err := validateProgram(prog); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitPrologueLocked(prog); err != nil {
		return nil, err
	}
	if s.blockedByQueueLocked(qos.Priority) {
		return nil, ErrBusy
	}
	if s.tenantAtQuotaLocked(qos.Tenant) {
		return nil, fmt.Errorf("%w: tenant %q at quota (%d active)", ErrBusy, qos.Tenant, s.tenantQuota)
	}
	l, err := s.installLocked(prog, qos.Tenant)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBusy, err)
	}
	return l, nil
}

// installLocked packs prog into the pipeline under a fresh flow id and
// records the lease. Callers hold s.mu.
func (s *Server) installLocked(prog switchsim.Program, tenant string) (*Lease, error) {
	flowID := s.nextFlow
	for {
		if _, taken := s.active[flowID]; !taken && flowID != 0 {
			break
		}
		flowID++
	}
	if err := s.pipe.Install(flowID, prog); err != nil {
		return nil, err
	}
	s.nextFlow = flowID + 1
	l := &Lease{s: s, pipe: s.pipe, flowID: flowID, prog: prog, tenant: tenant, util: s.pipe.Utilization()}
	s.active[flowID] = l
	s.tenantActive[tenant]++
	s.counters.Admitted++
	s.bumpLocked("admitted", tenant)
	s.occupancyLocked()
	return l, nil
}

// removeWaiterLocked drops w from the queue, reporting whether it was
// still queued. Callers hold s.mu.
func (s *Server) removeWaiterLocked(w *waiter) bool {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			s.occupancyLocked()
			return true
		}
	}
	return false
}

// release uninstalls a lease's program and re-admits waiters. Releasing
// a revoked lease — or a lease whose flow id has been recycled after a
// fail/restore cycle — is a no-op: the resources it held died with the
// switch.
func (s *Server) release(l *Lease) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncFailureLocked()
	if l.revoked {
		return
	}
	if cur, ok := s.active[l.flowID]; !ok || cur != l {
		return
	}
	// Uninstall only needs the lease's own traffic to have stopped, and
	// it has: a lease is released by the query's execution goroutine
	// after its last batch. Other flows' in-flight batches are untouched
	// — they run on their own programs, looked up before this point.
	if err := l.pipe.Uninstall(l.flowID); err != nil {
		// The lease is the only installer for its flow id on a healthy
		// pipeline; failure here means the invariant broke, which the
		// churn tests guard.
		panic(fmt.Sprintf("serve: uninstall flow %d: %v", l.flowID, err))
	}
	delete(s.active, l.flowID)
	s.tenantActive[l.tenant]--
	if s.tenantActive[l.tenant] <= 0 {
		delete(s.tenantActive, l.tenant)
	}
	s.admitWaitersLocked()
	s.occupancyLocked()
}

// bestWaiterLocked returns the index of the next admittable waiter —
// highest priority, FIFO within a level, skipping tenants at quota — or
// -1. Callers hold s.mu.
func (s *Server) bestWaiterLocked() int {
	best := -1
	for i, w := range s.waiters {
		if s.tenantAtQuotaLocked(w.qos.Tenant) {
			continue
		}
		if best == -1 || w.qos.Priority > s.waiters[best].qos.Priority {
			best = i
		}
	}
	return best
}

// admitWaitersLocked grants leases in priority order while the best
// eligible waiter fits. Strict head-of-line within the eligible set: a
// large query at the effective head blocks smaller ones behind it from
// jumping ahead, so no query starves; only quota-blocked waiters are
// skipped (their unblocking event is their own tenant's release, not
// resource headroom). Callers hold s.mu.
func (s *Server) admitWaitersLocked() {
	for {
		i := s.bestWaiterLocked()
		if i < 0 {
			return
		}
		w := s.waiters[i]
		l, err := s.installLocked(w.prog, w.qos.Tenant)
		if err != nil {
			return
		}
		s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
		w.ready <- admitResult{lease: l}
	}
}

// Fail simulates this switch dying (§7.2): the pipeline is marked dead
// (all subsequent traffic forwards unpruned), every active lease is
// revoked — its Release becomes a no-op and Err reports ErrFailed — and
// every queued admission fails with ErrFailed. Idempotent.
func (s *Server) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.failLocked()
	}
}

// failLocked is Fail's body, shared with the lazy promotion of an
// injector-initiated pipeline death. Callers hold s.mu.
func (s *Server) failLocked() {
	if s.failed {
		return
	}
	s.failed = true
	s.pipe.Fail()
	for _, l := range s.active {
		l.revoked = true
		s.counters.Revoked++
		s.bumpLocked("revoked", l.tenant)
	}
	s.active = make(map[uint32]*Lease)
	s.tenantActive = make(map[string]int)
	for _, w := range s.waiters {
		s.counters.Shed++
		s.bumpLocked("shed", w.qos.Tenant)
		w.ready <- admitResult{err: ErrFailed}
	}
	s.waiters = nil
	s.occupancyLocked()
}

// Failed reports whether the switch is currently failed.
func (s *Server) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncFailureLocked()
	return s.failed
}

// Restore brings a failed switch back with a fresh, empty pipeline —
// the "reboot the switch with empty states" recovery of §3. Leases
// revoked by the failure stay revoked; standing programs must be
// re-admitted. A healthy switch restores to itself (no-op).
func (s *Server) Restore() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncFailureLocked()
	if s.closed {
		return ErrClosed
	}
	if !s.failed {
		return nil
	}
	pl, err := switchsim.NewPipeline(s.model)
	if err != nil {
		return err
	}
	s.pipe = pl
	s.failed = false
	return nil
}

// NoteFailedOver records that an execution holding a lease on this
// switch was redone elsewhere after the switch failed (counted on the
// failed switch).
func (s *Server) NoteFailedOver(tenant string) {
	s.mu.Lock()
	s.counters.FailedOver++
	s.bumpLocked("failed_over", tenant)
	s.mu.Unlock()
}

// NoteReplaced records that a standing program placed on this switch
// was re-admitted elsewhere after the switch failed (counted on the
// failed switch).
func (s *Server) NoteReplaced(tenant string) {
	s.mu.Lock()
	s.counters.Replaced++
	s.bumpLocked("replaced", tenant)
	s.mu.Unlock()
}

// Close fails all queued admissions and future Admit calls with
// ErrClosed. Active leases stay valid; their Release still works.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, w := range s.waiters {
		w.ready <- admitResult{err: ErrClosed}
	}
	s.waiters = nil
	s.occupancyLocked()
}

// Lease is one admitted query's hold on the shared pipeline: its
// QueryID, its installed program, and the flow-scoped dataplane handle
// the batched engine executes through. Release returns the resources
// and wakes queued admissions; it is idempotent, and a no-op for leases
// revoked by switch failure (the pipeline that held the program is
// gone).
type Lease struct {
	s      *Server
	pipe   *switchsim.Pipeline // the pipeline the program was installed on
	flowID uint32
	prog   switchsim.Program
	tenant string
	util   switchsim.Utilization
	once   sync.Once
	// revoked is guarded by s.mu: set when the switch fails.
	revoked bool
}

// QueryID returns the flow id the serving layer assigned this query —
// the value the Cheetah header would carry to select the query's
// register partition (§5).
func (l *Lease) QueryID() uint32 { return l.flowID }

// Program returns the installed program, for control-plane operations
// (probe switchover, end-of-stream drains) that address the program
// directly.
func (l *Lease) Program() switchsim.Program { return l.prog }

// Tenant returns the admission's QoS tenant.
func (l *Lease) Tenant() string { return l.tenant }

// Utilization returns the shared pipeline's occupancy snapshot taken at
// this query's admission — the per-query utilization surfaced in
// execution reports.
func (l *Lease) Utilization() switchsim.Utilization { return l.util }

// ProcessBatch routes one batch through the lease's pipeline under its
// QueryID. It implements engine.BatchDataplane. On a failed switch
// every entry forwards — the dataplane never lies toward wrong results,
// only toward more master work.
func (l *Lease) ProcessBatch(b *switchsim.Batch, decisions []switchsim.Decision) {
	l.pipe.ProcessBatch(l.flowID, b, decisions)
}

// FusedProgram reports whether the engine's fused loops may drive this
// lease's program directly, returning it when so and nil otherwise
// (failed switch, uninstalled flow, fault injector armed — the
// pipeline decides; see switchsim.Pipeline.FusedProgram). The lease's
// owner is the only goroutine driving its flow's traffic, so direct
// access preserves the per-flow ownership discipline, and the engine
// still runs its post-pass Err check for failover.
func (l *Lease) FusedProgram() switchsim.Program {
	return l.pipe.FusedProgram(l.flowID)
}

// Err reports the lease's health: nil while the switch holds the
// program, ErrFailed once the switch has failed (the program and its
// register state are gone, and any pass that crossed the failure must
// be redone — the engine's failover hook). It implements
// engine.HealthDataplane.
func (l *Lease) Err() error {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	l.s.syncFailureLocked()
	if l.revoked {
		return ErrFailed
	}
	return nil
}

// Release uninstalls the program and re-admits queued waiters. It is
// idempotent, and safe (a no-op) after the switch failed or the server
// closed.
func (l *Lease) Release() {
	l.once.Do(func() { l.s.release(l) })
}
