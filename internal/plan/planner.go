package plan

import (
	"fmt"
	"strings"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
)

// Mode is the execution path a plan selected.
type Mode uint8

const (
	// ModeDirect runs the query exactly on one node — the fallback when
	// no pruning program fits the switch (or none exists for the kind).
	ModeDirect Mode = iota
	// ModeCheetah runs the in-process batched pruned path.
	ModeCheetah
	// ModeCluster runs the pruned path over the simulated lossy network
	// with the §7.2 reliability protocol.
	ModeCluster
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeCheetah:
		return "cheetah"
	case ModeCluster:
		return "cluster"
	default:
		return "direct"
	}
}

// Plan is the planner's decision for one query: the execution mode, the
// chosen pruning program (for pruned modes), its Table 2 resource
// profile, and a human-readable Reason explaining the choice — including
// why a query fell back to direct execution when the switch cannot host
// it.
type Plan struct {
	Query   *engine.Query
	Mode    Mode
	Model   switchsim.Model
	Workers int
	Seed    uint64
	// Switches is the fabric width the plan was sized for: the planner
	// derives one program per switch (Profile is the per-switch demand),
	// and pruned execution scatters the query across that many pipelines.
	Switches int

	// PrunerName, Guarantee and Profile describe the admitted program;
	// they are zero-valued for ModeDirect.
	PrunerName string
	Guarantee  prune.Guarantee
	Profile    switchsim.Profile
	// Skip reports that execution will consult the table's block skip
	// index (zone maps + Blooms) to avoid reading blocks that provably
	// hold no relevant row. Set for WHERE, TOP N and JOIN plans on
	// indexed tables unless the session disables skipping; never set for
	// ModeCluster (the network transport streams whole tables). Skipping
	// is exact: results are bit-identical with it on or off.
	Skip bool
	// Reason explains the planning outcome: the parameter derivation for
	// admitted programs, the admission failure chain for fallbacks.
	Reason string

	factory func() (prune.Pruner, error)
	// probe is the instance built for admission checking; its state is
	// untouched, so the first execution consumes it instead of paying
	// the construction cost (join Bloom filters are megabytes) twice.
	mu    sync.Mutex
	probe prune.Pruner
}

// NewPruner returns an instance of the planned pruning program with
// clean switch state: the admission probe on the first call, a fresh
// build thereafter. Each execution gets its own instance, so one plan
// can run many times (and concurrently).
func (p *Plan) NewPruner() (prune.Pruner, error) {
	p.mu.Lock()
	if pr := p.probe; pr != nil {
		p.probe = nil
		p.mu.Unlock()
		return pr, nil
	}
	p.mu.Unlock()
	if p.factory == nil {
		return nil, fmt.Errorf("plan: %v plan has no pruning program", p.Mode)
	}
	return p.factory()
}

// NewShardPruners returns one program instance per fabric switch, each
// with clean state — the per-switch sizing already derived by the
// planner (per-shard Bloom filters, per-shard HAVING thresholds). Each
// instance comes from NewPruner, so the first call consumes the
// planner's state-untouched admission probe instead of paying its
// construction cost twice.
func (p *Plan) NewShardPruners() ([]prune.Pruner, error) {
	n := p.Switches
	if n <= 0 {
		n = 1
	}
	out := make([]prune.Pruner, n)
	for i := range out {
		pr, err := p.NewPruner()
		if err != nil {
			return nil, err
		}
		out[i] = pr
	}
	return out, nil
}

// String renders the plan as a one-line summary.
func (p *Plan) String() string {
	if p.Mode == ModeDirect {
		return fmt.Sprintf("plan[%s: direct — %s]", p.Query.Kind, p.Reason)
	}
	return fmt.Sprintf("plan[%s: %s via %s (%s) — %s]",
		p.Query.Kind, p.Mode, p.PrunerName, p.Guarantee, p.Reason)
}

// candidate is one pruning program the planner may pick: a constructor
// plus the parameter-derivation note that lands in Plan.Reason.
type candidate struct {
	desc string
	make func() (prune.Pruner, error)
}

// Plan inspects the query and the session's switch model, picks the
// pruning algorithm, derives its parameters from the §5 formulas and
// Table 2 defaults (sized per switch when the session runs a fabric),
// and performs pipeline admission. Queries no program can serve — or
// that exceed the model's resources in every derivable configuration —
// plan as ModeDirect with an explanatory Reason; an invalid query is an
// error, not a fallback.
func (s *Session) Plan(q *engine.Query) (*Plan, error) {
	return s.planFor(q, s.opts.Switches)
}

// planFor plans q for a fabric of the given width. The serving layer
// plans at width 1 — a served query runs whole on its placed switch —
// while Exec plans at the session's width for scatter/gather.
func (s *Session) planFor(q *engine.Query, switches int) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if switches <= 0 {
		switches = 1
	}
	p := &Plan{
		Query:    q,
		Model:    s.opts.Model,
		Workers:  s.opts.Workers,
		Seed:     s.opts.Seed,
		Switches: switches,
	}
	var rejections []string
	for _, c := range s.candidates(q, switches) {
		pruner, err := c.make()
		if err != nil {
			rejections = append(rejections, fmt.Sprintf("%s: %v", c.desc, err))
			continue
		}
		prof := pruner.Profile()
		if err := s.opts.Model.Admits(prof); err != nil {
			rejections = append(rejections, fmt.Sprintf("%s: %v", c.desc, err))
			continue
		}
		p.Mode = ModeCheetah
		p.PrunerName = pruner.Name()
		p.Guarantee = pruner.Guarantee()
		p.Profile = prof
		p.Reason = c.desc
		p.factory = c.make
		p.probe = pruner
		break
	}
	if p.Mode == ModeDirect {
		p.Reason = fmt.Sprintf("no pruning program fits %s: %s",
			s.opts.Model.Name, strings.Join(rejections, "; "))
		s.planSkip(p)
		return p, nil
	}
	if switches > 1 {
		p.Reason += fmt.Sprintf("; ×%d switches (one program per switch, two-level merge)", switches)
	}
	if s.opts.UseCluster {
		if singlePass(q.Kind) {
			p.Mode = ModeCluster
		} else {
			p.Reason += "; cluster transport supports single-pass kinds only, running in-process"
		}
	}
	s.planSkip(p)
	return p, nil
}

// planSkip decides whether the plan consults the block skip index. Only
// WHERE, TOP N and JOIN derive block-level bounds (the other kinds need
// every row's exact value); the cluster transport streams whole tables,
// so skipping stays in-process. A JOIN additionally wants an index on
// the probe (right) table — the session only indexed its own table at
// Open, so build one here on first use.
func (s *Session) planSkip(p *Plan) {
	if s.opts.DisableSkipping || p.Mode == ModeCluster {
		return
	}
	q := p.Query
	switch q.Kind {
	case engine.KindFilter, engine.KindTopN:
		if q.Table.SkipIndex() == nil && q.Table.RootOffset() == 0 {
			// Session.Plan accepts hand-built queries over tables other
			// than the session's; index them on first use too.
			_ = q.Table.BuildSkipIndex(s.opts.SkipBlockRows)
		}
		p.Skip = q.Table.SkipIndex() != nil
	case engine.KindJoin:
		if q.Right.SkipIndex() == nil && q.Right.RootOffset() == 0 {
			_ = q.Right.BuildSkipIndex(s.opts.SkipBlockRows)
		}
		p.Skip = q.Right.SkipIndex() != nil
	}
}

// singlePass reports whether the kind streams the table once — the
// shapes engine.EncodeEntries serializes and the cluster transport can
// carry (SKYLINE's end-of-stream state drain is handled by the cluster's
// control plane).
func singlePass(k engine.QueryKind) bool {
	switch k {
	case engine.KindFilter, engine.KindDistinct, engine.KindTopN,
		engine.KindGroupByMax, engine.KindSkyline:
		return true
	}
	return false
}

// candidates lists the programs that could serve the query, best first,
// sized for one switch of a `switches`-wide fabric. Orderings encode
// the paper's preferences: randomized TOP N at the jointly optimized
// (d, w) before the fixed-d legacy shape before the deterministic
// thresholds; the asymmetric join optimization when one side is much
// smaller (§4.3). Per-switch sizing: join Bloom filters shrink to the
// per-shard key cardinality, and HAVING's sketch threshold tightens to
// ⌊c/switches⌋ so the master's exact global re-check still sees every
// key whose aggregate crosses c only across shards. TOP N keeps the
// full N per switch — each shard must surface its local top N for the
// global re-check.
func (s *Session) candidates(q *engine.Query, switches int) []candidate {
	seed, delta := s.opts.Seed, s.opts.Delta
	if switches <= 0 {
		switches = 1
	}
	switch q.Kind {
	case engine.KindFilter:
		n := len(q.Predicates)
		return []candidate{{
			desc: fmt.Sprintf("truth-table filter over %d predicates", n),
			make: func() (prune.Pruner, error) { return engine.DefaultPruner(q, seed) },
		}}
	case engine.KindDistinct:
		cfg := prune.DefaultDistinctConfig(seed)
		return []candidate{{
			desc: fmt.Sprintf("distinct cache d=%d w=%d %v over %d-bit fingerprints (Table 2)",
				cfg.Rows, cfg.Cols, cfg.Policy, cfg.FingerprintBits),
			make: func() (prune.Pruner, error) { return prune.NewDistinct(cfg) },
		}}
	case engine.KindTopN:
		// A global top-N value lives in exactly one shard, so each of the
		// k independent per-switch programs gets δ/k — the union bound
		// keeps the fabric-wide miss probability within the session's δ.
		delta := delta / float64(switches)
		var cands []candidate
		if cfg, err := prune.PlannedRandTopNConfig(q.N, delta, seed); err == nil {
			cands = append(cands, candidate{
				desc: fmt.Sprintf("randomized top-n d=%d w=%d via OptimalTopNRows(N=%d, δ=%g)",
					cfg.Rows, cfg.Cols, q.N, delta),
				make: func() (prune.Pruner, error) { return prune.NewRandTopN(cfg) },
			})
		}
		// The fixed-d legacy shape is only sound while Theorem 2's
		// premise d ≥ N·e/ln(1/δ) holds; past that the deterministic
		// thresholds are the principled fallback.
		if w, err := prune.TopNColumnsFor(4096, q.N, delta); err == nil {
			legacy := prune.RandTopNConfig{N: q.N, Rows: 4096, Cols: w, Seed: seed}
			cands = append(cands, candidate{
				desc: fmt.Sprintf("randomized top-n d=%d w=%d via TopNColumnsFor(N=%d, δ=%g)",
					legacy.Rows, legacy.Cols, q.N, delta),
				make: func() (prune.Pruner, error) { return prune.NewRandTopN(legacy) },
			})
		}
		det := prune.DefaultDetTopNConfig(q.N)
		cands = append(cands, candidate{
			desc: fmt.Sprintf("deterministic top-n w=%d exponential thresholds (Table 2)", det.Thresholds),
			make: func() (prune.Pruner, error) { return prune.NewDetTopN(det) },
		})
		return cands
	case engine.KindGroupByMax:
		cfg := prune.DefaultGroupByConfig(seed)
		return []candidate{{
			desc: fmt.Sprintf("group-by rolling-max matrix d=%d w=%d (Table 2)", cfg.Rows, cfg.Cols),
			make: func() (prune.Pruner, error) { return prune.NewGroupBy(cfg) },
		}}
	case engine.KindGroupBySum:
		cfg := prune.DefaultGroupBySumConfig(seed)
		return []candidate{{
			desc: fmt.Sprintf("in-switch sum aggregation d=%d w=%d (§6)", cfg.Rows, cfg.Cols),
			make: func() (prune.Pruner, error) { return prune.NewGroupBySum(cfg) },
		}}
	case engine.KindHaving:
		thr := q.Threshold / int64(switches)
		cfg := prune.DefaultHavingConfig(thr, seed)
		desc := fmt.Sprintf("count-min sketch %d×%d, threshold %d, partial second pass (Table 2)",
			cfg.Rows, cfg.CountersPerRow, q.Threshold)
		if switches > 1 {
			desc = fmt.Sprintf("count-min sketch %d×%d, per-switch threshold ⌊%d/%d⌋=%d with exact global re-check",
				cfg.Rows, cfg.CountersPerRow, q.Threshold, switches, thr)
		}
		return []candidate{{
			desc: desc,
			make: func() (prune.Pruner, error) { return prune.NewHaving(cfg) },
		}}
	case engine.KindJoin:
		left, right := q.Table.NumRows(), q.Right.NumRows()
		// Hash sharding splits the key space across switches, so each
		// switch's filter only has to hold its shard's keys.
		perShard := func(rows int) int { return (rows + switches - 1) / switches }
		// §4.3's small-table optimization: when the left (build) side is
		// much smaller, stream it once unpruned while its filter trains
		// and prune only the big side. The pruner fixes the left table
		// as the build side, so a small *right* table stays symmetric.
		if left*8 <= right {
			// Only the small build side's keys enter the filter.
			asym := prune.JoinConfig{
				FilterBits: prune.JoinFilterBitsFor(perShard(left)), Hashes: 3,
				Seed: seed, Asymmetric: true,
			}
			return []candidate{{
				desc: fmt.Sprintf("asymmetric bloom join M=%s H=%d per switch (small left side %d≪%d, §4.3)",
					switchsim.FormatBits(2*asym.FilterBits), asym.Hashes, left, right),
				make: func() (prune.Pruner, error) { return prune.NewJoin(asym) },
			}}
		}
		keys := perShard(max(left, right))
		cfg := prune.JoinConfig{FilterBits: prune.JoinFilterBitsFor(keys), Hashes: 3, Seed: seed}
		return []candidate{{
			desc: fmt.Sprintf("two-pass bloom join M=%s H=%d sized for %d keys per switch (Table 2)",
				switchsim.FormatBits(2*cfg.FilterBits), cfg.Hashes, keys),
			make: func() (prune.Pruner, error) { return prune.NewJoin(cfg) },
		}}
	case engine.KindSkyline:
		cfg := prune.DefaultSkylineConfig(len(q.SkylineCols))
		return []candidate{{
			desc: fmt.Sprintf("skyline %s heuristic, w=%d stored points, D=%d (§4.4)",
				cfg.Heuristic, cfg.Points, cfg.Dims),
			make: func() (prune.Pruner, error) { return prune.NewSkyline(cfg) },
		}}
	}
	return nil
}
