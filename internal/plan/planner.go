package plan

import (
	"fmt"
	"strings"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
)

// Mode is the execution path a plan selected.
type Mode uint8

const (
	// ModeDirect runs the query exactly on one node — the fallback when
	// no pruning program fits the switch (or none exists for the kind).
	ModeDirect Mode = iota
	// ModeCheetah runs the in-process batched pruned path.
	ModeCheetah
	// ModeCluster runs the pruned path over the simulated lossy network
	// with the §7.2 reliability protocol.
	ModeCluster
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeCheetah:
		return "cheetah"
	case ModeCluster:
		return "cluster"
	default:
		return "direct"
	}
}

// Plan is the planner's decision for one query: the execution mode, the
// chosen pruning program (for pruned modes), its Table 2 resource
// profile, and a human-readable Reason explaining the choice — including
// why a query fell back to direct execution when the switch cannot host
// it.
type Plan struct {
	Query   *engine.Query
	Mode    Mode
	Model   switchsim.Model
	Workers int
	Seed    uint64

	// PrunerName, Guarantee and Profile describe the admitted program;
	// they are zero-valued for ModeDirect.
	PrunerName string
	Guarantee  prune.Guarantee
	Profile    switchsim.Profile
	// Reason explains the planning outcome: the parameter derivation for
	// admitted programs, the admission failure chain for fallbacks.
	Reason string

	factory func() (prune.Pruner, error)
	// probe is the instance built for admission checking; its state is
	// untouched, so the first execution consumes it instead of paying
	// the construction cost (join Bloom filters are megabytes) twice.
	mu    sync.Mutex
	probe prune.Pruner
}

// NewPruner returns an instance of the planned pruning program with
// clean switch state: the admission probe on the first call, a fresh
// build thereafter. Each execution gets its own instance, so one plan
// can run many times (and concurrently).
func (p *Plan) NewPruner() (prune.Pruner, error) {
	p.mu.Lock()
	if pr := p.probe; pr != nil {
		p.probe = nil
		p.mu.Unlock()
		return pr, nil
	}
	p.mu.Unlock()
	if p.factory == nil {
		return nil, fmt.Errorf("plan: %v plan has no pruning program", p.Mode)
	}
	return p.factory()
}

// String renders the plan as a one-line summary.
func (p *Plan) String() string {
	if p.Mode == ModeDirect {
		return fmt.Sprintf("plan[%s: direct — %s]", p.Query.Kind, p.Reason)
	}
	return fmt.Sprintf("plan[%s: %s via %s (%s) — %s]",
		p.Query.Kind, p.Mode, p.PrunerName, p.Guarantee, p.Reason)
}

// candidate is one pruning program the planner may pick: a constructor
// plus the parameter-derivation note that lands in Plan.Reason.
type candidate struct {
	desc string
	make func() (prune.Pruner, error)
}

// Plan inspects the query and the session's switch model, picks the
// pruning algorithm, derives its parameters from the §5 formulas and
// Table 2 defaults, and performs pipeline admission. Queries no program
// can serve — or that exceed the model's resources in every derivable
// configuration — plan as ModeDirect with an explanatory Reason; an
// invalid query is an error, not a fallback.
func (s *Session) Plan(q *engine.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		Query:   q,
		Model:   s.opts.Model,
		Workers: s.opts.Workers,
		Seed:    s.opts.Seed,
	}
	var rejections []string
	for _, c := range s.candidates(q) {
		pruner, err := c.make()
		if err != nil {
			rejections = append(rejections, fmt.Sprintf("%s: %v", c.desc, err))
			continue
		}
		prof := pruner.Profile()
		if err := s.opts.Model.Admits(prof); err != nil {
			rejections = append(rejections, fmt.Sprintf("%s: %v", c.desc, err))
			continue
		}
		p.Mode = ModeCheetah
		p.PrunerName = pruner.Name()
		p.Guarantee = pruner.Guarantee()
		p.Profile = prof
		p.Reason = c.desc
		p.factory = c.make
		p.probe = pruner
		break
	}
	if p.Mode == ModeDirect {
		p.Reason = fmt.Sprintf("no pruning program fits %s: %s",
			s.opts.Model.Name, strings.Join(rejections, "; "))
		return p, nil
	}
	if s.opts.UseCluster {
		if singlePass(q.Kind) {
			p.Mode = ModeCluster
		} else {
			p.Reason += "; cluster transport supports single-pass kinds only, running in-process"
		}
	}
	return p, nil
}

// singlePass reports whether the kind streams the table once — the
// shapes engine.EncodeEntries serializes and the cluster transport can
// carry (SKYLINE's end-of-stream state drain is handled by the cluster's
// control plane).
func singlePass(k engine.QueryKind) bool {
	switch k {
	case engine.KindFilter, engine.KindDistinct, engine.KindTopN,
		engine.KindGroupByMax, engine.KindSkyline:
		return true
	}
	return false
}

// candidates lists the programs that could serve the query, best first.
// Orderings encode the paper's preferences: randomized TOP N at the
// jointly optimized (d, w) before the fixed-d legacy shape before the
// deterministic thresholds; the asymmetric join optimization when one
// side is much smaller (§4.3).
func (s *Session) candidates(q *engine.Query) []candidate {
	seed, delta := s.opts.Seed, s.opts.Delta
	switch q.Kind {
	case engine.KindFilter:
		n := len(q.Predicates)
		return []candidate{{
			desc: fmt.Sprintf("truth-table filter over %d predicates", n),
			make: func() (prune.Pruner, error) { return engine.DefaultPruner(q, seed) },
		}}
	case engine.KindDistinct:
		cfg := prune.DefaultDistinctConfig(seed)
		return []candidate{{
			desc: fmt.Sprintf("distinct cache d=%d w=%d %v over %d-bit fingerprints (Table 2)",
				cfg.Rows, cfg.Cols, cfg.Policy, cfg.FingerprintBits),
			make: func() (prune.Pruner, error) { return prune.NewDistinct(cfg) },
		}}
	case engine.KindTopN:
		var cands []candidate
		if cfg, err := prune.PlannedRandTopNConfig(q.N, delta, seed); err == nil {
			cands = append(cands, candidate{
				desc: fmt.Sprintf("randomized top-n d=%d w=%d via OptimalTopNRows(N=%d, δ=%g)",
					cfg.Rows, cfg.Cols, q.N, delta),
				make: func() (prune.Pruner, error) { return prune.NewRandTopN(cfg) },
			})
		}
		// The fixed-d legacy shape is only sound while Theorem 2's
		// premise d ≥ N·e/ln(1/δ) holds; past that the deterministic
		// thresholds are the principled fallback.
		if w, err := prune.TopNColumnsFor(4096, q.N, delta); err == nil {
			legacy := prune.RandTopNConfig{N: q.N, Rows: 4096, Cols: w, Seed: seed}
			cands = append(cands, candidate{
				desc: fmt.Sprintf("randomized top-n d=%d w=%d via TopNColumnsFor(N=%d, δ=%g)",
					legacy.Rows, legacy.Cols, q.N, delta),
				make: func() (prune.Pruner, error) { return prune.NewRandTopN(legacy) },
			})
		}
		det := prune.DefaultDetTopNConfig(q.N)
		cands = append(cands, candidate{
			desc: fmt.Sprintf("deterministic top-n w=%d exponential thresholds (Table 2)", det.Thresholds),
			make: func() (prune.Pruner, error) { return prune.NewDetTopN(det) },
		})
		return cands
	case engine.KindGroupByMax:
		cfg := prune.DefaultGroupByConfig(seed)
		return []candidate{{
			desc: fmt.Sprintf("group-by rolling-max matrix d=%d w=%d (Table 2)", cfg.Rows, cfg.Cols),
			make: func() (prune.Pruner, error) { return prune.NewGroupBy(cfg) },
		}}
	case engine.KindGroupBySum:
		cfg := prune.DefaultGroupBySumConfig(seed)
		return []candidate{{
			desc: fmt.Sprintf("in-switch sum aggregation d=%d w=%d (§6)", cfg.Rows, cfg.Cols),
			make: func() (prune.Pruner, error) { return prune.NewGroupBySum(cfg) },
		}}
	case engine.KindHaving:
		cfg := prune.DefaultHavingConfig(q.Threshold, seed)
		return []candidate{{
			desc: fmt.Sprintf("count-min sketch %d×%d, threshold %d, partial second pass (Table 2)",
				cfg.Rows, cfg.CountersPerRow, q.Threshold),
			make: func() (prune.Pruner, error) { return prune.NewHaving(cfg) },
		}}
	case engine.KindJoin:
		left, right := q.Table.NumRows(), q.Right.NumRows()
		// §4.3's small-table optimization: when the left (build) side is
		// much smaller, stream it once unpruned while its filter trains
		// and prune only the big side. The pruner fixes the left table
		// as the build side, so a small *right* table stays symmetric.
		if left*8 <= right {
			// Only the small build side's keys enter the filter.
			asym := prune.JoinConfig{
				FilterBits: prune.JoinFilterBitsFor(left), Hashes: 3,
				Seed: seed, Asymmetric: true,
			}
			return []candidate{{
				desc: fmt.Sprintf("asymmetric bloom join M=%s H=%d (small left side %d≪%d, §4.3)",
					switchsim.FormatBits(2*asym.FilterBits), asym.Hashes, left, right),
				make: func() (prune.Pruner, error) { return prune.NewJoin(asym) },
			}}
		}
		cfg := prune.JoinConfig{FilterBits: prune.JoinFilterBitsFor(max(left, right)), Hashes: 3, Seed: seed}
		return []candidate{{
			desc: fmt.Sprintf("two-pass bloom join M=%s H=%d sized for %d keys (Table 2)",
				switchsim.FormatBits(2*cfg.FilterBits), cfg.Hashes, max(left, right)),
			make: func() (prune.Pruner, error) { return prune.NewJoin(cfg) },
		}}
	case engine.KindSkyline:
		cfg := prune.DefaultSkylineConfig(len(q.SkylineCols))
		return []candidate{{
			desc: fmt.Sprintf("skyline %s heuristic, w=%d stored points, D=%d (§4.4)",
				cfg.Heuristic, cfg.Points, cfg.Dims),
			make: func() (prune.Pruner, error) { return prune.NewSkyline(cfg) },
		}}
	}
	return nil
}
