package plan

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
	"cheetah/internal/workload"
)

// TestPlannerChoicesFitTofino is the acceptance check: for every query
// kind, the planner's chosen pruner and parameters pass the Tofino()
// admission arithmetic, and the plan explains the derivation.
func TestPlannerChoicesFitTofino(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	orders, lineitem, err := workload.TPCHQ3(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(uv, Options{Workers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	so, err := Open(orders, Options{Workers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rk := workload.Rankings(2000, 3)
	sr, err := Open(rk, Options{Workers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		b      *Builder
		pruner string // expected Plan.PrunerName
	}{
		{s.Select().Where("adRevenue", prune.OpGT, 400_000).WhereLike("userAgent", "agent/0%"), "filter"},
		{s.Select().Distinct("userAgent"), "distinct-LRU"},
		{s.Select().TopN("adRevenue", 50), "topn-rand"},
		{s.Select().GroupByMax("userAgent", "adRevenue"), "groupby-max"},
		{s.Select().GroupBySum("languageCode", "adRevenue"), "groupby-sum"},
		{s.Select().GroupBySum("languageCode", "adRevenue").Having(100_000), "having-SUM"},
		{so.Select().Join(lineitem, "o_orderkey", "l_orderkey"), "join-BF"},
		{sr.Select().Skyline("pageRank", "avgDuration"), "skyline-APH"},
	}
	for _, c := range cases {
		p, err := c.b.Plan()
		if err != nil {
			t.Errorf("%s: %v", c.pruner, err)
			continue
		}
		if p.Mode != ModeCheetah {
			t.Errorf("%s: mode %v (reason %q), want cheetah", c.pruner, p.Mode, p.Reason)
			continue
		}
		if p.PrunerName != c.pruner {
			t.Errorf("pruner %q, want %q", p.PrunerName, c.pruner)
		}
		if p.Reason == "" {
			t.Errorf("%s: empty plan reason", c.pruner)
		}
		if err := switchsim.Tofino().Admits(p.Profile); err != nil {
			t.Errorf("%s: planned profile does not fit Tofino: %v", c.pruner, err)
		}
		pr, err := p.NewPruner()
		if err != nil {
			t.Errorf("%s: NewPruner: %v", c.pruner, err)
		} else if pr.Name() != p.PrunerName {
			t.Errorf("factory built %q, plan says %q", pr.Name(), p.PrunerName)
		}
	}
}

// TestPlannerAsymmetricJoinSizing: a left (build) side ≥8× smaller
// selects the §4.3 asymmetric strategy, with the Bloom filter sized for
// the small side's keys — not the probe side's.
func TestPlannerAsymmetricJoinSizing(t *testing.T) {
	small := wideTable(t, 2, 500)
	big := wideTable(t, 2, 500*8)
	s, err := Open(small, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Select().Join(big, "c0", "c0").Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeCheetah || !strings.Contains(p.Reason, "asymmetric") {
		t.Fatalf("mode=%v reason=%q, want asymmetric cheetah join", p.Mode, p.Reason)
	}
	wantBits := 2 * prune.JoinFilterBitsFor(small.NumRows())
	if p.Profile.SRAMBits != wantBits {
		t.Fatalf("asymmetric join SRAM %d bits, want %d (sized for the %d-row build side)",
			p.Profile.SRAMBits, wantBits, small.NumRows())
	}
	ex, err := s.ExecPlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := s.Select().Join(big, "c0", "c0").Build()
	direct, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(ex.Result) {
		t.Fatal("asymmetric join diverges from direct")
	}
}

// TestPlannerTopNParameterDerivation pins that the planner derives the
// TOP N matrix via the §5 joint optimization, not the engine's fixed-d
// legacy default.
func TestPlannerTopNParameterDerivation(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Open(uv, Options{Seed: 1})
	p, err := s.Select().TopN("adRevenue", 1000).Plan()
	if err != nil {
		t.Fatal(err)
	}
	d, w, err := prune.OptimalTopNRows(1000, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("d=%d w=%d", d, w)
	if !strings.Contains(p.Reason, want) || !strings.Contains(p.Reason, "OptimalTopNRows") {
		t.Fatalf("reason %q does not carry the optimized %s", p.Reason, want)
	}
	// The paper's worked example: N=1000, δ=1e-4 → d=481, w=19.
	if d != 481 || w != 19 {
		t.Fatalf("OptimalTopNRows(1000, 1e-4) = (%d, %d), want (481, 19)", d, w)
	}
}

// TestPlannerGiantTopNFallsBackToDeterministic: when N is so large that
// every randomized matrix violates the per-stage SRAM budget (or the
// theorem premise), the planner degrades to the deterministic threshold
// pruner — still Cheetah, tiny profile.
func TestPlannerGiantTopNFallsBackToDeterministic(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Open(uv, Options{Seed: 1})
	p, err := s.Select().TopN("adRevenue", 2_000_000).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeCheetah || p.PrunerName != "topn-det" {
		t.Fatalf("mode=%v pruner=%q (reason %q), want cheetah/topn-det", p.Mode, p.PrunerName, p.Reason)
	}
	if !strings.Contains(p.Reason, "deterministic") {
		t.Fatalf("reason %q does not explain the deterministic fallback", p.Reason)
	}
}

// wideTable builds a table with dims Int64 columns c0..c(dims-1).
func wideTable(t *testing.T, dims, rows int) *table.Table {
	t.Helper()
	sch := make(table.Schema, dims)
	for i := range sch {
		sch[i] = table.ColumnDef{Name: fmt.Sprintf("c%d", i), Type: table.Int64}
	}
	tbl := table.MustNew(sch)
	v := make([]int64, dims)
	for r := 0; r < rows; r++ {
		for i := range v {
			v[i] = int64((r*31+i*17)%97 + 1)
		}
		if err := tbl.AppendInt64Row(v...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestPlannerOversizedSkylineFallsBackToDirect is the acceptance
// criterion's oversized query: a 12-dimensional skyline needs more
// per-stage comparisons than the Tofino has ALUs, so the planner must
// fall back to direct execution with an explanation — and Exec must
// still return the exact result.
func TestPlannerOversizedSkylineFallsBackToDirect(t *testing.T) {
	tbl := wideTable(t, 12, 300)
	s, err := Open(tbl, Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]string, 12)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	b := s.Select().Skyline(cols...)
	p, err := b.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeDirect {
		t.Fatalf("mode %v, want direct", p.Mode)
	}
	if !strings.Contains(p.Reason, "no pruning program fits") || !strings.Contains(p.Reason, "D=12") {
		t.Fatalf("fallback reason %q does not explain the resource violation", p.Reason)
	}
	ex, err := b.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(ex.Result) {
		t.Fatal("direct-fallback Exec diverges from ExecDirect")
	}
	if ex.Traffic.EntriesSent != 0 {
		t.Fatalf("direct execution reported traffic %+v", ex.Traffic)
	}
	if !strings.Contains(ex.Explain(), "direct") {
		t.Fatalf("Explain() = %q does not mention the direct fallback", ex.Explain())
	}
}

// TestPlannerTinyModelFallsBackToDirect: the same DISTINCT query that
// fits a Tofino is rejected by a toy model with one usable stage, and
// the plan says why.
func TestPlannerTinyModelFallsBackToDirect(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(300, 1))
	if err != nil {
		t.Fatal(err)
	}
	tiny := switchsim.Model{
		Name: "toy", Stages: switchsim.ReservedStages + 1, ALUsPerStage: 1,
		SRAMPerStageBits: 1 << 10, TCAMEntries: 16, MetadataBits: 64,
	}
	s, err := Open(uv, Options{Model: tiny, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Select().Distinct("userAgent").Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeDirect || !strings.Contains(p.Reason, "toy") {
		t.Fatalf("mode=%v reason=%q, want explained direct fallback on toy model", p.Mode, p.Reason)
	}
}

// TestPlannerClusterRouting: UseCluster routes single-pass kinds over
// the network path and keeps multi-pass kinds in-process with a note.
func TestPlannerClusterRouting(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(400, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(uv, Options{Workers: 3, Seed: 1, UseCluster: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Select().Distinct("userAgent").Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeCluster {
		t.Fatalf("distinct mode %v, want cluster", p.Mode)
	}
	ex, err := s.ExecPlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ClusterReport == nil {
		t.Fatal("cluster execution returned no protocol report")
	}
	q, _ := s.Select().Distinct("userAgent").Build()
	direct, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(ex.Result) {
		t.Fatal("cluster result diverges from direct")
	}

	ph, err := s.Select().GroupBySum("languageCode", "adRevenue").Having(50_000).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if ph.Mode != ModeCheetah || !strings.Contains(ph.Reason, "single-pass") {
		t.Fatalf("having mode=%v reason=%q, want in-process with single-pass note", ph.Mode, ph.Reason)
	}
}

// TestExecHonorsContext: a cancelled context stops Exec before any work.
func TestExecHonorsContext(t *testing.T) {
	s := openTest(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Select().Distinct("seller").Exec(ctx); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestOpenValidation pins Open's error paths and defaulting.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Options{}); err == nil {
		t.Fatal("nil table accepted")
	}
	bad := switchsim.Tofino()
	bad.ALUsPerStage = -1
	if _, err := Open(wideTable(t, 2, 1), Options{Model: bad}); err == nil {
		t.Fatal("invalid model accepted")
	}
	s, err := Open(wideTable(t, 2, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Options()
	if o.Model.Name != "tofino" || o.Workers != 1 || o.Delta != 1e-4 || o.NICGbps != 10 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}
