package plan

// The chaos suite is the fault-tolerance acceptance test: switches are
// killed (control-plane Fail, and fault injectors that die mid-query),
// restored, and added while all eight query kinds run through each
// execution mode — one-shot sharded, served, and streaming — and every
// result must stay bit-identical to ExecDirect (§7.2: the servers are
// the exactness backstop; a dead switch only costs pruning). Afterwards
// the fabric must be clean: no active leases, no queued waiters, no
// flow program left installed.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/fabric"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
	"cheetah/internal/workload/multitenant"
)

// chaosMix builds the small all-kinds workload the chaos tests share.
func chaosMix(t *testing.T, seed uint64) *multitenant.Mix {
	t.Helper()
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1600, RankRows: 700, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

// chaosWant is the ground truth: ExecDirect of the mix's kind-th query
// over the first rows committed rows.
func chaosWant(t *testing.T, mix *multitenant.Mix, kind, rows int) *engine.Result {
	t.Helper()
	q := *mix.Query(kind)
	if rows < mix.Visits.NumRows() {
		v, err := mix.Visits.View(0, rows)
		if err != nil {
			t.Fatal(err)
		}
		q.Table = v
	}
	want, err := engine.ExecDirect(&q)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// assertFabricDrained checks the no-leak invariant after a chaos run:
// every switch restored, zero active leases, zero queued waiters, and
// no flow program still occupying pipeline resources.
func assertFabricDrained(t *testing.T, fab *fabric.Fabric) {
	t.Helper()
	for i := 0; i < fab.Size(); i++ {
		if fab.Failed(i) {
			if err := fab.Restore(i); err != nil {
				t.Fatalf("restore switch %d: %v", i, err)
			}
		}
	}
	for i, c := range fab.Stats() {
		if c.Active != 0 || c.Queued != 0 {
			t.Fatalf("switch %d leaked leases after chaos: %+v", i, c)
		}
	}
	for i, u := range fab.Utilization() {
		if u.ALUsUsed != 0 || u.TCAMUsed != 0 {
			t.Fatalf("switch %d leaked flow programs after chaos: %+v", i, u)
		}
	}
}

// TestChaosServed kills switches under served queries, for every kind:
// a fault injector takes the placed switch down in the middle of the
// query's stream (the result must be discarded and failed over, not
// patched), then the whole fabric dies (the §7.2 direct backstop), then
// a hot-added switch takes over. Every answer is exact throughout.
func TestChaosServed(t *testing.T) {
	mix := chaosMix(t, 1)
	for kind := 0; kind < multitenant.NumKinds; kind++ {
		q := mix.Query(kind)
		t.Run(fmt.Sprintf("%v", q.Kind), func(t *testing.T) {
			db, err := Open(mix.Visits, Options{Workers: 2, Seed: 1, Switches: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			sv, err := db.Serve(context.Background(), ServeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer sv.Close()
			fab := sv.Fabric()
			want := chaosWant(t, mix, kind, mix.Visits.NumRows())

			// One switch dies mid-query: whichever pipeline sees the
			// query's first batch kills itself. The submit must fail over
			// to the survivor and still be exact.
			var killed atomic.Bool
			for i := 0; i < fab.Size(); i++ {
				fab.Server(i).Pipeline().SetFaultInjector(func(uint32, int) bool {
					return killed.CompareAndSwap(false, true)
				})
			}
			ex, err := sv.Submit(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Plan.Mode != ModeCheetah {
				t.Fatalf("plan mode = %v (%s), want cheetah", ex.Plan.Mode, ex.Plan.Reason)
			}
			if !want.Equal(ex.Result) {
				t.Fatalf("mid-query death result diverged\n got: %v\nwant: %v", ex.Result, want)
			}
			if ex.FailedOver < 1 {
				t.Fatalf("FailedOver = %d, want >= 1 (injector killed the placed switch)", ex.FailedOver)
			}
			if got := sv.Stats().FailedOver; got < 1 {
				t.Fatalf("fabric FailedOver counter = %d, want >= 1", got)
			}

			// Restore the victim; a clean submit must not fail over.
			for i := 0; i < fab.Size(); i++ {
				if fab.Failed(i) {
					if err := fab.Restore(i); err != nil {
						t.Fatal(err)
					}
				}
			}
			ex, err = sv.Submit(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if ex.FailedOver != 0 || !want.Equal(ex.Result) {
				t.Fatalf("post-restore submit: FailedOver=%d, exact=%v", ex.FailedOver, want.Equal(ex.Result))
			}

			// The whole fabric dies: the submit degrades to exact direct
			// execution — the §7.2 backstop — rather than failing.
			for i := 0; i < fab.Size(); i++ {
				fab.Fail(i)
			}
			ex, err = sv.Submit(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Plan.Mode != ModeDirect {
				t.Fatalf("dead-fabric submit mode = %v, want direct", ex.Plan.Mode)
			}
			if !want.Equal(ex.Result) {
				t.Fatalf("dead-fabric result diverged\n got: %v\nwant: %v", ex.Result, want)
			}

			// A hot-added switch brings pruning back while the original
			// switches stay dead.
			idx, err := fab.Add()
			if err != nil {
				t.Fatal(err)
			}
			ex, err = sv.Submit(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Plan.Mode != ModeCheetah || ex.Switch != idx {
				t.Fatalf("post-add submit: mode=%v switch=%d, want cheetah on %d", ex.Plan.Mode, ex.Switch, idx)
			}
			if !want.Equal(ex.Result) {
				t.Fatalf("post-add result diverged\n got: %v\nwant: %v", ex.Result, want)
			}
			assertFabricDrained(t, fab)
		})
	}
}

// TestChaosStreamingPlaced drives single-switch subscriptions of every
// kind through the full failure lifecycle: the placed switch dies with
// no survivor (deltas degrade to exact direct, one at a time), a
// hot-added switch picks the program up (warm for the monotone kinds),
// and a second death re-places it onto the restored original. The
// standing result equals a from-scratch run at every step.
func TestChaosStreamingPlaced(t *testing.T) {
	mix := chaosMix(t, 2)
	for kind := 0; kind < multitenant.NumKinds; kind++ {
		base := mix.Query(kind)
		t.Run(fmt.Sprintf("%v", base.Kind), func(t *testing.T) {
			ctx := streamCtx(t)
			target, err := table.New(mix.Visits.Schema())
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(target, Options{Workers: 2, Seed: 2, Switches: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			st, err := db.Stream(ctx, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			fab := st.Fabric()
			q := *base
			q.Table = target
			sub, err := st.Subscribe(ctx, &q)
			if err != nil {
				t.Fatal(err)
			}
			if sub.Plan().Mode != ModeCheetah {
				t.Fatalf("plan mode = %v (%s), want cheetah", sub.Plan().Mode, sub.Plan().Reason)
			}
			if sub.Switch() != 0 {
				t.Fatalf("initial placement on switch %d, want 0", sub.Switch())
			}
			total := mix.Visits.NumRows()
			marks := []int{total / 3, 2 * total / 3, total - 200, total}
			appendTo := func(lo, hi int) {
				t.Helper()
				v, err := mix.Visits.View(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				appendInChunks(t, st, v, 113)
				if err := sub.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				if want := chaosWant(t, mix, kind, hi); !want.Equal(firstResult(sub)) {
					t.Fatalf("standing result diverged at %d rows\n got: %v\nwant: %v", hi, firstResult(sub), want)
				}
			}
			// Healthy warm-up.
			appendTo(0, marks[0])
			// The only switch dies: no survivor, so deltas run exact and
			// unpruned until capacity returns.
			fab.Fail(0)
			appendTo(marks[0], marks[1])
			if sub.Replaced() != 0 {
				t.Fatalf("Replaced = %d with no survivor, want 0", sub.Replaced())
			}
			// A hot-added switch hosts the replacement program.
			idx, err := fab.Add()
			if err != nil {
				t.Fatal(err)
			}
			appendTo(marks[1], marks[2])
			if sub.Replaced() != 1 || sub.Switch() != idx {
				t.Fatalf("after add: Replaced=%d Switch=%d, want 1 on %d", sub.Replaced(), sub.Switch(), idx)
			}
			// The replacement's switch dies too; the restored original
			// takes the program back.
			if err := fab.Restore(0); err != nil {
				t.Fatal(err)
			}
			fab.Fail(idx)
			appendTo(marks[2], marks[3])
			if sub.Replaced() != 2 || sub.Switch() != 0 {
				t.Fatalf("after second death: Replaced=%d Switch=%d, want 2 on 0", sub.Replaced(), sub.Switch())
			}
			if got := fab.Metrics().Total("replaced"); got < 2 {
				t.Fatalf("replaced metric = %d, want >= 2", got)
			}
			sub.Close()
			assertFabricDrained(t, fab)
		})
	}
}

// TestChaosStreamingSharded drives scatter/gather subscriptions of
// every kind while shards die and move: the engine's Failover hook
// re-places dead shards on survivors (and on a hot-added switch)
// between and during deltas, with the standing result exact at every
// mark.
func TestChaosStreamingSharded(t *testing.T) {
	mix := chaosMix(t, 3)
	for kind := 0; kind < multitenant.NumKinds; kind++ {
		base := mix.Query(kind)
		t.Run(fmt.Sprintf("%v", base.Kind), func(t *testing.T) {
			ctx := streamCtx(t)
			target, err := table.New(mix.Visits.Schema())
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(target, Options{Workers: 2, Seed: 3, Switches: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			st, err := db.Stream(ctx, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			fab := st.Fabric()
			q := *base
			q.Table = target
			sub, err := st.Subscribe(ctx, &q)
			if err != nil {
				t.Fatal(err)
			}
			if sub.Plan().Mode != ModeCheetah {
				t.Fatalf("plan mode = %v (%s), want cheetah", sub.Plan().Mode, sub.Plan().Reason)
			}
			total := mix.Visits.NumRows()
			appendTo := func(lo, hi int) {
				t.Helper()
				v, err := mix.Visits.View(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				appendInChunks(t, st, v, 113)
				if err := sub.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				if want := chaosWant(t, mix, kind, hi); !want.Equal(firstResult(sub)) {
					t.Fatalf("standing result diverged at %d rows\n got: %v\nwant: %v", hi, firstResult(sub), want)
				}
			}
			appendTo(0, total/3)
			// One shard's switch dies between deltas: its standing
			// program re-places onto a survivor.
			fab.Fail(0)
			appendTo(total/3, 2*total/3)
			if sub.Replaced() < 1 {
				t.Fatalf("Replaced = %d after shard death, want >= 1", sub.Replaced())
			}
			// Churn: restore the victim, kill another switch, and add a
			// fourth — the fabric reshapes under the standing query.
			if err := fab.Restore(0); err != nil {
				t.Fatal(err)
			}
			if _, err := fab.Add(); err != nil {
				t.Fatal(err)
			}
			fab.Fail(1)
			appendTo(2*total/3, total)
			if sub.Replaced() < 2 {
				t.Fatalf("Replaced = %d after second death, want >= 2", sub.Replaced())
			}
			sub.Close()
			assertFabricDrained(t, fab)
		})
	}
}

// TestChaosOneShotSharded runs every kind through one scatter/gather
// execution whose shard programs live on fabric leases, with a fault
// injector killing one switch in the middle of the shard's stream: the
// engine's failover (with exponential backoff) must redo the shard on a
// fresh placement and the merged result must equal ExecDirect.
func TestChaosOneShotSharded(t *testing.T) {
	mix := chaosMix(t, 4)
	for kind := 0; kind < multitenant.NumKinds; kind++ {
		q := mix.Query(kind)
		t.Run(fmt.Sprintf("%v", q.Kind), func(t *testing.T) {
			db, err := Open(mix.Visits, Options{Workers: 2, Seed: 4, Switches: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			p, err := db.planFor(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			if p.Mode != ModeCheetah {
				t.Fatalf("plan mode = %v (%s), want cheetah", p.Mode, p.Reason)
			}
			fab, err := fabric.New(fabric.Options{Switches: 3, Model: p.Model})
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			pruners, err := p.NewShardPruners()
			if err != nil {
				t.Fatal(err)
			}
			progs := make([]switchsim.Program, len(pruners))
			for i, pr := range pruners {
				progs[i] = pr
			}
			placements, err := fab.AdmitShards(context.Background(), progs)
			if err != nil {
				t.Fatal(err)
			}
			flows := make([]engine.BatchDataplane, len(placements))
			for i, pl := range placements {
				flows[i] = pl
			}
			// Switch 0 dies at the first batch that reaches it.
			var killed atomic.Bool
			fab.Server(0).Pipeline().SetFaultInjector(func(uint32, int) bool {
				return killed.CompareAndSwap(false, true)
			})
			var mu sync.Mutex
			failover := func(shard, attempt int) (prune.Pruner, engine.BatchDataplane, error) {
				npr, err := p.NewPruner()
				if err != nil {
					return nil, nil, err
				}
				npl, err := fab.TryAdmit(npr)
				if err != nil {
					return nil, nil, err
				}
				mu.Lock()
				old := placements[shard]
				placements[shard] = npl
				mu.Unlock()
				old.Release()
				return npr, npl, nil
			}
			run, err := engine.ExecSharded(q, engine.ShardedOptions{
				Shards: 3, Workers: p.Workers, Seed: p.Seed,
				Pruners: pruners, Flows: flows, Failover: failover,
				Backoff: time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if run.FailedOver < 1 {
				t.Fatalf("FailedOver = %d, want >= 1 (injector killed switch 0)", run.FailedOver)
			}
			want, err := engine.ExecDirect(q)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(run.Result) {
				t.Fatalf("sharded chaos result diverged\n got: %v\nwant: %v", run.Result, want)
			}
			mu.Lock()
			for _, pl := range placements {
				pl.Release()
			}
			mu.Unlock()
			assertFabricDrained(t, fab)
		})
	}
}

// firstResult unwraps Results()'s (result, version) pair.
func firstResult(sub *Subscription) *engine.Result {
	r, _ := sub.Results()
	return r
}
