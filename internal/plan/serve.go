package plan

// This file is the session API's serving front door: Session.Serve opens
// the session's switch for many concurrent clients, and Serving.Submit
// plans + admits + executes one query through the shared pipeline. It is
// the layer between the fluent builder (one query at a time) and
// internal/serve (admission and QueryID multiplexing): Submit reuses the
// planner unchanged, then swaps the execution's exclusive pipeline
// ownership for a flow-scoped lease.

import (
	"context"
	"errors"
	"fmt"

	"cheetah/internal/engine"
	"cheetah/internal/serve"
	"cheetah/internal/switchsim"
)

// ServeOptions configures a serving handle.
type ServeOptions struct {
	// QueueLimit caps the admission wait queue (0 = unbounded). Queries
	// arriving past the cap fall back to exact direct execution instead
	// of queueing — load shedding, not an error.
	QueueLimit int
}

// Serving is a live multi-query serving handle over the session's
// switch. Any number of goroutines may call Submit concurrently: each
// submitted query is planned as usual, admitted into the shared pipeline
// under its own QueryID (waiting FIFO when the switch is full), executed
// through its flow-scoped dataplane handle, and uninstalled on
// completion. Queries the switch can never host — and queries shed by
// the queue limit — run as exact direct executions, mirroring the
// planner's fallback semantics.
type Serving struct {
	s   *Session
	srv *serve.Server
}

// Serve opens the session's switch for concurrent serving. The handle
// closes when ctx is done (or on Close); active queries finish, queued
// admissions fail over to direct execution.
func (s *Session) Serve(ctx context.Context, opts ServeOptions) (*Serving, error) {
	srv, err := serve.New(serve.Options{Model: s.opts.Model, QueueLimit: opts.QueueLimit})
	if err != nil {
		return nil, err
	}
	sv := &Serving{s: s, srv: srv}
	if ctx != nil {
		context.AfterFunc(ctx, sv.Close)
	}
	return sv, nil
}

// Session returns the serving handle's session.
func (sv *Serving) Session() *Session { return sv.s }

// Stats returns the serving layer's cumulative admission counters.
func (sv *Serving) Stats() serve.Counters { return sv.srv.Stats() }

// Utilization reports the shared pipeline's current occupancy.
func (sv *Serving) Utilization() switchsim.Utilization { return sv.srv.Utilization() }

// Close shuts the serving layer down: queued admissions and future
// Submits fall back to direct execution. Idempotent.
func (sv *Serving) Close() { sv.srv.Close() }

// Submit plans and executes q through the shared switch. It blocks while
// the pipeline is full (FIFO admission) unless the query is oversized or
// shed, in which case it runs direct. Concurrent Submit calls multiplex
// their batches through per-query programs selected by QueryID.
func (sv *Serving) Submit(ctx context.Context, q *engine.Query) (*Execution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := sv.s.Plan(q)
	if err != nil {
		return nil, err
	}
	// The planner's own fallback (no program fits the model) bypasses
	// admission entirely — the oversized-query bypass.
	if p.Mode == ModeDirect {
		return sv.s.ExecPlan(ctx, p)
	}
	// Serving always executes in-process through the shared pipeline —
	// the cluster transport has no multiplexed path — so a UseCluster
	// plan is rewritten to the mode that actually runs (the plan is
	// fresh from Plan(), not shared).
	if p.Mode == ModeCluster {
		p.Mode = ModeCheetah
		p.Reason += "; serving executes in-process (cluster transport has no multiplexed path)"
	}
	pruner, err := p.NewPruner()
	if err != nil {
		return nil, err
	}
	lease, err := sv.srv.Admit(ctx, pruner)
	if err != nil {
		if errors.Is(err, serve.ErrNeverFits) || errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrClosed) {
			fb := &Plan{
				Query:   q,
				Mode:    ModeDirect,
				Model:   p.Model,
				Workers: p.Workers,
				Seed:    p.Seed,
				Reason:  fmt.Sprintf("serving fallback: %v", err),
			}
			return sv.s.ExecPlan(ctx, fb)
		}
		return nil, err
	}
	defer lease.Release()
	run, err := engine.ExecCheetah(q, engine.CheetahOptions{
		Workers: p.Workers, Pruner: pruner, Seed: p.Seed, Flow: lease,
	})
	if err != nil {
		return nil, err
	}
	ex := &Execution{
		Plan:         p,
		Result:       run.Result,
		Traffic:      run.Traffic,
		Stats:        run.Stats,
		QueryID:      lease.QueryID(),
		PipelineUtil: lease.Utilization(),
		Estimate:     sv.s.cost.CheetahTime(q.Kind, run.Traffic, sv.s.opts.NICGbps),
	}
	ex.SparkEstimate = sv.s.sparkEstimate(q, len(ex.Result.Rows))
	return ex, nil
}
