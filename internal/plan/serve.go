package plan

// This file is the session API's serving front door: Session.Serve opens
// the session's switch fabric for many concurrent clients, and
// Serving.Submit plans + admits + executes one query through a shared
// pipeline. It is the layer between the fluent builder (one query at a
// time) and internal/fabric (placement) + internal/serve (admission and
// QueryID multiplexing): Submit reuses the planner unchanged — at fabric
// width 1, since a served query runs whole on the switch it is placed
// on — then swaps the execution's exclusive pipeline ownership for a
// flow-scoped lease on the least-loaded switch.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/fabric"
	"cheetah/internal/obs"
	"cheetah/internal/serve"
	"cheetah/internal/switchsim"
)

// ServeOptions configures a serving handle.
type ServeOptions struct {
	// QueueLimit caps each switch's admission wait queue (0 =
	// unbounded). Queries arriving past the cap fall back to exact
	// direct execution instead of queueing — load shedding, not an
	// error.
	QueueLimit int
	// TenantQuota caps any one tenant's concurrently active leases per
	// switch (0 = unlimited). Quota-blocked submissions wait without
	// blocking other tenants' admissions.
	TenantQuota int
}

// Serving is a live multi-query serving handle over the session's
// switch fabric (Options.Switches pipelines). Any number of goroutines
// may call Submit concurrently: each submitted query is planned as
// usual, placed on the least-loaded switch (falling back to the FIFO
// queue of the least-contended one when every switch is busy), admitted
// under its own QueryID, executed through its flow-scoped dataplane
// handle, and uninstalled on completion. Queries no switch can ever
// host — and queries shed by the queue limit — run as exact direct
// executions, mirroring the planner's fallback semantics.
type Serving struct {
	s    *Session
	fab  *fabric.Fabric
	once sync.Once
}

// Serve opens the session's switch fabric for concurrent serving. The
// handle closes when ctx is done (or on Close); active queries finish,
// queued admissions fail over to direct execution.
func (s *Session) Serve(ctx context.Context, opts ServeOptions) (*Serving, error) {
	fab, err := fabric.New(fabric.Options{
		Switches:    s.opts.Switches,
		Model:       s.opts.Model,
		QueueLimit:  opts.QueueLimit,
		TenantQuota: opts.TenantQuota,
		Metrics:     s.opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	sv := &Serving{s: s, fab: fab}
	if err := s.addChild(sv); err != nil {
		fab.Close()
		return nil, err
	}
	if ctx != nil {
		context.AfterFunc(ctx, sv.Close)
	}
	return sv, nil
}

// Session returns the serving handle's session.
func (sv *Serving) Session() *Session { return sv.s }

// Switches returns the fabric width.
func (sv *Serving) Switches() int { return sv.fab.Size() }

// Fabric returns the serving handle's switch fabric, for failure-
// lifecycle control (Fail/Restore/Add) and per-switch access.
func (sv *Serving) Fabric() *fabric.Fabric { return sv.fab }

// Stats returns the serving layer's cumulative admission counters,
// summed across the fabric's switches.
func (sv *Serving) Stats() serve.Counters {
	var total serve.Counters
	for _, c := range sv.fab.Stats() {
		total.Add(c)
	}
	return total
}

// StatsPerSwitch returns each switch's admission counters, indexed by
// switch.
func (sv *Serving) StatsPerSwitch() []serve.Counters { return sv.fab.Stats() }

// Utilization reports the fabric's occupancy summed across switches
// (used and capacity both scale with switch count).
func (sv *Serving) Utilization() switchsim.Utilization {
	var total switchsim.Utilization
	for _, u := range sv.fab.Utilization() {
		total.Add(u)
	}
	return total
}

// UtilizationPerSwitch reports each pipeline's occupancy, indexed by
// switch.
func (sv *Serving) UtilizationPerSwitch() []switchsim.Utilization {
	return sv.fab.Utilization()
}

// Close shuts the serving layer down: queued admissions and future
// Submits fall back to direct execution. Idempotent.
func (sv *Serving) Close() {
	sv.once.Do(func() {
		sv.fab.Close()
		sv.s.removeChild(sv)
	})
}

// Submit plans and executes q through the fabric with default QoS. See
// SubmitQoS.
func (sv *Serving) Submit(ctx context.Context, q *engine.Query) (*Execution, error) {
	return sv.SubmitQoS(ctx, q, serve.QoS{})
}

// maxSubmitFailovers caps how many replacement switches one served
// query tries after mid-query switch deaths before degrading to exact
// direct execution (the §7.2 backstop).
const maxSubmitFailovers = 3

// fallbackServing reports whether a fabric admission failure means
// "run the query exactly without the switch" rather than "fail the
// Submit". Deadline misses are deliberately NOT in the list: a
// deadline-shed query is dropped, not silently retried on the slower
// path its deadline already couldn't afford.
func fallbackServing(err error) bool {
	return errors.Is(err, serve.ErrNeverFits) ||
		errors.Is(err, serve.ErrQueueFull) ||
		errors.Is(err, serve.ErrClosed) ||
		errors.Is(err, serve.ErrFailed)
}

// SubmitQoS plans and executes q through the fabric under the given
// QoS. The query is placed whole on one switch — least-loaded first,
// the least-contended FIFO queue when all are busy — and blocks while
// that queue is full unless the query is oversized or shed, in which
// case it runs direct. Within a queue, higher-priority submissions
// admit first; a tenant at its quota waits without blocking others; a
// submission whose qos.Deadline passes while queued fails with
// serve.ErrDeadline (deadline-based shedding — the query is dropped,
// not degraded). If the placed switch dies mid-query the execution is
// redone on a replacement switch (capped, then exact direct), so a
// Submit never returns a result tainted by a failure. Concurrent
// submissions multiplex their batches through per-query programs
// selected by QueryID on their placed switch.
func (sv *Serving) SubmitQoS(ctx context.Context, q *engine.Query, qos serve.QoS) (*Execution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// One clock over the whole submission: the execution's Wall covers
	// every failover attempt, admission waits and discarded passes
	// included — never reset per attempt.
	clock := engine.StartClock()
	tr := sv.s.newTrace()
	// A served query runs whole on its placed switch, so plan at fabric
	// width 1 regardless of the session's Exec width.
	ptm := tr.Begin(obs.StagePlan, -1)
	p, err := sv.s.planFor(q, 1)
	if err != nil {
		tr.Release()
		return nil, err
	}
	ptm.EndNote(p.Mode.String())
	// The planner's own fallback (no program fits the model) bypasses
	// admission entirely — the oversized-query bypass.
	if p.Mode == ModeDirect {
		ex, err := sv.s.execPlan(ctx, p, tr)
		if ex != nil {
			ex.Wall = clock.Elapsed()
		}
		return ex, err
	}
	// Serving always executes in-process through a shared pipeline — the
	// cluster transport has no multiplexed path — so a UseCluster plan
	// is rewritten to the mode that actually runs (the plan is fresh
	// from planFor, not shared).
	if p.Mode == ModeCluster {
		p.Mode = ModeCheetah
		p.Reason += "; serving executes in-process (cluster transport has no multiplexed path)"
	}
	for attempt := 0; ; attempt++ {
		// A fresh program every attempt: register state a dead switch
		// held is unrecoverable, so a retried query replays its whole
		// stream through clean state (§7.2).
		pruner, err := p.NewPruner()
		if err != nil {
			tr.Release()
			return nil, err
		}
		admitStart := tr.Elapsed()
		placement, err := sv.fab.AdmitQoS(ctx, pruner, qos)
		if err != nil {
			tr.Add(obs.Span{
				Stage: obs.StageAdmit, Switch: -1, Attempt: attempt,
				Start: admitStart, Dur: tr.Elapsed() - admitStart,
				Note: fmt.Sprintf("not admitted: %v", err),
			})
			if fallbackServing(err) {
				fb := &Plan{
					Query:    q,
					Mode:     ModeDirect,
					Model:    p.Model,
					Workers:  p.Workers,
					Seed:     p.Seed,
					Switches: 1,
					Reason:   fmt.Sprintf("serving fallback: %v", err),
				}
				ex, err := sv.s.execPlan(ctx, fb, tr)
				if ex != nil {
					// Failovers taken before the fabric ran out of
					// switches still count.
					ex.FailedOver = attempt
					ex.Wall = clock.Elapsed()
				}
				return ex, err
			}
			tr.Release()
			return nil, err
		}
		tr.SetQueryID(placement.QueryID())
		tr.Add(obs.Span{
			Stage: obs.StageAdmit, Switch: placement.Switch, Attempt: attempt,
			Start: admitStart, Dur: tr.Elapsed() - admitStart,
		})
		passStart := tr.Elapsed()
		run, err := engine.ExecCheetah(q, engine.CheetahOptions{
			Workers: p.Workers, Pruner: pruner, Seed: p.Seed, Flow: placement.Lease,
			Trace: tr, TraceSwitch: placement.Switch,
		})
		if err != nil {
			placement.Release()
			tr.Release()
			return nil, err
		}
		if placement.Err() != nil {
			// The placed switch died while the query streamed through it:
			// the attempt's result cannot be trusted (drained register
			// state died with the switch), so fail over to another
			// placement — or to exact direct execution past the cap.
			tr.Add(obs.Span{
				Stage: obs.StageFailover, Switch: placement.Switch, Attempt: attempt,
				Start: passStart, Dur: tr.Elapsed() - passStart,
				Note: "pass discarded: placed switch died mid-query",
			})
			sv.fab.Server(placement.Switch).NoteFailedOver(qos.Tenant)
			placement.Release()
			if attempt >= maxSubmitFailovers {
				fb := &Plan{
					Query:    q,
					Mode:     ModeDirect,
					Model:    p.Model,
					Workers:  p.Workers,
					Seed:     p.Seed,
					Switches: 1,
					Reason:   "serving fallback: failover attempts exhausted",
				}
				ex, err := sv.s.execPlan(ctx, fb, tr)
				if ex != nil {
					ex.FailedOver = attempt + 1
					ex.Wall = clock.Elapsed()
				}
				return ex, err
			}
			continue
		}
		ex := &Execution{
			Plan:         p,
			Result:       run.Result,
			Traffic:      run.Traffic,
			Stats:        run.Stats,
			QueryID:      placement.QueryID(),
			Switch:       placement.Switch,
			FailedOver:   attempt,
			PerSwitch:    sv.perSwitch(placement.Switch, run.Traffic),
			PipelineUtil: placement.Utilization(),
			Estimate:     sv.s.cost.CheetahTime(q.Kind, run.Traffic, sv.s.opts.NICGbps),
			Wall:         clock.Elapsed(),
			trace:        tr,
		}
		ex.SparkEstimate = sv.s.sparkEstimate(q, len(ex.Result.Rows), p.Switches)
		placement.Release()
		return ex, nil
	}
}

// perSwitch snapshots each fabric switch's serving counters and
// occupancy for an execution report; the placed switch additionally
// carries the execution's own traffic.
func (sv *Serving) perSwitch(placed int, t engine.Traffic) []SwitchReport {
	stats := sv.fab.Stats()
	utils := sv.fab.Utilization()
	out := make([]SwitchReport, len(stats))
	for i := range out {
		out[i] = SwitchReport{Serve: stats[i], Util: utils[i]}
	}
	if placed >= 0 && placed < len(out) {
		out[placed].Traffic = t
	}
	return out
}
