package plan

// Dedicated race coverage for Session.Close against the QoS submit and
// streaming append paths (the plain-Submit race lives in
// TestSessionCloseDuringSubmit). The contract under test, documented on
// Session.Close:
//
//   - Serving.SubmitQoS racing Close never hangs and never returns a
//     wrong result: it completes exactly (direct fallback included) or
//     fails with a QoS shed (serve.ErrDeadline) it could have returned
//     anyway.
//   - Streaming.Append racing Close either commits atomically before
//     the ingestor closes or fails with stream.ErrClosed — the
//     retryable "handle gone" signal; no partial rows, no other error.
//   - Subscriptions racing Close drain their in-flight delta; their
//     standing result stays exact for whatever prefix committed.
//
// Queries submitted while appenders run read consistent Ingestor
// snapshots, the same discipline netserve uses: the live table's
// column storage may grow mid-scan.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/serve"
	"cheetah/internal/stream"
	"cheetah/internal/table"
	"cheetah/internal/workload/multitenant"
)

// TestSessionCloseRaceQoSAndAppend closes the session while QoS
// submitters, appenders and a standing subscription are all mid-flight.
// Run under -race this pins the close path's synchronization; the
// assertions pin the error contract.
func TestSessionCloseRaceQoSAndAppend(t *testing.T) {
	for round := 0; round < 3; round++ {
		mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1200, RankRows: 400, Seed: uint64(31 + round)})
		if err != nil {
			t.Fatal(err)
		}
		// The served table starts as a copy of the mix's visits; the
		// original stays immutable as the appenders' row donor.
		live := table.MustNew(mix.Visits.Schema())
		if err := live.AppendRowsFrom(mix.Visits, seqRows(0, 600)); err != nil {
			t.Fatal(err)
		}
		ctx := streamCtx(t)
		db, err := Open(live, Options{Workers: 1, Seed: uint64(round), Switches: 2})
		if err != nil {
			t.Fatal(err)
		}
		sv, err := db.Serve(ctx, ServeOptions{TenantQuota: 2})
		if err != nil {
			t.Fatal(err)
		}
		st, err := db.Stream(ctx, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		topn := &engine.Query{Kind: engine.KindTopN, Table: live, OrderCol: "adRevenue", N: 25}
		sub, err := st.Subscribe(ctx, topn)
		if err != nil {
			t.Fatal(err)
		}

		const submitters, appenders, perWorker = 4, 3, 8
		var wg sync.WaitGroup
		errs := make(chan error, (submitters+appenders)*perWorker)

		for c := 0; c < submitters; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					idx := c*perWorker + i
					// Read a consistent prefix: the live table grows
					// concurrently.
					snap, _, err := st.Ingest().Snapshot()
					if err != nil {
						if errors.Is(err, stream.ErrClosed) {
							return
						}
						errs <- err
						return
					}
					q := *mix.Query(idx)
					q.Table = snap
					qos := serve.QoS{Tenant: mix.Tenant(idx), Priority: mix.Priority(idx)}
					if i%4 == 3 {
						// Some submissions carry deadlines: a shed on a
						// closing fabric is allowed, a hang is not.
						qos.Deadline = time.Now().Add(50 * time.Millisecond)
					}
					ex, err := sv.SubmitQoS(ctx, &q, qos)
					if err != nil {
						if errors.Is(err, serve.ErrDeadline) {
							continue // deadline shed: dropped, not degraded
						}
						errs <- fmt.Errorf("submitter %d query %d: %v", c, i, err)
						return
					}
					if ex.Result == nil {
						errs <- fmt.Errorf("submitter %d query %d: nil result without error", c, i)
						return
					}
				}
			}(c)
		}
		for a := 0; a < appenders; a++ {
			wg.Add(1)
			go func(a int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					lo := 600 + (a*perWorker+i)*10%(mix.Visits.NumRows()-610)
					batch := table.MustNew(mix.Visits.Schema())
					if err := batch.AppendRowsFrom(mix.Visits, seqRows(lo, lo+10)); err != nil {
						errs <- err
						return
					}
					if err := st.AppendBatch(batch); err != nil {
						if errors.Is(err, stream.ErrClosed) {
							return // closed mid-append: the documented signal
						}
						errs <- fmt.Errorf("appender %d batch %d: %v", a, i, err)
						return
					}
				}
			}(a)
		}

		// Close mid-flight, jittered per round so the race window moves.
		time.Sleep(time.Duration(round+1) * time.Millisecond)
		db.Close()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// The subscription's standing result stays exact for whatever
		// prefix committed before the close won the race.
		res, ver := sub.Results()
		if res != nil && ver > 0 {
			prefix, err := live.SnapshotPrefix(int(ver))
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.ExecDirect(&engine.Query{
				Kind: engine.KindTopN, Table: prefix, OrderCol: "adRevenue", N: 25,
			})
			if err != nil {
				t.Fatal(err)
			}
			want.Sort()
			got := &engine.Result{Columns: res.Columns, Rows: res.Rows}
			got.Sort()
			if !want.Equal(got) {
				t.Fatalf("round %d: standing result at version %d diverges after close race", round, ver)
			}
		}

		// Idempotence under concurrency: racing extra Closes is safe.
		var cwg sync.WaitGroup
		for i := 0; i < 4; i++ {
			cwg.Add(1)
			go func() { defer cwg.Done(); db.Close() }()
		}
		cwg.Wait()
	}
}

// seqRows returns the index range [lo, hi).
func seqRows(lo, hi int) []int {
	rows := make([]int, hi-lo)
	for i := range rows {
		rows[i] = lo + i
	}
	return rows
}
